package smartmem_test

import (
	"strings"
	"testing"

	"smartmem"
)

func TestPublicRun(t *testing.T) {
	res, err := smartmem.Run(smartmem.Config{
		TmemBytes:   64 * smartmem.MiB,
		TmemEnabled: true,
		Policy:      smartmem.SmartAlloc{P: 2},
		Seed:        1,
		VMs: []smartmem.VMSpec{{
			ID: 1, Name: "VM1", RAMBytes: 64 * smartmem.MiB,
			Workload: smartmem.InMemoryAnalytics{
				Label: "run", DatasetBytes: 96 * smartmem.MiB, Passes: 1,
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RunsFor("VM1", "run")) != 1 {
		t.Errorf("runs = %+v", res.Runs)
	}
	if res.EndTime <= 0 {
		t.Error("no time elapsed")
	}
}

func TestPublicPolicies(t *testing.T) {
	for _, spec := range []string{"greedy", "static-alloc", "reconf-static", "smart-alloc:P=0.75"} {
		p, err := smartmem.ParsePolicy(spec)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", spec, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("policy %q has no name", spec)
		}
	}
	if _, err := smartmem.ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestPublicScenarios(t *testing.T) {
	if got := len(smartmem.PaperScenarios()); got != 4 {
		t.Fatalf("paper scenario count = %d", got)
	}
	// The registry additionally carries the scale/churn extensions.
	if got, want := len(smartmem.Scenarios()), 6; got < want {
		t.Fatalf("registered scenario count = %d, want >= %d", got, want)
	}
	if _, err := smartmem.ScenarioBySlug("scale-4"); err != nil {
		t.Errorf("parameterized scale-4 lookup: %v", err)
	}
	s, err := smartmem.ScenarioBySlug("usemem")
	if err != nil || s.Name != "Usemem Scenario" {
		t.Errorf("ScenarioBySlug: %v, %v", s, err)
	}
	if _, err := smartmem.ScenarioBySlug("zzz"); err == nil {
		t.Error("unknown slug accepted")
	}
	res, err := smartmem.RunScenario("usemem", "greedy", 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) == 0 {
		t.Error("scenario produced no runs")
	}
	var sb strings.Builder
	if err := smartmem.WriteScenarioSeries(&sb, "usemem", "greedy", 11); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tmem-VM1") {
		t.Error("series output missing VM1")
	}
}

func TestPublicScenarioTimes(t *testing.T) {
	tab, err := smartmem.ScenarioTimes("usemem", []string{"greedy"}, []uint64{11})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := smartmem.WriteScenarioTimes(&sb, tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "greedy") {
		t.Errorf("times output: %q", sb.String())
	}
}

func TestPublicDatagen(t *testing.T) {
	rng := smartmem.NewRNG(5)
	g := smartmem.RMAT(rng, 8, 8)
	ranks := smartmem.PageRank(g, 10, 0.85)
	if len(ranks) != g.N {
		t.Errorf("ranks = %d, want %d", len(ranks), g.N)
	}
	r := smartmem.MovieLensShaped(rng, 100, 50, 2000)
	if rmse := smartmem.MiniALS(r, 4, 3, smartmem.NewRNG(1)); rmse <= 0 || rmse > 5 {
		t.Errorf("RMSE = %v", rmse)
	}
}

func TestPublicUsememWorkload(t *testing.T) {
	w := smartmem.Usemem()
	if w.Name() != "usemem" {
		t.Errorf("name = %q", w.Name())
	}
}
