// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §5 for the experiment index) plus ablations of the design
// choices DESIGN.md calls out. Absolute numbers are simulation-model units;
// the reported custom metrics carry the paper-comparable quantities
// (speedups between policies).
//
// Run a single figure with e.g.:
//
//	go test -bench 'BenchmarkFig5' -benchtime 1x .
package smartmem_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"smartmem"
	"smartmem/internal/core"
	"smartmem/internal/durable"
	"smartmem/internal/experiments"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/workload"
)

// benchSeeds keeps figure benches to one repetition per iteration; the
// full five-seed tables come from cmd/smartmem-report.
var benchSeeds = []uint64{11}

// runTimesFigure reruns a times figure once and reports mean runtimes per
// policy plus the headline speedup as custom metrics.
func runTimesFigure(b *testing.B, slug, smartSpec string) {
	b.Helper()
	scn, err := experiments.BySlug(slug)
	if err != nil {
		b.Fatal(err)
	}
	var tab *experiments.TimesTable
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Times(scn, nil, benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mean across all VM×run rows per policy.
	meanOf := func(pol string) float64 {
		var sum float64
		var n int
		for _, row := range tab.Rows {
			if s, ok := row.ByPolicy[pol]; ok && s.N > 0 {
				sum += s.Mean
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	smart := meanOf(smartSpec)
	greedy := meanOf("greedy")
	noTmem := meanOf("no-tmem")
	if smart > 0 {
		b.ReportMetric((greedy-smart)/greedy*100, "%faster-than-greedy")
		b.ReportMetric((noTmem-smart)/noTmem*100, "%faster-than-no-tmem")
		b.ReportMetric(smart, "virt-s/smart-run")
	}
}

// runSeriesFigure reruns each series panel of a figure once.
func runSeriesFigure(b *testing.B, slug string, policies []string) {
	b.Helper()
	scn, err := experiments.BySlug(slug)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, pol := range policies {
			sr, err := experiments.Series(scn, pol, 11)
			if err != nil {
				b.Fatal(err)
			}
			if err := experiments.RenderSeries(io.Discard, sr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figures 3–10 ---

func BenchmarkFig3_Scenario1Times(b *testing.B) {
	runTimesFigure(b, "s1", "smart-alloc:P=0.75")
}

func BenchmarkFig4_Scenario1Series(b *testing.B) {
	runSeriesFigure(b, "s1", []string{"greedy", "smart-alloc:P=0.75"})
}

func BenchmarkFig5_Scenario2Times(b *testing.B) {
	runTimesFigure(b, "s2", "smart-alloc:P=6")
}

func BenchmarkFig6_Scenario2Series(b *testing.B) {
	runSeriesFigure(b, "s2", []string{"greedy", "smart-alloc:P=6"})
}

func BenchmarkFig7_UsememTimes(b *testing.B) {
	runTimesFigure(b, "usemem", "smart-alloc:P=2")
}

func BenchmarkFig8_UsememSeries(b *testing.B) {
	runSeriesFigure(b, "usemem", []string{"greedy", "reconf-static", "smart-alloc:P=2"})
}

func BenchmarkFig9_Scenario3Times(b *testing.B) {
	runTimesFigure(b, "s3", "smart-alloc:P=4")
}

func BenchmarkFig10_Scenario3Series(b *testing.B) {
	runSeriesFigure(b, "s3", []string{"greedy", "static-alloc", "reconf-static", "smart-alloc:P=4"})
}

// --- Tables I–II ---

// BenchmarkTableI_StatisticsSampling measures the hypervisor's statistics
// sampling path (the 1 Hz VIRQ payload of Table I).
func BenchmarkTableI_StatisticsSampling(b *testing.B) {
	be := tmem.NewBackend(1<<18, tmem.NewMetaStore(4096))
	for vm := tmem.VMID(1); vm <= 8; vm++ {
		pool := be.NewPool(vm, tmem.Persistent)
		for i := 0; i < 128; i++ {
			be.Put(tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(i)}, nil)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := be.Sample(uint64(i))
		if ms.VMCount() != 8 {
			b.Fatal("lost VMs")
		}
	}
}

// BenchmarkTableII_ScenarioBuild measures scenario construction (config
// assembly for every Table II row).
func BenchmarkTableII_ScenarioBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range experiments.All() {
			if _, err := s.Build(uint64(i), "greedy"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// usememConfig builds a shortened usemem-style config for ablations.
func usememConfig(seed uint64, pol policy.Policy) core.Config {
	u := workload.Usemem{
		StartBytes: 128 * mem.MiB,
		StepBytes:  128 * mem.MiB,
		MaxBytes:   512 * mem.MiB,
		CPUPerPage: 100 * sim.Microsecond,
	}
	cfg := core.Config{
		PageSize:    64 * mem.KiB,
		TmemBytes:   384 * mem.MiB,
		TmemEnabled: true,
		Policy:      pol,
		Seed:        seed,
		Limit:       300 * sim.Second,
	}
	stop := &workload.Flag{}
	cfg.Stop = stop
	done := 0
	cfg.OnMilestone = func(vm, label string) {
		if label == workload.MilestoneLabel(512*mem.MiB) {
			done++
			if done >= 6 { // each VM reaches max twice
				stop.Set()
			}
		}
	}
	for i := 1; i <= 3; i++ {
		cfg.VMs = append(cfg.VMs, core.VMSpec{
			ID: tmem.VMID(i), Name: fmt.Sprintf("VM%d", i),
			RAMBytes: 512 * mem.MiB, KernelReserveBytes: 140 * mem.MiB,
			Workload: u,
		})
	}
	return cfg
}

// BenchmarkAblation_ExclusiveGet compares the Xen driver's exclusive
// frontswap gets (default) against swap-cache (non-exclusive) semantics.
// The workload is read-mostly: for write-heavy workloads (usemem) the two
// modes converge because every copy dies on the next write anyway, so the
// divergence only appears on read-dominated refault streams.
func BenchmarkAblation_ExclusiveGet(b *testing.B) {
	for _, bc := range []struct {
		name    string
		nonExcl bool
	}{{"exclusive", false}, {"non-exclusive", true}} {
		b.Run(bc.name, func(b *testing.B) {
			var end float64
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					PageSize:    64 * mem.KiB,
					TmemBytes:   256 * mem.MiB,
					TmemEnabled: true,
					Seed:        11,
					VMs: []core.VMSpec{{
						ID: 1, Name: "VM1", RAMBytes: 256 * mem.MiB,
						Workload: workload.GraphAnalytics{
							Label: "g", GraphBytes: 384 * mem.MiB,
							Iterations: 6, TouchesPerPagePerIter: 2,
							WriteFraction: 0.02,
						},
					}},
					NonExclusiveFrontswap: bc.nonExcl,
				}
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				end = res.EndTime.Seconds()
			}
			b.ReportMetric(end, "virt-s")
		})
	}
}

// BenchmarkAblation_SamplingInterval sweeps the MM statistics interval
// around the paper's 1 s choice.
func BenchmarkAblation_SamplingInterval(b *testing.B) {
	for _, interval := range []sim.Duration{250 * sim.Millisecond, sim.Second, 4 * sim.Second} {
		b.Run(interval.Std().String(), func(b *testing.B) {
			var end float64
			for i := 0; i < b.N; i++ {
				cfg := usememConfig(11, policy.SmartAlloc{P: 2})
				cfg.SampleInterval = interval
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				end = res.EndTime.Seconds()
			}
			b.ReportMetric(end, "virt-s")
		})
	}
}

// BenchmarkAblation_SmartThreshold sweeps smart-alloc's slack threshold
// (Algorithm 4's oscillation damper).
func BenchmarkAblation_SmartThreshold(b *testing.B) {
	for _, threshold := range []mem.Pages{16, 128, 1024} {
		b.Run(fmt.Sprintf("threshold-%d", threshold), func(b *testing.B) {
			var end float64
			for i := 0; i < b.N; i++ {
				cfg := usememConfig(11, policy.SmartAlloc{P: 2, Threshold: threshold})
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				end = res.EndTime.Seconds()
			}
			b.ReportMetric(end, "virt-s")
		})
	}
}

// BenchmarkAblation_DiskLatency sweeps the backing-disk service time: as
// the disk gets faster, tmem management matters less (the crossover the
// paper's motivation rests on).
func BenchmarkAblation_DiskLatency(b *testing.B) {
	for _, svc := range []sim.Duration{200 * sim.Microsecond, 2 * sim.Millisecond, 8 * sim.Millisecond} {
		b.Run(svc.Std().String(), func(b *testing.B) {
			var gap float64
			for i := 0; i < b.N; i++ {
				run := func(pol policy.Policy, on bool) float64 {
					cfg := usememConfig(11, pol)
					cfg.TmemEnabled = on
					cfg.DiskReadService = svc
					cfg.DiskWriteService = svc
					res, err := core.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					return res.EndTime.Seconds()
				}
				withTmem := run(policy.SmartAlloc{P: 2}, true)
				noTmem := run(nil, false)
				gap = (noTmem - withTmem) / noTmem * 100
			}
			b.ReportMetric(gap, "%tmem-benefit")
		})
	}
}

// BenchmarkPublicAPI_RunScenario measures a full public-API scenario run
// (the unit of everything above).
func BenchmarkPublicAPI_RunScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := smartmem.RunScenario("usemem", "smart-alloc:P=2", 11); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiment engine ---

// BenchmarkEngine_TimesSweep measures a full times sweep (4 policies × 5
// seeds of the usemem scenario) at increasing parallelism. The sub-bench
// ratio is the engine's wall-clock speedup; outputs are identical across
// parallelism levels by construction.
func BenchmarkEngine_TimesSweep(b *testing.B) {
	scn, err := experiments.BySlug("usemem")
	if err != nil {
		b.Fatal(err)
	}
	policies := []string{"greedy", "static-alloc", "reconf-static", "smart-alloc:P=2"}
	levels := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		levels = append(levels, n)
	}
	for _, par := range levels {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := experiments.TimesOpts(scn, policies, nil, experiments.Options{Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngine_ScaleScenario measures engine throughput on the
// scale-<n> family as the VM count grows.
func BenchmarkEngine_ScaleScenario(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("vms-%d", n), func(b *testing.B) {
			scn, err := experiments.BySlug(fmt.Sprintf("scale-%d", n))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				results, err := experiments.RunMatrix([]*experiments.Scenario{scn},
					[]string{"greedy", "smart-alloc:P=2"}, benchSeeds, experiments.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 2 {
					b.Fatalf("results = %d", len(results))
				}
			}
		})
	}
}

// BenchmarkSweep measures the tournament engine on a fixed bracket
// (scale-2 × 3 policies × 3 seeds): cold sweeps under the work-stealing
// and static schedulers (their ratio is the scheduler's win; both compute
// every cell), and warm sweeps against a primed memo cache (every cell a
// hit — the warm/cold ratio is the cache's speedup, budgeted at >= 5x in
// practice and gated structurally by TestTournamentColdWarmIdentical).
func BenchmarkSweep(b *testing.B) {
	scn, err := experiments.BySlug("scale-2")
	if err != nil {
		b.Fatal(err)
	}
	scenarios := []*experiments.Scenario{scn}
	policies := []string{"greedy", "static-alloc", "smart-alloc:P=2"}
	seeds := []uint64{11, 23, 37}
	sweep := func(b *testing.B, opt experiments.Options) {
		league, err := experiments.RunTournament(scenarios, policies, seeds, opt)
		if err != nil {
			b.Fatal(err)
		}
		if league.Winner() == "" {
			b.Fatal("empty league")
		}
	}

	b.Run("cold/steal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, experiments.Options{Scheduler: experiments.SchedulerSteal})
		}
	})
	b.Run("cold/static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, experiments.Options{Scheduler: experiments.SchedulerStatic})
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := experiments.NewMemo(durable.NewMemStore())
		sweep(b, experiments.Options{Cache: cache}) // prime every cell
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, experiments.Options{Cache: cache})
		}
		b.StopTimer()
		st := cache.Stats()
		if st.Misses != uint64(len(policies)*len(seeds)) {
			b.Fatalf("warm sweeps missed the cache: %+v", st)
		}
	})
}

// BenchmarkRunCluster measures the cluster runtime itself — one full
// cluster-2-shaped run per iteration, tiled to the requested node count —
// sequential single-kernel vs parallel per-node kernels. The two modes
// produce byte-identical Results (differential-tested in core and
// experiments); the benchmark exists to track the wall-clock gap: on a
// multi-core box nodes-8/par should approach a per-core speedup, and on
// the 1-CPU CI runner par must stay within budget of seq (gating the
// synchronization overhead).
func BenchmarkRunCluster(b *testing.B) {
	scn, err := experiments.BySlug("cluster-2")
	if err != nil {
		b.Fatal(err)
	}
	build := func(nodes int) core.ClusterConfig {
		cc, err := scn.BuildCluster(benchSeeds[0], "smart-alloc:P=2")
		if err != nil {
			b.Fatal(err)
		}
		for len(cc.Nodes) < nodes {
			// Fresh BuildCluster per tile: every node pair keeps its own
			// stop flag and milestone counters.
			next, err := scn.BuildCluster(benchSeeds[0], "smart-alloc:P=2")
			if err != nil {
				b.Fatal(err)
			}
			cc.Nodes = append(cc.Nodes, next.Nodes...)
		}
		return cc
	}
	for _, nodes := range []int{2, 8} {
		for _, mode := range []struct {
			name     string
			parallel bool
		}{{"seq", false}, {"par", true}} {
			b.Run(fmt.Sprintf("nodes-%d/%s", nodes, mode.name), func(b *testing.B) {
				var end sim.Time
				for i := 0; i < b.N; i++ {
					cc := build(nodes)
					cc.Parallel = mode.parallel
					res, err := core.RunCluster(cc)
					if err != nil {
						b.Fatal(err)
					}
					if res.HitLimit {
						b.Fatal("cluster run hit the virtual-time limit")
					}
					end = res.EndTime
				}
				b.ReportMetric(end.Seconds(), "virt-s")
			})
		}
	}
}
