package smartmem_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"smartmem"
	"smartmem/internal/experiments"
	"smartmem/sinks"
)

// buildScenario assembles a fresh runnable config for a registered
// scenario (fresh is important: scenario coordination state like the
// usemem stop flag lives inside the built config).
func buildScenario(t *testing.T, slug, policy string, seed uint64) smartmem.Config {
	t.Helper()
	s, err := experiments.BySlug(slug)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build(seed, policy)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestSessionObserverEventsS2 is the acceptance check for the event
// stream: an observer on an s2 run receives Milestone, SampleTick and
// RunCompleted events (plus starts and exactly one terminal RunFinished),
// in non-decreasing virtual-time order.
func TestSessionObserverEventsS2(t *testing.T) {
	var events []smartmem.Event
	sess, err := smartmem.NewSession(
		buildScenario(t, "s2", "smart-alloc:P=6", 11),
		smartmem.WithObserver(smartmem.ObserverFunc(func(e smartmem.Event) {
			events = append(events, e)
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Runs) == 0 {
		t.Fatalf("no result runs: %+v", res)
	}

	counts := map[string]int{}
	last := -1.0
	for i, e := range events {
		counts[e.Kind()]++
		if tsec := e.When().Seconds(); tsec < last {
			t.Fatalf("event %d (%s) went back in time: %v after %v", i, e.Kind(), tsec, last)
		} else {
			last = tsec
		}
	}
	for _, kind := range []string{"vm-started", "milestone", "sample-tick", "run-completed", "run-finished"} {
		if counts[kind] == 0 {
			t.Errorf("no %s events (counts: %v)", kind, counts)
		}
	}
	if counts["vm-started"] != 3 {
		t.Errorf("vm-started count = %d, want 3", counts["vm-started"])
	}
	if counts["run-completed"] != len(res.Runs) {
		t.Errorf("run-completed count = %d, want %d", counts["run-completed"], len(res.Runs))
	}
	if counts["sample-tick"] != int(res.SampleTicks) {
		t.Errorf("sample-tick count = %d, want %d", counts["sample-tick"], res.SampleTicks)
	}
	if counts["run-finished"] != 1 {
		t.Errorf("run-finished count = %d, want 1", counts["run-finished"])
	}
	fin, ok := events[len(events)-1].(smartmem.RunFinished)
	if !ok {
		t.Fatalf("last event is %T, want RunFinished", events[len(events)-1])
	}
	if fin.Cancelled || fin.Result != res {
		t.Errorf("RunFinished = %+v", fin)
	}
}

// TestSessionCancellation is the acceptance check for context-based
// cancellation: cancelling mid-run (here, from the observer after the
// third sampling tick) returns promptly with the context error AND a
// partial Result.
func TestSessionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ticks := 0
	sess, err := smartmem.NewSession(
		buildScenario(t, "s2", "greedy", 11),
		smartmem.WithContext(ctx),
		smartmem.WithObserver(smartmem.ObserverFunc(func(e smartmem.Event) {
			if _, ok := e.(smartmem.SampleTick); ok {
				if ticks++; ticks == 3 {
					cancel()
				}
			}
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := sess.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation returned no partial result")
	}
	if !res.Cancelled {
		t.Error("partial result not marked Cancelled")
	}
	// Promptness: the full s2/greedy run takes hundreds of virtual
	// seconds; cancelled after ~3 we must stop within a few more ticks
	// (the kernel checks between every event) and quickly in wall time.
	if res.SampleTicks > 4 {
		t.Errorf("run kept sampling after cancellation: %d ticks", res.SampleTicks)
	}
	if res.EndTime.Seconds() > 10 {
		t.Errorf("run kept simulating after cancellation: ended at %.1fs", res.EndTime.Seconds())
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Errorf("cancellation not prompt: %v of wall time", wall)
	}
	// The stored outcome matches.
	stored, serr := sess.Result()
	if stored != res || !errors.Is(serr, context.Canceled) {
		t.Errorf("Result() = %v, %v", stored, serr)
	}
	if !sess.Done() {
		t.Error("session not done")
	}
}

// TestRunMatchesSession is the determinism acceptance check: the legacy
// Run(Config) entry point and an explicit Session produce byte-identical
// serialized results for the paper scenarios.
func TestRunMatchesSession(t *testing.T) {
	for _, slug := range []string{"s1", "s2", "usemem", "s3"} {
		s, err := experiments.BySlug(slug)
		if err != nil {
			t.Fatal(err)
		}
		policy := s.Policies[len(s.Policies)-1] // a smart-alloc variant
		serialize := func(res *smartmem.Result) []byte {
			var buf bytes.Buffer
			sink := sinks.JSON(&buf)
			if err := sink.Close(res); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}

		legacy, err := smartmem.Run(buildScenario(t, slug, policy, 23))
		if err != nil {
			t.Fatalf("%s: Run: %v", slug, err)
		}
		sess, err := smartmem.NewSession(buildScenario(t, slug, policy, 23))
		if err != nil {
			t.Fatal(err)
		}
		viaSession, err := sess.Run()
		if err != nil {
			t.Fatalf("%s: Session.Run: %v", slug, err)
		}
		if !bytes.Equal(serialize(legacy), serialize(viaSession)) {
			t.Errorf("%s/%s: Run and Session results differ", slug, policy)
		}
	}
}

// TestSessionSinks exercises the three built-in sinks and the WithClock
// wall-stamping on a small run.
func TestSessionSinks(t *testing.T) {
	cfg := smartmem.Config{
		TmemBytes:   64 * smartmem.MiB,
		TmemEnabled: true,
		Policy:      smartmem.SmartAlloc{P: 2},
		Seed:        1,
		VMs: []smartmem.VMSpec{{
			ID: 1, Name: "VM1", RAMBytes: 64 * smartmem.MiB,
			Workload: smartmem.InMemoryAnalytics{
				Label: "run", DatasetBytes: 96 * smartmem.MiB, Passes: 1,
			},
		}},
	}
	var nd, js, cs bytes.Buffer
	fixed := time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC)
	sess, err := smartmem.NewSession(cfg,
		smartmem.WithSink(sinks.NDJSON(&nd)),
		smartmem.WithSink(sinks.JSON(&js)),
		smartmem.WithSink(sinks.CSV(&cs)),
		smartmem.WithClock(func() time.Time { return fixed }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"ndjson": &nd, "json": &js, "csv": &cs} {
		if buf.Len() == 0 {
			t.Errorf("%s sink wrote nothing", name)
		}
	}
	if !bytes.Contains(nd.Bytes(), []byte(`"wall":"2026-07-28T00:00:00Z"`)) {
		t.Errorf("NDJSON missing injected wall clock:\n%.300s", nd.String())
	}
	if !bytes.Contains(cs.Bytes(), []byte("event,t_seconds,vm,label,value")) {
		t.Errorf("CSV missing header:\n%.200s", cs.String())
	}
	if !bytes.Contains(js.Bytes(), []byte(`"schema": "smartmem/run@1"`)) {
		t.Errorf("JSON missing schema:\n%.200s", js.String())
	}
	// A second Run call reports the stored outcome instead of re-running.
	res2, err := sess.Run()
	if err != nil || res2 == nil {
		t.Errorf("second Run() = %v, %v", res2, err)
	}
}

// TestSessionValidation: construction fails fast on invalid configs.
func TestSessionValidation(t *testing.T) {
	_, err := smartmem.NewSession(smartmem.Config{})
	if err == nil {
		t.Fatal("empty config accepted")
	}
}
