package report

import (
	"strings"
	"testing"

	"smartmem/internal/metrics"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Figure X",
		Headers: []string{"vm", "greedy", "smart"},
	}
	tb.AddRow("VM1", "100.0±1.0", "90.0±0.5")
	tb.AddRow("VM2", "200.0±2.0") // short row padded
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure X", "vm", "greedy", "VM1", "90.0±0.5", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
}

func TestFormatSummary(t *testing.T) {
	if got := FormatSummary(metrics.Summary{}); got != "-" {
		t.Errorf("empty = %q", got)
	}
	if got := FormatSummary(metrics.Summarize([]float64{5})); got != "5.0" {
		t.Errorf("singleton = %q", got)
	}
	if got := FormatSummary(metrics.Summarize([]float64{10, 14})); got != "12.0±2.8" {
		t.Errorf("pair = %q", got)
	}
}

func TestChartRender(t *testing.T) {
	set := metrics.NewSet()
	a := set.Get("tmem-VM1")
	b := set.Get("tmem-VM2")
	for i := 0; i <= 100; i++ {
		a.Add(float64(i), float64(i*10))
		b.Add(float64(i), float64(1000-i*10))
	}
	var sb strings.Builder
	c := Chart{Title: "Figure Y", Width: 40, Height: 8, YLabel: "pages"}
	if err := c.Render(&sb, set, []string{"tmem-VM1", "tmem-VM2"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure Y", "legend:", "tmem-VM1", "pages", "1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Both symbols must appear.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("chart symbols missing:\n%s", out)
	}
}

func TestChartUnknownSeries(t *testing.T) {
	set := metrics.NewSet()
	var sb strings.Builder
	if err := (Chart{}).Render(&sb, set, []string{"nope"}); err == nil {
		t.Error("unknown series not rejected")
	}
}

func TestChartEmptyData(t *testing.T) {
	set := metrics.NewSet()
	set.Get("x")
	var sb strings.Builder
	if err := (Chart{}).Render(&sb, set, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty chart output: %q", sb.String())
	}
}
