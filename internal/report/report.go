// Package report renders experiment results as fixed-width text tables and
// ASCII time-series charts — the textual equivalents of the paper's bar
// charts (running times) and capacity-over-time plots.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"smartmem/internal/metrics"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row (padded/truncated to the header count).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// FormatSummary renders a metrics.Summary as "mean±std".
func FormatSummary(s metrics.Summary) string {
	if s.N == 0 {
		return "-"
	}
	if s.N == 1 {
		return fmt.Sprintf("%.1f", s.Mean)
	}
	return fmt.Sprintf("%.1f±%.1f", s.Mean, s.Std)
}

// Chart renders a metrics.Set as an ASCII chart: time on the x axis,
// values scaled to height rows, one symbol per series.
type Chart struct {
	Title  string
	Width  int // columns (default 72)
	Height int // rows (default 16)
	// YLabel names the value axis (e.g. "pages").
	YLabel string
}

// Render draws the selected series of set.
func (c Chart) Render(w io.Writer, set *metrics.Set, names []string) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	if len(names) == 0 {
		names = set.Names()
	}
	symbols := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Bounds.
	var tMax, vMax float64
	for _, n := range names {
		if !set.Has(n) {
			return fmt.Errorf("report: unknown series %q", n)
		}
		s := set.Get(n)
		if s.Len() > 0 {
			if last := s.Last().T; last > tMax {
				tMax = last
			}
		}
		if m := s.Max(); m > vMax {
			vMax = m
		}
	}
	if tMax == 0 || vMax == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, n := range names {
		s := set.Get(n)
		sym := symbols[si%len(symbols)]
		for col := 0; col < width; col++ {
			t := tMax * float64(col) / float64(width-1)
			v := s.ValueAt(t)
			row := int((1 - v/vMax) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = sym
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	ylab := c.YLabel
	if ylab == "" {
		ylab = "value"
	}
	if _, err := fmt.Fprintf(w, "%8.0f +%s\n", vMax, strings.Repeat("-", width)); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "%8s |%s\n", "", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8.0f +%s\n", 0.0, strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s  0s%s%.0fs\n", ylab, strings.Repeat(" ", width-12), tMax); err != nil {
		return err
	}
	var legend []string
	for si, n := range names {
		legend = append(legend, fmt.Sprintf("%c=%s", symbols[si%len(symbols)], n))
	}
	sort.Strings(legend)
	_, err := fmt.Fprintf(w, "legend: %s\n", strings.Join(legend, "  "))
	return err
}
