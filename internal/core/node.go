package core

import (
	"context"
	"fmt"
	"sort"

	"smartmem/internal/guest"
	"smartmem/internal/mem"
	"smartmem/internal/metrics"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tkm"
	"smartmem/internal/tmem"
	"smartmem/internal/vdisk"
	"smartmem/internal/workload"
)

// RunRecord is one completed workload run or milestone measurement.
type RunRecord struct {
	VM    string
	Label string
	Start sim.Time
	End   sim.Time
}

// Duration returns the record's elapsed virtual time.
func (r RunRecord) Duration() sim.Duration { return sim.Duration(r.End - r.Start) }

// VMResult aggregates one VM's end-of-run statistics.
type VMResult struct {
	Name   string
	ID     tmem.VMID
	Kernel guest.Stats
	Tmem   tmem.OpCounts
}

// Result is the outcome of a node run.
type Result struct {
	// PolicyName is the policy that governed the run (or "no-tmem").
	PolicyName string
	// Seed is the run's random seed.
	Seed uint64
	// EndTime is the virtual time when the last workload finished.
	EndTime sim.Time
	// HitLimit reports whether the run was cut off by Config.Limit.
	HitLimit bool
	// Cancelled reports whether the run's context was cancelled mid-run;
	// every field then holds the partial state at cancellation time.
	Cancelled bool
	// Runs holds every reported run/milestone, in completion order.
	Runs []RunRecord
	// Series carries the time series the paper's Figures 4/6/8/10 plot:
	// "tmem-<vm>" (pages in use), "target-<vm>" (mm_target), and
	// "free-tmem". Empty in no-tmem mode.
	Series *metrics.Set
	// VMs holds per-VM statistics, in config order.
	VMs []VMResult
	// MMBatchesSent counts target batches the MM actually transmitted
	// (after dedup suppression).
	MMBatchesSent uint64
	// SampleTicks counts MM sampling intervals processed.
	SampleTicks uint64
	// DiskOps / DiskBusy summarize host-disk traffic.
	DiskOps  uint64
	DiskBusy sim.Duration
}

// RunsFor returns the run durations, in completion order, whose VM and
// label match (empty strings match anything).
func (r *Result) RunsFor(vm, label string) []RunRecord {
	var out []RunRecord
	for _, rec := range r.Runs {
		if (vm == "" || rec.VM == vm) && (label == "" || rec.Label == label) {
			out = append(out, rec)
		}
	}
	return out
}

// Run executes one full node simulation to completion and returns its
// results. It is a convenience wrapper over RunWith with a background
// context and no observer.
func Run(cfg Config) (*Result, error) {
	return RunWith(context.Background(), cfg, nil)
}

// RunWith executes one full node simulation, streaming lifecycle events to
// obs (which may be nil) and honouring ctx cancellation. On cancellation it
// returns promptly with the context's error AND a non-nil partial Result
// (Result.Cancelled set): everything measured up to the cancellation
// point. A nil ctx means context.Background().
func RunWith(ctx context.Context, cfg Config, obs Observer) (*Result, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	kern := sim.NewKernel(cfg.Seed)
	kern.SetLimit(sim.Time(cfg.Limit))
	rootRNG := kern.RNG()

	var backend *tmem.Backend
	if cfg.TmemEnabled {
		backend = tmem.NewBackend(mem.PagesIn(cfg.TmemBytes, cfg.PageSize), cfg.newStore())
	}

	host := vdisk.NewHost(cfg.DiskReadService, cfg.DiskWriteService, cfg.DiskJitter, rootRNG.Split())

	res := &Result{
		PolicyName: cfg.PolicyName(),
		Seed:       cfg.Seed,
		Series:     metrics.NewSet(),
	}

	// Built-in observers come first so the node's own bookkeeping (legacy
	// milestone callback, figure series) sees each event before the caller.
	names := newVMNames(cfg)
	builtins := make([]Observer, 0, 3)
	if cfg.OnMilestone != nil {
		builtins = append(builtins, milestoneRelay{fn: cfg.OnMilestone})
	}
	if backend != nil {
		builtins = append(builtins, &seriesRecorder{set: res.Series, names: names})
	}
	em := &emitter{}
	if len(builtins) > 0 || obs != nil {
		em.obs = MultiObserver(append(builtins, obs)...)
	}

	// Workloads poll cancellation between access batches; leave the hook
	// nil for non-cancellable contexts so the common path costs nothing.
	var cancelled func() bool
	if ctx.Done() != nil {
		cancelled = func() bool { return ctx.Err() != nil }
	}

	// --- guests + workloads ---
	type vmRuntime struct {
		spec   VMSpec
		kernel *guest.Kernel
	}
	vms := make([]*vmRuntime, len(cfg.VMs))
	remaining := len(cfg.VMs)
	jitterRNG := rootRNG.Split()

	for i, spec := range cfg.VMs {
		spec := spec
		g := guest.NewKernel(guest.Config{
			VM:               spec.ID,
			RAMPages:         mem.PagesIn(spec.RAMBytes, cfg.PageSize),
			KernelReserve:    cfg.kernelReserve(spec),
			Backend:          backend,
			Frontswap:        backend != nil,
			Cleancache:       backend != nil && cfg.Cleancache,
			NonExclusiveGets: cfg.NonExclusiveFrontswap,
			Disk:             vdisk.NewDisk(spec.Name, host),
		})
		vms[i] = &vmRuntime{spec: spec, kernel: g}

		delay := sim.Duration(spec.StartDelay)
		if cfg.StartJitter > 0 {
			delay += sim.Duration(jitterRNG.Int63n(int64(cfg.StartJitter)))
		}
		wlRNG := rootRNG.Split()
		kern.SpawnAt("wl-"+spec.Name, delay, func(p *sim.Proc) {
			defer func() { remaining-- }()
			em.emit(VMStarted{At: p.Now(), VM: spec.Name, ID: spec.ID, Workload: spec.Workload.Name()})
			wctx := &workload.Ctx{
				Proc:     p,
				Guest:    g,
				RNG:      wlRNG,
				PageSize: cfg.PageSize,
				Report: func(label string, start, end sim.Time) {
					rec := RunRecord{VM: spec.Name, Label: label, Start: start, End: end}
					res.Runs = append(res.Runs, rec)
					em.emit(RunCompleted{At: end, Record: rec})
				},
				OnMilestone: func(label string) {
					em.emit(Milestone{At: p.Now(), VM: spec.Name, Label: label})
				},
				Stop:      cfg.Stop,
				Cancelled: cancelled,
			}
			spec.Workload.Run(wctx)
			if end := p.Now(); end > res.EndTime {
				res.EndTime = end
			}
		})
	}

	// --- MM + monitor process ---
	var mmDedup *policy.Dedup
	if backend != nil {
		var mm tkm.MM
		if cfg.TransportMM != nil {
			mm = transportAdapter{cfg.TransportMM}
		} else {
			pol := cfg.Policy
			if pol == nil {
				pol = policy.Greedy{}
			}
			mmDedup = policy.NewDedup(pol)
			mm = tkm.NewLocalMM(mmDedup)
		}
		relay := tkm.New(backend, mm)

		kern.Spawn("mm-tick", func(p *sim.Proc) {
			for {
				p.Sleep(cfg.SampleInterval)
				if remaining == 0 {
					return
				}
				ms, targets, err := relay.Tick()
				if err != nil {
					// A torn MM connection degrades to greedy: targets
					// simply stop changing, exactly as in the real system.
					return
				}
				res.SampleTicks++
				em.emit(SampleTick{At: p.Now(), Seq: ms.IntervalSeq, Stats: ms, VMNames: names})
				for _, tu := range targets {
					em.emit(TargetUpdate{
						At: p.Now(), VM: names.name(tu.ID), ID: tu.ID, Target: tu.MMTarget,
					})
				}
			}
		})
	}

	// The kernel loop checks the context between events so cancellation is
	// prompt even while every workload is deep inside a long phase. With a
	// background context the check never fires and the schedule is
	// identical to an unobserved kern.Run().
	for kern.Step() {
		if cancelled != nil && ctx.Err() != nil {
			res.Cancelled = true
			break
		}
	}
	res.HitLimit = kern.Ended()
	if res.HitLimit || res.Cancelled {
		if now := kern.Now(); now > res.EndTime {
			res.EndTime = now
		}
	}
	kern.KillAll()

	// --- final statistics ---
	for _, vr := range vms {
		v := VMResult{Name: vr.spec.Name, ID: vr.spec.ID, Kernel: vr.kernel.Stats()}
		if backend != nil {
			v.Tmem, _ = backend.Counts(vr.spec.ID)
		}
		res.VMs = append(res.VMs, v)
	}
	if mmDedup != nil {
		res.MMBatchesSent = uint64(mmDedup.Sent)
	}
	res.DiskOps = host.Ops()
	res.DiskBusy = host.BusyTime()

	if backend != nil {
		if err := backend.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("core: post-run invariant violation: %w", err)
		}
	}
	sortRuns(res.Runs)
	em.emit(RunFinished{At: res.EndTime, Cancelled: res.Cancelled, Result: res})

	if res.Cancelled {
		return res, context.Cause(ctx)
	}
	return res, nil
}

type transportAdapter struct{ t TKMTransport }

func (a transportAdapter) Handle(ms tmem.MemStats) ([]tmem.TargetUpdate, error) {
	return a.t.Handle(ms)
}

func sortRuns(runs []RunRecord) {
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].End < runs[j].End })
}
