package core

import (
	"context"
	"fmt"
	"sort"

	"smartmem/internal/durable"
	"smartmem/internal/guest"
	"smartmem/internal/mem"
	"smartmem/internal/metrics"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tkm"
	"smartmem/internal/tmem"
	"smartmem/internal/vdisk"
	"smartmem/internal/workload"
)

// RunRecord is one completed workload run or milestone measurement.
type RunRecord struct {
	VM    string
	Label string
	Start sim.Time
	End   sim.Time
}

// Duration returns the record's elapsed virtual time.
func (r RunRecord) Duration() sim.Duration { return sim.Duration(r.End - r.Start) }

// VMResult aggregates one VM's end-of-run statistics.
type VMResult struct {
	Name   string
	ID     tmem.VMID
	Kernel guest.Stats
	Tmem   tmem.OpCounts
}

// NodeResult summarizes one node of a cluster run.
type NodeResult struct {
	// Name is the node tag ("n0", "n1", ...).
	Name string
	// PolicyName is the policy that governed the node.
	PolicyName string
	// SampleTicks / MMBatchesSent are the node's MM counters.
	SampleTicks   uint64
	MMBatchesSent uint64
	// DiskOps / DiskBusy summarize the node's host-disk traffic.
	DiskOps  uint64
	DiskBusy sim.Duration
	// Remote summarizes the node's outbound remote tmem tier (nil when the
	// cluster ran without remote tmem).
	Remote *tmem.TierStats
	// Compressed summarizes the node's compressed tier (nil when the node
	// ran without one).
	Compressed *tmem.CompressedTierStats
	// Durable summarizes the node's durable tier and its journal (nil when
	// the node ran without Config.DurableBlob).
	Durable *durable.Summary
}

// Result is the outcome of a node (or cluster) run.
type Result struct {
	// PolicyName is the policy that governed the run (or "no-tmem"). For
	// heterogeneous clusters the distinct node policies are joined with "+".
	PolicyName string
	// Seed is the run's random seed.
	Seed uint64
	// EndTime is the virtual time when the last workload finished.
	EndTime sim.Time
	// HitLimit reports whether the run was cut off by Config.Limit.
	HitLimit bool
	// Cancelled reports whether the run's context was cancelled mid-run;
	// every field then holds the partial state at cancellation time.
	Cancelled bool
	// Runs holds every reported run/milestone, in completion order. In a
	// cluster run the VM names carry their node prefix ("n0/VM1").
	Runs []RunRecord
	// Series carries the time series the paper's Figures 4/6/8/10 plot:
	// "tmem-<vm>" (pages in use), "target-<vm>" (mm_target) and
	// "free-tmem". Empty in no-tmem mode. Cluster runs prefix every name
	// with the node tag ("tmem-n0/VM1", "n0/free-tmem").
	Series *metrics.Set
	// VMs holds per-VM statistics, in config order (node order first for
	// clusters).
	VMs []VMResult
	// Nodes holds per-node summaries for cluster runs; nil single-node.
	Nodes []NodeResult
	// MMBatchesSent counts target batches the MM actually transmitted
	// (after dedup suppression; summed across nodes in a cluster).
	MMBatchesSent uint64
	// SampleTicks counts MM sampling intervals processed (summed).
	SampleTicks uint64
	// DiskOps / DiskBusy summarize host-disk traffic (summed).
	DiskOps  uint64
	DiskBusy sim.Duration
	// Compressed summarizes the compressed tier(s) when Config.CompressBytes
	// was set (summed across nodes in a cluster); nil otherwise.
	Compressed *tmem.CompressedTierStats
	// Durable summarizes the durable tier(s) and their journals when
	// Config.DurableBlob was set (summed across nodes); nil otherwise.
	Durable *durable.Summary
}

// RunsFor returns the run durations, in completion order, whose VM and
// label match (empty strings match anything).
func (r *Result) RunsFor(vm, label string) []RunRecord {
	var out []RunRecord
	for _, rec := range r.Runs {
		if (vm == "" || rec.VM == vm) && (label == "" || rec.Label == label) {
			out = append(out, rec)
		}
	}
	return out
}

// Run executes one full node simulation to completion and returns its
// results. It is a convenience wrapper over RunWith with a background
// context and no observer.
func Run(cfg Config) (*Result, error) {
	return RunWith(context.Background(), cfg, nil)
}

// RunWith executes one full node simulation, streaming lifecycle events to
// obs (which may be nil) and honouring ctx cancellation. On cancellation it
// returns promptly with the context's error AND a non-nil partial Result
// (Result.Cancelled set): everything measured up to the cancellation
// point. A nil ctx means context.Background().
func RunWith(ctx context.Context, cfg Config, obs Observer) (*Result, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	kern := sim.NewKernel(cfg.Seed)
	kern.SetLimit(sim.Time(cfg.Limit))

	res := &Result{
		PolicyName: cfg.PolicyName(),
		Seed:       cfg.Seed,
		Series:     metrics.NewSet(),
	}
	cancelled := cancelHook(ctx)

	n, err := newNodeRuntime(cfg, "", "")
	if err != nil {
		return nil, err
	}
	n.start(kern, kern.RNG(), obs, res, cancelled)

	runLoop(kern, ctx, cancelled, res)
	kern.KillAll()

	if err := n.finalize(res); err != nil {
		return nil, err
	}
	sortRuns(res.Runs)
	n.em.emit(RunFinished{At: res.EndTime, Cancelled: res.Cancelled, Result: res})

	if res.Cancelled {
		return res, context.Cause(ctx)
	}
	return res, nil
}

// cancelHook returns the cancellation poll workloads use, or nil for
// non-cancellable contexts so the common path costs nothing.
func cancelHook(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// runLoop drives the simulation kernel to completion, checking the context
// between events so cancellation is prompt even while every workload is
// deep inside a long phase. With a background context the check never fires
// and the schedule is identical to an unobserved kern.Run().
func runLoop(kern *sim.Kernel, ctx context.Context, cancelled func() bool, res *Result) {
	for kern.Step() {
		if cancelled != nil && ctx.Err() != nil {
			res.Cancelled = true
			break
		}
	}
	res.HitLimit = kern.Ended()
	if res.HitLimit || res.Cancelled {
		if now := kern.Now(); now > res.EndTime {
			res.EndTime = now
		}
	}
}

// vmRuntime pairs a VM spec with its booted guest kernel.
type vmRuntime struct {
	spec   VMSpec
	kernel *guest.Kernel
}

// nodeRuntime is one assembled node: the tmem backend, its guests and their
// workloads, the host disk and the MM tick loop — everything RunWith used
// to wire inline, factored out so RunCluster can assemble several nodes
// against one shared simulation kernel. tag/prefix are empty for a
// single-node run, which keeps that path byte-identical to the historical
// inline assembly.
type nodeRuntime struct {
	cfg    Config
	tag    string // "n<i>" in a cluster, "" single-node
	prefix string // "n<i>/" in a cluster, "" single-node

	backend  *tmem.Backend
	compress *tmem.CompressedTier // in-RAM compressed tier (CompressBytes > 0)
	remote   *tmem.RemoteTier     // outbound overflow tier (clusters only)
	dlog     *durable.Log         // journal behind the durable tier (DurableBlob set)
	dtier    *durable.Tier        // journaling last-resort tier (DurableBlob set)
	host     *vdisk.Host
	vms      []*vmRuntime
	names    vmNames
	em       *emitter

	remaining   int
	sampleTicks uint64
	mmDedup     *policy.Dedup
}

// newNodeRuntime builds the node shell and its backend — the piece peers
// need a reference to before workloads start, so cluster tier wiring can
// happen between construction and start.
func newNodeRuntime(cfg Config, tag, prefix string) (*nodeRuntime, error) {
	n := &nodeRuntime{cfg: cfg, tag: tag, prefix: prefix}
	if cfg.TmemEnabled {
		n.backend = tmem.NewBackend(mem.PagesIn(cfg.TmemBytes, cfg.PageSize), cfg.newStore())
		if cfg.CompressBytes > 0 {
			// Attached here, before any cluster remote-tier wiring, so the
			// compressed tier is tier 1 and demotions compress before they
			// cross the network.
			codec, err := tmem.CodecByName(cfg.CompressCodec)
			if err != nil {
				panic(err) // normalize validated the name
			}
			n.compress = tmem.NewCompressedTier(tmem.CompressedTierConfig{
				PageSize:      int(cfg.PageSize),
				CapacityBytes: cfg.CompressBytes,
				Codec:         codec,
			})
			n.backend.AttachTier(n.compress)
		}
		if cfg.DurableBlob != nil {
			// Deterministic options: no fsync ticker goroutine, compaction
			// inline on the caller — a durable run consumes the simulation's
			// random streams exactly like one without the tier.
			dlog, err := durable.Open(durable.Options{
				Blob:          cfg.DurableBlob,
				PageSize:      int(cfg.PageSize),
				Fsync:         durable.FsyncOff,
				InlineCompact: true,
			})
			if err != nil {
				return nil, fmt.Errorf("core: open durable log: %w", err)
			}
			n.dlog = dlog
			n.dtier = durable.NewTier(prefix+"durable", dlog)
		}
	}
	n.names = newVMNames(cfg, prefix)
	return n, nil
}

// start spawns the node's processes into kern. The RNG split order — host
// disk, launch jitter, then one stream per workload — is part of the
// determinism contract: a single node consumes the kernel's root stream
// exactly as the historical inline code did, and cluster nodes consume it
// in node order.
func (n *nodeRuntime) start(kern *sim.Kernel, rng *sim.RNG, obs Observer, res *Result, cancelled func() bool) {
	cfg := n.cfg
	if n.dtier != nil {
		// Attached last — after the compressed tier (construction) and any
		// cluster remote tier (wired between construction and start) — so
		// the journal is the true last resort: only persistent pages no RAM
		// tier could hold pay the durability cost.
		n.backend.AttachTier(n.dtier)
	}
	n.host = vdisk.NewHost(cfg.DiskReadService, cfg.DiskWriteService, cfg.DiskJitter, rng.Split())

	// Built-in figure-series recording rides the same event stream external
	// observers subscribe to. It is node-local (each node records only its
	// own sampling ticks), so n.em fans out to the node's builtins plus the
	// shared external observer.
	var builtins []Observer
	if n.backend != nil {
		builtins = append(builtins, &seriesRecorder{set: res.Series, names: n.names, prefix: n.prefix})
	}
	n.em = &emitter{}
	if len(builtins) > 0 || obs != nil {
		n.em.obs = MultiObserver(append(builtins, obs)...)
	}

	// --- guests + workloads ---
	n.vms = make([]*vmRuntime, len(cfg.VMs))
	n.remaining = len(cfg.VMs)
	jitterRNG := rng.Split()

	for i, spec := range cfg.VMs {
		spec := spec
		g := guest.NewKernel(guest.Config{
			VM:               spec.ID,
			RAMPages:         mem.PagesIn(spec.RAMBytes, cfg.PageSize),
			KernelReserve:    cfg.kernelReserve(spec),
			Backend:          n.backend,
			Frontswap:        n.backend != nil,
			Cleancache:       n.backend != nil && cfg.Cleancache,
			NonExclusiveGets: cfg.NonExclusiveFrontswap,
			Disk:             vdisk.NewDisk(spec.Name, n.host),
		})
		n.vms[i] = &vmRuntime{spec: spec, kernel: g}

		delay := sim.Duration(spec.StartDelay)
		if cfg.StartJitter > 0 {
			delay += sim.Duration(jitterRNG.Int63n(int64(cfg.StartJitter)))
		}
		wlRNG := rng.Split()
		kern.SpawnAt(n.prefix+"wl-"+spec.Name, delay, func(p *sim.Proc) {
			defer func() { n.remaining-- }()
			n.em.emit(VMStarted{
				At: p.Now(), Node: n.tag, VM: n.prefix + spec.Name,
				ID: spec.ID, Workload: spec.Workload.Name(),
			})
			wctx := &workload.Ctx{
				Proc:     p,
				Guest:    g,
				RNG:      wlRNG,
				PageSize: cfg.PageSize,
				Report: func(label string, start, end sim.Time) {
					rec := RunRecord{VM: n.prefix + spec.Name, Label: label, Start: start, End: end}
					res.Runs = append(res.Runs, rec)
					n.em.emit(RunCompleted{At: end, Node: n.tag, Record: rec})
				},
				OnMilestone: func(label string) {
					// The scenario's cross-VM coordination callback fires
					// first, with the node-local VM name (the same contract
					// the old relay-observer gave it); the emitted event
					// then carries the cluster-unique name.
					if cfg.OnMilestone != nil {
						cfg.OnMilestone(spec.Name, label)
					}
					n.em.emit(Milestone{At: p.Now(), Node: n.tag, VM: n.prefix + spec.Name, Label: label})
				},
				Stop:      cfg.Stop,
				Cancelled: cancelled,
			}
			spec.Workload.Run(wctx)
			if end := p.Now(); end > res.EndTime {
				res.EndTime = end
			}
		})
	}

	// --- MM + monitor process ---
	if n.backend != nil {
		var mm tkm.MM
		if cfg.TransportMM != nil {
			mm = transportAdapter{cfg.TransportMM}
		} else {
			pol := cfg.Policy
			if pol == nil {
				pol = policy.Greedy{}
			}
			n.mmDedup = policy.NewDedup(pol)
			mm = tkm.NewLocalMM(n.mmDedup)
		}
		relay := tkm.New(n.backend, mm)

		kern.Spawn(n.prefix+"mm-tick", func(p *sim.Proc) {
			for {
				p.Sleep(cfg.SampleInterval)
				if n.remaining == 0 {
					return
				}
				ms, targets, err := relay.Tick()
				if err != nil {
					// A torn MM connection degrades to greedy: targets
					// simply stop changing, exactly as in the real system.
					return
				}
				n.sampleTicks++
				n.em.emit(SampleTick{At: p.Now(), Node: n.tag, Seq: ms.IntervalSeq, Stats: ms, VMNames: n.names})
				for _, tu := range targets {
					n.em.emit(TargetUpdate{
						At: p.Now(), Node: n.tag, VM: n.names.name(tu.ID), ID: tu.ID, Target: tu.MMTarget,
					})
				}
			}
		})
	}
}

// finalize folds the node's end-of-run statistics into res and checks the
// backend invariants.
func (n *nodeRuntime) finalize(res *Result) error {
	for _, vr := range n.vms {
		v := VMResult{Name: n.prefix + vr.spec.Name, ID: vr.spec.ID, Kernel: vr.kernel.Stats()}
		if n.backend != nil {
			v.Tmem, _ = n.backend.Counts(vr.spec.ID)
		}
		res.VMs = append(res.VMs, v)
	}
	var batches uint64
	if n.mmDedup != nil {
		batches = uint64(n.mmDedup.Sent)
	}
	res.MMBatchesSent += batches
	res.SampleTicks += n.sampleTicks
	res.DiskOps += n.host.Ops()
	res.DiskBusy += n.host.BusyTime()

	if n.tag != "" {
		nr := NodeResult{
			Name:          n.tag,
			PolicyName:    n.cfg.PolicyName(),
			SampleTicks:   n.sampleTicks,
			MMBatchesSent: batches,
			DiskOps:       n.host.Ops(),
			DiskBusy:      n.host.BusyTime(),
		}
		if n.remote != nil {
			s := n.remote.Stats()
			nr.Remote = &s
		}
		if n.compress != nil {
			s := n.compress.CompressedStats()
			nr.Compressed = &s
		}
		if n.dtier != nil {
			s := n.dtier.Summary()
			nr.Durable = &s
		}
		res.Nodes = append(res.Nodes, nr)
	}

	if n.compress != nil {
		if res.Compressed == nil {
			res.Compressed = &tmem.CompressedTierStats{}
		}
		res.Compressed.Add(n.compress.CompressedStats())
	}

	if n.dtier != nil {
		if res.Durable == nil {
			res.Durable = &durable.Summary{}
		}
		res.Durable.Add(n.dtier.Summary())
		// Crash-style close: the journal's value is being reopenable from
		// the WAL alone, and skipping the graceful compaction keeps the
		// run's counters independent of shutdown timing. Callers holding
		// the blob store can durable.Open it again to inspect or resume.
		n.dlog.Close()
	}

	if n.backend != nil {
		if err := n.backend.CheckInvariants(); err != nil {
			return fmt.Errorf("core: post-run invariant violation: %w", err)
		}
	}
	return nil
}

type transportAdapter struct{ t TKMTransport }

func (a transportAdapter) Handle(ms tmem.MemStats) ([]tmem.TargetUpdate, error) {
	return a.t.Handle(ms)
}

func sortRuns(runs []RunRecord) {
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].End < runs[j].End })
}
