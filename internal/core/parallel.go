// Parallel cluster execution: one sim.Kernel per node, each on its own
// goroutine, conservatively synchronized on the only cross-node coupling
// the runtime has — remote-tier page traffic over the in-process Loopback
// transport. The merged event order is (virtual time, node index), the same
// order the sequential single-kernel runtime produces (procs are spawned in
// node order, so same-time events tie-break node-major there too), which
// makes the parallel Result byte-identical to the sequential one.
//
// Protocol. Every node publishes a conservative lower bound on its own
// clock — the timestamp of its next event, published *before* the event
// executes — through a nodeClock. A cross-node operation at local time t
// must wait until the clock of every node whose events could precede it in
// the merged order has passed t:
//
//   - node i's injections into its ring successor j=(i+1)%N (the Loopback
//     gate) wait until bound_j > t when j < i, else bound_j >= t;
//   - node j's own store operations (the Backend owner gate) wait until
//     bound_i > t for its ring predecessor i=(j-1+N)%N when i < j, else
//     bound_i >= t.
//
// The strictness rule is uniform: watching a lower-indexed node requires
// its bound to pass t strictly, because that node's time-t events come
// first in the merged order. Publish-before-execute makes the pair of
// gates mutually exclusive at equal timestamps (both sides inside the same
// store at times t_i, t_j would need t_i >= t_j and t_j >= t_i with one
// inequality strict — impossible) and deadlock-free (the blocked node with
// the globally minimal (bound, index) always passes its gates, because
// every bound it watches belongs to a node that is later in merged order).
// A node goroutine that exits — queue drained, limit hit, cancellation,
// even a panic — poisons its bound to MaxInt64 on the way out, so peers
// gated on it unblock promptly.
//
// Nodes without a wired remote tier (TmemEnabled false on either ring
// endpoint, or RemoteTmem off) share no mutable state at all and run
// completely free.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"smartmem/internal/metrics"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
)

// clockSpin bounds the Gosched spin a gate performs before parking on the
// condition variable. Bounds are published at event granularity, so most
// waits resolve within a few scheduler yields; the bound keeps the spin
// harmless on a single-CPU box.
const clockSpin = 64

// nodeClock is one node's published conservative clock bound. The owning
// node's goroutine is the only publisher; any peer may wait.
type nodeClock struct {
	bound   atomic.Int64
	waiters atomic.Int32
	mu      sync.Mutex
	cond    *sync.Cond
}

func newNodeClock() *nodeClock {
	c := &nodeClock{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// publish raises the bound to t (monotonic; lower or equal values are
// ignored). The broadcast is taken only when a waiter is registered, so the
// uncontended per-event cost is one atomic store and one atomic load.
func (c *nodeClock) publish(t int64) {
	if t <= c.bound.Load() {
		return
	}
	c.bound.Store(t)
	// Store(bound) precedes Load(waiters); a waiter registers before
	// re-checking the bound. Under Go's sequentially consistent atomics one
	// of the two must observe the other, so no wakeup is ever lost.
	if c.waiters.Load() != 0 {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// wait blocks until the bound passes t: strictly greater when strict,
// greater-or-equal otherwise (strict = the watched node's same-time events
// precede the waiter's in merged order).
func (c *nodeClock) wait(t int64, strict bool) {
	ok := func() bool {
		b := c.bound.Load()
		if strict {
			return b > t
		}
		return b >= t
	}
	if ok() {
		return
	}
	for i := 0; i < clockSpin; i++ {
		runtime.Gosched()
		if ok() {
			return
		}
	}
	c.mu.Lock()
	c.waiters.Add(1)
	for !ok() {
		c.cond.Wait()
	}
	c.waiters.Add(-1)
	c.mu.Unlock()
}

// lockedObserver serializes the shared external observer: node goroutines
// emit concurrently, and observers are written against the sequential
// runtime's one-event-at-a-time contract. Cross-node event *order* seen by
// the observer is not deterministic — only the merged Result is.
type lockedObserver struct {
	mu  sync.Mutex
	obs Observer
}

func (l *lockedObserver) OnEvent(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.obs.OnEvent(e)
}

// runClusterParallel is the Parallel=true body of RunClusterWith. cfgs is
// the normalized node list (len > 1).
func runClusterParallel(ctx context.Context, cc ClusterConfig, cfgs []Config, obs Observer) (*Result, error) {
	var limit sim.Duration
	for _, cfg := range cfgs {
		if cfg.Limit > limit {
			limit = cfg.Limit
		}
	}

	res := &Result{
		PolicyName: clusterPolicyName(cfgs),
		Seed:       cfgs[0].Seed,
		Series:     metrics.NewSet(),
	}
	cancelled := cancelHook(ctx)

	nn := len(cfgs)
	nodes := make([]*nodeRuntime, nn)
	for i, cfg := range cfgs {
		tag := fmt.Sprintf("n%d", i)
		n, err := newNodeRuntime(cfg, tag, tag+"/")
		if err != nil {
			return nil, err
		}
		nodes[i] = n
	}

	// Ring wiring identical to the sequential path, keeping the Loopback
	// handles so the injection gates can be installed on them below.
	loops := make([]*tmem.Loopback, nn)
	if cc.RemoteTmem && nn > 1 {
		for i, n := range nodes {
			peer := nodes[(i+1)%nn]
			if n.backend == nil || peer.backend == nil {
				continue
			}
			lb := tmem.NewLoopback(peer.backend)
			tier := tmem.NewRemoteTier(
				"remote("+peer.tag+")",
				lb,
				RemoteGuestBase+tmem.VMID(i),
			)
			n.backend.AttachTier(tier)
			n.remote = tier
			peer.names.add(RemoteGuestBase+tmem.VMID(i), n.tag+"/remote")
			loops[i] = lb
		}
	}

	// One kernel and one published clock per node. Every kernel gets the
	// cluster-wide limit, exactly like the single shared kernel did. The
	// per-kernel root RNGs go unused: the shared root stream below is the
	// one the determinism contract consumes.
	kerns := make([]*sim.Kernel, nn)
	clocks := make([]*nodeClock, nn)
	for i := range kerns {
		kerns[i] = sim.NewKernel(cfgs[0].Seed)
		kerns[i].SetLimit(sim.Time(limit))
		clocks[i] = newNodeClock()
	}

	if obs != nil {
		obs = &lockedObserver{obs: obs}
	}

	// Start every node against one shared root stream, in node order, on
	// this goroutine — the exact consumption pattern of the sequential
	// runtime (sim.NewKernel seeds its root RNG as sim.NewRNG(seed), and
	// all splits happen inside start, before any event runs). Each node
	// records into its own Result shard; the shards merge deterministically
	// after the join.
	rootRNG := sim.NewRNG(cfgs[0].Seed)
	shards := make([]*Result, nn)
	for i, n := range nodes {
		shards[i] = &Result{Series: metrics.NewSet()}
		n.start(kerns[i], rootRNG, obs, shards[i], cancelled)
	}

	// Gates go in only after start: node assembly calls the gated owner
	// surface (RegisterVM and friends) on this goroutine, before any bound
	// has been published.
	for i := range nodes {
		if loops[i] == nil {
			continue
		}
		i := i
		j := (i + 1) % nn
		loops[i].SetGate(func() {
			clocks[j].wait(int64(kerns[i].Now()), j < i)
		})
		nodes[j].backend.SetGate(func() {
			clocks[i].wait(int64(kerns[j].Now()), i < j)
		})
	}

	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Poison the bound on any exit so gated peers never wait on a
			// finished (or crashed) node.
			defer clocks[i].publish(math.MaxInt64)
			parRunLoop(kerns[i], clocks[i], ctx, cancelled, shards[i])
		}(i)
	}
	wg.Wait()

	// Single-threaded epilogue: drop the gates, then drain and finalize in
	// node order exactly like the sequential path.
	for i := range nodes {
		if loops[i] == nil {
			continue
		}
		loops[i].SetGate(nil)
		nodes[(i+1)%nn].backend.SetGate(nil)
	}
	for _, kern := range kerns {
		kern.KillAll()
	}

	for _, sh := range shards {
		res.Runs = append(res.Runs, sh.Runs...)
		if sh.EndTime > res.EndTime {
			res.EndTime = sh.EndTime
		}
		res.HitLimit = res.HitLimit || sh.HitLimit
		res.Cancelled = res.Cancelled || sh.Cancelled
	}
	mergeShardSeries(res.Series, shards)

	var errs []error
	for _, n := range nodes {
		if err := n.finalize(res); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	sortRuns(res.Runs)

	em := &emitter{}
	if obs != nil {
		em.obs = obs
	}
	em.emit(RunFinished{At: res.EndTime, Cancelled: res.Cancelled, Result: res})

	if res.Cancelled {
		return res, context.Cause(ctx)
	}
	return res, nil
}

// parRunLoop is runLoop for one node of a parallel cluster: the kernel
// publishes its next-event time through clock before executing each event,
// and the context is polled between events exactly like the sequential
// loop.
func parRunLoop(kern *sim.Kernel, clock *nodeClock, ctx context.Context, cancelled func() bool, res *Result) {
	kern.RunGated(
		func(t sim.Time) { clock.publish(int64(t)) },
		func() bool {
			if cancelled != nil && ctx.Err() != nil {
				res.Cancelled = true
				return false
			}
			return true
		},
	)
	res.HitLimit = kern.Ended()
	if res.HitLimit || res.Cancelled {
		if now := kern.Now(); now > res.EndTime {
			res.EndTime = now
		}
	}
}

// mergeShardSeries folds the per-node series shards into dst in the order
// the sequential runtime would have created them: by first-sample time,
// node index, then within-node insertion order. Series names are
// node-unique (every name carries its node prefix — a node's outbound
// remote-guest series lives in the *serving* peer's shard under the
// sender's prefix), so the merge is pure concatenation.
func mergeShardSeries(dst *metrics.Set, shards []*Result) {
	type entry struct {
		node, pos int
		s         *metrics.Series
		firstT    float64
	}
	var all []entry
	for i, sh := range shards {
		for pos, name := range sh.Series.Names() {
			s := sh.Series.Get(name)
			e := entry{node: i, pos: pos, s: s, firstT: math.Inf(1)}
			if s.Len() > 0 {
				e.firstT = s.At(0).T
			}
			all = append(all, e)
		}
	}
	sort.Slice(all, func(a, b int) bool {
		ea, eb := all[a], all[b]
		if ea.firstT != eb.firstT {
			return ea.firstT < eb.firstT
		}
		if ea.node != eb.node {
			return ea.node < eb.node
		}
		return ea.pos < eb.pos
	})
	for _, e := range all {
		s := dst.Get(e.s.Name())
		for _, p := range e.s.Points() {
			s.Add(p.T, p.V)
		}
	}
}
