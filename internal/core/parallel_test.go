package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"smartmem/internal/policy"
)

// seriesCSV renders a result's series set to its canonical CSV form, the
// byte-level representation the goldens compare.
func seriesCSV(t *testing.T, res *Result) string {
	t.Helper()
	var sb strings.Builder
	if err := res.Series.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// requireIdenticalResults fails unless the two results are byte-identical
// in every field the sequential/parallel contract covers.
func requireIdenticalResults(t *testing.T, seq, par *Result) {
	t.Helper()
	if seq.EndTime != par.EndTime {
		t.Errorf("end times differ: seq=%v par=%v", seq.EndTime, par.EndTime)
	}
	if seq.HitLimit != par.HitLimit {
		t.Errorf("hit-limit differs: seq=%v par=%v", seq.HitLimit, par.HitLimit)
	}
	if !reflect.DeepEqual(seq.Runs, par.Runs) {
		t.Errorf("run records differ:\nseq: %v\npar: %v", seq.Runs, par.Runs)
	}
	if !reflect.DeepEqual(seq.VMs, par.VMs) {
		t.Errorf("VM stats differ:\nseq: %+v\npar: %+v", seq.VMs, par.VMs)
	}
	if !reflect.DeepEqual(seq.Nodes, par.Nodes) {
		t.Errorf("node summaries differ:\nseq: %+v\npar: %+v", seq.Nodes, par.Nodes)
	}
	if seq.SampleTicks != par.SampleTicks || seq.MMBatchesSent != par.MMBatchesSent {
		t.Errorf("MM counters differ: seq ticks=%d batches=%d, par ticks=%d batches=%d",
			seq.SampleTicks, seq.MMBatchesSent, par.SampleTicks, par.MMBatchesSent)
	}
	if seq.DiskOps != par.DiskOps || seq.DiskBusy != par.DiskBusy {
		t.Errorf("disk counters differ: seq ops=%d busy=%v, par ops=%d busy=%v",
			seq.DiskOps, seq.DiskBusy, par.DiskOps, par.DiskBusy)
	}
	if sc, pc := seriesCSV(t, seq), seriesCSV(t, par); sc != pc {
		t.Errorf("series CSV differs:\nseq:\n%s\npar:\n%s", sc, pc)
	}
}

// TestParallelClusterMatchesSequential is the in-package differential
// oracle: the parallel runtime must reproduce the sequential runtime's
// Result byte-for-byte on the overflow-heavy 2-node cluster.
func TestParallelClusterMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		for _, tc := range []struct {
			name string
			pol  policy.Policy
		}{
			{"greedy", nil},
			{"smart-alloc", policy.SmartAlloc{P: 2}},
		} {
			t.Run(fmt.Sprintf("seed-%d/%s", seed, tc.name), func(t *testing.T) {
				seq, err := RunCluster(smallCluster(seed, tc.pol, true))
				if err != nil {
					t.Fatal(err)
				}
				cc := smallCluster(seed, tc.pol, true)
				cc.Parallel = true
				par, err := RunCluster(cc)
				if err != nil {
					t.Fatal(err)
				}
				requireIdenticalResults(t, seq, par)
			})
		}
	}
}

// fourNodeCluster doubles smallCluster into a 4-node ring (two
// oversubscribed nodes, two absorbers) so overflow crosses every edge.
func fourNodeCluster(seed uint64, pol policy.Policy) ClusterConfig {
	a := smallCluster(seed, pol, true)
	b := smallCluster(seed, pol, true)
	a.Nodes = append(a.Nodes, b.Nodes...)
	return a
}

// The 4-node ring exercises gates on every edge, including the wrap-around
// edge whose injections must wait *strictly* (owner index < injector
// index).
func TestParallelClusterMatchesSequentialFourNodes(t *testing.T) {
	seq, err := RunCluster(fourNodeCluster(11, policy.SmartAlloc{P: 2}))
	if err != nil {
		t.Fatal(err)
	}
	cc := fourNodeCluster(11, policy.SmartAlloc{P: 2})
	cc.Parallel = true
	par, err := RunCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, seq, par)
}

// Cancelling mid-run must stop every node kernel promptly — in both modes —
// and still hand back a merged partial Result covering all nodes.
func TestClusterCancellationStopsAllNodes(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			cc := fourNodeCluster(5, nil)
			cc.Parallel = parallel

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var ticks atomic.Int32
			obs := ObserverFunc(func(e Event) {
				if _, ok := e.(SampleTick); ok && ticks.Add(1) == 3 {
					cancel()
				}
			})

			res, err := RunClusterWith(ctx, cc, obs)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res == nil {
				t.Fatal("no partial result on cancellation")
			}
			if !res.Cancelled {
				t.Error("partial result not marked cancelled")
			}
			if len(res.Nodes) != 4 {
				t.Fatalf("partial result has %d node summaries, want 4", len(res.Nodes))
			}
			if len(res.VMs) != 6 {
				t.Errorf("partial result has %d VM entries, want 6", len(res.VMs))
			}
			if res.EndTime == 0 {
				t.Error("partial result has no end time")
			}
		})
	}
}

// A parallel run against a cluster whose nodes share no remote tier (and
// hence no state) must still merge exactly like the sequential run.
func TestParallelClusterWithoutRemoteTmem(t *testing.T) {
	seq, err := RunCluster(smallCluster(3, nil, false))
	if err != nil {
		t.Fatal(err)
	}
	cc := smallCluster(3, nil, false)
	cc.Parallel = true
	par, err := RunCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, seq, par)
}

func TestNodeClock(t *testing.T) {
	c := newNodeClock()
	c.publish(10)
	c.publish(5) // monotonic: lower publishes are ignored
	if got := c.bound.Load(); got != 10 {
		t.Fatalf("bound = %d, want 10", got)
	}
	c.wait(10, false) // >= 10 holds
	c.wait(9, true)   // > 9 holds

	// A strict wait at the bound must block until the bound moves.
	done := make(chan struct{})
	go func() {
		c.wait(10, true)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("strict wait at the bound returned without a publish")
	default:
	}
	c.publish(11)
	<-done
}
