package core

import (
	"smartmem/internal/mem"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
)

// Event is one element of a node run's typed lifecycle stream. A running
// node emits events in virtual-time order: one VMStarted per VM, Milestone
// and RunCompleted as workloads progress, one SampleTick (plus any
// TargetUpdates) per MM sampling interval, and exactly one RunFinished as
// the final event. The concrete types are the sum's only members.
type Event interface {
	// When returns the virtual time the event occurred at.
	When() sim.Time
	// Kind returns the event's stable machine-readable name
	// ("vm-started", "milestone", ...), used by sinks and logs.
	Kind() string
	// event seals the sum: only types in this package implement Event.
	event()
}

// VMStarted reports that a VM's workload began executing (after its
// StartDelay and launch jitter elapsed).
type VMStarted struct {
	At sim.Time
	// Node names the cluster node the VM runs on ("n0", "n1", ...); empty
	// in a single-node run.
	Node string
	// VM and ID identify the machine; Workload names what it runs.
	VM       string
	ID       tmem.VMID
	Workload string
}

// Milestone reports a workload passing a named internal milestone (e.g.
// usemem beginning a larger allocation, analytics finishing a pass).
type Milestone struct {
	At    sim.Time
	Node  string // cluster node, empty single-node
	VM    string
	Label string
}

// RunCompleted reports one finished workload run measurement — the same
// record appended to Result.Runs.
type RunCompleted struct {
	At     sim.Time
	Node   string // cluster node, empty single-node
	Record RunRecord
}

// SampleTick reports one MM sampling interval: the statistics the TKM
// relayed to the policy. Stats (including its VMs slice) and VMNames are
// shared with the node; observers must treat them as read-only.
type SampleTick struct {
	At sim.Time
	// Node names the cluster node whose MM sampled; empty single-node.
	Node string
	// Seq numbers sampling intervals from 1.
	Seq   uint64
	Stats tmem.MemStats
	// VMNames maps the ids appearing in Stats.VMs to their configured
	// display names, so sinks label VMs consistently with the other
	// events.
	VMNames map[tmem.VMID]string
}

// TargetUpdate reports one per-VM tmem target the MM sent back to the
// hypervisor this interval (only emitted when the policy's batch was not
// suppressed by dedup).
type TargetUpdate struct {
	At     sim.Time
	Node   string // cluster node, empty single-node
	VM     string
	ID     tmem.VMID
	Target mem.Pages
}

// RunFinished is the final event of every run, carrying the assembled
// Result (partial when Cancelled).
type RunFinished struct {
	At sim.Time
	// Cancelled reports that the run's context was cancelled mid-run and
	// Result holds partial data.
	Cancelled bool
	Result    *Result
}

// When implements Event.
func (e VMStarted) When() sim.Time    { return e.At }
func (e Milestone) When() sim.Time    { return e.At }
func (e RunCompleted) When() sim.Time { return e.At }
func (e SampleTick) When() sim.Time   { return e.At }
func (e TargetUpdate) When() sim.Time { return e.At }
func (e RunFinished) When() sim.Time  { return e.At }

// Kind implements Event.
func (VMStarted) Kind() string    { return "vm-started" }
func (Milestone) Kind() string    { return "milestone" }
func (RunCompleted) Kind() string { return "run-completed" }
func (SampleTick) Kind() string   { return "sample-tick" }
func (TargetUpdate) Kind() string { return "target-update" }
func (RunFinished) Kind() string  { return "run-finished" }

func (VMStarted) event()    {}
func (Milestone) event()    {}
func (RunCompleted) event() {}
func (SampleTick) event()   {}
func (TargetUpdate) event() {}
func (RunFinished) event()  {}

// Observer receives a run's event stream. Calls are serialized (the
// simulation dispatches one process at a time) and synchronous: an observer
// that blocks stalls the run, and one that needs to steer it may do so
// immediately (e.g. cancel the run's context, raise a scenario flag).
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// MultiObserver fans one event stream out to several observers, invoking
// them in order. Nil elements are skipped.
func MultiObserver(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	return multiObserver(live)
}

type multiObserver []Observer

func (m multiObserver) OnEvent(e Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

// emitter is the node's internal fan-out point; a nil emitter (no
// observers) makes every emit a no-op so the no-observer path stays free.
type emitter struct{ obs Observer }

func (em *emitter) emit(e Event) {
	if em.obs != nil {
		em.obs.OnEvent(e)
	}
}
