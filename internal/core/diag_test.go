package core

import (
	"fmt"
	"os"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/workload"
)

// Diagnostic: dump policy dynamics for the latecomer scenario. Run with
// SMARTMEM_DIAG=1 to see the tables; skipped otherwise.
func TestDiagLatecomerDynamics(t *testing.T) {
	if os.Getenv("SMARTMEM_DIAG") == "" {
		t.Skip("diagnostic; set SMARTMEM_DIAG=1 to run")
	}
	mk := func(pol policy.Policy) Config {
		wl := func(iters int) workload.Workload {
			return workload.GraphAnalytics{
				Label: "g", GraphBytes: 56 * mem.MiB, Iterations: iters,
				TouchesPerPagePerIter: 2, WriteFraction: 0.03,
				CPUPerTouch: 1500 * sim.Microsecond,
			}
		}
		return Config{
			TmemBytes:   32 * mem.MiB,
			TmemEnabled: true,
			Seed:        7,
			StartJitter: -1,
			Policy:      pol,
			VMs: []VMSpec{
				{ID: 1, Name: "VM1", RAMBytes: 32 * mem.MiB, Workload: wl(30)},
				{ID: 2, Name: "VM2", RAMBytes: 32 * mem.MiB, StartDelay: 10 * sim.Second, Workload: wl(10)},
			},
		}
	}
	for _, pol := range []policy.Policy{nil, policy.SmartAlloc{P: 6}} {
		res, err := Run(mk(pol))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("=== policy %s end=%.1fs\n", res.PolicyName, res.EndTime.Seconds())
		for _, vm := range res.VMs {
			fmt.Printf("  %s: runs=%v evict=%d putsOK=%d putsFail=%d dr=%d dw=%d diskWait=%.1fs\n",
				vm.Name, len(res.RunsFor(vm.Name, "")), vm.Kernel.Evictions, vm.Kernel.PutsOK,
				vm.Kernel.PutsFailed, vm.Kernel.DiskReads, vm.Kernel.DiskWrites,
				vm.Kernel.WaitedOnDisk.Seconds())
		}
		for _, r := range res.Runs {
			fmt.Printf("  run %s/%s: %.1fs..%.1fs (%.1fs)\n", r.VM, r.Label,
				r.Start.Seconds(), r.End.Seconds(), r.Duration().Seconds())
		}
		u1, u2 := res.Series.Get("tmem-VM1"), res.Series.Get("tmem-VM2")
		t1, t2 := res.Series.Get("target-VM1"), res.Series.Get("target-VM2")
		for i := 0; i < u1.Len(); i += 2 {
			p := u1.At(i)
			fmt.Printf("  t=%4.0fs used1=%4.0f tgt1=%4.0f used2=%4.0f tgt2=%4.0f\n",
				p.T, p.V, t1.ValueAt(p.T), u2.ValueAt(p.T), t2.ValueAt(p.T))
		}
	}
}
