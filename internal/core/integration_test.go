package core

import (
	"net"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/tkm"
	"smartmem/internal/workload"
)

// The full remote-MM stack: a node whose Memory Manager runs behind the
// real socket protocol (ServeMM on one end of a pipe), exactly as
// cmd/smartmem-kvd -mm serves it. Targets computed remotely must be
// enforced in the simulated hypervisor.
func TestRemoteMMDrivesSimulatedNode(t *testing.T) {
	nodeEnd, mmEnd := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- tkm.ServeMM(mmEnd, policy.NewDedup(policy.StaticAlloc{})) }()

	cfg := smallScenario(3, nil, true)
	remote := tkm.NewRemoteMM(nodeEnd)
	cfg.TransportMM = remote
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	remote.Close()
	if err := <-done; err != nil {
		t.Errorf("ServeMM: %v", err)
	}
	// static-alloc over the wire: 32 MiB / 2 VMs = 256 pages of 64 KiB.
	if got := res.Series.Get("target-VM1").Last().V; got != 256 {
		t.Errorf("remote target = %v pages, want 256", got)
	}
	if res.SampleTicks == 0 {
		t.Error("no samples flowed over the socket")
	}
}

// A torn MM connection must degrade the node to greedy (targets freeze),
// not crash the run.
func TestTornMMConnectionDegradesToGreedy(t *testing.T) {
	nodeEnd, mmEnd := net.Pipe()
	cfg := smallScenario(3, nil, true)
	remote := tkm.NewRemoteMM(nodeEnd)
	cfg.TransportMM = remote
	// Close the MM side immediately: every exchange fails.
	mmEnd.Close()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Errorf("runs = %+v (workloads must complete despite dead MM)", res.Runs)
	}
}

// Cleancache and frontswap coexist on one node: file-backed reads populate
// the ephemeral pool, anonymous pressure the persistent pool, and the
// persistent pool wins frames under pressure.
func TestCleancacheCoexistsWithFrontswap(t *testing.T) {
	cfg := smallScenario(9, nil, true)
	cfg.Cleancache = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMs[0].Tmem.PutsSucc == 0 {
		t.Error("no successful puts with cleancache enabled")
	}
}

// Per-seed determinism must hold through the full experiments path,
// including milestones and stop flags.
func TestUsememStyleDeterminism(t *testing.T) {
	build := func() Config {
		stop := &workload.Flag{}
		cfg := Config{
			TmemBytes:   48 * mem.MiB,
			TmemEnabled: true,
			Policy:      policy.SmartAlloc{P: 2},
			Seed:        21,
			Stop:        stop,
			VMs: []VMSpec{
				{ID: 1, Name: "VM1", RAMBytes: 64 * mem.MiB,
					Workload: workload.Usemem{StartBytes: 32 * mem.MiB, StepBytes: 32 * mem.MiB, MaxBytes: 128 * mem.MiB}},
				{ID: 2, Name: "VM2", RAMBytes: 64 * mem.MiB,
					Workload: workload.Usemem{StartBytes: 32 * mem.MiB, StepBytes: 32 * mem.MiB, MaxBytes: 128 * mem.MiB}},
			},
		}
		n := 0
		cfg.OnMilestone = func(vm, label string) {
			if label == workload.MilestoneLabel(128*mem.MiB) {
				n++
				if n >= 4 {
					stop.Set()
				}
			}
		}
		return cfg
	}
	a, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != b.EndTime || len(a.Runs) != len(b.Runs) {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.EndTime, len(a.Runs), b.EndTime, len(b.Runs))
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Errorf("run %d differs: %+v vs %+v", i, a.Runs[i], b.Runs[i])
		}
	}
}

// The monitor's series obey conservation: used(VM1)+used(VM2)+free equals
// the pool size at every sample.
func TestSeriesConservation(t *testing.T) {
	res, err := Run(smallScenario(5, policy.SmartAlloc{P: 4}, true))
	if err != nil {
		t.Fatal(err)
	}
	total := float64(mem.PagesIn(32*mem.MiB, 64*mem.KiB))
	free := res.Series.Get("free-tmem")
	u1 := res.Series.Get("tmem-VM1")
	u2 := res.Series.Get("tmem-VM2")
	for i := 0; i < free.Len(); i++ {
		p := free.At(i)
		sum := p.V + u1.ValueAt(p.T) + u2.ValueAt(p.T)
		if sum != total {
			t.Fatalf("t=%.1fs: free %v + used %v + %v = %v, want %v",
				p.T, p.V, u1.ValueAt(p.T), u2.ValueAt(p.T), sum, total)
		}
	}
	if free.Len() == 0 {
		t.Fatal("no samples recorded")
	}
}

// Disk jitter must vary service times without breaking determinism.
func TestDiskJitterDeterministic(t *testing.T) {
	mk := func() Config {
		cfg := smallScenario(13, nil, true)
		cfg.DiskJitter = 0.3
		return cfg
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != b.EndTime {
		t.Errorf("jittered runs diverge: %v vs %v", a.EndTime, b.EndTime)
	}
	if a.DiskOps == 0 {
		t.Error("no disk traffic under pressure")
	}
}
