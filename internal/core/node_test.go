package core

import (
	"strings"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/workload"
)

// smallScenario returns a quick two-VM config with real memory pressure.
func smallScenario(seed uint64, pol policy.Policy, tmemOn bool) Config {
	mk := func(label string) workload.Workload {
		return workload.InMemoryAnalytics{
			Label:        label,
			DatasetBytes: 48 * mem.MiB,
			Passes:       2,
		}
	}
	return Config{
		PageSize:    64 * mem.KiB,
		TmemBytes:   32 * mem.MiB,
		TmemEnabled: tmemOn,
		Policy:      pol,
		Seed:        seed,
		VMs: []VMSpec{
			{ID: 1, Name: "VM1", RAMBytes: 32 * mem.MiB, Workload: mk("run1")},
			{ID: 2, Name: "VM2", RAMBytes: 32 * mem.MiB, Workload: mk("run1")},
		},
	}
}

func TestRunCompletesAndRecords(t *testing.T) {
	res, err := Run(smallScenario(1, nil, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "greedy" {
		t.Errorf("policy name = %q", res.PolicyName)
	}
	if res.EndTime <= 0 {
		t.Error("no virtual time elapsed")
	}
	if res.HitLimit {
		t.Error("small scenario hit the safety limit")
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %+v, want 2", res.Runs)
	}
	for _, r := range res.Runs {
		if r.Duration() <= 0 {
			t.Errorf("run %v has non-positive duration", r)
		}
	}
	if len(res.VMs) != 2 || res.VMs[0].Name != "VM1" {
		t.Errorf("VM results = %+v", res.VMs)
	}
	// Memory pressure existed and flowed through tmem.
	if res.VMs[0].Kernel.Evictions == 0 {
		t.Error("no evictions despite dataset > RAM")
	}
	if res.VMs[0].Tmem.PutsTotal == 0 {
		t.Error("no tmem puts recorded")
	}
	if res.SampleTicks == 0 {
		t.Error("MM never ticked")
	}
	// Series recorded for both VMs plus free-tmem.
	for _, name := range []string{"tmem-VM1", "tmem-VM2", "target-VM1", "free-tmem"} {
		if !res.Series.Has(name) {
			t.Errorf("series %q missing (have %v)", name, res.Series.Names())
		}
	}
}

func TestNoTmemMode(t *testing.T) {
	res, err := Run(smallScenario(1, nil, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != policy.NoTmemName {
		t.Errorf("policy name = %q", res.PolicyName)
	}
	if res.VMs[0].Tmem.PutsTotal != 0 {
		t.Error("tmem puts recorded in no-tmem mode")
	}
	if len(res.Series.Names()) != 0 {
		t.Errorf("series recorded in no-tmem mode: %v", res.Series.Names())
	}
	if res.VMs[0].Kernel.DiskReads == 0 {
		t.Error("no disk reads despite pressure without tmem")
	}
}

func TestNoTmemSlowerThanTmem(t *testing.T) {
	withTmem, err := Run(smallScenario(3, nil, true))
	if err != nil {
		t.Fatal(err)
	}
	noTmem, err := Run(smallScenario(3, nil, false))
	if err != nil {
		t.Fatal(err)
	}
	if noTmem.EndTime <= withTmem.EndTime {
		t.Errorf("no-tmem (%v) not slower than tmem (%v)", noTmem.EndTime, withTmem.EndTime)
	}
}

func TestPolicyTargetsAppearInSeries(t *testing.T) {
	res, err := Run(smallScenario(1, policy.StaticAlloc{}, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "static-alloc" {
		t.Errorf("policy name = %q", res.PolicyName)
	}
	// static-alloc splits 32 MiB across 2 VMs => 16 MiB = 256 pages of 64 KiB.
	ts := res.Series.Get("target-VM1")
	if ts.Len() == 0 {
		t.Fatal("no target series")
	}
	if got := ts.Last().V; got != 256 {
		t.Errorf("target-VM1 = %v pages, want 256", got)
	}
	if res.MMBatchesSent == 0 {
		t.Error("MM sent no batches")
	}
	// Dedup: static targets change once; far fewer batches than ticks.
	if res.MMBatchesSent >= res.SampleTicks && res.SampleTicks > 2 {
		t.Errorf("dedup ineffective: %d batches over %d ticks", res.MMBatchesSent, res.SampleTicks)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(smallScenario(42, policy.SmartAlloc{P: 2}, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallScenario(42, policy.SmartAlloc{P: 2}, true))
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != b.EndTime {
		t.Errorf("same-seed end times differ: %v vs %v", a.EndTime, b.EndTime)
	}
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts differ")
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Errorf("run %d differs: %+v vs %+v", i, a.Runs[i], b.Runs[i])
		}
	}
	c, err := Run(smallScenario(43, policy.SmartAlloc{P: 2}, true))
	if err != nil {
		t.Fatal(err)
	}
	if c.EndTime == a.EndTime {
		t.Error("different seeds produced identical end times (suspicious)")
	}
}

func TestRunsForFilters(t *testing.T) {
	res, err := Run(smallScenario(1, nil, true))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RunsFor("VM1", "run1"); len(got) != 1 {
		t.Errorf("RunsFor(VM1,run1) = %v", got)
	}
	if got := res.RunsFor("", "run1"); len(got) != 2 {
		t.Errorf("RunsFor(,run1) = %v", got)
	}
	if got := res.RunsFor("VM9", ""); len(got) != 0 {
		t.Errorf("RunsFor(VM9,) = %v", got)
	}
}

func TestStartDelayRespected(t *testing.T) {
	cfg := smallScenario(1, nil, true)
	cfg.StartJitter = -1 // disable jitter for exactness
	cfg.VMs[1].StartDelay = 30 * sim.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm2 := res.RunsFor("VM2", "")
	if len(vm2) == 0 || vm2[0].Start < sim.Time(30*sim.Second) {
		t.Errorf("VM2 started early: %+v", vm2)
	}
	vm1 := res.RunsFor("VM1", "")
	if len(vm1) == 0 || vm1[0].Start >= sim.Time(1*sim.Second) {
		t.Errorf("VM1 start unexpected: %+v", vm1)
	}
}

func TestStopFlagAndMilestones(t *testing.T) {
	stop := &workload.Flag{}
	var milestones []string
	cfg := Config{
		TmemBytes:   24 * mem.MiB,
		TmemEnabled: true,
		Seed:        5,
		Stop:        stop,
		OnMilestone: func(vm, label string) {
			milestones = append(milestones, vm+"/"+label)
			if label == workload.MilestoneLabel(32*mem.MiB) {
				stop.Set()
			}
		},
		VMs: []VMSpec{{
			ID: 1, Name: "VM1", RAMBytes: 24 * mem.MiB,
			Workload: workload.Usemem{
				StartBytes: 16 * mem.MiB, StepBytes: 16 * mem.MiB, MaxBytes: 128 * mem.MiB,
			},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(milestones) == 0 || !strings.HasPrefix(milestones[0], "VM1/") {
		t.Fatalf("milestones = %v", milestones)
	}
	// Stopped after the 32 MiB milestone: no 48 MiB milestone may exist.
	for _, m := range milestones {
		if strings.Contains(m, "48MiB") {
			t.Errorf("workload ran past stop: %v", milestones)
		}
	}
	if res.HitLimit {
		t.Error("run hit limit instead of stopping")
	}
}

func TestLimitCutsRunaway(t *testing.T) {
	cfg := smallScenario(1, nil, true)
	cfg.Limit = 200 * sim.Millisecond // far below natural runtime
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitLimit {
		t.Error("limit not reported")
	}
	if res.EndTime != sim.Time(200*sim.Millisecond) {
		t.Errorf("end time = %v, want 200ms", res.EndTime)
	}
}

type stubTransport struct{ calls int }

func (s *stubTransport) Handle(ms tmem.MemStats) ([]tmem.TargetUpdate, error) {
	s.calls++
	out := make([]tmem.TargetUpdate, 0, len(ms.VMs))
	for _, v := range ms.VMs {
		out = append(out, tmem.TargetUpdate{ID: v.ID, MMTarget: 10})
	}
	return out, nil
}

func TestCustomTransportMM(t *testing.T) {
	st := &stubTransport{}
	cfg := smallScenario(1, nil, true)
	cfg.TransportMM = st
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.calls == 0 {
		t.Error("transport never consulted")
	}
	// Target 10 pages is draconian: puts should mostly fail.
	if got := res.Series.Get("target-VM1").Last().V; got != 10 {
		t.Errorf("target = %v, want 10", got)
	}
}

func TestConfigValidationErrors(t *testing.T) {
	base := smallScenario(1, nil, true)
	cases := map[string]func(c *Config){
		"no VMs":          func(c *Config) { c.VMs = nil },
		"dup id":          func(c *Config) { c.VMs[1].ID = c.VMs[0].ID },
		"dup name":        func(c *Config) { c.VMs[1].Name = c.VMs[0].Name },
		"no name":         func(c *Config) { c.VMs[0].Name = "" },
		"no workload":     func(c *Config) { c.VMs[0].Workload = nil },
		"no RAM":          func(c *Config) { c.VMs[0].RAMBytes = 0 },
		"tmem without":    func(c *Config) { c.TmemBytes = 0 },
		"bad page size":   func(c *Config) { c.PageSize = 3000 },
		"bad store":       func(c *Config) { c.Store = "bogus" },
		"negative sample": func(c *Config) { c.SampleInterval = -1 },
	}
	for name, mutate := range cases {
		cfg := base
		cfg.VMs = append([]VMSpec(nil), base.VMs...)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestStoreKinds(t *testing.T) {
	for _, store := range []StoreKind{StoreMeta, StoreData, StoreCompress} {
		cfg := smallScenario(2, nil, true)
		cfg.Store = store
		if _, err := Run(cfg); err != nil {
			t.Errorf("store %q: %v", store, err)
		}
	}
}

func TestGreedyStarvesLatecomerSmartAllocDoesNot(t *testing.T) {
	// One aggressive early VM + one late VM. Under greedy the early VM
	// monopolizes tmem and re-acquires pages as fast as it releases them,
	// starving the latecomer; smart-alloc caps the early VM so the
	// latecomer obtains a materially larger share (the paper's Figure 6
	// dynamic). Targets never force reclaim, so the early VM's *peak* is
	// identical in both cases — what changes is what VM2 can get.
	mk := func(pol policy.Policy) Config {
		wl := func(iters int) workload.Workload {
			return workload.GraphAnalytics{
				Label: "g", GraphBytes: 56 * mem.MiB, Iterations: iters,
				TouchesPerPagePerIter: 2, WriteFraction: 0.03,
				CPUPerTouch: 1500 * sim.Microsecond,
			}
		}
		return Config{
			TmemBytes:   32 * mem.MiB,
			TmemEnabled: true,
			Seed:        7,
			StartJitter: -1,
			Policy:      pol,
			VMs: []VMSpec{
				{ID: 1, Name: "VM1", RAMBytes: 32 * mem.MiB, Workload: wl(30)},
				{ID: 2, Name: "VM2", RAMBytes: 32 * mem.MiB, StartDelay: 10 * sim.Second, Workload: wl(10)},
			},
		}
	}
	greedy, err := Run(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	smart, err := Run(mk(policy.SmartAlloc{P: 6}))
	if err != nil {
		t.Fatal(err)
	}
	// VM1's entire overflow fits in tmem, so under greedy it takes far
	// more than the 50% fair share of the pool.
	fair := float64(mem.PagesIn(32*mem.MiB, 64*mem.KiB)) / 2
	if peak := greedy.Series.Get("tmem-VM1").Max(); peak < 1.5*fair {
		t.Errorf("greedy early VM peaked at %v pages; expected well above fair share %v", peak, fair)
	}
	// While VM1 holds the pool, greedy VM2 pays disk prices for its
	// overflow; smart-alloc shrinks VM1's target so VM2 obtains a share
	// and finishes faster (the paper's headline metric).
	dur := func(r *Result, name string) sim.Duration {
		runs := r.RunsFor(name, "")
		if len(runs) != 1 {
			t.Fatalf("runs for %s = %+v", name, runs)
		}
		return runs[0].Duration()
	}
	greedyVM2 := dur(greedy, "VM2")
	smartVM2 := dur(smart, "VM2")
	if smartVM2 >= greedyVM2 {
		t.Errorf("smart-alloc VM2 runtime %v not below greedy %v", smartVM2, greedyVM2)
	}
}
