// Package core assembles the full SmarTmem node (paper Figure 2): the
// hypervisor tmem backend, one simulated guest per VM running its
// workload, the TKM relay, and the user-space Memory Manager executing a
// high-level policy at the 1 Hz sampling interval. It is the paper's
// primary contribution wired together as a runnable system.
package core

import (
	"fmt"

	"smartmem/internal/durable"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/workload"
)

// VMSpec describes one virtual machine of a scenario (Table II's "VM
// Parameters" plus launch staging).
type VMSpec struct {
	// ID is the VM's identity towards the hypervisor (Xen domain id).
	ID tmem.VMID
	// Name labels the VM in results ("VM1", "VM2", ...).
	Name string
	// RAMBytes is the VM's configured memory.
	RAMBytes mem.Bytes
	// KernelReserveBytes is RAM consumed by the guest OS itself; zero
	// selects DefaultKernelReserveFraction of RAM.
	KernelReserveBytes mem.Bytes
	// StartDelay postpones the workload launch (Scenario 2/3: "the third
	// one launches it 30 seconds later").
	StartDelay sim.Duration
	// Workload is the application the VM executes.
	Workload workload.Workload
}

// DefaultKernelReserveFraction is the share of VM RAM attributed to the
// guest OS when KernelReserveBytes is zero. A 1 GiB Ubuntu 14.04 guest
// idles around 100–150 MiB; 12.5% reproduces that proportionally.
const DefaultKernelReserveFraction = 0.125

// StoreKind selects the tmem page-content backend.
type StoreKind string

// Store kinds.
const (
	// StoreMeta keeps no page contents (simulation default).
	StoreMeta StoreKind = "meta"
	// StoreData keeps verbatim copies (faithful but memory-hungry).
	StoreData StoreKind = "data"
	// StoreCompress keeps zlib-compressed copies.
	StoreCompress StoreKind = "compress"
)

// Config describes a complete node run.
type Config struct {
	// PageSize is the simulation page granularity. Capacities from Table
	// II convert exactly at any power-of-two size; coarser pages simulate
	// faster. Default 64 KiB.
	PageSize mem.Bytes
	// TmemBytes is the capacity of the tmem pool ("the amount of tmem
	// enabled", §IV). Zero with TmemEnabled=true is an error.
	TmemBytes mem.Bytes
	// TmemEnabled=false runs the paper's no-tmem baseline.
	TmemEnabled bool
	// Policy is the MM policy; nil means greedy (hypervisor default).
	Policy policy.Policy
	// SampleInterval is the VIRQ/statistics cadence (paper: 1 s).
	SampleInterval sim.Duration
	// DiskReadService / DiskWriteService are per-page service times of
	// the shared host disk backing all virtual disks. Defaults: 3 ms.
	DiskReadService  sim.Duration
	DiskWriteService sim.Duration
	// DiskJitter adds ±fraction uniform service-time variation.
	DiskJitter float64
	// Seed drives every random stream of the run.
	Seed uint64
	// VMs is the scenario's machine population.
	VMs []VMSpec
	// Limit is a hard virtual-time stop guarding against runaway
	// scenarios. Default 4 h of virtual time.
	Limit sim.Duration
	// StartJitter desynchronizes VM launches by a uniform random delay in
	// [0, StartJitter), modelling boot/launcher skew (the paper's runs
	// are started by hand/scripts over ssh; identical VMs never hit the
	// hypervisor in lockstep). Default 250 ms; set negative to disable.
	StartJitter sim.Duration
	// Store selects the page-content backend (default StoreMeta).
	Store StoreKind
	// CompressBytes, when positive, attaches a CompressedTier of that slab
	// arena budget below the local store (tier 1, ahead of any remote
	// tier): pages demoted off the frame pool compress and dedup in RAM
	// instead of costing a disk or network op. Zero disables compression.
	CompressBytes mem.Bytes
	// CompressCodec selects the compression codec ("lz", "nocompress");
	// empty means "lz". Only meaningful with CompressBytes > 0.
	CompressCodec string
	// DurableBlob, when non-nil, attaches a durable tier (WAL + snapshots
	// into this blob store; see internal/durable) below every other tier:
	// persistent pages demoted past the RAM tiers are journaled instead of
	// failing the put. The sim opens the log with deterministic options
	// (no fsync goroutine, inline compaction), so enabling it does not
	// perturb the virtual-time schedule. Use durable.NewMemStore() for a
	// self-contained run or durable.NewDirStore(dir) to persist across runs.
	DurableBlob durable.BlobStore
	// Cleancache additionally attaches an ephemeral cleancache pool to
	// every guest (the evaluation uses frontswap only; see §VI).
	Cleancache bool
	// NonExclusiveFrontswap disables the Xen driver's exclusive-get
	// frontswap behaviour in every guest (ablation).
	NonExclusiveFrontswap bool
	// Stop, when non-nil, is a shared early-termination flag polled by
	// all workloads (Usemem scenario coordination).
	Stop *workload.Flag
	// OnMilestone receives workload milestones as (vmName, label).
	OnMilestone func(vm, label string)
	// TransportMM, when non-nil, overrides the in-process MM with a
	// custom TKM transport (e.g. a RemoteMM over a socket). The policy
	// field is ignored in that case.
	TransportMM TKMTransport
}

// TKMTransport matches tkm.MM without importing it here (kept as a small
// structural interface so core tests can stub it).
type TKMTransport interface {
	Handle(ms tmem.MemStats) ([]tmem.TargetUpdate, error)
}

// Validate checks the configuration the way a run would: it reports the
// first error normalize would return (bad page size, duplicate VM
// ids/names, tmem enabled with no capacity, ...) without running anything.
// NewSession-style constructors call this so a misconfigured run fails at
// construction time rather than at Run time.
func (c Config) Validate() error {
	_, err := c.normalize()
	return err
}

// normalize fills defaults and validates; returns a copy.
func (c Config) normalize() (Config, error) {
	// The no-tmem sentinel policy is the request to run the baseline:
	// honour it exactly like TmemEnabled=false, so policy.Parse("no-tmem")
	// output can be passed through uniformly.
	if c.Policy != nil && policy.IsNoTmem(c.Policy) {
		c.TmemEnabled = false
		c.Policy = nil
	}
	if c.PageSize == 0 {
		c.PageSize = 64 * mem.KiB
	}
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return c, fmt.Errorf("core: page size %d is not a positive power of two", c.PageSize)
	}
	if c.TmemEnabled && c.TmemBytes <= 0 {
		return c, fmt.Errorf("core: tmem enabled with non-positive capacity %d", c.TmemBytes)
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = sim.Second
	}
	if c.SampleInterval < 0 {
		return c, fmt.Errorf("core: negative sample interval")
	}
	if c.DiskReadService == 0 {
		c.DiskReadService = 3 * sim.Millisecond
	}
	if c.DiskWriteService == 0 {
		c.DiskWriteService = 3 * sim.Millisecond
	}
	if c.Limit == 0 {
		c.Limit = 4 * 3600 * sim.Second
	}
	if c.StartJitter == 0 {
		c.StartJitter = 250 * sim.Millisecond
	}
	if c.StartJitter < 0 {
		c.StartJitter = 0
	}
	if c.Store == "" {
		c.Store = StoreMeta
	}
	switch c.Store {
	case StoreMeta, StoreData, StoreCompress:
	default:
		return c, fmt.Errorf("core: unknown store kind %q", c.Store)
	}
	if c.CompressBytes < 0 {
		return c, fmt.Errorf("core: negative compressed-tier capacity %d", c.CompressBytes)
	}
	if c.CompressBytes > 0 {
		if _, err := tmem.CodecByName(c.CompressCodec); err != nil {
			return c, fmt.Errorf("core: %v", err)
		}
	}
	if len(c.VMs) == 0 {
		return c, fmt.Errorf("core: no VMs configured")
	}
	seen := make(map[tmem.VMID]bool)
	names := make(map[string]bool)
	for i, vm := range c.VMs {
		if vm.Name == "" {
			return c, fmt.Errorf("core: VM %d has no name", i)
		}
		if vm.Workload == nil {
			return c, fmt.Errorf("core: VM %q has no workload", vm.Name)
		}
		if vm.RAMBytes <= 0 {
			return c, fmt.Errorf("core: VM %q has non-positive RAM", vm.Name)
		}
		if seen[vm.ID] {
			return c, fmt.Errorf("core: duplicate VM id %d", vm.ID)
		}
		if names[vm.Name] {
			return c, fmt.Errorf("core: duplicate VM name %q", vm.Name)
		}
		seen[vm.ID] = true
		names[vm.Name] = true
	}
	return c, nil
}

// Normalized returns the configuration with defaults filled in and
// validation applied — exactly the config a run would execute. Run
// fingerprinting (internal/experiments) hashes the normalized form so a
// config that spells a default out explicitly fingerprints identically to
// one that leaves the field zero.
func (c Config) Normalized() (Config, error) { return c.normalize() }

// PolicyName returns the configured policy's display name, accounting for
// the no-tmem and greedy defaults.
func (c Config) PolicyName() string {
	if !c.TmemEnabled {
		return policy.NoTmemName
	}
	if c.Policy == nil {
		return policy.Greedy{}.Name()
	}
	return c.Policy.Name()
}

func (c Config) newStore() tmem.PageStore {
	switch c.Store {
	case StoreData:
		return tmem.NewDataStore(int(c.PageSize))
	case StoreCompress:
		return tmem.NewCompressStore(int(c.PageSize))
	default:
		return tmem.NewMetaStore(int(c.PageSize))
	}
}

func (c Config) kernelReserve(vm VMSpec) mem.Pages {
	if vm.KernelReserveBytes > 0 {
		return mem.PagesIn(vm.KernelReserveBytes, c.PageSize)
	}
	return mem.Pages(DefaultKernelReserveFraction * float64(mem.PagesIn(vm.RAMBytes, c.PageSize)))
}
