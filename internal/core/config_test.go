package core

import (
	"strings"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/workload"
)

// validConfig returns a minimal configuration that passes validation;
// tests mutate one field at a time.
func validConfig() Config {
	return Config{
		TmemBytes:   64 * mem.MiB,
		TmemEnabled: true,
		Seed:        1,
		VMs: []VMSpec{
			{ID: 1, Name: "VM1", RAMBytes: 64 * mem.MiB, Workload: workload.DefaultUsemem()},
			{ID: 2, Name: "VM2", RAMBytes: 64 * mem.MiB, Workload: workload.DefaultUsemem()},
		},
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// normalize fills defaults without erroring.
	cfg, err := validConfig().normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PageSize != 64*mem.KiB {
		t.Errorf("default page size = %d", cfg.PageSize)
	}
	if cfg.SampleInterval != sim.Second {
		t.Errorf("default sample interval = %d", cfg.SampleInterval)
	}
	if cfg.Store != StoreMeta {
		t.Errorf("default store = %q", cfg.Store)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{
			name:    "duplicate VM id",
			mutate:  func(c *Config) { c.VMs[1].ID = c.VMs[0].ID },
			wantErr: "duplicate VM id",
		},
		{
			name:    "duplicate VM name",
			mutate:  func(c *Config) { c.VMs[1].Name = c.VMs[0].Name },
			wantErr: "duplicate VM name",
		},
		{
			name:    "page size not a power of two",
			mutate:  func(c *Config) { c.PageSize = 3000 },
			wantErr: "power of two",
		},
		{
			name:    "negative page size",
			mutate:  func(c *Config) { c.PageSize = -4096 },
			wantErr: "power of two",
		},
		{
			name:    "tmem enabled with zero capacity",
			mutate:  func(c *Config) { c.TmemBytes = 0 },
			wantErr: "tmem enabled with non-positive capacity",
		},
		{
			name:    "tmem enabled with negative capacity",
			mutate:  func(c *Config) { c.TmemBytes = -1 },
			wantErr: "tmem enabled with non-positive capacity",
		},
		{
			name:    "negative sample interval",
			mutate:  func(c *Config) { c.SampleInterval = -sim.Second },
			wantErr: "negative sample interval",
		},
		{
			name:    "no VMs",
			mutate:  func(c *Config) { c.VMs = nil },
			wantErr: "no VMs configured",
		},
		{
			name:    "unnamed VM",
			mutate:  func(c *Config) { c.VMs[0].Name = "" },
			wantErr: "has no name",
		},
		{
			name:    "VM without workload",
			mutate:  func(c *Config) { c.VMs[0].Workload = nil },
			wantErr: "has no workload",
		},
		{
			name:    "VM with non-positive RAM",
			mutate:  func(c *Config) { c.VMs[0].RAMBytes = 0 },
			wantErr: "non-positive RAM",
		},
		{
			name:    "unknown store kind",
			mutate:  func(c *Config) { c.Store = "bogus" },
			wantErr: "unknown store kind",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %q, want substring %q", err, tc.wantErr)
			}
			// The same error surfaces from Run, so misconfigured batch
			// callers fail identically.
			if _, rerr := Run(cfg); rerr == nil || rerr.Error() != err.Error() {
				t.Errorf("Run error = %v, want %v", rerr, err)
			}
		})
	}
}

// TestValidateDoesNotMutate: Validate works on a copy; the receiver keeps
// its zero defaults.
func TestValidateDoesNotMutate(t *testing.T) {
	cfg := validConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.PageSize != 0 || cfg.Store != "" {
		t.Errorf("Validate mutated the config: %+v", cfg)
	}
}

// The NoTmem sentinel (policy.Parse("no-tmem")) must be honoured exactly
// like TmemEnabled=false: no backend, baseline policy name, and validation
// must not demand a tmem capacity.
func TestNoTmemSentinelRunsBaseline(t *testing.T) {
	cfg := validConfig()
	cfg.Policy = policy.NoTmem{}

	norm, err := cfg.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.TmemEnabled || norm.Policy != nil {
		t.Errorf("sentinel not honoured: enabled=%v policy=%v", norm.TmemEnabled, norm.Policy)
	}
	if name := norm.PolicyName(); name != policy.NoTmemName {
		t.Errorf("policy name = %q, want %q", name, policy.NoTmemName)
	}
	// Even with no capacity configured the sentinel must validate (the
	// baseline needs none).
	cfg.TmemBytes = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("no-tmem sentinel with zero capacity rejected: %v", err)
	}
}
