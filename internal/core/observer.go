package core

import (
	"fmt"

	"smartmem/internal/metrics"
	"smartmem/internal/tmem"
)

// Built-in observers: the node's own bookkeeping rides the same event
// stream external observers subscribe to. Series recording (the data behind
// the paper's Figures 4/6/8/10) is just an observer registered ahead of the
// caller's; each cluster node gets its own instance so nodes never record
// each other's sampling ticks.

// vmNames maps VMID→display name. It is built once per node (it used to be
// rebuilt on every sampling tick, O(VMs) on the hot path) and shared by the
// series recorder and the target-update emitter. In a cluster the names
// carry the node prefix ("n0/VM1"), and the peer wiring adds entries for
// the remote-guest accounts overflow pages are booked under.
type vmNames map[tmem.VMID]string

func newVMNames(cfg Config, prefix string) vmNames {
	m := make(vmNames, len(cfg.VMs))
	for _, vm := range cfg.VMs {
		m[vm.ID] = prefix + vm.Name
	}
	return m
}

func (m vmNames) add(id tmem.VMID, name string) { m[id] = name }

func (m vmNames) name(id tmem.VMID) string {
	if n, ok := m[id]; ok {
		return n
	}
	return fmt.Sprintf("vm%d", id)
}

// seriesRecorder appends each of its node's SampleTicks to the run's
// metrics set: "tmem-<vm>" (pages in use), "target-<vm>" (mm_target) and
// "free-tmem" (node-prefixed in clusters, e.g. "n0/free-tmem").
type seriesRecorder struct {
	set    *metrics.Set
	names  vmNames
	prefix string
}

// OnEvent implements Observer.
func (r *seriesRecorder) OnEvent(e Event) {
	st, ok := e.(SampleTick)
	if !ok {
		return
	}
	t := st.At.Seconds()
	ms := st.Stats
	for _, v := range ms.VMs {
		name := r.names.name(v.ID)
		r.set.Get("tmem-"+name).Add(t, float64(v.TmemUsed))
		tgt := v.MMTarget
		if tgt == tmem.Unlimited {
			tgt = ms.TotalTmem // plot greedy's "no limit" as the whole pool
		}
		r.set.Get("target-"+name).Add(t, float64(tgt))
	}
	r.set.Get(r.prefix+"free-tmem").Add(t, float64(ms.FreeTmem))
}
