package core

import (
	"fmt"

	"smartmem/internal/metrics"
	"smartmem/internal/tmem"
)

// Built-in observers: the node's own bookkeeping rides the same event
// stream external observers subscribe to. Series recording (the data behind
// the paper's Figures 4/6/8/10) and the legacy Config.OnMilestone callback
// are both just observers registered ahead of the caller's.

// vmNames maps VMID→display name. It is built once per run (it used to be
// rebuilt on every sampling tick, O(VMs) on the hot path) and shared by the
// series recorder and the target-update emitter.
type vmNames map[tmem.VMID]string

func newVMNames(cfg Config) vmNames {
	m := make(vmNames, len(cfg.VMs))
	for _, vm := range cfg.VMs {
		m[vm.ID] = vm.Name
	}
	return m
}

func (m vmNames) name(id tmem.VMID) string {
	if n, ok := m[id]; ok {
		return n
	}
	return fmt.Sprintf("vm%d", id)
}

// seriesRecorder appends each SampleTick to the run's metrics set:
// "tmem-<vm>" (pages in use), "target-<vm>" (mm_target) and "free-tmem".
type seriesRecorder struct {
	set   *metrics.Set
	names vmNames
}

// OnEvent implements Observer.
func (r *seriesRecorder) OnEvent(e Event) {
	st, ok := e.(SampleTick)
	if !ok {
		return
	}
	t := st.At.Seconds()
	ms := st.Stats
	for _, v := range ms.VMs {
		name := r.names.name(v.ID)
		r.set.Get("tmem-"+name).Add(t, float64(v.TmemUsed))
		tgt := v.MMTarget
		if tgt == tmem.Unlimited {
			tgt = ms.TotalTmem // plot greedy's "no limit" as the whole pool
		}
		r.set.Get("target-"+name).Add(t, float64(tgt))
	}
	r.set.Get("free-tmem").Add(t, float64(ms.FreeTmem))
}

// milestoneRelay adapts the legacy Config.OnMilestone callback to the
// event stream, preserving its synchronous cross-VM coordination semantics
// (the Usemem scenario raises stop flags from inside the callback).
type milestoneRelay struct{ fn func(vm, label string) }

// OnEvent implements Observer.
func (r milestoneRelay) OnEvent(e Event) {
	if m, ok := e.(Milestone); ok {
		r.fn(m.VM, m.Label)
	}
}
