// Cluster runtime: N SmarTmem nodes sharing one simulated clock, each with
// its own tmem backend, guests, TKM and Memory Manager, wired peer-to-peer
// so one node's remote tmem tier lands in another node's striped store —
// the RAMster-style extension of the paper's single-node architecture
// (Magenheimer's tmem lineage, paper §II): a node whose local tmem pool is
// exhausted ships overflow pages to a peer's RAM before falling back to
// virtual-disk swap.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"smartmem/internal/metrics"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
)

// ClusterConfig describes a multi-node run. Every node is a full Config —
// its own VM population, tmem capacity and policy — and all nodes share one
// deterministic simulation kernel seeded from node 0.
type ClusterConfig struct {
	// Nodes holds one node configuration per cluster node. Node i is
	// tagged "n<i>"; its VMs appear in results and events as "n<i>/<name>".
	Nodes []Config
	// RemoteTmem wires each node's backend with a remote overflow tier
	// targeting the next node's store in ring order (node i → node
	// (i+1) mod N) over the deterministic in-process transport. Pages a
	// node cannot hold locally then land in the peer's RAM instead of the
	// guest's swap disk. Ignored with fewer than two nodes.
	RemoteTmem bool
	// Parallel runs each node's kernel on its own goroutine, conservatively
	// synchronized on the remote-tier traffic so the merged Result is
	// byte-identical to the sequential (Parallel=false) run — see
	// parallel.go for the protocol. Ignored with fewer than two nodes.
	// Node configs must not share mutable state (the stock scenarios
	// allocate their stop flags and milestone counters per node).
	Parallel bool
}

// RemoteGuestBase is the VM-id namespace remote-tier pages are accounted
// under on the serving peer: pages shipped by node i appear in the peer's
// statistics as VM RemoteGuestBase+i, displayed as "n<i>/remote". Scenario
// VM ids must stay below this base.
const RemoteGuestBase tmem.VMID = 1000

// NormalizedNodes returns every node configuration with defaults filled in
// and validation applied, in node order — exactly the configs a cluster run
// would execute (see Config.Normalized).
func (cc ClusterConfig) NormalizedNodes() ([]Config, error) { return cc.normalize() }

// Validate checks every node configuration the way a cluster run would.
func (cc ClusterConfig) Validate() error {
	_, err := cc.normalize()
	return err
}

func (cc ClusterConfig) normalize() ([]Config, error) {
	if len(cc.Nodes) == 0 {
		return nil, fmt.Errorf("core: cluster with no nodes")
	}
	out := make([]Config, len(cc.Nodes))
	for i, cfg := range cc.Nodes {
		n, err := cfg.normalize()
		if err != nil {
			return nil, fmt.Errorf("core: node n%d: %w", i, err)
		}
		for _, vm := range n.VMs {
			if vm.ID >= RemoteGuestBase {
				return nil, fmt.Errorf("core: node n%d: VM id %d collides with the remote-guest namespace (>= %d)",
					i, vm.ID, RemoteGuestBase)
			}
		}
		out[i] = n
	}
	return out, nil
}

// RunCluster executes a cluster run to completion; see RunClusterWith.
func RunCluster(cc ClusterConfig) (*Result, error) {
	return RunClusterWith(context.Background(), cc, nil)
}

// RunClusterWith executes a multi-node simulation, streaming node-tagged
// lifecycle events to obs and honouring ctx cancellation like RunWith. The
// returned Result merges all nodes: run records and VM statistics carry
// node-prefixed names, counters are summed, and Result.Nodes breaks the
// totals down per node (including each node's remote-tier traffic).
func RunClusterWith(ctx context.Context, cc ClusterConfig, obs Observer) (*Result, error) {
	cfgs, err := cc.normalize()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cc.Parallel && len(cfgs) > 1 {
		return runClusterParallel(ctx, cc, cfgs, obs)
	}

	// One simulated clock for the whole cluster, seeded from node 0; each
	// node derives its private streams from the shared root in node order,
	// so runs are deterministic for a given ClusterConfig. The stop limit
	// is the largest node limit.
	kern := sim.NewKernel(cfgs[0].Seed)
	var limit sim.Duration
	for _, cfg := range cfgs {
		if cfg.Limit > limit {
			limit = cfg.Limit
		}
	}
	kern.SetLimit(sim.Time(limit))

	res := &Result{
		PolicyName: clusterPolicyName(cfgs),
		Seed:       cfgs[0].Seed,
		Series:     metrics.NewSet(),
	}
	cancelled := cancelHook(ctx)

	nodes := make([]*nodeRuntime, len(cfgs))
	for i, cfg := range cfgs {
		tag := fmt.Sprintf("n%d", i)
		n, err := newNodeRuntime(cfg, tag, tag+"/")
		if err != nil {
			return nil, err
		}
		nodes[i] = n
	}

	// Peer-to-peer tier wiring: node i's overflow lands in node (i+1)%N's
	// striped store. The loopback transport serves only the peer's local
	// tier, so a full ring cannot bounce one page around forever; the
	// peer's statistics book the shipped pages under node i's remote-guest
	// account.
	if cc.RemoteTmem && len(nodes) > 1 {
		for i, n := range nodes {
			peer := nodes[(i+1)%len(nodes)]
			if n.backend == nil || peer.backend == nil {
				continue
			}
			tier := tmem.NewRemoteTier(
				"remote("+peer.tag+")",
				tmem.NewLoopback(peer.backend),
				RemoteGuestBase+tmem.VMID(i),
			)
			n.backend.AttachTier(tier)
			n.remote = tier
			peer.names.add(RemoteGuestBase+tmem.VMID(i), n.tag+"/remote")
		}
	}

	rootRNG := kern.RNG()
	for _, n := range nodes {
		n.start(kern, rootRNG, obs, res, cancelled)
	}

	runLoop(kern, ctx, cancelled, res)
	kern.KillAll()

	var errs []error
	for _, n := range nodes {
		if err := n.finalize(res); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	sortRuns(res.Runs)

	em := &emitter{}
	if obs != nil {
		em.obs = obs
	}
	em.emit(RunFinished{At: res.EndTime, Cancelled: res.Cancelled, Result: res})

	if res.Cancelled {
		return res, context.Cause(ctx)
	}
	return res, nil
}

// clusterPolicyName joins the distinct node policy names in node order.
func clusterPolicyName(cfgs []Config) string {
	var names []string
	seen := make(map[string]bool)
	for _, cfg := range cfgs {
		if name := cfg.PolicyName(); !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return strings.Join(names, "+")
}
