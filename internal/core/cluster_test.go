package core

import (
	"reflect"
	"strings"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/workload"
)

// smallCluster returns a quick 2-node cluster: node 0 is oversubscribed
// (two VMs against a sliver of tmem) and node 1 has plenty of spare tmem,
// so remote overflow actually flows n0 → n1.
func smallCluster(seed uint64, pol policy.Policy, remote bool) ClusterConfig {
	mk := func(label string) workload.Workload {
		return workload.InMemoryAnalytics{
			Label:          label,
			DatasetBytes:   48 * mem.MiB,
			Passes:         2,
			CPUPerPageLoad: 400 * sim.Microsecond,
			CPUPerPagePass: 2500 * sim.Microsecond,
		}
	}
	n0 := Config{
		PageSize:    64 * mem.KiB,
		TmemBytes:   8 * mem.MiB,
		TmemEnabled: true,
		Policy:      pol,
		Seed:        seed,
		VMs: []VMSpec{
			{ID: 1, Name: "VM1", RAMBytes: 32 * mem.MiB, Workload: mk("run1")},
			{ID: 2, Name: "VM2", RAMBytes: 32 * mem.MiB, Workload: mk("run1")},
		},
	}
	n1 := Config{
		PageSize:    64 * mem.KiB,
		TmemBytes:   96 * mem.MiB,
		TmemEnabled: true,
		Policy:      pol,
		Seed:        seed,
		VMs: []VMSpec{
			{ID: 1, Name: "VM1", RAMBytes: 48 * mem.MiB, Workload: mk("run1")},
		},
	}
	return ClusterConfig{Nodes: []Config{n0, n1}, RemoteTmem: remote}
}

func TestClusterRunMergesNodes(t *testing.T) {
	res, err := RunCluster(smallCluster(1, nil, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.HitLimit {
		t.Fatal("cluster hit the safety limit")
	}
	if len(res.Runs) != 3 {
		t.Fatalf("runs = %+v, want 3 (two on n0, one on n1)", res.Runs)
	}
	for _, r := range res.Runs {
		if !strings.HasPrefix(r.VM, "n0/") && !strings.HasPrefix(r.VM, "n1/") {
			t.Errorf("run VM %q lacks a node prefix", r.VM)
		}
	}
	if len(res.VMs) != 3 || res.VMs[0].Name != "n0/VM1" || res.VMs[2].Name != "n1/VM1" {
		t.Errorf("VM results = %+v", res.VMs)
	}
	if len(res.Nodes) != 2 || res.Nodes[0].Name != "n0" || res.Nodes[1].Name != "n1" {
		t.Fatalf("node summaries = %+v", res.Nodes)
	}
	if got := res.Nodes[0].SampleTicks + res.Nodes[1].SampleTicks; got != res.SampleTicks {
		t.Errorf("per-node sample ticks %d != total %d", got, res.SampleTicks)
	}
	// Node-prefixed series for both nodes.
	for _, name := range []string{"tmem-n0/VM1", "tmem-n1/VM1", "n0/free-tmem", "n1/free-tmem"} {
		if !res.Series.Has(name) {
			t.Errorf("series %q missing (have %v)", name, res.Series.Names())
		}
	}
}

func TestClusterRemoteTierLandsInPeerStore(t *testing.T) {
	res, err := RunCluster(smallCluster(1, nil, true))
	if err != nil {
		t.Fatal(err)
	}
	r0 := res.Nodes[0].Remote
	if r0 == nil {
		t.Fatal("node 0 has no remote-tier stats")
	}
	if r0.PutsOK == 0 {
		t.Error("oversubscribed node 0 never overflowed to its peer")
	}
	if r0.Errors != 0 {
		t.Errorf("loopback transport errored %d times", r0.Errors)
	}
	// The peer records the shipped pages under node 0's remote-guest
	// account, so the series exists under the synthetic name.
	if !res.Series.Has("tmem-n0/remote") {
		t.Errorf("peer did not record the remote-guest series (have %v)", res.Series.Names())
	}

	// Without remote tmem, the same cluster sees no tier traffic and node 0
	// pays more disk I/O.
	plain, err := RunCluster(smallCluster(1, nil, false))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Nodes[0].Remote != nil {
		t.Error("remote stats present despite RemoteTmem=false")
	}
	if plain.Nodes[0].DiskOps <= res.Nodes[0].DiskOps {
		t.Errorf("remote tier did not reduce node 0 disk traffic: with=%d without=%d",
			res.Nodes[0].DiskOps, plain.Nodes[0].DiskOps)
	}
}

func TestClusterEventsCarryNodeTags(t *testing.T) {
	tags := map[string]bool{}
	var vmNamesSeen []string
	obs := ObserverFunc(func(e Event) {
		switch ev := e.(type) {
		case VMStarted:
			tags[ev.Node] = true
			vmNamesSeen = append(vmNamesSeen, ev.VM)
		case SampleTick:
			tags[ev.Node] = true
		}
	})
	if _, err := RunClusterWith(nil, smallCluster(1, nil, true), obs); err != nil {
		t.Fatal(err)
	}
	if !tags["n0"] || !tags["n1"] {
		t.Errorf("node tags seen = %v, want n0 and n1", tags)
	}
	for _, name := range vmNamesSeen {
		if !strings.HasPrefix(name, "n0/") && !strings.HasPrefix(name, "n1/") {
			t.Errorf("event VM %q lacks node prefix", name)
		}
	}
}

// Cluster runs must be exactly reproducible: same ClusterConfig, same
// everything.
func TestClusterDeterminism(t *testing.T) {
	a, err := RunCluster(smallCluster(7, policy.SmartAlloc{P: 2}, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(smallCluster(7, policy.SmartAlloc{P: 2}, true))
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != b.EndTime {
		t.Errorf("end times differ: %v vs %v", a.EndTime, b.EndTime)
	}
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Errorf("run records differ:\n%v\n%v", a.Runs, b.Runs)
	}
	if !reflect.DeepEqual(a.VMs, b.VMs) {
		t.Errorf("VM stats differ")
	}
	if !reflect.DeepEqual(a.Nodes, b.Nodes) {
		t.Errorf("node summaries differ:\n%+v\n%+v", a.Nodes, b.Nodes)
	}
}

// A single-node cluster must behave exactly like the plain single-node
// runtime (modulo the node prefix): same schedule, same measurements.
func TestOneNodeClusterMatchesSingleNode(t *testing.T) {
	single, err := Run(smallScenario(3, policy.StaticAlloc{}, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallScenario(3, policy.StaticAlloc{}, true)
	clustered, err := RunCluster(ClusterConfig{Nodes: []Config{cfg}, RemoteTmem: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Runs) != len(clustered.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(single.Runs), len(clustered.Runs))
	}
	for i := range single.Runs {
		s, c := single.Runs[i], clustered.Runs[i]
		if "n0/"+s.VM != c.VM || s.Label != c.Label || s.Start != c.Start || s.End != c.End {
			t.Errorf("run %d differs: %+v vs %+v", i, s, c)
		}
	}
	if single.EndTime != clustered.EndTime || single.SampleTicks != clustered.SampleTicks {
		t.Errorf("schedule drifted: end %v/%v ticks %d/%d",
			single.EndTime, clustered.EndTime, single.SampleTicks, clustered.SampleTicks)
	}
}

func TestClusterValidate(t *testing.T) {
	if err := (ClusterConfig{}).Validate(); err == nil {
		t.Error("empty cluster validated")
	}
	bad := smallCluster(1, nil, true)
	bad.Nodes[1].VMs[0].ID = RemoteGuestBase + 1
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "remote-guest") {
		t.Errorf("remote-guest id collision not rejected: %v", err)
	}
	bad = smallCluster(1, nil, true)
	bad.Nodes[0].VMs = nil
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "n0") {
		t.Errorf("node-indexed validation error missing: %v", err)
	}
}
