package policy

import (
	"math"
	"testing"
	"testing/quick"

	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

func stats(total, free mem.Pages, vms ...tmem.VMStat) tmem.MemStats {
	return tmem.MemStats{TotalTmem: total, FreeTmem: free, VMs: vms}
}

func targetOf(out []tmem.TargetUpdate, id tmem.VMID) (mem.Pages, bool) {
	for _, t := range out {
		if t.ID == id {
			return t.MMTarget, true
		}
	}
	return 0, false
}

func TestGreedyNeverSendsTargets(t *testing.T) {
	g := Greedy{}
	if g.Name() != "greedy" {
		t.Errorf("name = %q", g.Name())
	}
	ms := stats(1000, 0,
		tmem.VMStat{ID: 1, PutsTotal: 100, PutsSucc: 0, TmemUsed: 500},
		tmem.VMStat{ID: 2, PutsTotal: 100, PutsSucc: 100, TmemUsed: 500},
	)
	if out := g.Targets(ms); out != nil {
		t.Errorf("greedy produced targets: %v", out)
	}
}

// Algorithm 2: equal split across all registered VMs.
func TestStaticAllocEqualSplit(t *testing.T) {
	p := StaticAlloc{}
	ms := stats(3000, 3000,
		tmem.VMStat{ID: 1}, tmem.VMStat{ID: 2}, tmem.VMStat{ID: 3},
	)
	out := p.Targets(ms)
	if len(out) != 3 {
		t.Fatalf("targets = %v", out)
	}
	for _, vm := range []tmem.VMID{1, 2, 3} {
		if got, ok := targetOf(out, vm); !ok || got != 1000 {
			t.Errorf("VM %d target = %d, want 1000", vm, got)
		}
	}
	if p.Targets(stats(3000, 3000)) != nil {
		t.Error("static-alloc with zero VMs should return nil")
	}
}

// static-alloc ignores demand entirely: identical split whatever the stats.
func TestStaticAllocIgnoresDemand(t *testing.T) {
	p := StaticAlloc{}
	busy := stats(1000, 0,
		tmem.VMStat{ID: 1, PutsTotal: 9999, PutsSucc: 0, TmemUsed: 900},
		tmem.VMStat{ID: 2},
	)
	out := p.Targets(busy)
	a, _ := targetOf(out, 1)
	b, _ := targetOf(out, 2)
	if a != b || a != 500 {
		t.Errorf("targets = %d, %d; want equal 500", a, b)
	}
}

// Algorithm 3: initially no VM gets capacity; the first failed put makes a
// VM active and the split covers actives only.
func TestReconfStaticActivation(t *testing.T) {
	p := ReconfStatic{}
	// No failed puts anywhere: all targets zero.
	out := p.Targets(stats(1200, 1200,
		tmem.VMStat{ID: 1}, tmem.VMStat{ID: 2}, tmem.VMStat{ID: 3}))
	for _, vm := range []tmem.VMID{1, 2, 3} {
		if got, _ := targetOf(out, vm); got != 0 {
			t.Errorf("initial VM %d target = %d, want 0", vm, got)
		}
	}
	// One active VM: it gets everything.
	out = p.Targets(stats(1200, 1200,
		tmem.VMStat{ID: 1, CumulPutsFailed: 5},
		tmem.VMStat{ID: 2}, tmem.VMStat{ID: 3}))
	if got, _ := targetOf(out, 1); got != 1200 {
		t.Errorf("single active target = %d, want 1200", got)
	}
	// Two actives: split in half. Activity is sticky (cumulative counter).
	out = p.Targets(stats(1200, 0,
		tmem.VMStat{ID: 1, CumulPutsFailed: 5},
		tmem.VMStat{ID: 2, CumulPutsFailed: 1},
		tmem.VMStat{ID: 3}))
	for _, vm := range []tmem.VMID{1, 2} {
		if got, _ := targetOf(out, vm); got != 600 {
			t.Errorf("active VM %d target = %d, want 600", vm, got)
		}
	}
	if p.Targets(stats(100, 100)) != nil {
		t.Error("reconf-static with zero VMs should return nil")
	}
}

// Algorithm 4 lines 10–12: failed puts grow the target by P% of total.
func TestSmartAllocGrowsOnFailedPuts(t *testing.T) {
	p := SmartAlloc{P: 2}
	ms := stats(10000, 5000,
		tmem.VMStat{ID: 1, PutsTotal: 50, PutsSucc: 20, TmemUsed: 1000, MMTarget: 1000},
		tmem.VMStat{ID: 2, PutsTotal: 10, PutsSucc: 10, TmemUsed: 900, MMTarget: 1000},
	)
	out := p.Targets(ms)
	// VM1 failed 30 puts: target 1000 + 2%*10000 = 1200.
	if got, _ := targetOf(out, 1); got != 1200 {
		t.Errorf("VM1 target = %d, want 1200", got)
	}
	// VM2: slack 100 <= threshold (2% of 10000 = 200): unchanged.
	if got, _ := targetOf(out, 2); got != 1000 {
		t.Errorf("VM2 target = %d, want 1000 (within threshold)", got)
	}
}

// Algorithm 4 lines 16–18: idle VMs with slack beyond the threshold shrink
// by P%.
func TestSmartAllocShrinksIdleVMs(t *testing.T) {
	p := SmartAlloc{P: 10, Threshold: 50}
	ms := stats(10000, 9000,
		tmem.VMStat{ID: 1, TmemUsed: 100, MMTarget: 1000}, // slack 900 > 50
	)
	out := p.Targets(ms)
	if got, _ := targetOf(out, 1); got != 900 {
		t.Errorf("target = %d, want 900 (=90%% of 1000)", got)
	}
}

// Equation 2: over-allocation rescales proportionally so Σtargets ≤ total.
func TestSmartAllocRescalesOverAllocation(t *testing.T) {
	p := SmartAlloc{P: 50, Threshold: 1}
	ms := stats(1000, 0,
		tmem.VMStat{ID: 1, PutsTotal: 10, PutsSucc: 0, TmemUsed: 600, MMTarget: 600},
		tmem.VMStat{ID: 2, PutsTotal: 10, PutsSucc: 0, TmemUsed: 400, MMTarget: 400},
	)
	out := p.Targets(ms)
	// Raw: 600+500=1100, 400+500=900, sum 2000 > 1000 → factor 0.5.
	a, _ := targetOf(out, 1)
	b, _ := targetOf(out, 2)
	if a != 550 || b != 450 {
		t.Errorf("targets = %d, %d; want 550, 450", a, b)
	}
	if a+b > 1000 {
		t.Errorf("sum %d exceeds total", a+b)
	}
}

// The Unlimited sentinel (greedy default) must not break smart-alloc
// math: an unmanaged VM starts from a zero entitlement and earns capacity
// at P% of total per interval when it has failed puts.
func TestSmartAllocHandlesUnlimitedTarget(t *testing.T) {
	p := SmartAlloc{P: 4}
	ms := stats(1000, 1000,
		tmem.VMStat{ID: 1, MMTarget: tmem.Unlimited, TmemUsed: 0, PutsTotal: 10, PutsSucc: 2},
		tmem.VMStat{ID: 2, MMTarget: tmem.Unlimited, TmemUsed: 0},
	)
	out := p.Targets(ms)
	// VM1 had failed puts: it earns P% of total = 40 pages from zero.
	if got, _ := targetOf(out, 1); got != 40 {
		t.Errorf("failing VM target = %d, want 40", got)
	}
	// VM2 is idle: zero entitlement stays zero.
	if got, _ := targetOf(out, 2); got != 0 {
		t.Errorf("idle VM target = %d, want 0", got)
	}
	var sum mem.Pages
	for _, u := range out {
		if u.MMTarget < 0 || u.MMTarget > 1000 {
			t.Errorf("target out of range: %d", u.MMTarget)
		}
		sum += u.MMTarget
	}
	if sum > 1000 {
		t.Errorf("sum = %d > total", sum)
	}
}

// Property (Equation 1/2 invariant): for arbitrary stats, smart-alloc never
// over-allocates and never emits a negative target.
func TestSmartAllocNeverOverAllocatesProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		rng := newTestRNG(seed)
		n := int(nRaw%8) + 1
		total := mem.Pages(rng.next()%1000000 + 1)
		p := SmartAlloc{P: float64(pRaw%20)/2 + 0.25}
		var vms []tmem.VMStat
		for i := 0; i < n; i++ {
			vms = append(vms, tmem.VMStat{
				ID:        tmem.VMID(i + 1),
				PutsTotal: rng.next() % 100,
				PutsSucc:  rng.next() % 100,
				TmemUsed:  mem.Pages(rng.next() % uint64(total+1)),
				MMTarget:  mem.Pages(rng.next() % uint64(2*total+1)),
			})
		}
		out := p.Targets(stats(total, 0, vms...))
		var sum mem.Pages
		for _, u := range out {
			if u.MMTarget < 0 {
				return false
			}
			sum += u.MMTarget
		}
		return sum <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Rescale preserves proportions (Equation 2's fairness guarantee).
func TestSmartAllocRescalePreservesProportions(t *testing.T) {
	p := SmartAlloc{P: 100, Threshold: 1}
	ms := stats(900, 0,
		tmem.VMStat{ID: 1, PutsTotal: 1, PutsSucc: 0, TmemUsed: 100, MMTarget: 100},
		tmem.VMStat{ID: 2, PutsTotal: 1, PutsSucc: 0, TmemUsed: 200, MMTarget: 200},
	)
	out := p.Targets(ms)
	a, _ := targetOf(out, 1) // raw 100+900=1000
	b, _ := targetOf(out, 2) // raw 200+900=1100
	ratio := float64(b) / float64(a)
	if math.Abs(ratio-1100.0/1000.0) > 0.01 {
		t.Errorf("proportion %f, want ~1.1 (targets %d, %d)", ratio, a, b)
	}
}

func TestSmartAllocName(t *testing.T) {
	if n := (SmartAlloc{P: 0.75}).Name(); n != "smart-alloc(P=0.75%)" {
		t.Errorf("name = %q", n)
	}
}

func TestDedupSuppressesUnchanged(t *testing.T) {
	d := NewDedup(StaticAlloc{})
	ms := stats(3000, 3000, tmem.VMStat{ID: 1}, tmem.VMStat{ID: 2}, tmem.VMStat{ID: 3})
	if out := d.Targets(ms); out == nil {
		t.Fatal("first batch suppressed")
	}
	for i := 0; i < 5; i++ {
		if out := d.Targets(ms); out != nil {
			t.Fatal("unchanged batch not suppressed")
		}
	}
	if d.Sent != 1 || d.Suppressed != 5 {
		t.Errorf("sent=%d suppressed=%d, want 1/5", d.Sent, d.Suppressed)
	}
	// A new VM appears: targets change, batch goes through.
	ms4 := stats(3000, 3000, tmem.VMStat{ID: 1}, tmem.VMStat{ID: 2},
		tmem.VMStat{ID: 3}, tmem.VMStat{ID: 4})
	if out := d.Targets(ms4); out == nil {
		t.Error("changed batch suppressed")
	}
	if d.Name() != "static-alloc" {
		t.Errorf("dedup name = %q", d.Name())
	}
}

func TestDedupPassesNilThrough(t *testing.T) {
	d := NewDedup(Greedy{})
	if d.Targets(stats(10, 10, tmem.VMStat{ID: 1})) != nil {
		t.Error("greedy through dedup produced targets")
	}
	if d.Sent != 0 {
		t.Error("nil output counted as sent")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"greedy", "greedy"},
		{"static-alloc", "static-alloc"},
		{"static", "static-alloc"},
		{"reconf-static", "reconf-static"},
		{"reconf", "reconf-static"},
		{"smart-alloc:P=0.75", "smart-alloc(P=0.75%)"},
		{"smart:p=6", "smart-alloc(P=6%)"},
		{"smart-alloc:P=4,threshold=100", "smart-alloc(P=4%)"},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.spec, p.Name(), c.want)
		}
	}
	for _, bad := range []string{
		"", "unknown", "smart-alloc:P=0", "smart-alloc:P=200",
		"smart-alloc:P=x", "smart-alloc:threshold=-1", "smart-alloc:bogus=1",
		"smart-alloc:P",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) did not fail", bad)
		}
	}
	// Parsed threshold is honoured.
	p, _ := Parse("smart-alloc:P=10,threshold=50")
	sa := p.(SmartAlloc)
	if sa.Threshold != 50 || sa.P != 10 {
		t.Errorf("parsed smart-alloc = %+v", sa)
	}
}

// tiny deterministic RNG for property tests (quick gives us seeds).
type testRNG struct{ x uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{x: seed | 1} }

func (r *testRNG) next() uint64 {
	r.x ^= r.x << 13
	r.x ^= r.x >> 7
	r.x ^= r.x << 17
	return r.x
}
