package policy

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"smartmem/internal/mem"
)

// The policy registry mirrors the scenario registry of internal/experiments:
// built-in policies self-register at init, user policies register through
// Register, and Parse resolves any registered name (with optional ":"-
// separated arguments) to a Policy value. The registry is safe for
// concurrent use so sweeps and servers can parse specs from any goroutine.

// Entry describes one registered policy family.
type Entry struct {
	// Name is the canonical spec name ("smart-alloc").
	Name string
	// Aliases are accepted alternative names ("smart").
	Aliases []string
	// Usage documents the spec syntax ("smart-alloc:P=<pct>[,threshold=<pages>]").
	Usage string
	// Description is a one-line summary for listings.
	Description string
	// Build constructs the policy from the argument portion of a spec (the
	// text after ":", empty when absent).
	Build func(args string) (Policy, error)
}

var registry = struct {
	sync.RWMutex
	order  []string
	byName map[string]*Entry
}{byName: make(map[string]*Entry)}

// Register adds a policy family to the registry. It panics on an empty or
// duplicate name — programming errors in an init path, exactly like the
// scenario registry.
func Register(e Entry) {
	if e.Name == "" || e.Build == nil {
		panic("policy: Register with empty name or nil Build")
	}
	registry.Lock()
	defer registry.Unlock()
	for _, name := range append([]string{e.Name}, e.Aliases...) {
		if _, dup := registry.byName[name]; dup {
			panic(fmt.Sprintf("policy: duplicate policy name %q", name))
		}
		registry.byName[name] = &e
	}
	registry.order = append(registry.order, e.Name)
}

// All returns every registered policy family in registration order
// (built-ins first, then user registrations).
func All() []Entry {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Entry, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, *registry.byName[name])
	}
	return out
}

// Names returns the canonical registered names in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// Parse builds a policy from a specification string:
//
//	no-tmem | greedy | static-alloc | reconf-static |
//	smart-alloc:P=<pct>[,threshold=<pages>]
//
// plus any user-registered names. It is used by the command-line tools and
// the benchmark harness. "no-tmem" parses to the NoTmem sentinel, which the
// node honours by disabling tmem entirely — callers no longer need to
// special-case it.
func Parse(spec string) (Policy, error) {
	name, args, _ := strings.Cut(spec, ":")
	registry.RLock()
	e := registry.byName[name]
	registry.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("policy: unknown policy %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	return e.Build(args)
}

// noArgs wraps a fixed policy value as a Build func, rejecting arguments.
func noArgs(name string, p Policy) func(string) (Policy, error) {
	return func(args string) (Policy, error) {
		if args != "" {
			return nil, fmt.Errorf("policy: %s takes no arguments (got %q)", name, args)
		}
		return p, nil
	}
}

func buildSmartAlloc(args string) (Policy, error) {
	p := SmartAlloc{P: 2}
	if args == "" {
		return p, nil
	}
	for _, kv := range strings.Split(args, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("policy: bad smart-alloc argument %q", kv)
		}
		switch k {
		case "P", "p":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f > 100 {
				return nil, fmt.Errorf("policy: bad P value %q", v)
			}
			p.P = f
		case "threshold":
			t, err := strconv.ParseInt(v, 10, 64)
			if err != nil || t < 0 {
				return nil, fmt.Errorf("policy: bad threshold %q", v)
			}
			p.Threshold = mem.Pages(t)
		default:
			return nil, fmt.Errorf("policy: unknown smart-alloc argument %q", k)
		}
	}
	return p, nil
}

func init() {
	Register(Entry{
		Name:        NoTmemName,
		Usage:       NoTmemName,
		Description: "baseline: tmem disabled entirely, every swap goes to disk",
		Build:       noArgs(NoTmemName, NoTmem{}),
	})
	Register(Entry{
		Name:        "greedy",
		Usage:       "greedy",
		Description: "hypervisor default: first come, first served, no targets",
		Build:       noArgs("greedy", Greedy{}),
	})
	Register(Entry{
		Name:        "static-alloc",
		Aliases:     []string{"static"},
		Usage:       "static-alloc",
		Description: "Algorithm 2: divide tmem equally across registered VMs",
		Build:       noArgs("static-alloc", StaticAlloc{}),
	})
	Register(Entry{
		Name:        "reconf-static",
		Aliases:     []string{"reconf"},
		Usage:       "reconf-static",
		Description: "Algorithm 3: divide tmem equally across VMs actively using it",
		Build:       noArgs("reconf-static", ReconfStatic{}),
	})
	Register(Entry{
		Name:        "smart-alloc",
		Aliases:     []string{"smart"},
		Usage:       "smart-alloc:P=<pct>[,threshold=<pages>]",
		Description: "Algorithm 4: per-VM demand-driven targets grown/shrunk by P%",
		Build:       buildSmartAlloc,
	})
}
