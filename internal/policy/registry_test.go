package policy

import (
	"strings"
	"testing"

	"smartmem/internal/tmem"
)

func TestRegistryListsBuiltins(t *testing.T) {
	names := Names()
	want := []string{"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing built-in %q (got %v)", w, names)
		}
	}
	for _, e := range All() {
		if e.Usage == "" || e.Description == "" {
			t.Errorf("entry %q lacks usage/description", e.Name)
		}
	}
}

func TestParseDelegatesToRegistry(t *testing.T) {
	for spec, wantName := range map[string]string{
		"greedy":            "greedy",
		"static-alloc":      "static-alloc",
		"static":            "static-alloc",
		"reconf-static":     "reconf-static",
		"reconf":            "reconf-static",
		"smart-alloc:P=0.5": "smart-alloc(P=0.5%)",
		"smart":             "smart-alloc(P=2%)",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if p.Name() != wantName {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, p.Name(), wantName)
		}
	}
	if _, err := Parse("nonsense"); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("Parse(nonsense) = %v", err)
	}
	if _, err := Parse("greedy:x=1"); err == nil {
		t.Error("greedy accepted arguments")
	}
}

// The fix for the long-standing asymmetry: NoTmemName exists but Parse used
// to reject it, forcing every caller to special-case the baseline.
func TestParseAcceptsNoTmem(t *testing.T) {
	p, err := Parse(NoTmemName)
	if err != nil {
		t.Fatalf("Parse(%q): %v", NoTmemName, err)
	}
	if !IsNoTmem(p) {
		t.Fatalf("Parse(%q) = %T, want the NoTmem sentinel", NoTmemName, p)
	}
	if p.Name() != NoTmemName {
		t.Errorf("sentinel name = %q", p.Name())
	}
	if out := p.Targets(tmem.MemStats{}); out != nil {
		t.Errorf("NoTmem.Targets = %v, want nil", out)
	}
	if IsNoTmem(Greedy{}) {
		t.Error("IsNoTmem(Greedy) = true")
	}
}

func TestUserRegistration(t *testing.T) {
	Register(Entry{
		Name:        "test-half",
		Usage:       "test-half",
		Description: "test policy: half of total to every VM",
		Build: func(string) (Policy, error) {
			return StaticAlloc{}, nil
		},
	})
	if _, err := Parse("test-half"); err != nil {
		t.Fatalf("user-registered policy not parseable: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Entry{Name: "test-half", Build: func(string) (Policy, error) { return nil, nil }})
}
