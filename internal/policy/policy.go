// Package policy implements the Memory Manager's high-level tmem
// management policies (paper §III-E): the default greedy behaviour and the
// three managed policies static-alloc (Algorithm 2), reconf-static
// (Algorithm 3) and smart-alloc (Algorithm 4 with Equations 1–2).
//
// A Policy is a pure function from the hypervisor's per-interval statistics
// sample (tmem.MemStats, Table I) to a batch of per-VM capacity targets
// (mm_out). All state a policy needs is either inside the sample (the
// hypervisor echoes current targets back, so smart-alloc's increments are
// stateless here) or local to the policy value.
package policy

import (
	"fmt"

	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// Policy computes new target allocations from a statistics sample. A nil
// return means "no change" (nothing is sent to the hypervisor).
type Policy interface {
	// Name returns the policy's identifier as used in the paper's figures
	// (e.g. "greedy", "static-alloc", "smart-alloc(P=0.75%)").
	Name() string
	// Targets computes mm_out for this sampling interval.
	Targets(ms tmem.MemStats) []tmem.TargetUpdate
}

// Greedy is the hypervisor default: no targets are ever sent, so every VM
// keeps the Unlimited target and tmem is first come, first served
// (paper §II-B: "current implementations of tmem allocate pages on puts in
// a greedy way").
type Greedy struct{}

// Name implements Policy.
func (Greedy) Name() string { return "greedy" }

// Targets implements Policy; it never requests changes.
func (Greedy) Targets(tmem.MemStats) []tmem.TargetUpdate { return nil }

// StaticAlloc is Algorithm 2: divide total tmem equally across all
// registered (tmem-capable) VMs. Targets change only when the VM
// population changes.
type StaticAlloc struct{}

// Name implements Policy.
func (StaticAlloc) Name() string { return "static-alloc" }

// Targets implements Policy.
func (StaticAlloc) Targets(ms tmem.MemStats) []tmem.TargetUpdate {
	n := ms.VMCount()
	if n == 0 {
		return nil
	}
	share := ms.EffectiveTotal() / mem.Pages(n)
	out := make([]tmem.TargetUpdate, 0, n)
	for _, v := range ms.VMs {
		out = append(out, tmem.TargetUpdate{ID: v.ID, MMTarget: share})
	}
	return out
}

// ReconfStatic is Algorithm 3: divide total tmem equally among VMs that are
// actively using tmem, where "active" means the VM has accumulated at least
// one failed put (cumul_puts_failed > 0). Initially no VM has any
// allocation, so a VM's first puts fail and it swaps until the next
// sampling interval notices it — the ~1 s reaction latency the paper
// describes as this policy's main drawback.
type ReconfStatic struct{}

// Name implements Policy.
func (ReconfStatic) Name() string { return "reconf-static" }

// Targets implements Policy.
func (ReconfStatic) Targets(ms tmem.MemStats) []tmem.TargetUpdate {
	n := ms.VMCount()
	if n == 0 {
		return nil
	}
	active := 0
	for _, v := range ms.VMs {
		if v.CumulPutsFailed > 0 {
			active++
		}
	}
	out := make([]tmem.TargetUpdate, 0, n)
	if active == 0 {
		// Initial state: no VM receives any capacity.
		for _, v := range ms.VMs {
			out = append(out, tmem.TargetUpdate{ID: v.ID, MMTarget: 0})
		}
		return out
	}
	// Algorithm 3 lines 11–15: every VM is assigned the active share
	// (inactive VMs never put, so the share is only consumed by actives).
	share := ms.EffectiveTotal() / mem.Pages(active)
	for _, v := range ms.VMs {
		out = append(out, tmem.TargetUpdate{ID: v.ID, MMTarget: share})
	}
	return out
}

// SmartAlloc is Algorithm 4: per-VM demand-driven targets.
//
//   - A VM with failed puts in the last interval grows its target by P% of
//     total tmem (line 11–12).
//   - A VM whose slack (target − used) exceeds Threshold shrinks its target
//     to (100−P)% of itself (lines 16–18) — the threshold prevents
//     premature decrements that would make targets oscillate.
//   - If Σ targets would exceed total tmem, all targets are rescaled
//     proportionally (Equation 2, lines 27–33) so over-allocation never
//     defeats enforcement (Equation 1).
type SmartAlloc struct {
	// P is the growth/shrink percentage of Algorithm 4 (the paper sweeps
	// 0.25–6%).
	P float64
	// Threshold is the slack, in pages, a VM may keep before its target is
	// decremented. The paper leaves the value unspecified; we default to
	// 2% of total tmem when zero (see DefaultThreshold).
	Threshold mem.Pages
}

// DefaultThresholdFraction is the fraction of total tmem used as the slack
// threshold when SmartAlloc.Threshold is zero.
const DefaultThresholdFraction = 0.02

// Name implements Policy.
func (p SmartAlloc) Name() string { return fmt.Sprintf("smart-alloc(P=%g%%)", p.P) }

// Targets implements Policy.
func (p SmartAlloc) Targets(ms tmem.MemStats) []tmem.TargetUpdate {
	n := ms.VMCount()
	if n == 0 {
		return nil
	}
	// Allocate against effective capacity: with a compressed tier attached
	// the node can absorb more pages than it has raw frames, and the raised
	// targets are what let overflow land there instead of on disk.
	total := ms.EffectiveTotal()
	threshold := p.Threshold
	if threshold <= 0 {
		threshold = mem.Pages(DefaultThresholdFraction * float64(total))
	}
	incr := mem.Pages(p.P * float64(total) / 100.0)

	out := make([]tmem.TargetUpdate, 0, n)
	var sum mem.Pages
	for _, v := range ms.VMs {
		// The hypervisor's default target is Unlimited (greedy); a VM
		// carrying it has never been managed. Algorithm 4 grows targets
		// from the current value, and in the paper's system managed
		// targets start at zero (cf. reconf-static "initially allocating
		// no tmem capacity"), so P directly controls how fast a VM earns
		// capacity — the paper's explanation for why P=0.25% is too slow.
		cur := v.MMTarget
		if cur > total {
			cur = 0
		}
		var target mem.Pages
		if v.FailedPuts() > 0 {
			target = cur + incr // lines 10–12
		} else if cur-v.TmemUsed > threshold {
			target = mem.Pages((100 - p.P) / 100.0 * float64(cur)) // lines 16–18
		} else {
			target = cur // line 20
		}
		out = append(out, tmem.TargetUpdate{ID: v.ID, MMTarget: target})
		sum += target
	}
	// Equation 2: proportional rescale when over-allocated (lines 27–33).
	if sum > total {
		factor := float64(total) / float64(sum)
		for i := range out {
			out[i].MMTarget = mem.Pages(factor * float64(out[i].MMTarget))
		}
	}
	return out
}

// Dedup wraps a policy and suppresses outputs identical to the last batch
// sent — the paper's send_to_hypervisor "refrains from sending targets to
// the hypervisor if they do not change since the last modification".
type Dedup struct {
	inner Policy
	last  map[tmem.VMID]mem.Pages
	// Sent counts batches actually forwarded (diagnostic; lets tests show
	// static-alloc transmits once while smart-alloc transmits repeatedly).
	Sent int
	// Suppressed counts batches dropped as unchanged.
	Suppressed int
}

// NewDedup wraps inner with unchanged-output suppression.
func NewDedup(inner Policy) *Dedup {
	return &Dedup{inner: inner, last: make(map[tmem.VMID]mem.Pages)}
}

// Name implements Policy.
func (d *Dedup) Name() string { return d.inner.Name() }

// Targets implements Policy.
func (d *Dedup) Targets(ms tmem.MemStats) []tmem.TargetUpdate {
	out := d.inner.Targets(ms)
	if out == nil {
		return nil
	}
	changed := len(out) != len(d.last)
	if !changed {
		for _, t := range out {
			if prev, ok := d.last[t.ID]; !ok || prev != t.MMTarget {
				changed = true
				break
			}
		}
	}
	if !changed {
		d.Suppressed++
		return nil
	}
	d.last = make(map[tmem.VMID]mem.Pages, len(out))
	for _, t := range out {
		d.last[t.ID] = t.MMTarget
	}
	d.Sent++
	return out
}

// NoTmemName names the no-tmem baseline mode uniformly across the tools.
const NoTmemName = "no-tmem"

// NoTmem is the baseline-mode sentinel: not a target policy but the request
// to disable tmem entirely, sending every swap to disk. Parse returns it
// for "no-tmem" so callers need not special-case the spec, and the node
// honours it by not attaching tmem pools (core.Config treats a NoTmem
// policy exactly like TmemEnabled=false).
type NoTmem struct{}

// Name implements Policy.
func (NoTmem) Name() string { return NoTmemName }

// Targets implements Policy; the baseline never has anything to send.
func (NoTmem) Targets(tmem.MemStats) []tmem.TargetUpdate { return nil }

// IsNoTmem reports whether p is the no-tmem baseline sentinel.
func IsNoTmem(p Policy) bool {
	_, ok := p.(NoTmem)
	return ok
}

// Compile-time interface checks.
var (
	_ Policy = Greedy{}
	_ Policy = StaticAlloc{}
	_ Policy = ReconfStatic{}
	_ Policy = SmartAlloc{}
	_ Policy = (*Dedup)(nil)
	_ Policy = NoTmem{}
)
