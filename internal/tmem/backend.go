package tmem

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"smartmem/internal/mem"
)

// Unlimited is the mm_target value meaning "no enforcement": the default
// greedy behaviour where a VM may consume every free tmem page.
const Unlimited = mem.Pages(math.MaxInt64)

// entry is one stored tmem page.
type entry struct {
	key    Key
	vm     VMID
	frame  mem.FrameNo
	handle Handle
	// Ephemeral entries are linked into the backend-wide eviction LRU.
	prev, next *entry
}

// Pool is one guest-created tmem pool.
type Pool struct {
	id      PoolID
	vm      VMID
	kind    PoolKind
	objects map[ObjectID]map[PageIndex]*entry
	pages   mem.Pages
}

// ID returns the pool identifier.
func (p *Pool) ID() PoolID { return p.id }

// VM returns the owning VM.
func (p *Pool) VM() VMID { return p.vm }

// Kind returns the pool kind.
func (p *Pool) Kind() PoolKind { return p.kind }

// Pages returns the number of pages currently stored in the pool.
func (p *Pool) Pages() mem.Pages { return p.pages }

// vmAccount is the hypervisor's per-VM bookkeeping (Table I,
// vm_data_hyp[id].*), plus cumulative diagnostics.
type vmAccount struct {
	id       VMID
	tmemUsed mem.Pages
	mmTarget mem.Pages

	// Interval counters, reset at each statistics sample (1 s).
	putsTotal uint64
	putsSucc  uint64

	// Cumulative counters (never reset). cumulPutsFailed feeds
	// reconf-static's activity detection (Algorithm 3).
	cumulPutsTotal  uint64
	cumulPutsSucc   uint64
	cumulGetsTotal  uint64
	cumulGetsHit    uint64
	cumulFlushes    uint64
	cumulEphEvicted uint64 // ephemeral pages evicted from this VM
}

func (a *vmAccount) cumulPutsFailed() uint64 { return a.cumulPutsTotal - a.cumulPutsSucc }

// Backend is the hypervisor tmem implementation: the single fine-grained
// page allocator plus target enforcement of paper Algorithm 1. All methods
// are safe for concurrent use.
type Backend struct {
	mu       sync.Mutex
	alloc    *mem.FrameAllocator
	store    PageStore
	pools    map[PoolID]*Pool
	nextPool PoolID
	vms      map[VMID]*vmAccount

	// Ephemeral eviction LRU: lru.next is the oldest entry.
	lru entry // sentinel

	pageSize mem.Bytes
}

// NewBackend creates a tmem backend managing totalPages frames whose page
// contents are retained in store. The store's page size defines the page
// size of the node.
func NewBackend(totalPages mem.Pages, store PageStore) *Backend {
	b := &Backend{
		alloc:    mem.NewFrameAllocator(totalPages),
		store:    store,
		pools:    make(map[PoolID]*Pool),
		vms:      make(map[VMID]*vmAccount),
		pageSize: mem.Bytes(store.PageSize()),
	}
	b.lru.prev = &b.lru
	b.lru.next = &b.lru
	return b
}

// PageSize returns the node page size in bytes.
func (b *Backend) PageSize() mem.Bytes { return b.pageSize }

// TotalPages returns the total tmem capacity in pages (node_info.total_tmem).
func (b *Backend) TotalPages() mem.Pages { return b.alloc.Total() }

// FreePages returns the number of free tmem pages (node_info.free_tmem).
func (b *Backend) FreePages() mem.Pages {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.alloc.Free()
}

// RegisterVM creates the hypervisor-side account for a VM. Registering an
// already-known VM is a no-op. New VMs start with an Unlimited target
// (greedy default) — management policies overwrite it on their first tick.
func (b *Backend) RegisterVM(vm VMID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.registerLocked(vm)
}

func (b *Backend) registerLocked(vm VMID) *vmAccount {
	a, ok := b.vms[vm]
	if !ok {
		a = &vmAccount{id: vm, mmTarget: Unlimited}
		b.vms[vm] = a
	}
	return a
}

// UnregisterVM removes a VM and destroys all of its pools (VM shutdown).
func (b *Backend) UnregisterVM(vm VMID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, p := range b.pools {
		if p.vm == vm {
			b.destroyPoolLocked(id)
		}
	}
	delete(b.vms, vm)
}

// NewPool creates a tmem pool for vm (the guest's kernel-module init path)
// and returns its identifier.
func (b *Backend) NewPool(vm VMID, kind PoolKind) PoolID {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.registerLocked(vm)
	id := b.nextPool
	b.nextPool++
	b.pools[id] = &Pool{
		id:      id,
		vm:      vm,
		kind:    kind,
		objects: make(map[ObjectID]map[PageIndex]*entry),
	}
	return id
}

// DestroyPool flushes every page of the pool and removes it.
func (b *Backend) DestroyPool(id PoolID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.pools[id]; !ok {
		return fmt.Errorf("tmem: destroy of unknown pool %d", id)
	}
	b.destroyPoolLocked(id)
	return nil
}

func (b *Backend) destroyPoolLocked(id PoolID) {
	p := b.pools[id]
	for _, obj := range p.objects {
		for _, e := range obj {
			b.dropEntryLocked(p, e)
		}
	}
	delete(b.pools, id)
}

// lruPush appends e as most-recently-used.
func (b *Backend) lruPush(e *entry) {
	e.prev = b.lru.prev
	e.next = &b.lru
	b.lru.prev.next = e
	b.lru.prev = e
}

func (b *Backend) lruRemove(e *entry) {
	if e.prev == nil {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// dropEntryLocked releases the frame and stored bytes of e and fixes all
// counters. The entry must still be present in pool p's object map when the
// caller removes it; this helper only touches global structures.
func (b *Backend) dropEntryLocked(p *Pool, e *entry) {
	b.lruRemove(e)
	if err := b.alloc.Release(e.frame); err != nil {
		panic(fmt.Sprintf("tmem: frame accounting broken: %v", err))
	}
	if err := b.store.Drop(e.handle); err != nil {
		panic(fmt.Sprintf("tmem: page store accounting broken: %v", err))
	}
	p.pages--
	if a := b.vms[e.vm]; a != nil {
		a.tmemUsed--
	}
}

// evictEphemeralLocked drops the oldest ephemeral page to free one frame.
// Returns false when no ephemeral page exists.
func (b *Backend) evictEphemeralLocked() bool {
	e := b.lru.next
	if e == &b.lru {
		return false
	}
	p := b.pools[e.key.Pool]
	delete(p.objects[e.key.Object], e.key.Index)
	if len(p.objects[e.key.Object]) == 0 {
		delete(p.objects, e.key.Object)
	}
	b.dropEntryLocked(p, e)
	if a := b.vms[e.vm]; a != nil {
		a.cumulEphEvicted++
	}
	return true
}

// Put stores a page under key on behalf of the pool's VM, implementing
// paper Algorithm 1's PUT path:
//
//	if tmem_used >= mm_target   -> E_TMEM
//	else if free_tmem == 0      -> E_TMEM (after trying ephemeral eviction)
//	else allocate, copy, tmem_used++, puts_succ++
//	puts_total++ in all cases
//
// A put over an existing key replaces the page contents in place without
// consuming a new frame (Xen's "duplicate put" path). data may be nil for a
// zero page; it is copied before Put returns, so the caller may reuse the
// buffer — the page-copy–based interface of the paper.
func (b *Backend) Put(key Key, data []byte) Status {
	b.mu.Lock()
	defer b.mu.Unlock()

	p, ok := b.pools[key.Pool]
	if !ok {
		return EInval
	}
	a := b.vms[p.vm]
	a.putsTotal++
	a.cumulPutsTotal++

	// Duplicate put: replace contents, no capacity change.
	if obj, ok := p.objects[key.Object]; ok {
		if e, ok := obj[key.Index]; ok {
			h, err := b.store.Save(data)
			if err != nil {
				return EInval
			}
			if err := b.store.Drop(e.handle); err != nil {
				panic(fmt.Sprintf("tmem: page store accounting broken: %v", err))
			}
			e.handle = h
			if p.kind == Ephemeral {
				b.lruRemove(e)
				b.lruPush(e)
			}
			a.putsSucc++
			a.cumulPutsSucc++
			return STmem
		}
	}

	// Algorithm 1, line 5: target enforcement.
	if a.tmemUsed >= a.mmTarget {
		return ETmem
	}
	// Algorithm 1, line 7: capacity check. Ephemeral pages are sacrificed
	// first, as in Xen, before failing the put.
	if b.alloc.Free() == 0 {
		if !b.evictEphemeralLocked() {
			return ETmem
		}
	}

	frame := b.alloc.Alloc()
	if frame == mem.NoFrame {
		return ETmem
	}
	h, err := b.store.Save(data)
	if err != nil {
		if rerr := b.alloc.Release(frame); rerr != nil {
			panic(fmt.Sprintf("tmem: frame accounting broken: %v", rerr))
		}
		return EInval
	}
	e := &entry{key: key, vm: p.vm, frame: frame, handle: h}
	obj, ok := p.objects[key.Object]
	if !ok {
		obj = make(map[PageIndex]*entry)
		p.objects[key.Object] = obj
	}
	obj[key.Index] = e
	p.pages++
	if p.kind == Ephemeral {
		b.lruPush(e)
	}
	a.tmemUsed++
	a.putsSucc++
	a.cumulPutsSucc++
	return STmem
}

// Get copies the page stored under key into dst (which may be nil when the
// caller only cares about presence). Ephemeral hits are always destructive
// (Xen semantics); persistent hits leave the page in place — the guest
// issues an explicit FlushPage when it invalidates the swap slot.
func (b *Backend) Get(key Key, dst []byte) Status {
	b.mu.Lock()
	defer b.mu.Unlock()

	p, ok := b.pools[key.Pool]
	if !ok {
		return EInval
	}
	a := b.vms[p.vm]
	a.cumulGetsTotal++

	obj, ok := p.objects[key.Object]
	if !ok {
		return ETmem
	}
	e, ok := obj[key.Index]
	if !ok {
		return ETmem
	}
	if dst != nil {
		if err := b.store.Load(e.handle, dst); err != nil {
			return EInval
		}
	}
	a.cumulGetsHit++
	if p.kind == Ephemeral {
		delete(obj, key.Index)
		if len(obj) == 0 {
			delete(p.objects, key.Object)
		}
		b.dropEntryLocked(p, e)
	}
	return STmem
}

// Contains reports whether key is currently stored (non-destructive even
// for ephemeral pools; diagnostic use only).
func (b *Backend) Contains(key Key) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.pools[key.Pool]
	if !ok {
		return false
	}
	obj, ok := p.objects[key.Object]
	if !ok {
		return false
	}
	_, ok = obj[key.Index]
	return ok
}

// FlushPage invalidates a single page (paper Algorithm 1 FLUSH path:
// deallocate, tmem_used--). Flushing an absent page returns ETmem, which
// guests treat as harmless.
func (b *Backend) FlushPage(key Key) Status {
	b.mu.Lock()
	defer b.mu.Unlock()

	p, ok := b.pools[key.Pool]
	if !ok {
		return EInval
	}
	obj, ok := p.objects[key.Object]
	if !ok {
		return ETmem
	}
	e, ok := obj[key.Index]
	if !ok {
		return ETmem
	}
	delete(obj, key.Index)
	if len(obj) == 0 {
		delete(p.objects, key.Object)
	}
	b.dropEntryLocked(p, e)
	b.vms[p.vm].cumulFlushes++
	return STmem
}

// FlushObject invalidates every page of an object, returning the number of
// pages freed.
func (b *Backend) FlushObject(pool PoolID, object ObjectID) (mem.Pages, Status) {
	b.mu.Lock()
	defer b.mu.Unlock()

	p, ok := b.pools[pool]
	if !ok {
		return 0, EInval
	}
	obj, ok := p.objects[object]
	if !ok {
		return 0, ETmem
	}
	var n mem.Pages
	for _, e := range obj {
		b.dropEntryLocked(p, e)
		n++
	}
	delete(p.objects, object)
	b.vms[p.vm].cumulFlushes += uint64(n)
	return n, STmem
}

// SetTarget installs the MM-computed allocation target for a VM
// (vm_data_hyp[id].mm_target). The hypervisor stores targets until the MM
// modifies them (paper §III-B). Unknown VMs are registered implicitly.
func (b *Backend) SetTarget(vm VMID, target mem.Pages) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if target < 0 {
		target = 0
	}
	b.registerLocked(vm).mmTarget = target
}

// Target returns the current target of a VM.
func (b *Backend) Target(vm VMID) mem.Pages {
	b.mu.Lock()
	defer b.mu.Unlock()
	if a, ok := b.vms[vm]; ok {
		return a.mmTarget
	}
	return 0
}

// UsedBy returns the pages currently consumed by a VM.
func (b *Backend) UsedBy(vm VMID) mem.Pages {
	b.mu.Lock()
	defer b.mu.Unlock()
	if a, ok := b.vms[vm]; ok {
		return a.tmemUsed
	}
	return 0
}

// VMs returns the registered VM ids in ascending order.
func (b *Backend) VMs() []VMID {
	b.mu.Lock()
	defer b.mu.Unlock()
	ids := make([]VMID, 0, len(b.vms))
	for id := range b.vms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Footprint returns the host bytes retained by the page store.
func (b *Backend) Footprint() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.store.Footprint()
}

// CheckInvariants cross-checks all capacity accounting. It is exercised by
// the property tests and may be called at any time.
func (b *Backend) CheckInvariants() error {
	b.mu.Lock()
	defer b.mu.Unlock()

	if err := b.alloc.CheckInvariants(); err != nil {
		return err
	}
	var poolPages, vmPages mem.Pages
	for _, p := range b.pools {
		var n mem.Pages
		for _, obj := range p.objects {
			n += mem.Pages(len(obj))
		}
		if n != p.pages {
			return fmt.Errorf("tmem: pool %d page count %d != entries %d", p.id, p.pages, n)
		}
		poolPages += n
	}
	for _, a := range b.vms {
		if a.tmemUsed < 0 {
			return fmt.Errorf("tmem: vm %d negative tmem_used %d", a.id, a.tmemUsed)
		}
		vmPages += a.tmemUsed
	}
	used := b.alloc.Used()
	if poolPages != used {
		return fmt.Errorf("tmem: pools hold %d pages but allocator reports %d used", poolPages, used)
	}
	if vmPages != used {
		return fmt.Errorf("tmem: VM accounts sum to %d pages but allocator reports %d used", vmPages, used)
	}
	if c := b.store.Count(); c != int(used) {
		return fmt.Errorf("tmem: page store holds %d pages but allocator reports %d used", c, used)
	}
	for _, a := range b.vms {
		if a.cumulPutsSucc > a.cumulPutsTotal {
			return fmt.Errorf("tmem: vm %d puts_succ %d > puts_total %d", a.id, a.cumulPutsSucc, a.cumulPutsTotal)
		}
	}
	return nil
}
