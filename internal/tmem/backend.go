package tmem

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"smartmem/internal/mem"
)

// Unlimited is the mm_target value meaning "no enforcement": the default
// greedy behaviour where a VM may consume every free tmem page.
const Unlimited = mem.Pages(math.MaxInt64)

// entry is one stored tmem page.
type entry struct {
	key    Key
	pool   *Pool
	acct   *vmAccount
	frame  mem.FrameNo
	handle Handle
	// Ephemeral entries are linked into their shard's eviction LRU; stamp
	// is the global LRU clock value at link time (cross-shard age order).
	stamp      uint64
	prev, next *entry
}

// Pool is one guest-created tmem pool.
type Pool struct {
	id   PoolID
	vm   VMID
	kind PoolKind
	acct *vmAccount
	// pages counts stored pages; atomic because a pool's entries spread
	// across shards.
	pages atomic.Int64
	// dead flips when the pool is destroyed. Entry inserts re-check it
	// under the shard lock, so no insert can race past a purge.
	dead atomic.Bool
}

// ID returns the pool identifier.
func (p *Pool) ID() PoolID { return p.id }

// VM returns the owning VM.
func (p *Pool) VM() VMID { return p.vm }

// Kind returns the pool kind.
func (p *Pool) Kind() PoolKind { return p.kind }

// Pages returns the number of pages currently stored in the pool.
func (p *Pool) Pages() mem.Pages { return mem.Pages(p.pages.Load()) }

// vmAccount is the hypervisor's per-VM bookkeeping (Table I,
// vm_data_hyp[id].*), plus cumulative diagnostics. Every field is atomic:
// the hot path updates them from whichever shard holds the page, and the
// statistics sampler aggregates a snapshot without stopping the world.
type vmAccount struct {
	id       VMID
	tmemUsed atomic.Int64
	mmTarget atomic.Int64

	// Interval counters, reset at each statistics sample (1 s).
	putsTotal atomic.Uint64
	putsSucc  atomic.Uint64

	// Cumulative counters (never reset). cumulPutsFailed feeds
	// reconf-static's activity detection (Algorithm 3).
	cumulPutsTotal  atomic.Uint64
	cumulPutsSucc   atomic.Uint64
	cumulGetsTotal  atomic.Uint64
	cumulGetsHit    atomic.Uint64
	cumulFlushes    atomic.Uint64
	cumulEphEvicted atomic.Uint64 // ephemeral pages evicted from this VM
}

func newVMAccount(vm VMID) *vmAccount {
	a := &vmAccount{id: vm}
	a.mmTarget.Store(int64(Unlimited))
	return a
}

func (a *vmAccount) target() mem.Pages { return mem.Pages(a.mmTarget.Load()) }

func (a *vmAccount) cumulPutsFailed() uint64 {
	// Load succ before total: a concurrent put bumps total first, so the
	// later total load can only be >= the earlier succ load and the
	// unsigned subtraction cannot wrap.
	succ := a.cumulPutsSucc.Load()
	return a.cumulPutsTotal.Load() - succ
}

// Backend is the hypervisor tmem implementation: the fine-grained page
// allocator plus target enforcement of paper Algorithm 1. All methods are
// safe for concurrent use.
//
// The store is sharded: keys hash to one of N lock stripes, each owning
// its slice of the entry maps, its own page store, one segment of the
// ephemeral LRU and one partition of the frame space. Capacity stays
// global — per-VM targets are enforced through atomic accounts, exhausted
// stripes steal frames from siblings, and eviction picks the node-wide
// oldest ephemeral page across all stripes. With a single shard (the
// NewBackend default) every operation funnels through one lock in the
// exact order it was issued, which keeps the simulation path deterministic.
type Backend struct {
	shards    []*shard
	shardMask uint64

	// tiers are the hierarchy levels below the local striped store (tier 0):
	// overflow puts, misses and flushes cascade down this slice in order.
	// Attached before traffic starts and read lock-free on the data path.
	tiers []Tier
	// tiersView is the immutable snapshot Tiers returns (rebuilt on attach).
	tiersView []Tier

	totalPages mem.Pages
	// freePages mirrors the summed allocator state (node_info.free_tmem).
	freePages atomic.Int64
	// lruClock stamps ephemeral entries for cross-shard age comparison.
	lruClock atomic.Uint64

	poolMu   sync.RWMutex
	pools    map[PoolID]*Pool
	nextPool PoolID

	vmMu sync.RWMutex
	vms  map[VMID]*vmAccount

	pageSize mem.Bytes

	// gate, when installed, is invoked on entry to every owner-surface
	// method; see SetGate. Read with a plain load on the hot path — it is
	// written only before traffic starts and after it has fully stopped.
	gate func()

	// batchPool recycles the scratch state of PutBatch/GetBatch (see
	// batch.go) so warm batch calls allocate nothing.
	batchPool sync.Pool
}

// Options configures a sharded backend (see NewBackendOpts).
type Options struct {
	// Shards is the number of lock stripes, rounded up to a power of two
	// and clamped to [1, 256]. 0 and 1 both select the deterministic
	// single-stripe mode NewBackend uses.
	Shards int
	// NewStore constructs one page store per shard. Every store must
	// report the same page size. Required.
	NewStore func() PageStore
}

// maxShards bounds the stripe count; past the core count of any realistic
// host more stripes only dilute the frame partitions.
const maxShards = 256

func normShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewBackend creates a tmem backend managing totalPages frames whose page
// contents are retained in store. The store's page size defines the page
// size of the node. The backend has a single shard: operations serialize
// in issue order, the deterministic mode the simulator depends on. Servers
// wanting multi-core throughput use NewBackendOpts.
func NewBackend(totalPages mem.Pages, store PageStore) *Backend {
	if store == nil {
		panic("tmem: nil page store")
	}
	return newBackend(totalPages, []PageStore{store})
}

// NewBackendOpts creates a sharded backend: opts.Shards lock stripes, each
// backed by its own store from opts.NewStore. Observable put/get/flush
// semantics match NewBackend; only the order in which concurrent
// operations interleave (and therefore which ephemeral page is "oldest"
// within one LRU clock tick) may differ.
func NewBackendOpts(totalPages mem.Pages, opts Options) *Backend {
	if opts.NewStore == nil {
		panic("tmem: Options.NewStore is required")
	}
	n := normShards(opts.Shards)
	stores := make([]PageStore, n)
	for i := range stores {
		stores[i] = opts.NewStore()
		if stores[i] == nil {
			panic("tmem: Options.NewStore returned nil")
		}
		if stores[i].PageSize() != stores[0].PageSize() {
			panic(fmt.Sprintf("tmem: shard stores disagree on page size: %d vs %d",
				stores[i].PageSize(), stores[0].PageSize()))
		}
	}
	return newBackend(totalPages, stores)
}

func newBackend(totalPages mem.Pages, stores []PageStore) *Backend {
	if totalPages < 0 {
		panic("tmem: negative page count")
	}
	n := len(stores)
	b := &Backend{
		shards:     make([]*shard, n),
		shardMask:  uint64(n - 1),
		totalPages: totalPages,
		pools:      make(map[PoolID]*Pool),
		vms:        make(map[VMID]*vmAccount),
		pageSize:   mem.Bytes(stores[0].PageSize()),
	}
	b.batchPool.New = func() any { return new(batchScratch) }
	b.freePages.Store(int64(totalPages))
	// Partition the frame space: the first (total mod n) stripes hold one
	// extra frame. Frame numbers are globally unique (base + local index).
	q, r := totalPages/mem.Pages(n), totalPages%mem.Pages(n)
	var base mem.FrameNo
	for i := range b.shards {
		size := q
		if mem.Pages(i) < r {
			size++
		}
		b.shards[i] = newShard(stores[i])
		b.shards[i].frames = frameSource{base: base, alloc: mem.NewFrameAllocator(size)}
		base += mem.FrameNo(size)
	}
	return b
}

// Shards returns the number of lock stripes.
func (b *Backend) Shards() int { return len(b.shards) }

// AttachTier appends a tier to the backend's hierarchy: the local striped
// store is tier 0, the first attached tier is tier 1, and so on. Tiers must
// be attached before the backend serves traffic — the tier slice is read
// without a lock on the data path.
func (b *Backend) AttachTier(t Tier) {
	if t == nil {
		panic("tmem: nil tier")
	}
	b.tiers = append(b.tiers, t)
	// Rebuild the immutable view Tiers hands out. Copied once per attach
	// (setup time), never per call — samplers and reporters may poll Tiers
	// without allocating.
	view := make([]Tier, len(b.tiers))
	copy(view, b.tiers)
	b.tiersView = view
}

// Tiers returns the attached tiers (tier 1 and below), in order. The
// returned slice is a cached immutable view — callers must not modify it —
// so polling it from samplers costs no allocation.
func (b *Backend) Tiers() []Tier { return b.tiersView }

// SetGate installs (nil removes) a synchronization hook invoked on entry
// to every owner-surface method — the public operations the backend's
// owning simulation driver issues, as opposed to the ...Local surface a
// Loopback peer injects through (which stays ungated and is ordered by the
// transport's own gate; see Loopback.SetGate). The parallel cluster
// runtime uses the pair to delay each side until no ring peer can still
// issue an earlier-timestamped operation, keeping the parallel event order
// identical to the sequential one. Install before traffic starts and clear
// only after the run's goroutines have joined; without a gate the hook
// costs one nil check per operation.
func (b *Backend) SetGate(gate func()) { b.gate = gate }

// enter runs the owner gate when one is installed.
func (b *Backend) enter() {
	if b.gate != nil {
		b.gate()
	}
}

// shardFor maps a key to its lock stripe.
func (b *Backend) shardFor(key Key) *shard {
	if b.shardMask == 0 {
		return b.shards[0]
	}
	return b.shards[key.hash()&b.shardMask]
}

// sourceOf returns the frame source owning frame (stripes hold contiguous
// ascending ranges, so this is a binary search over the bases).
func (b *Backend) sourceOf(frame mem.FrameNo) *frameSource {
	i := sort.Search(len(b.shards), func(i int) bool {
		return b.shards[i].frames.base > frame
	}) - 1
	return &b.shards[i].frames
}

// allocFrame grabs a free frame, preferring sh's own stripe and stealing
// from siblings when it is exhausted. Returns false only when every stripe
// is empty — i.e. node free_tmem is genuinely zero.
func (b *Backend) allocFrame(sh *shard) (mem.FrameNo, bool) {
	if f, ok := sh.frames.take(); ok {
		b.freePages.Add(-1)
		return f, true
	}
	for _, other := range b.shards {
		if other == sh {
			continue
		}
		if f, ok := other.frames.take(); ok {
			b.freePages.Add(-1)
			return f, true
		}
	}
	return mem.NoFrame, false
}

// releaseFrame returns a frame to the stripe that owns it.
func (b *Backend) releaseFrame(frame mem.FrameNo) {
	b.sourceOf(frame).give(frame)
	b.freePages.Add(1)
}

// PageSize returns the node page size in bytes.
func (b *Backend) PageSize() mem.Bytes { return b.pageSize }

// TotalPages returns the total tmem capacity in pages (node_info.total_tmem).
func (b *Backend) TotalPages() mem.Pages { return b.totalPages }

// FreePages returns the number of free tmem pages (node_info.free_tmem).
func (b *Backend) FreePages() mem.Pages {
	b.enter()
	return mem.Pages(b.freePages.Load())
}

// RegisterVM creates the hypervisor-side account for a VM. Registering an
// already-known VM is a no-op. New VMs start with an Unlimited target
// (greedy default) — management policies overwrite it on their first tick.
func (b *Backend) RegisterVM(vm VMID) {
	b.enter()
	b.register(vm)
}

func (b *Backend) register(vm VMID) *vmAccount {
	b.vmMu.Lock()
	defer b.vmMu.Unlock()
	a, ok := b.vms[vm]
	if !ok {
		a = newVMAccount(vm)
		b.vms[vm] = a
	}
	return a
}

func (b *Backend) account(vm VMID) *vmAccount {
	b.vmMu.RLock()
	defer b.vmMu.RUnlock()
	return b.vms[vm]
}

// pool resolves a live pool by id.
func (b *Backend) pool(id PoolID) *Pool {
	b.poolMu.RLock()
	defer b.poolMu.RUnlock()
	return b.pools[id]
}

// UnregisterVM removes a VM and destroys all of its pools (VM shutdown).
// The pool removal and account deletion happen under one poolMu critical
// section so a concurrent NewPool for the same VM either completes first
// (and its pool is destroyed here) or starts after (and re-creates a fresh
// account) — it can never attach a live pool to a deleted account.
func (b *Backend) UnregisterVM(vm VMID) {
	b.enter()
	b.poolMu.Lock()
	var doomed []*Pool
	for id, p := range b.pools {
		if p.vm == vm {
			doomed = append(doomed, p)
			delete(b.pools, id)
		}
	}
	b.vmMu.Lock()
	delete(b.vms, vm)
	b.vmMu.Unlock()
	b.poolMu.Unlock()
	b.purgePools(doomed)
}

// NewPool creates a tmem pool for vm (the guest's kernel-module init path)
// and returns its identifier. The VM account is resolved under poolMu (see
// UnregisterVM for why the two must be atomic).
func (b *Backend) NewPool(vm VMID, kind PoolKind) PoolID {
	b.enter()
	return b.newPool(vm, kind)
}

// newPool is NewPool without the owner gate — the Loopback injection
// surface, ordered by the transport's gate instead of the owner's.
func (b *Backend) newPool(vm VMID, kind PoolKind) PoolID {
	b.poolMu.Lock()
	defer b.poolMu.Unlock()
	a := b.register(vm)
	id := b.nextPool
	b.nextPool++
	b.pools[id] = &Pool{id: id, vm: vm, kind: kind, acct: a}
	return id
}

// RestorePool re-creates a pool under an explicit identifier — the crash-
// recovery path replaying a durable journal, where guests hold wire-
// visible pool ids that must survive the restart. The id allocator is
// advanced past id so later NewPool calls can never collide with a
// restored pool. Restoring a live id is an error.
func (b *Backend) RestorePool(id PoolID, vm VMID, kind PoolKind) error {
	b.enter()
	if id < 0 {
		return fmt.Errorf("tmem: restore of invalid pool id %d", id)
	}
	b.poolMu.Lock()
	defer b.poolMu.Unlock()
	if _, dup := b.pools[id]; dup {
		return fmt.Errorf("tmem: restore of live pool %d", id)
	}
	a := b.register(vm)
	b.pools[id] = &Pool{id: id, vm: vm, kind: kind, acct: a}
	if id >= b.nextPool {
		b.nextPool = id + 1
	}
	return nil
}

// DestroyPool flushes every page of the pool and removes it.
func (b *Backend) DestroyPool(id PoolID) error {
	b.enter()
	return b.destroyPool(id)
}

// destroyPool is DestroyPool without the owner gate (see newPool).
func (b *Backend) destroyPool(id PoolID) error {
	b.poolMu.Lock()
	p, ok := b.pools[id]
	if !ok {
		b.poolMu.Unlock()
		return fmt.Errorf("tmem: destroy of unknown pool %d", id)
	}
	delete(b.pools, id)
	b.poolMu.Unlock()
	b.purgePools([]*Pool{p})
	return nil
}

// purgePools marks every pool dead and drops their entries in a single
// sweep over the shards (one pass regardless of how many pools die — the
// VM-shutdown path hands over all of a VM's pools at once). The dead flags
// are set before any shard is scanned and inserts re-check them under the
// shard lock, so an insert either lands before the sweep reaches its shard
// (and is purged) or observes dead and fails.
func (b *Backend) purgePools(pools []*Pool) {
	if len(pools) == 0 {
		return
	}
	doomed := make(map[PoolID]bool, len(pools))
	for _, p := range pools {
		p.dead.Store(true)
		doomed[p.id] = true
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		for k, obj := range sh.objects {
			if !doomed[k.pool] {
				continue
			}
			for _, e := range obj {
				b.dropEntry(sh, e)
				sh.freeEntry(e)
			}
			delete(sh.objects, k)
		}
		for k := range sh.remote {
			if doomed[k.pool] {
				delete(sh.remote, k)
			}
		}
		sh.mu.Unlock()
	}
	// Release everything the lower tiers hold for the dead pools (one
	// remote pool destruction per tier and pool, not per page).
	for _, t := range b.tiers {
		for _, p := range pools {
			t.DropPool(p.id)
		}
	}
}

// dropEntry releases the frame and stored bytes of e and fixes all
// counters. The caller holds sh.mu and removes e from the object maps
// itself; this helper only touches the LRU, frame and account state.
func (b *Backend) dropEntry(sh *shard, e *entry) {
	sh.lruRemove(e)
	b.releaseFrame(e.frame)
	if err := sh.store.Drop(e.handle); err != nil {
		panic(fmt.Sprintf("tmem: page store accounting broken: %v", err))
	}
	e.pool.pages.Add(-1)
	e.acct.tmemUsed.Add(-1)
}

// evictOldest drops the node-wide oldest ephemeral page to free one frame.
// Cross-shard victim selection: every shard's LRU head carries a global
// clock stamp; the smallest stamp is the oldest page on the node. Returns
// false when no ephemeral page exists anywhere.
func (b *Backend) evictOldest() bool {
	if len(b.shards) == 1 {
		return b.evictHead(b.shards[0])
	}
	for {
		var victim *shard
		var oldest uint64
		for _, sh := range b.shards {
			sh.mu.Lock()
			if e := sh.lru.next; e != &sh.lru && (victim == nil || e.stamp < oldest) {
				victim, oldest = sh, e.stamp
			}
			sh.mu.Unlock()
		}
		if victim == nil {
			return false
		}
		// The victim shard may have drained between the scan and now;
		// rescan rather than give up, because another shard may still
		// hold an evictable page.
		if b.evictHead(victim) {
			return true
		}
	}
}

// evictHead drops sh's oldest ephemeral entry; false if the segment is empty.
func (b *Backend) evictHead(sh *shard) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.lru.next
	if e == &sh.lru {
		return false
	}
	sh.removeEntry(e)
	b.dropEntry(sh, e)
	e.acct.cumulEphEvicted.Add(1)
	sh.freeEntry(e)
	return true
}

// Put stores a page under key on behalf of the pool's VM, implementing
// paper Algorithm 1's PUT path:
//
//	if tmem_used >= mm_target   -> E_TMEM
//	else if free_tmem == 0      -> E_TMEM (after trying ephemeral eviction)
//	else allocate, copy, tmem_used++, puts_succ++
//	puts_total++ in all cases
//
// A put over an existing key replaces the page contents in place without
// consuming a new frame (Xen's "duplicate put" path). data may be nil for a
// zero page; it is copied before Put returns, so the caller may reuse the
// buffer — the page-copy–based interface of the paper.
//
// With tiers attached, a put the local store rejects with E_TMEM (over
// target or out of frames) is offered down the tier stack; the first tier
// accepting it turns the guest-visible status back into S_TMEM, sparing the
// guest a disk swap. The local rejection still counts as a failed put in
// the MemStats sample, so policies keep seeing the pressure that caused the
// overflow.
func (b *Backend) Put(key Key, data []byte) Status {
	b.enter()
	p := b.pool(key.Pool)
	if p == nil {
		return EInval
	}
	st, fromTier, sh := b.putLocal(p, key, data)
	if len(b.tiers) == 0 {
		return st
	}
	switch {
	case st == STmem && fromTier >= 0:
		// A fresh local copy supersedes the page's lower-tier copy; drop
		// the stale one so it can never shadow the new contents — unless a
		// concurrent overflow re-tracked the key in the meantime (then the
		// tier slot holds that newer acknowledged copy, not our stale one,
		// and must survive). Concurrent same-key operations from KV
		// clients otherwise have undefined ordering, as with any
		// concurrent store.
		if sh.remoteTier(key) < 0 {
			b.tiers[fromTier].FlushPage(key)
		}
	case st == ETmem:
		if b.offerTiers(p, sh, key, data) == STmem {
			return STmem
		}
	}
	return st
}

// offerTiers walks the tier stack with a page the local store rejected. A
// key already tracked in a tier is re-offered there first (the tier
// replaces contents in place); otherwise the stack is walked top-down and
// the accepting tier recorded. Tracking happens only if no concurrent put
// landed the key locally in the meantime — the tier copy is flushed
// instead, so a page is never both local and tracked (see noteRemoteIfFree).
func (b *Backend) offerTiers(p *Pool, sh *shard, key Key, data []byte) Status {
	tried := -1
	if ti := sh.remoteTier(key); ti >= 0 {
		if b.tiers[ti].Put(key, p.kind, data) == STmem {
			if !sh.noteRemoteIfFree(key, ti) {
				b.tiers[ti].FlushPage(key)
			}
			return STmem
		}
		sh.dropRemote(key)
		tried = ti
	}
	for i, t := range b.tiers {
		if i == tried {
			continue // this tier just rejected the re-offer
		}
		if t.Put(key, p.kind, data) == STmem {
			if !sh.noteRemoteIfFree(key, i) {
				t.FlushPage(key)
			}
			return STmem
		}
	}
	return ETmem
}

// PutLocal is Put restricted to tier 0, the local striped store. It is the
// surface Loopback serves to remote peers: an overflow page accepted on
// behalf of a peer can never cascade into this node's own tiers.
func (b *Backend) PutLocal(key Key, data []byte) Status {
	p := b.pool(key.Pool)
	if p == nil {
		return EInval
	}
	st, _, _ := b.putLocal(p, key, data)
	return st
}

// putLocal runs the local put path of Algorithm 1. fromTier reports the
// tier index a lower-tier copy of key was tracked under (-1 when none) so
// the caller can invalidate the now-stale copy after a local success; the
// key's shard rides along so the tiered path need not re-hash the key.
func (b *Backend) putLocal(p *Pool, key Key, data []byte) (st Status, fromTier int, sh *shard) {
	a := p.acct
	a.putsTotal.Add(1)
	a.cumulPutsTotal.Add(1)
	sh = b.shardFor(key)
	st, fromTier = b.putRetry(sh, p, a, key, data)
	return st, fromTier, sh
}

// putRetry runs the local put attempt/evict loop of Algorithm 1. The caller
// has already bumped the puts_total counters.
func (b *Backend) putRetry(sh *shard, p *Pool, a *vmAccount, key Key, data []byte) (st Status, fromTier int) {
	for {
		st, retry, ti := b.tryPut(sh, p, a, key, data)
		if !retry {
			return st, ti
		}
		// Algorithm 1, line 7: the node is out of frames. Ephemeral pages
		// are sacrificed first, as in Xen, before failing the put. Each
		// eviction frees exactly one frame, so the loop makes progress
		// even when concurrent puts race for it.
		if !b.evictOldest() {
			return ETmem, -1
		}
	}
}

// tryPut performs one put attempt under the shard lock. retry is true when
// the attempt failed only for want of a free frame; fromTier is the tier a
// lower-tier copy was tracked under when a fresh insert succeeded (-1
// otherwise) — the tracking entry is consumed here, under the lock.
func (b *Backend) tryPut(sh *shard, p *Pool, a *vmAccount, key Key, data []byte) (st Status, retry bool, fromTier int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return b.tryPutLocked(sh, p, a, key, data)
}

// tryPutLocked is tryPut's body; the caller holds sh.mu (the batch path
// holds it across a whole run of same-stripe keys).
func (b *Backend) tryPutLocked(sh *shard, p *Pool, a *vmAccount, key Key, data []byte) (st Status, retry bool, fromTier int) {
	if p.dead.Load() {
		return EInval, false, -1
	}

	// Duplicate put: replace contents, no capacity change.
	if e := sh.lookup(key); e != nil {
		h, err := sh.store.Save(data)
		if err != nil {
			return EInval, false, -1
		}
		if err := sh.store.Drop(e.handle); err != nil {
			panic(fmt.Sprintf("tmem: page store accounting broken: %v", err))
		}
		e.handle = h
		if p.kind == Ephemeral {
			sh.lruRemove(e)
			sh.lruPush(e, b.lruClock.Add(1))
		}
		a.putsSucc.Add(1)
		a.cumulPutsSucc.Add(1)
		return STmem, false, -1
	}

	// Algorithm 1, line 5: target enforcement. Reserve the page with an
	// atomic increment and roll back on overshoot — a plain check-then-act
	// would let concurrent puts on different shards jointly exceed the
	// target. Equivalent to the old "used >= target" check when serial.
	if mem.Pages(a.tmemUsed.Add(1)) > a.target() {
		a.tmemUsed.Add(-1)
		return ETmem, false, -1
	}
	frame, ok := b.allocFrame(sh)
	if !ok {
		a.tmemUsed.Add(-1)
		return ETmem, true, -1
	}
	h, err := sh.store.Save(data)
	if err != nil {
		b.releaseFrame(frame)
		a.tmemUsed.Add(-1)
		return EInval, false, -1
	}
	e := sh.allocEntry()
	e.key, e.pool, e.acct, e.frame, e.handle = key, p, a, frame, h
	k := objKey{key.Pool, key.Object}
	obj := sh.objects[k]
	if obj == nil {
		obj = sh.takeObj()
		sh.objects[k] = obj
	}
	obj[key.Index] = e
	p.pages.Add(1)
	if p.kind == Ephemeral {
		sh.lruPush(e, b.lruClock.Add(1))
	}
	a.putsSucc.Add(1)
	a.cumulPutsSucc.Add(1)
	return STmem, false, sh.takeRemote(key)
}

// Get copies the page stored under key into dst (which may be nil when the
// caller only cares about presence). Ephemeral hits are always destructive
// (Xen semantics); persistent hits leave the page in place — the guest
// issues an explicit FlushPage when it invalidates the swap slot.
//
// With tiers attached, a local miss on a key whose copy was shipped to a
// lower tier is served from that tier (and counted as a hit: tmem served
// the page, wherever it sat).
func (b *Backend) Get(key Key, dst []byte) Status {
	b.enter()
	p := b.pool(key.Pool)
	if p == nil {
		return EInval
	}
	a := p.acct
	a.cumulGetsTotal.Add(1)

	sh := b.shardFor(key)
	sh.mu.Lock()
	if e := sh.lookup(key); e != nil {
		st := b.getHitLocked(sh, p, a, e, dst)
		sh.mu.Unlock()
		return st
	}
	ti := -1
	if len(b.tiers) > 0 {
		ti = sh.remoteOf(key)
	}
	sh.mu.Unlock()
	if ti < 0 {
		return ETmem
	}
	if b.tiers[ti].Get(key, dst) == STmem {
		a.cumulGetsHit.Add(1)
		if p.kind == Ephemeral {
			// Lower-tier ephemeral gets are destructive too.
			sh.dropRemote(key)
		}
		return STmem
	}
	// The tier no longer holds the page (an ephemeral drop on the peer, or
	// the tier went down); stop tracking it.
	sh.dropRemote(key)
	return ETmem
}

// GetLocal is Get restricted to tier 0 (the Loopback surface; see PutLocal).
func (b *Backend) GetLocal(key Key, dst []byte) Status {
	p := b.pool(key.Pool)
	if p == nil {
		return EInval
	}
	a := p.acct
	a.cumulGetsTotal.Add(1)
	sh := b.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.lookup(key)
	if e == nil {
		return ETmem
	}
	return b.getHitLocked(sh, p, a, e, dst)
}

// getHitLocked serves a local hit; the caller holds sh.mu.
func (b *Backend) getHitLocked(sh *shard, p *Pool, a *vmAccount, e *entry, dst []byte) Status {
	if dst != nil {
		if err := sh.store.Load(e.handle, dst); err != nil {
			return EInval
		}
	}
	a.cumulGetsHit.Add(1)
	if p.kind == Ephemeral {
		sh.removeEntry(e)
		b.dropEntry(sh, e)
		sh.freeEntry(e)
	}
	return STmem
}

// Contains reports whether key is currently stored — locally or tracked in
// a lower tier (non-destructive even for ephemeral pools; diagnostic use
// only).
func (b *Backend) Contains(key Key) bool {
	b.enter()
	if b.pool(key.Pool) == nil {
		return false
	}
	sh := b.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.lookup(key) != nil || sh.remoteOf(key) >= 0
}

// FlushPage invalidates a single page (paper Algorithm 1 FLUSH path:
// deallocate, tmem_used--). Flushing an absent page returns ETmem, which
// guests treat as harmless. A page whose live copy sits in a lower tier is
// flushed there.
func (b *Backend) FlushPage(key Key) Status {
	b.enter()
	p := b.pool(key.Pool)
	if p == nil {
		return EInval
	}
	sh := b.shardFor(key)
	sh.mu.Lock()
	if e := sh.lookup(key); e != nil {
		sh.removeEntry(e)
		b.dropEntry(sh, e)
		sh.freeEntry(e)
		sh.mu.Unlock()
		p.acct.cumulFlushes.Add(1)
		return STmem
	}
	ti := -1
	if len(b.tiers) > 0 {
		ti = sh.takeRemote(key)
	}
	sh.mu.Unlock()
	if ti >= 0 && b.tiers[ti].FlushPage(key) == STmem {
		p.acct.cumulFlushes.Add(1)
		return STmem
	}
	return ETmem
}

// FlushPageLocal is FlushPage restricted to tier 0 (the Loopback surface).
func (b *Backend) FlushPageLocal(key Key) Status {
	p := b.pool(key.Pool)
	if p == nil {
		return EInval
	}
	sh := b.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.lookup(key)
	if e == nil {
		return ETmem
	}
	sh.removeEntry(e)
	b.dropEntry(sh, e)
	sh.freeEntry(e)
	p.acct.cumulFlushes.Add(1)
	return STmem
}

// FlushObject invalidates every page of an object, returning the number of
// pages freed. The object's pages spread across shards, so every stripe is
// visited (object flushes are rare next to page operations); pages tracked
// in lower tiers are flushed there with one object flush per involved tier.
func (b *Backend) FlushObject(pool PoolID, object ObjectID) (mem.Pages, Status) {
	b.enter()
	p := b.pool(pool)
	if p == nil {
		return 0, EInval
	}
	k := objKey{pool, object}
	n, remote := b.flushObjectLocal(k)
	for ti, cnt := range remote {
		if cnt <= 0 {
			continue
		}
		freed, st := b.tiers[ti].FlushObject(pool, object)
		if st != STmem {
			continue
		}
		if freed < 0 {
			// Transport couldn't count; best effort: credit the tracked
			// pages (may overcount if the peer evicted some beforehand).
			freed = cnt
		}
		n += freed
	}
	if n == 0 {
		return 0, ETmem
	}
	p.acct.cumulFlushes.Add(uint64(n))
	return n, STmem
}

// FlushObjectLocal is FlushObject restricted to tier 0 (the Loopback
// surface).
func (b *Backend) FlushObjectLocal(pool PoolID, object ObjectID) (mem.Pages, Status) {
	p := b.pool(pool)
	if p == nil {
		return 0, EInval
	}
	n, _ := b.flushObjectLocal(objKey{pool, object})
	if n == 0 {
		return 0, ETmem
	}
	p.acct.cumulFlushes.Add(uint64(n))
	return n, STmem
}

// flushObjectLocal sweeps an object out of every shard's local maps and
// tier tracking; remote[i] counts the pages that were tracked in tier i.
func (b *Backend) flushObjectLocal(k objKey) (n mem.Pages, remote []mem.Pages) {
	if len(b.tiers) > 0 {
		remote = make([]mem.Pages, len(b.tiers))
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		if obj, ok := sh.objects[k]; ok {
			for _, e := range obj {
				b.dropEntry(sh, e)
				sh.freeEntry(e)
				n++
			}
			delete(sh.objects, k)
		}
		if sh.remote != nil {
			for _, ti := range sh.remote[k] {
				remote[ti]++
			}
			delete(sh.remote, k)
		}
		sh.mu.Unlock()
	}
	return n, remote
}

// SetTarget installs the MM-computed allocation target for a VM
// (vm_data_hyp[id].mm_target). The hypervisor stores targets until the MM
// modifies them (paper §III-B). Unknown VMs are registered implicitly.
func (b *Backend) SetTarget(vm VMID, target mem.Pages) {
	b.enter()
	if target < 0 {
		target = 0
	}
	b.register(vm).mmTarget.Store(int64(target))
}

// Target returns the current target of a VM.
func (b *Backend) Target(vm VMID) mem.Pages {
	b.enter()
	if a := b.account(vm); a != nil {
		return a.target()
	}
	return 0
}

// UsedBy returns the pages currently consumed by a VM.
func (b *Backend) UsedBy(vm VMID) mem.Pages {
	b.enter()
	if a := b.account(vm); a != nil {
		return mem.Pages(a.tmemUsed.Load())
	}
	return 0
}

// VMs returns the registered VM ids in ascending order.
func (b *Backend) VMs() []VMID {
	b.enter()
	b.vmMu.RLock()
	ids := make([]VMID, 0, len(b.vms))
	for id := range b.vms {
		ids = append(ids, id)
	}
	b.vmMu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Footprint returns the host bytes retained across all shard page stores.
func (b *Backend) Footprint() int64 {
	b.enter()
	var n int64
	for _, sh := range b.shards {
		sh.mu.Lock()
		n += sh.store.Footprint()
		sh.mu.Unlock()
	}
	return n
}

// CheckInvariants cross-checks all capacity accounting. It is exercised by
// the property tests and may be called at any time; it stops the world
// (every stripe lock, in order) for the duration.
func (b *Backend) CheckInvariants() error {
	b.enter()
	// Documented lock order: poolMu -> shard.mu (index order) ->
	// frameSource.mu -> vmMu. The frame sweep completes before vmMu is
	// taken so the checker itself honours the ordering.
	b.poolMu.RLock()
	defer b.poolMu.RUnlock()
	for _, sh := range b.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}

	var used, free mem.Pages
	for _, sh := range b.shards {
		sh.frames.mu.Lock()
		err := sh.frames.alloc.CheckInvariants()
		u, f := sh.frames.alloc.Used(), sh.frames.alloc.Free()
		sh.frames.mu.Unlock()
		if err != nil {
			return err
		}
		used += u
		free += f
	}
	b.vmMu.RLock()
	defer b.vmMu.RUnlock()
	if used+free != b.totalPages {
		return fmt.Errorf("tmem: stripe partitions cover %d frames, want %d", used+free, b.totalPages)
	}
	if got := b.FreePages(); got != free {
		return fmt.Errorf("tmem: free counter %d != summed stripe free %d", got, free)
	}

	entryPages := make(map[PoolID]mem.Pages)
	var storeCount int
	for _, sh := range b.shards {
		for k, obj := range sh.objects {
			if _, ok := b.pools[k.pool]; !ok {
				return fmt.Errorf("tmem: shard holds entries of unknown pool %d", k.pool)
			}
			entryPages[k.pool] += mem.Pages(len(obj))
		}
		for k, rm := range sh.remote {
			if _, ok := b.pools[k.pool]; !ok {
				return fmt.Errorf("tmem: shard tracks tier pages of unknown pool %d", k.pool)
			}
			for idx, ti := range rm {
				if ti < 0 || ti >= len(b.tiers) {
					return fmt.Errorf("tmem: page %v tracked in nonexistent tier %d", Key{k.pool, k.object, idx}, ti)
				}
				if obj, ok := sh.objects[k]; ok {
					if _, dup := obj[idx]; dup {
						return fmt.Errorf("tmem: page %v held both locally and in tier %d", Key{k.pool, k.object, idx}, ti)
					}
				}
			}
		}
		storeCount += sh.store.Count()
	}
	var poolPages mem.Pages
	for id, p := range b.pools {
		n := entryPages[id]
		if n != p.Pages() {
			return fmt.Errorf("tmem: pool %d page count %d != entries %d", id, p.Pages(), n)
		}
		poolPages += n
	}
	if poolPages != used {
		return fmt.Errorf("tmem: pools hold %d pages but allocators report %d used", poolPages, used)
	}
	if storeCount != int(used) {
		return fmt.Errorf("tmem: page stores hold %d pages but allocators report %d used", storeCount, used)
	}

	var vmPages mem.Pages
	for _, a := range b.vms {
		u := mem.Pages(a.tmemUsed.Load())
		if u < 0 {
			return fmt.Errorf("tmem: vm %d negative tmem_used %d", a.id, u)
		}
		vmPages += u
	}
	if vmPages != used {
		return fmt.Errorf("tmem: VM accounts sum to %d pages but allocators report %d used", vmPages, used)
	}
	for _, a := range b.vms {
		if succ, total := a.cumulPutsSucc.Load(), a.cumulPutsTotal.Load(); succ > total {
			return fmt.Errorf("tmem: vm %d puts_succ %d > puts_total %d", a.id, succ, total)
		}
	}
	return nil
}
