package tmem

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"smartmem/internal/mem"
)

func newTestCompressedTier(capacity mem.Bytes) *CompressedTier {
	return NewCompressedTier(CompressedTierConfig{
		PageSize:      testPage,
		CapacityBytes: capacity,
	})
}

func TestCompressedTierRoundTrip(t *testing.T) {
	ct := newTestCompressedTier(mem.MiB)
	key := Key{Pool: 1, Object: 2, Index: 3}
	page := fill(7)

	if st := ct.Put(key, Persistent, page); st != STmem {
		t.Fatalf("Put = %v", st)
	}
	dst := make([]byte, testPage)
	if st := ct.Get(key, dst); st != STmem {
		t.Fatalf("Get = %v", st)
	}
	if !bytes.Equal(dst, page) {
		t.Fatal("page contents corrupted through compress/decompress")
	}
	// Persistent gets are non-destructive.
	if st := ct.Get(key, dst); st != STmem {
		t.Fatalf("second Get = %v", st)
	}
	if st := ct.FlushPage(key); st != STmem {
		t.Fatalf("FlushPage = %v", st)
	}
	if st := ct.Get(key, dst); st != ETmem {
		t.Fatalf("Get after flush = %v, want E_TMEM", st)
	}

	s := ct.CompressedStats()
	if s.PagesStored != 0 || s.UniqueBlobs != 0 || s.StoredBytes != 0 || s.RawBytes != 0 {
		t.Errorf("accounting not empty after flush: %+v", s)
	}
	if s.Puts != 1 || s.PutsOK != 1 || s.GetsHit != 2 {
		t.Errorf("counters = %+v", s)
	}
}

func TestCompressedTierEphemeralGetIsDestructive(t *testing.T) {
	ct := newTestCompressedTier(mem.MiB)
	key := Key{Pool: 1, Object: 1, Index: 1}
	if st := ct.Put(key, Ephemeral, fill(3)); st != STmem {
		t.Fatal(st)
	}
	dst := make([]byte, testPage)
	if st := ct.Get(key, dst); st != STmem {
		t.Fatal(st)
	}
	if st := ct.Get(key, dst); st != ETmem {
		t.Fatalf("second ephemeral get = %v, want E_TMEM", st)
	}
	if s := ct.CompressedStats(); s.PagesStored != 0 || s.StoredBytes != 0 {
		t.Errorf("destructive get left accounting: %+v", s)
	}
}

func TestCompressedTierDedup(t *testing.T) {
	ct := newTestCompressedTier(mem.MiB)
	page := fill(9)
	// Identical contents under 8 distinct keys (different pools = different
	// VMs): one refcounted blob, one slab charge.
	for i := 0; i < 8; i++ {
		key := Key{Pool: PoolID(i), Object: 1, Index: 1}
		if st := ct.Put(key, Persistent, page); st != STmem {
			t.Fatal(st)
		}
	}
	s := ct.CompressedStats()
	if s.UniqueBlobs != 1 || s.PagesStored != 8 {
		t.Fatalf("blobs=%d pages=%d, want 1/8", s.UniqueBlobs, s.PagesStored)
	}
	if s.DedupHits != 7 {
		t.Errorf("dedup hits = %d, want 7", s.DedupHits)
	}
	if s.RawBytes != 8*testPage {
		t.Errorf("raw bytes = %d, want %d", s.RawBytes, 8*testPage)
	}
	if got := s.Ratio(); got < 2 {
		t.Errorf("ratio = %.1f, want >= 2 on deduped fill pages", got)
	}

	// Dropping 7 of 8 references keeps the blob; the last drop frees it.
	for i := 0; i < 7; i++ {
		if st := ct.FlushPage(Key{Pool: PoolID(i), Object: 1, Index: 1}); st != STmem {
			t.Fatal(st)
		}
	}
	if s := ct.CompressedStats(); s.UniqueBlobs != 1 {
		t.Fatalf("blob freed while still referenced: %+v", s)
	}
	dst := make([]byte, testPage)
	if st := ct.Get(Key{Pool: 7, Object: 1, Index: 1}, dst); st != STmem || !bytes.Equal(dst, page) {
		t.Fatal("surviving reference unreadable")
	}
	ct.DropPool(7)
	if s := ct.CompressedStats(); s.UniqueBlobs != 0 || s.StoredBytes != 0 {
		t.Errorf("accounting not empty after last deref: %+v", s)
	}
}

func TestCompressedTierReplacePut(t *testing.T) {
	ct := newTestCompressedTier(mem.MiB)
	key := Key{Pool: 1, Object: 1, Index: 1}
	if st := ct.Put(key, Persistent, fill(1)); st != STmem {
		t.Fatal(st)
	}
	if st := ct.Put(key, Persistent, fill(2)); st != STmem {
		t.Fatal(st)
	}
	dst := make([]byte, testPage)
	if st := ct.Get(key, dst); st != STmem || !bytes.Equal(dst, fill(2)) {
		t.Fatal("replacement put did not supersede")
	}
	if s := ct.CompressedStats(); s.PagesStored != 1 || s.UniqueBlobs != 1 {
		t.Errorf("replace leaked: %+v", s)
	}
}

func TestCompressedTierCapacityRejection(t *testing.T) {
	// Incompressible pages charge a full 4 KiB class (+ framing → 8 KiB
	// class): a 32 KiB arena fills after a handful of distinct noise pages.
	ct := newTestCompressedTier(32 * mem.KiB)
	pages := codecTestPages(testPage)
	noise := pages["noise"]
	accepted, rejected := 0, 0
	for i := 0; i < 16; i++ {
		p := append([]byte(nil), noise...)
		p[0] = byte(i) // distinct contents: dedup cannot help
		key := Key{Pool: 1, Object: 1, Index: PageIndex(i)}
		if st := ct.Put(key, Persistent, p); st == STmem {
			accepted++
		} else {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no puts rejected on a full arena")
	}
	s := ct.CompressedStats()
	if s.RejectedFull == 0 {
		t.Error("RejectedFull not counted")
	}
	if s.StoredBytes > 32*mem.KiB {
		t.Errorf("stored %d bytes > %d capacity", s.StoredBytes, 32*mem.KiB)
	}
	// Everything accepted stays readable.
	dst := make([]byte, testPage)
	hits := 0
	for i := 0; i < 16; i++ {
		if ct.Get(Key{Pool: 1, Object: 1, Index: PageIndex(i)}, dst) == STmem {
			hits++
		}
	}
	if hits != accepted {
		t.Errorf("hits = %d, accepted = %d", hits, accepted)
	}
}

func TestCompressedTierNilDataIsZeroPage(t *testing.T) {
	// The simulator's meta stores pass nil page data; the tier must treat
	// that as the all-zero page without invoking the codec, and all nil
	// puts dedup to the one zero blob.
	ct := newTestCompressedTier(mem.MiB)
	for i := 0; i < 10; i++ {
		if st := ct.Put(Key{Pool: 1, Object: 1, Index: PageIndex(i)}, Persistent, nil); st != STmem {
			t.Fatal(st)
		}
	}
	s := ct.CompressedStats()
	if s.UniqueBlobs != 1 {
		t.Errorf("unique blobs = %d, want 1 (zero page)", s.UniqueBlobs)
	}
	if s.CompressNs != 0 {
		t.Errorf("nil puts touched the codec: %d ns", s.CompressNs)
	}
	dst := fill(0xAA)
	if st := ct.Get(Key{Pool: 1, Object: 1, Index: 0}, dst); st != STmem {
		t.Fatal(st)
	}
	if !bytes.Equal(dst, make([]byte, testPage)) {
		t.Error("zero-page get did not zero the destination")
	}
	if s := ct.CompressedStats(); s.DecompressNs != 0 {
		t.Errorf("zero-page get touched the codec: %d ns", s.DecompressNs)
	}
}

func TestCompressedTierBatch(t *testing.T) {
	ct := newTestCompressedTier(mem.MiB)
	const n = 16
	keys := make([]Key, n)
	kinds := make([]PoolKind, n)
	datas := make([][]byte, n)
	sts := make([]Status, n)
	for i := range keys {
		keys[i] = Key{Pool: 1, Object: 1, Index: PageIndex(i)}
		kinds[i] = Persistent
		datas[i] = fill(byte(i % 4)) // 4 distinct contents across 16 keys
	}
	ct.PutBatch(keys, kinds, datas, sts)
	for i, st := range sts {
		if st != STmem {
			t.Fatalf("PutBatch[%d] = %v", i, st)
		}
	}
	if s := ct.CompressedStats(); s.UniqueBlobs != 4 || s.DedupHits != 12 {
		t.Errorf("batch dedup: %+v", s)
	}
	dsts := make([][]byte, n)
	for i := range dsts {
		dsts[i] = make([]byte, testPage)
	}
	ct.GetBatch(keys, dsts, sts)
	for i, st := range sts {
		if st != STmem {
			t.Fatalf("GetBatch[%d] = %v", i, st)
		}
		if !bytes.Equal(dsts[i], datas[i]) {
			t.Fatalf("GetBatch[%d] contents mismatch", i)
		}
	}
}

func TestCompressedTierFlushObjectAndDropPool(t *testing.T) {
	ct := newTestCompressedTier(mem.MiB)
	for obj := 0; obj < 3; obj++ {
		for i := 0; i < 4; i++ {
			key := Key{Pool: 1, Object: ObjectID(obj), Index: PageIndex(i)}
			if st := ct.Put(key, Persistent, fill(byte(obj))); st != STmem {
				t.Fatal(st)
			}
		}
	}
	n, st := ct.FlushObject(1, 0)
	if st != STmem || n != 4 {
		t.Fatalf("FlushObject = %d, %v, want 4 pages", n, st)
	}
	if _, st := ct.FlushObject(1, 0); st != ETmem {
		t.Error("second FlushObject should miss")
	}
	ct.DropPool(1)
	if s := ct.CompressedStats(); s.PagesStored != 0 || s.UniqueBlobs != 0 {
		t.Errorf("DropPool left pages: %+v", s)
	}
}

// faultyCodec wraps the LZ codec and, once armed, fails every decode — the
// stand-in for a corrupted slab.
type faultyCodec struct {
	Codec
	failDecode bool
}

func (f *faultyCodec) Decode(dst, src []byte) (int, error) {
	if f.failDecode {
		return 0, errors.New("injected corruption")
	}
	return f.Codec.Decode(dst, src)
}

// TestCompressedTierDecodeErrorFallsThrough pins the satellite-2 contract:
// a blob that fails to decode must read as a clean tier miss — the backend
// drops its tracking and the guest falls through to the next tier / its
// disk — never a panic or a garbage page.
func TestCompressedTierDecodeErrorFallsThrough(t *testing.T) {
	fc := &faultyCodec{Codec: NewLZCodec()}
	local := NewBackend(1, NewDataStore(testPage))
	local.AttachTier(NewCompressedTier(CompressedTierConfig{
		PageSize:      testPage,
		CapacityBytes: mem.MiB,
		Codec:         fc,
	}))
	pool := local.NewPool(1, Persistent)

	// Fill the single local frame, then overflow one page into the tier.
	if st := local.Put(Key{Pool: pool, Object: 0, Index: 0}, fill(1)); st != STmem {
		t.Fatal(st)
	}
	key := Key{Pool: pool, Object: 0, Index: 1}
	if st := local.Put(key, fill(2)); st != STmem {
		t.Fatalf("overflow put = %v", st)
	}

	fc.failDecode = true
	dst := fill(0xEE)
	if st := local.Get(key, dst); st != ETmem {
		t.Fatalf("Get over corrupted blob = %v, want E_TMEM", st)
	}
	if bytes.Equal(dst, fill(2)) {
		t.Fatal("corrupted blob returned page contents")
	}
	// The miss is permanent (tracking dropped), even after the codec heals.
	fc.failDecode = false
	if st := local.Get(key, dst); st != ETmem {
		t.Fatalf("Get after corruption = %v, want E_TMEM", st)
	}
	ts := local.Tiers()[0].(*CompressedTier).CompressedStats()
	if ts.DecodeErrors != 1 {
		t.Errorf("decode errors = %d, want 1", ts.DecodeErrors)
	}
	if ts.PagesStored != 0 {
		t.Errorf("corrupted entry not dropped: %+v", ts)
	}
	if err := local.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCompressedTierEffectiveCapacity(t *testing.T) {
	ct := newTestCompressedTier(mem.MiB)
	capPages := mem.Pages(mem.MiB / testPage)
	if got := ct.EffectiveExtraPages(); got != capPages {
		t.Fatalf("empty tier extra = %d, want ratio-1 estimate %d", got, capPages)
	}
	// Store compressible pages: the observed per-page cost drops well below
	// pageSize and the projection must exceed the raw page count.
	for i := 0; i < 32; i++ {
		key := Key{Pool: 1, Object: 1, Index: PageIndex(i)}
		if st := ct.Put(key, Persistent, fill(byte(i))); st != STmem {
			t.Fatal(st)
		}
	}
	extra := ct.EffectiveExtraPages()
	if extra <= capPages {
		t.Errorf("extra = %d, want > %d after compressible pages", extra, capPages)
	}
	maxPages := 8 * capPages // default MaxRatio 8
	if extra > maxPages {
		t.Errorf("extra = %d exceeds MaxRatio cap %d", extra, maxPages)
	}

	// Sample folds the amplified capacity into MemStats, and the policies'
	// EffectiveTotal reads it; the wire encoding round-trips it.
	local := NewBackend(64, NewDataStore(testPage))
	local.AttachTier(ct)
	local.NewPool(1, Persistent)
	ms := local.Sample(1)
	if ms.EffectiveTmem != 64+extra {
		t.Errorf("EffectiveTmem = %d, want %d", ms.EffectiveTmem, 64+extra)
	}
	if ms.EffectiveTotal() != 64+extra {
		t.Errorf("EffectiveTotal = %d, want %d", ms.EffectiveTotal(), 64+extra)
	}
	dec, _, err := MemStatsFromWire(ms.AppendWire(nil))
	if err != nil {
		t.Fatal(err)
	}
	if dec.EffectiveTmem != ms.EffectiveTmem {
		t.Errorf("wire round trip lost EffectiveTmem: %d != %d", dec.EffectiveTmem, ms.EffectiveTmem)
	}

	// No amplifier → EffectiveTmem stays zero and EffectiveTotal falls back
	// to TotalTmem (the compression-off goldens depend on this).
	plain := NewBackend(64, NewDataStore(testPage))
	if ms := plain.Sample(1); ms.EffectiveTmem != 0 || ms.EffectiveTotal() != 64 {
		t.Errorf("plain backend: EffectiveTmem=%d EffectiveTotal=%d", ms.EffectiveTmem, ms.EffectiveTotal())
	}
}

// TestCompressedTierWarmCycleZeroAllocs pins the acceptance criterion: the
// warm compress→hit→decompress cycle allocates nothing — slab buffers,
// blob/entry structs and codec scratch all recycle through the tier's free
// lists.
func TestCompressedTierWarmCycleZeroAllocs(t *testing.T) {
	ct := newTestCompressedTier(mem.MiB)
	page := codecTestPages(testPage)["text"]
	dst := make([]byte, testPage)
	key := Key{Pool: 1, Object: 1, Index: 1}

	cycle := func() {
		if st := ct.Put(key, Persistent, page); st != STmem {
			t.Fatal(st)
		}
		if st := ct.Get(key, dst); st != STmem {
			t.Fatal(st)
		}
		if st := ct.FlushPage(key); st != STmem {
			t.Fatal(st)
		}
	}
	for i := 0; i < 16; i++ {
		cycle() // warm the free lists and scratch
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Errorf("warm compress→hit→decompress cycle allocates %.1f/op, want 0", avg)
	}

	// The ephemeral destructive path must be allocation-free too.
	eph := func() {
		if st := ct.Put(key, Ephemeral, page); st != STmem {
			t.Fatal(st)
		}
		if st := ct.Get(key, dst); st != STmem {
			t.Fatal(st)
		}
	}
	for i := 0; i < 16; i++ {
		eph()
	}
	if avg := testing.AllocsPerRun(200, eph); avg != 0 {
		t.Errorf("warm ephemeral put→get cycle allocates %.1f/op, want 0", avg)
	}
}

// TestCompressedTierConcurrent exercises the tier under the sharded
// backend's concurrent overflow traffic (run under -race in CI).
func TestCompressedTierConcurrent(t *testing.T) {
	local := newShardedBackend(64, 8)
	local.AttachTier(NewCompressedTier(CompressedTierConfig{
		PageSize:      testPage,
		CapacityBytes: 4 * mem.MiB,
	}))

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		pool := local.NewPool(VMID(w), Persistent)
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, testPage)
			for i := 0; i < 400; i++ {
				key := Key{Pool: pool, Object: ObjectID(i % 5), Index: PageIndex(i)}
				local.Put(key, fill(byte(i%7)))
				local.Get(key, dst)
				if i%3 == 0 {
					local.FlushPage(key)
				}
			}
			local.FlushObject(pool, 0)
		}()
	}
	wg.Wait()
	if err := local.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// BenchmarkCompressedTier measures the tier's hot cycles on the text-mix
// page: ns/op, allocs/op and the achieved compression ratio land in
// BENCH.json via make bench-json.
func BenchmarkCompressedTier(b *testing.B) {
	page := codecTestPages(testPage)["text"]

	b.Run("compress", func(b *testing.B) {
		ct := newTestCompressedTier(mem.MiB)
		key := Key{Pool: 1, Object: 1, Index: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ct.Put(key, Persistent, page)
			ct.FlushPage(key)
		}
		b.StopTimer()
		ct.Put(key, Persistent, page)
		b.ReportMetric(ct.CompressedStats().Ratio(), "ratio")
	})

	b.Run("roundtrip", func(b *testing.B) {
		ct := newTestCompressedTier(mem.MiB)
		key := Key{Pool: 1, Object: 1, Index: 1}
		dst := make([]byte, testPage)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ct.Put(key, Persistent, page)
			ct.Get(key, dst)
			ct.FlushPage(key)
		}
	})

	b.Run("dedup", func(b *testing.B) {
		ct := newTestCompressedTier(mem.MiB)
		// Seed one blob; every benchmarked put dedups against it.
		ct.Put(Key{Pool: 99, Object: 1, Index: 1}, Persistent, page)
		key := Key{Pool: 1, Object: 1, Index: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ct.Put(key, Persistent, page)
			ct.FlushPage(key)
		}
		b.StopTimer()
		s := ct.CompressedStats()
		b.ReportMetric(float64(s.DedupHits)/float64(s.Puts), "dedup-rate")
	})
}
