//go:build !race

package tmem

const raceEnabled = false
