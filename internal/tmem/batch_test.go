package tmem

import (
	"bytes"
	"fmt"
	"testing"

	"smartmem/internal/mem"
)

// countingSvc wraps a PageService and counts transport round trips — the
// quantity the batch frames exist to amortize.
type countingSvc struct {
	inner PageService
	trips int
}

func (c *countingSvc) NewPool(vm VMID, kind PoolKind) (PoolID, error) {
	c.trips++
	return c.inner.NewPool(vm, kind)
}
func (c *countingSvc) Put(key Key, data []byte) (Status, error) {
	c.trips++
	return c.inner.Put(key, data)
}
func (c *countingSvc) Get(key Key) (Status, []byte, error) {
	c.trips++
	return c.inner.Get(key)
}
func (c *countingSvc) FlushPage(key Key) (Status, error) {
	c.trips++
	return c.inner.FlushPage(key)
}
func (c *countingSvc) FlushObject(pool PoolID, object ObjectID) (Status, error) {
	c.trips++
	return c.inner.FlushObject(pool, object)
}
func (c *countingSvc) DestroyPool(pool PoolID) (Status, error) {
	c.trips++
	return c.inner.DestroyPool(pool)
}
func (c *countingSvc) PutBatch(keys []Key, datas [][]byte, sts []Status) error {
	c.trips++
	return c.inner.(BatchPageService).PutBatch(keys, datas, sts)
}
func (c *countingSvc) GetBatch(keys []Key, dsts [][]byte, sts []Status) error {
	c.trips++
	return c.inner.(BatchPageService).GetBatch(keys, dsts, sts)
}

var _ BatchPageService = (*countingSvc)(nil)

func testKeys(pool PoolID, n int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{Pool: pool, Object: ObjectID(i >> 4), Index: PageIndex(i)}
	}
	return keys
}

func TestPutBatchGetBatchRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			b := NewBackendOpts(1024, Options{
				Shards:   shards,
				NewStore: func() PageStore { return NewDataStore(testPage) },
			})
			pool := b.NewPool(1, Persistent)
			const n = 64
			keys := testKeys(pool, n)
			datas := make([][]byte, n)
			for i := range datas {
				datas[i] = bytes.Repeat([]byte{byte(i + 1)}, testPage)
			}
			sts := make([]Status, n)
			b.PutBatch(keys, datas, sts)
			for i, st := range sts {
				if st != STmem {
					t.Fatalf("put %d = %v", i, st)
				}
			}
			if got := b.UsedBy(1); got != n {
				t.Fatalf("used = %d, want %d", got, n)
			}
			dsts := make([][]byte, n)
			for i := range dsts {
				dsts[i] = make([]byte, testPage)
			}
			b.GetBatch(keys, dsts, sts)
			for i, st := range sts {
				if st != STmem {
					t.Fatalf("get %d = %v", i, st)
				}
				if !bytes.Equal(dsts[i], datas[i]) {
					t.Fatalf("page %d contents corrupted", i)
				}
			}
			b.FlushRun(keys, sts)
			for i, st := range sts {
				if st != STmem {
					t.Fatalf("flush %d = %v", i, st)
				}
			}
			if got := b.UsedBy(1); got != 0 {
				t.Fatalf("used after flush = %d", got)
			}
			if err := b.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchMatchesPerOpCounters: a batch must leave exactly the state and
// counters a per-op loop leaves on a single-shard (deterministic) backend.
func TestBatchMatchesPerOpCounters(t *testing.T) {
	build := func() (*Backend, PoolID) {
		b := NewBackend(128, NewMetaStore(testPage)) // small: forces overflow failures
		return b, b.NewPool(1, Persistent)
	}
	const n = 200 // exceeds capacity: mix of successes and failures
	snapshot := func(b *Backend) string {
		c, _ := b.Counts(1)
		return fmt.Sprintf("%+v free=%d used=%d", c, b.FreePages(), b.UsedBy(1))
	}

	ref, refPool := build()
	keys := testKeys(refPool, n)
	for _, k := range keys {
		ref.Put(k, nil)
	}
	for _, k := range keys {
		ref.Get(k, nil)
	}

	got, gotPool := build()
	keys2 := testKeys(gotPool, n)
	sts := make([]Status, n)
	got.PutBatch(keys2, nil, sts)
	got.GetBatch(keys2, nil, sts)

	if a, b := snapshot(ref), snapshot(got); a != b {
		t.Errorf("batch diverged from per-op:\n per-op: %s\n  batch: %s", a, b)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPutBatchOverflowOneRoundTrip pins the acceptance criterion: a run of
// overflow puts crosses the transport in a single batch round trip, not
// one per page — ≤ 1/4 of the per-page op count for run length ≥ 4.
func TestPutBatchOverflowOneRoundTrip(t *testing.T) {
	peer := NewBackend(1<<16, NewMetaStore(testPage))
	svc := &countingSvc{inner: NewLoopback(peer)}
	local := NewBackend(8, NewMetaStore(testPage))
	local.AttachTier(NewRemoteTier("peer", svc, 1000))
	pool := local.NewPool(1, Persistent)

	const n = 32
	keys := testKeys(pool, n)
	sts := make([]Status, n)
	local.PutBatch(keys, nil, sts)
	for i, st := range sts {
		if st != STmem {
			t.Fatalf("put %d = %v (tier should have absorbed the overflow)", i, st)
		}
	}
	overflow := n - 8 // pages the local store could not hold
	if got := peer.UsedBy(1000); got != mem.Pages(overflow) {
		t.Fatalf("peer absorbed %d pages, want %d", got, overflow)
	}
	// One NewPool + one PutBatch. The per-page protocol would have paid
	// `overflow` trips.
	if svc.trips > 2 {
		t.Errorf("overflow run cost %d transport round trips, want <= 2 (per-page would cost %d)",
			svc.trips, overflow)
	}
	if svc.trips > overflow/4 {
		t.Errorf("batch round-trips %d exceed 1/4 of the per-page op count %d", svc.trips, overflow)
	}

	// The overflowed pages come back through one GetBatch round trip.
	svc.trips = 0
	getKeys := keys[8:]
	getSts := make([]Status, len(getKeys))
	local.GetBatch(getKeys, nil, getSts)
	for i, st := range getSts {
		if st != STmem {
			t.Fatalf("get %d = %v", i, st)
		}
	}
	if svc.trips != 1 {
		t.Errorf("tracked-page get run cost %d round trips, want 1", svc.trips)
	}
	if err := local.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPutBatchSupersedeFlushesTierCopy: a duplicate put that lands locally
// must invalidate the stale lower-tier copy, exactly as Put does.
func TestPutBatchSupersedeFlushesTierCopy(t *testing.T) {
	peer := NewBackend(1<<16, NewMetaStore(testPage))
	local := NewBackend(4, NewMetaStore(testPage))
	local.AttachTier(NewRemoteTier("peer", NewLoopback(peer), 1000))
	pool := local.NewPool(1, Persistent)

	keys := testKeys(pool, 8)
	sts := make([]Status, 8)
	local.PutBatch(keys, nil, sts) // 4 land locally, 4 overflow to the peer
	if got := peer.UsedBy(1000); got != 4 {
		t.Fatalf("peer holds %d, want 4", got)
	}
	// Free local room, then re-put everything: the previously overflowed
	// keys land locally and their peer copies must be flushed.
	local.SetTarget(1, Unlimited)
	flushSts := make([]Status, 4)
	local.FlushRun(keys[:4], flushSts)
	local.PutBatch(keys[4:], nil, flushSts)
	for i, st := range flushSts {
		if st != STmem {
			t.Fatalf("re-put %d = %v", i, st)
		}
	}
	if got := peer.UsedBy(1000); got != 0 {
		t.Errorf("stale peer copies remain: %d pages", got)
	}
	if err := local.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmSlabZeroAlloc pins the acceptance criterion: duplicate puts and
// gets against a warm DataStore-backed backend allocate nothing — the slab
// free list recycles page buffers and the shard free list recycles entries.
func TestWarmSlabZeroAlloc(t *testing.T) {
	b := NewBackend(1024, NewDataStore(testPage))
	ppool := b.NewPool(1, Persistent)
	epool := b.NewPool(1, Ephemeral)
	data := make([]byte, testPage)
	dst := make([]byte, testPage)
	// Warm up: high-water the slab, the entry pools and the maps.
	for i := 0; i < 256; i++ {
		b.Put(Key{Pool: ppool, Object: 1, Index: PageIndex(i)}, data)
		b.Put(Key{Pool: epool, Object: 1, Index: PageIndex(i)}, data)
	}
	for i := 0; i < 256; i++ {
		b.FlushPage(Key{Pool: ppool, Object: 1, Index: PageIndex(i)})
		b.Get(Key{Pool: epool, Object: 1, Index: PageIndex(i)}, dst) // destructive
	}

	key := Key{Pool: ppool, Object: 1, Index: 0}
	if st := b.Put(key, data); st != STmem {
		t.Fatal(st)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if b.Put(key, data) != STmem { // duplicate put: replace in place
			t.Fatal("put failed")
		}
		if b.Get(key, dst) != STmem {
			t.Fatal("get missed")
		}
	}); allocs != 0 {
		t.Errorf("warm duplicate put/get = %v allocs/op, want 0", allocs)
	}

	// Fresh put + flush cycle (entry + frame + slab page recycled).
	k2 := Key{Pool: ppool, Object: 2, Index: 1}
	b.Put(k2, data)
	b.FlushPage(k2)
	if allocs := testing.AllocsPerRun(200, func() {
		if b.Put(k2, data) != STmem {
			t.Fatal("put failed")
		}
		if b.FlushPage(k2) != STmem {
			t.Fatal("flush missed")
		}
	}); allocs != 0 {
		t.Errorf("warm put/flush cycle = %v allocs/op, want 0", allocs)
	}

	// Ephemeral put + destructive get cycle through the eviction LRU.
	k3 := Key{Pool: epool, Object: 3, Index: 1}
	b.Put(k3, data)
	b.Get(k3, dst)
	if allocs := testing.AllocsPerRun(200, func() {
		if b.Put(k3, data) != STmem {
			t.Fatal("put failed")
		}
		if b.Get(k3, dst) != STmem {
			t.Fatal("get missed")
		}
	}); allocs != 0 {
		t.Errorf("warm ephemeral put/get = %v allocs/op, want 0", allocs)
	}
}

// TestWarmBatchZeroAlloc: the batch engine's scratch pool must make warm
// GetRun/PutBatch calls allocation-free too.
func TestWarmBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse")
	}
	b := NewBackend(1024, NewMetaStore(testPage))
	pool := b.NewPool(1, Persistent)
	const n = 64
	keys := testKeys(pool, n)
	sts := make([]Status, n)
	b.PutBatch(keys, nil, sts)
	b.GetRun(keys, sts)
	b.PutBatch(keys, nil, sts)
	if allocs := testing.AllocsPerRun(100, func() {
		b.PutBatch(keys, nil, sts) // duplicate puts
		if b.GetRun(keys, sts) != n {
			t.Fatal("run stopped early")
		}
	}); allocs != 0 {
		t.Errorf("warm batch cycle = %v allocs/op, want 0", allocs)
	}
}
