package tmem

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"smartmem/internal/mem"
)

// twoNodes wires a small local backend to a larger peer through a
// loopback-transported remote tier, the tier-stack topology the cluster
// runtime assembles.
func twoNodes(localPages, peerPages mem.Pages) (local, peer *Backend) {
	local = NewBackend(localPages, NewMetaStore(testPage))
	peer = NewBackend(peerPages, NewMetaStore(testPage))
	local.AttachTier(NewRemoteTier("peer", NewLoopback(peer), 1000))
	return local, peer
}

func TestRemoteTierAbsorbsFrameOverflow(t *testing.T) {
	local, peer := twoNodes(4, 100)
	pool := local.NewPool(1, Persistent)

	// 10 persistent puts against 4 local frames: the overflow must land on
	// the peer instead of failing (the guest would otherwise swap to disk).
	for i := 0; i < 10; i++ {
		if st := local.Put(Key{Pool: pool, Object: 1, Index: PageIndex(i)}, nil); st != STmem {
			t.Fatalf("Put %d = %v, want S_TMEM via remote tier", i, st)
		}
	}
	if got := local.UsedBy(1); got != 4 {
		t.Errorf("local used = %d, want 4", got)
	}
	if got := peer.UsedBy(1000); got != 6 {
		t.Errorf("peer remote-guest used = %d, want 6", got)
	}
	st := local.Tiers()[0].Stats()
	if st.Puts != 6 || st.PutsOK != 6 {
		t.Errorf("tier stats = %+v, want 6 puts, 6 ok", st)
	}

	// Every page must be retrievable, wherever it sits.
	for i := 0; i < 10; i++ {
		key := Key{Pool: pool, Object: 1, Index: PageIndex(i)}
		if !local.Contains(key) {
			t.Errorf("Contains(%v) = false", key)
		}
		if st := local.Get(key, nil); st != STmem {
			t.Errorf("Get %d = %v", i, st)
		}
	}
	c, _ := local.Counts(1)
	if c.GetsHit != 10 {
		t.Errorf("gets_hit = %d, want 10 (remote hits count)", c.GetsHit)
	}

	// Flushes reach the tier that holds the page.
	for i := 0; i < 10; i++ {
		if st := local.FlushPage(Key{Pool: pool, Object: 1, Index: PageIndex(i)}); st != STmem {
			t.Errorf("FlushPage %d = %v", i, st)
		}
	}
	if peer.UsedBy(1000) != 0 || local.UsedBy(1) != 0 {
		t.Errorf("after flush: local=%d peer=%d, want 0/0", local.UsedBy(1), peer.UsedBy(1000))
	}
	for _, b := range []*Backend{local, peer} {
		if err := b.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

func TestRemoteTierAbsorbsTargetOverflow(t *testing.T) {
	local, peer := twoNodes(64, 64)
	pool := local.NewPool(1, Persistent)
	local.SetTarget(1, 2)

	for i := 0; i < 5; i++ {
		if st := local.Put(Key{Pool: pool, Object: 0, Index: PageIndex(i)}, nil); st != STmem {
			t.Fatalf("Put %d = %v", i, st)
		}
	}
	if local.UsedBy(1) != 2 {
		t.Errorf("local used = %d, want target-capped 2", local.UsedBy(1))
	}
	if peer.UsedBy(1000) != 3 {
		t.Errorf("peer used = %d, want 3", peer.UsedBy(1000))
	}
	// Local failures stay visible to policies: puts_succ counts only the
	// locally-absorbed puts (the overflow pressure drives Algorithm 4).
	ms := local.Sample(1)
	v, _ := ms.Find(1)
	if v.PutsTotal != 5 || v.PutsSucc != 2 {
		t.Errorf("sample = total %d / succ %d, want 5/2", v.PutsTotal, v.PutsSucc)
	}
}

func TestRemoteTierEphemeralGetIsDestructive(t *testing.T) {
	local, peer := twoNodes(1, 64)
	pool := local.NewPool(1, Ephemeral)

	// Fill the single local frame, then overflow one ephemeral page.
	// The local put path evicts the resident ephemeral page first (Xen
	// sacrifices ephemeral pages before failing), so force overflow with a
	// persistent page occupying the frame.
	ppool := local.NewPool(1, Persistent)
	if st := local.Put(Key{Pool: ppool, Object: 0, Index: 0}, nil); st != STmem {
		t.Fatal(st)
	}
	key := Key{Pool: pool, Object: 7, Index: 1}
	if st := local.Put(key, nil); st != STmem {
		t.Fatalf("overflow put = %v", st)
	}
	if peer.UsedBy(1000) != 1 {
		t.Fatalf("peer used = %d, want 1", peer.UsedBy(1000))
	}
	if st := local.Get(key, nil); st != STmem {
		t.Fatalf("remote ephemeral get = %v", st)
	}
	// Destructive: the copy is gone from the peer and from the tracking.
	if st := local.Get(key, nil); st != ETmem {
		t.Errorf("second get = %v, want E_TMEM", st)
	}
	if peer.UsedBy(1000) != 0 {
		t.Errorf("peer used after destructive get = %d", peer.UsedBy(1000))
	}
	if err := local.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRemoteTierPeerEvictionIsAMiss(t *testing.T) {
	// The peer may evict ephemeral remote pages under its own pressure; the
	// local node must treat that as a miss and drop its tracking.
	local, peer := twoNodes(1, 2)
	epool := local.NewPool(1, Ephemeral)
	ppool := local.NewPool(1, Persistent)
	if st := local.Put(Key{Pool: ppool, Object: 0, Index: 0}, nil); st != STmem {
		t.Fatal(st)
	}
	key := Key{Pool: epool, Object: 1, Index: 1}
	if st := local.Put(key, nil); st != STmem {
		t.Fatalf("overflow put = %v", st)
	}
	// Exhaust the peer so it evicts the remote ephemeral page.
	peerPool := peer.NewPool(1, Persistent)
	for i := 0; i < 2; i++ {
		peer.Put(Key{Pool: peerPool, Object: 0, Index: PageIndex(i)}, nil)
	}
	if st := local.Get(key, nil); st != ETmem {
		t.Errorf("get after peer eviction = %v, want E_TMEM", st)
	}
	if err := local.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRemoteTierLocalPutSupersedesStaleCopy(t *testing.T) {
	local, peer := twoNodes(1, 64)
	pool := local.NewPool(1, Persistent)

	k0 := Key{Pool: pool, Object: 0, Index: 0}
	k1 := Key{Pool: pool, Object: 0, Index: 1}
	if st := local.Put(k0, nil); st != STmem { // fills the only local frame
		t.Fatal(st)
	}
	if st := local.Put(k1, nil); st != STmem { // overflows to the peer
		t.Fatal(st)
	}
	// Free the local frame, then re-put k1: it must land locally and the
	// stale peer copy must be dropped so it can never shadow new contents.
	if st := local.FlushPage(k0); st != STmem {
		t.Fatal(st)
	}
	if st := local.Put(k1, nil); st != STmem {
		t.Fatalf("re-put = %v", st)
	}
	if local.UsedBy(1) != 1 {
		t.Errorf("local used = %d, want 1", local.UsedBy(1))
	}
	if peer.UsedBy(1000) != 0 {
		t.Errorf("peer still holds stale copy: used = %d", peer.UsedBy(1000))
	}
	if err := local.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFlushObjectSpansTiers(t *testing.T) {
	local, peer := twoNodes(3, 64)
	pool := local.NewPool(1, Persistent)
	for i := 0; i < 8; i++ {
		if st := local.Put(Key{Pool: pool, Object: 42, Index: PageIndex(i)}, nil); st != STmem {
			t.Fatal(st)
		}
	}
	n, st := local.FlushObject(pool, 42)
	if st != STmem || n != 8 {
		t.Errorf("FlushObject = (%d, %v), want (8, S_TMEM)", n, st)
	}
	if peer.UsedBy(1000) != 0 {
		t.Errorf("peer used after object flush = %d", peer.UsedBy(1000))
	}
	c, _ := local.Counts(1)
	if c.Flushes != 8 {
		t.Errorf("flushes = %d, want 8", c.Flushes)
	}
}

func TestUnregisterVMDropsRemotePages(t *testing.T) {
	local, peer := twoNodes(2, 64)
	pool := local.NewPool(1, Persistent)
	for i := 0; i < 6; i++ {
		local.Put(Key{Pool: pool, Object: 0, Index: PageIndex(i)}, nil)
	}
	if peer.UsedBy(1000) == 0 {
		t.Fatal("expected overflow before unregister")
	}
	local.UnregisterVM(1)
	if got := peer.UsedBy(1000); got != 0 {
		t.Errorf("peer used after VM shutdown = %d, want 0", got)
	}
	for _, b := range []*Backend{local, peer} {
		if err := b.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

// brokenService fails every call after an optional number of successes.
type brokenService struct {
	okPuts int
	calls  int
}

func (s *brokenService) NewPool(VMID, PoolKind) (PoolID, error) { return 7, nil }
func (s *brokenService) Put(Key, []byte) (Status, error) {
	s.calls++
	if s.calls <= s.okPuts {
		return STmem, nil
	}
	return EInval, errors.New("wire torn")
}
func (s *brokenService) Get(Key) (Status, []byte, error) { return EInval, nil, errors.New("wire torn") }
func (s *brokenService) FlushPage(Key) (Status, error)   { return EInval, errors.New("wire torn") }
func (s *brokenService) FlushObject(PoolID, ObjectID) (Status, error) {
	return EInval, errors.New("wire torn")
}
func (s *brokenService) DestroyPool(PoolID) (Status, error) { return EInval, errors.New("wire torn") }

func TestRemoteTierTransportErrorDegradesToDisk(t *testing.T) {
	local := NewBackend(1, NewMetaStore(testPage))
	svc := &brokenService{okPuts: 1}
	tier := NewRemoteTier("flaky", svc, 1000)
	local.AttachTier(tier)
	pool := local.NewPool(1, Persistent)

	if st := local.Put(Key{Pool: pool, Object: 0, Index: 0}, nil); st != STmem {
		t.Fatal(st)
	}
	// First overflow succeeds, second hits the torn wire: the put must
	// degrade to E_TMEM (guest swaps to disk) without wedging anything.
	if st := local.Put(Key{Pool: pool, Object: 0, Index: 1}, nil); st != STmem {
		t.Fatalf("first overflow = %v", st)
	}
	if st := local.Put(Key{Pool: pool, Object: 0, Index: 2}, nil); st != ETmem {
		t.Errorf("put over torn wire = %v, want E_TMEM", st)
	}
	ts := tier.Stats()
	if ts.Errors != 1 {
		t.Errorf("tier errors = %d, want 1", ts.Errors)
	}
	// The tier is down: further overflow is refused locally, without
	// touching the service again.
	calls := svc.calls
	if st := local.Put(Key{Pool: pool, Object: 0, Index: 3}, nil); st != ETmem {
		t.Errorf("put on downed tier = %v", st)
	}
	if svc.calls != calls {
		t.Errorf("downed tier still called the transport (%d -> %d)", calls, svc.calls)
	}
}

// TestRemoteTierConcurrent hammers a striped local store whose overflow
// lands on a striped peer from many goroutines; run with -race. It checks
// that the tier path keeps all invariants intact under concurrency.
func TestRemoteTierConcurrent(t *testing.T) {
	local := newShardedBackend(128, 8)
	peer := newShardedBackend(1024, 8)
	local.AttachTier(NewRemoteTier("peer", NewLoopback(peer), 1000))

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		pool := local.NewPool(VMID(w), Persistent)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := Key{Pool: pool, Object: ObjectID(i % 5), Index: PageIndex(i)}
				local.Put(key, fill(byte(i)))
				local.Get(key, nil)
				if i%3 == 0 {
					local.FlushPage(key)
				}
			}
			local.FlushObject(pool, 0)
		}()
	}
	wg.Wait()
	for _, b := range []*Backend{local, peer} {
		if err := b.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

// benchTierOps runs the put/get/flush mix against an over-committed local
// store; with a remote tier the overflow is absorbed by the peer (puts keep
// succeeding, i.e. the guest's disk-swap fallback is never taken), without
// it the same puts fail.
func benchTierOps(b *testing.B, withTier bool) {
	shards := runtime.GOMAXPROCS(0)
	local := NewBackendOpts(1024, Options{
		Shards:   shards,
		NewStore: func() PageStore { return NewMetaStore(testPage) },
	})
	if withTier {
		peer := NewBackendOpts(1<<20, Options{
			Shards:   shards,
			NewStore: func() PageStore { return NewMetaStore(testPage) },
		})
		local.AttachTier(NewRemoteTier("peer", NewLoopback(peer), 1000))
	}
	var pools []PoolID
	for w := 0; w < 16; w++ {
		pools = append(pools, local.NewPool(VMID(w), Persistent))
	}
	var widx uint64
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		pool := pools[int(widx)%len(pools)]
		widx++
		mu.Unlock()
		i := 0
		for pb.Next() {
			key := Key{Pool: pool, Object: ObjectID(i >> 12), Index: PageIndex(i)}
			local.Put(key, nil)
			if i%4 == 0 {
				local.Get(key, nil)
			}
			i++
		}
	})
}

// BenchmarkRemoteTier compares the over-committed store with and without a
// loopback-transported remote tier. The "remote" variant's puts succeed
// (absorbed by the peer) instead of failing to the disk-swap path, and the
// remote path adds no lock contention to the local striped store — compare
// against BenchmarkBackendParallel for the uncontended local hot path.
func BenchmarkRemoteTier(b *testing.B) {
	b.Run("local-only", func(b *testing.B) { benchTierOps(b, false) })
	b.Run("remote", func(b *testing.B) { benchTierOps(b, true) })
	// Batched variants ship overflow in runs; round-trips/op reports the
	// transport amortization (<= 1/run-length for overflow-dominated load,
	// vs ~1 for the per-page protocol above).
	b.Run("remote-batch-4", func(b *testing.B) { benchTierBatch(b, 4) })
	b.Run("remote-batch-16", func(b *testing.B) { benchTierBatch(b, 16) })
}

// TestBenchmarkTopologySane pins what BenchmarkRemoteTier claims: on the
// over-committed topology, puts that fail locally succeed remotely.
func TestBenchmarkTopologySane(t *testing.T) {
	local, peer := twoNodes(8, 1024)
	pool := local.NewPool(1, Persistent)
	okLocal, okRemote := 0, 0
	for i := 0; i < 64; i++ {
		st := local.Put(Key{Pool: pool, Object: 0, Index: PageIndex(i)}, nil)
		if st != STmem {
			t.Fatalf("put %d = %v — the disk-swap fallback would trigger", i, st)
		}
		if mem.Pages(i) < 8 {
			okLocal++
		} else {
			okRemote++
		}
	}
	if got := peer.UsedBy(1000); got != mem.Pages(okRemote) {
		t.Errorf("peer absorbed %d pages, want %d", got, okRemote)
	}
	_ = fmt.Sprintf("%d/%d", okLocal, okRemote)
}

// FlushObject's pages-freed count must reflect what the tiers actually
// held: pages the peer already evicted must not be credited.
func TestFlushObjectCountExactAfterPeerEviction(t *testing.T) {
	local, peer := twoNodes(1, 3)
	epool := local.NewPool(1, Ephemeral)
	ppool := local.NewPool(1, Persistent)
	if st := local.Put(Key{Pool: ppool, Object: 0, Index: 0}, nil); st != STmem {
		t.Fatal(st)
	}
	// Three ephemeral overflow pages of one object land on the peer.
	for i := 1; i <= 3; i++ {
		if st := local.Put(Key{Pool: epool, Object: 5, Index: PageIndex(i)}, nil); st != STmem {
			t.Fatalf("overflow put %d = %v", i, st)
		}
	}
	// The peer's own pressure evicts two of them.
	peerPool := peer.NewPool(1, Persistent)
	for i := 0; i < 2; i++ {
		if st := peer.Put(Key{Pool: peerPool, Object: 0, Index: PageIndex(i)}, nil); st != STmem {
			t.Fatalf("peer put %d = %v", i, st)
		}
	}
	n, st := local.FlushObject(epool, 5)
	if st != STmem || n != 1 {
		t.Errorf("FlushObject = (%d, %v), want (1, S_TMEM): only one page was still held", n, st)
	}
	c, _ := local.Counts(1)
	if c.Flushes != 1 {
		t.Errorf("cumul flushes = %d, want 1", c.Flushes)
	}
	if err := local.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// tripCountingSvc wraps Loopback with an atomic transport round-trip
// counter (benchmarks run parallel goroutines).
type tripCountingSvc struct {
	inner *Loopback
	trips atomic.Uint64
}

func (c *tripCountingSvc) NewPool(vm VMID, kind PoolKind) (PoolID, error) {
	c.trips.Add(1)
	return c.inner.NewPool(vm, kind)
}
func (c *tripCountingSvc) Put(key Key, data []byte) (Status, error) {
	c.trips.Add(1)
	return c.inner.Put(key, data)
}
func (c *tripCountingSvc) Get(key Key) (Status, []byte, error) {
	c.trips.Add(1)
	return c.inner.Get(key)
}
func (c *tripCountingSvc) FlushPage(key Key) (Status, error) {
	c.trips.Add(1)
	return c.inner.FlushPage(key)
}
func (c *tripCountingSvc) FlushObject(pool PoolID, object ObjectID) (Status, error) {
	c.trips.Add(1)
	return c.inner.FlushObject(pool, object)
}
func (c *tripCountingSvc) DestroyPool(pool PoolID) (Status, error) {
	c.trips.Add(1)
	return c.inner.DestroyPool(pool)
}
func (c *tripCountingSvc) PutBatch(keys []Key, datas [][]byte, sts []Status) error {
	c.trips.Add(1)
	return c.inner.PutBatch(keys, datas, sts)
}
func (c *tripCountingSvc) GetBatch(keys []Key, dsts [][]byte, sts []Status) error {
	c.trips.Add(1)
	return c.inner.GetBatch(keys, dsts, sts)
}

// benchTierBatch drives the same over-committed topology as benchTierOps
// but issues the puts in runs through PutBatch. With run length >= 4 the
// transport round trips drop to <= 1/4 of the per-page op count (the
// store-level amortization the batch frames exist for); the bench reports
// the measured ratio.
func benchTierBatch(b *testing.B, runLen int) {
	shards := runtime.GOMAXPROCS(0)
	local := NewBackendOpts(1024, Options{
		Shards:   shards,
		NewStore: func() PageStore { return NewMetaStore(testPage) },
	})
	peer := NewBackendOpts(1<<20, Options{
		Shards:   shards,
		NewStore: func() PageStore { return NewMetaStore(testPage) },
	})
	svc := &tripCountingSvc{inner: NewLoopback(peer)}
	local.AttachTier(NewRemoteTier("peer", svc, 1000))
	var pools []PoolID
	for w := 0; w < 16; w++ {
		pools = append(pools, local.NewPool(VMID(w), Persistent))
	}
	var widx uint64
	var mu sync.Mutex
	var ops atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		pool := pools[int(widx)%len(pools)]
		widx++
		mu.Unlock()
		keys := make([]Key, runLen)
		sts := make([]Status, runLen)
		i := 0
		for pb.Next() {
			for j := range keys {
				keys[j] = Key{Pool: pool, Object: ObjectID(i >> 12), Index: PageIndex(i)}
				i++
			}
			local.PutBatch(keys, nil, sts)
			ops.Add(uint64(runLen))
			if i%4 == 0 {
				local.GetBatch(keys, nil, sts)
				ops.Add(uint64(runLen))
			}
		}
	})
	b.StopTimer()
	if n := ops.Load(); n > 0 {
		b.ReportMetric(float64(svc.trips.Load())/float64(n), "round-trips/op")
	}
}

// TestBatchTripRatio pins the BenchmarkRemoteTier claim outside the bench
// harness: shipping overflow in runs of >= 4 pays <= 1/4 the transport
// round trips of the per-page protocol.
func TestBatchTripRatio(t *testing.T) {
	local := NewBackend(16, NewMetaStore(testPage))
	peer := NewBackend(1<<16, NewMetaStore(testPage))
	svc := &tripCountingSvc{inner: NewLoopback(peer)}
	local.AttachTier(NewRemoteTier("peer", svc, 1000))
	pool := local.NewPool(1, Persistent)

	const runLen, runs = 8, 64
	keys := make([]Key, runLen)
	sts := make([]Status, runLen)
	ops := 0
	for r := 0; r < runs; r++ {
		for j := range keys {
			keys[j] = Key{Pool: pool, Object: 9, Index: PageIndex(r*runLen + j)}
		}
		local.PutBatch(keys, nil, sts)
		ops += runLen
	}
	// Everything past the 16 local frames overflowed; each batch cost at
	// most one transport trip (plus the one-time pool creation).
	overflowOps := ops - 16
	trips := int(svc.trips.Load())
	if trips > overflowOps/4 {
		t.Errorf("batch transport trips = %d for %d overflow ops, want <= 1/4 (per-page would pay %d)",
			trips, overflowOps, overflowOps)
	}
}
