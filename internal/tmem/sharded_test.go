package tmem

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"smartmem/internal/mem"
)

func newShardedBackend(pages mem.Pages, shards int) *Backend {
	return NewBackendOpts(pages, Options{
		Shards:   shards,
		NewStore: func() PageStore { return NewDataStore(testPage) },
	})
}

func TestShardNormalization(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {1000, 256},
	} {
		b := newShardedBackend(64, tc.in)
		if b.Shards() != tc.want {
			t.Errorf("Shards=%d normalized to %d, want %d", tc.in, b.Shards(), tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("nil NewStore did not panic")
		}
	}()
	NewBackendOpts(64, Options{Shards: 4})
}

// The semantics tests of backend_test.go must hold identically on a
// many-shard store: run a representative operation mix on 8 shards and
// cross-check every invariant.
func TestShardedSemanticsMatchSingleShard(t *testing.T) {
	b := newShardedBackend(256, 8)
	pool := b.NewPool(1, Persistent)
	dst := make([]byte, testPage)
	for i := 0; i < 200; i++ {
		key := Key{Pool: pool, Object: ObjectID(i % 7), Index: PageIndex(i)}
		if st := b.Put(key, fill(byte(i))); st != STmem {
			t.Fatalf("Put %d = %v", i, st)
		}
		if st := b.Get(key, dst); st != STmem || dst[0] != byte(i) {
			t.Fatalf("Get %d = %v (dst[0]=%#x)", i, st, dst[0])
		}
	}
	if b.UsedBy(1) != 200 || b.FreePages() != 56 {
		t.Errorf("used=%d free=%d, want 200/56", b.UsedBy(1), b.FreePages())
	}
	if n, st := b.FlushObject(pool, 0); st != STmem || n == 0 {
		t.Errorf("FlushObject = (%d, %v)", n, st)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
	b.UnregisterVM(1)
	if b.FreePages() != 256 {
		t.Errorf("free after unregister = %d, want 256", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Capacity is a node-global pool even though frames are striped: a single
// hot shard can consume every frame by stealing from sibling stripes.
func TestShardedCapacityIsGlobal(t *testing.T) {
	b := newShardedBackend(64, 8)
	pool := b.NewPool(1, Persistent)
	ok := 0
	for i := 0; i < 80; i++ {
		if b.Put(Key{Pool: pool, Object: 1, Index: PageIndex(i)}, nil) == STmem {
			ok++
		}
	}
	if ok != 64 {
		t.Errorf("puts succeeded = %d, want 64 (global capacity)", ok)
	}
	if b.FreePages() != 0 {
		t.Errorf("free = %d, want 0", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Eviction picks the node-wide oldest ephemeral page even when the victim
// lives in a different shard than the put that needs the frame.
func TestShardedEvictionIsCrossShard(t *testing.T) {
	b := newShardedBackend(32, 4)
	eph := b.NewPool(1, Ephemeral)
	per := b.NewPool(2, Persistent)
	first := Key{Pool: eph, Object: 1, Index: 0}
	for i := 0; i < 32; i++ {
		if st := b.Put(Key{Pool: eph, Object: 1, Index: PageIndex(i)}, nil); st != STmem {
			t.Fatalf("eph Put %d = %v", i, st)
		}
	}
	// Node full: a persistent put must evict the globally oldest page.
	if st := b.Put(Key{Pool: per, Object: 1, Index: 0}, nil); st != STmem {
		t.Fatalf("persistent Put on full node = %v, want S_TMEM via eviction", st)
	}
	if b.Contains(first) {
		t.Error("oldest ephemeral page (stamp order) not the eviction victim")
	}
	c, _ := b.Counts(1)
	if c.EphEvicted != 1 {
		t.Errorf("EphEvicted = %d, want 1", c.EphEvicted)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Algorithm 1's target check must stay strict under concurrency: puts on
// different shards reserve against one atomic account, so a VM can never
// jointly overshoot its mm_target.
func TestShardedTargetEnforcedAcrossShards(t *testing.T) {
	const target = 10
	b := newShardedBackend(1024, 8)
	pool := b.NewPool(1, Persistent)
	b.SetTarget(1, target)
	var wg sync.WaitGroup
	var succ int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ok := 0
			for i := 0; i < 100; i++ {
				key := Key{Pool: pool, Object: ObjectID(w), Index: PageIndex(i)}
				if b.Put(key, nil) == STmem {
					ok++
				}
			}
			mu.Lock()
			succ += int64(ok)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if succ != target {
		t.Errorf("puts succeeded = %d, want exactly %d (strict target)", succ, target)
	}
	if used := b.UsedBy(1); used != target {
		t.Errorf("UsedBy = %d, want %d", used, target)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Hammer one sharded backend from many goroutines mixing every operation,
// then verify the accounting survived. Run with -race in CI.
func TestShardedConcurrentOps(t *testing.T) {
	b := newShardedBackend(512, 8)
	const workers = 8
	pools := make([]PoolID, workers)
	for i := range pools {
		kind := Persistent
		if i%2 == 1 {
			kind = Ephemeral
		}
		pools[i] = b.NewPool(VMID(i+1), kind)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := pools[w]
			dst := make([]byte, testPage)
			for i := 0; i < 400; i++ {
				key := Key{Pool: pool, Object: ObjectID(i % 5), Index: PageIndex(i % 97)}
				switch i % 7 {
				case 0, 1, 2:
					b.Put(key, fill(byte(i)))
				case 3, 4:
					b.Get(key, dst)
				case 5:
					b.FlushPage(key)
				case 6:
					b.FlushObject(key.Pool, key.Object)
				}
			}
		}(w)
	}
	// Concurrent control-plane traffic: sampling, targets, registration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.Sample(uint64(i + 1))
			b.SetTarget(VMID(i%workers+1), mem.Pages(50+i))
			b.VMs()
			b.Footprint()
		}
	}()
	wg.Wait()
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Pools can be created and destroyed while other goroutines run the data
// path against them; destroyed pools must leak nothing.
func TestShardedConcurrentPoolLifecycle(t *testing.T) {
	b := newShardedBackend(256, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pool := b.NewPool(VMID(w+1), Persistent)
				for j := 0; j < 20; j++ {
					b.Put(Key{Pool: pool, Object: 1, Index: PageIndex(j)}, nil)
				}
				if err := b.DestroyPool(pool); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if b.FreePages() != 256 {
		t.Errorf("free = %d, want 256 (destroyed pools must release everything)", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// benchBackend builds a store sized so the put/get/flush cycle never hits
// capacity, isolating lock contention.
func benchParallelOps(b *testing.B, shards int) {
	be := NewBackendOpts(1<<20, Options{
		Shards:   shards,
		NewStore: func() PageStore { return NewMetaStore(testPage) },
	})
	pool := be.NewPool(1, Persistent)
	var worker uint64
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		worker++
		base := ObjectID(worker) << 32
		mu.Unlock()
		i := uint64(0)
		for pb.Next() {
			i++
			key := Key{Pool: pool, Object: base | ObjectID(i>>14), Index: PageIndex(i)}
			be.Put(key, nil)
			be.Get(key, nil)
			be.FlushPage(key)
		}
	})
}

// BenchmarkBackendParallel measures put/get/flush throughput under
// concurrency. shards-1 is the single-mutex baseline the monolithic store
// had; shards-N is the striped hot path. Run with -cpu 8 to reproduce the
// scaling target (>= 3x over shards-1 at 8 goroutines).
func BenchmarkBackendParallel(b *testing.B) {
	counts := []int{1, 8}
	if n := runtime.GOMAXPROCS(0); n > 8 {
		counts = append(counts, n)
	}
	for _, n := range counts {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) { benchParallelOps(b, n) })
	}
}
