package tmem

// This file implements the batched page operations of the store hot path
// (DESIGN.md §9): instead of paying one stripe-lock round trip per page, a
// caller with a run of keys hands the whole run to the backend, which
// acquires each stripe lock once per run of same-stripe keys and walks the
// tier stack with whole sub-runs. Three surfaces, by caller:
//
//   - GetRun/FlushRun: issue-order runs with lazy lock batching, used by
//     the guest kernel's batched PFRA spine. Order is preserved exactly, so
//     a single-shard (simulator) backend observes the identical operation
//     sequence a per-page loop would produce — goldens stay byte-identical.
//   - PutBatch/GetBatch: shard-grouped batches with full tier semantics,
//     used by the kvstore daemon's OpPutBatch/OpGetBatch frames. Within a
//     stripe, issue order is preserved; across stripes, order is
//     unspecified (as for any concurrent callers).
//   - PutBatchLocal/GetBatchLocal: the tier-0 restriction of the above,
//     the surface Loopback serves to remote peers (see PutLocal).
//
// The locked fast paths reuse tryPutLocked/getHitLocked, so batch and
// per-page operations can never drift apart semantically. Lock ordering is
// preserved: pool resolution (poolMu) always happens before a stripe lock
// is taken, and tier calls always happen after it is released.

// batchScratch carries the per-call working state of PutBatch/GetBatch so
// a warm backend serves batches without allocating.
type batchScratch struct {
	pools    []*Pool
	groups   [][]int32
	slow     []int32
	sup      []int32
	offer    []int32
	ft       []int16
	subIdx   []int32
	subKeys  []Key
	subKinds []PoolKind
	subDatas [][]byte
	subSts   []Status
}

func (b *Backend) getScratch(n int) *batchScratch {
	sc := b.batchPool.Get().(*batchScratch)
	if cap(sc.pools) < n {
		sc.pools = make([]*Pool, n)
		sc.ft = make([]int16, n)
	}
	sc.pools = sc.pools[:n]
	sc.ft = sc.ft[:n]
	if sc.groups == nil {
		sc.groups = make([][]int32, len(b.shards))
	}
	return sc
}

func (b *Backend) putScratch(sc *batchScratch) {
	clear(sc.pools) // do not retain pool references across calls
	clear(sc.subDatas)
	sc.slow, sc.sup, sc.offer = sc.slow[:0], sc.sup[:0], sc.offer[:0]
	sc.subIdx, sc.subKeys = sc.subIdx[:0], sc.subKeys[:0]
	sc.subKinds, sc.subDatas, sc.subSts = sc.subKinds[:0], sc.subDatas[:0], sc.subSts[:0]
	for i := range sc.groups {
		sc.groups[i] = sc.groups[i][:0]
	}
	b.batchPool.Put(sc)
}

// resolvePools fills sc.pools for keys, caching the poolMu lookup across
// runs of same-pool keys (the common case: a run belongs to one pool).
func (b *Backend) resolvePools(sc *batchScratch, keys []Key) {
	last := InvalidPool
	var lastP *Pool
	for i, k := range keys {
		if i == 0 || k.Pool != last {
			last = k.Pool
			lastP = b.pool(last)
		}
		sc.pools[i] = lastP
	}
}

// checkBatch validates the parallel batch slices.
func checkBatch(keys []Key, datas [][]byte, sts []Status) {
	if len(sts) != len(keys) {
		panic("tmem: batch status slice length mismatch")
	}
	if datas != nil && len(datas) != len(keys) {
		panic("tmem: batch data slice length mismatch")
	}
}

// --- issue-order runs (the guest spine) ---

// GetRun performs Get for each key in issue order, stopping after the
// first non-hit, and returns the number of keys processed (statuses
// written). Consecutive keys on the same stripe share one lock
// acquisition; on a single-shard backend an entire run costs one lock
// round trip. dst buffers are not taken: GetRun serves the simulator's
// presence-only path (the guest models page contents as irrelevant).
func (b *Backend) GetRun(keys []Key, sts []Status) int {
	b.enter()
	checkBatch(keys, nil, sts)
	var cur *shard
	unlock := func() {
		if cur != nil {
			cur.mu.Unlock()
			cur = nil
		}
	}
	defer unlock()
	last := InvalidPool
	var p *Pool
	for i, key := range keys {
		if i == 0 || key.Pool != last {
			unlock() // pool resolution must not run under a stripe lock
			last = key.Pool
			p = b.pool(last)
		}
		if p == nil {
			sts[i] = EInval
			return i + 1
		}
		a := p.acct
		a.cumulGetsTotal.Add(1)
		sh := b.shardFor(key)
		if cur != sh {
			unlock()
			sh.mu.Lock()
			cur = sh
		}
		if e := sh.lookup(key); e != nil {
			st := b.getHitLocked(sh, p, a, e, nil)
			sts[i] = st
			if st != STmem {
				return i + 1
			}
			continue
		}
		ti := -1
		if len(b.tiers) > 0 {
			ti = sh.remoteOf(key)
		}
		unlock()
		if ti < 0 {
			sts[i] = ETmem
			return i + 1
		}
		if b.tiers[ti].Get(key, nil) == STmem {
			a.cumulGetsHit.Add(1)
			if p.kind == Ephemeral {
				sh.dropRemote(key)
			}
			sts[i] = STmem
			continue
		}
		sh.dropRemote(key)
		sts[i] = ETmem
		return i + 1
	}
	return len(keys)
}

// FlushRun performs FlushPage for each key in issue order with the same
// lazy lock batching as GetRun (no early stop: flushing an absent page is
// harmless).
func (b *Backend) FlushRun(keys []Key, sts []Status) {
	b.enter()
	checkBatch(keys, nil, sts)
	var cur *shard
	unlock := func() {
		if cur != nil {
			cur.mu.Unlock()
			cur = nil
		}
	}
	defer unlock()
	last := InvalidPool
	var p *Pool
	for i, key := range keys {
		if i == 0 || key.Pool != last {
			unlock()
			last = key.Pool
			p = b.pool(last)
		}
		if p == nil {
			sts[i] = EInval
			continue
		}
		sh := b.shardFor(key)
		if cur != sh {
			unlock()
			sh.mu.Lock()
			cur = sh
		}
		if e := sh.lookup(key); e != nil {
			sh.removeEntry(e)
			b.dropEntry(sh, e)
			sh.freeEntry(e)
			p.acct.cumulFlushes.Add(1)
			sts[i] = STmem
			continue
		}
		ti := -1
		if len(b.tiers) > 0 {
			ti = sh.takeRemote(key)
		}
		unlock()
		if ti >= 0 && b.tiers[ti].FlushPage(key) == STmem {
			p.acct.cumulFlushes.Add(1)
			sts[i] = STmem
			continue
		}
		sts[i] = ETmem
	}
}

// --- shard-grouped batches (the wire path) ---

// PutBatch performs Put for every key, grouping keys by stripe so each
// stripe lock is acquired once per batch rather than once per page, and
// offering locally rejected pages to the tier stack in whole runs (one
// remote round trip per tier, see RemoteTier.PutBatch). datas may be nil
// (all zero pages) or hold one payload per key; sts receives one status
// per key.
func (b *Backend) PutBatch(keys []Key, datas [][]byte, sts []Status) {
	b.enter()
	b.putBatch(keys, datas, sts, true)
}

// PutBatchLocal is PutBatch restricted to tier 0 (the Loopback surface; an
// overflow batch accepted on behalf of a peer never cascades further).
func (b *Backend) PutBatchLocal(keys []Key, datas [][]byte, sts []Status) {
	b.putBatch(keys, datas, sts, false)
}

func (b *Backend) putBatch(keys []Key, datas [][]byte, sts []Status, withTiers bool) {
	checkBatch(keys, datas, sts)
	if len(keys) == 0 {
		return
	}
	data := func(i int32) []byte {
		if datas == nil {
			return nil
		}
		return datas[i]
	}
	sc := b.getScratch(len(keys))
	defer b.putScratch(sc)
	b.resolvePools(sc, keys)
	withTiers = withTiers && len(b.tiers) > 0

	// Phase A: local attempts, one stripe lock per group. Keys that need
	// the eviction loop (slow), a supersede flush (sup) or a tier offer
	// (offer) are deferred past the locked region.
	process := func(sh *shard, idxs []int32) {
		sh.mu.Lock()
		for _, i := range idxs {
			p := sc.pools[i]
			if p == nil {
				sts[i] = EInval
				continue
			}
			a := p.acct
			a.putsTotal.Add(1)
			a.cumulPutsTotal.Add(1)
			st, retry, ft := b.tryPutLocked(sh, p, a, keys[i], data(i))
			switch {
			case retry:
				sc.slow = append(sc.slow, i)
			case st == STmem && ft >= 0 && withTiers:
				sts[i] = STmem
				sc.ft[i] = int16(ft)
				sc.sup = append(sc.sup, i)
			case st == ETmem && withTiers:
				sc.offer = append(sc.offer, i)
			default:
				sts[i] = st
			}
		}
		sh.mu.Unlock()
	}
	if len(b.shards) == 1 {
		idxs := sc.groups[0][:0]
		for i := range keys {
			idxs = append(idxs, int32(i))
		}
		sc.groups[0] = idxs
		process(b.shards[0], idxs)
	} else {
		for i, k := range keys {
			si := k.hash() & b.shardMask
			sc.groups[si] = append(sc.groups[si], int32(i))
		}
		for si, g := range sc.groups {
			if len(g) > 0 {
				process(b.shards[si], g)
			}
		}
	}

	// Phase B: eviction-retry stragglers, per key (evictions take other
	// stripe locks, so they cannot run under the batch group lock).
	for _, i := range sc.slow {
		p := sc.pools[i]
		sh := b.shardFor(keys[i])
		st, ft := b.putRetry(sh, p, p.acct, keys[i], data(i))
		switch {
		case st == STmem && ft >= 0 && withTiers:
			sts[i] = STmem
			sc.ft[i] = int16(ft)
			sc.sup = append(sc.sup, i)
		case st == ETmem && withTiers:
			sc.offer = append(sc.offer, i)
		default:
			sts[i] = st
		}
	}

	// Supersede: a fresh local copy shadows a stale lower-tier one (see
	// Put for the concurrent re-track caveat).
	for _, i := range sc.sup {
		sh := b.shardFor(keys[i])
		if sh.remoteTier(keys[i]) < 0 {
			b.tiers[sc.ft[i]].FlushPage(keys[i])
		}
	}

	if !withTiers || len(sc.offer) == 0 {
		return
	}
	// Phase C: tier offers. Keys already tracked in a tier take the
	// per-key re-offer path; untracked keys walk the stack in one batch
	// per tier — the run the wire protocol ships in a single round trip.
	untracked := sc.subIdx[:0]
	for _, i := range sc.offer {
		sh := b.shardFor(keys[i])
		if sh.remoteTier(keys[i]) >= 0 {
			sts[i] = b.offerTiers(sc.pools[i], sh, keys[i], data(i))
		} else {
			untracked = append(untracked, i)
		}
	}
	sc.subIdx = untracked
	rem := untracked
	for tierIdx, t := range b.tiers {
		if len(rem) == 0 {
			break
		}
		accept := func(i int32, ok bool) bool {
			if !ok {
				return false
			}
			sh := b.shardFor(keys[i])
			if !sh.noteRemoteIfFree(keys[i], tierIdx) {
				t.FlushPage(keys[i])
			}
			sts[i] = STmem
			return true
		}
		var next []int32
		if bt, ok := t.(BatchTier); ok && len(rem) > 1 {
			sc.subKeys, sc.subKinds = sc.subKeys[:0], sc.subKinds[:0]
			sc.subDatas, sc.subSts = sc.subDatas[:0], sc.subSts[:0]
			for _, i := range rem {
				sc.subKeys = append(sc.subKeys, keys[i])
				sc.subKinds = append(sc.subKinds, sc.pools[i].kind)
				sc.subDatas = append(sc.subDatas, data(i))
				sc.subSts = append(sc.subSts, ETmem)
			}
			bt.PutBatch(sc.subKeys, sc.subKinds, sc.subDatas, sc.subSts)
			next = rem[:0]
			for j, i := range rem {
				if !accept(i, sc.subSts[j] == STmem) {
					next = append(next, i)
				}
			}
		} else {
			next = rem[:0]
			for _, i := range rem {
				st := t.Put(keys[i], sc.pools[i].kind, data(i))
				if !accept(i, st == STmem) {
					next = append(next, i)
				}
			}
		}
		rem = next
	}
	for _, i := range rem {
		sts[i] = ETmem // every tier rejected the page
	}
}

// GetBatch performs Get for every key with the same stripe grouping as
// PutBatch; local misses tracked in a lower tier are fetched from that
// tier in one batch (one remote round trip per tier). dsts may be nil
// (presence only) or hold one destination buffer per key.
func (b *Backend) GetBatch(keys []Key, dsts [][]byte, sts []Status) {
	b.enter()
	b.getBatch(keys, dsts, sts, true)
}

// GetBatchLocal is GetBatch restricted to tier 0 (the Loopback surface).
func (b *Backend) GetBatchLocal(keys []Key, dsts [][]byte, sts []Status) {
	b.getBatch(keys, dsts, sts, false)
}

func (b *Backend) getBatch(keys []Key, dsts [][]byte, sts []Status, withTiers bool) {
	checkBatch(keys, dsts, sts)
	if len(keys) == 0 {
		return
	}
	dst := func(i int32) []byte {
		if dsts == nil {
			return nil
		}
		return dsts[i]
	}
	sc := b.getScratch(len(keys))
	defer b.putScratch(sc)
	b.resolvePools(sc, keys)
	withTiers = withTiers && len(b.tiers) > 0

	// Phase A: local lookups, one stripe lock per group. Tier-tracked
	// misses are deferred (sc.offer) with their tier index in sc.ft.
	process := func(sh *shard, idxs []int32) {
		sh.mu.Lock()
		for _, i := range idxs {
			p := sc.pools[i]
			if p == nil {
				sts[i] = EInval
				continue
			}
			a := p.acct
			a.cumulGetsTotal.Add(1)
			if e := sh.lookup(keys[i]); e != nil {
				sts[i] = b.getHitLocked(sh, p, a, e, dst(i))
				continue
			}
			if withTiers {
				if ti := sh.remoteOf(keys[i]); ti >= 0 {
					sc.ft[i] = int16(ti)
					sc.offer = append(sc.offer, i)
					continue
				}
			}
			sts[i] = ETmem
		}
		sh.mu.Unlock()
	}
	if len(b.shards) == 1 {
		idxs := sc.groups[0][:0]
		for i := range keys {
			idxs = append(idxs, int32(i))
		}
		sc.groups[0] = idxs
		process(b.shards[0], idxs)
	} else {
		for i, k := range keys {
			si := k.hash() & b.shardMask
			sc.groups[si] = append(sc.groups[si], int32(i))
		}
		for si, g := range sc.groups {
			if len(g) > 0 {
				process(b.shards[si], g)
			}
		}
	}
	if len(sc.offer) == 0 {
		return
	}

	// Phase B: tier fetches, one batch per involved tier.
	finish := func(i int32, hit bool) {
		p := sc.pools[i]
		sh := b.shardFor(keys[i])
		if hit {
			p.acct.cumulGetsHit.Add(1)
			if p.kind == Ephemeral {
				sh.dropRemote(keys[i]) // lower-tier ephemeral gets are destructive
			}
			sts[i] = STmem
			return
		}
		sh.dropRemote(keys[i]) // the tier lost the page; stop tracking
		sts[i] = ETmem
	}
	for tierIdx, t := range b.tiers {
		sc.subIdx = sc.subIdx[:0]
		for _, i := range sc.offer {
			if int(sc.ft[i]) == tierIdx {
				sc.subIdx = append(sc.subIdx, i)
			}
		}
		if len(sc.subIdx) == 0 {
			continue
		}
		if bt, ok := t.(BatchTier); ok && len(sc.subIdx) > 1 {
			sc.subKeys, sc.subDatas, sc.subSts = sc.subKeys[:0], sc.subDatas[:0], sc.subSts[:0]
			for _, i := range sc.subIdx {
				sc.subKeys = append(sc.subKeys, keys[i])
				sc.subDatas = append(sc.subDatas, dst(i))
				sc.subSts = append(sc.subSts, ETmem)
			}
			bt.GetBatch(sc.subKeys, sc.subDatas, sc.subSts)
			for j, i := range sc.subIdx {
				finish(i, sc.subSts[j] == STmem)
			}
		} else {
			for _, i := range sc.subIdx {
				finish(i, t.Get(keys[i], dst(i)) == STmem)
			}
		}
	}
}
