package tmem

import (
	"fmt"
	"sync"

	"smartmem/internal/mem"
)

// This file holds the lock-striping machinery of the sharded backend: the
// shard (one stripe of the entry maps, page storage and ephemeral LRU) and
// the frameSource (one stripe of the physical frame space). Backend methods
// that coordinate across stripes live in backend.go.
//
// Lock ordering, outermost first:
//
//	poolMu -> shard.mu (ascending index when several) -> frameSource.mu -> vmMu
//
// The hot path (Put/Get/FlushPage) holds exactly one shard.mu and touches
// at most one frameSource.mu; no path ever holds two shard locks except
// CheckInvariants, which acquires them in index order.

// objKey addresses one object's page map within a shard. Entries of the
// same object scatter across shards (the shard hash covers the page
// index), so object-granular operations visit every shard.
type objKey struct {
	pool   PoolID
	object ObjectID
}

// shard is one lock stripe of the store: a partition of the entry maps,
// its own page store instance, one segment of the ephemeral eviction LRU,
// and one partition of the frame space.
type shard struct {
	mu      sync.Mutex
	store   PageStore
	objects map[objKey]map[PageIndex]*entry

	// remote tracks this stripe's keys whose live copy sits in a lower
	// tier of the backend's hierarchy (value = tier index). Guarded by mu
	// like the object maps, so the tier stack adds no new locks to the hot
	// path; nil until the first overflow, so tier-less backends pay nothing.
	remote map[objKey]map[PageIndex]int

	// Ephemeral LRU segment: lru.next is the shard's oldest entry. Entries
	// carry a stamp from the backend's global LRU clock so cross-shard
	// victim selection can find the node-wide oldest page.
	lru entry // sentinel

	// frames is the shard's partition of the node's frame space. Siblings
	// steal from it when their own partition runs dry, which keeps the
	// capacity pool global.
	frames frameSource

	// freeEnts is the shard's entry free list (chained through entry.next,
	// guarded by mu): a put/flush cycle at steady state reuses entry structs
	// instead of allocating one per insert.
	freeEnts *entry

	// spareObj parks the most recently emptied per-object page map for
	// reuse, so an object cycling between empty and populated (a guest
	// repeatedly faulting and flushing one region) does not allocate a
	// fresh map per cycle.
	spareObj map[PageIndex]*entry
}

func newShard(store PageStore) *shard {
	sh := &shard{store: store, objects: make(map[objKey]map[PageIndex]*entry)}
	sh.lru.prev = &sh.lru
	sh.lru.next = &sh.lru
	return sh
}

// lruPush appends e as the shard's most-recently-used entry.
func (sh *shard) lruPush(e *entry, stamp uint64) {
	e.stamp = stamp
	e.prev = sh.lru.prev
	e.next = &sh.lru
	sh.lru.prev.next = e
	sh.lru.prev = e
}

func (sh *shard) lruRemove(e *entry) {
	if e.prev == nil {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// allocEntry pops an entry from the shard's free list, or allocates one.
// Caller holds mu.
func (sh *shard) allocEntry() *entry {
	e := sh.freeEnts
	if e == nil {
		return &entry{}
	}
	sh.freeEnts = e.next
	e.next = nil
	return e
}

// freeEntry resets e and pushes it onto the free list. The caller holds mu,
// has already unlinked e from the object maps and the LRU, and must not
// touch e afterwards.
func (sh *shard) freeEntry(e *entry) {
	*e = entry{next: sh.freeEnts}
	e.handle = NoHandle
	sh.freeEnts = e
}

// lookup returns the entry stored under key, or nil.
func (sh *shard) lookup(key Key) *entry {
	obj, ok := sh.objects[objKey{key.Pool, key.Object}]
	if !ok {
		return nil
	}
	return obj[key.Index]
}

// --- lower-tier page tracking ---

// remoteOf returns the tier index tracked for key, or -1. Caller holds mu.
func (sh *shard) remoteOf(key Key) int {
	if sh.remote == nil {
		return -1
	}
	m, ok := sh.remote[objKey{key.Pool, key.Object}]
	if !ok {
		return -1
	}
	if ti, ok := m[key.Index]; ok {
		return ti
	}
	return -1
}

// takeRemote removes and returns the tracked tier index for key (-1 when
// absent). Caller holds mu.
func (sh *shard) takeRemote(key Key) int {
	if sh.remote == nil {
		return -1
	}
	k := objKey{key.Pool, key.Object}
	m, ok := sh.remote[k]
	if !ok {
		return -1
	}
	ti, ok := m[key.Index]
	if !ok {
		return -1
	}
	delete(m, key.Index)
	if len(m) == 0 {
		delete(sh.remote, k)
	}
	return ti
}

// noteRemoteIfFree records that key's live copy sits in tier ti — unless a
// concurrent put landed the key locally between the caller's failed local
// attempt and now, in which case it reports false and records nothing (the
// caller then flushes its tier copy, keeping "local XOR tracked" intact).
// Takes mu itself: it is called from the overflow path, after the local
// attempt's critical section ended.
func (sh *shard) noteRemoteIfFree(key Key, ti int) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.lookup(key) != nil {
		return false
	}
	if sh.remote == nil {
		sh.remote = make(map[objKey]map[PageIndex]int)
	}
	k := objKey{key.Pool, key.Object}
	m := sh.remote[k]
	if m == nil {
		m = make(map[PageIndex]int)
		sh.remote[k] = m
	}
	m[key.Index] = ti
	return true
}

// remoteTier is remoteOf behind the lock (for callers outside a critical
// section).
func (sh *shard) remoteTier(key Key) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.remoteOf(key)
}

// dropRemote is takeRemote behind the lock.
func (sh *shard) dropRemote(key Key) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.takeRemote(key)
}

// removeEntry unlinks e from the shard's object maps (but not the LRU;
// dropEntry handles that along with the frame and stored bytes).
func (sh *shard) removeEntry(e *entry) {
	k := objKey{e.key.Pool, e.key.Object}
	obj := sh.objects[k]
	delete(obj, e.key.Index)
	if len(obj) == 0 {
		delete(sh.objects, k)
		if sh.spareObj == nil {
			sh.spareObj = obj // park the empty map for the next insert
		}
	}
}

// takeObj returns a page map for a fresh object, reusing the spare.
func (sh *shard) takeObj() map[PageIndex]*entry {
	if obj := sh.spareObj; obj != nil {
		sh.spareObj = nil
		return obj
	}
	return make(map[PageIndex]*entry)
}

// frameSource is one stripe of the node's physical frame space: a
// contiguous range [base, base+n) served by its own allocator behind its
// own lock. Frame numbers stay globally unique, so a frame allocated from
// any stripe can be released through the backend regardless of which shard
// drops the entry, and a shard whose own stripe is exhausted can steal
// from a sibling — the free pool is global even though the locks are not.
type frameSource struct {
	mu    sync.Mutex
	base  mem.FrameNo
	alloc *mem.FrameAllocator
}

// take allocates one frame from the stripe, returning false on exhaustion.
func (f *frameSource) take() (mem.FrameNo, bool) {
	f.mu.Lock()
	local := f.alloc.Alloc()
	f.mu.Unlock()
	if local == mem.NoFrame {
		return mem.NoFrame, false
	}
	return f.base + local, true
}

// give returns a frame to the stripe that owns it.
func (f *frameSource) give(frame mem.FrameNo) {
	f.mu.Lock()
	err := f.alloc.Release(frame - f.base)
	f.mu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("tmem: frame accounting broken: %v", err))
	}
}
