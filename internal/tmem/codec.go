package tmem

import (
	"errors"
	"fmt"
)

// This file implements the pluggable page codec of the compressed tier
// (compressed.go): an LZ-class byte-oriented compressor written for the
// fixed-size-page workload (encode appends, decode fills a caller buffer,
// neither allocates once scratch is warm), plus a pass-through codec for
// ablations and codec-cost measurements. Every encoding is self-describing
// — the first byte tags the block format — so a stored blob can always be
// decoded without out-of-band metadata, and a corrupted or truncated blob
// is rejected with an error instead of producing garbage page contents.

// Codec compresses and decompresses page-sized buffers for the compressed
// tier. Encode/Decode may use internal scratch state, so a Codec value is
// NOT safe for concurrent use unless documented otherwise — the compressed
// tier serializes codec calls under its own lock.
type Codec interface {
	// Name identifies the codec ("lz", "nocompress").
	Name() string
	// MaxEncodedLen bounds the encoded size of an n-byte input.
	MaxEncodedLen(n int) int
	// Encode appends the encoded form of src to dst and returns the
	// extended slice. The encoding never exceeds MaxEncodedLen(len(src))
	// appended bytes: incompressible input falls back to a tagged verbatim
	// block.
	Encode(dst, src []byte) []byte
	// Decode decompresses an encoded block into dst and returns the number
	// of bytes written. It returns an error — never panics, never writes
	// partial garbage beyond the returned count — on truncated input,
	// unknown tags, malformed token streams or output exceeding len(dst).
	Decode(dst, src []byte) (int, error)
}

// Block format tags (first byte of every encoding).
const (
	blockRaw byte = 0x00 // verbatim payload follows
	blockLZ  byte = 0x01 // LZ token stream follows
)

// LZ token stream opcodes.
const (
	tokLit   byte = 0x00 // u16 length, then that many literal bytes
	tokMatch byte = 0x01 // u16 offset, u16 length: copy from output history
)

// Codec decode errors. Wrapped with position context by the LZ decoder.
var (
	errCodecTruncated = errors.New("tmem: codec: truncated block")
	errCodecTag       = errors.New("tmem: codec: unknown block tag")
	errCodecToken     = errors.New("tmem: codec: malformed token stream")
	errCodecOverflow  = errors.New("tmem: codec: decoded output exceeds buffer")
)

// CodecByName resolves a codec by name; the empty name selects the
// default LZ codec. Each call returns a fresh instance (codecs carry
// per-instance scratch and are not concurrency-safe).
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "lz":
		return NewLZCodec(), nil
	case "nocompress":
		return NoCompress{}, nil
	default:
		return nil, fmt.Errorf("tmem: unknown codec %q (have lz, nocompress)", name)
	}
}

// CodecNames lists the registered codec names for CLI help text.
func CodecNames() []string { return []string{"lz", "nocompress"} }

// --- NoCompress ---

// NoCompress stores pages verbatim behind the block-tag framing: the
// fallback codec for ablations (measure dedup alone) and for hosts where
// codec CPU is the scarce resource. Stateless and safe for concurrent use.
type NoCompress struct{}

// Name implements Codec.
func (NoCompress) Name() string { return "nocompress" }

// MaxEncodedLen implements Codec.
func (NoCompress) MaxEncodedLen(n int) int { return 1 + n }

// Encode implements Codec.
func (NoCompress) Encode(dst, src []byte) []byte {
	dst = append(dst, blockRaw)
	return append(dst, src...)
}

// Decode implements Codec. It accepts only verbatim blocks.
func (NoCompress) Decode(dst, src []byte) (int, error) {
	if len(src) == 0 {
		return 0, errCodecTruncated
	}
	if src[0] != blockRaw {
		return 0, fmt.Errorf("%w: 0x%02x", errCodecTag, src[0])
	}
	payload := src[1:]
	if len(payload) > len(dst) {
		return 0, errCodecOverflow
	}
	return copy(dst, payload), nil
}

// --- LZ codec ---

// lzHashBits sizes the match-finder hash table: 8K entries cover a 64 KiB
// page densely enough for the guest-page entropy mix without blowing the
// L1 cache.
const (
	lzHashBits = 13
	lzMinMatch = 4
	lzMaxU16   = 0xFFFF
)

// LZCodec is a byte-oriented LZ77-family compressor tuned for page-sized
// inputs: greedy hash-table match finding over the raw window, u16
// offset/length tokens (matches may overlap their own output, so runs
// compress to a few bytes), and a verbatim fallback when the token stream
// would not beat raw storage. It holds per-instance scratch (the hash
// table) and is not safe for concurrent use.
type LZCodec struct {
	// table maps 4-byte-sequence hashes to position+1 in the current src
	// (0 = empty); cleared per Encode call.
	table [1 << lzHashBits]int32
}

// NewLZCodec returns a fresh LZ codec instance.
func NewLZCodec() *LZCodec { return &LZCodec{} }

// Name implements Codec.
func (c *LZCodec) Name() string { return "lz" }

// MaxEncodedLen implements Codec: the fallback path guarantees tag+verbatim.
func (c *LZCodec) MaxEncodedLen(n int) int { return 1 + n }

func lzHash(b []byte) uint32 {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return (v * 2654435761) >> (32 - lzHashBits)
}

// Encode implements Codec.
func (c *LZCodec) Encode(dst, src []byte) []byte {
	start := len(dst)
	if len(src) < 2*lzMinMatch {
		return NoCompress{}.Encode(dst, src)
	}
	clear(c.table[:])
	out := append(dst, blockLZ)
	// Abort to the verbatim fallback the moment the stream stops beating it.
	rawSize := 1 + len(src)
	anchor := 0
	end := len(src) - lzMinMatch
	for i := 0; i <= end; {
		h := lzHash(src[i:])
		cand := int(c.table[h]) - 1
		c.table[h] = int32(i + 1)
		if cand < 0 || i-cand > lzMaxU16 ||
			src[cand] != src[i] || src[cand+1] != src[i+1] ||
			src[cand+2] != src[i+2] || src[cand+3] != src[i+3] {
			i++
			continue
		}
		mlen := lzMinMatch
		for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		out = lzAppendLiterals(out, src[anchor:i])
		out = lzAppendMatch(out, i-cand, mlen)
		anchor = i + mlen
		i = anchor
		if len(out)-start >= rawSize {
			return NoCompress{}.Encode(dst[:start], src)
		}
	}
	out = lzAppendLiterals(out, src[anchor:])
	if len(out)-start >= rawSize {
		return NoCompress{}.Encode(dst[:start], src)
	}
	return out
}

// lzAppendLiterals emits a literal run, split at the u16 length limit.
func lzAppendLiterals(out, lits []byte) []byte {
	for len(lits) > 0 {
		n := len(lits)
		if n > lzMaxU16 {
			n = lzMaxU16
		}
		out = append(out, tokLit, byte(n>>8), byte(n))
		out = append(out, lits[:n]...)
		lits = lits[n:]
	}
	return out
}

// lzAppendMatch emits a match of mlen bytes at back-offset off, split at
// the u16 length limit. Continuation chunks keep the same offset: the
// output cursor and the source cursor advance in lockstep, so the relative
// distance is invariant (and off < mlen legally encodes a repeating run).
func lzAppendMatch(out []byte, off, mlen int) []byte {
	for mlen > 0 {
		n := mlen
		if n > lzMaxU16 {
			n = lzMaxU16
		}
		out = append(out, tokMatch, byte(off>>8), byte(off), byte(n>>8), byte(n))
		mlen -= n
	}
	return out
}

// Decode implements Codec.
func (c *LZCodec) Decode(dst, src []byte) (int, error) {
	if len(src) == 0 {
		return 0, errCodecTruncated
	}
	switch src[0] {
	case blockRaw:
		return NoCompress{}.Decode(dst, src)
	case blockLZ:
	default:
		return 0, fmt.Errorf("%w: 0x%02x", errCodecTag, src[0])
	}
	n := 0
	for p := 1; p < len(src); {
		switch src[p] {
		case tokLit:
			if p+3 > len(src) {
				return 0, errCodecTruncated
			}
			l := int(src[p+1])<<8 | int(src[p+2])
			p += 3
			if l == 0 {
				return 0, errCodecToken
			}
			if p+l > len(src) {
				return 0, errCodecTruncated
			}
			if n+l > len(dst) {
				return 0, errCodecOverflow
			}
			copy(dst[n:], src[p:p+l])
			n += l
			p += l
		case tokMatch:
			if p+5 > len(src) {
				return 0, errCodecTruncated
			}
			off := int(src[p+1])<<8 | int(src[p+2])
			l := int(src[p+3])<<8 | int(src[p+4])
			p += 5
			if off == 0 || off > n || l == 0 {
				return 0, errCodecToken
			}
			if n+l > len(dst) {
				return 0, errCodecOverflow
			}
			// Byte-at-a-time forward copy: an off < l match legally
			// replicates its own output (run-length encoding).
			pos := n - off
			for k := 0; k < l; k++ {
				dst[n+k] = dst[pos+k]
			}
			n += l
		default:
			return 0, fmt.Errorf("%w: opcode 0x%02x", errCodecToken, src[p])
		}
	}
	return n, nil
}

// hashBlob returns a well-mixed 64-bit content hash of an encoded blob
// (FNV-1a folded through the splitmix64 finalizer), the dedup-index key of
// the compressed tier.
func hashBlob(b []byte) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return mix64(h)
}

// Compile-time interface checks.
var (
	_ Codec = NoCompress{}
	_ Codec = (*LZCodec)(nil)
)
