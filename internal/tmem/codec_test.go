package tmem

import (
	"bytes"
	"math/rand"
	"testing"
)

// codecTestPages builds the page-content mix the tier sees in practice:
// zeros, runs, periodic patterns, text-like bytes and incompressible noise.
func codecTestPages(pageSize int) map[string][]byte {
	rng := rand.New(rand.NewSource(11))
	pages := map[string][]byte{
		"zeros": make([]byte, pageSize),
		"ones":  bytes.Repeat([]byte{0xFF}, pageSize),
	}
	period := make([]byte, pageSize)
	for i := range period {
		period[i] = byte(i % 7)
	}
	pages["periodic"] = period
	phrase := []byte("the quick brown fox jumps over the lazy dog. ")
	pages["text"] = bytes.Repeat(phrase, pageSize/len(phrase)+1)[:pageSize]
	noise := make([]byte, pageSize)
	rng.Read(noise)
	pages["noise"] = noise
	sparse := make([]byte, pageSize)
	for i := 0; i < pageSize; i += 517 {
		sparse[i] = byte(i)
	}
	pages["sparse"] = sparse
	return pages
}

func TestCodecRoundTrip(t *testing.T) {
	const pageSize = 65536
	for _, name := range CodecNames() {
		codec, err := CodecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for label, page := range codecTestPages(pageSize) {
			enc := codec.Encode(nil, page)
			if len(enc) > codec.MaxEncodedLen(len(page)) {
				t.Errorf("%s/%s: encoded %d bytes > MaxEncodedLen %d",
					name, label, len(enc), codec.MaxEncodedLen(len(page)))
			}
			dst := make([]byte, pageSize)
			n, err := codec.Decode(dst, enc)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", name, label, err)
			}
			if n != pageSize || !bytes.Equal(dst[:n], page) {
				t.Errorf("%s/%s: round trip mismatch (%d bytes)", name, label, n)
			}
		}
	}
}

func TestCodecDeterministic(t *testing.T) {
	codec := NewLZCodec()
	for label, page := range codecTestPages(4096) {
		a := codec.Encode(nil, page)
		b := codec.Encode(nil, page)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: codec not deterministic", label)
		}
	}
}

func TestLZCompressesTestMix(t *testing.T) {
	codec := NewLZCodec()
	pages := codecTestPages(65536)
	for _, label := range []string{"zeros", "ones", "periodic", "text"} {
		enc := codec.Encode(nil, pages[label])
		if len(enc) >= len(pages[label])/2 {
			t.Errorf("%s: encoded to %d bytes, want < 2x compression", label, len(enc))
		}
	}
	// Noise must fall back to the verbatim block, never expand past the bound.
	enc := codec.Encode(nil, pages["noise"])
	if len(enc) != 1+len(pages["noise"]) || enc[0] != blockRaw {
		t.Errorf("noise: want verbatim fallback, got %d bytes tag 0x%02x", len(enc), enc[0])
	}
}

func TestCodecByNameUnknown(t *testing.T) {
	if _, err := CodecByName("zstd"); err == nil {
		t.Fatal("want error for unknown codec")
	}
}

// TestCodecRejectsCorruption drives every decoder over truncated, bit-flipped
// and hand-crafted malformed inputs: each must return an error or a clean
// round trip — never panic, and never report success with wrong contents.
func TestCodecRejectsCorruption(t *testing.T) {
	const pageSize = 4096
	codec := NewLZCodec()
	page := codecTestPages(pageSize)["text"]
	enc := codec.Encode(nil, page)
	dst := make([]byte, pageSize)

	// Every truncation must error (the empty input included).
	for cut := 0; cut < len(enc); cut++ {
		if n, err := codec.Decode(dst, enc[:cut]); err == nil && n == pageSize && bytes.Equal(dst[:n], page) {
			t.Fatalf("truncation to %d bytes decoded to a full clean page", cut)
		}
	}

	// Malformed streams that must be rejected outright.
	malformed := map[string][]byte{
		"unknown tag":        {0x7F, 1, 2, 3},
		"unknown opcode":     {blockLZ, 0x7F},
		"zero literal len":   {blockLZ, tokLit, 0, 0},
		"zero match len":     {blockLZ, tokLit, 0, 1, 'x', tokMatch, 0, 1, 0, 0},
		"zero match off":     {blockLZ, tokLit, 0, 1, 'x', tokMatch, 0, 0, 0, 1},
		"match before start": {blockLZ, tokLit, 0, 1, 'x', tokMatch, 0, 9, 0, 1},
		"overflow literals":  append([]byte{blockLZ, tokLit, 0xFF, 0xFF}, make([]byte, 0xFFFF)...),
	}
	small := make([]byte, 16)
	for name, in := range malformed {
		if _, err := codec.Decode(small, in); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}

	// Raw block larger than dst must be rejected, not truncated silently.
	raw := (NoCompress{}).Encode(nil, page)
	if _, err := codec.Decode(small, raw); err == nil {
		t.Error("raw overflow: decode accepted oversized payload")
	}
}

// FuzzCodecRoundTrip checks two properties at once: (a) any input data
// round-trips exactly through encode/decode, and (b) the decoder survives
// arbitrary (prefix-corrupted) encodings without panicking, and any decode
// it accepts fits the destination buffer.
func FuzzCodecRoundTrip(f *testing.F) {
	pages := codecTestPages(1024)
	for _, p := range pages {
		f.Add(p, byte(0), 0)
	}
	f.Add([]byte{}, byte(1), 1)
	f.Add([]byte("abcabcabcabc"), byte(0xFF), 2)
	f.Fuzz(func(t *testing.T, data []byte, flip byte, at int) {
		codec := NewLZCodec()
		enc := codec.Encode(nil, data)
		dst := make([]byte, len(data))
		n, err := codec.Decode(dst, enc)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if n != len(data) || !bytes.Equal(dst[:n], data) {
			t.Fatalf("round trip mismatch: %d bytes of %d", n, len(data))
		}

		// Corrupt one byte (and separately truncate) and decode again: any
		// outcome but a panic or an out-of-bounds write is acceptable.
		if len(enc) > 0 {
			idx := int(uint(at) % uint(len(enc)))
			corrupt := append([]byte(nil), enc...)
			corrupt[idx] ^= flip
			if m, err := codec.Decode(dst, corrupt); err == nil && m > len(dst) {
				t.Fatalf("corrupted decode overflowed: %d > %d", m, len(dst))
			}
			if m, err := codec.Decode(dst, enc[:idx]); err == nil && m > len(dst) {
				t.Fatalf("truncated decode overflowed: %d > %d", m, len(dst))
			}
		}
	})
}
