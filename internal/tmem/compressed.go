package tmem

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"smartmem/internal/mem"
)

// This file implements CompressedTier: the zcache leg of the tmem lineage
// (tmem → zcache → RAMster). It sits between the striped local store
// (tier 0) and the RemoteTier/vdisk fallback: a page demoted off the local
// frame pool compresses through a pluggable Codec into a size-class slab
// arena instead of costing a network round trip or a disk op, and identical
// pages across VMs — the common case for zero pages and shared text —
// dedup to one refcounted blob keyed by content hash. The tier trades a few
// µs of codec CPU for 2–4x effective RAM capacity, which it reports through
// EffectiveExtraPages so policies allocate against compressed capacity, not
// raw frames.
//
// Concurrency: one mutex guards the whole tier. The codec carries scratch
// state (not concurrency-safe) and every operation touches the shared dedup
// index, so striping would buy little; the tier sits on the overflow path,
// not the per-access hot path, and the backend already absorbed the
// parallelism in tier 0. The warm put→get cycle is 0 heap allocs/op: encode
// scratch, page scratch, slab buffers and entry structs all recycle through
// tier-owned free lists (the PR 5 discipline).

// Slab size-class bounds: blobs round up to the next power of two between
// 32 B (a zero page encodes to a handful of bytes) and 128 KiB (a 64 KiB
// page plus framing that failed to compress).
const (
	slabMinShift = 5  // 32 B
	slabMaxShift = 17 // 128 KiB
	slabClasses  = slabMaxShift - slabMinShift + 1
)

// slabClass maps a blob size to its size-class index.
func slabClass(n int) int {
	if n <= 1<<slabMinShift {
		return 0
	}
	return bits.Len(uint(n-1)) - slabMinShift
}

// slabClassSize is the rounded (charged) byte size of a class.
func slabClassSize(class int) mem.Bytes {
	return mem.Bytes(1) << (slabMinShift + class)
}

// cblob is one deduplicated compressed page: the encoded bytes in a slab
// buffer, shared by refs index entries. Blobs with colliding content hashes
// chain through link.
type cblob struct {
	hash  uint64
	data  []byte // slab buffer, len = encoded size, cap = class size
	class int
	refs  int32
	link  *cblob // hash-bucket collision chain
}

// centry is one stored page in the tier's index: which blob holds its
// contents, its pool kind, and the per-object map linkage.
type centry struct {
	blob *cblob
	kind PoolKind
	next *centry // free-list chain
}

// CompressedTierConfig configures NewCompressedTier. The zero value of
// every field but CapacityBytes has a usable default.
type CompressedTierConfig struct {
	// Name identifies the tier in reports; default "compressed".
	Name string
	// PageSize is the raw page size in bytes (must match the backend's).
	PageSize int
	// CapacityBytes is the slab arena budget: the sum of charged class
	// sizes never exceeds it. Required, > 0.
	CapacityBytes mem.Bytes
	// Codec compresses pages on demotion; default is the LZ codec. The
	// tier owns the instance (codec scratch is guarded by the tier lock).
	Codec Codec
	// MaxRatio caps how many pages the arena may hold relative to
	// CapacityBytes/PageSize, bounding the capacity amplification a
	// dedup-degenerate workload (all zero pages) could advertise.
	// Default 8.
	MaxRatio int
}

// CompressedTier is a Tier (and BatchTier) storing demoted pages compressed
// and deduplicated in RAM. See the file comment for design.
type CompressedTier struct {
	name     string
	pageSize int
	capacity mem.Bytes
	maxPages mem.Pages
	codec    Codec

	mu      sync.Mutex
	objects map[objKey]map[PageIndex]*centry
	// dedup maps content hash → blob chain. Keyed by the hash of the
	// encoded bytes: the codec is deterministic, so equal raw pages encode
	// identically and encoded equality implies raw equality.
	dedup map[uint64]*cblob

	// Free lists (the PR 5 zero-alloc discipline): per-class slab buffers,
	// blob and entry structs, a parked empty per-object map, and the
	// encode/page scratch buffers.
	freeBufs  [slabClasses][][]byte
	freeBlobs *cblob
	freeEnts  *centry
	spareObj  map[PageIndex]*centry
	encBuf    []byte
	pageBuf   []byte

	// zeroEnc is the precomputed encoding of the all-zero page: the
	// simulator's meta stores pass nil page data everywhere, and a nil put
	// must neither touch the codec (keeps codec-ns counters deterministic)
	// nor depend on scratch contents.
	zeroEnc  []byte
	zeroHash uint64

	// Accounting, guarded by mu.
	pagesStored mem.Pages
	uniqueBlobs int64
	rawBytes    mem.Bytes // pageSize per stored page
	storedBytes mem.Bytes // charged slab class sizes, counted once per blob

	stats CompressedTierStats
}

// CompressedTierStats extends the generic tier counters with the
// compression and dedup accounting of a CompressedTier snapshot.
type CompressedTierStats struct {
	TierStats

	PagesStored  mem.Pages // pages currently indexed
	UniqueBlobs  int64     // distinct blobs currently in the arena
	RawBytes     mem.Bytes // uncompressed footprint of stored pages
	StoredBytes  mem.Bytes // charged slab bytes (counted once per blob)
	DedupHits    uint64    // puts that landed on an existing blob
	RejectedFull uint64    // puts rejected on arena or page-count exhaustion
	DecodeErrors uint64    // stored blobs that failed to decode (dropped)
	CompressNs   uint64    // cumulative codec encode time
	DecompressNs uint64    // cumulative codec decode time
}

// Ratio returns the effective compression ratio RawBytes/StoredBytes
// (dedup included), or 0 when nothing is stored.
func (s CompressedTierStats) Ratio() float64 {
	if s.StoredBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.StoredBytes)
}

// Add accumulates o into s (cluster-wide summing; gauges add too, so the
// sum reads as the cluster total).
func (s *CompressedTierStats) Add(o CompressedTierStats) {
	s.Puts += o.Puts
	s.PutsOK += o.PutsOK
	s.Gets += o.Gets
	s.GetsHit += o.GetsHit
	s.PageFlushes += o.PageFlushes
	s.ObjectFlushes += o.ObjectFlushes
	s.Errors += o.Errors
	s.PagesStored += o.PagesStored
	s.UniqueBlobs += o.UniqueBlobs
	s.RawBytes += o.RawBytes
	s.StoredBytes += o.StoredBytes
	s.DedupHits += o.DedupHits
	s.RejectedFull += o.RejectedFull
	s.DecodeErrors += o.DecodeErrors
	s.CompressNs += o.CompressNs
	s.DecompressNs += o.DecompressNs
}

// NewCompressedTier creates the tier. Panics on a config the caller should
// have validated (mirrors NewBackend).
func NewCompressedTier(cfg CompressedTierConfig) *CompressedTier {
	if cfg.PageSize <= 0 {
		panic("tmem: compressed tier needs a page size")
	}
	if cfg.CapacityBytes <= 0 {
		panic("tmem: compressed tier needs a capacity")
	}
	name := cfg.Name
	if name == "" {
		name = "compressed"
	}
	codec := cfg.Codec
	if codec == nil {
		codec = NewLZCodec()
	}
	maxRatio := cfg.MaxRatio
	if maxRatio <= 0 {
		maxRatio = 8
	}
	if cfg.PageSize > (1<<slabMaxShift)-1 {
		panic(fmt.Sprintf("tmem: page size %d exceeds the %d slab bound",
			cfg.PageSize, (1<<slabMaxShift)-1))
	}
	t := &CompressedTier{
		name:     name,
		pageSize: cfg.PageSize,
		capacity: cfg.CapacityBytes,
		maxPages: mem.Pages(maxRatio) * mem.Pages(cfg.CapacityBytes/mem.Bytes(cfg.PageSize)),
		codec:    codec,
		objects:  make(map[objKey]map[PageIndex]*centry),
		dedup:    make(map[uint64]*cblob),
		pageBuf:  make([]byte, cfg.PageSize),
	}
	t.zeroEnc = codec.Encode(nil, t.pageBuf)
	t.zeroHash = hashBlob(t.zeroEnc)
	return t
}

// Name implements Tier.
func (t *CompressedTier) Name() string { return t.name }

// PageSize returns the raw page size the tier was built for.
func (t *CompressedTier) PageSize() int { return t.pageSize }

// CapacityBytes returns the slab arena budget.
func (t *CompressedTier) CapacityBytes() mem.Bytes { return t.capacity }

// Stats implements Tier.
func (t *CompressedTier) Stats() TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.TierStats
}

// CompressedStats returns the full accounting snapshot.
func (t *CompressedTier) CompressedStats() CompressedTierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.PagesStored = t.pagesStored
	s.UniqueBlobs = t.uniqueBlobs
	s.RawBytes = t.rawBytes
	s.StoredBytes = t.storedBytes
	return s
}

// EffectiveExtraPages reports how many pages beyond tier 0's frame count
// this tier can hold, extrapolated from the observed per-page stored cost
// (Backend.Sample folds it into MemStats.EffectiveTmem). Before any page
// lands it assumes ratio 1 — capacity/pageSize — so policies never
// over-commit against compression that has not proven itself.
func (t *CompressedTier) EffectiveExtraPages() mem.Pages {
	t.mu.Lock()
	defer t.mu.Unlock()
	capPages := mem.Pages(t.capacity / mem.Bytes(t.pageSize))
	if t.pagesStored == 0 {
		return capPages
	}
	per := t.storedBytes / mem.Bytes(t.pagesStored)
	var eff mem.Pages
	if per == 0 {
		eff = t.maxPages // pure dedup so far: only the page cap binds
	} else {
		eff = t.pagesStored + mem.Pages((t.capacity-t.storedBytes)/per)
	}
	if eff > t.maxPages {
		eff = t.maxPages
	}
	return eff
}

// --- slab / blob / entry recycling (caller holds mu) ---

func (t *CompressedTier) takeBuf(class int) []byte {
	if list := t.freeBufs[class]; len(list) > 0 {
		buf := list[len(list)-1]
		t.freeBufs[class] = list[:len(list)-1]
		return buf
	}
	return make([]byte, 0, slabClassSize(class))
}

func (t *CompressedTier) giveBuf(class int, buf []byte) {
	t.freeBufs[class] = append(t.freeBufs[class], buf[:0])
}

func (t *CompressedTier) allocBlob() *cblob {
	b := t.freeBlobs
	if b == nil {
		return &cblob{}
	}
	t.freeBlobs = b.link
	b.link = nil
	return b
}

func (t *CompressedTier) allocEntry() *centry {
	e := t.freeEnts
	if e == nil {
		return &centry{}
	}
	t.freeEnts = e.next
	e.next = nil
	return e
}

func (t *CompressedTier) freeEntry(e *centry) {
	*e = centry{next: t.freeEnts}
	t.freeEnts = e
}

func (t *CompressedTier) takeObj() map[PageIndex]*centry {
	if obj := t.spareObj; obj != nil {
		t.spareObj = nil
		return obj
	}
	return make(map[PageIndex]*centry)
}

// deref drops one reference from b, returning its slab buffer and struct
// to the free lists when the last reference goes.
func (t *CompressedTier) deref(b *cblob) {
	b.refs--
	if b.refs > 0 {
		return
	}
	// Unlink from the dedup chain.
	head := t.dedup[b.hash]
	if head == b {
		if b.link == nil {
			delete(t.dedup, b.hash)
		} else {
			t.dedup[b.hash] = b.link
		}
	} else {
		for p := head; p != nil; p = p.link {
			if p.link == b {
				p.link = b.link
				break
			}
		}
	}
	t.uniqueBlobs--
	t.storedBytes -= slabClassSize(b.class)
	t.giveBuf(b.class, b.data)
	*b = cblob{link: t.freeBlobs}
	t.freeBlobs = b
}

// findBlob looks up a blob with the given hash and encoded contents.
func (t *CompressedTier) findBlob(hash uint64, enc []byte) *cblob {
	for b := t.dedup[hash]; b != nil; b = b.link {
		if len(b.data) == len(enc) && string(b.data) == string(enc) {
			return b
		}
	}
	return nil
}

// encode compresses data (nil = the all-zero page) into the tier's scratch,
// returning the encoded bytes and their content hash. Caller holds mu; the
// returned slice aliases tier scratch and is only valid until the next
// encode.
func (t *CompressedTier) encode(data []byte) ([]byte, uint64) {
	if data == nil {
		return t.zeroEnc, t.zeroHash
	}
	// Stage through pageBuf so a short caller buffer still encodes (and
	// later decodes) as exactly one zero-padded page.
	src := data
	if len(data) != t.pageSize {
		n := copy(t.pageBuf, data)
		clear(t.pageBuf[n:])
		src = t.pageBuf
	}
	start := time.Now()
	t.encBuf = t.codec.Encode(t.encBuf[:0], src)
	t.stats.CompressNs += uint64(time.Since(start))
	return t.encBuf, hashBlob(t.encBuf)
}

// putLocked stores one page. Caller holds mu.
func (t *CompressedTier) putLocked(key Key, kind PoolKind, data []byte) Status {
	t.stats.Puts++
	k := objKey{key.Pool, key.Object}
	obj := t.objects[k]
	if old := obj[key.Index]; old != nil {
		// Duplicate put supersedes: drop the old contents first so the
		// replacement cannot be rejected for capacity the old copy holds.
		t.deref(old.blob)
		t.pagesStored--
		t.rawBytes -= mem.Bytes(t.pageSize)
		delete(obj, key.Index)
		t.freeEntry(old)
		if len(obj) == 0 {
			delete(t.objects, k)
			if t.spareObj == nil {
				t.spareObj = obj
			}
			obj = nil
		}
	}
	if t.pagesStored >= t.maxPages {
		t.stats.RejectedFull++
		return ETmem
	}
	enc, hash := t.encode(data)
	blob := t.findBlob(hash, enc)
	if blob != nil {
		t.stats.DedupHits++
		blob.refs++
	} else {
		class := slabClass(len(enc))
		if t.storedBytes+slabClassSize(class) > t.capacity {
			t.stats.RejectedFull++
			return ETmem
		}
		blob = t.allocBlob()
		buf := t.takeBuf(class)
		blob.data = append(buf, enc...)
		blob.hash = hash
		blob.class = class
		blob.refs = 1
		blob.link = t.dedup[hash]
		t.dedup[hash] = blob
		t.uniqueBlobs++
		t.storedBytes += slabClassSize(class)
	}
	e := t.allocEntry()
	e.blob = blob
	e.kind = kind
	if obj == nil {
		obj = t.takeObj()
		t.objects[k] = obj
	}
	obj[key.Index] = e
	t.pagesStored++
	t.rawBytes += mem.Bytes(t.pageSize)
	t.stats.PutsOK++
	return STmem
}

// dropLocked removes one entry (already looked up) from the index. Caller
// holds mu.
func (t *CompressedTier) dropLocked(k objKey, idx PageIndex, e *centry) {
	t.deref(e.blob)
	t.pagesStored--
	t.rawBytes -= mem.Bytes(t.pageSize)
	obj := t.objects[k]
	delete(obj, idx)
	if len(obj) == 0 {
		delete(t.objects, k)
		if t.spareObj == nil {
			t.spareObj = obj
		}
	}
	t.freeEntry(e)
}

// getLocked retrieves one page into dst (nil = presence only). Caller holds
// mu. Ephemeral hits are destructive, mirroring the local store; a blob
// that fails to decode is dropped and reads as a miss, so the backend
// untracks the key and falls through to the next tier.
func (t *CompressedTier) getLocked(key Key, dst []byte) Status {
	t.stats.Gets++
	k := objKey{key.Pool, key.Object}
	e := t.objects[k][key.Index]
	if e == nil {
		return ETmem
	}
	if dst != nil {
		var n int
		var err error
		if len(e.blob.data) == len(t.zeroEnc) && string(e.blob.data) == string(t.zeroEnc) {
			// Zero-page fast path: no codec call, keeps sim timing clean.
			n = t.pageSize
			clear(dst[:min(len(dst), t.pageSize)])
		} else if len(dst) >= t.pageSize {
			start := time.Now()
			n, err = t.codec.Decode(dst[:t.pageSize], e.blob.data)
			t.stats.DecompressNs += uint64(time.Since(start))
		} else {
			start := time.Now()
			n, err = t.codec.Decode(t.pageBuf, e.blob.data)
			t.stats.DecompressNs += uint64(time.Since(start))
			copy(dst, t.pageBuf[:min(n, len(dst))])
		}
		if err == nil && n != t.pageSize {
			err = fmt.Errorf("tmem: compressed tier: decoded %d bytes, want %d", n, t.pageSize)
		}
		if err != nil {
			// Corrupted blob: never hand back garbage. Drop the entry so the
			// miss is permanent and the caller falls through to lower tiers.
			t.stats.DecodeErrors++
			t.dropLocked(k, key.Index, e)
			return ETmem
		}
	}
	if e.kind == Ephemeral {
		t.dropLocked(k, key.Index, e)
	}
	t.stats.GetsHit++
	return STmem
}

// Put implements Tier.
func (t *CompressedTier) Put(key Key, kind PoolKind, data []byte) Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.putLocked(key, kind, data)
}

// Get implements Tier.
func (t *CompressedTier) Get(key Key, dst []byte) Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.getLocked(key, dst)
}

// PutBatch implements BatchTier: the whole run moves under one lock
// acquisition, sharing the codec scratch across pages.
func (t *CompressedTier) PutBatch(keys []Key, kinds []PoolKind, datas [][]byte, sts []Status) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, k := range keys {
		var data []byte
		if datas != nil {
			data = datas[i]
		}
		sts[i] = t.putLocked(k, kinds[i], data)
	}
}

// GetBatch implements BatchTier.
func (t *CompressedTier) GetBatch(keys []Key, dsts [][]byte, sts []Status) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, k := range keys {
		var dst []byte
		if dsts != nil {
			dst = dsts[i]
		}
		sts[i] = t.getLocked(k, dst)
	}
}

// FlushPage implements Tier.
func (t *CompressedTier) FlushPage(key Key) Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.PageFlushes++
	k := objKey{key.Pool, key.Object}
	e := t.objects[k][key.Index]
	if e == nil {
		return ETmem
	}
	t.dropLocked(k, key.Index, e)
	return STmem
}

// FlushObject implements Tier.
func (t *CompressedTier) FlushObject(pool PoolID, object ObjectID) (mem.Pages, Status) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.ObjectFlushes++
	k := objKey{pool, object}
	obj := t.objects[k]
	if len(obj) == 0 {
		return 0, ETmem
	}
	freed := mem.Pages(0)
	for idx, e := range obj {
		t.dropLocked(k, idx, e)
		freed++
	}
	return freed, STmem
}

// DropPool implements Tier.
func (t *CompressedTier) DropPool(pool PoolID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, obj := range t.objects {
		if k.pool != pool {
			continue
		}
		for idx, e := range obj {
			t.dropLocked(k, idx, e)
		}
	}
}

// Compile-time interface checks.
var (
	_ Tier      = (*CompressedTier)(nil)
	_ BatchTier = (*CompressedTier)(nil)
)
