package tmem

import (
	"sync"
	"sync/atomic"

	"smartmem/internal/mem"
)

// This file implements the tiered tmem hierarchy: the local lock-striped
// store is tier 0, and Backend.AttachTier stacks further tiers below it.
// The canonical tier 1 is RemoteTier — RAMster-style remote tmem, where a
// node whose local pool is exhausted ships overflow pages to a peer node's
// store instead of swapping to disk (Magenheimer's tmem/RAMster lineage,
// paper §II). The final fallback remains the guest's virtual disk: a put
// rejected by every tier returns E_TMEM and the guest swaps.
//
// Tier dispatch rules (see Backend.Put/Get/FlushPage/FlushObject):
//
//   - A put is offered to the tiers only after the local store rejects it
//     with E_TMEM (over target or out of frames). The first tier accepting
//     the page turns the guest-visible status back into S_TMEM.
//   - Each shard tracks which of its keys live in a lower tier (under the
//     existing stripe lock — the tier stack adds no new global locks), so
//     gets and flushes only pay a tier round trip for keys that actually
//     overflowed.
//   - The local failure still shows up in the MemStats sample (puts_succ
//     does not count tier-absorbed puts): policies keep seeing the pressure
//     that caused the overflow. Remote tmem is a relief valve, not extra
//     local capacity.

// Tier is one level of the tmem page hierarchy below the local striped
// store. Implementations must be safe for concurrent use; Status results
// follow the hypervisor conventions (STmem success, ETmem "cannot serve",
// EInval malformed).
type Tier interface {
	// Name identifies the tier in reports ("remote(n1)", "kvd:host").
	Name() string
	// Put offers an overflow page. kind is the owning pool's kind, which
	// the tier mirrors on its backing store (a persistent page must stay
	// retrievable until flushed; an ephemeral one may be dropped).
	Put(key Key, kind PoolKind, data []byte) Status
	// Get retrieves a page previously accepted by Put, copying it into dst
	// (which may be nil). Ephemeral hits are destructive, mirroring the
	// local store.
	Get(key Key, dst []byte) Status
	// FlushPage invalidates a single page.
	FlushPage(key Key) Status
	// FlushObject invalidates every page of an object, reporting how many
	// pages the tier actually freed (an ephemeral-backed tier may hold
	// fewer than the owner tracked). A negative count means the transport
	// could not tell; callers fall back to their own tracking.
	FlushObject(pool PoolID, object ObjectID) (mem.Pages, Status)
	// DropPool releases everything held for a local pool (pool destruction
	// or VM shutdown).
	DropPool(pool PoolID)
	// Stats returns cumulative operation counters.
	Stats() TierStats
}

// TierStats are a tier's cumulative operation counters.
type TierStats struct {
	Puts          uint64 // overflow puts offered
	PutsOK        uint64 // overflow puts accepted
	Gets          uint64 // gets forwarded
	GetsHit       uint64 // gets served
	PageFlushes   uint64 // page flushes forwarded
	ObjectFlushes uint64 // object flushes forwarded
	Errors        uint64 // transport errors (the tier disables itself)
}

// PageService is the put/get/flush surface a RemoteTier drives: the
// key–value operations of the kvstore wire protocol, minus the transport.
// Both kvstore.Client (a real net.Conn to a smartmem-kvd daemon) and
// Loopback (a direct in-process call into a peer backend, the deterministic
// simulator transport) satisfy it.
//
// Implementations must be safe for concurrent use when the owning backend
// serves concurrent traffic: Loopback is (the peer backend is striped), a
// bare kvstore.Client is NOT (one request/response wire) — wrap it in
// kvstore.SyncClient, as smartmem-kvd's -remote mode does.
type PageService interface {
	NewPool(vm VMID, kind PoolKind) (PoolID, error)
	Put(key Key, data []byte) (Status, error)
	Get(key Key) (Status, []byte, error)
	FlushPage(key Key) (Status, error)
	FlushObject(pool PoolID, object ObjectID) (Status, error)
	DestroyPool(pool PoolID) (Status, error)
}

// pageGetter is an optional PageService refinement: GetInto retrieves a
// page directly into the caller's buffer (nil when only presence matters),
// skipping the payload allocation Get implies. Loopback implements it, so
// in-process remote gets move zero bytes on the meta stores the simulator
// uses and copy once on data stores.
type pageGetter interface {
	GetInto(key Key, dst []byte) (Status, error)
}

// BatchTier is an optional Tier refinement: whole runs of overflow puts or
// tracked-page gets move in one call — and, for wire-backed tiers, one
// network round trip — instead of one per page. Backend.PutBatch/GetBatch
// use it when the tier provides it and fall back to per-page calls
// otherwise.
type BatchTier interface {
	Tier
	// PutBatch offers a run of overflow pages; kinds[i] is the owning
	// pool's kind. sts receives one status per key.
	PutBatch(keys []Key, kinds []PoolKind, datas [][]byte, sts []Status)
	// GetBatch retrieves a run of pages previously accepted by Put; dsts
	// may be nil or hold per-key buffers (nil entries mean presence only).
	GetBatch(keys []Key, dsts [][]byte, sts []Status)
}

// BatchPageService is an optional PageService refinement mirroring
// BatchTier at the transport layer: kvstore.Client ships the whole run in
// one OpPutBatch/OpGetBatch wire frame, Loopback feeds it straight into
// the peer backend's stripe-grouped batch path.
type BatchPageService interface {
	PutBatch(keys []Key, datas [][]byte, sts []Status) error
	GetBatch(keys []Key, dsts [][]byte, sts []Status) error
}

// objectFlushCounter is an optional PageService refinement: FlushObjectCount
// additionally reports how many pages the flush actually freed. Loopback,
// kvstore.Client and kvstore.SyncClient all implement it (the wire protocol
// carries the count in the response payload), keeping the owner's
// pages-freed accounting exact even when the peer silently dropped
// ephemeral pages beforehand.
type objectFlushCounter interface {
	FlushObjectCount(pool PoolID, object ObjectID) (mem.Pages, Status, error)
}

// RemoteTier ships overflow pages to a peer tmem store over a PageService.
// Pages are stored on the peer under pools owned by a single "remote guest"
// identity (owner), one peer pool per local pool, so the peer's accounting
// and policies see the remote traffic as one more VM. A transport error
// permanently disables the tier (counted in Stats().Errors): puts degrade
// to the next tier or the guest's disk, exactly as if the peer vanished.
type RemoteTier struct {
	name  string
	svc   PageService
	owner VMID

	// pools maps local pool id → peer pool id. The map is only touched on
	// pool creation/destruction and on the overflow path — never by the
	// local striped hot path.
	mu    sync.RWMutex
	pools map[PoolID]PoolID

	down atomic.Bool

	puts, putsOK, gets, getsHit atomic.Uint64
	pageFlushes, objectFlushes  atomic.Uint64
	errors                      atomic.Uint64
}

// NewRemoteTier creates a tier shipping overflow pages to svc. owner is the
// VM identity the peer accounts the remote pages under; give every source
// node a distinct owner so a peer serving several nodes can tell their
// footprints apart.
func NewRemoteTier(name string, svc PageService, owner VMID) *RemoteTier {
	if svc == nil {
		panic("tmem: nil page service")
	}
	return &RemoteTier{name: name, svc: svc, owner: owner, pools: make(map[PoolID]PoolID)}
}

// Name implements Tier.
func (r *RemoteTier) Name() string { return r.name }

// Owner returns the VM identity remote pools are created under.
func (r *RemoteTier) Owner() VMID { return r.owner }

// Stats implements Tier.
func (r *RemoteTier) Stats() TierStats {
	return TierStats{
		Puts:          r.puts.Load(),
		PutsOK:        r.putsOK.Load(),
		Gets:          r.gets.Load(),
		GetsHit:       r.getsHit.Load(),
		PageFlushes:   r.pageFlushes.Load(),
		ObjectFlushes: r.objectFlushes.Load(),
		Errors:        r.errors.Load(),
	}
}

// fail records a transport error and permanently disables the tier.
func (r *RemoteTier) fail() Status {
	r.errors.Add(1)
	r.down.Store(true)
	return ETmem
}

// peerPool resolves the peer pool backing a local pool, if one exists.
func (r *RemoteTier) peerPool(local PoolID) (PoolID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.pools[local]
	return p, ok
}

// ensurePool resolves or creates the peer pool backing a local pool.
func (r *RemoteTier) ensurePool(local PoolID, kind PoolKind) (PoolID, bool) {
	if p, ok := r.peerPool(local); ok {
		return p, true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.pools[local]; ok {
		return p, true
	}
	p, err := r.svc.NewPool(r.owner, kind)
	if err != nil {
		r.fail()
		return InvalidPool, false
	}
	r.pools[local] = p
	return p, true
}

// Put implements Tier.
func (r *RemoteTier) Put(key Key, kind PoolKind, data []byte) Status {
	if r.down.Load() {
		return ETmem
	}
	r.puts.Add(1)
	rp, ok := r.ensurePool(key.Pool, kind)
	if !ok {
		return ETmem
	}
	st, err := r.svc.Put(Key{Pool: rp, Object: key.Object, Index: key.Index}, data)
	if err != nil {
		return r.fail()
	}
	if st == STmem {
		r.putsOK.Add(1)
	}
	return st
}

// Get implements Tier.
func (r *RemoteTier) Get(key Key, dst []byte) Status {
	if r.down.Load() {
		return ETmem
	}
	rp, ok := r.peerPool(key.Pool)
	if !ok {
		return ETmem
	}
	r.gets.Add(1)
	rkey := Key{Pool: rp, Object: key.Object, Index: key.Index}
	var st Status
	var err error
	if g, ok := r.svc.(pageGetter); ok {
		st, err = g.GetInto(rkey, dst)
	} else {
		var payload []byte
		st, payload, err = r.svc.Get(rkey)
		if err == nil && st == STmem && dst != nil {
			copy(dst, payload)
		}
	}
	if err != nil {
		return r.fail()
	}
	if st == STmem {
		r.getsHit.Add(1)
	}
	return st
}

// keyScratch recycles the peer-key translation buffers of the batch paths.
var keyScratch = sync.Pool{New: func() any { return new(remoteBatchScratch) }}

type remoteBatchScratch struct {
	keys []Key
	idx  []int32
	dsts [][]byte
	sts  []Status
}

// PutBatch implements BatchTier: the run is translated to peer keys and
// shipped through the service's batch surface in one round trip when the
// transport provides it.
func (r *RemoteTier) PutBatch(keys []Key, kinds []PoolKind, datas [][]byte, sts []Status) {
	fill := func(from int) {
		for i := from; i < len(keys); i++ {
			sts[i] = ETmem
		}
	}
	if r.down.Load() {
		fill(0)
		return
	}
	r.puts.Add(uint64(len(keys)))
	sc := keyScratch.Get().(*remoteBatchScratch)
	defer keyScratch.Put(sc)
	sc.keys = sc.keys[:0]
	for i, k := range keys {
		rp, ok := r.ensurePool(k.Pool, kinds[i])
		if !ok {
			// ensurePool failed => the tier is down; nothing else can land.
			fill(i)
			return
		}
		sc.keys = append(sc.keys, Key{Pool: rp, Object: k.Object, Index: k.Index})
	}
	if bs, ok := r.svc.(BatchPageService); ok {
		if err := bs.PutBatch(sc.keys, datas, sts); err != nil {
			r.fail()
			fill(0)
			return
		}
	} else {
		for i, rk := range sc.keys {
			st, err := r.svc.Put(rk, datas[i])
			if err != nil {
				r.fail()
				fill(i)
				return
			}
			sts[i] = st
		}
	}
	for _, st := range sts {
		if st == STmem {
			r.putsOK.Add(1)
		}
	}
}

// GetBatch implements BatchTier.
func (r *RemoteTier) GetBatch(keys []Key, dsts [][]byte, sts []Status) {
	for i := range sts {
		sts[i] = ETmem
	}
	if r.down.Load() {
		return
	}
	sc := keyScratch.Get().(*remoteBatchScratch)
	defer keyScratch.Put(sc)
	// Registered after Put, so it runs first: never park caller page
	// buffers in the pool, whichever path returns.
	defer func() { clear(sc.dsts) }()
	sc.keys, sc.idx, sc.dsts = sc.keys[:0], sc.idx[:0], sc.dsts[:0]
	for i, k := range keys {
		rp, ok := r.peerPool(k.Pool)
		if !ok {
			continue // never overflowed this pool: miss without a wire trip
		}
		sc.keys = append(sc.keys, Key{Pool: rp, Object: k.Object, Index: k.Index})
		sc.idx = append(sc.idx, int32(i))
		if dsts == nil {
			sc.dsts = append(sc.dsts, nil)
		} else {
			sc.dsts = append(sc.dsts, dsts[i])
		}
	}
	if len(sc.keys) == 0 {
		return
	}
	r.gets.Add(uint64(len(sc.keys)))
	// Default every slot to ETmem (the Status zero value is STmem, so a
	// transport that under-writes must read as a miss, not a false hit).
	sc.sts = sc.sts[:0]
	for range sc.keys {
		sc.sts = append(sc.sts, ETmem)
	}
	if bs, ok := r.svc.(BatchPageService); ok {
		if err := bs.GetBatch(sc.keys, sc.dsts, sc.sts); err != nil {
			r.fail()
			return
		}
	} else {
		g, hasGetInto := r.svc.(pageGetter)
		for j, rk := range sc.keys {
			var st Status
			var err error
			if hasGetInto {
				st, err = g.GetInto(rk, sc.dsts[j])
			} else {
				var payload []byte
				st, payload, err = r.svc.Get(rk)
				if err == nil && st == STmem && sc.dsts[j] != nil {
					copy(sc.dsts[j], payload)
				}
			}
			if err != nil {
				r.fail()
				return
			}
			sc.sts[j] = st
		}
	}
	for j, i := range sc.idx {
		if sc.sts[j] == STmem {
			r.getsHit.Add(1)
		}
		sts[i] = sc.sts[j]
	}
}

// FlushPage implements Tier.
func (r *RemoteTier) FlushPage(key Key) Status {
	if r.down.Load() {
		return ETmem
	}
	rp, ok := r.peerPool(key.Pool)
	if !ok {
		return ETmem
	}
	r.pageFlushes.Add(1)
	st, err := r.svc.FlushPage(Key{Pool: rp, Object: key.Object, Index: key.Index})
	if err != nil {
		return r.fail()
	}
	return st
}

// FlushObject implements Tier.
func (r *RemoteTier) FlushObject(pool PoolID, object ObjectID) (mem.Pages, Status) {
	if r.down.Load() {
		return 0, ETmem
	}
	rp, ok := r.peerPool(pool)
	if !ok {
		return 0, ETmem
	}
	r.objectFlushes.Add(1)
	if c, ok := r.svc.(objectFlushCounter); ok {
		n, st, err := c.FlushObjectCount(rp, object)
		if err != nil {
			return 0, r.fail()
		}
		return n, st
	}
	st, err := r.svc.FlushObject(rp, object)
	if err != nil {
		return 0, r.fail()
	}
	return -1, st // freed count unknown on this transport
}

// DropPool implements Tier.
func (r *RemoteTier) DropPool(pool PoolID) {
	r.mu.Lock()
	rp, ok := r.pools[pool]
	delete(r.pools, pool)
	r.mu.Unlock()
	if !ok || r.down.Load() {
		return
	}
	if _, err := r.svc.DestroyPool(rp); err != nil {
		r.fail()
	}
}

// Loopback adapts a peer backend's local store to PageService for
// in-process clusters: every operation is a direct, synchronous call into
// the peer's striped store, which keeps the simulator deterministic. It
// deliberately bypasses the peer's own tier stack (the ...Local methods),
// so mutually-wired nodes cannot bounce one overflow page back and forth.
type Loopback struct {
	b *Backend
	// gate, when installed, runs on entry to every call; the parallel
	// cluster runtime uses it to block the injecting node until the peer's
	// clock has advanced far enough that the call is safe to apply. See
	// SetGate.
	gate func()
}

// NewLoopback wraps a peer backend.
func NewLoopback(b *Backend) *Loopback {
	if b == nil {
		panic("tmem: nil backend")
	}
	return &Loopback{b: b}
}

// SetGate installs (or, with nil, removes) an entry hook invoked at the
// top of every Loopback call, before the peer's store is touched. The
// parallel cluster runtime gates cross-node injections here; the Loopback
// gate is distinct from the peer Backend's own gate because the two run on
// different goroutines (injector vs owner). Install before traffic starts
// and clear only after it has fully stopped.
func (l *Loopback) SetGate(gate func()) { l.gate = gate }

func (l *Loopback) enter() {
	if l.gate != nil {
		l.gate()
	}
}

// NewPool implements PageService.
func (l *Loopback) NewPool(vm VMID, kind PoolKind) (PoolID, error) {
	l.enter()
	return l.b.newPool(vm, kind), nil
}

// Put implements PageService.
func (l *Loopback) Put(key Key, data []byte) (Status, error) {
	l.enter()
	return l.b.PutLocal(key, data), nil
}

// Get implements PageService, materializing the page payload.
func (l *Loopback) Get(key Key) (Status, []byte, error) {
	l.enter()
	buf := make([]byte, l.b.PageSize())
	st := l.b.GetLocal(key, buf)
	if st != STmem {
		return st, nil, nil
	}
	return st, buf, nil
}

// GetInto implements pageGetter: the caller's buffer goes straight to the
// peer's store, so a nil dst (presence-only, the simulator's meta-store
// path) moves zero bytes and a data-store cluster still gets real contents.
func (l *Loopback) GetInto(key Key, dst []byte) (Status, error) {
	l.enter()
	return l.b.GetLocal(key, dst), nil
}

// PutBatch implements BatchPageService: the peer's stripe-grouped batch
// path absorbs the whole overflow run with one lock acquisition per stripe.
func (l *Loopback) PutBatch(keys []Key, datas [][]byte, sts []Status) error {
	l.enter()
	l.b.PutBatchLocal(keys, datas, sts)
	return nil
}

// GetBatch implements BatchPageService.
func (l *Loopback) GetBatch(keys []Key, dsts [][]byte, sts []Status) error {
	l.enter()
	l.b.GetBatchLocal(keys, dsts, sts)
	return nil
}

// FlushPage implements PageService.
func (l *Loopback) FlushPage(key Key) (Status, error) {
	l.enter()
	return l.b.FlushPageLocal(key), nil
}

// FlushObject implements PageService.
func (l *Loopback) FlushObject(pool PoolID, object ObjectID) (Status, error) {
	l.enter()
	_, st := l.b.FlushObjectLocal(pool, object)
	return st, nil
}

// FlushObjectCount implements objectFlushCounter.
func (l *Loopback) FlushObjectCount(pool PoolID, object ObjectID) (mem.Pages, Status, error) {
	l.enter()
	n, st := l.b.FlushObjectLocal(pool, object)
	return n, st, nil
}

// DestroyPool implements PageService.
func (l *Loopback) DestroyPool(pool PoolID) (Status, error) {
	l.enter()
	if err := l.b.destroyPool(pool); err != nil {
		return EInval, nil
	}
	return STmem, nil
}

// Compile-time interface checks.
var (
	_ Tier             = (*RemoteTier)(nil)
	_ BatchTier        = (*RemoteTier)(nil)
	_ PageService      = (*Loopback)(nil)
	_ BatchPageService = (*Loopback)(nil)
)
