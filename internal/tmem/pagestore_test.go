package tmem

import (
	"bytes"
	"testing"

	"smartmem/internal/mem"
)

func testStoreBasics(t *testing.T, s PageStore) {
	t.Helper()
	if s.PageSize() != testPage {
		t.Fatalf("PageSize = %d", s.PageSize())
	}
	h1, err := s.Save(fill(0x01))
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	h2, err := s.Save(nil) // zero page
	if err != nil {
		t.Fatalf("Save nil: %v", err)
	}
	if h1 == h2 {
		t.Error("handles collide")
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	if err := s.Drop(h1); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if err := s.Drop(h1); err == nil {
		t.Error("double Drop not detected")
	}
	if err := s.Load(h1, make([]byte, testPage)); err == nil {
		t.Error("Load after Drop not detected")
	}
	dst := make([]byte, testPage)
	if err := s.Load(h2, dst); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("zero page not zero")
		}
	}
	// Oversized page rejected.
	if _, err := s.Save(make([]byte, testPage+1)); err == nil {
		t.Error("oversized Save not rejected")
	}
	// Short destination rejected.
	if err := s.Load(h2, make([]byte, 8)); err == nil {
		t.Error("short-dst Load not rejected")
	}
}

func TestDataStoreBasics(t *testing.T)     { testStoreBasics(t, NewDataStore(testPage)) }
func TestMetaStoreBasics(t *testing.T)     { testStoreBasics(t, NewMetaStore(testPage)) }
func TestCompressStoreBasics(t *testing.T) { testStoreBasics(t, NewCompressStore(testPage)) }

func TestDataStoreCopiesOnSave(t *testing.T) {
	s := NewDataStore(testPage)
	src := fill(0x7F)
	h, _ := s.Save(src)
	src[0] = 0xFF // mutate caller buffer after Save
	dst := make([]byte, testPage)
	if err := s.Load(h, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0x7F {
		t.Error("store aliases caller buffer instead of copying")
	}
}

func TestCompressStoreRoundTripAndSavings(t *testing.T) {
	s := NewCompressStore(testPage)
	// Highly compressible page.
	h, err := s.Save(fill(0x00))
	if err != nil {
		t.Fatal(err)
	}
	if s.Footprint() >= int64(testPage) {
		t.Errorf("compressible page footprint = %d, want < %d", s.Footprint(), testPage)
	}
	if s.BytesSaved() <= 0 {
		t.Error("no savings recorded for compressible page")
	}
	dst := make([]byte, testPage)
	if err := s.Load(h, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, make([]byte, testPage)) {
		t.Error("decompressed page differs")
	}
	if err := s.Drop(h); err != nil {
		t.Fatal(err)
	}
	if s.BytesSaved() != 0 {
		t.Errorf("savings after drop = %d, want 0", s.BytesSaved())
	}
}

func TestCompressStoreIncompressibleFallback(t *testing.T) {
	s := NewCompressStore(testPage)
	// Pseudo-random page: zlib cannot shrink it; store must fall back raw.
	page := make([]byte, testPage)
	x := uint64(0x123456789)
	for i := range page {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		page[i] = byte(x)
	}
	h, err := s.Save(page)
	if err != nil {
		t.Fatal(err)
	}
	if s.Footprint() != int64(testPage) {
		t.Errorf("incompressible footprint = %d, want %d (raw fallback)", s.Footprint(), testPage)
	}
	dst := make([]byte, testPage)
	if err := s.Load(h, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, page) {
		t.Error("raw-fallback page differs")
	}
}

func TestMetaStoreFootprintIsSmall(t *testing.T) {
	s := NewMetaStore(testPage)
	for i := 0; i < 1000; i++ {
		if _, err := s.Save(nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.Footprint() >= 1000*int64(testPage)/10 {
		t.Errorf("meta store footprint %d not << page data", s.Footprint())
	}
	if s.Count() != 1000 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestStoreRejectsBadPageSize(t *testing.T) {
	for _, mk := range []func(){
		func() { NewDataStore(0) },
		func() { NewMetaStore(-1) },
		func() { NewCompressStore(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad page size did not panic")
				}
			}()
			mk()
		}()
	}
}

func BenchmarkBackendPut(b *testing.B) {
	be := NewBackend(mem.PagesIn(1<<30, 4096), NewMetaStore(testPage))
	pool := be.NewPool(1, Persistent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := Key{Pool: pool, Object: ObjectID(i >> 16), Index: PageIndex(i & 0xFFFF)}
		if be.Put(key, nil) != STmem {
			// Recycle to keep capacity available.
			be.FlushPage(key)
			be.Put(key, nil)
		}
	}
}

func BenchmarkBackendPutGetFlush(b *testing.B) {
	be := NewBackend(1024, NewMetaStore(testPage))
	pool := be.NewPool(1, Persistent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := Key{Pool: pool, Object: 1, Index: PageIndex(i % 512)}
		be.Put(key, nil)
		be.Get(key, nil)
		be.FlushPage(key)
	}
}

func BenchmarkPageStoreBackends(b *testing.B) {
	page := fill(0x3C)
	for _, bc := range []struct {
		name string
		mk   func() PageStore
	}{
		{"meta", func() PageStore { return NewMetaStore(testPage) }},
		{"data", func() PageStore { return NewDataStore(testPage) }},
		{"compress", func() PageStore { return NewCompressStore(testPage) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := bc.mk()
			dst := make([]byte, testPage)
			b.SetBytes(testPage)
			for i := 0; i < b.N; i++ {
				h, err := s.Save(page)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Load(h, dst); err != nil {
					b.Fatal(err)
				}
				if err := s.Drop(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
