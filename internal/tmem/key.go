// Package tmem implements Transcendent Memory: a hypervisor-side key–value
// store for guest pages with synchronous put/get/flush operations, per-VM
// capacity accounting, and target enforcement as described by Algorithm 1
// of the SmarTmem paper (and, originally, by Magenheimer et al., "Transcendent
// Memory and Linux", OLS 2009).
//
// Every tmem page is identified by a three-element tuple: the pool
// identifier, a 64-bit object identifier and a 32-bit page index — the
// "key" (paper §II-B). Pools are created per VM and are either persistent
// (frontswap: pages must survive until flushed) or ephemeral (cleancache:
// the hypervisor may drop pages at any time, e.g. under pressure).
package tmem

import (
	"encoding/binary"
	"fmt"
)

// PoolID identifies a tmem pool within the node. Pool identifiers are
// assigned by the hypervisor at pool-creation time and are never reused.
type PoolID int32

// InvalidPool is returned by NewPool on failure.
const InvalidPool PoolID = -1

// ObjectID is the 64-bit object identifier a guest kernel derives from a
// page's address (for frontswap: the swap type; for cleancache: the inode).
type ObjectID uint64

// PageIndex is the 32-bit page offset within an object (for frontswap: the
// swap slot; for cleancache: the page's index in the file).
type PageIndex uint32

// Key is the full three-element tuple identifying one tmem page.
type Key struct {
	Pool   PoolID
	Object ObjectID
	Index  PageIndex
}

func (k Key) String() string {
	return fmt.Sprintf("tmem:%d/%d/%d", k.Pool, k.Object, k.Index)
}

// hash returns a well-mixed 64-bit hash of the full key tuple, used by the
// sharded backend to assign keys to lock stripes. The page index feeds the
// mix so the sequential indices frontswap and cleancache generate spread
// uniformly across shards instead of clustering per object.
func (k Key) hash() uint64 {
	x := uint64(uint32(k.Pool))<<32 | uint64(k.Index)
	x ^= mix64(uint64(k.Object))
	return mix64(x)
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keyWireSize is the encoded size of a Key: 4 + 8 + 4 bytes.
const keyWireSize = 16

// AppendWire appends the big-endian wire encoding of k to b. The encoding
// is used by the socket transport and the kvd daemon protocol.
func (k Key) AppendWire(b []byte) []byte {
	var buf [keyWireSize]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(k.Pool))
	binary.BigEndian.PutUint64(buf[4:12], uint64(k.Object))
	binary.BigEndian.PutUint32(buf[12:16], uint32(k.Index))
	return append(b, buf[:]...)
}

// KeyFromWire decodes a Key previously encoded with AppendWire.
func KeyFromWire(b []byte) (Key, error) {
	if len(b) < keyWireSize {
		return Key{}, fmt.Errorf("tmem: key encoding too short: %d bytes", len(b))
	}
	return Key{
		Pool:   PoolID(binary.BigEndian.Uint32(b[0:4])),
		Object: ObjectID(binary.BigEndian.Uint64(b[4:12])),
		Index:  PageIndex(binary.BigEndian.Uint32(b[12:16])),
	}, nil
}

// PoolKind distinguishes the two tmem modes of operation (paper §I, §II-B).
type PoolKind int

const (
	// Persistent pools back frontswap: a successful put guarantees the
	// page can be retrieved until it is flushed.
	Persistent PoolKind = iota
	// Ephemeral pools back cleancache: the hypervisor may silently drop
	// pages, so a get may miss even after a successful put.
	Ephemeral
)

func (k PoolKind) String() string {
	switch k {
	case Persistent:
		return "persistent"
	case Ephemeral:
		return "ephemeral"
	default:
		return fmt.Sprintf("PoolKind(%d)", int(k))
	}
}

// Status is the result of a tmem operation, mirroring the hypervisor's
// return values in Table I of the paper.
type Status int

const (
	// STmem indicates the operation succeeded (paper: S_TMEM).
	STmem Status = 0
	// ETmem indicates a put (or other op) cannot succeed — over target or
	// no free tmem (paper: E_TMEM).
	ETmem Status = -1
	// EInval indicates a malformed request (unknown pool, wrong VM).
	EInval Status = -2
)

func (s Status) String() string {
	switch s {
	case STmem:
		return "S_TMEM"
	case ETmem:
		return "E_TMEM"
	case EInval:
		return "E_INVAL"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// VMID identifies a virtual machine within the node (Xen domain id).
type VMID int
