package tmem

import (
	"encoding/binary"
	"fmt"
	"sort"

	"smartmem/internal/mem"
)

// VMStat is one VM's entry in a statistics sample. Field names map onto the
// paper's Table I:
//
//	ID              memstats.vm[i].vm_id
//	PutsTotal       memstats.vm[i].puts_total   (this sampling interval)
//	PutsSucc        memstats.vm[i].puts_succ    (this sampling interval)
//	TmemUsed        vm_data_hyp[id].tmem_used
//	MMTarget        vm_data_hyp[id].mm_target
//	CumulPutsFailed cumulative failed puts (drives reconf-static, Alg. 3)
type VMStat struct {
	ID              VMID
	PutsTotal       uint64
	PutsSucc        uint64
	TmemUsed        mem.Pages
	MMTarget        mem.Pages
	CumulPutsFailed uint64
}

// FailedPuts returns the failed puts in the sampling interval
// (Algorithm 4, line 8: puts_total - puts_succ).
func (v VMStat) FailedPuts() uint64 {
	if v.PutsSucc > v.PutsTotal {
		return 0
	}
	return v.PutsTotal - v.PutsSucc
}

// MemStats is the statistics message the hypervisor publishes each sampling
// interval (Table I: memstats). The MM's policies consume exactly this.
type MemStats struct {
	// IntervalSeq numbers samples from 1.
	IntervalSeq uint64
	// TotalTmem is node_info.total_tmem in pages.
	TotalTmem mem.Pages
	// FreeTmem is node_info.free_tmem at sampling time.
	FreeTmem mem.Pages
	// EffectiveTmem is the capacity policies should allocate against when a
	// capacity-amplifying tier (the compressed tier) is attached: TotalTmem
	// plus the extra pages the tier can absorb at its observed compression
	// ratio. Zero means "no amplification" — read through EffectiveTotal.
	EffectiveTmem mem.Pages
	// VMs holds one entry per registered VM, ascending by ID
	// (memstats.vm_count == len(VMs)).
	VMs []VMStat
}

// VMCount returns memstats.vm_count.
func (m MemStats) VMCount() int { return len(m.VMs) }

// EffectiveTotal returns the tmem capacity policies should divide among
// VMs: EffectiveTmem when a capacity amplifier reported one, else
// TotalTmem. With compression off the two are identical, so policies
// reading EffectiveTotal behave byte-for-byte like the raw-frame versions.
func (m MemStats) EffectiveTotal() mem.Pages {
	if m.EffectiveTmem > m.TotalTmem {
		return m.EffectiveTmem
	}
	return m.TotalTmem
}

// Find returns the stats entry for a VM, if present.
func (m MemStats) Find(id VMID) (VMStat, bool) {
	for _, v := range m.VMs {
		if v.ID == id {
			return v, true
		}
	}
	return VMStat{}, false
}

// TargetUpdate is one element of the MM's policy output (Table I: mm_out[i]).
type TargetUpdate struct {
	ID       VMID      // mm_out[i].vm_id
	MMTarget mem.Pages // mm_out[i].mm_target
}

// capacityAmplifier is an optional Tier refinement: a tier that can absorb
// pages beyond the node's raw frame count (CompressedTier) reports how many
// extra pages it can hold, and Sample folds the amplified total into
// MemStats.EffectiveTmem.
type capacityAmplifier interface {
	EffectiveExtraPages() mem.Pages
}

// Sample snapshots the statistics of Table I and resets the interval
// counters (puts_total, puts_succ), beginning the next sampling interval.
// The hypervisor invokes this once per second of virtual time and pushes
// the result through the TKM to the MM.
//
// The snapshot is assembled by aggregating the striped atomic counters —
// it takes no shard lock, so sampling never stalls the put/get/flush hot
// path. Each interval counter is drained with an atomic swap; on a
// concurrently mutated backend the per-VM values are each exact while the
// sample as a whole is only approximately simultaneous, which is the same
// tolerance the paper's 1 Hz VIRQ snapshot has.
func (b *Backend) Sample(seq uint64) MemStats {
	b.enter()
	b.vmMu.RLock()
	accounts := make([]*vmAccount, 0, len(b.vms))
	for _, a := range b.vms {
		accounts = append(accounts, a)
	}
	b.vmMu.RUnlock()

	ms := MemStats{
		IntervalSeq: seq,
		TotalTmem:   b.totalPages,
		FreeTmem:    b.FreePages(),
		VMs:         make([]VMStat, 0, len(accounts)),
	}
	// Fold in capacity amplification from attached tiers (the compressed
	// tier): policies then allocate against compressed capacity, not raw
	// frames. tiersView is the immutable no-lock snapshot.
	for _, t := range b.tiersView {
		if amp, ok := t.(capacityAmplifier); ok {
			if extra := amp.EffectiveExtraPages(); extra > 0 {
				ms.EffectiveTmem = ms.TotalTmem + extra
			}
		}
	}
	for _, a := range accounts {
		ms.VMs = append(ms.VMs, VMStat{
			ID:              a.id,
			PutsTotal:       a.putsTotal.Swap(0),
			PutsSucc:        a.putsSucc.Swap(0),
			TmemUsed:        mem.Pages(a.tmemUsed.Load()),
			MMTarget:        a.target(),
			CumulPutsFailed: a.cumulPutsFailed(),
		})
	}
	sort.Slice(ms.VMs, func(i, j int) bool { return ms.VMs[i].ID < ms.VMs[j].ID })
	return ms
}

// ApplyTargets installs a batch of MM policy outputs.
func (b *Backend) ApplyTargets(targets []TargetUpdate) {
	for _, t := range targets {
		b.SetTarget(t.ID, t.MMTarget)
	}
}

// OpCounts is a cumulative per-VM operation summary for reports and tests.
type OpCounts struct {
	ID         VMID
	PutsTotal  uint64
	PutsSucc   uint64
	GetsTotal  uint64
	GetsHit    uint64
	Flushes    uint64
	EphEvicted uint64
}

// Counts returns cumulative operation counts for a VM.
func (b *Backend) Counts(vm VMID) (OpCounts, bool) {
	b.enter()
	a := b.account(vm)
	if a == nil {
		return OpCounts{}, false
	}
	return OpCounts{
		ID:         a.id,
		PutsTotal:  a.cumulPutsTotal.Load(),
		PutsSucc:   a.cumulPutsSucc.Load(),
		GetsTotal:  a.cumulGetsTotal.Load(),
		GetsHit:    a.cumulGetsHit.Load(),
		Flushes:    a.cumulFlushes.Load(),
		EphEvicted: a.cumulEphEvicted.Load(),
	}, true
}

// --- Wire encoding (used by the TKM socket transport) ---

// AppendWire appends a length-delimited big-endian encoding of m.
func (m MemStats) AppendWire(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, m.IntervalSeq)
	b = binary.BigEndian.AppendUint64(b, uint64(m.TotalTmem))
	b = binary.BigEndian.AppendUint64(b, uint64(m.FreeTmem))
	b = binary.BigEndian.AppendUint64(b, uint64(m.EffectiveTmem))
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.VMs)))
	for _, v := range m.VMs {
		b = binary.BigEndian.AppendUint32(b, uint32(v.ID))
		b = binary.BigEndian.AppendUint64(b, v.PutsTotal)
		b = binary.BigEndian.AppendUint64(b, v.PutsSucc)
		b = binary.BigEndian.AppendUint64(b, uint64(v.TmemUsed))
		b = binary.BigEndian.AppendUint64(b, uint64(v.MMTarget))
		b = binary.BigEndian.AppendUint64(b, v.CumulPutsFailed)
	}
	return b
}

const memStatsHeaderSize = 8 + 8 + 8 + 8 + 4
const vmStatWireSize = 4 + 8*5

// MemStatsFromWire decodes a MemStats encoded with AppendWire and returns
// the number of bytes consumed.
func MemStatsFromWire(b []byte) (MemStats, int, error) {
	if len(b) < memStatsHeaderSize {
		return MemStats{}, 0, fmt.Errorf("tmem: memstats encoding too short: %d bytes", len(b))
	}
	m := MemStats{
		IntervalSeq:   binary.BigEndian.Uint64(b[0:8]),
		TotalTmem:     mem.Pages(binary.BigEndian.Uint64(b[8:16])),
		FreeTmem:      mem.Pages(binary.BigEndian.Uint64(b[16:24])),
		EffectiveTmem: mem.Pages(binary.BigEndian.Uint64(b[24:32])),
	}
	n := int(binary.BigEndian.Uint32(b[32:36]))
	off := memStatsHeaderSize
	if len(b) < off+n*vmStatWireSize {
		return MemStats{}, 0, fmt.Errorf("tmem: memstats encoding truncated: want %d VM entries", n)
	}
	m.VMs = make([]VMStat, n)
	for i := 0; i < n; i++ {
		v := &m.VMs[i]
		v.ID = VMID(binary.BigEndian.Uint32(b[off : off+4]))
		v.PutsTotal = binary.BigEndian.Uint64(b[off+4 : off+12])
		v.PutsSucc = binary.BigEndian.Uint64(b[off+12 : off+20])
		v.TmemUsed = mem.Pages(binary.BigEndian.Uint64(b[off+20 : off+28]))
		v.MMTarget = mem.Pages(binary.BigEndian.Uint64(b[off+28 : off+36]))
		v.CumulPutsFailed = binary.BigEndian.Uint64(b[off+36 : off+44])
		off += vmStatWireSize
	}
	return m, off, nil
}

// AppendTargetsWire encodes a policy-output batch (mm_out) for the wire.
func AppendTargetsWire(b []byte, ts []TargetUpdate) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(ts)))
	for _, t := range ts {
		b = binary.BigEndian.AppendUint32(b, uint32(t.ID))
		b = binary.BigEndian.AppendUint64(b, uint64(t.MMTarget))
	}
	return b
}

// TargetsFromWire decodes a batch encoded by AppendTargetsWire and returns
// the number of bytes consumed.
func TargetsFromWire(b []byte) ([]TargetUpdate, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("tmem: targets encoding too short")
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	const rec = 4 + 8
	if len(b) < 4+n*rec {
		return nil, 0, fmt.Errorf("tmem: targets encoding truncated: want %d entries", n)
	}
	ts := make([]TargetUpdate, n)
	off := 4
	for i := 0; i < n; i++ {
		ts[i].ID = VMID(binary.BigEndian.Uint32(b[off : off+4]))
		ts[i].MMTarget = mem.Pages(binary.BigEndian.Uint64(b[off+4 : off+12]))
		off += rec
	}
	return ts, off, nil
}
