package tmem

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
)

// Handle refers to a page's contents inside a PageStore.
type Handle int64

// NoHandle is the invalid handle sentinel.
const NoHandle Handle = -1

// PageStore abstracts how page *contents* are retained. Capacity accounting
// (frames, targets) is independent of the backend: one stored page always
// consumes one tmem frame, as in Xen. The backend choice controls the host
// memory actually spent holding the bytes:
//
//   - DataStore: full page copies — the faithful Xen behaviour, used by the
//     kvd daemon and data-integrity tests.
//   - MetaStore: presence only — used by the simulator, where page contents
//     are irrelevant and gigabytes of simulated tmem must not consume
//     gigabytes of real memory.
//   - CompressStore: zlib-compressed copies — models compressed tmem
//     backends (zcache / Ex-tmem-style related work, paper §VI).
type PageStore interface {
	// PageSize returns the page size in bytes this store was built for.
	PageSize() int
	// Save stores a copy of data (nil means a zero page) and returns its
	// handle. len(data) must be <= PageSize.
	Save(data []byte) (Handle, error)
	// Load copies a previously saved page into dst (len >= PageSize).
	Load(h Handle, dst []byte) error
	// Drop releases the page behind h.
	Drop(h Handle) error
	// Footprint returns the approximate bytes of host memory retained.
	Footprint() int64
	// Count returns the number of live handles.
	Count() int
}

// --- DataStore ---

// DataStore keeps verbatim page copies, matching Xen's page-copy interface.
// Page buffers are slab-managed: Drop pushes the buffer onto a free list and
// Save pops from it, so a store cycling at a steady page count performs no
// allocation after its high-water mark (DESIGN.md §9). The free list is
// bounded to the store's own high-water mark by construction — it only ever
// holds buffers the store previously handed out.
type DataStore struct {
	pageSize int
	pages    map[Handle][]byte
	next     Handle
	free     [][]byte // slab free list of page-size buffers
}

// NewDataStore creates a store of full page copies.
func NewDataStore(pageSize int) *DataStore {
	if pageSize <= 0 {
		panic("tmem: non-positive page size")
	}
	return &DataStore{pageSize: pageSize, pages: make(map[Handle][]byte)}
}

// PageSize implements PageStore.
func (s *DataStore) PageSize() int { return s.pageSize }

// Save implements PageStore.
func (s *DataStore) Save(data []byte) (Handle, error) {
	if len(data) > s.pageSize {
		return NoHandle, fmt.Errorf("tmem: page data %d bytes exceeds page size %d", len(data), s.pageSize)
	}
	var p []byte
	if n := len(s.free); n > 0 {
		p = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		clear(p[copy(p, data):]) // recycled buffer: zero the tail
	} else {
		p = make([]byte, s.pageSize)
		copy(p, data)
	}
	h := s.next
	s.next++
	s.pages[h] = p
	return h, nil
}

// Load implements PageStore.
func (s *DataStore) Load(h Handle, dst []byte) error {
	p, ok := s.pages[h]
	if !ok {
		return fmt.Errorf("tmem: load of unknown handle %d", h)
	}
	if len(dst) < s.pageSize {
		return fmt.Errorf("tmem: destination %d bytes smaller than page size %d", len(dst), s.pageSize)
	}
	copy(dst, p)
	return nil
}

// Drop implements PageStore.
func (s *DataStore) Drop(h Handle) error {
	p, ok := s.pages[h]
	if !ok {
		return fmt.Errorf("tmem: drop of unknown handle %d", h)
	}
	delete(s.pages, h)
	s.free = append(s.free, p)
	return nil
}

// Footprint implements PageStore. Live pages only; buffers parked on the
// slab free list are reported separately by Reserved.
func (s *DataStore) Footprint() int64 { return int64(len(s.pages)) * int64(s.pageSize) }

// Reserved returns the bytes held on the slab free list, awaiting reuse.
func (s *DataStore) Reserved() int64 { return int64(len(s.free)) * int64(s.pageSize) }

// Count implements PageStore.
func (s *DataStore) Count() int { return len(s.pages) }

// --- MetaStore ---

// MetaStore records only page presence. Loads fill dst with zeros. It is
// the simulator's backend: what the policies observe (counts, targets,
// successes/failures) is identical to DataStore's behaviour.
type MetaStore struct {
	pageSize int
	live     map[Handle]struct{}
	next     Handle
}

// NewMetaStore creates a presence-only store.
func NewMetaStore(pageSize int) *MetaStore {
	if pageSize <= 0 {
		panic("tmem: non-positive page size")
	}
	return &MetaStore{pageSize: pageSize, live: make(map[Handle]struct{})}
}

// PageSize implements PageStore.
func (s *MetaStore) PageSize() int { return s.pageSize }

// Save implements PageStore.
func (s *MetaStore) Save(data []byte) (Handle, error) {
	if len(data) > s.pageSize {
		return NoHandle, fmt.Errorf("tmem: page data %d bytes exceeds page size %d", len(data), s.pageSize)
	}
	h := s.next
	s.next++
	s.live[h] = struct{}{}
	return h, nil
}

// Load implements PageStore.
func (s *MetaStore) Load(h Handle, dst []byte) error {
	if _, ok := s.live[h]; !ok {
		return fmt.Errorf("tmem: load of unknown handle %d", h)
	}
	if len(dst) < s.pageSize {
		return fmt.Errorf("tmem: destination %d bytes smaller than page size %d", len(dst), s.pageSize)
	}
	for i := range dst[:s.pageSize] {
		dst[i] = 0
	}
	return nil
}

// Drop implements PageStore.
func (s *MetaStore) Drop(h Handle) error {
	if _, ok := s.live[h]; !ok {
		return fmt.Errorf("tmem: drop of unknown handle %d", h)
	}
	delete(s.live, h)
	return nil
}

// Footprint implements PageStore.
func (s *MetaStore) Footprint() int64 { return int64(len(s.live)) * 16 } // bookkeeping only

// Count implements PageStore.
func (s *MetaStore) Count() int { return len(s.live) }

// --- CompressStore ---

// CompressStore keeps zlib-compressed page copies, modelling compressed
// tmem backends (zcache). Pages that compress poorly are kept verbatim.
type CompressStore struct {
	pageSize int
	pages    map[Handle][]byte // compressed representation
	raw      map[Handle]bool   // true => stored uncompressed
	next     Handle
	saved    int64 // bytes saved vs verbatim storage (diagnostic)
}

// NewCompressStore creates a compressing store.
func NewCompressStore(pageSize int) *CompressStore {
	if pageSize <= 0 {
		panic("tmem: non-positive page size")
	}
	return &CompressStore{
		pageSize: pageSize,
		pages:    make(map[Handle][]byte),
		raw:      make(map[Handle]bool),
	}
}

// PageSize implements PageStore.
func (s *CompressStore) PageSize() int { return s.pageSize }

// Save implements PageStore.
func (s *CompressStore) Save(data []byte) (Handle, error) {
	if len(data) > s.pageSize {
		return NoHandle, fmt.Errorf("tmem: page data %d bytes exceeds page size %d", len(data), s.pageSize)
	}
	page := make([]byte, s.pageSize)
	copy(page, data)

	var buf bytes.Buffer
	zw := zlib.NewWriter(&buf)
	if _, err := zw.Write(page); err != nil {
		return NoHandle, fmt.Errorf("tmem: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return NoHandle, fmt.Errorf("tmem: compress close: %w", err)
	}

	h := s.next
	s.next++
	if buf.Len() < s.pageSize {
		s.pages[h] = append([]byte(nil), buf.Bytes()...)
		s.raw[h] = false
		s.saved += int64(s.pageSize - buf.Len())
	} else {
		s.pages[h] = page
		s.raw[h] = true
	}
	return h, nil
}

// Load implements PageStore.
func (s *CompressStore) Load(h Handle, dst []byte) error {
	p, ok := s.pages[h]
	if !ok {
		return fmt.Errorf("tmem: load of unknown handle %d", h)
	}
	if len(dst) < s.pageSize {
		return fmt.Errorf("tmem: destination %d bytes smaller than page size %d", len(dst), s.pageSize)
	}
	if s.raw[h] {
		copy(dst, p)
		return nil
	}
	zr, err := zlib.NewReader(bytes.NewReader(p))
	if err != nil {
		return fmt.Errorf("tmem: decompress: %w", err)
	}
	defer zr.Close()
	if _, err := io.ReadFull(zr, dst[:s.pageSize]); err != nil {
		return fmt.Errorf("tmem: decompress read: %w", err)
	}
	return nil
}

// Drop implements PageStore.
func (s *CompressStore) Drop(h Handle) error {
	p, ok := s.pages[h]
	if !ok {
		return fmt.Errorf("tmem: drop of unknown handle %d", h)
	}
	if !s.raw[h] {
		s.saved -= int64(s.pageSize - len(p))
	}
	delete(s.pages, h)
	delete(s.raw, h)
	return nil
}

// Footprint implements PageStore.
func (s *CompressStore) Footprint() int64 {
	var n int64
	for _, p := range s.pages {
		n += int64(len(p))
	}
	return n
}

// Count implements PageStore.
func (s *CompressStore) Count() int { return len(s.pages) }

// BytesSaved returns the cumulative bytes saved by compression.
func (s *CompressStore) BytesSaved() int64 { return s.saved }

// Compile-time interface checks.
var (
	_ PageStore = (*DataStore)(nil)
	_ PageStore = (*MetaStore)(nil)
	_ PageStore = (*CompressStore)(nil)
)
