//go:build race

package tmem

// raceEnabled disables allocation-count assertions: the race detector
// defeats sync.Pool's per-P fast path, so alloc budgets don't hold.
const raceEnabled = true
