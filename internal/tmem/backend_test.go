package tmem

import (
	"bytes"
	"testing"
	"testing/quick"

	"smartmem/internal/mem"
)

const testPage = 4096

func newTestBackend(pages mem.Pages) *Backend {
	return NewBackend(pages, NewDataStore(testPage))
}

func fill(b byte) []byte {
	p := make([]byte, testPage)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestPutGetRoundTrip(t *testing.T) {
	b := newTestBackend(16)
	pool := b.NewPool(1, Persistent)
	key := Key{Pool: pool, Object: 7, Index: 3}

	if st := b.Put(key, fill(0xAB)); st != STmem {
		t.Fatalf("Put = %v, want S_TMEM", st)
	}
	dst := make([]byte, testPage)
	if st := b.Get(key, dst); st != STmem {
		t.Fatalf("Get = %v, want S_TMEM", st)
	}
	if !bytes.Equal(dst, fill(0xAB)) {
		t.Error("Get returned wrong page contents")
	}
	// Persistent get is non-destructive.
	if st := b.Get(key, dst); st != STmem {
		t.Errorf("second Get = %v, want S_TMEM (persistent pools keep pages)", st)
	}
	if b.UsedBy(1) != 1 {
		t.Errorf("UsedBy = %d, want 1", b.UsedBy(1))
	}
}

func TestGetMissAndUnknownPool(t *testing.T) {
	b := newTestBackend(16)
	pool := b.NewPool(1, Persistent)
	if st := b.Get(Key{Pool: pool, Object: 1, Index: 1}, nil); st != ETmem {
		t.Errorf("Get miss = %v, want E_TMEM", st)
	}
	if st := b.Get(Key{Pool: 99, Object: 1, Index: 1}, nil); st != EInval {
		t.Errorf("Get unknown pool = %v, want E_INVAL", st)
	}
	if st := b.Put(Key{Pool: 99}, nil); st != EInval {
		t.Errorf("Put unknown pool = %v, want E_INVAL", st)
	}
	if st := b.FlushPage(Key{Pool: 99}); st != EInval {
		t.Errorf("Flush unknown pool = %v, want E_INVAL", st)
	}
}

func TestFlushPageFreesCapacity(t *testing.T) {
	b := newTestBackend(4)
	pool := b.NewPool(1, Persistent)
	key := Key{Pool: pool, Object: 1, Index: 1}
	b.Put(key, nil)
	if b.FreePages() != 3 {
		t.Fatalf("free = %d, want 3", b.FreePages())
	}
	if st := b.FlushPage(key); st != STmem {
		t.Fatalf("Flush = %v", st)
	}
	if b.FreePages() != 4 {
		t.Errorf("free after flush = %d, want 4", b.FreePages())
	}
	if b.UsedBy(1) != 0 {
		t.Errorf("used after flush = %d, want 0", b.UsedBy(1))
	}
	if st := b.FlushPage(key); st != ETmem {
		t.Errorf("double flush = %v, want E_TMEM", st)
	}
	if st := b.Get(key, nil); st != ETmem {
		t.Errorf("Get after flush = %v, want E_TMEM", st)
	}
}

func TestFlushObject(t *testing.T) {
	b := newTestBackend(64)
	pool := b.NewPool(1, Persistent)
	for i := 0; i < 5; i++ {
		b.Put(Key{Pool: pool, Object: 10, Index: PageIndex(i)}, nil)
	}
	b.Put(Key{Pool: pool, Object: 11, Index: 0}, nil)

	n, st := b.FlushObject(pool, 10)
	if st != STmem || n != 5 {
		t.Fatalf("FlushObject = (%d, %v), want (5, S_TMEM)", n, st)
	}
	if b.UsedBy(1) != 1 {
		t.Errorf("used = %d, want 1 (object 11 survives)", b.UsedBy(1))
	}
	if _, st := b.FlushObject(pool, 10); st != ETmem {
		t.Errorf("second FlushObject = %v, want E_TMEM", st)
	}
	if _, st := b.FlushObject(99, 10); st != EInval {
		t.Errorf("FlushObject unknown pool = %v, want E_INVAL", st)
	}
}

// Algorithm 1 line 7: puts fail with E_TMEM when no free tmem remains.
func TestPutFailsWhenExhausted(t *testing.T) {
	b := newTestBackend(3)
	pool := b.NewPool(1, Persistent)
	for i := 0; i < 3; i++ {
		if st := b.Put(Key{Pool: pool, Object: 1, Index: PageIndex(i)}, nil); st != STmem {
			t.Fatalf("Put %d = %v", i, st)
		}
	}
	if st := b.Put(Key{Pool: pool, Object: 1, Index: 9}, nil); st != ETmem {
		t.Errorf("Put on full node = %v, want E_TMEM", st)
	}
	// Counters: 4 total, 3 succeeded.
	c, _ := b.Counts(1)
	if c.PutsTotal != 4 || c.PutsSucc != 3 {
		t.Errorf("counts = %+v, want total 4 succ 3", c)
	}
}

// Algorithm 1 line 5: puts fail once tmem_used reaches mm_target, even with
// free capacity available.
func TestPutEnforcesTarget(t *testing.T) {
	b := newTestBackend(100)
	pool := b.NewPool(1, Persistent)
	b.SetTarget(1, 2)
	ok := 0
	for i := 0; i < 5; i++ {
		if b.Put(Key{Pool: pool, Object: 1, Index: PageIndex(i)}, nil) == STmem {
			ok++
		}
	}
	if ok != 2 {
		t.Errorf("puts succeeded = %d, want 2 (target)", ok)
	}
	if b.FreePages() != 98 {
		t.Errorf("free = %d, want 98", b.FreePages())
	}
	// Raising the target lets the VM proceed.
	b.SetTarget(1, 4)
	if st := b.Put(Key{Pool: pool, Object: 1, Index: 9}, nil); st != STmem {
		t.Errorf("Put after target raise = %v, want S_TMEM", st)
	}
}

// Paper §III-B: a VM may hold more tmem than a newly lowered target; it
// cannot acquire more, but existing pages are not reclaimed.
func TestTargetLoweredBelowUsage(t *testing.T) {
	b := newTestBackend(100)
	pool := b.NewPool(1, Persistent)
	for i := 0; i < 10; i++ {
		b.Put(Key{Pool: pool, Object: 1, Index: PageIndex(i)}, nil)
	}
	b.SetTarget(1, 4)
	if got := b.UsedBy(1); got != 10 {
		t.Errorf("used after target cut = %d, want 10 (no forced reclaim)", got)
	}
	if st := b.Put(Key{Pool: pool, Object: 1, Index: 99}, nil); st != ETmem {
		t.Errorf("Put over lowered target = %v, want E_TMEM", st)
	}
	// Release pages below target; puts work again.
	for i := 0; i < 7; i++ {
		b.FlushPage(Key{Pool: pool, Object: 1, Index: PageIndex(i)})
	}
	if st := b.Put(Key{Pool: pool, Object: 1, Index: 99}, nil); st != STmem {
		t.Errorf("Put after releasing below target = %v, want S_TMEM", st)
	}
}

func TestDuplicatePutReplacesInPlace(t *testing.T) {
	b := newTestBackend(4)
	pool := b.NewPool(1, Persistent)
	key := Key{Pool: pool, Object: 2, Index: 2}
	b.Put(key, fill(0x11))
	if st := b.Put(key, fill(0x22)); st != STmem {
		t.Fatalf("duplicate Put = %v", st)
	}
	if b.UsedBy(1) != 1 {
		t.Errorf("used = %d, want 1 (duplicate put must not consume a frame)", b.UsedBy(1))
	}
	dst := make([]byte, testPage)
	b.Get(key, dst)
	if !bytes.Equal(dst, fill(0x22)) {
		t.Error("duplicate put did not replace contents")
	}
}

func TestEphemeralGetIsDestructive(t *testing.T) {
	b := newTestBackend(8)
	pool := b.NewPool(1, Ephemeral)
	key := Key{Pool: pool, Object: 1, Index: 1}
	b.Put(key, fill(0x55))
	dst := make([]byte, testPage)
	if st := b.Get(key, dst); st != STmem {
		t.Fatalf("Get = %v", st)
	}
	if st := b.Get(key, dst); st != ETmem {
		t.Errorf("second ephemeral Get = %v, want E_TMEM (destructive)", st)
	}
	if b.UsedBy(1) != 0 {
		t.Errorf("used = %d, want 0 after destructive get", b.UsedBy(1))
	}
}

// Ephemeral pages are evicted (oldest first) to satisfy new puts when the
// node is full — cleancache pages are expendable.
func TestEphemeralEvictionUnderPressure(t *testing.T) {
	b := newTestBackend(4)
	eph := b.NewPool(1, Ephemeral)
	per := b.NewPool(2, Persistent)
	for i := 0; i < 4; i++ {
		if st := b.Put(Key{Pool: eph, Object: 1, Index: PageIndex(i)}, nil); st != STmem {
			t.Fatalf("eph Put %d = %v", i, st)
		}
	}
	// Node is full; a persistent put must evict the oldest ephemeral page.
	if st := b.Put(Key{Pool: per, Object: 1, Index: 0}, nil); st != STmem {
		t.Fatalf("persistent Put on full node = %v, want S_TMEM via eviction", st)
	}
	if b.Contains(Key{Pool: eph, Object: 1, Index: 0}) {
		t.Error("oldest ephemeral page not evicted")
	}
	if !b.Contains(Key{Pool: eph, Object: 1, Index: 1}) {
		t.Error("wrong ephemeral page evicted")
	}
	c, _ := b.Counts(1)
	if c.EphEvicted != 1 {
		t.Errorf("EphEvicted = %d, want 1", c.EphEvicted)
	}
	// Once no ephemeral pages remain, puts fail again.
	for i := 1; i < 4; i++ {
		b.Put(Key{Pool: per, Object: 1, Index: PageIndex(i)}, nil)
	}
	if st := b.Put(Key{Pool: per, Object: 2, Index: 0}, nil); st != ETmem {
		t.Errorf("Put with nothing evictable = %v, want E_TMEM", st)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDestroyPoolReleasesEverything(t *testing.T) {
	b := newTestBackend(16)
	p1 := b.NewPool(1, Persistent)
	p2 := b.NewPool(1, Ephemeral)
	for i := 0; i < 4; i++ {
		b.Put(Key{Pool: p1, Object: 1, Index: PageIndex(i)}, nil)
		b.Put(Key{Pool: p2, Object: 1, Index: PageIndex(i)}, nil)
	}
	if err := b.DestroyPool(p2); err != nil {
		t.Fatal(err)
	}
	if b.UsedBy(1) != 4 {
		t.Errorf("used = %d, want 4", b.UsedBy(1))
	}
	if err := b.DestroyPool(p2); err == nil {
		t.Error("double destroy not rejected")
	}
	b.UnregisterVM(1)
	if b.FreePages() != 16 {
		t.Errorf("free after unregister = %d, want 16", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSampleResetsIntervalCounters(t *testing.T) {
	b := newTestBackend(2)
	pool := b.NewPool(1, Persistent)
	b.Put(Key{Pool: pool, Object: 1, Index: 0}, nil)
	b.Put(Key{Pool: pool, Object: 1, Index: 1}, nil)
	b.Put(Key{Pool: pool, Object: 1, Index: 2}, nil) // fails: full

	s1 := b.Sample(1)
	v, ok := s1.Find(1)
	if !ok {
		t.Fatal("VM 1 missing from sample")
	}
	if v.PutsTotal != 3 || v.PutsSucc != 2 || v.FailedPuts() != 1 {
		t.Errorf("interval counters = %+v", v)
	}
	if v.TmemUsed != 2 || s1.FreeTmem != 0 || s1.TotalTmem != 2 {
		t.Errorf("capacity stats = %+v free=%d total=%d", v, s1.FreeTmem, s1.TotalTmem)
	}
	if v.CumulPutsFailed != 1 {
		t.Errorf("cumul failed = %d, want 1", v.CumulPutsFailed)
	}

	// Second sample: interval counters reset, cumulative retained.
	s2 := b.Sample(2)
	v2, _ := s2.Find(1)
	if v2.PutsTotal != 0 || v2.PutsSucc != 0 {
		t.Errorf("counters not reset: %+v", v2)
	}
	if v2.CumulPutsFailed != 1 {
		t.Errorf("cumulative failed lost: %d", v2.CumulPutsFailed)
	}
	if s2.IntervalSeq != 2 || s1.VMCount() != 1 {
		t.Errorf("seq/vmcount wrong: %+v", s2)
	}
}

func TestSampleOrdersVMsByID(t *testing.T) {
	b := newTestBackend(8)
	for _, vm := range []VMID{3, 1, 2} {
		b.RegisterVM(vm)
	}
	s := b.Sample(1)
	if s.VMCount() != 3 {
		t.Fatalf("vm count = %d", s.VMCount())
	}
	for i, want := range []VMID{1, 2, 3} {
		if s.VMs[i].ID != want {
			t.Errorf("VMs[%d].ID = %d, want %d", i, s.VMs[i].ID, want)
		}
	}
	if _, ok := s.Find(99); ok {
		t.Error("Find(99) succeeded for unregistered VM")
	}
}

func TestApplyTargetsAndDefaults(t *testing.T) {
	b := newTestBackend(100)
	b.RegisterVM(1)
	if b.Target(1) != Unlimited {
		t.Errorf("fresh VM target = %d, want Unlimited (greedy default)", b.Target(1))
	}
	b.ApplyTargets([]TargetUpdate{{ID: 1, MMTarget: 10}, {ID: 2, MMTarget: 20}})
	if b.Target(1) != 10 || b.Target(2) != 20 {
		t.Errorf("targets = %d, %d", b.Target(1), b.Target(2))
	}
	b.SetTarget(1, -5)
	if b.Target(1) != 0 {
		t.Errorf("negative target clamped to %d, want 0", b.Target(1))
	}
	if b.Target(99) != 0 {
		t.Errorf("unknown VM target = %d, want 0", b.Target(99))
	}
	vms := b.VMs()
	if len(vms) != 2 || vms[0] != 1 || vms[1] != 2 {
		t.Errorf("VMs() = %v", vms)
	}
}

func TestStatusAndKindStrings(t *testing.T) {
	if STmem.String() != "S_TMEM" || ETmem.String() != "E_TMEM" || EInval.String() != "E_INVAL" {
		t.Error("status strings wrong")
	}
	if Status(7).String() == "" || PoolKind(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
	if Persistent.String() != "persistent" || Ephemeral.String() != "ephemeral" {
		t.Error("kind strings wrong")
	}
	k := Key{Pool: 1, Object: 2, Index: 3}
	if k.String() != "tmem:1/2/3" {
		t.Errorf("key string = %q", k.String())
	}
}

func TestKeyWireRoundTrip(t *testing.T) {
	f := func(pool int32, obj uint64, idx uint32) bool {
		k := Key{Pool: PoolID(pool), Object: ObjectID(obj), Index: PageIndex(idx)}
		got, err := KeyFromWire(k.AppendWire(nil))
		return err == nil && got == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := KeyFromWire([]byte{1, 2}); err == nil {
		t.Error("short key decode did not fail")
	}
}

func TestMemStatsWireRoundTrip(t *testing.T) {
	m := MemStats{
		IntervalSeq: 42,
		TotalTmem:   262144,
		FreeTmem:    1000,
		VMs: []VMStat{
			{ID: 1, PutsTotal: 10, PutsSucc: 7, TmemUsed: 100, MMTarget: 5000, CumulPutsFailed: 3},
			{ID: 2, PutsTotal: 0, PutsSucc: 0, TmemUsed: 0, MMTarget: Unlimited, CumulPutsFailed: 0},
		},
	}
	enc := m.AppendWire(nil)
	got, n, err := MemStatsFromWire(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d bytes", n, len(enc))
	}
	if got.IntervalSeq != m.IntervalSeq || got.TotalTmem != m.TotalTmem || got.FreeTmem != m.FreeTmem {
		t.Errorf("header mismatch: %+v", got)
	}
	for i := range m.VMs {
		if got.VMs[i] != m.VMs[i] {
			t.Errorf("VMs[%d] = %+v, want %+v", i, got.VMs[i], m.VMs[i])
		}
	}
	if _, _, err := MemStatsFromWire(enc[:10]); err == nil {
		t.Error("truncated decode did not fail")
	}
	if _, _, err := MemStatsFromWire(enc[:memStatsHeaderSize+3]); err == nil {
		t.Error("truncated VM entries did not fail")
	}
}

func TestTargetsWireRoundTrip(t *testing.T) {
	ts := []TargetUpdate{{ID: 1, MMTarget: 100}, {ID: 7, MMTarget: Unlimited}}
	enc := AppendTargetsWire(nil, ts)
	got, n, err := TargetsFromWire(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: %v, n=%d", err, n)
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Errorf("targets[%d] = %+v, want %+v", i, got[i], ts[i])
		}
	}
	if _, _, err := TargetsFromWire(nil); err == nil {
		t.Error("empty decode did not fail")
	}
	if _, _, err := TargetsFromWire(enc[:5]); err == nil {
		t.Error("truncated decode did not fail")
	}
}

func TestVMStatFailedPuts(t *testing.T) {
	v := VMStat{PutsTotal: 10, PutsSucc: 4}
	if v.FailedPuts() != 6 {
		t.Errorf("FailedPuts = %d, want 6", v.FailedPuts())
	}
	v = VMStat{PutsTotal: 3, PutsSucc: 5} // defensive: corrupt input
	if v.FailedPuts() != 0 {
		t.Errorf("FailedPuts on corrupt input = %d, want 0", v.FailedPuts())
	}
}

// Property: arbitrary operation sequences never break capacity accounting.
func TestBackendInvariantProperty(t *testing.T) {
	f := func(ops []byte) bool {
		b := NewBackend(32, NewMetaStore(testPage))
		pools := []PoolID{
			b.NewPool(1, Persistent),
			b.NewPool(2, Persistent),
			b.NewPool(1, Ephemeral),
		}
		for i, op := range ops {
			key := Key{
				Pool:   pools[int(op)%len(pools)],
				Object: ObjectID(op % 4),
				Index:  PageIndex(op % 16),
			}
			switch (int(op) + i) % 5 {
			case 0, 1:
				b.Put(key, nil)
			case 2:
				b.Get(key, nil)
			case 3:
				b.FlushPage(key)
			case 4:
				b.FlushObject(key.Pool, key.Object)
			}
			if b.CheckInvariants() != nil {
				return false
			}
		}
		// Total used never exceeds capacity.
		return b.FreePages() >= 0 && b.FreePages() <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: what you put is exactly what you get, for every store backend.
func TestPutGetDataIntegrityProperty(t *testing.T) {
	stores := map[string]func() PageStore{
		"data":     func() PageStore { return NewDataStore(testPage) },
		"compress": func() PageStore { return NewCompressStore(testPage) },
	}
	for name, mk := range stores {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			f := func(payload []byte, obj uint64, idx uint32) bool {
				if len(payload) > testPage {
					payload = payload[:testPage]
				}
				b := NewBackend(8, mk())
				pool := b.NewPool(1, Persistent)
				key := Key{Pool: pool, Object: ObjectID(obj), Index: PageIndex(idx)}
				if b.Put(key, payload) != STmem {
					return false
				}
				dst := make([]byte, testPage)
				if b.Get(key, dst) != STmem {
					return false
				}
				want := make([]byte, testPage)
				copy(want, payload)
				return bytes.Equal(dst, want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}
