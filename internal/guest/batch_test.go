package guest

import (
	"fmt"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
)

// The batched access spine (accessRun, fileTmemRun) must be observably
// indistinguishable from the per-page Touch/touchFile loop it replaced:
// same stats, same backend counters, same virtual end time, same yield
// points. These differential tests drive the same access pattern through
// both spines on identically seeded rigs and require exact equality —
// the property the byte-identical goldens rest on.

// accessPerPage is the pre-batching reference implementation of Access.
func accessPerPage(k *Kernel, p *sim.Proc, first PageID, count, stride mem.Pages, write bool) {
	pg := first
	for i := mem.Pages(0); i < count; i++ {
		k.Touch(p, pg, write)
		pg += PageID(stride)
	}
}

// readFilePerPage is the pre-batching reference implementation of ReadFile.
func readFilePerPage(k *Kernel, p *sim.Proc, obj tmem.ObjectID, idx tmem.PageIndex, count mem.Pages) {
	for i := mem.Pages(0); i < count; i++ {
		k.touchFile(p, fileKey{obj, idx + tmem.PageIndex(i)})
	}
}

// driver runs a workload against a fresh rig and reports everything
// observable: guest stats, end time, and the backend's cumulative counts.
func driveDiff(t *testing.T, tmemPages, ram mem.Pages, cleancache bool, nonExcl bool,
	body func(k *Kernel, p *sim.Proc, perPage bool)) (perPage, batched string) {
	t.Helper()
	once := func(usePerPage bool) string {
		r := newRig(tmemPages)
		var g *Kernel
		if nonExcl {
			g = r.nonExclGuest(1, ram)
		} else {
			g = r.guest(1, ram, true, cleancache)
		}
		end := r.run(func(p *sim.Proc) { body(g, p, usePerPage) })
		c, _ := r.be.Counts(1)
		return fmt.Sprintf("end=%v stats=%+v counts=%+v free=%d resident=%d",
			end, g.Stats(), c, r.be.FreePages(), g.Resident())
	}
	return once(true), once(false)
}

func TestAccessBatchedMatchesPerPage(t *testing.T) {
	cases := []struct {
		name     string
		tmem     mem.Pages
		ram      mem.Pages
		nonExcl  bool
		scenario func(k *Kernel, p *sim.Proc, perPage bool)
	}{
		{
			// Working set twice RAM: every sweep refaults half the set
			// through frontswap — long tmem-hit runs.
			name: "frontswap-thrash-exclusive", tmem: 4096, ram: 128,
			scenario: func(k *Kernel, p *sim.Proc, perPage bool) {
				for pass := 0; pass < 6; pass++ {
					if perPage {
						accessPerPage(k, p, 0, 256, 1, pass%2 == 0)
					} else {
						k.Access(p, 0, 256, pass%2 == 0)
					}
				}
			},
		},
		{
			name: "frontswap-thrash-non-exclusive", tmem: 4096, ram: 128, nonExcl: true,
			scenario: func(k *Kernel, p *sim.Proc, perPage bool) {
				for pass := 0; pass < 6; pass++ {
					// Read-only passes batch under non-exclusive gets;
					// write passes exercise the fallback.
					write := pass == 3
					if perPage {
						accessPerPage(k, p, 0, 300, 1, write)
					} else {
						k.Access(p, 0, 300, write)
					}
				}
			},
		},
		{
			// tmem smaller than the overflow: puts fail, pages go to disk,
			// runs are broken by mixed inTmem/onDisk state.
			name: "tmem-pressure-mixed-copies", tmem: 64, ram: 128,
			scenario: func(k *Kernel, p *sim.Proc, perPage bool) {
				for pass := 0; pass < 5; pass++ {
					if perPage {
						accessPerPage(k, p, 0, 320, 1, pass == 0)
					} else {
						k.Access(p, 0, 320, pass == 0)
					}
				}
			},
		},
		{
			// Strided refault stream: batching without adjacency.
			name: "strided-refaults", tmem: 4096, ram: 100,
			scenario: func(k *Kernel, p *sim.Proc, perPage bool) {
				for pass := 0; pass < 5; pass++ {
					if perPage {
						accessPerPage(k, p, 0, 80, 7, false)
					} else {
						k.AccessStride(p, 0, 80, 7, false)
					}
				}
			},
		},
		{
			// Tiny RAM: runs bounded by free frames, evictions interleave.
			name: "eviction-bounded-runs", tmem: 4096, ram: 10,
			scenario: func(k *Kernel, p *sim.Proc, perPage bool) {
				for pass := 0; pass < 4; pass++ {
					if perPage {
						accessPerPage(k, p, 0, 64, 1, false)
					} else {
						k.Access(p, 0, 64, false)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, got := driveDiff(t, tc.tmem, tc.ram, false, tc.nonExcl, tc.scenario)
			if ref != got {
				t.Errorf("batched spine diverged from per-page:\n per-page: %s\n  batched: %s", ref, got)
			}
		})
	}
}

func TestReadFileBatchedMatchesPerPage(t *testing.T) {
	cases := []struct {
		name string
		tmem mem.Pages
		ram  mem.Pages
	}{
		// Large tmem: cleancache absorbs the whole file, pure hit runs.
		{name: "cleancache-hits", tmem: 4096, ram: 96},
		// Small tmem: ephemeral evictions produce mid-run misses, so the
		// stop-on-miss path and the disk fallback interleave.
		{name: "cleancache-misses", tmem: 48, ram: 96},
		// Tiny RAM bounds runs by free frames.
		{name: "tight-ram", tmem: 256, ram: 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scenario := func(k *Kernel, p *sim.Proc, perPage bool) {
				for pass := 0; pass < 6; pass++ {
					if perPage {
						readFilePerPage(k, p, 7, 0, 240)
					} else {
						k.ReadFile(p, 7, 0, 240)
					}
					// Anonymous traffic in between churns the shared LRU.
					if perPage {
						accessPerPage(k, p, 0, 32, 1, true)
					} else {
						k.Access(p, 0, 32, true)
					}
				}
			}
			ref, got := driveDiff(t, tc.tmem, tc.ram, true, false, scenario)
			if ref != got {
				t.Errorf("batched spine diverged from per-page:\n per-page: %s\n  batched: %s", ref, got)
			}
		})
	}
}

// TestAccessSteadyStateZeroAlloc pins the allocation budget of the full
// guest→backend hot path: a warm refault loop (evict/put + refault/get
// through the batched spine) must not allocate — pooled sim events, pooled
// store entries, slab pages and reused scratch buffers all compose here.
func TestAccessSteadyStateZeroAlloc(t *testing.T) {
	r := newRig(4096)
	g := r.guest(1, 64, true, false)
	r.k.Spawn("w", func(p *sim.Proc) {
		for {
			g.Access(p, 0, 128, false) // WS 2x RAM: steady put/get churn
		}
	})
	for i := 0; i < 256; i++ {
		if !r.k.Step() {
			t.Fatal("simulation drained")
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !r.k.Step() {
			t.Fatal("simulation drained")
		}
	})
	if allocs != 0 {
		t.Errorf("guest access steady state = %v allocs/op, want 0", allocs)
	}
	r.k.KillAll()
}

// TestBatchRunsEngage pins that the batched paths actually take effect in
// the states they were built for (evicted pages refaulted into free RAM):
// a spine that silently always fell back to per-page would pass the
// differential tests vacuously.
func TestBatchRunsEngage(t *testing.T) {
	r := newRig(4096)
	g := r.guest(1, 128, true, false)
	r.run(func(p *sim.Proc) {
		g.Access(p, 0, 96, true)    // A resident
		g.Access(p, 1000, 96, true) // B evicts A into frontswap
		g.Free(p, 1000, 96)         // B freed: RAM headroom opens up
		if free := g.UsablePages() - g.Resident(); free < 64 {
			t.Fatalf("setup: only %d free frames", free)
		}
		n := g.anonTmemRun(p, 0, 96, 1, false)
		if n < 2 {
			t.Errorf("anonTmemRun served %d pages, want a real run", n)
		}
	})
}

func TestFileBatchRunsEngage(t *testing.T) {
	r := newRig(4096)
	g := r.guest(1, 128, true, true)
	r.run(func(p *sim.Proc) {
		g.ReadFile(p, 7, 0, 96)     // file resident
		g.Access(p, 1000, 96, true) // anon pressure evicts file pages to cleancache
		g.Free(p, 1000, 96)         // headroom opens up
		n := g.fileTmemRun(p, 7, 0, 96)
		if n < 2 {
			t.Errorf("fileTmemRun served %d pages, want a real run", n)
		}
	})
}

// Refault-into-headroom is the state where batching engages; run it
// differentially too.
func TestAccessBatchedMatchesPerPageWithHeadroom(t *testing.T) {
	scenario := func(k *Kernel, p *sim.Proc, perPage bool) {
		acc := func(first PageID, count mem.Pages, write bool) {
			if perPage {
				accessPerPage(k, p, first, count, 1, write)
			} else {
				k.Access(p, first, count, write)
			}
		}
		for pass := 0; pass < 4; pass++ {
			acc(0, 96, true)
			acc(1000, 96, true)
			k.Free(p, 1000, 96)
			acc(0, 96, false) // long frontswap-hit runs into free RAM
		}
	}
	ref, got := driveDiff(t, 4096, 128, false, false, scenario)
	if ref != got {
		t.Errorf("batched spine diverged from per-page:\n per-page: %s\n  batched: %s", ref, got)
	}
}
