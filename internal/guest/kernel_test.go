package guest

import (
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/vdisk"
)

const pgSize = 4096

type rig struct {
	k    *sim.Kernel
	be   *tmem.Backend
	host *vdisk.Host
}

func newRig(tmemPages mem.Pages) *rig {
	k := sim.NewKernel(1)
	var be *tmem.Backend
	if tmemPages > 0 {
		be = tmem.NewBackend(tmemPages, tmem.NewMetaStore(pgSize))
	}
	return &rig{
		k:    k,
		be:   be,
		host: vdisk.NewHost(3*sim.Millisecond, 3*sim.Millisecond, 0, nil),
	}
}

func (r *rig) guest(vm tmem.VMID, ram mem.Pages, frontswap, cleancache bool) *Kernel {
	return NewKernel(Config{
		VM:         vm,
		RAMPages:   ram,
		Backend:    r.be,
		Frontswap:  frontswap,
		Cleancache: cleancache,
		Disk:       vdisk.NewDisk("d", r.host),
	})
}

// nonExclGuest builds a guest with swap-cache (non-exclusive) gets.
func (r *rig) nonExclGuest(vm tmem.VMID, ram mem.Pages) *Kernel {
	return NewKernel(Config{
		VM:               vm,
		RAMPages:         ram,
		Backend:          r.be,
		Frontswap:        true,
		NonExclusiveGets: true,
		Disk:             vdisk.NewDisk("d", r.host),
	})
}

// run executes body as a simulated process and returns its virtual runtime.
func (r *rig) run(body func(p *sim.Proc)) sim.Time {
	var end sim.Time
	r.k.Spawn("w", func(p *sim.Proc) {
		body(p)
		end = p.Now()
	})
	r.k.Run()
	return end
}

func TestTouchWithinRAMIsCheap(t *testing.T) {
	r := newRig(0)
	g := r.guest(1, 100, false, false)
	r.run(func(p *sim.Proc) {
		g.Access(p, 0, 50, true)
	})
	s := g.Stats()
	if s.MinorFaults != 50 {
		t.Errorf("minor faults = %d, want 50", s.MinorFaults)
	}
	if s.Evictions != 0 || s.DiskReads != 0 {
		t.Errorf("unexpected evictions/disk: %+v", s)
	}
	if g.Resident() != 50 {
		t.Errorf("resident = %d, want 50", g.Resident())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestEvictionGoesToFrontswap(t *testing.T) {
	r := newRig(1000)
	g := r.guest(1, 10, true, false)
	r.run(func(p *sim.Proc) {
		g.Access(p, 0, 25, true) // 15 dirty pages must be evicted
	})
	s := g.Stats()
	if s.Evictions != 15 {
		t.Errorf("evictions = %d, want 15", s.Evictions)
	}
	if s.PutsOK != 15 || s.PutsFailed != 0 {
		t.Errorf("puts = %d ok, %d failed", s.PutsOK, s.PutsFailed)
	}
	if got := r.be.UsedBy(1); got != 15 {
		t.Errorf("backend used = %d, want 15", got)
	}
	if s.DiskReads != 0 || s.DiskWrites != 0 {
		t.Errorf("disk traffic without need: %+v", s)
	}
}

// Exclusive gets (the default, matching the Xen frontswap driver): a load
// consumes the tmem copy and leaves the page dirty.
func TestExclusiveGetConsumesCopy(t *testing.T) {
	r := newRig(1000)
	g := r.guest(1, 10, true, false)
	r.run(func(p *sim.Proc) {
		g.Access(p, 0, 20, true) // pages 0..9 evicted to tmem
		if used := r.be.UsedBy(1); used != 10 {
			t.Fatalf("backend used = %d, want 10", used)
		}
		g.Access(p, 0, 5, false) // refault 0..4
		s := g.Stats()
		if s.TmemHits != 5 {
			t.Errorf("tmem hits = %d, want 5", s.TmemHits)
		}
		if s.TmemFlushes != 5 {
			t.Errorf("flushes = %d, want 5 (exclusive gets invalidate)", s.TmemFlushes)
		}
		// 10 evicted initially, 5 consumed by exclusive gets, 5 new puts
		// for the evicted victims: 10 again.
		if used := r.be.UsedBy(1); used != 10 {
			t.Errorf("backend used = %d, want 10", used)
		}
	})
}

// Swap-cache semantics (non-exclusive gets, ablation mode): a frontswap
// load keeps the tmem copy valid; the clean page's later eviction is free;
// a write invalidates the copy.
func TestRefaultKeepsCopyUntilDirtied(t *testing.T) {
	r := newRig(1000)
	g := r.nonExclGuest(1, 10)
	r.run(func(p *sim.Proc) {
		g.Access(p, 0, 20, true) // pages 0..9 evicted to tmem
		used := r.be.UsedBy(1)
		if used != 10 {
			t.Fatalf("backend used = %d, want 10", used)
		}

		// Read pages 0..4 back: tmem hits, copies stay valid.
		g.Access(p, 0, 5, false)
		if g.Stats().TmemHits != 5 {
			t.Errorf("tmem hits = %d, want 5", g.Stats().TmemHits)
		}
		if g.Stats().TmemFlushes != 0 {
			t.Errorf("flushes = %d, want 0 (reads keep copies)", g.Stats().TmemFlushes)
		}
		// 5 evictions happened to make room; the victims (10..14) were
		// dirty, so 5 new puts: usage = 10 - 0 + 5.
		if got := r.be.UsedBy(1); got != 15 {
			t.Errorf("backend used = %d, want 15", got)
		}

		// Re-evicting the clean pages 0..4 costs nothing. Resident is now
		// {15..19, 0..4}; reheat 15..19 so the clean pages become the LRU
		// victims, then fault in 5 fresh pages.
		g.Access(p, 15, 5, false)
		prevPuts := g.Stats().PutsOK
		g.Access(p, 100, 5, false) // reads of fresh pages (minor faults)
		if g.Stats().PutsOK != prevPuts {
			t.Errorf("clean re-eviction issued puts")
		}
		if g.Stats().CleanEvicts != 5 {
			t.Errorf("clean evicts = %d, want 5", g.Stats().CleanEvicts)
		}

		// Writing a tmem-backed page invalidates its copy.
		preFlush := g.Stats().TmemFlushes
		usedBefore := r.be.UsedBy(1)
		g.Touch(p, 0, true) // refault (get) then dirty (flush)
		if g.Stats().TmemFlushes != preFlush+1 {
			t.Errorf("write did not flush the stale copy")
		}
		if got := r.be.UsedBy(1); got >= usedBefore+1 {
			t.Errorf("backend used grew on invalidation: %d -> %d", usedBefore, got)
		}
	})
	if err := r.be.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNoTmemFallsBackToDisk(t *testing.T) {
	r := newRig(0)
	g := r.guest(1, 10, false, false)
	rt := r.run(func(p *sim.Proc) {
		g.Access(p, 0, 20, true)
		g.Access(p, 0, 5, false)
	})
	s := g.Stats()
	if s.PutsOK != 0 {
		t.Error("puts succeeded without tmem")
	}
	if s.DiskReads != 5 {
		t.Errorf("disk reads = %d, want 5", s.DiskReads)
	}
	// 10 initial swap-outs plus 5 more when the refaults evicted dirty
	// victims (pages 10..14, written once and never stored).
	if s.DiskWrites != 15 {
		t.Errorf("disk writes = %d, want 15", s.DiskWrites)
	}
	if rt < sim.Time(20*3*sim.Millisecond) {
		t.Errorf("runtime %v too short for 20 disk ops", rt)
	}
}

func TestPutFailureFallsBackToDisk(t *testing.T) {
	r := newRig(5) // tiny tmem: only 5 pages fit
	g := r.guest(1, 10, true, false)
	r.run(func(p *sim.Proc) {
		g.Access(p, 0, 30, true) // 20 evictions, only 5 puts can succeed
	})
	s := g.Stats()
	if s.PutsOK != 5 {
		t.Errorf("puts ok = %d, want 5", s.PutsOK)
	}
	if s.PutsFailed != 15 {
		t.Errorf("puts failed = %d, want 15", s.PutsFailed)
	}
	if s.DiskWrites != 15 {
		t.Errorf("disk writes = %d, want 15", s.DiskWrites)
	}
	c, _ := r.be.Counts(1)
	if c.PutsTotal != 20 || c.PutsSucc != 5 {
		t.Errorf("backend counts = %+v", c)
	}
}

func TestTargetEnforcementReachesGuest(t *testing.T) {
	r := newRig(1000)
	r.be.RegisterVM(1)
	r.be.SetTarget(1, 3)
	g := r.guest(1, 10, true, false)
	r.run(func(p *sim.Proc) {
		g.Access(p, 0, 20, true)
	})
	if got := r.be.UsedBy(1); got != 3 {
		t.Errorf("backend used = %d, want 3 (target-capped)", got)
	}
	if g.Stats().PutsFailed != 7 {
		t.Errorf("failed puts = %d, want 7", g.Stats().PutsFailed)
	}
}

func TestLRUEvictsColdestPage(t *testing.T) {
	r := newRig(1000)
	g := r.guest(1, 3, true, false)
	r.run(func(p *sim.Proc) {
		g.Touch(p, 100, true)
		g.Touch(p, 101, true)
		g.Touch(p, 102, true)
		g.Touch(p, 100, false) // reheat page 100
		g.Touch(p, 103, true)  // evicts 101, the coldest
		if r.be.UsedBy(1) != 1 {
			t.Errorf("used = %d, want 1", r.be.UsedBy(1))
		}
		pre := g.Stats().TmemHits
		g.Touch(p, 100, false)
		if g.Stats().TmemHits != pre {
			t.Error("page 100 unexpectedly non-resident")
		}
		g.Touch(p, 101, false)
		if g.Stats().TmemHits != pre+1 {
			t.Error("page 101 not served from tmem")
		}
	})
}

func TestFreeReleasesEverything(t *testing.T) {
	r := newRig(1000)
	g := r.guest(1, 10, true, false)
	r.run(func(p *sim.Proc) {
		g.Access(p, 0, 25, true) // 15 in tmem, 10 resident
		g.Free(p, 0, 25)
	})
	s := g.Stats()
	if s.FreedPages != 25 {
		t.Errorf("freed = %d, want 25", s.FreedPages)
	}
	if g.Resident() != 0 {
		t.Errorf("resident = %d, want 0", g.Resident())
	}
	if got := r.be.UsedBy(1); got != 0 {
		t.Errorf("backend used = %d, want 0 after Free", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Freeing unknown pages is harmless.
	r.run(func(p *sim.Proc) { g.Free(p, 1000, 10) })
}

func TestCleancachePath(t *testing.T) {
	r := newRig(1000)
	g := r.guest(1, 10, false, true)
	r.run(func(p *sim.Proc) {
		g.ReadFile(p, 7, 0, 20) // 10 evicted clean → cleancache
		s := g.Stats()
		if s.PutsOK != 10 {
			t.Errorf("cleancache puts = %d, want 10", s.PutsOK)
		}
		if r.be.UsedBy(1) != 10 {
			t.Errorf("backend used = %d, want 10", r.be.UsedBy(1))
		}
		preReads := s.DiskReads
		g.ReadFile(p, 7, 0, 5) // refault from cleancache, no disk
		s = g.Stats()
		if s.TmemHits != 5 {
			t.Errorf("cleancache hits = %d, want 5", s.TmemHits)
		}
		if s.DiskReads != preReads {
			t.Error("cleancache refault went to disk")
		}
		// Ephemeral gets are exclusive: the copies are gone.
		if r.be.UsedBy(1) != 10-5+5 { // 5 consumed, but refaults evicted 5 others that re-put
			// Eviction victims were other clean file pages that re-put:
			// exact count depends on LRU; just check invariants instead.
			_ = s
		}
	})
	if err := r.be.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCleancacheMissFallsBackToDisk(t *testing.T) {
	r := newRig(4) // tiny: ephemeral pages will be evicted by pressure
	g := r.guest(1, 4, true, true)
	r.run(func(p *sim.Proc) {
		g.ReadFile(p, 7, 0, 8) // clean pages offered to cleancache
		// Hammer anonymous memory so persistent puts evict the ephemeral
		// cleancache pages.
		g.Access(p, 0, 8, true)
		preMiss := g.Stats().TmemMisses
		g.ReadFile(p, 7, 0, 4)
		if g.Stats().TmemMisses <= preMiss {
			t.Error("expected cleancache misses after ephemeral eviction")
		}
	})
	if err := r.be.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCleanDropWithoutCleancache(t *testing.T) {
	r := newRig(0)
	g := r.guest(1, 5, false, false)
	r.run(func(p *sim.Proc) {
		g.ReadFile(p, 3, 0, 10)
	})
	s := g.Stats()
	if s.CleanEvicts != 5 {
		t.Errorf("clean evicts = %d, want 5", s.CleanEvicts)
	}
	if s.PutsOK != 0 || s.PutsFailed != 0 {
		t.Error("tmem puts happened without tmem")
	}
}

func TestTmemFasterThanDisk(t *testing.T) {
	mk := func(tmemPages mem.Pages, fs bool) sim.Time {
		r := newRig(tmemPages)
		g := r.guest(1, 10, fs, false)
		return r.run(func(p *sim.Proc) {
			for rep := 0; rep < 5; rep++ {
				g.Access(p, 0, 30, true)
			}
		})
	}
	withTmem := mk(1000, true)
	noTmem := mk(0, false)
	if withTmem*5 > noTmem {
		t.Errorf("tmem run %v not ≫ faster than disk run %v", withTmem, noTmem)
	}
}

func TestIdleAdvancesTime(t *testing.T) {
	r := newRig(0)
	g := r.guest(1, 10, false, false)
	rt := r.run(func(p *sim.Proc) {
		g.Idle(p, 5*sim.Second)
	})
	if rt != sim.Time(5*sim.Second) {
		t.Errorf("runtime = %v, want 5s", rt)
	}
}

func TestAccessStride(t *testing.T) {
	r := newRig(1000)
	g := r.guest(1, 100, true, false)
	r.run(func(p *sim.Proc) {
		g.AccessStride(p, 0, 10, 16, true)
	})
	if g.Stats().MinorFaults != 10 {
		t.Errorf("minor faults = %d, want 10 distinct strided pages", g.Stats().MinorFaults)
	}
}

func TestShutdownReleasesTmem(t *testing.T) {
	r := newRig(100)
	g := r.guest(1, 5, true, false)
	r.run(func(p *sim.Proc) {
		g.Access(p, 0, 20, true)
	})
	if r.be.UsedBy(1) == 0 {
		t.Fatal("test needs tmem usage")
	}
	g.Shutdown()
	if r.be.FreePages() != 100 {
		t.Errorf("free after shutdown = %d, want 100", r.be.FreePages())
	}
}

func TestConfigValidation(t *testing.T) {
	host := vdisk.NewHost(sim.Millisecond, sim.Millisecond, 0, nil)
	disk := vdisk.NewDisk("d", host)
	for name, cfg := range map[string]Config{
		"zero RAM":        {RAMPages: 0, Disk: disk},
		"reserve too big": {RAMPages: 10, KernelReserve: 10, Disk: disk},
		"nil disk":        {RAMPages: 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewKernel(cfg)
		}()
	}
}

func TestKernelReserveShrinksUsable(t *testing.T) {
	r := newRig(0)
	g := NewKernel(Config{
		VM: 1, RAMPages: 100, KernelReserve: 30,
		Disk: vdisk.NewDisk("d", r.host),
	})
	if g.UsablePages() != 70 {
		t.Errorf("usable = %d, want 70", g.UsablePages())
	}
	r.run(func(p *sim.Proc) { g.Access(p, 0, 80, true) })
	if g.Resident() != 70 {
		t.Errorf("resident = %d, want 70 (capped by reserve)", g.Resident())
	}
}

// Random workloads keep all invariants across guest and backend.
func TestGuestBackendInvariantFuzz(t *testing.T) {
	r := newRig(64)
	rng := sim.NewRNG(99)
	g1 := r.guest(1, 32, true, true)
	g2 := r.guest(2, 32, true, false)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 3000; i++ {
			g := g1
			if rng.Intn(2) == 0 {
				g = g2
			}
			switch rng.Intn(10) {
			case 0:
				g.Free(p, PageID(rng.Intn(100)), mem.Pages(rng.Intn(20)))
			case 1, 2:
				g.ReadFile(p, tmem.ObjectID(rng.Intn(3)), tmem.PageIndex(rng.Intn(50)), mem.Pages(rng.Intn(8)))
			default:
				g.Touch(p, PageID(rng.Intn(100)), rng.Intn(3) == 0)
			}
			if i%100 == 0 {
				if err := g.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if err := r.be.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
}

func TestDefaultCostsScaleWithPageSize(t *testing.T) {
	small := DefaultCosts(4 * mem.KiB)
	big := DefaultCosts(64 * mem.KiB)
	if big.RAMTouch != 16*small.RAMTouch {
		t.Errorf("RAMTouch scaling: %v vs %v", big.RAMTouch, small.RAMTouch)
	}
	if big.TmemOp <= small.TmemOp {
		t.Error("TmemOp did not scale up")
	}
	if big.TmemFlush != small.TmemFlush {
		t.Error("flush cost should not scale (no page copy)")
	}
}
