// Package guest models the memory-management side of a guest Linux kernel
// running inside one VM: a unified LRU over resident pages (standing in for
// the kernel's Pageframe Replacement Algorithm), demand paging, swap, and
// the two tmem hooks — frontswap for anonymous pages and cleancache for
// clean file-backed pages (paper §II-B, Figure 1).
//
// The model is execution-driven: workloads call Access/Touch/ReadFile from
// a sim.Proc, and the kernel charges virtual time for RAM hits, zero-fill
// faults, tmem hypercalls and disk I/O, yielding to the simulation kernel
// every Quantum of accumulated time so the 1 Hz manager tick interleaves
// realistically with memory traffic.
//
// Copy validity follows Linux swap-cache semantics, which drive the tmem
// capacity dynamics the paper's figures show:
//
//   - Evicting a dirty anonymous page stores it (frontswap put, falling
//     back to a swap write on E_TMEM).
//   - Swapping a page back in (frontswap get / disk read) leaves the
//     stored copy valid; the page is clean in RAM.
//   - A clean page with a valid stored copy is evicted for free (drop).
//   - Writing a page invalidates its stored copies (frontswap flush /
//     swap-slot free): tmem usage declines at the workload's write rate,
//     which is why a VM's tmem share drains only gradually after its
//     target is cut (paper §III-B: targets never force reclaim).
package guest

import (
	"fmt"
	"math"

	"smartmem/internal/mem"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/vdisk"
)

// PageID identifies an anonymous page within the VM's address space.
type PageID uint64

// gpage is the kernel's per-page bookkeeping.
type gpage struct {
	resident bool
	dirty    bool // modified since the last stored copy was made
	inTmem   bool // a copy believed valid in tmem
	onDisk   bool // a copy valid on the swap device / backing file

	file bool // file-backed (clean, cleancache-eligible) vs anonymous
	anon PageID
	obj  tmem.ObjectID  // file pages: file identity
	idx  tmem.PageIndex // file pages: offset in file

	prev, next *gpage // resident LRU links (valid while resident)
}

type fileKey struct {
	obj tmem.ObjectID
	idx tmem.PageIndex
}

// CostModel carries the virtual-time costs of the memory hierarchy. Use
// DefaultCosts to derive a page-size-consistent model.
type CostModel struct {
	// RAMTouch is charged per resident page touched (cache-speed streaming
	// over one page).
	RAMTouch sim.Duration
	// MinorFault is a zero-fill demand fault (no I/O).
	MinorFault sim.Duration
	// TmemOp is one put or get hypercall including the page copy.
	TmemOp sim.Duration
	// TmemFlush is a flush hypercall (no page copy).
	TmemFlush sim.Duration
	// Quantum bounds how much virtual time may accumulate before the
	// workload yields to the simulator.
	Quantum sim.Duration

	// Swap-thrash amplification. Sustained swap storms cost more per
	// fault than occasional faults: page reclaim scanning, swap readahead
	// pollution and writeback interference grow with pressure (this is
	// why a tmem-starved VM degrades superlinearly, not just by raw disk
	// latency). Each disk fault is charged an extra
	//
	//	ThrashMaxAmp × r² / (r² + ThrashHalfRate²)
	//
	// multiple of its I/O time, where r is the VM's exponentially
	// averaged disk-fault rate (faults/s). The quadratic sigmoid leaves
	// moderate swapping essentially unamplified and saturates for
	// sustained storms. Zero ThrashMaxAmp disables amplification.
	ThrashMaxAmp float64
	// ThrashHalfRate is the fault rate at which half of ThrashMaxAmp
	// applies.
	ThrashHalfRate float64
	// IOOverhead is the per-disk-operation CPU cost inside the guest and
	// virtualization stack (block layer, virtio/emulated controller,
	// nested hypervisor exits). It is charged to the faulting VM on top
	// of the device time and does not occupy the shared spindle.
	IOOverhead sim.Duration
}

// DefaultCosts returns a cost model scaled to pageSize. The constants are
// anchored at a 4 KiB page: ~0.2 µs to stream a page from DRAM, 2 µs for a
// zero-fill fault, 10 µs for a tmem hypercall with page copy (paper:
// "page-copy–based interface"), 2 µs for a flush.
func DefaultCosts(pageSize mem.Bytes) CostModel {
	scale := float64(pageSize) / float64(4*mem.KiB)
	return CostModel{
		RAMTouch:       sim.Duration(0.2 * scale * float64(sim.Microsecond)),
		MinorFault:     sim.Duration((1 + scale) * float64(sim.Microsecond)),
		TmemOp:         sim.Duration((6 + 4*scale) * float64(sim.Microsecond)),
		TmemFlush:      2 * sim.Microsecond,
		Quantum:        sim.Millisecond,
		ThrashMaxAmp:   2.2,
		ThrashHalfRate: 130,
		IOOverhead:     500 * sim.Microsecond,
	}
}

// Config assembles a guest kernel.
type Config struct {
	// VM is this guest's identity towards the hypervisor.
	VM tmem.VMID
	// RAMPages is the VM's configured memory (Table II's "VM Parameters").
	RAMPages mem.Pages
	// KernelReserve is RAM the guest OS itself consumes; the application
	// working set competes for RAMPages-KernelReserve frames.
	KernelReserve mem.Pages
	// Backend is the hypervisor tmem backend; nil disables tmem entirely
	// (the paper's "no-tmem" configuration).
	Backend *tmem.Backend
	// Frontswap enables the anonymous-page tmem hook (paper evaluation
	// mode).
	Frontswap bool
	// Cleancache enables the clean-file-page tmem hook.
	Cleancache bool
	// Disk is the VM's swap/backing device.
	Disk *vdisk.Disk
	// NonExclusiveGets disables exclusive frontswap loads. The Xen tmem
	// driver runs frontswap with exclusive gets (a successful load also
	// invalidates the tmem copy and redirties the page, avoiding
	// double-caching); that is the default here. Non-exclusive loads keep
	// the copy valid until the page is dirtied, and are provided as an
	// ablation (BenchmarkAblation_ExclusiveGet).
	NonExclusiveGets bool
	// Costs is the timing model (zero value replaced by DefaultCosts of
	// the backend page size, or 4 KiB when no backend).
	Costs CostModel
}

// Stats counts the kernel's memory-management events.
type Stats struct {
	Touches      uint64 // total page touches
	MinorFaults  uint64 // zero-fill
	TmemHits     uint64 // refaults served from tmem
	TmemMisses   uint64 // refaults that had to go to disk after tmem miss
	DiskReads    uint64 // swap-ins / file reads from disk
	DiskWrites   uint64 // swap-outs to disk
	Evictions    uint64 // pages pushed out of RAM
	CleanEvicts  uint64 // evictions satisfied by dropping a clean page
	PutsOK       uint64 // successful frontswap/cleancache puts
	PutsFailed   uint64 // failed puts (fell back to disk for anon pages)
	TmemFlushes  uint64 // explicit invalidations issued
	FreedPages   uint64 // pages released via Free
	WaitedOnDisk sim.Duration
}

// Kernel is one guest's memory-management state. It is not goroutine-safe;
// exactly one workload process drives each kernel, which matches the
// 1-vCPU VMs of every paper scenario.
type Kernel struct {
	cfg    Config
	vm     tmem.VMID
	fsPool tmem.PoolID // frontswap pool (persistent)
	ccPool tmem.PoolID // cleancache pool (ephemeral)

	anon  map[PageID]*gpage
	files map[fileKey]*gpage
	lru   gpage // sentinel; lru.next is coldest resident page

	resident mem.Pages
	usable   mem.Pages

	accum sim.Duration // virtual time accrued since last yield
	stats Stats

	// Swap-thrash pressure tracking (see CostModel.ThrashMaxAmp).
	faultRate float64  // EWMA disk faults/s
	lastFault sim.Time // time of the previous disk fault

	// Scratch buffers for the batched access spine (see accessRun): runs of
	// consecutive page touches are turned into one tmem.GetRun/FlushRun
	// call, and these slices are reused across runs so the hot path does
	// not allocate.
	runKeys []tmem.Key
	runSts  []tmem.Status
}

// NewKernel boots a guest kernel and, when tmem is enabled, registers the
// VM and creates its pools (the paper's "module initialization" step).
func NewKernel(cfg Config) *Kernel {
	if cfg.RAMPages <= 0 {
		panic("guest: non-positive RAM size")
	}
	if cfg.KernelReserve < 0 || cfg.KernelReserve >= cfg.RAMPages {
		panic(fmt.Sprintf("guest: kernel reserve %d outside [0, %d)", cfg.KernelReserve, cfg.RAMPages))
	}
	if cfg.Disk == nil {
		panic("guest: nil disk")
	}
	if cfg.Costs == (CostModel{}) {
		ps := 4 * mem.KiB
		if cfg.Backend != nil {
			ps = cfg.Backend.PageSize()
		}
		cfg.Costs = DefaultCosts(ps)
	}
	if cfg.Costs.Quantum <= 0 {
		cfg.Costs.Quantum = sim.Millisecond
	}
	k := &Kernel{
		cfg:    cfg,
		vm:     cfg.VM,
		fsPool: tmem.InvalidPool,
		ccPool: tmem.InvalidPool,
		anon:   make(map[PageID]*gpage),
		files:  make(map[fileKey]*gpage),
		usable: cfg.RAMPages - cfg.KernelReserve,
	}
	k.lru.prev = &k.lru
	k.lru.next = &k.lru
	if cfg.Backend != nil {
		cfg.Backend.RegisterVM(cfg.VM)
		if cfg.Frontswap {
			k.fsPool = cfg.Backend.NewPool(cfg.VM, tmem.Persistent)
		}
		if cfg.Cleancache {
			k.ccPool = cfg.Backend.NewPool(cfg.VM, tmem.Ephemeral)
		}
	}
	return k
}

// VM returns the guest's VM identity.
func (k *Kernel) VM() tmem.VMID { return k.vm }

// UsablePages returns the frames available to the application.
func (k *Kernel) UsablePages() mem.Pages { return k.usable }

// Resident returns the application pages currently in RAM.
func (k *Kernel) Resident() mem.Pages { return k.resident }

// Stats returns a copy of the event counters.
func (k *Kernel) Stats() Stats { return k.stats }

// --- LRU helpers ---

func (k *Kernel) lruPush(g *gpage) {
	g.prev = k.lru.prev
	g.next = &k.lru
	k.lru.prev.next = g
	k.lru.prev = g
}

func (k *Kernel) lruRemove(g *gpage) {
	g.prev.next = g.next
	g.next.prev = g.prev
	g.prev, g.next = nil, nil
}

func (k *Kernel) lruTouch(g *gpage) {
	k.lruRemove(g)
	k.lruPush(g)
}

// --- time accounting ---

// charge accrues virtual time and yields the process when the quantum is
// exceeded.
func (k *Kernel) charge(p *sim.Proc, d sim.Duration) {
	k.accum += d
	if k.accum >= k.cfg.Costs.Quantum {
		k.flush(p)
	}
}

// flush yields all accrued time to the simulator.
func (k *Kernel) flush(p *sim.Proc) {
	if k.accum > 0 {
		d := k.accum
		k.accum = 0
		p.Sleep(d)
	}
}

// chargeN charges d of virtual time n times, reproducing exactly the
// accumulate/yield points a loop of n charge calls would produce (the
// batched spine must not move yield points, or event interleaving — and
// with it every golden — would change). Between charges accum < Quantum
// always holds, so the step arithmetic below never sees a non-positive
// room.
func (k *Kernel) chargeN(p *sim.Proc, d sim.Duration, n mem.Pages) {
	if d <= 0 {
		return
	}
	q := k.cfg.Costs.Quantum
	for n > 0 {
		// Number of charges until accum reaches the quantum.
		steps := mem.Pages((q - k.accum + d - 1) / sim.Duration(d))
		if steps > n {
			steps = n
		}
		k.accum += sim.Duration(steps) * d
		n -= steps
		if k.accum >= q {
			k.flush(p)
		}
	}
}

// quantumRun returns the largest run length n such that n per-page charges
// of perPage cannot trigger a yield (accum + n*perPage stays under the
// quantum). The batched fault paths bound their runs by it so no yield —
// and therefore no interleaving with other processes — can fall inside a
// batched tmem operation.
func (k *Kernel) quantumRun(perPage sim.Duration) mem.Pages {
	if perPage <= 0 {
		return mem.Pages(math.MaxInt64)
	}
	room := k.cfg.Costs.Quantum - k.accum
	if room <= 0 {
		return 0
	}
	return mem.Pages((room - 1) / perPage)
}

// runBuffers returns the scratch key/status slices sized for n.
func (k *Kernel) runBuffers(n int) ([]tmem.Key, []tmem.Status) {
	if cap(k.runKeys) < n {
		k.runKeys = make([]tmem.Key, n)
		k.runSts = make([]tmem.Status, n)
	}
	return k.runKeys[:0], k.runSts[:n]
}

// Idle makes the guest sleep for d of virtual time after settling accrued
// work (used for the "sleep for 5 seconds" steps in Table II).
func (k *Kernel) Idle(p *sim.Proc, d sim.Duration) {
	k.flush(p)
	p.Sleep(d)
}

// now returns the kernel's effective current time including accrued work,
// used to order disk requests accurately between yields.
func (k *Kernel) now(p *sim.Proc) sim.Time {
	return p.Now() + sim.Time(k.accum)
}

// thrashRateTau is the EWMA window of the disk-fault rate estimator.
const thrashRateTau = 2 * sim.Second

// chargeDiskFault accounts one disk I/O of the given sojourn time plus the
// reclaim/readahead overhead that grows with sustained fault pressure.
func (k *Kernel) chargeDiskFault(p *sim.Proc, dur sim.Duration) {
	c := &k.cfg.Costs
	dur += c.IOOverhead
	k.stats.WaitedOnDisk += dur
	k.charge(p, dur)

	if c.ThrashMaxAmp <= 0 {
		return
	}
	now := k.now(p)
	if k.lastFault > 0 && now > k.lastFault {
		dt := float64(now-k.lastFault) / float64(sim.Second)
		decay := math.Exp(-dt * float64(sim.Second) / float64(thrashRateTau))
		k.faultRate = k.faultRate*decay + (1-decay)/dt
	} else if k.lastFault == 0 {
		k.faultRate = 0
	}
	k.lastFault = now
	if k.faultRate > 0 {
		r2 := k.faultRate * k.faultRate
		h2 := c.ThrashHalfRate * c.ThrashHalfRate
		amp := c.ThrashMaxAmp * r2 / (r2 + h2)
		k.charge(p, sim.Duration(amp*float64(dur)))
	}
}

// --- keys ---

func anonKey(pool tmem.PoolID, page PageID) tmem.Key {
	return tmem.Key{Pool: pool, Object: tmem.ObjectID(page >> 32), Index: tmem.PageIndex(page)}
}

func (k *Kernel) fileTmemKey(fk fileKey) tmem.Key {
	return tmem.Key{Pool: k.ccPool, Object: fk.obj, Index: fk.idx}
}

// --- copy invalidation ---

// invalidateCopies drops a page's stored copies after it is dirtied
// (swap-slot free + frontswap/cleancache invalidate in Linux terms).
func (k *Kernel) invalidateCopies(p *sim.Proc, g *gpage) {
	if g.inTmem {
		key := anonKey(k.fsPool, g.anon)
		if g.file {
			key = k.fileTmemKey(fileKey{g.obj, g.idx})
		}
		k.charge(p, k.cfg.Costs.TmemFlush)
		k.cfg.Backend.FlushPage(key)
		k.stats.TmemFlushes++
		g.inTmem = false
	}
	if !g.file {
		g.onDisk = false // swap slot freed, no I/O
	}
}

// --- eviction (the PFRA) ---

// makeRoom evicts the least-recently-used resident page if RAM is full.
func (k *Kernel) makeRoom(p *sim.Proc) {
	if k.resident < k.usable {
		return
	}
	victim := k.lru.next
	if victim == &k.lru {
		panic("guest: resident count positive but LRU empty")
	}
	k.lruRemove(victim)
	victim.resident = false
	k.resident--
	k.stats.Evictions++

	if victim.file {
		// File pages are clean (read-only files in this model): offer to
		// cleancache unless a copy is already there, else just drop —
		// the backing file still has the data.
		if !victim.inTmem && k.ccPool != tmem.InvalidPool {
			k.charge(p, k.cfg.Costs.TmemOp)
			if k.cfg.Backend.Put(k.fileTmemKey(fileKey{victim.obj, victim.idx}), nil) == tmem.STmem {
				k.stats.PutsOK++
				victim.inTmem = true
			} else {
				k.stats.PutsFailed++
			}
		}
		if !victim.inTmem {
			k.stats.CleanEvicts++
		}
		return
	}

	if !victim.dirty && (victim.inTmem || victim.onDisk) {
		// Clean anonymous page with a valid stored copy: free eviction.
		k.stats.CleanEvicts++
		return
	}

	// Dirty anonymous page: must be preserved. Try frontswap first
	// (Figure 1's put path), then the swap device.
	if k.fsPool != tmem.InvalidPool {
		k.charge(p, k.cfg.Costs.TmemOp)
		if k.cfg.Backend.Put(anonKey(k.fsPool, victim.anon), nil) == tmem.STmem {
			k.stats.PutsOK++
			victim.inTmem = true
			victim.dirty = false
			return
		}
		k.stats.PutsFailed++
	}
	d := k.cfg.Disk.Write(k.now(p))
	k.stats.DiskWrites++
	k.chargeDiskFault(p, d)
	victim.onDisk = true
	victim.dirty = false
}

// --- anonymous-page interface ---

// Touch accesses one anonymous page. write=true models a store: it dirties
// the page and invalidates any stored copies.
func (k *Kernel) Touch(p *sim.Proc, page PageID, write bool) {
	k.stats.Touches++
	g, ok := k.anon[page]
	if ok && g.resident {
		k.lruTouch(g)
		k.charge(p, k.cfg.Costs.RAMTouch)
		if write && !g.dirty {
			g.dirty = true
			k.invalidateCopies(p, g)
		}
		return
	}
	// Fault path.
	k.makeRoom(p)
	if !ok {
		// First touch: zero-fill; the page is dirty by construction.
		g = &gpage{anon: page, dirty: true}
		k.anon[page] = g
		k.stats.MinorFaults++
		k.charge(p, k.cfg.Costs.MinorFault)
	} else {
		switch {
		case g.inTmem:
			// Frontswap load.
			k.charge(p, k.cfg.Costs.TmemOp)
			if k.cfg.Backend.Get(anonKey(k.fsPool, page), nil) == tmem.STmem {
				k.stats.TmemHits++
				if k.cfg.NonExclusiveGets {
					// Swap-cache semantics: the copy remains valid until
					// the page is dirtied.
					g.dirty = false
				} else {
					// Exclusive get (Xen driver default): the load also
					// invalidates the copy and leaves the page dirty.
					k.charge(p, k.cfg.Costs.TmemFlush)
					k.cfg.Backend.FlushPage(anonKey(k.fsPool, page))
					k.stats.TmemFlushes++
					g.inTmem = false
					g.dirty = true
				}
			} else {
				// Persistent pools cannot lose pages; reaching this means
				// kernel state is out of sync with the hypervisor.
				panic(fmt.Sprintf("guest: frontswap page %d lost by persistent pool", page))
			}
		case g.onDisk:
			k.stats.DiskReads++
			d := k.cfg.Disk.Read(k.now(p))
			k.chargeDiskFault(p, d)
			g.dirty = false
		default:
			panic(fmt.Sprintf("guest: non-resident clean page %d has no stored copy", page))
		}
	}
	g.resident = true
	k.lruPush(g)
	k.resident++
	k.charge(p, k.cfg.Costs.RAMTouch)
	if write && !g.dirty {
		g.dirty = true
		k.invalidateCopies(p, g)
	}
}

// Access touches count consecutive anonymous pages starting at first.
// Consecutive pages in the same state are handled as one run: resident
// runs batch their time accounting, and frontswap-refault runs go to the
// backend as one GetRun/FlushRun pair — one stripe-lock round trip per run
// instead of one per page. Observable behaviour (stats, backend operation
// order, yield points) is identical to a per-page Touch loop.
func (k *Kernel) Access(p *sim.Proc, first PageID, count mem.Pages, write bool) {
	k.accessRun(p, first, count, 1, write)
}

// AccessStride touches count pages starting at first with the given
// stride (in pages), with the same run batching as Access — run detection
// only needs page state, not adjacency, so strided refault streams batch
// too.
func (k *Kernel) AccessStride(p *sim.Proc, first PageID, count, stride mem.Pages, write bool) {
	if stride == 0 {
		// Degenerate repeated-touch of one page: state changes between
		// touches, so runs cannot form; keep the per-page loop.
		for i := mem.Pages(0); i < count; i++ {
			k.Touch(p, first, write)
		}
		return
	}
	k.accessRun(p, first, count, stride, write)
}

// accessRun is the batched anonymous-access spine shared by Access and
// AccessStride.
func (k *Kernel) accessRun(p *sim.Proc, first PageID, count, stride mem.Pages, write bool) {
	pg := first
	i := mem.Pages(0)
	for i < count {
		g, ok := k.anon[pg]
		if ok && g.resident && (!write || g.dirty) {
			// Resident run: LRU touch + time accounting only. The write
			// case rides along when the page is already dirty (nothing to
			// invalidate), exactly as Touch would conclude.
			n := mem.Pages(0)
			for i < count {
				g2, ok2 := k.anon[pg]
				if !ok2 || !g2.resident || (write && !g2.dirty) {
					break
				}
				k.lruTouch(g2)
				n++
				i++
				pg += PageID(stride)
			}
			k.stats.Touches += uint64(n)
			k.chargeN(p, k.cfg.Costs.RAMTouch, n)
			continue
		}
		if ok && !g.resident && g.inTmem && (!k.cfg.NonExclusiveGets || !write) {
			if n := k.anonTmemRun(p, pg, count-i, stride, write); n > 0 {
				i += n
				pg += PageID(stride * n)
				continue
			}
		}
		k.Touch(p, pg, write)
		i++
		pg += PageID(stride)
	}
}

// anonTmemRun serves a run of frontswap refaults (non-resident pages with
// a valid tmem copy) in one batched backend exchange. It returns the pages
// served, or 0 when a batch is not worthwhile (the caller falls back to
// the per-page path). A run is bounded so that no page can need an
// eviction (resident stays under usable) and no charge can cross the
// quantum — there is no yield inside the run, so the batched backend calls
// are observably identical to the per-page sequence.
func (k *Kernel) anonTmemRun(p *sim.Proc, first PageID, limit, stride mem.Pages, write bool) mem.Pages {
	c := &k.cfg.Costs
	exclusive := !k.cfg.NonExclusiveGets
	perPage := c.TmemOp + c.RAMTouch
	if exclusive {
		perPage += c.TmemFlush
	}
	n := limit
	if free := k.usable - k.resident; n > free {
		n = free
	}
	if q := k.quantumRun(perPage); n > q {
		n = q
	}
	// Trim to the actual run of same-state pages.
	pg := first
	run := mem.Pages(0)
	for run < n {
		g, ok := k.anon[pg]
		if !ok || g.resident || !g.inTmem {
			break
		}
		run++
		pg += PageID(stride)
	}
	if run < 2 {
		return 0 // a single page gains nothing over the per-page path
	}
	keys, sts := k.runBuffers(int(run))
	pg = first
	for j := mem.Pages(0); j < run; j++ {
		keys = append(keys, anonKey(k.fsPool, pg))
		pg += PageID(stride)
	}
	if h := mem.Pages(k.cfg.Backend.GetRun(keys, sts)); h < run || sts[run-1] != tmem.STmem {
		// Persistent pools cannot lose pages; reaching this means kernel
		// state is out of sync with the hypervisor.
		panic(fmt.Sprintf("guest: frontswap page %d lost by persistent pool", first+PageID(stride*h)))
	}
	if exclusive {
		// Exclusive gets (Xen driver default) invalidate the copies in one
		// batched flush run.
		k.cfg.Backend.FlushRun(keys, sts)
	}
	pg = first
	for j := mem.Pages(0); j < run; j++ {
		g := k.anon[pg]
		k.stats.Touches++
		k.stats.TmemHits++
		if exclusive {
			k.stats.TmemFlushes++
			g.inTmem = false
			g.dirty = true
		} else {
			g.dirty = false
		}
		g.resident = true
		k.lruPush(g)
		k.resident++
		pg += PageID(stride)
	}
	// All charges of the run stay under the quantum by construction; a
	// single accumulate reproduces the per-page bookkeeping exactly.
	k.accum += sim.Duration(run) * perPage
	return run
}

// Free releases count consecutive anonymous pages: resident frames return
// to the kernel, frontswap copies are invalidated (flush hypercalls), swap
// slots are dropped. This is the munmap/exit path that lets tmem usage fall
// when an application run completes (visible in the paper's Figures 4–10
// as capacity released between runs).
func (k *Kernel) Free(p *sim.Proc, first PageID, count mem.Pages) {
	for i := mem.Pages(0); i < count; i++ {
		page := first + PageID(i)
		g, ok := k.anon[page]
		if !ok {
			continue
		}
		if g.resident {
			k.lruRemove(g)
			k.resident--
		}
		k.invalidateCopies(p, g)
		delete(k.anon, page)
		k.stats.FreedPages++
	}
	k.flush(p)
}

// --- file-page interface (cleancache) ---

// ReadFile reads count consecutive pages of the file identified by obj,
// starting at page idx. Pages enter the unified LRU as clean file pages;
// on eviction they are offered to cleancache, and refaults consult
// cleancache before paying for disk. Like Access, consecutive pages in the
// same state are served as runs: resident runs batch their accounting, and
// cleancache-refault runs go to the backend as one GetRun (which stops at
// the first miss — ephemeral pools may drop pages — so the per-page
// fallback handles the disk read exactly where the per-page loop would).
func (k *Kernel) ReadFile(p *sim.Proc, obj tmem.ObjectID, idx tmem.PageIndex, count mem.Pages) {
	i := mem.Pages(0)
	for i < count {
		fk := fileKey{obj, idx + tmem.PageIndex(i)}
		g, ok := k.files[fk]
		if ok && g.resident {
			// Resident run.
			n := mem.Pages(0)
			for i < count {
				g2, ok2 := k.files[fileKey{obj, idx + tmem.PageIndex(i)}]
				if !ok2 || !g2.resident {
					break
				}
				k.lruTouch(g2)
				n++
				i++
			}
			k.stats.Touches += uint64(n)
			k.chargeN(p, k.cfg.Costs.RAMTouch, n)
			continue
		}
		if ok && !g.resident && g.inTmem {
			if n := k.fileTmemRun(p, obj, idx+tmem.PageIndex(i), count-i); n > 0 {
				i += n
				continue
			}
		}
		k.touchFile(p, fk)
		i++
	}
}

// fileTmemRun serves a run of cleancache refaults in one batched backend
// exchange, returning the pages consumed (hits plus, when the run ended on
// an ephemeral miss, the miss page served from disk). Returns 0 when a
// batch is not worthwhile. Bounds mirror anonTmemRun: no eviction and no
// yield can fall inside the batched calls.
func (k *Kernel) fileTmemRun(p *sim.Proc, obj tmem.ObjectID, idx tmem.PageIndex, limit mem.Pages) mem.Pages {
	c := &k.cfg.Costs
	perPage := c.TmemOp + c.RAMTouch
	n := limit
	if free := k.usable - k.resident; n > free {
		n = free
	}
	if q := k.quantumRun(perPage); n > q {
		n = q
	}
	run := mem.Pages(0)
	for run < n {
		g, ok := k.files[fileKey{obj, idx + tmem.PageIndex(run)}]
		if !ok || g.resident || !g.inTmem {
			break
		}
		run++
	}
	if run < 2 {
		return 0
	}
	keys, sts := k.runBuffers(int(run))
	for j := mem.Pages(0); j < run; j++ {
		keys = append(keys, k.fileTmemKey(fileKey{obj, idx + tmem.PageIndex(j)}))
	}
	done := mem.Pages(k.cfg.Backend.GetRun(keys, sts))
	hits := done
	missed := done > 0 && sts[done-1] != tmem.STmem
	if missed {
		hits--
	}
	for j := mem.Pages(0); j < hits; j++ {
		g := k.files[fileKey{obj, idx + tmem.PageIndex(j)}]
		k.stats.Touches++
		k.stats.TmemHits++
		g.inTmem = false // ephemeral gets are exclusive in Xen: the copy is gone
		g.resident = true
		k.lruPush(g)
		k.resident++
	}
	k.accum += sim.Duration(hits) * perPage
	if missed {
		// The miss page's get was already issued by GetRun (same backend
		// operation order as the per-page loop); serve it from disk with
		// the per-page charge sequence.
		g := k.files[fileKey{obj, idx + tmem.PageIndex(hits)}]
		k.stats.Touches++
		k.stats.TmemMisses++
		g.inTmem = false
		k.charge(p, c.TmemOp)
		k.readFileFromDisk(p)
		g.resident = true
		k.lruPush(g)
		k.resident++
		k.charge(p, c.RAMTouch)
		return hits + 1
	}
	return hits
}

func (k *Kernel) touchFile(p *sim.Proc, fk fileKey) {
	k.stats.Touches++
	g, ok := k.files[fk]
	if ok && g.resident {
		k.lruTouch(g)
		k.charge(p, k.cfg.Costs.RAMTouch)
		return
	}
	k.makeRoom(p)
	if !ok {
		g = &gpage{file: true, obj: fk.obj, idx: fk.idx, onDisk: true}
		k.files[fk] = g
	}
	if g.inTmem {
		k.charge(p, k.cfg.Costs.TmemOp)
		if k.cfg.Backend.Get(k.fileTmemKey(fk), nil) == tmem.STmem {
			// Ephemeral gets are exclusive in Xen: the copy is gone.
			k.stats.TmemHits++
			g.inTmem = false
		} else {
			// Ephemeral pools may drop pages at any time; fall back.
			k.stats.TmemMisses++
			g.inTmem = false
			k.readFileFromDisk(p)
		}
	} else {
		k.readFileFromDisk(p)
	}
	g.resident = true
	k.lruPush(g)
	k.resident++
	k.charge(p, k.cfg.Costs.RAMTouch)
}

func (k *Kernel) readFileFromDisk(p *sim.Proc) {
	k.stats.DiskReads++
	d := k.cfg.Disk.Read(k.now(p))
	k.chargeDiskFault(p, d)
}

// Shutdown tears the guest down: destroys its tmem pools and unregisters
// the VM (releasing all held tmem, as a real VM destruction would).
func (k *Kernel) Shutdown() {
	if k.cfg.Backend != nil {
		k.cfg.Backend.UnregisterVM(k.vm)
	}
	k.fsPool = tmem.InvalidPool
	k.ccPool = tmem.InvalidPool
}

// CheckInvariants validates internal consistency (tests).
func (k *Kernel) CheckInvariants() error {
	var n mem.Pages
	for g := k.lru.next; g != &k.lru; g = g.next {
		if !g.resident {
			return fmt.Errorf("guest: non-resident page on LRU")
		}
		n++
	}
	if n != k.resident {
		return fmt.Errorf("guest: resident count %d != LRU length %d", k.resident, n)
	}
	if k.resident > k.usable {
		return fmt.Errorf("guest: resident %d exceeds usable %d", k.resident, k.usable)
	}
	for id, g := range k.anon {
		if !g.file && !g.resident && !g.dirty && !g.inTmem && !g.onDisk {
			return fmt.Errorf("guest: page %d unreachable (no copy anywhere)", id)
		}
		if !g.resident && g.dirty {
			return fmt.Errorf("guest: page %d dirty but not resident", id)
		}
	}
	return nil
}
