package hdr

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketIndexBounds pins the bucket layout: every value lands in the
// bucket whose bounds contain it, indices are monotone, and the full
// non-negative int64 range stays inside the fixed array.
func TestBucketIndexBounds(t *testing.T) {
	values := []int64{0, 1, 2, 63, 64, 65, 127, 128, 1000, 4095, 4096,
		1<<20 - 1, 1 << 20, 1<<40 + 12345, math.MaxInt64 - 1, math.MaxInt64}
	prev := -1
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, NumBuckets)
		}
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d not inside its bucket %d bounds [%d,%d]", v, idx, lo, hi)
		}
	}
	// Exhaustive continuity over the exactly-representable range plus the
	// first few octaves: consecutive values never skip backward a bucket.
	for v := int64(1); v < 1<<14; v++ {
		if bucketIndex(v) < bucketIndex(v-1) {
			t.Fatalf("bucket regression at %d", v)
		}
	}
}

// TestBucketRelativeError pins the resolution guarantee: a bucket's width
// never exceeds 1/64 of its lower bound.
func TestBucketRelativeError(t *testing.T) {
	for idx := subCount; idx < NumBuckets; idx++ {
		lo, hi := bucketBounds(idx)
		if width := hi - lo; width > 0 && float64(width) > float64(lo)/float64(subCount)+1 {
			t.Fatalf("bucket %d [%d,%d] wider than lo/64", idx, lo, hi)
		}
	}
}

// quantileOracle is the sorted-slice reference: the value of rank
// ceil(q*n) (1-based), matching Histogram.Quantile's rank rule.
func quantileOracle(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestQuantileVsOracle drives random value distributions through the
// histogram and checks every reported quantile against the sorted-slice
// oracle: the histogram's answer must fall in the same bucket as the true
// order statistic (i.e. within the 1/64 relative-error guarantee), and
// p100 must be exactly the max.
func TestQuantileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() int64{
		"uniform-small": func() int64 { return rng.Int63n(100) },
		"uniform-wide":  func() int64 { return rng.Int63n(1 << 40) },
		"exponential":   func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 1_000_000 + rng.Int63n(1_000_000)
			}
			return 1_000 + rng.Int63n(1_000)
		},
		"constant": func() int64 { return 4242 },
	}
	quantiles := []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1}
	for name, gen := range distributions {
		h := New()
		vals := make([]int64, 5000)
		for i := range vals {
			vals[i] = gen()
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range quantiles {
			got := h.Quantile(q)
			want := quantileOracle(vals, q)
			lo, hi := bucketBounds(bucketIndex(want))
			// Clamping to Max can pull the upper bound below the bucket's hi.
			if got < lo || got > hi {
				t.Errorf("%s: Quantile(%v) = %d, oracle %d (bucket [%d,%d])",
					name, q, got, want, lo, hi)
			}
		}
		if got, want := h.Quantile(1), vals[len(vals)-1]; got != want {
			t.Errorf("%s: Quantile(1) = %d, want exact max %d", name, got, want)
		}
		if got, want := h.Max(), vals[len(vals)-1]; got != want {
			t.Errorf("%s: Max = %d, want %d", name, got, want)
		}
	}
}

// TestMergeAssociativity pins that (a+b)+c and a+(b+c) — and any other
// grouping — produce identical bucket states, counts, sums and maxes, so
// per-worker histograms can fold in any order.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]*Histogram, 3)
	for i := range parts {
		parts[i] = New()
		for j := 0; j < 2000; j++ {
			parts[i].Record(rng.Int63n(1 << uint(10+8*i)))
		}
	}
	leftFold := New() // ((a+b)+c)
	leftFold.Add(parts[0])
	leftFold.Add(parts[1])
	leftFold.Add(parts[2])
	rightFold := New() // (a+(b+c))
	bc := New()
	bc.Add(parts[1])
	bc.Add(parts[2])
	rightFold.Add(parts[0])
	rightFold.Add(bc)
	if leftFold.buckets != rightFold.buckets {
		t.Fatal("merge grouping changed bucket contents")
	}
	if leftFold.Count() != rightFold.Count() || leftFold.Sum() != rightFold.Sum() || leftFold.Max() != rightFold.Max() {
		t.Fatalf("merge grouping changed aggregates: (%d,%d,%d) vs (%d,%d,%d)",
			leftFold.Count(), leftFold.Sum(), leftFold.Max(),
			rightFold.Count(), rightFold.Sum(), rightFold.Max())
	}
	// The merged histogram equals one histogram recording everything.
	direct := New()
	for _, p := range parts {
		direct.Add(p)
	}
	if direct.buckets != leftFold.buckets || direct.Count() != leftFold.Count() {
		t.Fatal("merged histogram differs from direct accumulation")
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines (run
// under -race in CI) and checks nothing is lost: the total count, sum and
// max must equal the deterministic expectation.
func TestConcurrentRecord(t *testing.T) {
	const workers = 8
	const perWorker = 20_000
	h := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				h.Record(rng.Int63n(1 << 30))
				if i%1000 == 0 {
					_ = h.Quantile(0.99) // readers run concurrently with writers
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	var wantSum uint64
	var wantMax int64
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWorker; i++ {
			v := rng.Int63n(1 << 30)
			wantSum += uint64(v)
			if v > wantMax {
				wantMax = v
			}
		}
	}
	if h.Sum() != wantSum || h.Max() != wantMax {
		t.Fatalf("Sum/Max = %d/%d, want %d/%d", h.Sum(), h.Max(), wantSum, wantMax)
	}
}

// TestConcurrentMerge merges into an aggregate while sources keep
// recording; the aggregate must see at least the records that finished
// before each Add and remain race-clean.
func TestConcurrentMerge(t *testing.T) {
	src := New()
	agg := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50_000; i++ {
			src.Record(int64(i))
		}
	}()
	for i := 0; i < 20; i++ {
		agg.Add(src)
	}
	<-done
	agg.Add(src) // final fold sees everything
	if agg.Count() < 50_000 {
		t.Fatalf("aggregate saw %d records, want >= 50000", agg.Count())
	}
}

// TestRecordZeroAllocs pins the hot-path contract: recording (including
// negative clamp and max update) never allocates.
func TestRecordZeroAllocs(t *testing.T) {
	h := New()
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	}); n != 0 {
		t.Fatalf("Record allocates %v per op, want 0", n)
	}
}

// TestEmptyAndEdge covers the empty histogram and degenerate quantiles.
func TestEmptyAndEdge(t *testing.T) {
	h := New()
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to 0
	if h.Count() != 1 || h.Max() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative clamp broken: %+v", h.Snapshot())
	}
	h.Record(math.MaxInt64)
	if h.Max() != math.MaxInt64 {
		t.Fatalf("Max = %d", h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset left state behind")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P999 != 0 {
		t.Fatalf("snapshot of reset histogram: %+v", s)
	}
}
