// Package hdr provides lock-free log-bucketed latency histograms for the
// wire-rate measurement path: the open-loop load generator
// (cmd/smartmem-loadgen) and the kvd's per-op serving metrics record into
// them on hot paths, so Record must be wait-free and allocation-free.
//
// The layout is HdrHistogram-style log-linear: 64 linear sub-buckets per
// power of two, giving a guaranteed relative error of at most 1/64 (~1.6%)
// for any recorded value while covering the full non-negative int64 range
// in a fixed 3712-bucket array. Every bucket is a plain uint64 touched
// only with atomic operations, so any number of goroutines may Record
// concurrently with zero coordination and readers (Quantile, Snapshot)
// observe a consistent-enough view without stopping writers — exactly the
// discipline a serving loop needs: histogram recording never joins the
// lock path.
//
// Histograms are mergeable: per-worker histograms recorded independently
// merge associatively into one (Merge adds bucket-wise), so a load
// generator can keep recording contention-free per connection and fold the
// results at the end.
package hdr

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// subBits fixes the linear resolution inside each power of two:
// 2^subBits sub-buckets per octave, bounding relative error by 2^-subBits.
const subBits = 6

// subCount is the number of linear sub-buckets per octave.
const subCount = 1 << subBits

// NumBuckets is the fixed size of the bucket array: values 0..63 map to
// their own bucket, and each of the 57 octaves [2^6,2^7) .. [2^62,2^63)
// contributes 64 more.
const NumBuckets = (63-subBits)*subCount + subCount

// Histogram is a fixed-size concurrent latency histogram. The zero value
// is ready to use; New returns a pointer for the common heap case.
// Record/Add are safe for any number of concurrent callers; the read side
// (Quantile, Count, Snapshot, ...) uses atomic loads and may run
// concurrently with writers, seeing some prefix of in-flight records.
type Histogram struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64 // stored as value+1 so 0 means "nothing recorded"
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative value to its bucket. Values below 64
// get exact buckets; above, the top subBits+1 significant bits pick a
// linear sub-bucket inside the value's octave.
func bucketIndex(v int64) int {
	u := uint64(v)
	exp := bits.Len64(u|1) - 1
	if exp < subBits {
		return int(u)
	}
	top := u >> (uint(exp) - subBits) // in [subCount, 2*subCount)
	return (exp-subBits+1)*subCount + int(top) - subCount
}

// bucketBounds returns the inclusive value range [lo, hi] a bucket covers.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < subCount {
		return int64(idx), int64(idx)
	}
	exp := idx/subCount + subBits - 1
	top := uint64(idx%subCount + subCount)
	width := uint64(1) << (uint(exp) - subBits)
	l := top * width
	return int64(l), int64(l + width - 1)
}

// Record adds one observation. Negative values clamp to zero (a latency
// measured from an intended timestamp can go slightly negative on clock
// adjustment; losing the sign beats crashing the serving loop). Record
// performs no allocation and takes no lock.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	atomic.AddUint64(&h.buckets[bucketIndex(v)], 1)
	atomic.AddUint64(&h.count, 1)
	atomic.AddUint64(&h.sum, uint64(v))
	for {
		cur := atomic.LoadUint64(&h.max)
		if uint64(v)+1 <= cur {
			return
		}
		if atomic.CompareAndSwapUint64(&h.max, cur, uint64(v)+1) {
			return
		}
	}
}

// Add merges other into h bucket-wise; both may keep recording. Merging is
// associative and commutative up to the bucket resolution (exactly: bucket
// counts, count, sum and max are all plain sums/maxes).
func (h *Histogram) Add(other *Histogram) {
	for i := range other.buckets {
		if n := atomic.LoadUint64(&other.buckets[i]); n != 0 {
			atomic.AddUint64(&h.buckets[i], n)
		}
	}
	atomic.AddUint64(&h.count, atomic.LoadUint64(&other.count))
	atomic.AddUint64(&h.sum, atomic.LoadUint64(&other.sum))
	om := atomic.LoadUint64(&other.max)
	for {
		cur := atomic.LoadUint64(&h.max)
		if om <= cur {
			return
		}
		if atomic.CompareAndSwapUint64(&h.max, cur, om) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.count) }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() uint64 { return atomic.LoadUint64(&h.sum) }

// Max returns the largest recorded value (exact, not bucket-rounded), or 0
// when empty.
func (h *Histogram) Max() int64 {
	m := atomic.LoadUint64(&h.max)
	if m == 0 {
		return 0
	}
	return int64(m - 1)
}

// Mean returns the arithmetic mean of recorded values, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket holding the observation of rank ceil(q*count) (rank 1 for
// q=0), clamped to Max so p100 is exact. The result is within 1/64
// relative error of the true order statistic.
func (h *Histogram) Quantile(q float64) int64 {
	n := atomic.LoadUint64(&h.count)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		c := atomic.LoadUint64(&h.buckets[i])
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			_, hi := bucketBounds(i)
			if m := h.Max(); hi > m {
				return m
			}
			return hi
		}
	}
	return h.Max()
}

// Reset zeroes the histogram. Not safe to run concurrently with writers.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		atomic.StoreUint64(&h.buckets[i], 0)
	}
	atomic.StoreUint64(&h.count, 0)
	atomic.StoreUint64(&h.sum, 0)
	atomic.StoreUint64(&h.max, 0)
}

// Snapshot is a point-in-time summary of a histogram: the quantiles the
// serving SLOs are written against, ready for JSON encoding. Units are
// whatever the recorder used (nanoseconds throughout this repo).
type Snapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P90   int64   `json:"p90_ns"`
	P99   int64   `json:"p99_ns"`
	P999  int64   `json:"p999_ns"`
	Max   int64   `json:"max_ns"`
}

// Snapshot summarizes the histogram's current state. Concurrent writers
// may land between quantile reads; each individual figure is consistent.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String renders the snapshot compactly for logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("count=%d mean=%.0fns p50=%d p90=%d p99=%d p999=%d max=%d",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}

// State is a full copy of one histogram's counters — cheap enough (~29 KiB
// on the stack) to take per metrics scrape. Two States of the same
// histogram taken at different times subtract into an interval summary via
// DeltaSnapshot, which is how a scraper derives per-interval rates and
// quantiles without ever resetting the live histogram under writers.
type State struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64 // value+1 convention, 0 = nothing recorded (matches Histogram.max)
}

// State copies the histogram's counters with atomic loads. Concurrent
// writers may land between loads, so a State is consistent in the same
// sense as Snapshot: each figure individually reflects some point in the
// recording stream. The zero State works as a DeltaSnapshot baseline and
// means "before anything was recorded".
func (h *Histogram) State() State {
	var s State
	for i := range h.buckets {
		s.Buckets[i] = atomic.LoadUint64(&h.buckets[i])
	}
	s.Count = atomic.LoadUint64(&h.count)
	s.Sum = atomic.LoadUint64(&h.sum)
	s.Max = atomic.LoadUint64(&h.max)
	return s
}

// sub64 subtracts with saturation at zero. A histogram only grows, but a
// racing State pair can transiently read cur behind prev on an individual
// counter; clamping keeps a scrape best-effort instead of wrapping to 2^64.
func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// DeltaSnapshot summarizes the observations recorded between prev and cur
// (two States of the same histogram, prev taken first): interval quantiles,
// mean and max rather than the since-process-start figures Snapshot gives.
// Count and the quantiles come from the bucket-wise difference, so they are
// mutually consistent even when writers raced the State copies. Max is
// exact when the interval produced a new all-time maximum (cur.Max moved);
// otherwise it falls back to the upper bound of the highest bucket touched
// in the interval, clamped to the all-time maximum. An empty interval
// returns the zero Snapshot.
func DeltaSnapshot(cur, prev State) Snapshot {
	var db [NumBuckets]uint64
	var n uint64
	hiIdx := -1
	for i := range db {
		d := sub64(cur.Buckets[i], prev.Buckets[i])
		db[i] = d
		n += d
		if d != 0 {
			hiIdx = i
		}
	}
	if n == 0 {
		return Snapshot{}
	}

	var max int64
	if cur.Max > prev.Max {
		max = int64(cur.Max - 1)
	} else {
		_, hi := bucketBounds(hiIdx)
		max = hi
		if cur.Max != 0 && max > int64(cur.Max-1) {
			max = int64(cur.Max - 1)
		}
	}

	quantile := func(q float64) int64 {
		rank := uint64(math.Ceil(q * float64(n)))
		if rank < 1 {
			rank = 1
		}
		var cum uint64
		for i := range db {
			if db[i] == 0 {
				continue
			}
			cum += db[i]
			if cum >= rank {
				_, hi := bucketBounds(i)
				if hi > max {
					return max
				}
				return hi
			}
		}
		return max
	}

	return Snapshot{
		Count: n,
		Mean:  float64(sub64(cur.Sum, prev.Sum)) / float64(n),
		P50:   quantile(0.50),
		P90:   quantile(0.90),
		P99:   quantile(0.99),
		P999:  quantile(0.999),
		Max:   max,
	}
}
