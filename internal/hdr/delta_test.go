package hdr

import (
	"testing"
	"time"
)

// TestDeltaSnapshotIntervalOnly pins the core property: a delta between two
// States summarizes only the observations recorded in between, ignoring
// everything before the first State.
func TestDeltaSnapshotIntervalOnly(t *testing.T) {
	h := New()
	for i := 0; i < 1000; i++ {
		h.Record(int64(time.Millisecond)) // old regime: 1ms
	}
	prev := h.State()
	for i := 0; i < 100; i++ {
		h.Record(int64(10 * time.Millisecond)) // new regime: 10ms
	}
	cur := h.State()

	d := DeltaSnapshot(cur, prev)
	if d.Count != 100 {
		t.Fatalf("delta count = %d, want 100", d.Count)
	}
	ms10 := int64(10 * time.Millisecond)
	within := func(name string, got int64) {
		t.Helper()
		if got < ms10 || got > ms10+ms10/int64(subCount) {
			t.Errorf("%s = %d, want ~%d (within 1/64)", name, got, ms10)
		}
	}
	// Every interval observation is 10ms: all quantiles and the mean must
	// sit there, untouched by the thousand 1ms records before prev.
	within("p50", d.P50)
	within("p99", d.P99)
	within("p999", d.P999)
	if d.Mean != float64(ms10) {
		t.Errorf("mean = %g, want %d", d.Mean, ms10)
	}
	if d.Max != ms10 {
		t.Errorf("max = %d, want %d (exact: the interval set a new all-time max)", d.Max, ms10)
	}

	// The cumulative snapshot still sees the old regime, proving the two
	// views diverge as intended.
	if full := h.Snapshot(); full.P50 >= ms10 {
		t.Errorf("cumulative p50 = %d, should still be ~1ms", full.P50)
	}
}

// TestDeltaSnapshotEmptyInterval pins that a quiet interval yields the zero
// Snapshot, which is what lets a scraper skip emitting interval families.
func TestDeltaSnapshotEmptyInterval(t *testing.T) {
	h := New()
	h.Record(500)
	s := h.State()
	if d := DeltaSnapshot(s, s); d != (Snapshot{}) {
		t.Fatalf("empty interval delta = %+v, want zero", d)
	}
	// Zero baseline = everything so far.
	if d := DeltaSnapshot(s, State{}); d.Count != 1 || d.Max != 500 {
		t.Fatalf("delta vs zero baseline = %+v, want count 1 max 500", d)
	}
}

// TestDeltaSnapshotMaxFallback pins the max rule when the interval does not
// move the all-time maximum: the delta max falls back to the highest bucket
// touched in the interval, clamped to the all-time max.
func TestDeltaSnapshotMaxFallback(t *testing.T) {
	h := New()
	h.Record(1 << 20) // all-time max, before the interval
	prev := h.State()
	h.Record(100) // interval activity below the old max
	cur := h.State()

	d := DeltaSnapshot(cur, prev)
	if d.Count != 1 {
		t.Fatalf("delta count = %d, want 1", d.Count)
	}
	// Value 100 lands in a log bucket; the reported max is that bucket's
	// upper bound (≤ 1/64 above), never the stale 1<<20.
	if d.Max < 100 || d.Max > 100+100/subCount+1 {
		t.Errorf("fallback max = %d, want ~100", d.Max)
	}

	// Clamp case: interval max in the same bucket as a larger all-time max.
	h2 := New()
	h2.Record(1000)
	p2 := h2.State()
	h2.Record(990) // same bucket region, below all-time max
	d2 := DeltaSnapshot(h2.State(), p2)
	if d2.Max > 1000 {
		t.Errorf("fallback max = %d, must clamp to all-time max 1000", d2.Max)
	}
}

// TestDeltaSnapshotUnderflowGuard pins the saturating subtraction: a
// mismatched State pair (cur behind prev) degrades to zeros instead of
// wrapping around.
func TestDeltaSnapshotUnderflowGuard(t *testing.T) {
	h := New()
	h.Record(42)
	later := h.State()
	h.Record(42)
	evenLater := h.State()
	if d := DeltaSnapshot(later, evenLater); d.Count != 0 {
		t.Fatalf("reversed pair delta count = %d, want 0 (saturate, not wrap)", d.Count)
	}
}
