package hdr

import (
	"sync/atomic"
	"testing"
)

// BenchmarkHDRRecord pins the recording hot path: a handful of atomic ops,
// no locks, 0 allocs/op serial and under contention.
func BenchmarkHDRRecord(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		h := New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(int64(i&0xffff) * 100)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		h := New()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			v := int64(0)
			for pb.Next() {
				h.Record(v & 0xfffff)
				v += 4093
			}
		})
	})
	b.Run("per-worker-merge", func(b *testing.B) {
		// The contention-free discipline loadgen uses: a private histogram
		// per worker, merged once at the end.
		var next atomic.Int64
		b.ReportAllocs()
		agg := New()
		b.RunParallel(func(pb *testing.PB) {
			h := New()
			v := next.Add(1) * 7919
			for pb.Next() {
				h.Record(v & 0xfffff)
				v += 4093
			}
			agg.Add(h)
		})
	})
}

// BenchmarkHDRQuantile measures the read side (3712 bucket scan).
func BenchmarkHDRQuantile(b *testing.B) {
	h := New()
	for i := 0; i < 100_000; i++ {
		h.Record(int64(i%77777) * 13)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
