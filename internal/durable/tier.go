package durable

import (
	"sync/atomic"

	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// Tier adapts a Log to tmem.Tier/BatchTier: the terminal leg of the
// demotion chain (RAM → compressed RAM → peer RAM → durable blob). Only
// persistent (frontswap) pages are accepted — an ephemeral page's
// contract allows dropping it, so journaling it buys nothing and costs a
// blob write. Like RemoteTier, a blob-store failure flips the tier into
// sticky degradation: further puts answer ETmem (the guest falls back to
// its virtual disk) and the failure is counted, never retried blindly.
type Tier struct {
	name string
	log  *Log
	down atomic.Bool

	puts, putsOK, gets, getsHit atomic.Uint64
	pageFlushes, objectFlushes  atomic.Uint64
	errors                      atomic.Uint64
}

// NewTier wraps log as a tmem tier.
func NewTier(name string, log *Log) *Tier {
	return &Tier{name: name, log: log}
}

// Log exposes the underlying journal (stats, recovery, close).
func (t *Tier) Log() *Log { return t.log }

func (t *Tier) Name() string { return t.name }

// fail records a blob-store failure and degrades the tier.
func (t *Tier) fail() tmem.Status {
	t.errors.Add(1)
	t.down.Store(true)
	return tmem.ETmem
}

func (t *Tier) Put(key tmem.Key, kind tmem.PoolKind, data []byte) tmem.Status {
	t.puts.Add(1)
	if kind != tmem.Persistent || t.down.Load() {
		return tmem.ETmem
	}
	if err := t.ensurePool(key.Pool, kind); err != nil {
		return t.fail()
	}
	if err := t.log.Put(key, data); err != nil {
		return t.fail()
	}
	t.putsOK.Add(1)
	return tmem.STmem
}

// ensurePool lazily journals the pool the first time one of its pages
// overflows into the tier. The backend owns pool-id assignment; the tier
// only ever sees keys for pools that exist, so vm attribution uses the
// anonymous VMID 0 — the durable mirror needs the pool's kind and id, not
// its owner, to restore pages.
func (t *Tier) ensurePool(pool tmem.PoolID, kind tmem.PoolKind) error {
	if t.log.HasPool(pool) {
		return nil
	}
	return t.log.NewPool(pool, 0, kind)
}

func (t *Tier) Get(key tmem.Key, dst []byte) tmem.Status {
	t.gets.Add(1)
	if !t.log.Get(key, dst) {
		return tmem.ETmem
	}
	t.getsHit.Add(1)
	return tmem.STmem
}

func (t *Tier) FlushPage(key tmem.Key) tmem.Status {
	t.pageFlushes.Add(1)
	removed, err := t.log.FlushPage(key)
	if err != nil {
		return t.fail()
	}
	if !removed {
		return tmem.ETmem
	}
	return tmem.STmem
}

func (t *Tier) FlushObject(pool tmem.PoolID, object tmem.ObjectID) (mem.Pages, tmem.Status) {
	t.objectFlushes.Add(1)
	n, err := t.log.FlushObject(pool, object)
	if err != nil {
		return 0, t.fail()
	}
	return mem.Pages(n), tmem.STmem
}

func (t *Tier) DropPool(pool tmem.PoolID) {
	if err := t.log.DropPool(pool); err != nil {
		t.fail()
	}
}

func (t *Tier) Stats() tmem.TierStats {
	return tmem.TierStats{
		Puts:          t.puts.Load(),
		PutsOK:        t.putsOK.Load(),
		Gets:          t.gets.Load(),
		GetsHit:       t.getsHit.Load(),
		PageFlushes:   t.pageFlushes.Load(),
		ObjectFlushes: t.objectFlushes.Load(),
		Errors:        t.errors.Load(),
	}
}

// PutBatch journals the run's persistent pages with one WAL append and
// one group commit.
func (t *Tier) PutBatch(keys []tmem.Key, kinds []tmem.PoolKind, datas [][]byte, sts []tmem.Status) {
	t.puts.Add(uint64(len(keys)))
	for i := range sts {
		sts[i] = tmem.ETmem
	}
	if t.down.Load() {
		return
	}
	// Collect the journalable subset (persistent pools only).
	var bKeys []tmem.Key
	var bDatas [][]byte
	var bIdx []int
	for i, key := range keys {
		if kinds[i] != tmem.Persistent {
			continue
		}
		if err := t.ensurePool(key.Pool, kinds[i]); err != nil {
			t.fail()
			return
		}
		bKeys = append(bKeys, key)
		bDatas = append(bDatas, datas[i])
		bIdx = append(bIdx, i)
	}
	if len(bKeys) == 0 {
		return
	}
	if err := t.log.PutBatch(bKeys, bDatas); err != nil {
		t.fail()
		return
	}
	t.putsOK.Add(uint64(len(bKeys)))
	for _, i := range bIdx {
		sts[i] = tmem.STmem
	}
}

func (t *Tier) GetBatch(keys []tmem.Key, dsts [][]byte, sts []tmem.Status) {
	for i, key := range keys {
		var dst []byte
		if dsts != nil {
			dst = dsts[i]
		}
		sts[i] = t.Get(key, dst)
	}
}

// Summary bundles a durable tier's view for results and sinks: the tier
// counters (demotion traffic) plus the journal counters (WAL/snapshot
// activity and live state).
type Summary struct {
	Tier tmem.TierStats
	Log  Stats
}

// Summary snapshots the tier's counters together with its journal's.
func (t *Tier) Summary() Summary {
	return Summary{Tier: t.Stats(), Log: t.log.Stats()}
}

// Add folds o into s (cluster aggregation).
func (s *Summary) Add(o Summary) {
	s.Tier.Puts += o.Tier.Puts
	s.Tier.PutsOK += o.Tier.PutsOK
	s.Tier.Gets += o.Tier.Gets
	s.Tier.GetsHit += o.Tier.GetsHit
	s.Tier.PageFlushes += o.Tier.PageFlushes
	s.Tier.ObjectFlushes += o.Tier.ObjectFlushes
	s.Tier.Errors += o.Tier.Errors
	s.Log.Add(o.Log)
}

var (
	_ tmem.Tier      = (*Tier)(nil)
	_ tmem.BatchTier = (*Tier)(nil)
)
