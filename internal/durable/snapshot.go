package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"smartmem/internal/tmem"
)

// Snapshot layout. A compaction folds the live mirror into slab blobs
// under snapshot/<seq, 16 hex>/:
//
//	snapshot/<seq>/0000.slab ... NNNN.slab   records (same codec as the WAL)
//	snapshot/<seq>/MANIFEST                  JSON, written last
//
// <seq> is the WAL resume point: the snapshot plus every WAL segment with
// sequence >= <seq> reconstructs the full state. The MANIFEST is written
// after all slabs (and the blob Put is atomic), so a crash mid-snapshot
// leaves no MANIFEST and recovery simply uses the previous snapshot.
//
// CLEAN is a root-level marker a graceful shutdown writes after a final
// compaction; a boot that finds it pointing at the newest snapshot skips
// the WAL scan entirely (warm restart) and deletes the marker before
// serving, so a later crash is detected as such.

const (
	snapshotPrefix = "snapshot/"
	manifestName   = "MANIFEST"
	cleanKey       = "CLEAN"
)

type manifest struct {
	// WALResume is the first WAL segment sequence to replay on top.
	WALResume uint64 `json:"wal_resume"`
	// Slabs is the number of slab blobs in the snapshot directory.
	Slabs int `json:"slabs"`
	// Pools / Pages / Bytes describe the snapshotted state (informational).
	Pools int    `json:"pools"`
	Pages uint64 `json:"pages"`
	Bytes uint64 `json:"bytes"`
}

type cleanMarker struct {
	// Snapshot is the snapshot sequence the marker vouches for.
	Snapshot uint64 `json:"snapshot"`
}

func snapshotDir(seq uint64) string { return fmt.Sprintf("snapshot/%016x", seq) }

func slabKey(seq uint64, i int) string {
	return fmt.Sprintf("%s/%04d.slab", snapshotDir(seq), i)
}

// snapshotSeq extracts the sequence from a key under snapshot/.
func snapshotSeq(key string) (uint64, bool) {
	rest, ok := strings.CutPrefix(key, snapshotPrefix)
	if !ok {
		return 0, false
	}
	dir, _, ok := strings.Cut(rest, "/")
	if !ok || len(dir) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(dir, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// latestManifest finds the newest snapshot that has a MANIFEST (i.e. was
// completely written). Returns ok=false when no complete snapshot exists.
func latestManifest(blob BlobStore) (seq uint64, mf manifest, ok bool, err error) {
	keys, err := blob.List(snapshotPrefix)
	if err != nil {
		return 0, mf, false, err
	}
	var best uint64
	found := false
	for _, k := range keys {
		if !strings.HasSuffix(k, "/"+manifestName) {
			continue
		}
		if s, kok := snapshotSeq(k); kok && (!found || s > best) {
			best, found = s, true
		}
	}
	if !found {
		return 0, mf, false, nil
	}
	raw, err := blob.Get(snapshotDir(best) + "/" + manifestName)
	if err != nil {
		return 0, mf, false, err
	}
	if err := json.Unmarshal(raw, &mf); err != nil {
		return 0, mf, false, fmt.Errorf("durable: snapshot %016x manifest: %w", best, err)
	}
	return best, mf, true, nil
}

// snapshotState is the serializable mirror image a compaction captures.
type snapshotState struct {
	pools   map[tmem.PoolID]poolMeta
	objects map[objKey]map[tmem.PageIndex][]byte
	pages   uint64
	bytes   uint64
}

// buildSlabs serializes the state into slab byte blobs of roughly
// slabBytes each. Records are emitted in sorted order (pools by id, pages
// by pool/object/index) so identical states produce identical snapshots.
func buildSlabs(st snapshotState, slabBytes int64) [][]byte {
	poolIDs := make([]tmem.PoolID, 0, len(st.pools))
	for id := range st.pools {
		poolIDs = append(poolIDs, id)
	}
	sort.Slice(poolIDs, func(i, j int) bool { return poolIDs[i] < poolIDs[j] })

	objKeys := make([]objKey, 0, len(st.objects))
	for k := range st.objects {
		objKeys = append(objKeys, k)
	}
	sort.Slice(objKeys, func(i, j int) bool {
		a, b := objKeys[i], objKeys[j]
		if a.pool != b.pool {
			return a.pool < b.pool
		}
		return a.object < b.object
	})

	var slabs [][]byte
	var buf []byte
	var scratch []byte
	flush := func() {
		if len(buf) > 0 {
			slabs = append(slabs, buf)
			buf = nil
		}
	}
	emit := func(payload []byte) {
		buf = frameRecord(buf, payload)
		if int64(len(buf)) >= slabBytes {
			flush()
		}
	}

	for _, id := range poolIDs {
		pm := st.pools[id]
		scratch = newPoolPayload(scratch[:0], id, pm.vm, pm.kind)
		emit(scratch)
	}
	for _, ok := range objKeys {
		pages := st.objects[ok]
		idxs := make([]tmem.PageIndex, 0, len(pages))
		for idx := range pages {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for _, idx := range idxs {
			key := tmem.Key{Pool: ok.pool, Object: ok.object, Index: idx}
			scratch = putPayload(scratch[:0], key, pages[idx])
			emit(scratch)
		}
	}
	flush()
	return slabs
}

// writeSnapshot streams the slabs and finally the manifest.
func writeSnapshot(blob BlobStore, seq uint64, st snapshotState, slabBytes int64) error {
	slabs := buildSlabs(st, slabBytes)
	for i, slab := range slabs {
		if err := blob.Put(slabKey(seq, i), slab); err != nil {
			return err
		}
	}
	mf := manifest{
		WALResume: seq,
		Slabs:     len(slabs),
		Pools:     len(st.pools),
		Pages:     st.pages,
		Bytes:     st.bytes,
	}
	raw, err := json.Marshal(mf)
	if err != nil {
		return err
	}
	return blob.Put(snapshotDir(seq)+"/"+manifestName, raw)
}

// dropSnapshotsBefore deletes every complete-or-partial snapshot directory
// with sequence < keep.
func dropSnapshotsBefore(blob BlobStore, keep uint64) error {
	keys, err := blob.List(snapshotPrefix)
	if err != nil {
		return err
	}
	var errs []error
	for _, k := range keys {
		if seq, ok := snapshotSeq(k); ok && seq < keep {
			if err := blob.Delete(k); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// dropSegmentsBefore deletes every WAL segment with sequence < keep.
func dropSegmentsBefore(blob BlobStore, keep uint64) error {
	seqs, err := listSegments(blob)
	if err != nil {
		return err
	}
	var errs []error
	for _, s := range seqs {
		if s < keep {
			if err := blob.Delete(segKey(s)); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// readCleanMarker loads the CLEAN marker if present.
func readCleanMarker(blob BlobStore) (cleanMarker, bool, error) {
	raw, err := blob.Get(cleanKey)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return cleanMarker{}, false, nil
		}
		return cleanMarker{}, false, err
	}
	var m cleanMarker
	if err := json.Unmarshal(raw, &m); err != nil {
		// A garbled marker is treated as absent: fall back to full replay.
		return cleanMarker{}, false, nil
	}
	return m, true, nil
}

func writeCleanMarker(blob BlobStore, snapshot uint64) error {
	raw, err := json.Marshal(cleanMarker{Snapshot: snapshot})
	if err != nil {
		return err
	}
	return blob.Put(cleanKey, raw)
}
