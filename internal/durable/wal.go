package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
	"sync"

	"smartmem/internal/tmem"
)

// WAL record format. Every mutation of the durable mirror is one framed,
// checksummed record:
//
//	[u32 payload len][u32 crc32c(payload)][payload = u8 op | body]
//
// all integers big-endian, matching the kvstore wire convention. Bodies:
//
//	opPut         key(16) | u32 data len | data
//	opFlushPage   key(16)
//	opFlushObject u32 pool | u64 object
//	opNewPool     u32 pool | i64 vm | u8 kind
//	opDropPool    u32 pool
//
// Records are appended to segment blobs named wal/<seq, 16 hex>.log and a
// segment is sealed (never written again) once it crosses the configured
// size. A reopened log always starts a fresh segment, so a torn tail in
// the previous segment can never be followed by valid records.
const (
	opPut         byte = 1
	opFlushPage   byte = 2
	opFlushObject byte = 3
	opNewPool     byte = 4
	opDropPool    byte = 5
)

const (
	recHeaderLen = 8
	keyWireLen   = 16
	// maxRecordLen bounds a payload during replay: anything larger than a
	// maximal put record is corruption, not data, and must not drive a
	// giant allocation.
	maxRecordLen = 1<<20 + 64
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	// errTruncated: the buffer ends mid-record (torn tail candidate).
	errTruncated = errors.New("durable: truncated record")
	// errCorrupt: the record is structurally invalid or fails its checksum.
	errCorrupt = errors.New("durable: corrupt record")
)

// frameRecord appends [len][crc][payload] to dst.
func frameRecord(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

func appendKey(dst []byte, key tmem.Key) []byte { return key.AppendWire(dst) }

// record is one decoded WAL record; data aliases the scanned buffer.
type record struct {
	op     byte
	key    tmem.Key
	data   []byte
	pool   tmem.PoolID
	object tmem.ObjectID
	vm     tmem.VMID
	kind   tmem.PoolKind
}

// readRecord decodes the record starting at buf[off:], returning it and
// the offset of the next record. errTruncated means the buffer ran out
// mid-record; errCorrupt means the bytes cannot be a record at all.
func readRecord(buf []byte, off int) (record, int, error) {
	var r record
	if len(buf)-off < recHeaderLen {
		return r, off, errTruncated
	}
	plen := int(binary.BigEndian.Uint32(buf[off:]))
	crc := binary.BigEndian.Uint32(buf[off+4:])
	if plen < 1 || plen > maxRecordLen {
		return r, off, errCorrupt
	}
	if len(buf)-off-recHeaderLen < plen {
		return r, off, errTruncated
	}
	payload := buf[off+recHeaderLen : off+recHeaderLen+plen]
	if crc32.Checksum(payload, crcTable) != crc {
		return r, off, errCorrupt
	}
	next := off + recHeaderLen + plen
	r.op = payload[0]
	body := payload[1:]
	switch r.op {
	case opPut:
		if len(body) < keyWireLen+4 {
			return r, off, errCorrupt
		}
		key, err := tmem.KeyFromWire(body[:keyWireLen])
		if err != nil {
			return r, off, errCorrupt
		}
		dlen := int(binary.BigEndian.Uint32(body[keyWireLen:]))
		if len(body) != keyWireLen+4+dlen {
			return r, off, errCorrupt
		}
		r.key = key
		r.data = body[keyWireLen+4:]
	case opFlushPage:
		if len(body) != keyWireLen {
			return r, off, errCorrupt
		}
		key, err := tmem.KeyFromWire(body)
		if err != nil {
			return r, off, errCorrupt
		}
		r.key = key
	case opFlushObject:
		if len(body) != 12 {
			return r, off, errCorrupt
		}
		r.pool = tmem.PoolID(binary.BigEndian.Uint32(body))
		r.object = tmem.ObjectID(binary.BigEndian.Uint64(body[4:]))
	case opNewPool:
		if len(body) != 13 {
			return r, off, errCorrupt
		}
		r.pool = tmem.PoolID(binary.BigEndian.Uint32(body))
		r.vm = tmem.VMID(binary.BigEndian.Uint64(body[4:]))
		r.kind = tmem.PoolKind(body[12])
		if r.kind != tmem.Persistent && r.kind != tmem.Ephemeral {
			return r, off, errCorrupt
		}
	case opDropPool:
		if len(body) != 4 {
			return r, off, errCorrupt
		}
		r.pool = tmem.PoolID(binary.BigEndian.Uint32(body))
	default:
		return r, off, errCorrupt
	}
	return r, next, nil
}

// --- record builders (payload only; caller frames) ---

func putPayload(dst []byte, key tmem.Key, data []byte) []byte {
	dst = append(dst, opPut)
	dst = appendKey(dst, key)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(data)))
	return append(dst, data...)
}

func flushPagePayload(dst []byte, key tmem.Key) []byte {
	dst = append(dst, opFlushPage)
	return appendKey(dst, key)
}

func flushObjectPayload(dst []byte, pool tmem.PoolID, object tmem.ObjectID) []byte {
	dst = append(dst, opFlushObject)
	dst = binary.BigEndian.AppendUint32(dst, uint32(pool))
	return binary.BigEndian.AppendUint64(dst, uint64(object))
}

func newPoolPayload(dst []byte, pool tmem.PoolID, vm tmem.VMID, kind tmem.PoolKind) []byte {
	dst = append(dst, opNewPool)
	dst = binary.BigEndian.AppendUint32(dst, uint32(pool))
	dst = binary.BigEndian.AppendUint64(dst, uint64(vm))
	return append(dst, byte(kind))
}

func dropPoolPayload(dst []byte, pool tmem.PoolID) []byte {
	dst = append(dst, opDropPool)
	return binary.BigEndian.AppendUint32(dst, uint32(pool))
}

// --- segment naming ---

const walPrefix = "wal/"

func segKey(seq uint64) string { return fmt.Sprintf("wal/%016x.log", seq) }

// segSeq parses a segment key back to its sequence number.
func segSeq(key string) (uint64, bool) {
	name, ok := strings.CutPrefix(key, walPrefix)
	if !ok {
		return 0, false
	}
	name, ok = strings.CutSuffix(name, ".log")
	if !ok || len(name) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(name, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the store's WAL segment sequence numbers, ascending.
func listSegments(blob BlobStore) ([]uint64, error) {
	keys, err := blob.List(walPrefix)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, k := range keys {
		if seq, ok := segSeq(k); ok {
			seqs = append(seqs, seq)
		}
	}
	return seqs, nil
}

// --- writer ---

// walWriter appends framed records to the active segment, rotating at the
// configured size. Appends serialize under mu; fsync runs outside it with
// leader-based group commit: the first caller to need durability syncs
// once for every record appended so far, and concurrent committers piggy-
// back on that one fsync instead of issuing their own.
type walWriter struct {
	blob     BlobStore
	segBytes int64
	// syncOnRotate syncs a segment before sealing it, so sealed segments
	// are always machine-crash durable under the always/interval policies.
	syncOnRotate bool

	mu       sync.Mutex
	app      Appender
	seq      uint64 // active segment sequence number
	size     int64  // bytes appended to the active segment
	nextRec  uint64 // records appended over the writer's lifetime
	segments uint64 // segments ever opened
	bytes    uint64 // total bytes appended

	// group-commit state
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedRec uint64 // highest record number known durable
	syncBusy  bool   // a leader fsync is in flight
	fsyncs    uint64
}

// newWALWriter opens a writer on a fresh segment with the given sequence.
func newWALWriter(blob BlobStore, startSeq uint64, segBytes int64, syncOnRotate bool) (*walWriter, error) {
	w := &walWriter{blob: blob, segBytes: segBytes, syncOnRotate: syncOnRotate, seq: startSeq}
	w.syncCond = sync.NewCond(&w.syncMu)
	app, err := blob.Append(segKey(startSeq))
	if err != nil {
		return nil, err
	}
	w.app = app
	w.segments = 1
	return w, nil
}

// append writes nrecs framed records in one blob write and returns the
// last record's number for syncTo. Rotation happens before the write when
// the active segment is already full, so a write never spans segments.
func (w *walWriter) append(framed []byte, nrecs uint64) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.app == nil {
		return 0, errors.New("durable: wal writer closed")
	}
	if w.size > 0 && w.size+int64(len(framed)) > w.segBytes {
		if err := w.rotateLocked(w.seq + 1); err != nil {
			return 0, err
		}
	}
	if _, err := w.app.Write(framed); err != nil {
		return 0, err
	}
	w.size += int64(len(framed))
	w.bytes += uint64(len(framed))
	w.nextRec += nrecs
	return w.nextRec, nil
}

// rotateLocked seals the active segment and opens seq as the new one.
func (w *walWriter) rotateLocked(seq uint64) error {
	if w.app != nil {
		if w.syncOnRotate {
			if err := w.app.Sync(); err != nil {
				w.app.Close()
				w.app = nil
				return err
			}
		}
		if err := w.app.Close(); err != nil {
			w.app = nil
			return err
		}
	}
	app, err := w.blob.Append(segKey(seq))
	if err != nil {
		w.app = nil
		return err
	}
	w.app = app
	w.seq = seq
	w.size = 0
	w.segments++
	return nil
}

// forceRotate seals the active segment (even if empty writes happened) and
// returns the new active sequence — the compaction cut point: every record
// appended after forceRotate returns lands in a segment >= the result.
func (w *walWriter) forceRotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.app == nil {
		return 0, errors.New("durable: wal writer closed")
	}
	if err := w.rotateLocked(w.seq + 1); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// syncTo blocks until record rec is durable, fsyncing at most once per
// waiting cohort (leader-based group commit).
func (w *walWriter) syncTo(rec uint64) error {
	for {
		w.syncMu.Lock()
		for w.syncedRec < rec && w.syncBusy {
			w.syncCond.Wait()
		}
		if w.syncedRec >= rec {
			w.syncMu.Unlock()
			return nil
		}
		w.syncBusy = true
		w.syncMu.Unlock()

		// Snapshot the appender and high-water mark outside syncMu: the
		// fsync covers every record appended before this instant.
		w.mu.Lock()
		app, top := w.app, w.nextRec
		w.mu.Unlock()
		var err error
		if app != nil {
			err = app.Sync()
		}

		w.syncMu.Lock()
		w.fsyncs++
		if err == nil && top > w.syncedRec {
			w.syncedRec = top
		}
		w.syncBusy = false
		w.syncCond.Broadcast()
		w.syncMu.Unlock()
		if err != nil {
			return err
		}
		// err == nil and syncedRec advanced past rec: done. (Loop guards
		// against a rotation racing the snapshot; in practice one pass.)
		if top >= rec {
			return nil
		}
	}
}

// sync makes everything appended so far durable.
func (w *walWriter) sync() error {
	w.mu.Lock()
	top := w.nextRec
	w.mu.Unlock()
	if top == 0 {
		return nil
	}
	return w.syncTo(top)
}

// close syncs and closes the active segment.
func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.app == nil {
		return nil
	}
	serr := w.app.Sync()
	cerr := w.app.Close()
	w.app = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// counters returns a consistent snapshot of the writer's statistics.
func (w *walWriter) counters() (appends, bytes, segments uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextRec, w.bytes, w.segments
}

func (w *walWriter) fsyncCount() uint64 {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.fsyncs
}
