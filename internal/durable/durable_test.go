package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"smartmem/internal/tmem"
)

const testPageSize = 256

func testOpts(blob BlobStore) Options {
	return Options{
		Blob:          blob,
		PageSize:      testPageSize,
		Fsync:         FsyncOff,
		InlineCompact: true,
		CompactBytes:  -1, // no automatic compaction unless the test asks
	}
}

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func page(b byte) []byte {
	p := make([]byte, testPageSize)
	for i := range p {
		p[i] = b ^ byte(i)
	}
	return p
}

func key(pool tmem.PoolID, obj tmem.ObjectID, idx tmem.PageIndex) tmem.Key {
	return tmem.Key{Pool: pool, Object: obj, Index: idx}
}

// seedLog journals one pool and n pages, returning the expected contents.
func seedLog(t *testing.T, l *Log, pool tmem.PoolID, n int) map[tmem.Key][]byte {
	t.Helper()
	if err := l.NewPool(pool, 1, tmem.Persistent); err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	want := make(map[tmem.Key][]byte, n)
	for i := 0; i < n; i++ {
		k := key(pool, tmem.ObjectID(i/8), tmem.PageIndex(i%8))
		d := page(byte(i))
		if err := l.Put(k, d); err != nil {
			t.Fatalf("Put %v: %v", k, err)
		}
		want[k] = d
	}
	return want
}

// checkPages asserts the log holds exactly the expected pages, byte for
// byte.
func checkPages(t *testing.T, l *Log, want map[tmem.Key][]byte) {
	t.Helper()
	if got := l.PagesLive(); got != uint64(len(want)) {
		t.Fatalf("PagesLive = %d, want %d", got, len(want))
	}
	dst := make([]byte, testPageSize)
	for k, d := range want {
		if !l.Get(k, dst) {
			t.Fatalf("page %v missing", k)
		}
		if !bytes.Equal(dst, d) {
			t.Fatalf("page %v bytes differ", k)
		}
	}
}

func TestLogRoundTripReopen(t *testing.T) {
	blob := NewMemStore()
	l := mustOpen(t, testOpts(blob))
	want := seedLog(t, l, 0, 40)

	// Overwrite one page, flush another, flush a whole object.
	over := key(0, 0, 0)
	want[over] = page(0xEE)
	if err := l.Put(over, want[over]); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	fl := key(0, 1, 3)
	if removed, err := l.FlushPage(fl); err != nil || !removed {
		t.Fatalf("FlushPage = %v, %v", removed, err)
	}
	delete(want, fl)
	if n, err := l.FlushObject(0, 2); err != nil || n != 8 {
		t.Fatalf("FlushObject = %d, %v", n, err)
	}
	for k := range want {
		if k.Object == 2 {
			delete(want, k)
		}
	}
	checkPages(t, l, want)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Crash-style reopen: full WAL replay.
	l2 := mustOpen(t, testOpts(blob))
	defer l2.Close()
	ri := l2.Recovery()
	if ri.CleanShutdown || ri.SnapshotLoaded || ri.TornTail || ri.CorruptRecords != 0 {
		t.Fatalf("unexpected recovery info: %+v", ri)
	}
	if ri.WALRecords == 0 {
		t.Fatalf("no WAL records replayed: %+v", ri)
	}
	checkPages(t, l2, want)
}

func TestDropPoolReopen(t *testing.T) {
	blob := NewMemStore()
	l := mustOpen(t, testOpts(blob))
	seedLog(t, l, 0, 8)
	if err := l.NewPool(1, 2, tmem.Persistent); err != nil {
		t.Fatal(err)
	}
	keep := key(1, 0, 0)
	if err := l.Put(keep, page(9)); err != nil {
		t.Fatal(err)
	}
	if err := l.DropPool(0); err != nil {
		t.Fatalf("DropPool: %v", err)
	}
	l.Close()

	l2 := mustOpen(t, testOpts(blob))
	defer l2.Close()
	if l2.HasPool(0) {
		t.Fatal("dropped pool survived reopen")
	}
	checkPages(t, l2, map[tmem.Key][]byte{keep: page(9)})
}

func TestEphemeralPoolsNotJournaled(t *testing.T) {
	l := mustOpen(t, testOpts(NewMemStore()))
	defer l.Close()
	if err := l.NewPool(0, 1, tmem.Ephemeral); err != nil {
		t.Fatalf("ephemeral NewPool: %v", err)
	}
	if l.HasPool(0) {
		t.Fatal("ephemeral pool was journaled")
	}
	if err := l.Put(key(0, 0, 0), page(1)); err == nil {
		t.Fatal("put into unjournaled pool succeeded")
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	blob, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts(blob)
	opts.Fsync = FsyncAlways
	l := mustOpen(t, opts)
	want := seedLog(t, l, 0, 24)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	blob2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, testOpts(blob2))
	defer l2.Close()
	checkPages(t, l2, want)
	if st := l2.Stats(); st.Errors != 0 {
		t.Fatalf("errors after round trip: %+v", st)
	}
}

func TestDirStoreRejectsEscapingKeys(t *testing.T) {
	blob, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "/abs", "../escape", "wal/../../x"} {
		if err := blob.Put(k, []byte("x")); err == nil {
			t.Fatalf("key %q accepted", k)
		}
	}
}

// lastSegment returns the highest-sequence WAL segment key in the store.
func lastSegment(t *testing.T, blob BlobStore) string {
	t.Helper()
	seqs, err := listSegments(blob)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("listSegments = %v, %v", seqs, err)
	}
	return segKey(seqs[len(seqs)-1])
}

func TestRecoveryTornTail(t *testing.T) {
	blob := NewMemStore()
	l := mustOpen(t, testOpts(blob))
	want := seedLog(t, l, 0, 10)
	last := key(0, 9, 9)
	if err := l.Put(last, page(0xAB)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the final record: every truncation length from 1 byte up to
	// the whole record must recover the prefix without error.
	seg := lastSegment(t, blob)
	full, _ := blob.Get(seg)
	recLen := recHeaderLen + 1 + keyWireLen + 4 + testPageSize
	for cut := 1; cut <= recLen; cut += 37 {
		blob.Put(seg, full[:len(full)-cut])
		l2 := mustOpen(t, testOpts(blob))
		ri := l2.Recovery()
		if !ri.TornTail {
			t.Fatalf("cut %d: torn tail not detected: %+v", cut, ri)
		}
		if ri.CorruptRecords != 0 {
			t.Fatalf("cut %d: torn tail miscounted as corruption", cut)
		}
		if l2.Contains(last) {
			t.Fatalf("cut %d: torn record partially applied", cut)
		}
		checkPages(t, l2, want)

		// New writes after a torn-tail recovery land in a fresh segment
		// and survive the next reopen.
		extra := key(0, 50, 0)
		if err := l2.Put(extra, page(0x77)); err != nil {
			t.Fatalf("cut %d: post-recovery put: %v", cut, err)
		}
		l2.Close()
		l3 := mustOpen(t, testOpts(blob))
		if !l3.Contains(extra) {
			t.Fatalf("cut %d: post-recovery write lost", cut)
		}
		l3.Close()

		// Reset for the next cut: restore the original segment bytes and
		// drop the segments the probe added.
		segs, _ := listSegments(blob)
		for _, s := range segs {
			if segKey(s) != seg {
				blob.Delete(segKey(s))
			}
		}
		blob.Put(seg, full)
	}
}

func TestRecoveryCorruptChecksumMidLog(t *testing.T) {
	blob := NewMemStore()
	opts := testOpts(blob)
	opts.SegmentBytes = 1024 // force several segments
	l := mustOpen(t, opts)
	seedLog(t, l, 0, 64)
	l.Close()

	seqs, _ := listSegments(blob)
	if len(seqs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(seqs))
	}
	// Flip a payload byte in the middle of the FIRST segment: replay must
	// stop there (prefix consistency), count the corruption, not panic and
	// not apply anything from later segments.
	first := segKey(seqs[0])
	blob.Corrupt(first, func(b []byte) []byte {
		b[len(b)/2] ^= 0xFF
		return b
	})
	l2 := mustOpen(t, testOpts(blob))
	defer l2.Close()
	ri := l2.Recovery()
	if ri.CorruptRecords == 0 {
		t.Fatalf("mid-log corruption not detected: %+v", ri)
	}
	if ri.TornTail {
		t.Fatalf("mid-log corruption misreported as torn tail: %+v", ri)
	}
	if got := l2.PagesLive(); got >= 64 {
		t.Fatalf("replay did not stop at corruption: %d pages", got)
	}
}

func TestRecoveryEmptySegments(t *testing.T) {
	blob := NewMemStore()
	l := mustOpen(t, testOpts(blob))
	want := seedLog(t, l, 0, 5)
	l.Close()
	// Each reopen starts a fresh (possibly never-written) segment; several
	// in a row must replay cleanly.
	for i := 0; i < 3; i++ {
		l = mustOpen(t, testOpts(blob))
		checkPages(t, l, want)
		l.Close()
	}
	// And an explicitly empty blob too.
	blob.Put(segKey(999), nil)
	l = mustOpen(t, testOpts(blob))
	defer l.Close()
	checkPages(t, l, want)
}

func TestSnapshotNewerThanWAL(t *testing.T) {
	blob := NewMemStore()
	l := mustOpen(t, testOpts(blob))
	want := seedLog(t, l, 0, 20)
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	l.Close()

	// Delete every WAL segment, leaving only the snapshot: the manifest's
	// resume point now names segments that do not exist.
	seqs, _ := listSegments(blob)
	for _, s := range seqs {
		blob.Delete(segKey(s))
	}
	l2 := mustOpen(t, testOpts(blob))
	defer l2.Close()
	ri := l2.Recovery()
	if !ri.SnapshotLoaded || ri.WALSegments != 0 || ri.TornTail || ri.CorruptRecords != 0 {
		t.Fatalf("unexpected recovery info: %+v", ri)
	}
	checkPages(t, l2, want)
}

func TestCompactionPrunesAndPreserves(t *testing.T) {
	blob := NewMemStore()
	opts := testOpts(blob)
	opts.SegmentBytes = 2048
	opts.CompactBytes = 8192
	l := mustOpen(t, opts)
	want := seedLog(t, l, 0, 120)
	st := l.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no automatic compaction after %d WAL bytes", st.AppendedBytes)
	}
	if st.SnapshotPages == 0 {
		t.Fatal("snapshot empty")
	}
	// The WAL must have been pruned to the post-snapshot tail.
	seqs, _ := listSegments(blob)
	if len(seqs) > 3 {
		t.Fatalf("WAL not pruned: %d segments", len(seqs))
	}
	l.Close()

	l2 := mustOpen(t, testOpts(blob))
	defer l2.Close()
	if !l2.Recovery().SnapshotLoaded {
		t.Fatalf("snapshot not used: %+v", l2.Recovery())
	}
	checkPages(t, l2, want)
}

func TestCleanShutdownMarker(t *testing.T) {
	blob := NewMemStore()
	l := mustOpen(t, testOpts(blob))
	want := seedLog(t, l, 0, 30)
	if err := l.CloseClean(); err != nil {
		t.Fatalf("CloseClean: %v", err)
	}
	if _, err := blob.Get("CLEAN"); err != nil {
		t.Fatalf("no CLEAN marker: %v", err)
	}

	l2 := mustOpen(t, testOpts(blob))
	ri := l2.Recovery()
	if !ri.CleanShutdown {
		t.Fatalf("warm restart not detected: %+v", ri)
	}
	if ri.WALRecords != 0 {
		t.Fatalf("clean restart replayed %d WAL records", ri.WALRecords)
	}
	checkPages(t, l2, want)
	// The marker is consumed: a crash after this boot must replay.
	if _, err := blob.Get("CLEAN"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("CLEAN marker not consumed: %v", err)
	}
	extra := key(0, 40, 0)
	if err := l2.Put(extra, page(0x55)); err != nil {
		t.Fatal(err)
	}
	want[extra] = page(0x55)
	l2.Close() // crash-style

	l3 := mustOpen(t, testOpts(blob))
	defer l3.Close()
	if l3.Recovery().CleanShutdown {
		t.Fatal("crash misdetected as clean shutdown")
	}
	checkPages(t, l3, want)
}

func TestPutBatchGroupCommit(t *testing.T) {
	blob := NewMemStore()
	opts := testOpts(blob)
	opts.Fsync = FsyncAlways
	l := mustOpen(t, opts)
	if err := l.NewPool(0, 1, tmem.Persistent); err != nil {
		t.Fatal(err)
	}
	keys := make([]tmem.Key, 32)
	datas := make([][]byte, 32)
	want := make(map[tmem.Key][]byte)
	for i := range keys {
		keys[i] = key(0, 1, tmem.PageIndex(i))
		datas[i] = page(byte(i + 100))
		want[keys[i]] = datas[i]
	}
	if err := l.PutBatch(keys, datas); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	st := l.Stats()
	if st.Appends != 33 { // newpool + 32 puts
		t.Fatalf("Appends = %d, want 33", st.Appends)
	}
	if st.Fsyncs > 2 {
		t.Fatalf("batch did not group-commit: %d fsyncs", st.Fsyncs)
	}
	l.Close()
	l2 := mustOpen(t, testOpts(blob))
	defer l2.Close()
	checkPages(t, l2, want)
}

func TestFsyncPolicies(t *testing.T) {
	for _, spec := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"off", FsyncOff}} {
		got, err := ParseFsync(spec.in)
		if err != nil || got != spec.want {
			t.Fatalf("ParseFsync(%q) = %v, %v", spec.in, got, err)
		}
		if got.String() != spec.in {
			t.Fatalf("String() = %q, want %q", got.String(), spec.in)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}

	blob := NewMemStore()
	opts := testOpts(blob)
	opts.Fsync = FsyncAlways
	l := mustOpen(t, opts)
	seedLog(t, l, 0, 4)
	if st := l.Stats(); st.Fsyncs == 0 {
		t.Fatal("FsyncAlways issued no fsyncs")
	}
	l.Close()

	opts = testOpts(NewMemStore())
	opts.Fsync = FsyncInterval
	opts.FsyncEvery = time.Millisecond
	opts.InlineCompact = false
	opts.CompactBytes = 0 // default
	l = mustOpen(t, opts)
	seedLog(t, l, 0, 4)
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Fsyncs == 0 {
		t.Fatal("FsyncInterval never synced")
	}
	l.Close()
}

// failStore wraps a BlobStore and fails every Append write after a budget
// of successful bytes — the blob-outage double.
type failStore struct {
	BlobStore
	budget int
}

func (f *failStore) Append(key string) (Appender, error) {
	a, err := f.BlobStore.Append(key)
	if err != nil {
		return nil, err
	}
	return &failAppender{inner: a, store: f}, nil
}

type failAppender struct {
	inner Appender
	store *failStore
}

func (a *failAppender) Write(p []byte) (int, error) {
	if a.store.budget <= 0 {
		return 0, errors.New("simulated blob outage")
	}
	a.store.budget -= len(p)
	return a.inner.Write(p)
}
func (a *failAppender) Sync() error  { return a.inner.Sync() }
func (a *failAppender) Close() error { return a.inner.Close() }

func TestAppendFailureSurfacesAndCounts(t *testing.T) {
	fs := &failStore{BlobStore: NewMemStore(), budget: 2048}
	l := mustOpen(t, testOpts(fs))
	defer l.Close()
	if err := l.NewPool(0, 1, tmem.Persistent); err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < 64 && firstErr == nil; i++ {
		firstErr = l.Put(key(0, 0, tmem.PageIndex(i)), page(byte(i)))
	}
	if firstErr == nil {
		t.Fatal("outage never surfaced")
	}
	if st := l.Stats(); st.Errors == 0 {
		t.Fatalf("outage not counted: %+v", st)
	}
	// The mirror must not contain the failed page: Stats gauges stay
	// consistent with what the WAL actually holds.
	if l.PagesLive() >= 64 {
		t.Fatal("failed put landed in mirror")
	}
}

// --- tier over a backend ---

func TestTierDemotionRoundTrip(t *testing.T) {
	blob := NewMemStore()
	l := mustOpen(t, testOpts(blob))
	tier := NewTier("durable", l)
	// 8-page backend: most of the workload overflows into the tier.
	b := tmem.NewBackend(8, tmem.NewDataStore(testPageSize))
	b.AttachTier(tier)

	pool := b.NewPool(1, tmem.Persistent)
	epool := b.NewPool(1, tmem.Ephemeral)
	want := make(map[tmem.Key][]byte)
	for i := 0; i < 64; i++ {
		k := key(pool, tmem.ObjectID(1), tmem.PageIndex(i))
		d := page(byte(i))
		if st := b.Put(k, d); st != tmem.STmem {
			t.Fatalf("put %d: %v", i, st)
		}
		want[k] = d
	}
	ts := tier.Stats()
	if ts.PutsOK == 0 {
		t.Fatalf("no overflow reached the tier: %+v", ts)
	}
	// Ephemeral overflow must NOT be journaled.
	for i := 0; i < 16; i++ {
		b.Put(key(epool, 0, tmem.PageIndex(i)), page(0xCC))
	}
	if got := l.PagesLive(); got != ts.PutsOK {
		t.Fatalf("journal holds %d pages, tier accepted %d", got, ts.PutsOK)
	}

	// Every page reads back byte-identical through the backend.
	dst := make([]byte, testPageSize)
	for k, d := range want {
		if st := b.Get(k, dst); st != tmem.STmem {
			t.Fatalf("get %v: %v", k, st)
		}
		if !bytes.Equal(dst, d) {
			t.Fatalf("page %v corrupted", k)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.DestroyPool(pool); err != nil {
		t.Fatal(err)
	}
	if got := l.PagesLive(); got != 0 {
		t.Fatalf("%d journaled pages survived pool destroy", got)
	}
	l.Close()
}

func TestTierDegradesSticky(t *testing.T) {
	fs := &failStore{BlobStore: NewMemStore(), budget: 1 << 20}
	l := mustOpen(t, testOpts(fs))
	defer l.Close()
	tier := NewTier("durable", l)
	if st := tier.Put(key(0, 0, 0), tmem.Persistent, page(1)); st != tmem.STmem {
		t.Fatalf("healthy put: %v", st)
	}
	fs.budget = 0
	if st := tier.Put(key(0, 0, 1), tmem.Persistent, page(2)); st != tmem.ETmem {
		t.Fatalf("outage put: %v", st)
	}
	fs.budget = 1 << 20 // store recovers, tier must stay down
	if st := tier.Put(key(0, 0, 2), tmem.Persistent, page(3)); st != tmem.ETmem {
		t.Fatalf("sticky degradation violated: %v", st)
	}
	if tier.Stats().Errors == 0 {
		t.Fatal("error not counted")
	}
	// Reads still serve what was journaled before the outage.
	if st := tier.Get(key(0, 0, 0), nil); st != tmem.STmem {
		t.Fatalf("read after degradation: %v", st)
	}
}

// --- write-through store ---

func TestStoreWriteThroughCrashRecover(t *testing.T) {
	blob := NewMemStore()
	l := mustOpen(t, testOpts(blob))
	b := tmem.NewBackend(1024, tmem.NewDataStore(testPageSize))
	s := NewStore(b, l)

	pool := s.NewPool(7, tmem.Persistent)
	epool := s.NewPool(7, tmem.Ephemeral)
	want := make(map[tmem.Key][]byte)
	keys := make([]tmem.Key, 40)
	datas := make([][]byte, 40)
	sts := make([]tmem.Status, 40)
	for i := range keys {
		keys[i] = key(pool, tmem.ObjectID(i/8), tmem.PageIndex(i))
		datas[i] = page(byte(i))
	}
	s.PutBatch(keys, datas, sts)
	for i, st := range sts {
		if st != tmem.STmem {
			t.Fatalf("batch put %d: %v", i, st)
		}
		want[keys[i]] = datas[i]
	}
	if st := s.Put(key(epool, 0, 0), page(0xDD)); st != tmem.STmem {
		t.Fatalf("ephemeral put: %v", st)
	}
	if st := s.FlushPage(keys[3]); st != tmem.STmem {
		t.Fatalf("flush: %v", st)
	}
	delete(want, keys[3])

	// Crash: drop backend and log, reopen over the same blob.
	l2 := mustOpen(t, testOpts(blob))
	b2 := tmem.NewBackend(1024, tmem.NewDataStore(testPageSize))
	s2 := NewStore(b2, l2)
	rs, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Pools != 1 || rs.Pages != uint64(len(want)) || rs.Dropped != 0 {
		t.Fatalf("RecoverStats = %+v, want 1 pool / %d pages", rs, len(want))
	}
	dst := make([]byte, testPageSize)
	for k, d := range want {
		if st := s2.Get(k, dst); st != tmem.STmem {
			t.Fatalf("get %v after recovery: %v", k, st)
		}
		if !bytes.Equal(dst, d) {
			t.Fatalf("page %v corrupted across crash", k)
		}
	}
	// Ephemeral state is gone; the flushed page stays flushed.
	if st := s2.Get(key(epool, 0, 0), dst); st == tmem.STmem {
		t.Fatal("ephemeral page survived crash")
	}
	if st := s2.Get(keys[3], dst); st == tmem.STmem {
		t.Fatal("flushed page resurrected")
	}
	// Pool ids survive: a new pool must not collide with the restored one.
	if np := s2.NewPool(8, tmem.Persistent); np <= pool {
		t.Fatalf("restored pool id reissued: new pool %d vs restored %d", np, pool)
	}
	l2.Close()
}

func TestStoreRecoverIntoSmallerBackend(t *testing.T) {
	blob := NewMemStore()
	l := mustOpen(t, testOpts(blob))
	b := tmem.NewBackend(256, tmem.NewDataStore(testPageSize))
	s := NewStore(b, l)
	pool := s.NewPool(1, tmem.Persistent)
	want := make(map[tmem.Key][]byte)
	for i := 0; i < 64; i++ {
		k := key(pool, 0, tmem.PageIndex(i))
		d := page(byte(i))
		if st := s.Put(k, d); st != tmem.STmem {
			t.Fatalf("put %d: %v", i, st)
		}
		want[k] = d
	}

	// Restart into a backend with room for only 8 pages: Recover drops
	// what does not fit, but Get must still serve every page (from the
	// durable mirror) — zero persistent-page loss.
	l2 := mustOpen(t, testOpts(blob))
	b2 := tmem.NewBackend(8, tmem.NewDataStore(testPageSize))
	s2 := NewStore(b2, l2)
	rs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Dropped == 0 {
		t.Fatalf("expected drops into 8-page backend: %+v", rs)
	}
	dst := make([]byte, testPageSize)
	for k, d := range want {
		if st := s2.Get(k, dst); st != tmem.STmem {
			t.Fatalf("get %v: %v", k, st)
		}
		if !bytes.Equal(dst, d) {
			t.Fatalf("page %v corrupted", k)
		}
	}
	if s2.RecoveryServed() == 0 {
		t.Fatal("mirror fallback never used")
	}
	l2.Close()
}

func TestStoreJournalFailureNoFalseDurability(t *testing.T) {
	fs := &failStore{BlobStore: NewMemStore(), budget: 1 << 20}
	l := mustOpen(t, testOpts(fs))
	defer l.Close()
	b := tmem.NewBackend(1024, tmem.NewDataStore(testPageSize))
	s := NewStore(b, l)
	pool := s.NewPool(1, tmem.Persistent)
	if st := s.Put(key(pool, 0, 0), page(1)); st != tmem.STmem {
		t.Fatal("healthy put failed")
	}
	fs.budget = 0
	k := key(pool, 0, 1)
	if st := s.Put(k, page(2)); st != tmem.ETmem {
		t.Fatalf("unjournaled put acknowledged: %v", st)
	}
	// The backend must not hold a page the journal lost.
	if st := b.Get(k, nil); st == tmem.STmem {
		t.Fatal("false durability: page in backend but not in journal")
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after journal failure")
	}
	// Degradation is sticky even after the blob store recovers.
	fs.budget = 1 << 20
	if st := s.Put(key(pool, 0, 2), page(3)); st != tmem.ETmem {
		t.Fatalf("sticky degradation violated: %v", st)
	}
}

func TestRestorePoolAdvancesAllocator(t *testing.T) {
	b := tmem.NewBackend(64, tmem.NewDataStore(testPageSize))
	if err := b.RestorePool(5, 1, tmem.Persistent); err != nil {
		t.Fatalf("RestorePool: %v", err)
	}
	if err := b.RestorePool(5, 1, tmem.Persistent); err == nil {
		t.Fatal("duplicate restore accepted")
	}
	if id := b.NewPool(1, tmem.Ephemeral); id != 6 {
		t.Fatalf("NewPool after restore = %d, want 6", id)
	}
	if st := b.Put(key(5, 0, 0), page(1)); st != tmem.STmem {
		t.Fatalf("put into restored pool: %v", st)
	}
}

func TestSegmentNaming(t *testing.T) {
	for _, seq := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		got, ok := segSeq(segKey(seq))
		if !ok || got != seq {
			t.Fatalf("segSeq(segKey(%d)) = %d, %v", seq, got, ok)
		}
	}
	for _, k := range []string{"wal/xyz.log", "snapshot/0/MANIFEST", "wal/00.log", fmt.Sprintf("wal/%016x.bin", 3)} {
		if _, ok := segSeq(k); ok {
			t.Fatalf("segSeq accepted %q", k)
		}
	}
}
