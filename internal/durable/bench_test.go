package durable

import (
	"fmt"
	"testing"

	"smartmem/internal/tmem"
)

// BenchmarkWALAppend measures the journaling hot path: one page put =
// build record + checksum + append (+ group commit under fsync=always on
// a real file). The mem variants isolate the codec/locking cost; the dir
// variants add the kernel write path.
func BenchmarkWALAppend(b *testing.B) {
	const pageSize = 4096
	data := make([]byte, pageSize)
	for i := range data {
		data[i] = byte(i * 31)
	}

	run := func(name string, mkBlob func(b *testing.B) BlobStore, fsync FsyncPolicy) {
		b.Run(name, func(b *testing.B) {
			opts := Options{
				Blob:          mkBlob(b),
				PageSize:      pageSize,
				Fsync:         fsync,
				InlineCompact: true,
				CompactBytes:  -1,
			}
			l, err := Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			if err := l.NewPool(0, 1, tmem.Persistent); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(pageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := tmem.Key{Pool: 0, Object: tmem.ObjectID(i >> 16), Index: tmem.PageIndex(i)}
				if err := l.Put(k, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	memBlob := func(b *testing.B) BlobStore { return NewMemStore() }
	dirBlob := func(b *testing.B) BlobStore {
		d, err := NewDirStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	run("mem-nofsync", memBlob, FsyncOff)
	run("dir-nofsync", dirBlob, FsyncOff)
	run("dir-fsync-always", dirBlob, FsyncAlways)
}

// BenchmarkWALAppendBatch measures the batched group-commit path.
func BenchmarkWALAppendBatch(b *testing.B) {
	const pageSize = 4096
	for _, batch := range []int{16, 256} {
		b.Run(fmt.Sprintf("mem-batch-%d", batch), func(b *testing.B) {
			l, err := Open(Options{
				Blob:          NewMemStore(),
				PageSize:      pageSize,
				Fsync:         FsyncOff,
				InlineCompact: true,
				CompactBytes:  -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			if err := l.NewPool(0, 1, tmem.Persistent); err != nil {
				b.Fatal(err)
			}
			keys := make([]tmem.Key, batch)
			datas := make([][]byte, batch)
			data := make([]byte, pageSize)
			for i := range datas {
				datas[i] = data
			}
			b.SetBytes(int64(pageSize * batch))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range keys {
					keys[j] = tmem.Key{Pool: 0, Object: tmem.ObjectID(i), Index: tmem.PageIndex(j)}
				}
				if err := l.PutBatch(keys, datas); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
