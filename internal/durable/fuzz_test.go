package durable

import (
	"testing"

	"smartmem/internal/tmem"
)

// FuzzWALReplay feeds arbitrary bytes in as a WAL segment: Open must
// never panic, never allocate unboundedly, and always produce a mirror
// whose gauges are internally consistent — malformed records are rejected
// as a torn tail or corruption, not interpreted.
func FuzzWALReplay(f *testing.F) {
	// Seed with a valid segment, its truncations and mutations.
	seed := NewMemStore()
	l, err := Open(testOpts(seed))
	if err != nil {
		f.Fatal(err)
	}
	l.NewPool(0, 1, tmem.Persistent)
	l.Put(tmem.Key{Pool: 0, Object: 1, Index: 2}, []byte("page-bytes"))
	l.FlushPage(tmem.Key{Pool: 0, Object: 1, Index: 2})
	l.FlushObject(0, 1)
	l.DropPool(0)
	l.Close()
	segs, _ := listSegments(seed)
	valid, _ := seed.Get(segKey(segs[0]))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	mutated := append([]byte(nil), valid...)
	mutated[9] ^= 0x80
	f.Add(mutated)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		blob := NewMemStore()
		blob.Put(segKey(1), data)
		l, err := Open(testOpts(blob))
		if err != nil {
			return // structural open errors are fine; panics are not
		}
		// The mirror's gauges must agree with its contents whatever was
		// replayed.
		var pages, bytes uint64
		l.RangePages(func(_ tmem.Key, d []byte) bool {
			pages++
			bytes += uint64(len(d))
			return true
		})
		st := l.Stats()
		if st.PagesLive != pages || st.BytesLive != bytes {
			t.Fatalf("gauges inconsistent: %+v vs counted %d pages / %d bytes", st, pages, bytes)
		}
		// The repaired log must accept writes and survive a reopen.
		if err := l.NewPool(1000, 1, tmem.Persistent); err != nil {
			t.Fatalf("post-replay NewPool: %v", err)
		}
		k := tmem.Key{Pool: 1000, Object: 0, Index: 0}
		if err := l.Put(k, []byte("post-replay")); err != nil {
			t.Fatalf("post-replay Put: %v", err)
		}
		l.Close()
		l2, err := Open(testOpts(blob))
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		if !l2.Contains(k) {
			t.Fatal("post-replay write lost across reopen")
		}
		l2.Close()
	})
}
