// Package durable implements the bottom leg of the tmem demotion chain:
// a write-ahead log plus periodic slab snapshots, streamed to a pluggable
// blob store, with crash-recovery replay on boot (the lightningstream
// LMDB→S3 shape adapted to tmem pages). Persistent-pool mutations are
// journaled as checksummed records in segmented log files; compaction
// folds the live pages into snapshot slabs and prunes the log. Recovery
// loads the newest complete snapshot and replays the WAL tail, tolerating
// a torn final record.
//
// The package exposes three integration surfaces:
//
//   - Log: the journal itself — mirror state, WAL, snapshots, recovery.
//   - Tier: a tmem.Tier/BatchTier over a Log, the simulator's demotion leg
//     (RAM → compressed RAM → peer RAM → durable blob).
//   - Store: a write-through wrapper around a *tmem.Backend implementing
//     the kvstore server surface, the smartmem-kvd integration — every
//     successful persistent put is journaled regardless of which RAM tier
//     absorbed it, so a SIGKILL loses nothing.
package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// BlobStore is the pluggable persistence backend. The method set is
// S3-shaped (whole-object Put/Get/List/Delete over flat string keys with
// "/" separators) so a real object store drops in later; Append is the
// one extension WAL segments need — an S3 backend would buffer and
// multipart-upload on Sync, the local backends append in place.
//
// Implementations must be safe for concurrent use. Put must be atomic:
// a reader never observes a half-written blob.
type BlobStore interface {
	// Put atomically creates or replaces a whole blob.
	Put(key string, data []byte) error
	// Get returns a blob's full contents. Absent blobs report an error
	// satisfying errors.Is(err, os.ErrNotExist).
	Get(key string) ([]byte, error)
	// List returns every key with the given prefix, in lexical order.
	List(prefix string) ([]string, error)
	// Delete removes a blob; deleting an absent blob is not an error.
	Delete(key string) error
	// Append opens a blob for appending, creating it if absent.
	Append(key string) (Appender, error)
}

// Appender is an open, append-only blob handle. Sync makes everything
// written so far durable against machine crash; Close releases the handle
// without an implied sync.
type Appender interface {
	io.Writer
	Sync() error
	Close() error
}

// --- local directory backend ---

// DirStore is the local-filesystem BlobStore: each key is a file under a
// root directory. Put goes through a temp file + rename so it is atomic on
// POSIX filesystems. Appenders write straight through an *os.File with no
// user-space buffering, so every record handed to Write has reached the
// kernel before the call returns — a SIGKILL'd process loses at most the
// record being written, which is exactly the torn tail recovery tolerates.
// Sync (fsync) is only needed to survive machine crashes.
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("durable: blob dir: %w", err)
	}
	return &DirStore{root: root}, nil
}

// Root returns the store's root directory.
func (d *DirStore) Root() string { return d.root }

// path validates a blob key and maps it to a filesystem path. Keys are
// flat slash-separated names produced by this package; anything that
// could escape the root is rejected outright.
func (d *DirStore) path(key string) (string, error) {
	if key == "" || strings.HasPrefix(key, "/") || strings.Contains(key, "..") {
		return "", fmt.Errorf("durable: invalid blob key %q", key)
	}
	return filepath.Join(d.root, filepath.FromSlash(key)), nil
}

func (d *DirStore) Put(key string, data []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func (d *DirStore) Get(key string) ([]byte, error) {
	p, err := d.path(key)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

func (d *DirStore) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.root, func(p string, e os.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(d.root, p)
		if rerr != nil {
			return rerr
		}
		key := filepath.ToSlash(rel)
		// Skip in-flight Put temp files.
		if strings.HasPrefix(filepath.Base(key), ".tmp-") {
			return nil
		}
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func (d *DirStore) Delete(key string) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (d *DirStore) Append(key string) (Appender, error) {
	p, err := d.path(key)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// --- in-memory backend ---

// MemStore is the in-memory BlobStore: the deterministic simulator
// backend and the unit-test crash double. Appended bytes are visible in
// the map as soon as Write returns, so "kill the process and reopen the
// store" is modeled by simply discarding the Log and opening a new one
// over the same MemStore.
type MemStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

func (m *MemStore) Put(key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[key] = append([]byte(nil), data...)
	return nil
}

func (m *MemStore) Get(key string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	if !ok {
		return nil, fmt.Errorf("durable: blob %q: %w", key, os.ErrNotExist)
	}
	return append([]byte(nil), b...), nil
}

func (m *MemStore) List(prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for k := range m.blobs {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, key)
	return nil
}

func (m *MemStore) Append(key string) (Appender, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[key]; !ok {
		m.blobs[key] = nil
	}
	return &memAppender{store: m, key: key}, nil
}

// Corrupt replaces a blob's bytes in place — the unit-test hook for
// simulating torn tails and bit rot without reaching into internals.
func (m *MemStore) Corrupt(key string, f func([]byte) []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	if !ok {
		return fmt.Errorf("durable: blob %q: %w", key, os.ErrNotExist)
	}
	m.blobs[key] = f(append([]byte(nil), b...))
	return nil
}

type memAppender struct {
	store *MemStore
	key   string
}

func (a *memAppender) Write(p []byte) (int, error) {
	a.store.mu.Lock()
	defer a.store.mu.Unlock()
	a.store.blobs[a.key] = append(a.store.blobs[a.key], p...)
	return len(p), nil
}

func (a *memAppender) Sync() error  { return nil }
func (a *memAppender) Close() error { return nil }

var (
	_ BlobStore = (*DirStore)(nil)
	_ BlobStore = (*MemStore)(nil)
)
