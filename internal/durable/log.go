package durable

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"smartmem/internal/tmem"
)

// FsyncPolicy selects when WAL appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval syncs on a wall-clock ticker (default 100ms): a
	// machine crash loses at most the last interval, a process kill loses
	// nothing (appends hit the kernel synchronously).
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways group-commits every mutation: the call returns only
	// after its record is fsynced. Concurrent writers share one fsync.
	FsyncAlways
	// FsyncOff never syncs (beyond segment seals and close). The
	// deterministic simulator mode: no timers, no fsync counters.
	FsyncOff
)

// ParseFsync maps the -fsync flag spelling to a policy.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options configures a Log.
type Options struct {
	// Blob is the persistence backend. Required.
	Blob BlobStore
	// PageSize bounds a page record's data length. Required.
	PageSize int
	// SegmentBytes seals a WAL segment once it crosses this size.
	// Default 4 MiB.
	SegmentBytes int64
	// CompactBytes triggers a compaction after this many WAL bytes since
	// the last snapshot. Default 64 MiB; <0 disables automatic compaction
	// (explicit Compact still works).
	CompactBytes int64
	// SlabBytes splits snapshots into blobs of roughly this size.
	// Default 1 MiB.
	SlabBytes int64
	// Fsync is the commit durability policy.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period. Default 100ms.
	FsyncEvery time.Duration
	// InlineCompact runs compactions synchronously inside the mutating
	// call instead of on a background goroutine — the deterministic
	// simulator mode (no goroutine scheduling in the counters).
	InlineCompact bool
}

func (o Options) withDefaults() (Options, error) {
	if o.Blob == nil {
		return o, errors.New("durable: Options.Blob is required")
	}
	if o.PageSize <= 0 {
		return o, errors.New("durable: Options.PageSize must be positive")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 64 << 20
	}
	if o.SlabBytes <= 0 {
		o.SlabBytes = 1 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	return o, nil
}

// Stats are a Log's cumulative counters plus its live-state gauges.
type Stats struct {
	Appends       uint64 // WAL records appended
	AppendedBytes uint64 // WAL bytes appended
	Fsyncs        uint64 // fsyncs issued (group commit: <= Appends)
	Segments      uint64 // WAL segments opened over the log's lifetime
	Compactions   uint64 // snapshots taken
	SnapshotPages uint64 // pages in the latest snapshot
	Pools         uint64 // live pools in the mirror
	PagesLive     uint64 // live pages in the mirror
	BytesLive     uint64 // live page bytes in the mirror
	Errors        uint64 // blob I/O failures (append, sync or snapshot)
}

// Add folds o into s (cluster aggregation; gauges sum across nodes).
func (s *Stats) Add(o Stats) {
	s.Appends += o.Appends
	s.AppendedBytes += o.AppendedBytes
	s.Fsyncs += o.Fsyncs
	s.Segments += o.Segments
	s.Compactions += o.Compactions
	s.SnapshotPages += o.SnapshotPages
	s.Pools += o.Pools
	s.PagesLive += o.PagesLive
	s.BytesLive += o.BytesLive
	s.Errors += o.Errors
}

// RecoveryInfo describes what Open found and replayed.
type RecoveryInfo struct {
	// CleanShutdown: a CLEAN marker matched the newest snapshot, so the
	// WAL scan was skipped entirely (warm restart).
	CleanShutdown bool
	// SnapshotLoaded / SnapshotSeq / SnapshotPages describe the snapshot
	// the state was seeded from, if any.
	SnapshotLoaded bool
	SnapshotSeq    uint64
	SnapshotPages  uint64
	// WALSegments / WALRecords count the replayed tail.
	WALSegments int
	WALRecords  uint64
	// TornTail: the final segment ended mid-record; the partial record
	// was discarded (tolerated — a crash mid-append).
	TornTail bool
	// CorruptRecords: a checksum or structural failure before the final
	// segment's tail. Replay stops at the failure (prefix consistency)
	// and this counts the segments' remaining bytes as lost.
	CorruptRecords uint64
	// Pools / PagesLive are the recovered mirror gauges.
	Pools     int
	PagesLive uint64
}

type poolMeta struct {
	vm   tmem.VMID
	kind tmem.PoolKind
}

type objKey struct {
	pool   tmem.PoolID
	object tmem.ObjectID
}

// PoolInfo is one recovered pool, for replaying into a backend.
type PoolInfo struct {
	ID   tmem.PoolID
	VM   tmem.VMID
	Kind tmem.PoolKind
}

var errClosed = errors.New("durable: log closed")

// Log is the durable journal: an in-memory mirror of every live
// persistent page, a segmented WAL recording its mutations, and periodic
// slab snapshots that let the WAL be pruned. All methods are safe for
// concurrent use.
//
// Page slices stored in the mirror are immutable once inserted (puts
// always copy), so snapshots and RangePages can share them without
// holding the lock during blob I/O.
type Log struct {
	opts Options
	w    *walWriter

	mu           sync.Mutex
	pools        map[tmem.PoolID]poolMeta
	objects      map[objKey]map[tmem.PageIndex][]byte
	pagesLive    uint64
	bytesLive    uint64
	walSinceSnap int64
	closed       bool

	compactMu     sync.Mutex // serializes compactions
	compactions   uint64     // under mu
	snapshotSeq   uint64     // under mu
	snapshotPages uint64     // under mu
	errors        uint64     // under mu

	recovery RecoveryInfo

	scratch []byte // framed-record build buffer, under mu
	payload []byte // payload build buffer (must not alias scratch), under mu

	stop      chan struct{}
	compactCh chan struct{}
	bg        sync.WaitGroup
	stopOnce  sync.Once
}

// Open loads (or initializes) a log from the blob store: newest complete
// snapshot first, then the WAL tail, tolerating a torn final record. A
// CLEAN marker from a graceful shutdown skips the WAL scan; the marker is
// consumed either way, so the next boot after a crash replays properly.
func Open(opts Options) (*Log, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	l := &Log{
		opts:      opts,
		pools:     make(map[tmem.PoolID]poolMeta),
		objects:   make(map[objKey]map[tmem.PageIndex][]byte),
		stop:      make(chan struct{}),
		compactCh: make(chan struct{}, 1),
	}
	blob := opts.Blob

	marker, haveMarker, err := readCleanMarker(blob)
	if err != nil {
		return nil, err
	}
	mfSeq, mf, haveMf, err := latestManifest(blob)
	if err != nil {
		return nil, err
	}
	segs, err := listSegments(blob)
	if err != nil {
		return nil, err
	}

	if haveMf {
		if err := l.loadSnapshot(mfSeq, mf); err != nil {
			return nil, err
		}
		l.recovery.SnapshotLoaded = true
		l.recovery.SnapshotSeq = mfSeq
		l.recovery.SnapshotPages = mf.Pages
		l.snapshotSeq = mfSeq
		l.snapshotPages = mf.Pages
	}
	if haveMarker && haveMf && marker.Snapshot == mfSeq {
		// Warm restart: the marker vouches that the snapshot captured
		// everything — no WAL bytes to replay.
		l.recovery.CleanShutdown = true
	} else {
		resume := uint64(0)
		if haveMf {
			resume = mf.WALResume
		}
		l.replayTail(blob, segs, resume)
	}
	blob.Delete(cleanKey)

	l.recovery.Pools = len(l.pools)
	l.recovery.PagesLive = l.pagesLive

	// Always start a fresh segment: appending after a torn tail would put
	// valid records behind a broken one, where replay cannot reach them.
	startSeq := uint64(1)
	if n := len(segs); n > 0 && segs[n-1]+1 > startSeq {
		startSeq = segs[n-1] + 1
	}
	if haveMf && mfSeq+1 > startSeq {
		startSeq = mfSeq + 1
	}
	w, err := newWALWriter(blob, startSeq, opts.SegmentBytes, opts.Fsync != FsyncOff)
	if err != nil {
		return nil, err
	}
	l.w = w

	if opts.Fsync == FsyncInterval {
		l.bg.Add(1)
		go l.fsyncLoop()
	}
	if !opts.InlineCompact && opts.CompactBytes > 0 {
		l.bg.Add(1)
		go l.compactLoop()
	}
	return l, nil
}

// loadSnapshot seeds the mirror from a snapshot's slabs. Snapshots are
// written atomically (manifest last), so any decode failure here is real
// corruption and aborts the open.
func (l *Log) loadSnapshot(seq uint64, mf manifest) error {
	for i := 0; i < mf.Slabs; i++ {
		buf, err := l.opts.Blob.Get(slabKey(seq, i))
		if err != nil {
			return fmt.Errorf("durable: snapshot %016x slab %d: %w", seq, i, err)
		}
		off := 0
		for off < len(buf) {
			rec, next, err := readRecord(buf, off)
			if err != nil {
				return fmt.Errorf("durable: snapshot %016x slab %d offset %d: %w", seq, i, off, err)
			}
			l.applyRecord(rec)
			off = next
		}
	}
	return nil
}

// replayTail replays every WAL segment with sequence >= resume, in order.
// A decode failure in the final segment is a torn tail (tolerated, replay
// of that segment stops); a failure in any earlier segment is mid-log
// corruption — replay stops entirely, keeping the applied prefix. Either
// way the recovered prefix is made authoritative on the blob store: the
// failing segment is truncated to its valid prefix and any segments after
// it are dropped, so the next boot replays exactly the state this one
// recovered and records appended after recovery stay reachable.
func (l *Log) replayTail(blob BlobStore, segs []uint64, resume uint64) {
	var tail []uint64
	for _, s := range segs {
		if s >= resume {
			tail = append(tail, s)
		}
	}
	for i, s := range tail {
		buf, err := blob.Get(segKey(s))
		if err != nil {
			// A listed segment that cannot be read is corruption unless it
			// simply vanished after listing.
			l.recovery.CorruptRecords++
			l.repairTail(blob, s, nil, 0, tail[i+1:])
			return
		}
		l.recovery.WALSegments++
		off := 0
		for off < len(buf) {
			rec, next, rerr := readRecord(buf, off)
			if rerr != nil {
				if i == len(tail)-1 {
					l.recovery.TornTail = true
				} else {
					l.recovery.CorruptRecords++
				}
				l.repairTail(blob, s, buf, off, tail[i+1:])
				return
			}
			l.applyRecord(rec)
			l.recovery.WALRecords++
			off = next
		}
	}
}

// repairTail truncates the failing segment to its replayed prefix and
// deletes every segment after it. Best-effort: a failure here only means
// the next boot re-tolerates the same damage.
func (l *Log) repairTail(blob BlobStore, seg uint64, buf []byte, validLen int, later []uint64) {
	if buf != nil {
		blob.Put(segKey(seg), buf[:validLen])
	} else {
		blob.Delete(segKey(seg))
	}
	for _, s := range later {
		blob.Delete(segKey(s))
	}
}

// applyRecord mutates the mirror with one replayed record. Replay is
// deliberately forgiving: records referencing unknown pools are skipped
// (they can only follow a tolerated loss) and never panic.
func (l *Log) applyRecord(r record) {
	switch r.op {
	case opNewPool:
		if _, ok := l.pools[r.pool]; !ok {
			l.pools[r.pool] = poolMeta{vm: r.vm, kind: r.kind}
		}
	case opDropPool:
		l.dropPoolLocked(r.pool)
	case opPut:
		if _, ok := l.pools[r.key.Pool]; !ok {
			return
		}
		if len(r.data) > l.opts.PageSize {
			return
		}
		l.storePage(r.key, r.data)
	case opFlushPage:
		l.erasePage(r.key)
	case opFlushObject:
		l.eraseObject(objKey{pool: r.pool, object: r.object})
	}
}

// --- mirror mutation helpers (caller holds mu or is in single-threaded
// recovery) ---

func (l *Log) storePage(key tmem.Key, data []byte) {
	ok := objKey{pool: key.Pool, object: key.Object}
	pages := l.objects[ok]
	if pages == nil {
		pages = make(map[tmem.PageIndex][]byte)
		l.objects[ok] = pages
	}
	if old, exists := pages[key.Index]; exists {
		l.bytesLive -= uint64(len(old))
	} else {
		l.pagesLive++
	}
	// Always a fresh copy: mirror slices are immutable (snapshots and
	// RangePages share them outside the lock).
	pages[key.Index] = append([]byte(nil), data...)
	l.bytesLive += uint64(len(data))
}

func (l *Log) erasePage(key tmem.Key) bool {
	ok := objKey{pool: key.Pool, object: key.Object}
	pages := l.objects[ok]
	old, exists := pages[key.Index]
	if !exists {
		return false
	}
	delete(pages, key.Index)
	if len(pages) == 0 {
		delete(l.objects, ok)
	}
	l.pagesLive--
	l.bytesLive -= uint64(len(old))
	return true
}

func (l *Log) eraseObject(ok objKey) int {
	pages := l.objects[ok]
	if len(pages) == 0 {
		return 0
	}
	n := len(pages)
	for _, d := range pages {
		l.bytesLive -= uint64(len(d))
	}
	l.pagesLive -= uint64(n)
	delete(l.objects, ok)
	return n
}

func (l *Log) dropPoolLocked(pool tmem.PoolID) bool {
	if _, ok := l.pools[pool]; !ok {
		return false
	}
	delete(l.pools, pool)
	for ok := range l.objects {
		if ok.pool == pool {
			l.eraseObject(ok)
		}
	}
	return true
}

// --- journaled mutations ---

// journal frames payload (already built into l.scratch by the caller,
// under mu), appends it and returns the record number. Caller holds mu.
func (l *Log) journalLocked(payload []byte) (uint64, error) {
	l.payload = payload // keep the grown buffer for the next call
	l.scratch = frameRecord(l.scratch[:0], payload)
	n := len(l.scratch)
	rec, err := l.w.append(l.scratch, 1)
	if err != nil {
		l.errors++
		return 0, err
	}
	l.walSinceSnap += int64(n)
	return rec, nil
}

// commit enforces the fsync policy for record rec, then triggers a
// compaction if the WAL has grown past the threshold. Called after mu is
// released.
func (l *Log) commit(rec uint64, compact bool) error {
	if l.opts.Fsync == FsyncAlways {
		if err := l.w.syncTo(rec); err != nil {
			l.noteError()
			return err
		}
	}
	if compact {
		l.triggerCompact()
	}
	return nil
}

func (l *Log) noteError() {
	l.mu.Lock()
	l.errors++
	l.mu.Unlock()
}

// compactDue reports whether the WAL crossed the compaction threshold;
// caller holds mu.
func (l *Log) compactDue() bool {
	return l.opts.CompactBytes > 0 && l.walSinceSnap >= l.opts.CompactBytes
}

func (l *Log) triggerCompact() {
	if l.opts.InlineCompact {
		l.Compact()
		return
	}
	select {
	case l.compactCh <- struct{}{}:
	default:
	}
}

// NewPool journals the creation of a persistent pool under its assigned
// id. Ephemeral pools are not durable and are ignored.
func (l *Log) NewPool(id tmem.PoolID, vm tmem.VMID, kind tmem.PoolKind) error {
	if kind != tmem.Persistent {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	if _, dup := l.pools[id]; dup {
		l.mu.Unlock()
		return fmt.Errorf("durable: pool %d already journaled", id)
	}
	payload := newPoolPayload(l.payloadScratch(), id, vm, kind)
	rec, err := l.journalLocked(payload)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.pools[id] = poolMeta{vm: vm, kind: kind}
	compact := l.compactDue()
	l.mu.Unlock()
	return l.commit(rec, compact)
}

// payloadScratch returns the payload build buffer; journalLocked frames
// into the separate l.scratch buffer, so the two must not alias. The
// caller holds mu and must store the built payload back via the slice it
// returns (append may grow it).
func (l *Log) payloadScratch() []byte { return l.payload[:0] }

// HasPool reports whether the pool is journaled (i.e. persistent).
func (l *Log) HasPool(id tmem.PoolID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.pools[id]
	return ok
}

// DropPool journals a pool destruction and erases its pages. A pool the
// log never saw is a no-op.
func (l *Log) DropPool(id tmem.PoolID) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	if _, ok := l.pools[id]; !ok {
		l.mu.Unlock()
		return nil
	}
	payload := dropPoolPayload(l.payloadScratch(), id)
	rec, err := l.journalLocked(payload)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.dropPoolLocked(id)
	compact := l.compactDue()
	l.mu.Unlock()
	return l.commit(rec, compact)
}

// Put journals a page write and stores it in the mirror. The pool must
// have been journaled by NewPool.
func (l *Log) Put(key tmem.Key, data []byte) error {
	if len(data) > l.opts.PageSize {
		return fmt.Errorf("durable: page %v: %d bytes exceeds page size %d", key, len(data), l.opts.PageSize)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	if _, ok := l.pools[key.Pool]; !ok {
		l.mu.Unlock()
		return fmt.Errorf("durable: put into unjournaled pool %d", key.Pool)
	}
	payload := putPayload(l.payloadScratch(), key, data)
	rec, err := l.journalLocked(payload)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.storePage(key, data)
	compact := l.compactDue()
	l.mu.Unlock()
	return l.commit(rec, compact)
}

// PutBatch journals a run of page writes as one append and one commit —
// the group-commit fast path for batched overflow. All keys must belong
// to journaled pools.
func (l *Log) PutBatch(keys []tmem.Key, datas [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	for i, key := range keys {
		if _, ok := l.pools[key.Pool]; !ok {
			l.mu.Unlock()
			return fmt.Errorf("durable: put into unjournaled pool %d", key.Pool)
		}
		if len(datas[i]) > l.opts.PageSize {
			l.mu.Unlock()
			return fmt.Errorf("durable: page %v: %d bytes exceeds page size %d", key, len(datas[i]), l.opts.PageSize)
		}
	}
	framed := l.scratch[:0]
	for i, key := range keys {
		l.payload = putPayload(l.payload[:0], key, datas[i])
		framed = frameRecord(framed, l.payload)
	}
	l.scratch = framed
	rec, err := l.w.append(framed, uint64(len(keys)))
	if err != nil {
		l.errors++
		l.mu.Unlock()
		return err
	}
	l.walSinceSnap += int64(len(framed))
	for i, key := range keys {
		l.storePage(key, datas[i])
	}
	compact := l.compactDue()
	l.mu.Unlock()
	return l.commit(rec, compact)
}

// FlushPage journals a page invalidation. Pages the mirror does not hold
// are a no-op (nothing to make durable), reported via removed=false.
func (l *Log) FlushPage(key tmem.Key) (removed bool, err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false, errClosed
	}
	ok := objKey{pool: key.Pool, object: key.Object}
	if _, exists := l.objects[ok][key.Index]; !exists {
		l.mu.Unlock()
		return false, nil
	}
	payload := flushPagePayload(l.payloadScratch(), key)
	rec, err := l.journalLocked(payload)
	if err != nil {
		l.mu.Unlock()
		return false, err
	}
	l.erasePage(key)
	compact := l.compactDue()
	l.mu.Unlock()
	return true, l.commit(rec, compact)
}

// FlushObject journals an object invalidation, returning how many pages
// the mirror dropped. Unknown objects are a no-op.
func (l *Log) FlushObject(pool tmem.PoolID, object tmem.ObjectID) (int, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errClosed
	}
	ok := objKey{pool: pool, object: object}
	if len(l.objects[ok]) == 0 {
		l.mu.Unlock()
		return 0, nil
	}
	payload := flushObjectPayload(l.payloadScratch(), pool, object)
	rec, err := l.journalLocked(payload)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}
	n := l.eraseObject(ok)
	compact := l.compactDue()
	l.mu.Unlock()
	return n, l.commit(rec, compact)
}

// --- reads ---

// Get copies a mirrored page into dst (zero-filling any remainder) and
// reports whether the page exists. dst may be nil for a presence check.
func (l *Log) Get(key tmem.Key, dst []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, ok := l.objects[objKey{pool: key.Pool, object: key.Object}][key.Index]
	if !ok {
		return false
	}
	n := copy(dst, data)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return true
}

// Contains reports whether the mirror holds the page.
func (l *Log) Contains(key tmem.Key) bool { return l.Get(key, nil) }

// Pools returns the journaled pools, sorted by id.
func (l *Log) Pools() []PoolInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]PoolInfo, 0, len(l.pools))
	for id, pm := range l.pools {
		out = append(out, PoolInfo{ID: id, VM: pm.vm, Kind: pm.kind})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RangePages calls f for every live page in sorted key order (pool,
// object, index), stopping early if f returns false. The data slice is
// shared with the mirror and must not be mutated.
func (l *Log) RangePages(f func(key tmem.Key, data []byte) bool) {
	l.mu.Lock()
	keys := make([]objKey, 0, len(l.objects))
	for ok := range l.objects {
		keys = append(keys, ok)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pool != b.pool {
			return a.pool < b.pool
		}
		return a.object < b.object
	})
	type pageRef struct {
		key  tmem.Key
		data []byte
	}
	var pages []pageRef
	for _, ok := range keys {
		m := l.objects[ok]
		idxs := make([]tmem.PageIndex, 0, len(m))
		for idx := range m {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for _, idx := range idxs {
			pages = append(pages, pageRef{
				key:  tmem.Key{Pool: ok.pool, Object: ok.object, Index: idx},
				data: m[idx],
			})
		}
	}
	l.mu.Unlock()
	// Mirror slices are immutable, so f runs outside the lock.
	for _, p := range pages {
		if !f(p.key, p.data) {
			return
		}
	}
}

// PagesLive returns the live-page gauge.
func (l *Log) PagesLive() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pagesLive
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	appends, bytes, segments := l.w.counters()
	fsyncs := l.w.fsyncCount()
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:       appends,
		AppendedBytes: bytes,
		Fsyncs:        fsyncs,
		Segments:      segments,
		Compactions:   l.compactions,
		SnapshotPages: l.snapshotPages,
		Pools:         uint64(len(l.pools)),
		PagesLive:     l.pagesLive,
		BytesLive:     l.bytesLive,
		Errors:        l.errors,
	}
}

// Recovery returns what Open found and replayed.
func (l *Log) Recovery() RecoveryInfo { return l.recovery }

// Sync forces everything journaled so far to stable storage.
func (l *Log) Sync() error {
	if err := l.w.sync(); err != nil {
		l.noteError()
		return err
	}
	return nil
}

// --- compaction ---

// Compact seals the active WAL segment, snapshots the live mirror and
// prunes the sealed segments and older snapshots. Mutations racing the
// snapshot land in segments at or after the cut and replay on top of it.
func (l *Log) Compact() error {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	resume, err := l.w.forceRotate()
	if err != nil {
		l.errors++
		l.mu.Unlock()
		return err
	}
	// Structure-only copy: page slices are immutable and shared.
	st := snapshotState{
		pools:   make(map[tmem.PoolID]poolMeta, len(l.pools)),
		objects: make(map[objKey]map[tmem.PageIndex][]byte, len(l.objects)),
		pages:   l.pagesLive,
		bytes:   l.bytesLive,
	}
	for id, pm := range l.pools {
		st.pools[id] = pm
	}
	for ok, pages := range l.objects {
		cp := make(map[tmem.PageIndex][]byte, len(pages))
		for idx, d := range pages {
			cp[idx] = d
		}
		st.objects[ok] = cp
	}
	cut := l.walSinceSnap
	l.mu.Unlock()

	if err := writeSnapshot(l.opts.Blob, resume, st, l.opts.SlabBytes); err != nil {
		l.noteError()
		return err
	}
	// Prune is best-effort: stale blobs cost space, not correctness.
	dropSegmentsBefore(l.opts.Blob, resume)
	dropSnapshotsBefore(l.opts.Blob, resume)

	l.mu.Lock()
	l.walSinceSnap -= cut
	l.compactions++
	l.snapshotSeq = resume
	l.snapshotPages = st.pages
	l.mu.Unlock()
	return nil
}

// --- lifecycle ---

func (l *Log) fsyncLoop() {
	defer l.bg.Done()
	t := time.NewTicker(l.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.w.sync() // errors surface through Stats on the next explicit op
		}
	}
}

func (l *Log) compactLoop() {
	defer l.bg.Done()
	for {
		select {
		case <-l.stop:
			return
		case <-l.compactCh:
			l.Compact()
		}
	}
}

func (l *Log) stopBackground() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.bg.Wait()
}

// Close stops background work, syncs and closes the WAL. The blob store
// is left exactly as a crash would: the next Open replays snapshot + WAL.
func (l *Log) Close() error {
	l.stopBackground()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	return l.w.close()
}

// CloseClean performs a graceful shutdown: a final compaction folds the
// whole state into one snapshot, a CLEAN marker vouches for it, and the
// next Open skips the WAL replay entirely (warm restart).
func (l *Log) CloseClean() error {
	l.stopBackground()
	cerr := l.Compact()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	l.closed = true
	snap := l.snapshotSeq
	l.mu.Unlock()
	werr := l.w.close()
	if cerr == nil && werr == nil {
		cerr = writeCleanMarker(l.opts.Blob, snap)
	}
	if cerr != nil {
		return cerr
	}
	return werr
}
