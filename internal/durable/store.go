package durable

import (
	"fmt"
	"sync/atomic"

	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// Store is the smartmem-kvd integration: a write-through wrapper around a
// *tmem.Backend implementing the kvstore server surface. Every successful
// persistent-pool mutation is journaled after the backend accepts it —
// including puts a RAM tier (compressed, remote) absorbed, which a
// demotion-tier attachment would never see. The journal is therefore a
// complete mirror of the daemon's persistent state, and a SIGKILL at any
// point loses nothing that was acknowledged over the wire.
//
// Write-through ordering: the backend mutation happens first, the journal
// append second, and a journal failure undoes the backend put (the guest
// sees ETmem, never a false durability promise). After a journal failure
// the store degrades sticky — persistent puts answer ETmem until restart —
// mirroring RemoteTier's transport-failure policy.
type Store struct {
	b        *tmem.Backend
	log      *Log
	degraded atomic.Bool

	// recoveryServed counts gets answered from the journal mirror because
	// the restarted backend no longer held the page (capacity shrank or a
	// tier dropped it across the restart).
	recoveryServed atomic.Uint64
}

// NewStore wraps backend with write-through journaling into log.
func NewStore(b *tmem.Backend, log *Log) *Store {
	return &Store{b: b, log: log}
}

// Backend returns the wrapped backend.
func (s *Store) Backend() *tmem.Backend { return s.b }

// Log returns the journal.
func (s *Store) Log() *Log { return s.log }

// Degraded reports whether journaling has failed and durability is
// suspended.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// RecoveryServed counts gets served from the durable mirror after the
// restarted backend missed.
func (s *Store) RecoveryServed() uint64 { return s.recoveryServed.Load() }

func (s *Store) degrade() { s.degraded.Store(true) }

// RecoverStats summarizes a Recover replay.
type RecoverStats struct {
	// Pools is the number of persistent pools re-created.
	Pools int
	// Pages is the number of pages re-stored into the backend (possibly
	// landing in lower RAM tiers again).
	Pages uint64
	// Dropped counts recovered pages the backend could not hold (capacity
	// shrank across the restart). They stay in the journal mirror and are
	// served from it on Get.
	Dropped uint64
}

// Recover replays the journal's recovered state into the backend: pools
// are re-created under their original wire-visible ids, then every live
// page is re-stored through the full tier stack. Call once, after tiers
// are attached and before serving traffic.
func (s *Store) Recover() (RecoverStats, error) {
	var rs RecoverStats
	for _, p := range s.log.Pools() {
		if err := s.b.RestorePool(p.ID, p.VM, p.Kind); err != nil {
			return rs, fmt.Errorf("durable: recover pool %d: %w", p.ID, err)
		}
		rs.Pools++
	}
	s.log.RangePages(func(key tmem.Key, data []byte) bool {
		if s.b.Put(key, data) == tmem.STmem {
			rs.Pages++
		} else {
			rs.Dropped++
		}
		return true
	})
	return rs, nil
}

// --- kvstore server surface ---

func (s *Store) PageSize() mem.Bytes { return s.b.PageSize() }

func (s *Store) NewPool(vm tmem.VMID, kind tmem.PoolKind) tmem.PoolID {
	id := s.b.NewPool(vm, kind)
	if kind == tmem.Persistent && !s.degraded.Load() {
		if err := s.log.NewPool(id, vm, kind); err != nil {
			s.degrade()
		}
	}
	return id
}

func (s *Store) DestroyPool(id tmem.PoolID) error {
	err := s.b.DestroyPool(id)
	if lerr := s.log.DropPool(id); lerr != nil {
		s.degrade()
	}
	return err
}

func (s *Store) Put(key tmem.Key, data []byte) tmem.Status {
	st := s.b.Put(key, data)
	if st != tmem.STmem || !s.log.HasPool(key.Pool) {
		return st
	}
	if s.degraded.Load() {
		// Durability is suspended: refuse the persistent put rather than
		// acknowledge a page a crash would lose.
		s.b.FlushPage(key)
		return tmem.ETmem
	}
	if err := s.log.Put(key, data); err != nil {
		s.degrade()
		s.b.FlushPage(key)
		return tmem.ETmem
	}
	return st
}

func (s *Store) Get(key tmem.Key, dst []byte) tmem.Status {
	st := s.b.Get(key, dst)
	if st == tmem.STmem || !s.log.HasPool(key.Pool) {
		return st
	}
	// Backend miss on a journaled pool: serve from the durable mirror.
	// This only triggers for pages Recover could not re-store (shrunken
	// capacity) — in steady state backend and mirror agree.
	if s.log.Get(key, dst) {
		s.recoveryServed.Add(1)
		return tmem.STmem
	}
	return st
}

func (s *Store) FlushPage(key tmem.Key) tmem.Status {
	st := s.b.FlushPage(key)
	removed, err := s.log.FlushPage(key)
	if err != nil {
		s.degrade()
	}
	if removed && st != tmem.STmem {
		st = tmem.STmem
	}
	return st
}

func (s *Store) FlushObject(pool tmem.PoolID, object tmem.ObjectID) (mem.Pages, tmem.Status) {
	n, st := s.b.FlushObject(pool, object)
	m, err := s.log.FlushObject(pool, object)
	if err != nil {
		s.degrade()
	}
	// The mirror and backend hold (copies of) the same key set; report
	// whichever saw more in case recovery left the mirror a superset.
	if mem.Pages(m) > n {
		n = mem.Pages(m)
	}
	if m > 0 && st != tmem.STmem {
		st = tmem.STmem
	}
	return n, st
}

func (s *Store) PutBatch(keys []tmem.Key, datas [][]byte, sts []tmem.Status) {
	s.b.PutBatch(keys, datas, sts)
	// Journal the successful persistent subset in one append.
	var jKeys []tmem.Key
	var jDatas [][]byte
	var jIdx []int
	for i, key := range keys {
		if sts[i] != tmem.STmem || !s.log.HasPool(key.Pool) {
			continue
		}
		jKeys = append(jKeys, key)
		jDatas = append(jDatas, datas[i])
		jIdx = append(jIdx, i)
	}
	if len(jKeys) == 0 {
		return
	}
	if s.degraded.Load() || s.log.PutBatch(jKeys, jDatas) != nil {
		s.degrade()
		for n, i := range jIdx {
			s.b.FlushPage(jKeys[n])
			sts[i] = tmem.ETmem
		}
	}
}

func (s *Store) GetBatch(keys []tmem.Key, dsts [][]byte, sts []tmem.Status) {
	s.b.GetBatch(keys, dsts, sts)
	for i, key := range keys {
		if sts[i] == tmem.STmem || !s.log.HasPool(key.Pool) {
			continue
		}
		var dst []byte
		if dsts != nil {
			dst = dsts[i]
		}
		if s.log.Get(key, dst) {
			s.recoveryServed.Add(1)
			sts[i] = tmem.STmem
		}
	}
}
