package workload

import (
	"fmt"
	"math"

	"smartmem/internal/sim"
)

// This file contains real miniature implementations of the computations
// the two CloudSuite models stand in for. They serve three purposes:
// (1) the examples run them as genuine payloads, (2) their access
// behaviour (random gather for PageRank, blockwise sweeps for ALS)
// justifies the phase shapes used by GraphAnalytics and
// InMemoryAnalytics, and (3) they give the test suite non-trivial
// numerical code to verify.

// Graph is a directed graph in compressed adjacency form.
type Graph struct {
	N   int   // number of vertices
	Off []int // Off[v]..Off[v+1] index into Dst
	Dst []int // out-edges, concatenated per source vertex
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.Dst) }

// OutDegree returns vertex v's out-degree.
func (g *Graph) OutDegree(v int) int { return g.Off[v+1] - g.Off[v] }

// RMAT generates a scale-free directed graph with 2^scale vertices and
// approximately edgeFactor*2^scale edges using the R-MAT recursive
// partitioning model (a=0.57, b=0.19, c=0.19, d=0.05 — Graph500-like,
// matching the skewed degree distribution of social graphs such as the
// paper's soc-twitter-follows dataset).
func RMAT(rng *sim.RNG, scale int, edgeFactor int) *Graph {
	if scale < 1 || scale > 28 {
		panic(fmt.Sprintf("workload: RMAT scale %d out of range [1,28]", scale))
	}
	if edgeFactor < 1 {
		panic("workload: RMAT edge factor < 1")
	}
	n := 1 << uint(scale)
	m := n * edgeFactor
	srcs := make([]int, m)
	dsts := make([]int, m)
	const a, b, c = 0.57, 0.19, 0.19
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: nothing to add
			case r < a+b:
				v += bit
			case r < a+b+c:
				u += bit
			default:
				u += bit
				v += bit
			}
		}
		srcs[e], dsts[e] = u, v
	}
	// Build CSR.
	off := make([]int, n+1)
	for _, u := range srcs {
		off[u+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	dst := make([]int, m)
	cursor := append([]int(nil), off[:n]...)
	for e := 0; e < m; e++ {
		u := srcs[e]
		dst[cursor[u]] = dsts[e]
		cursor[u]++
	}
	return &Graph{N: n, Off: off, Dst: dst}
}

// PageRank runs iters power iterations with damping d and returns the rank
// vector (sums to ~1). It is the computation GraphAnalytics models: each
// iteration gathers ranks across edges in an order uncorrelated with
// vertex layout.
func PageRank(g *Graph, iters int, d float64) []float64 {
	if iters < 1 {
		panic("workload: PageRank iterations < 1")
	}
	if d <= 0 || d >= 1 {
		panic("workload: PageRank damping outside (0,1)")
	}
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		base := (1 - d) / float64(n)
		for i := range next {
			next[i] = base
		}
		dangling := 0.0
		for v := 0; v < n; v++ {
			deg := g.OutDegree(v)
			if deg == 0 {
				dangling += rank[v]
				continue
			}
			share := d * rank[v] / float64(deg)
			for _, w := range g.Dst[g.Off[v]:g.Off[v+1]] {
				next[w] += share
			}
		}
		if dangling > 0 {
			spread := d * dangling / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		rank, next = next, rank
	}
	return rank
}

// Ratings is a sparse user×item rating matrix in COO form, shaped like the
// MovieLens dataset used by CloudSuite's in-memory analytics (paper [17]).
type Ratings struct {
	Users, Items int
	User, Item   []int
	Value        []float64
}

// MovieLensShaped synthesizes nRatings ratings over users×items with a
// Zipf-like popularity skew on items (popular movies dominate, as in the
// real MovieLens distribution) and ratings in {0.5, 1.0, ..., 5.0}.
func MovieLensShaped(rng *sim.RNG, users, items, nRatings int) *Ratings {
	if users < 1 || items < 1 || nRatings < 1 {
		panic("workload: invalid ratings dimensions")
	}
	r := &Ratings{
		Users: users,
		Items: items,
		User:  make([]int, nRatings),
		Item:  make([]int, nRatings),
		Value: make([]float64, nRatings),
	}
	for i := 0; i < nRatings; i++ {
		r.User[i] = rng.Intn(users)
		// Zipf-ish item choice: x = items^(u) concentrates low indices.
		u := rng.Float64()
		item := int(math.Pow(float64(items), u)) - 1
		if item < 0 {
			item = 0
		}
		if item >= items {
			item = items - 1
		}
		r.Item[i] = item
		r.Value[i] = 0.5 + 0.5*float64(rng.Intn(10))
	}
	return r
}

// MiniALS performs iters rounds of alternating-least-squares-style
// factor updates with rank k and returns the RMSE after the final round.
// It is a simplified (diagonally regularized, gradient-style) version of
// the computation CloudSuite's recommender runs, and is the workload
// InMemoryAnalytics models: blockwise sweeps over the rating data with
// heavy per-element compute.
func MiniALS(r *Ratings, k, iters int, rng *sim.RNG) float64 {
	if k < 1 || iters < 1 {
		panic("workload: invalid ALS parameters")
	}
	uf := make([][]float64, r.Users)
	vf := make([][]float64, r.Items)
	for i := range uf {
		uf[i] = randVec(rng, k)
	}
	for i := range vf {
		vf[i] = randVec(rng, k)
	}
	const lr, reg = 0.01, 0.05
	for it := 0; it < iters; it++ {
		for e := range r.Value {
			u, v, y := r.User[e], r.Item[e], r.Value[e]
			pred := dot(uf[u], vf[v])
			err := y - pred
			for d := 0; d < k; d++ {
				du := lr * (err*vf[v][d] - reg*uf[u][d])
				dv := lr * (err*uf[u][d] - reg*vf[v][d])
				uf[u][d] += du
				vf[v][d] += dv
			}
		}
	}
	var se float64
	for e := range r.Value {
		d := r.Value[e] - dot(uf[r.User[e]], vf[r.Item[e]])
		se += d * d
	}
	return math.Sqrt(se / float64(len(r.Value)))
}

func randVec(rng *sim.RNG, k int) []float64 {
	v := make([]float64, k)
	for i := range v {
		v[i] = 0.1 * rng.NormFloat64()
	}
	return v
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
