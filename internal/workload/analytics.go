package workload

import (
	"fmt"

	"smartmem/internal/guest"
	"smartmem/internal/mem"
	"smartmem/internal/sim"
)

// InMemoryAnalytics models CloudSuite's in-memory analytics benchmark
// (collaborative filtering over the MovieLens dataset, paper Table II,
// Scenario 1): a dataset is loaded into memory, then scored in several
// compute passes that sweep the dataset in chunks with significant CPU
// work per page, and finally released.
//
// The chunk order of each pass is shuffled: real ALS-style scoring visits
// rating blocks in an order uncorrelated with memory layout, which makes
// the page miss ratio under memory pressure proportional to the overflow
// (dataset − RAM) rather than the pathological 100% of a cyclic scan. See
// MiniALS in datagen.go for the concrete computation this models.
type InMemoryAnalytics struct {
	// Label distinguishes repeated runs in reports ("run1", "run2").
	Label string
	// DatasetBytes is the in-memory footprint (dataset + model state).
	DatasetBytes mem.Bytes
	// Passes is the number of scoring sweeps over the dataset.
	Passes int
	// CPUPerPageLoad is compute charged per page during load (parsing).
	CPUPerPageLoad sim.Duration
	// CPUPerPagePass is compute charged per page during a scoring pass.
	CPUPerPagePass sim.Duration
	// ChunkPages is the contiguous block visited at a time.
	ChunkPages mem.Pages
	// WriteFraction is the share of pass accesses that dirty their page
	// (model-state updates amid mostly-read scoring). Zero selects the
	// default of 0.2.
	WriteFraction float64
}

// Name implements Workload.
func (w InMemoryAnalytics) Name() string { return "in-memory-analytics" }

// Run implements Workload.
func (w InMemoryAnalytics) Run(ctx *Ctx) {
	if w.DatasetBytes <= 0 || w.Passes <= 0 {
		panic("workload: invalid in-memory-analytics parameters")
	}
	chunk := w.ChunkPages
	if chunk <= 0 {
		chunk = 64
	}
	writeFrac := w.WriteFraction
	if writeFrac == 0 {
		writeFrac = 0.2
	}
	total := ctx.pages(w.DatasetBytes)
	start := ctx.Proc.Now()
	label := w.Label
	if label == "" {
		label = w.Name()
	}

	// Phase 1: load the dataset (sequential first-touch + parse cost;
	// writes by construction).
	for off := mem.Pages(0); off < total; off += chunk {
		if ctx.Stopped() {
			return
		}
		n := min(chunk, total-off)
		ctx.Guest.Access(ctx.Proc, guest.PageID(off), n, true)
		if w.CPUPerPageLoad > 0 {
			ctx.Guest.Idle(ctx.Proc, sim.Duration(int64(w.CPUPerPageLoad)*int64(n)))
		}
	}
	ctx.milestone(label + "-loaded")

	// Phase 2: scoring passes in shuffled chunk order; mostly reads with
	// a writeFrac share of model updates.
	nChunks := int((total + chunk - 1) / chunk)
	for pass := 0; pass < w.Passes; pass++ {
		order := ctx.RNG.Perm(nChunks)
		for _, ci := range order {
			if ctx.Stopped() {
				return
			}
			off := mem.Pages(ci) * chunk
			n := min(chunk, total-off)
			for j := mem.Pages(0); j < n; j++ {
				write := ctx.RNG.Float64() < writeFrac
				ctx.Guest.Touch(ctx.Proc, guest.PageID(off+j), write)
			}
			if w.CPUPerPagePass > 0 {
				ctx.Guest.Idle(ctx.Proc, sim.Duration(int64(w.CPUPerPagePass)*int64(n)))
			}
		}
		ctx.milestone(fmt.Sprintf("%s-pass-%d", label, pass+1))
	}

	// Phase 3: release everything (process exit frees swap + tmem).
	ctx.Guest.Free(ctx.Proc, 0, total)
	ctx.report(label, start, ctx.Proc.Now())
}

// GraphAnalytics models CloudSuite's graph analytics benchmark (PageRank
// over the soc-twitter-follows graph, paper Table II, Scenarios 2 and 3):
// the graph is materialized quickly — producing the sharp early footprint
// spike visible in the paper's Figures 6 and 10 — and then iterated over
// with poorly localized random accesses (edge-order gather), before being
// released. See RMAT/PageRank in datagen.go for the concrete computation
// this models.
type GraphAnalytics struct {
	// Label distinguishes runs in reports.
	Label string
	// GraphBytes is the in-memory graph footprint.
	GraphBytes mem.Bytes
	// Iterations is the number of rank iterations.
	Iterations int
	// TouchesPerPagePerIter controls how many random page touches one
	// iteration performs, as a multiple of the graph's page count
	// (edge-to-page ratio).
	TouchesPerPagePerIter float64
	// CPUPerTouch is compute charged per random touch.
	CPUPerTouch sim.Duration
	// CPUPerPageLoad is compute charged per page while building the graph
	// (kept small: the load phase is allocation-bound).
	CPUPerPageLoad sim.Duration
	// WriteFraction is the share of gather touches that dirty their page
	// (rank/aggregation updates amid mostly-read edge traversal). Zero
	// selects the default of 0.15.
	WriteFraction float64
	// HotFraction is the fraction of the graph's pages forming the hot
	// set (high-degree vertices and their adjacency, touched by most
	// gathers — social graphs are scale-free, see RMAT). Zero or >=1
	// selects uniform access over the whole graph.
	HotFraction float64
	// HotProb is the probability a gather touch lands in the hot set
	// (only meaningful with 0 < HotFraction < 1).
	HotProb float64
}

// Name implements Workload.
func (w GraphAnalytics) Name() string { return "graph-analytics" }

// Run implements Workload.
func (w GraphAnalytics) Run(ctx *Ctx) {
	if w.GraphBytes <= 0 || w.Iterations <= 0 {
		panic("workload: invalid graph-analytics parameters")
	}
	writeFrac := w.WriteFraction
	if writeFrac == 0 {
		writeFrac = 0.15
	}
	total := ctx.pages(w.GraphBytes)
	start := ctx.Proc.Now()
	label := w.Label
	if label == "" {
		label = w.Name()
	}
	const chunk = mem.Pages(256)

	// Phase 1: rapid graph construction (sequential writes, low CPU): the
	// memory demand "rapidly increases ... putting significant pressure on
	// the tmem capacity" (paper §V-B).
	for off := mem.Pages(0); off < total; off += chunk {
		if ctx.Stopped() {
			return
		}
		n := min(chunk, total-off)
		ctx.Guest.Access(ctx.Proc, guest.PageID(off), n, true)
		if w.CPUPerPageLoad > 0 {
			ctx.Guest.Idle(ctx.Proc, sim.Duration(int64(w.CPUPerPageLoad)*int64(n)))
		}
	}
	ctx.milestone(label + "-loaded")

	// Phase 2: rank iterations with random gather, hot-set biased when
	// configured (scale-free graphs concentrate traffic on high-degree
	// vertices; the cold tail of the adjacency is what overflows to
	// tmem/swap and is touched rarely).
	touchesPerIter := int64(float64(total) * w.TouchesPerPagePerIter)
	if touchesPerIter < 1 {
		touchesPerIter = 1
	}
	hotPages := total
	if w.HotFraction > 0 && w.HotFraction < 1 {
		hotPages = mem.Pages(float64(total) * w.HotFraction)
		if hotPages < 1 {
			hotPages = 1
		}
	}
	coldPages := total - hotPages
	for it := 0; it < w.Iterations; it++ {
		var done int64
		for done < touchesPerIter {
			if ctx.Stopped() {
				return
			}
			batch := int64(256)
			if rem := touchesPerIter - done; rem < batch {
				batch = rem
			}
			for i := int64(0); i < batch; i++ {
				var pg guest.PageID
				if coldPages > 0 && ctx.RNG.Float64() >= w.HotProb {
					pg = guest.PageID(int64(hotPages) + ctx.RNG.Int63n(int64(coldPages)))
				} else {
					pg = guest.PageID(ctx.RNG.Int63n(int64(hotPages)))
				}
				write := ctx.RNG.Float64() < writeFrac
				ctx.Guest.Touch(ctx.Proc, pg, write)
			}
			if w.CPUPerTouch > 0 {
				ctx.Guest.Idle(ctx.Proc, sim.Duration(int64(w.CPUPerTouch)*batch))
			}
			done += batch
		}
		ctx.milestone(fmt.Sprintf("%s-iter-%d", label, it+1))
	}

	// Phase 3: release.
	ctx.Guest.Free(ctx.Proc, 0, total)
	ctx.report(label, start, ctx.Proc.Now())
}
