package workload

import (
	"fmt"

	"smartmem/internal/guest"
	"smartmem/internal/mem"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
)

// Production-shaped workloads (ROADMAP item 4): the traffic patterns a
// fleet operator actually schedules around — diurnal demand waves, memory
// leaks, and noisy neighbors — as deterministic page-access models driving
// the same guest kernels as the paper workloads.

// diurnalShape is one full demand cycle sampled at 12 steps:
// (1 − cos(2πs/12))/2, hardcoded so the waveform is bit-identical on every
// platform (math.Cos may differ across architectures' assembly, and these
// values feed golden-tested runs).
var diurnalShape = [12]float64{
	0, 0.0670, 0.25, 0.5, 0.75, 0.9330,
	1, 0.9330, 0.75, 0.5, 0.25, 0.0670,
}

// DiurnalWave models a service whose working set swells and shrinks
// sinusoidally — the classic day/night traffic wave. Each step of a cycle
// walks the current working set (its size interpolated between BaseBytes
// and PeakBytes along diurnalShape) and releases memory on the downslope,
// so tmem demand rises to a crest, recedes, and repeats. The policy-visible
// signal is the same one an autoscaler sees: slow, predictable pressure
// changes a reallocation policy should track without thrash.
type DiurnalWave struct {
	// Label distinguishes runs in reports; one report entry per cycle.
	Label string
	// BaseBytes is the trough working set (always resident).
	BaseBytes mem.Bytes
	// PeakBytes is the crest working set (should exceed the VM's RAM for
	// the wave to reach tmem).
	PeakBytes mem.Bytes
	// Cycles is the number of full waves to run.
	Cycles int
	// DwellPerStep is idle time after each step's walk, pacing the wave.
	DwellPerStep sim.Duration
	// CPUPerPage is compute charged per page walked.
	CPUPerPage sim.Duration
	// WriteFraction is the share of walked chunks that dirty their pages
	// (session state updates amid mostly-read serving). Zero selects 0.3.
	WriteFraction float64
}

// Name implements Workload.
func (DiurnalWave) Name() string { return "diurnal-wave" }

// Run implements Workload.
func (w DiurnalWave) Run(ctx *Ctx) {
	if w.BaseBytes <= 0 || w.PeakBytes < w.BaseBytes || w.Cycles <= 0 {
		panic("workload: invalid diurnal-wave parameters")
	}
	writeFrac := w.WriteFraction
	if writeFrac == 0 {
		writeFrac = 0.3
	}
	const chunk = mem.Pages(256)
	base := ctx.pages(w.BaseBytes)
	peak := ctx.pages(w.PeakBytes)
	label := w.Label
	if label == "" {
		label = w.Name()
	}

	prev := mem.Pages(0)
	for cycle := 1; cycle <= w.Cycles; cycle++ {
		start := ctx.Proc.Now()
		for step, f := range diurnalShape {
			if ctx.Stopped() {
				return
			}
			target := base + mem.Pages(float64(peak-base)*f)
			// Scale-in: the downslope releases what the crest allocated,
			// exactly like request-scoped caches draining after the peak.
			if target < prev {
				ctx.Guest.Free(ctx.Proc, guest.PageID(target), prev-target)
			}
			// Walk the current working set; chunks dirty with probability
			// writeFrac (kept per-chunk so the walk batches page runs).
			for off := mem.Pages(0); off < target; off += chunk {
				if ctx.Stopped() {
					return
				}
				n := min(chunk, target-off)
				write := ctx.RNG.Float64() < writeFrac
				ctx.Guest.Access(ctx.Proc, guest.PageID(off), n, write)
				if w.CPUPerPage > 0 {
					ctx.Guest.Idle(ctx.Proc, sim.Duration(int64(w.CPUPerPage)*int64(n)))
				}
			}
			prev = target
			if step == len(diurnalShape)/2 {
				ctx.milestone(fmt.Sprintf("%s-crest-%d", label, cycle))
			}
			if w.DwellPerStep > 0 {
				ctx.Guest.Idle(ctx.Proc, w.DwellPerStep)
			}
		}
		ctx.report(fmt.Sprintf("%s-cycle%d", label, cycle), start, ctx.Proc.Now())
	}
	ctx.Guest.Free(ctx.Proc, 0, prev)
}

// Leak models a service with a memory leak: the working set only grows.
// Each round allocates GrowBytes more and then re-touches only the recent
// HotBytes window — the leaked tail below it goes cold and is never
// referenced again. The policy-relevant property: a VM whose tmem demand
// rises monotonically without any reuse of the overflow, the pattern where
// giving it ever more tmem is pure waste (the paper's smart policies should
// starve it; greedy rewards it).
type Leak struct {
	// Label distinguishes runs in reports.
	Label string
	// StartBytes is the initial working set.
	StartBytes mem.Bytes
	// GrowBytes is allocated per round (the leak rate).
	GrowBytes mem.Bytes
	// MaxBytes caps the footprint (the OOM-kill threshold stand-in); the
	// workload ends after reaching it.
	MaxBytes mem.Bytes
	// HotBytes is the trailing window re-touched each round (the live heap
	// amid the garbage). Zero selects GrowBytes.
	HotBytes mem.Bytes
	// RoundsAtMax is how many extra hot-window rounds run at full size
	// before exiting (steady-state leak pressure). Zero selects 2.
	RoundsAtMax int
	// CPUPerPage is compute charged per page touched.
	CPUPerPage sim.Duration
	// DwellPerRound is idle time after each round.
	DwellPerRound sim.Duration
}

// Name implements Workload.
func (Leak) Name() string { return "leak" }

// Run implements Workload.
func (w Leak) Run(ctx *Ctx) {
	if w.StartBytes <= 0 || w.GrowBytes <= 0 || w.MaxBytes < w.StartBytes {
		panic("workload: invalid leak parameters")
	}
	hotBytes := w.HotBytes
	if hotBytes <= 0 {
		hotBytes = w.GrowBytes
	}
	roundsAtMax := w.RoundsAtMax
	if roundsAtMax <= 0 {
		roundsAtMax = 2
	}
	const chunk = mem.Pages(256)
	label := w.Label
	if label == "" {
		label = w.Name()
	}
	start := ctx.Proc.Now()

	walk := func(first, count mem.Pages, write bool) bool {
		for off := mem.Pages(0); off < count; off += chunk {
			if ctx.Stopped() {
				return false
			}
			n := min(chunk, count-off)
			ctx.Guest.Access(ctx.Proc, guest.PageID(first+off), n, write)
			if w.CPUPerPage > 0 {
				ctx.Guest.Idle(ctx.Proc, sim.Duration(int64(w.CPUPerPage)*int64(n)))
			}
		}
		return true
	}

	size := ctx.pages(w.StartBytes)
	max := ctx.pages(w.MaxBytes)
	hot := ctx.pages(hotBytes)
	if !walk(0, size, true) {
		return
	}
	round := 0
	atMax := 0
	for atMax < roundsAtMax {
		if ctx.Stopped() {
			return
		}
		if size < max {
			grow := min(ctx.pages(w.GrowBytes), max-size)
			if !walk(size, grow, true) { // the leak: fresh, soon-cold pages
				return
			}
			size += grow
			if size == max {
				ctx.milestone(label + "-at-max")
			}
		} else {
			atMax++
		}
		// The live heap: only the trailing window is ever reused.
		win := min(hot, size)
		if !walk(size-win, win, true) {
			return
		}
		round++
		if w.DwellPerRound > 0 {
			ctx.Guest.Idle(ctx.Proc, w.DwellPerRound)
		}
	}
	ctx.report(label, start, ctx.Proc.Now())
	ctx.Guest.Free(ctx.Proc, 0, size)
}

// FileThrash is the adversarial noisy neighbor: it cyclically re-reads a
// file working set far larger than its VM's RAM. Every pass floods the
// guest's clean-page LRU, so evictions stream into the ephemeral
// (cleancache) pool and refaults drain it — maximal ephemeral put/get/evict
// churn with almost no compute, the access pattern of a tenant running a
// pathological backup or scan job. Run next to well-behaved VMs it measures
// how well a policy contains a cache-polluting tenant.
type FileThrash struct {
	// Label distinguishes runs in reports.
	Label string
	// FileBytes is the scanned file's size (should be a multiple of the
	// VM's RAM for maximal thrash).
	FileBytes mem.Bytes
	// Passes is the number of full scans; 0 scans until stopped.
	Passes int
	// CPUPerPage is compute charged per page read (keep tiny: scans are
	// I/O-bound).
	CPUPerPage sim.Duration
}

// Name implements Workload.
func (FileThrash) Name() string { return "file-thrash" }

// thrashFile is the object id the scanned file's pages live under.
const thrashFile tmem.ObjectID = 0x7f11e

// Run implements Workload.
func (w FileThrash) Run(ctx *Ctx) {
	if w.FileBytes <= 0 {
		panic("workload: invalid file-thrash parameters")
	}
	const chunk = mem.Pages(256)
	total := ctx.pages(w.FileBytes)
	label := w.Label
	if label == "" {
		label = w.Name()
	}
	start := ctx.Proc.Now()
	for pass := 1; w.Passes <= 0 || pass <= w.Passes; pass++ {
		for off := mem.Pages(0); off < total; off += chunk {
			if ctx.Stopped() {
				return
			}
			n := min(chunk, total-off)
			ctx.Guest.ReadFile(ctx.Proc, thrashFile, tmem.PageIndex(off), n)
			if w.CPUPerPage > 0 {
				ctx.Guest.Idle(ctx.Proc, sim.Duration(int64(w.CPUPerPage)*int64(n)))
			}
		}
		ctx.milestone(fmt.Sprintf("%s-pass-%d", label, pass))
	}
	ctx.report(label, start, ctx.Proc.Now())
}
