// Package workload models the applications of the paper's evaluation
// (Table II): the usemem micro-benchmark (described fully in §IV) and
// phase-level models of CloudSuite's in-memory-analytics and
// graph-analytics, whose page-access streams drive the guest kernels.
//
// The CloudSuite benchmarks are modelled, not executed: what tmem policy
// behaviour depends on is each application's memory footprint over time and
// its page reuse pattern, which the models reproduce (rapid vs gradual
// footprint growth, scan-heavy vs random access, multi-pass reuse). The
// companion file datagen.go contains real miniature implementations
// (R-MAT + PageRank, MovieLens-shaped ratings + an ALS step) that justify
// the chosen phase shapes and serve as example payloads.
package workload

import (
	"fmt"

	"smartmem/internal/guest"
	"smartmem/internal/mem"
	"smartmem/internal/sim"
)

// Flag is a cooperative stop signal shared between workloads and scenario
// controllers (the Usemem scenario stops every VM when VM3 reaches its
// 768 MiB milestone).
type Flag struct{ stopped bool }

// Set raises the flag.
func (f *Flag) Set() { f.stopped = true }

// Stopped reports whether the flag is raised.
func (f *Flag) Stopped() bool { return f != nil && f.stopped }

// Ctx carries everything a workload needs while running.
type Ctx struct {
	// Proc is the simulated process executing the workload.
	Proc *sim.Proc
	// Guest is the VM's kernel.
	Guest *guest.Kernel
	// RNG is this workload's private random stream.
	RNG *sim.RNG
	// PageSize converts the byte-denominated workload parameters to pages.
	PageSize mem.Bytes
	// Report records a completed run/milestone: label plus start/end
	// virtual times. May be nil.
	Report func(label string, start, end sim.Time)
	// OnMilestone fires when a workload passes a named internal milestone
	// (used for cross-VM coordination in the Usemem scenario). May be nil.
	OnMilestone func(label string)
	// Stop is polled between batches; when raised the workload returns
	// early. May be nil.
	Stop *Flag
	// Cancelled, when non-nil, reports external cancellation (the run
	// context); workloads poll it through Stopped alongside Stop.
	Cancelled func() bool
}

// Stopped reports whether the workload should terminate early: the shared
// scenario Stop flag is raised or the run's context was cancelled.
// Workloads poll it between access batches.
func (c *Ctx) Stopped() bool {
	return c.Stop.Stopped() || (c.Cancelled != nil && c.Cancelled())
}

func (c *Ctx) report(label string, start, end sim.Time) {
	if c.Report != nil {
		c.Report(label, start, end)
	}
}

func (c *Ctx) milestone(label string) {
	if c.OnMilestone != nil {
		c.OnMilestone(label)
	}
}

func (c *Ctx) pages(b mem.Bytes) mem.Pages { return mem.PagesIn(b, c.PageSize) }

// Workload is one application to run inside a VM.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Run executes the workload to completion (or until ctx.Stop).
	Run(ctx *Ctx)
}

// --- usemem ---

// Usemem is the synthetic micro-benchmark of paper §IV: allocate an
// incremental amount of memory starting from StartBytes and growing by
// StepBytes; after allocating a region, traverse it linearly performing
// write/read operations; once a traversal completes, allocate a larger
// block, until MaxBytes; then keep traversing the full MaxBytes until
// stopped.
type Usemem struct {
	// StartBytes is the first allocation (paper: 128 MB).
	StartBytes mem.Bytes
	// StepBytes is the increment (paper: 128 MB).
	StepBytes mem.Bytes
	// MaxBytes is the largest allocation (paper: 1 GB).
	MaxBytes mem.Bytes
	// CPUPerPage is the compute charged per page visited beyond the pure
	// memory cost (usemem is memory-bound, so keep this small).
	CPUPerPage sim.Duration
}

// DefaultUsemem returns the paper's parameterization.
func DefaultUsemem() Usemem {
	return Usemem{
		StartBytes: 128 * mem.MiB,
		StepBytes:  128 * mem.MiB,
		MaxBytes:   1 * mem.GiB,
		CPUPerPage: 0,
	}
}

// Name implements Workload.
func (Usemem) Name() string { return "usemem" }

// MilestoneLabel names the milestone fired when usemem begins allocating a
// region of the given size.
func MilestoneLabel(size mem.Bytes) string { return fmt.Sprintf("alloc-%s", size) }

// RunLabel names the report entry for a completed traversal at a size.
func RunLabel(size mem.Bytes) string { return fmt.Sprintf("usemem-%s", size) }

// Run implements Workload.
func (u Usemem) Run(ctx *Ctx) {
	if u.StartBytes <= 0 || u.StepBytes <= 0 || u.MaxBytes < u.StartBytes {
		panic("workload: invalid usemem parameters")
	}
	const chunk = 256 // pages between stop checks
	size := u.StartBytes
	for {
		if ctx.Stopped() {
			return
		}
		ctx.milestone(MilestoneLabel(size))
		start := ctx.Proc.Now()
		total := ctx.pages(size)
		// One linear write/read traversal of the full region. New pages
		// fault in (allocation); old pages are revisited (traversal).
		// usemem performs "write/read operations", so every visit dirties
		// the page — the most hostile pattern for tmem churn.
		for off := mem.Pages(0); off < total; off += chunk {
			if ctx.Stopped() {
				return
			}
			n := min(chunk, total-off)
			ctx.Guest.Access(ctx.Proc, guest.PageID(off), n, true)
			if u.CPUPerPage > 0 {
				ctx.Guest.Idle(ctx.Proc, sim.Duration(int64(u.CPUPerPage)*int64(n)))
			}
		}
		ctx.report(RunLabel(size), start, ctx.Proc.Now())
		if size < u.MaxBytes {
			size += u.StepBytes
			if size > u.MaxBytes {
				size = u.MaxBytes
			}
		}
		// At MaxBytes usemem keeps traversing until stopped; the loop's
		// next iteration performs exactly that.
	}
}

func min(a, b mem.Pages) mem.Pages {
	if a < b {
		return a
	}
	return b
}

// Sequence runs several workloads back to back with idle gaps, e.g.
// Scenario 1's "execute in-memory-analytics once, sleep 5 seconds,
// execute it again".
type Sequence struct {
	// Steps are executed in order.
	Steps []SequenceStep
}

// SequenceStep is one element of a Sequence.
type SequenceStep struct {
	// W is the workload to run; nil means idle only.
	W Workload
	// IdleAfter is virtual time to sleep after the step completes.
	IdleAfter sim.Duration
}

// Name implements Workload.
func (s Sequence) Name() string {
	if len(s.Steps) == 0 {
		return "empty-sequence"
	}
	for _, st := range s.Steps {
		if st.W != nil {
			return st.W.Name() + "-sequence"
		}
	}
	return "idle-sequence"
}

// Run implements Workload.
func (s Sequence) Run(ctx *Ctx) {
	for _, st := range s.Steps {
		if ctx.Stopped() {
			return
		}
		if st.W != nil {
			st.W.Run(ctx)
		}
		if st.IdleAfter > 0 {
			ctx.Guest.Idle(ctx.Proc, st.IdleAfter)
		}
	}
}
