package workload

import (
	"math"
	"strings"
	"testing"

	"smartmem/internal/guest"
	"smartmem/internal/mem"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/vdisk"
)

const tPage = 64 * mem.KiB

type wrig struct {
	k    *sim.Kernel
	be   *tmem.Backend
	host *vdisk.Host
	runs []string
}

func newWrig(tmemBytes mem.Bytes) *wrig {
	k := sim.NewKernel(7)
	var be *tmem.Backend
	if tmemBytes > 0 {
		be = tmem.NewBackend(mem.PagesIn(tmemBytes, tPage), tmem.NewMetaStore(int(tPage)))
	}
	return &wrig{
		k:    k,
		be:   be,
		host: vdisk.NewHost(3*sim.Millisecond, 3*sim.Millisecond, 0, nil),
	}
}

func (r *wrig) ctx(p *sim.Proc, ramBytes mem.Bytes, stop *Flag, onMilestone func(string)) *Ctx {
	g := guest.NewKernel(guest.Config{
		VM:        1,
		RAMPages:  mem.PagesIn(ramBytes, tPage),
		Backend:   r.be,
		Frontswap: r.be != nil,
		Disk:      vdisk.NewDisk("d", r.host),
	})
	return &Ctx{
		Proc:     p,
		Guest:    g,
		RNG:      sim.NewRNG(3),
		PageSize: tPage,
		Report: func(label string, start, end sim.Time) {
			r.runs = append(r.runs, label)
		},
		OnMilestone: onMilestone,
		Stop:        stop,
	}
}

func TestUsememMilestonesAndStop(t *testing.T) {
	r := newWrig(0)
	var milestones []string
	stop := &Flag{}
	u := Usemem{StartBytes: 16 * mem.MiB, StepBytes: 16 * mem.MiB, MaxBytes: 64 * mem.MiB}
	r.k.Spawn("usemem", func(p *sim.Proc) {
		ctx := r.ctx(p, 256*mem.MiB, stop, func(l string) {
			milestones = append(milestones, l)
			// Stop once the workload starts its second full-size pass.
			count := 0
			for _, m := range milestones {
				if m == MilestoneLabel(64*mem.MiB) {
					count++
				}
			}
			if count == 2 {
				stop.Set()
			}
		})
		u.Run(ctx)
	})
	r.k.Run()

	wantMilestones := []string{
		MilestoneLabel(16 * mem.MiB), MilestoneLabel(32 * mem.MiB),
		MilestoneLabel(48 * mem.MiB), MilestoneLabel(64 * mem.MiB),
		MilestoneLabel(64 * mem.MiB),
	}
	if len(milestones) != len(wantMilestones) {
		t.Fatalf("milestones = %v, want %v", milestones, wantMilestones)
	}
	for i := range wantMilestones {
		if milestones[i] != wantMilestones[i] {
			t.Fatalf("milestones = %v, want %v", milestones, wantMilestones)
		}
	}
	// Four completed traversals reported (the fifth was stopped mid-way).
	if len(r.runs) != 4 {
		t.Errorf("runs = %v, want 4 entries", r.runs)
	}
	if r.runs[0] != "usemem-16MiB" || r.runs[3] != "usemem-64MiB" {
		t.Errorf("run labels = %v", r.runs)
	}
}

func TestUsememStaysWithinMax(t *testing.T) {
	r := newWrig(0)
	stop := &Flag{}
	var g *guest.Kernel
	u := Usemem{StartBytes: 8 * mem.MiB, StepBytes: 8 * mem.MiB, MaxBytes: 16 * mem.MiB}
	passes := 0
	r.k.Spawn("usemem", func(p *sim.Proc) {
		ctx := r.ctx(p, 64*mem.MiB, stop, func(l string) {
			if l == MilestoneLabel(16*mem.MiB) {
				passes++
				if passes == 3 {
					stop.Set()
				}
			}
		})
		g = ctx.Guest
		u.Run(ctx)
	})
	r.k.Run()
	// Footprint never exceeds MaxBytes worth of pages.
	if got, want := g.Resident(), mem.PagesIn(16*mem.MiB, tPage); got > want {
		t.Errorf("resident = %d pages, want <= %d", got, want)
	}
}

func TestUsememValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid usemem did not panic")
		}
	}()
	r := newWrig(0)
	r.k.Spawn("u", func(p *sim.Proc) {
		(Usemem{}).Run(r.ctx(p, mem.MiB, nil, nil))
	})
	r.k.Run()
}

func TestInMemoryAnalyticsLifecycle(t *testing.T) {
	r := newWrig(512 * mem.MiB)
	w := InMemoryAnalytics{
		Label:        "run1",
		DatasetBytes: 96 * mem.MiB,
		Passes:       2,
	}
	var g *guest.Kernel
	r.k.Spawn("ima", func(p *sim.Proc) {
		ctx := r.ctx(p, 64*mem.MiB, nil, nil) // dataset > RAM: pressure
		g = ctx.Guest
		w.Run(ctx)
	})
	r.k.Run()
	if len(r.runs) != 1 || r.runs[0] != "run1" {
		t.Fatalf("runs = %v", r.runs)
	}
	// All memory released at the end: footprint back to zero, tmem empty.
	if g.Resident() != 0 {
		t.Errorf("resident after run = %d", g.Resident())
	}
	if used := r.be.UsedBy(1); used != 0 {
		t.Errorf("tmem in use after free = %d", used)
	}
	s := g.Stats()
	if s.Evictions == 0 || s.PutsOK == 0 {
		t.Errorf("expected memory pressure, stats = %+v", s)
	}
}

func TestInMemoryAnalyticsPressureSlowsItDown(t *testing.T) {
	run := func(ram mem.Bytes) sim.Time {
		r := newWrig(0) // no tmem: overflow pays disk prices
		var end sim.Time
		w := InMemoryAnalytics{DatasetBytes: 64 * mem.MiB, Passes: 2}
		r.k.Spawn("ima", func(p *sim.Proc) {
			w.Run(r.ctx(p, ram, nil, nil))
			end = p.Now()
		})
		r.k.Run()
		return end
	}
	comfortable := run(128 * mem.MiB)
	pressured := run(32 * mem.MiB)
	if pressured < 4*comfortable {
		t.Errorf("pressure %v not ≫ comfortable %v", pressured, comfortable)
	}
}

func TestGraphAnalyticsLifecycle(t *testing.T) {
	r := newWrig(256 * mem.MiB)
	w := GraphAnalytics{
		Label:                 "ga1",
		GraphBytes:            64 * mem.MiB,
		Iterations:            2,
		TouchesPerPagePerIter: 1.5,
	}
	var g *guest.Kernel
	r.k.Spawn("ga", func(p *sim.Proc) {
		ctx := r.ctx(p, 32*mem.MiB, nil, nil)
		g = ctx.Guest
		w.Run(ctx)
	})
	r.k.Run()
	if len(r.runs) != 1 || r.runs[0] != "ga1" {
		t.Fatalf("runs = %v", r.runs)
	}
	if g.Resident() != 0 || r.be.UsedBy(1) != 0 {
		t.Error("graph memory not released")
	}
	s := g.Stats()
	if s.TmemHits == 0 {
		t.Errorf("random gather produced no tmem refaults: %+v", s)
	}
}

func TestGraphAnalyticsStops(t *testing.T) {
	r := newWrig(0)
	stop := &Flag{}
	stop.Set() // pre-stopped: workload must return immediately
	w := GraphAnalytics{GraphBytes: 64 * mem.MiB, Iterations: 5, TouchesPerPagePerIter: 1}
	r.k.Spawn("ga", func(p *sim.Proc) {
		w.Run(r.ctx(p, 32*mem.MiB, stop, nil))
	})
	end := r.k.Run()
	if end != 0 {
		t.Errorf("stopped workload consumed time: %v", end)
	}
	if len(r.runs) != 0 {
		t.Errorf("stopped workload reported runs: %v", r.runs)
	}
}

func TestSequenceRunsStepsWithIdle(t *testing.T) {
	r := newWrig(0)
	seq := Sequence{Steps: []SequenceStep{
		{W: InMemoryAnalytics{Label: "run1", DatasetBytes: 4 * mem.MiB, Passes: 1}, IdleAfter: 5 * sim.Second},
		{W: InMemoryAnalytics{Label: "run2", DatasetBytes: 4 * mem.MiB, Passes: 1}},
	}}
	if !strings.Contains(seq.Name(), "in-memory-analytics") {
		t.Errorf("sequence name = %q", seq.Name())
	}
	var end sim.Time
	r.k.Spawn("seq", func(p *sim.Proc) {
		seq.Run(r.ctx(p, 64*mem.MiB, nil, nil))
		end = p.Now()
	})
	r.k.Run()
	if len(r.runs) != 2 || r.runs[0] != "run1" || r.runs[1] != "run2" {
		t.Errorf("runs = %v", r.runs)
	}
	if end < sim.Time(5*sim.Second) {
		t.Errorf("idle gap not respected: end = %v", end)
	}
	if (Sequence{}).Name() != "empty-sequence" {
		t.Error("empty sequence name")
	}
}

func TestFlagSemantics(t *testing.T) {
	var nilFlag *Flag
	if nilFlag.Stopped() {
		t.Error("nil flag reports stopped")
	}
	f := &Flag{}
	if f.Stopped() {
		t.Error("fresh flag stopped")
	}
	f.Set()
	if !f.Stopped() {
		t.Error("set flag not stopped")
	}
}

// --- datagen tests ---

func TestRMATShape(t *testing.T) {
	rng := sim.NewRNG(5)
	g := RMAT(rng, 10, 8)
	if g.N != 1024 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Edges() != 8*1024 {
		t.Fatalf("edges = %d", g.Edges())
	}
	// CSR integrity: offsets monotone, all destinations in range.
	for v := 0; v < g.N; v++ {
		if g.Off[v+1] < g.Off[v] {
			t.Fatal("offsets not monotone")
		}
	}
	for _, d := range g.Dst {
		if d < 0 || d >= g.N {
			t.Fatalf("destination %d out of range", d)
		}
	}
	// Scale-free skew: the max out-degree should far exceed the mean.
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 4*8 {
		t.Errorf("max degree %d shows no skew (mean 8)", maxDeg)
	}
}

func TestRMATValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, fn := range []func(){
		func() { RMAT(rng, 0, 8) },
		func() { RMAT(rng, 30, 8) },
		func() { RMAT(rng, 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid RMAT did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPageRankConverges(t *testing.T) {
	rng := sim.NewRNG(9)
	g := RMAT(rng, 8, 8)
	ranks := PageRank(g, 20, 0.85)
	sum := 0.0
	for _, r := range ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("rank sum = %v, want 1", sum)
	}
	// More iterations change little once converged.
	ranks2 := PageRank(g, 60, 0.85)
	var diff float64
	for i := range ranks {
		diff += math.Abs(ranks[i] - ranks2[i])
	}
	if diff > 0.05 {
		t.Errorf("ranks far from fixpoint: L1 diff %v", diff)
	}
}

func TestPageRankValidation(t *testing.T) {
	g := &Graph{N: 2, Off: []int{0, 1, 1}, Dst: []int{1}}
	for _, fn := range []func(){
		func() { PageRank(g, 0, 0.85) },
		func() { PageRank(g, 5, 0) },
		func() { PageRank(g, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid PageRank did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestMovieLensShaped(t *testing.T) {
	rng := sim.NewRNG(4)
	r := MovieLensShaped(rng, 500, 200, 10000)
	if len(r.Value) != 10000 {
		t.Fatalf("ratings = %d", len(r.Value))
	}
	counts := make([]int, r.Items)
	for i := range r.Value {
		if r.User[i] < 0 || r.User[i] >= r.Users || r.Item[i] < 0 || r.Item[i] >= r.Items {
			t.Fatal("index out of range")
		}
		if r.Value[i] < 0.5 || r.Value[i] > 5.0 {
			t.Fatalf("rating %v out of range", r.Value[i])
		}
		counts[r.Item[i]]++
	}
	// Popularity skew: the top decile of items receives the majority of
	// ratings.
	top := 0
	for i := 0; i < r.Items/10; i++ {
		top += counts[i]
	}
	if top < 5000 {
		t.Errorf("top-decile items got %d/10000 ratings; expected skew", top)
	}
}

func TestMiniALSImprovesRMSE(t *testing.T) {
	rng := sim.NewRNG(11)
	r := MovieLensShaped(rng, 200, 100, 5000)
	early := MiniALS(r, 8, 1, sim.NewRNG(2))
	late := MiniALS(r, 8, 15, sim.NewRNG(2))
	if late >= early {
		t.Errorf("RMSE did not improve: %v -> %v", early, late)
	}
	if late > 2.5 {
		t.Errorf("final RMSE %v implausibly high", late)
	}
}

func TestDatagenValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	r := MovieLensShaped(rng, 10, 10, 10)
	for _, fn := range []func(){
		func() { MovieLensShaped(rng, 0, 1, 1) },
		func() { MiniALS(r, 0, 1, rng) },
		func() { MiniALS(r, 4, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid datagen call did not panic")
				}
			}()
			fn()
		}()
	}
}
