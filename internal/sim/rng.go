package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** by Blackman & Vigna). The simulator cannot use math/rand's
// global state because experiment reproducibility requires every stream to
// be derived from the run seed, and independent components must not perturb
// each other's sequences — hence Split.
type RNG struct {
	s [4]uint64
}

// splitmix64 is used to seed and split generators, per the xoshiro authors'
// recommendation.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent generator from this one, advancing this
// generator by one step. Use one stream per simulated component.
func (r *RNG) Split() *RNG {
	x := r.Uint64()
	return NewRNG(x)
}

// Intn returns a uniform integer in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for n << 2^64
}

// Int63n returns a uniform int64 in [0, n). Panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: RNG.Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Jitter returns d scaled by a factor uniform in [1-frac, 1+frac], used to
// model natural variation in service times. frac is clamped to [0, 1).
func (r *RNG) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 {
		return d
	}
	if frac >= 1 {
		frac = 0.999
	}
	f := 1 - frac + 2*frac*r.Float64()
	return Duration(float64(d) * f)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
