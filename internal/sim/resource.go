package sim

// Server models a work-conserving FIFO service center (a disk, a shared
// bus) analytically: instead of spawning a process per request, the finish
// time of each request is computed from the server's backlog. This is exact
// for FIFO single-server queues with known service times and keeps the
// event count independent of request volume.
type Server struct {
	name string
	// nextFree is the virtual time at which the server becomes idle.
	nextFree Time
	// stats
	ops     uint64
	busy    Duration // total service time delivered
	waited  Duration // total queueing delay imposed
	maxWait Duration
}

// NewServer creates a FIFO server with a diagnostic name.
func NewServer(name string) *Server { return &Server{name: name} }

// Serve enqueues a request arriving at time now with the given service
// time, and returns the request's sojourn time (queueing + service). The
// caller is responsible for advancing its own clock by the returned value.
func (s *Server) Serve(now Time, service Duration) Duration {
	if service < 0 {
		service = 0
	}
	start := now
	if s.nextFree > start {
		start = s.nextFree
	}
	wait := Duration(start - now)
	s.nextFree = start + Time(service)
	s.ops++
	s.busy += service
	s.waited += wait
	if wait > s.maxWait {
		s.maxWait = wait
	}
	return wait + service
}

// Backlog returns the delay a request arriving at now would queue for.
func (s *Server) Backlog(now Time) Duration {
	if s.nextFree <= now {
		return 0
	}
	return Duration(s.nextFree - now)
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Ops returns the number of requests served.
func (s *Server) Ops() uint64 { return s.ops }

// BusyTime returns the cumulative service time delivered.
func (s *Server) BusyTime() Duration { return s.busy }

// WaitTime returns the cumulative queueing delay imposed on requests.
func (s *Server) WaitTime() Duration { return s.waited }

// MaxWait returns the largest single queueing delay observed.
func (s *Server) MaxWait() Duration { return s.maxWait }

// Reset clears statistics and backlog (for reuse across runs).
func (s *Server) Reset() {
	s.nextFree = 0
	s.ops = 0
	s.busy = 0
	s.waited = 0
	s.maxWait = 0
}

// Semaphore is a counting semaphore for processes, FIFO-fair. It models
// resources with a fixed number of slots (e.g. host CPUs) when analytic
// treatment is not possible.
type Semaphore struct {
	k     *Kernel
	avail int
	cond  *Cond
}

// NewSemaphore creates a semaphore with n initial slots.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	return &Semaphore{k: k, avail: n, cond: NewCond(k)}
}

// Acquire takes one slot, parking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail <= 0 {
		s.cond.Wait(p)
	}
	s.avail--
}

// TryAcquire takes a slot without blocking; reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail <= 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one slot and wakes a waiter if any.
func (s *Semaphore) Release() {
	s.avail++
	s.cond.Signal()
}

// Available returns the current number of free slots.
func (s *Semaphore) Available() int { return s.avail }
