package sim

import "testing"

// BenchmarkKernelPingPong measures the kernel loop itself: two callbacks
// rescheduling each other through After, no process context involved. This
// is the pure event-queue round trip — schedule, pop, fire — and the path
// the value-based heap and the fn fast path are built for.
func BenchmarkKernelPingPong(b *testing.B) {
	k := NewKernel(1)
	n := 0
	var ping, pong func(Time)
	ping = func(Time) {
		n++
		if n < b.N {
			k.After(Microsecond, pong)
		}
	}
	pong = func(Time) {
		n++
		if n < b.N {
			k.After(Microsecond, ping)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.After(Microsecond, ping)
	k.Run()
}

// BenchmarkKernelTimers measures a deep timer wheel: 64 outstanding timers,
// each rescheduling itself, so every firing exercises a full sift through a
// populated heap.
func BenchmarkKernelTimers(b *testing.B) {
	k := NewKernel(1)
	const width = 64
	n := 0
	var tick func(Time)
	tick = func(Time) {
		n++
		if n < b.N {
			k.After(Duration(1+n%13)*Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < width; i++ {
		k.After(Duration(i)*Microsecond, tick)
	}
	k.Run()
}

// BenchmarkProcSleep measures the full process scheduling point: schedule,
// dispatch through the wake channel, park through the yield channel.
func BenchmarkProcSleep(b *testing.B) {
	k := NewKernel(1)
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkCondPingPong measures two processes alternating through a pair
// of condition variables — the handoff pattern resource queues produce.
func BenchmarkCondPingPong(b *testing.B) {
	k := NewKernel(1)
	c1, c2 := NewCond(k), NewCond(k)
	// b is spawned first so it is dispatched first and is already parked in
	// Wait when a's first Signal fires.
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c2.Wait(p)
			c1.Signal()
		}
	})
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c2.Signal()
			c1.Wait(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}
