package sim

import "fmt"

// errProcKilled is the sentinel panic value used to unwind a killed
// process's goroutine. Process bodies must not recover it.
var errProcKilled = fmt.Errorf("sim: process killed")

// Proc is a simulated process: a goroutine that runs in strict alternation
// with the kernel. All Proc methods must be called from the process's own
// body function, except Kill and Done which may be called from the kernel
// context (events/callbacks).
type Proc struct {
	k         *Kernel
	id        int
	name      string
	wake      chan Time
	done      chan struct{}
	finished  bool
	cancelled bool

	// cond this proc is currently waiting on, if any (for Kill bookkeeping).
	waiting *Cond
}

// ID returns the process identifier (unique within a kernel, starts at 1).
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Done returns a channel closed when the process body has returned.
func (p *Proc) Done() <-chan struct{} { return p.done }

// Finished reports whether the process body has returned.
func (p *Proc) Finished() bool { return p.finished }

// park hands control back to the kernel and blocks until re-dispatched.
// Returns the dispatch time. Panics with errProcKilled if cancelled.
func (p *Proc) park() Time {
	p.k.yield <- p
	t, ok := <-p.wake
	if !ok || p.cancelled {
		panic(errProcKilled)
	}
	return t
}

// Sleep advances this process's local view of time by d, yielding to the
// kernel so other processes and timers can run in between. d <= 0 yields
// without advancing the clock (still a scheduling point).
func (p *Proc) Sleep(d Duration) {
	if p.cancelled {
		panic(errProcKilled)
	}
	if d < 0 {
		d = 0
	}
	p.k.scheduleProc(p.k.now+Time(d), p)
	p.park()
}

// SleepUntil sleeps until absolute virtual time t (no-op if t <= now).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.k.now {
		p.Sleep(0)
		return
	}
	p.Sleep(Duration(t - p.k.now))
}

// Kill cancels the process. If it is parked it unwinds on next dispatch;
// a running process cannot Kill itself (use return instead).
func (p *Proc) Kill() {
	if p.finished || p.cancelled {
		return
	}
	p.cancelled = true
	if p.waiting != nil {
		p.waiting.remove(p)
		p.waiting = nil
	}
	// Schedule an immediate wake; the next Step dispatches the goroutine,
	// which observes cancellation in park() and unwinds.
	p.k.scheduleProc(p.k.now, p)
}

// Cond is a simple FIFO condition variable for processes. Waiters park
// until another process or a kernel callback calls Signal or Broadcast.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond creates a condition variable bound to kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks the calling process until signalled.
func (c *Cond) Wait(p *Proc) {
	if p.cancelled {
		panic(errProcKilled)
	}
	c.waiters = append(c.waiters, p)
	p.waiting = c
	p.park()
	p.waiting = nil
}

// Signal wakes the longest-waiting process, if any. Safe to call from
// kernel callbacks or other processes. The waiter queue is compacted in
// place (never resliced from the front), so a steady Wait/Signal cycle
// reuses one backing array and allocates nothing.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		p := c.waiters[0]
		c.popFront()
		if p.finished || p.cancelled {
			continue
		}
		p.waiting = nil
		c.k.scheduleProc(c.k.now, p)
		return
	}
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	// Exactly one goroutine runs at a time in the simulation, and woken
	// processes only resume at a later dispatch, so nothing can append to
	// the queue while this loop drains it — truncating up front keeps the
	// backing array for reuse.
	ws := c.waiters
	c.waiters = c.waiters[:0]
	for i, p := range ws {
		ws[i] = nil
		if p.finished || p.cancelled {
			continue
		}
		p.waiting = nil
		c.k.scheduleProc(c.k.now, p)
	}
}

// Waiters returns the number of parked processes.
func (c *Cond) Waiters() int { return len(c.waiters) }

// popFront removes the head waiter, shifting the queue down in place.
func (c *Cond) popFront() {
	n := len(c.waiters)
	copy(c.waiters, c.waiters[1:])
	c.waiters[n-1] = nil
	c.waiters = c.waiters[:n-1]
}

func (c *Cond) remove(p *Proc) {
	for i, w := range c.waiters {
		if w == p {
			n := len(c.waiters)
			copy(c.waiters[i:], c.waiters[i+1:])
			c.waiters[n-1] = nil
			c.waiters = c.waiters[:n-1]
			return
		}
	}
}
