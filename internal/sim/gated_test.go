package sim

import "testing"

func TestPeekTime(t *testing.T) {
	k := NewKernel(1)
	if _, ok := k.PeekTime(); ok {
		t.Fatal("empty kernel reported a head event")
	}
	k.SpawnAt("late", 5*Millisecond, func(p *Proc) {})
	k.SpawnAt("early", 2*Millisecond, func(p *Proc) {})
	if head, ok := k.PeekTime(); !ok || head != Time(2*Millisecond) {
		t.Fatalf("head = %v/%v, want 2ms", head, ok)
	}
}

// RunGated must publish each event's time *before* executing it, in
// nondecreasing order, and finish with the same clock a plain Run would.
func TestRunGatedPublishesBeforeExecute(t *testing.T) {
	k := NewKernel(1)
	var ran []Time
	spawn := func(at Duration) {
		k.SpawnAt("p", at, func(p *Proc) { ran = append(ran, p.Now()) })
	}
	spawn(3 * Millisecond)
	spawn(1 * Millisecond)
	spawn(2 * Millisecond)

	var bounds []Time
	published := 0
	end := k.RunGated(func(tm Time) {
		bounds = append(bounds, tm)
		// The bound for event i arrives before event i runs.
		if published != len(ran) {
			t.Fatalf("publish #%d arrived after %d events ran", published, len(ran))
		}
		published++
	}, nil)

	want := []Time{Time(1 * Millisecond), Time(2 * Millisecond), Time(3 * Millisecond)}
	for i, b := range bounds {
		if b != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
	if len(ran) != 3 || end != Time(3*Millisecond) || k.Now() != end {
		t.Fatalf("ran %d events, end %v (now %v)", len(ran), end, k.Now())
	}
}

func TestRunGatedKeepGoingStopsLoop(t *testing.T) {
	k := NewKernel(1)
	var ran int
	for i := 1; i <= 3; i++ {
		k.SpawnAt("p", Duration(i)*Millisecond, func(p *Proc) { ran++ })
	}
	k.RunGated(nil, func() bool { return ran < 2 })
	if ran != 2 {
		t.Fatalf("ran %d events after keepGoing went false, want 2", ran)
	}
	if k.Pending() == 0 {
		t.Fatal("remaining events were drained despite the stop")
	}
}

func TestRunGatedHonorsLimit(t *testing.T) {
	k := NewKernel(1)
	k.SetLimit(Time(2 * Millisecond))
	var ran []Time
	k.SpawnAt("a", 1*Millisecond, func(p *Proc) { ran = append(ran, p.Now()) })
	k.SpawnAt("b", 5*Millisecond, func(p *Proc) { ran = append(ran, p.Now()) })
	end := k.RunGated(nil, nil)
	if len(ran) != 1 || !k.Ended() || end != Time(2*Millisecond) {
		t.Fatalf("ran=%v ended=%v end=%v, want one event, ended at 2ms", ran, k.Ended(), end)
	}
}
