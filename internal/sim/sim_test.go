package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel(1)
	if k.Now() != 0 {
		t.Fatalf("new kernel time = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("new kernel pending = %d, want 0", k.Pending())
	}
}

func TestAfterFiresInOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.After(30*Millisecond, func(Time) { got = append(got, 3) })
	k.After(10*Millisecond, func(Time) { got = append(got, 1) })
	k.After(20*Millisecond, func(Time) { got = append(got, 2) })
	end := k.Run()
	if end != Time(30*Millisecond) {
		t.Errorf("end time = %v, want 30ms", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(Millisecond, func(Time) { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time order = %v, want ascending", got)
		}
	}
}

func TestAtClampsToNow(t *testing.T) {
	k := NewKernel(1)
	fired := Time(-1)
	k.After(5*Millisecond, func(Time) {
		k.At(Time(Millisecond), func(ft Time) { fired = ft }) // in the past
	})
	k.Run()
	if fired != Time(5*Millisecond) {
		t.Errorf("past At fired at %v, want clamped to 5ms", fired)
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	var marks []Time
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Second)
			marks = append(marks, p.Now())
		}
	})
	k.Run()
	for i, m := range marks {
		want := Time((i + 1)) * Time(Second)
		if m != want {
			t.Errorf("mark[%d] = %v, want %v", i, m, want)
		}
	}
	if len(marks) != 3 {
		t.Fatalf("got %d marks, want 3", len(marks))
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		order = append(order, "a10")
		p.Sleep(20 * Millisecond) // wakes at 30
		order = append(order, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(20 * Millisecond)
		order = append(order, "b20")
	})
	k.Run()
	want := []string{"a10", "b20", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnAtDelaysStart(t *testing.T) {
	k := NewKernel(1)
	var started Time
	k.SpawnAt("late", 30*Second, func(p *Proc) { started = p.Now() })
	k.Run()
	if started != Time(30*Second) {
		t.Errorf("started at %v, want 30s", started)
	}
}

func TestSetLimitStopsRun(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(Second)
			ticks++
		}
	})
	k.SetLimit(Time(5 * Second))
	end := k.Run()
	if !k.Ended() {
		t.Error("Ended() = false, want true after limit")
	}
	if end != Time(5*Second) {
		t.Errorf("end = %v, want 5s", end)
	}
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	k.KillAll()
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Second)
			count++
		}
	})
	k.RunUntil(Time(3 * Second))
	if count != 3 {
		t.Errorf("count after RunUntil(3s) = %d, want 3", count)
	}
	if k.Now() != Time(3*Second) {
		t.Errorf("now = %v, want 3s", k.Now())
	}
	k.KillAll()
}

func TestKillUnwindsProcess(t *testing.T) {
	k := NewKernel(1)
	cleaned := false
	p := k.Spawn("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(Duration(1 << 40)) // effectively forever
	})
	k.After(Millisecond, func(Time) { p.Kill() })
	k.Run()
	if !p.Finished() {
		t.Error("killed process not finished")
	}
	if !cleaned {
		t.Error("killed process defers did not run")
	}
}

func TestKillAllDrains(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 5; i++ {
		k.Spawn("p", func(p *Proc) {
			for {
				p.Sleep(Second)
			}
		})
	}
	k.RunUntil(Time(2 * Second))
	k.KillAll()
	if n := len(k.Procs()); n != 0 {
		t.Errorf("live procs after KillAll = %d (%v), want 0", n, k.Procs())
	}
}

func TestCondSignalFIFO(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.SpawnAt("w", Duration(i)*Millisecond, func(p *Proc) {
			c.Wait(p)
			order = append(order, i)
		})
	}
	k.After(10*Millisecond, func(Time) {
		if c.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", c.Waiters())
		}
		c.Signal()
		c.Signal()
		c.Signal()
	})
	k.Run()
	for i := 0; i < 3; i++ {
		if order[i] != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k)
	woke := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	k.After(Millisecond, func(Time) { c.Broadcast() })
	k.Run()
	if woke != 4 {
		t.Errorf("woke = %d, want 4", woke)
	}
}

func TestProcIdentity(t *testing.T) {
	k := NewKernel(1)
	p := k.Spawn("worker", func(p *Proc) {})
	if p.Name() != "worker" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.ID() != 1 {
		t.Errorf("ID = %d, want 1", p.ID())
	}
	if p.Kernel() != k {
		t.Error("Kernel() mismatch")
	}
	k.Run()
	select {
	case <-p.Done():
	default:
		t.Error("Done channel not closed after Run")
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("bad", func(p *Proc) {
		p.Sleep(Millisecond)
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate to Run")
		}
	}()
	k.Run()
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []Time {
		k := NewKernel(42)
		rng := k.RNG().Split()
		var marks []Time
		for i := 0; i < 4; i++ {
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 50; j++ {
					p.Sleep(Duration(rng.Intn(1000)+1) * Microsecond)
					marks = append(marks, p.Now())
				}
			})
		}
		k.Run()
		return marks
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if s := Time(1500 * Millisecond).Seconds(); s != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", s)
	}
	if s := (2500 * Millisecond).Seconds(); s != 2.5 {
		t.Errorf("Duration.Seconds = %v, want 2.5", s)
	}
	if Second.Std().String() != "1s" {
		t.Errorf("Std = %v", Second.Std())
	}
}

func TestServerFIFOQueueing(t *testing.T) {
	s := NewServer("disk")
	// First request at t=0: no wait.
	if d := s.Serve(0, 3*Millisecond); d != 3*Millisecond {
		t.Errorf("first sojourn = %v, want 3ms", d)
	}
	// Second request at t=1ms must queue 2ms then serve 3ms.
	if d := s.Serve(Time(Millisecond), 3*Millisecond); d != 5*Millisecond {
		t.Errorf("second sojourn = %v, want 5ms", d)
	}
	// Third request after the backlog clears: no wait.
	if d := s.Serve(Time(100*Millisecond), 3*Millisecond); d != 3*Millisecond {
		t.Errorf("third sojourn = %v, want 3ms", d)
	}
	if s.Ops() != 3 {
		t.Errorf("ops = %d, want 3", s.Ops())
	}
	if s.BusyTime() != 9*Millisecond {
		t.Errorf("busy = %v, want 9ms", s.BusyTime())
	}
	if s.WaitTime() != 2*Millisecond {
		t.Errorf("wait = %v, want 2ms", s.WaitTime())
	}
	if s.MaxWait() != 2*Millisecond {
		t.Errorf("maxWait = %v, want 2ms", s.MaxWait())
	}
}

func TestServerBacklogAndReset(t *testing.T) {
	s := NewServer("d")
	s.Serve(0, 10*Millisecond)
	if b := s.Backlog(Time(4 * Millisecond)); b != 6*Millisecond {
		t.Errorf("backlog = %v, want 6ms", b)
	}
	if b := s.Backlog(Time(20 * Millisecond)); b != 0 {
		t.Errorf("backlog after idle = %v, want 0", b)
	}
	s.Reset()
	if s.Ops() != 0 || s.Backlog(0) != 0 {
		t.Error("Reset did not clear state")
	}
}

// Property: a FIFO server never reorders and total busy time equals the sum
// of service times.
func TestServerConservationProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := NewRNG(seed)
		s := NewServer("p")
		now := Time(0)
		var sum Duration
		lastFinish := Time(0)
		for i := 0; i < int(n)+1; i++ {
			now += Time(rng.Intn(1000)) * Time(Microsecond)
			svc := Duration(rng.Intn(5000)) * Microsecond
			sum += svc
			d := s.Serve(now, svc)
			finish := now + Time(d)
			if finish < lastFinish { // FIFO: completions monotonic
				return false
			}
			lastFinish = finish
		}
		return s.BusyTime() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSemaphore(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 2)
	var concurrent, maxConcurrent int
	for i := 0; i < 6; i++ {
		k.Spawn("user", func(p *Proc) {
			sem.Acquire(p)
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			p.Sleep(10 * Millisecond)
			concurrent--
			sem.Release()
		})
	}
	k.Run()
	if maxConcurrent != 2 {
		t.Errorf("max concurrency = %d, want 2", maxConcurrent)
	}
	if sem.Available() != 2 {
		t.Errorf("available = %d, want 2", sem.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 1)
	if !sem.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if sem.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on empty semaphore")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds agree %d/100 times", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(3)
	s1 := r.Split()
	s2 := r.Split()
	agree := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			agree++
		}
	}
	if agree > 2 {
		t.Errorf("split streams agree %d/100 times", agree)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(9)
	base := Duration(1000)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.2)
		if j < 800 || j > 1200 {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Error("zero-frac jitter changed value")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

// --- Cond edge cases ---

// A process killed while parked in Wait must be removed from the waiter
// queue, and its pending signal consumption must not be lost: the next
// Signal wakes the next FIFO waiter.
func TestCondKillWhileWaitingRemovesWaiter(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k)
	var woke []string
	mk := func(name string) *Proc {
		return k.Spawn(name, func(p *Proc) {
			c.Wait(p)
			woke = append(woke, name)
		})
	}
	first := mk("first")
	mk("second")
	mk("third")
	k.After(Millisecond, func(Time) {
		if c.Waiters() != 3 {
			t.Errorf("waiters before kill = %d, want 3", c.Waiters())
		}
		first.Kill()
		if c.Waiters() != 2 {
			t.Errorf("waiters after kill = %d, want 2 (killed proc still queued)", c.Waiters())
		}
		c.Signal()
	})
	k.Run()
	if len(woke) != 1 || woke[0] != "second" {
		t.Errorf("woke = %v, want [second]: the signal must skip the killed head", woke)
	}
	if !first.Finished() {
		t.Error("killed waiter did not unwind")
	}
	k.KillAll()
}

// Broadcast over a queue containing a killed waiter wakes everyone else.
func TestCondBroadcastSkipsKilled(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k)
	woke := 0
	var victim *Proc
	for i := 0; i < 4; i++ {
		p := k.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woke++
		})
		if i == 2 {
			victim = p
		}
	}
	k.After(Millisecond, func(Time) {
		victim.Kill()
		c.Broadcast()
	})
	k.Run()
	if woke != 3 {
		t.Errorf("woke = %d, want 3 (killed waiter skipped)", woke)
	}
}

// Signal consumed by a waiter that is killed after the signal was scheduled
// but before dispatch: the wake-up must not resurrect the process.
func TestCondSignalThenKillBeforeDispatch(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k)
	ran := false
	p := k.Spawn("w", func(p *Proc) {
		c.Wait(p)
		ran = true
	})
	k.After(Millisecond, func(Time) {
		c.Signal() // schedules p's wake at now
		p.Kill()   // cancels before the wake dispatches
	})
	k.Run()
	if ran {
		t.Error("killed process ran past Wait")
	}
	if !p.Finished() {
		t.Error("killed process did not unwind")
	}
}

// Wait on an already-cancelled process must unwind immediately and leave no
// waiter behind.
func TestCondWaitAfterKillUnwinds(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k)
	cleaned := false
	p := k.Spawn("w", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(2 * Millisecond) // killed during this sleep
		c.Wait(p)                // must panic(errProcKilled), not park
	})
	k.After(Millisecond, func(Time) { p.Kill() })
	k.Run()
	if !cleaned {
		t.Error("defer did not run on unwind")
	}
	if c.Waiters() != 0 {
		t.Errorf("waiters = %d, want 0", c.Waiters())
	}
}

// --- RunUntil boundary semantics ---

// An event scheduled exactly at t is executed by RunUntil(t), and one at
// t+1ns is not; the clock lands exactly on t either way.
func TestRunUntilInclusiveBoundary(t *testing.T) {
	k := NewKernel(1)
	var fired []string
	k.At(Time(Second), func(Time) { fired = append(fired, "at-t") })
	k.At(Time(Second)+1, func(Time) { fired = append(fired, "after-t") })
	k.RunUntil(Time(Second))
	if len(fired) != 1 || fired[0] != "at-t" {
		t.Errorf("fired = %v, want [at-t]", fired)
	}
	if k.Now() != Time(Second) {
		t.Errorf("now = %v, want 1s", k.Now())
	}
	// The t+1 event is still pending and fires on the next call.
	k.RunUntil(Time(2 * Second))
	if len(fired) != 2 || fired[1] != "after-t" {
		t.Errorf("fired = %v, want [at-t after-t]", fired)
	}
}

// RunUntil past the kernel limit stops at the limit and sets Ended, even
// when events remain beyond it.
func TestRunUntilRespectsLimit(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.At(Time(5*Second), func(Time) { fired = true })
	k.SetLimit(Time(2 * Second))
	k.RunUntil(Time(10 * Second))
	if fired {
		t.Error("event beyond the limit fired")
	}
	if !k.Ended() {
		t.Error("Ended() = false, want true")
	}
	if k.Now() != Time(2*Second) {
		t.Errorf("now = %v, want clamped to the 2s limit", k.Now())
	}
}

// RunUntil with an empty queue advances the clock to t without events.
func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(Time(3 * Second))
	if k.Now() != Time(3*Second) {
		t.Errorf("now = %v, want 3s", k.Now())
	}
}

// KillAll must drain efficiently and correctly even when live processes
// keep respawning sleeps, and must be a no-op on a kernel whose processes
// all finished naturally.
func TestKillAllAfterNaturalFinish(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 8; i++ {
		k.Spawn("short", func(p *Proc) { p.Sleep(Millisecond) })
	}
	k.Run()
	if n := len(k.Procs()); n != 0 {
		t.Fatalf("live procs after Run = %d, want 0", n)
	}
	k.KillAll() // must not hang or panic with the live counter at zero
	if n := len(k.Procs()); n != 0 {
		t.Errorf("live procs after KillAll = %d, want 0", n)
	}
}
