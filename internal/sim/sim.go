// Package sim implements a small deterministic discrete-event simulation
// kernel used as the execution substrate for the SmarTmem node model.
//
// The kernel follows the classic process-interaction style: each simulated
// activity (a virtual machine's vCPU, the memory-manager tick loop, a
// workload driver) runs as its own goroutine wrapped in a Proc. At any
// instant exactly one process is runnable; everything else is parked either
// on the event queue (waiting for virtual time to advance) or on a
// condition (waiting to be signalled). This makes runs fully deterministic
// for a given seed and program, which the experiment harness relies on to
// keep paper-figure reproductions stable.
//
// Virtual time is an int64 nanosecond count starting at zero. Ties in the
// event queue are broken by a monotonically increasing sequence number so
// that scheduling order never depends on heap internals.
package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the usual constants (time.Millisecond, ...) convert
// directly.
type Duration int64

// Common durations, re-exported so callers do not need both packages.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. Used as a sentinel for
// "never".
const MaxTime = Time(math.MaxInt64)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts a virtual duration to a time.Duration for printing.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds converts a virtual duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled wake-up of a process or a fire-once callback. Events
// are plain values held directly in the kernel's heap slice: scheduling one
// performs no allocation and no interface boxing — the hot path of every
// simulated nanosecond (see DESIGN.md §9, "Hot paths and allocation
// budget").
type event struct {
	at   Time
	seq  uint64
	proc *Proc      // non-nil: wake this parked process
	fn   func(Time) // non-nil: run this callback inline in the kernel loop
}

// before reports whether a orders before b: earlier time first, ties broken
// by the monotonically increasing schedule sequence so order never depends
// on heap internals.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is an index-based binary min-heap of event values. The
// container/heap machinery is deliberately not used: it forces events
// behind pointers and moves them through interface{} on every push and pop,
// which costs one heap allocation per scheduling point. The hand-rolled
// sift operations below work on the slice in place.
type eventQueue []event

// push inserts e, restoring the heap order by sifting up.
func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	s := *q
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(&s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = e
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() event {
	s := *q
	min := s[0]
	last := len(s) - 1
	e := s[last]
	s[last] = event{} // release the proc/fn references
	s = s[:last]
	*q = s
	if last > 0 {
		// Sift e down from the root into the hole pop left.
		i := 0
		for {
			child := 2*i + 1
			if child >= last {
				break
			}
			if r := child + 1; r < last && s[r].before(&s[child]) {
				child = r
			}
			if !s[child].before(&e) {
				break
			}
			s[i] = s[child]
			i = child
		}
		s[i] = e
	}
	return min
}

// Kernel is a discrete-event simulation instance. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	procs   map[int]*Proc
	nextPID int
	live    int   // unfinished processes (KillAll's drain condition)
	running *Proc // process currently executing, nil while in kernel loop
	ended   bool
	limit   Time // hard stop; MaxTime when unset
	rng     *RNG

	// yield channel: a running process sends itself back to the kernel
	// when it parks. The kernel blocks on this after waking a process.
	yield chan *Proc

	panicVal any // re-raised on Run if a process panicked
}

// NewKernel creates a simulation kernel with the given RNG seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{
		procs: make(map[int]*Proc),
		limit: MaxTime,
		rng:   NewRNG(seed),
		yield: make(chan *Proc),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random number generator.
// Processes must derive their own streams via RNG.Split for independence.
func (k *Kernel) RNG() *RNG { return k.rng }

// SetLimit sets a hard virtual-time stop. When the clock would pass limit,
// Run returns. A zero or negative limit is ignored.
func (k *Kernel) SetLimit(limit Time) {
	if limit > 0 {
		k.limit = limit
	}
}

// scheduleProc inserts a process wake-up at absolute virtual time at.
func (k *Kernel) scheduleProc(at Time, p *Proc) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%d now=%d", at, k.now))
	}
	k.seq++
	k.queue.push(event{at: at, seq: k.seq, proc: p})
}

// scheduleFn inserts a callback firing at absolute virtual time at.
func (k *Kernel) scheduleFn(at Time, fn func(Time)) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%d now=%d", at, k.now))
	}
	k.seq++
	k.queue.push(event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run at now+d inside the kernel loop (no process
// context, no goroutine round-trip). fn receives the firing time.
func (k *Kernel) After(d Duration, fn func(Time)) {
	if d < 0 {
		d = 0
	}
	k.scheduleFn(k.now+Time(d), fn)
}

// At schedules fn at an absolute virtual time (clamped to now).
func (k *Kernel) At(t Time, fn func(Time)) {
	if t < k.now {
		t = k.now
	}
	k.scheduleFn(t, fn)
}

// Spawn creates a new process running body and schedules it to start at the
// current virtual time (after d if given via SpawnAt). The body runs on its
// own goroutine but in strict alternation with the kernel.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	return k.SpawnAt(name, 0, body)
}

// SpawnAt creates a process whose body begins executing after delay d.
func (k *Kernel) SpawnAt(name string, d Duration, body func(p *Proc)) *Proc {
	k.nextPID++
	p := &Proc{
		k:    k,
		id:   k.nextPID,
		name: name,
		wake: make(chan Time),
		done: make(chan struct{}),
	}
	k.procs[p.id] = p
	k.live++
	go func() {
		t, ok := <-p.wake // wait for first dispatch
		if !ok {
			close(p.done)
			return
		}
		_ = t
		defer func() {
			if r := recover(); r != nil {
				if r != errProcKilled {
					p.k.panicVal = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.finished = true
			close(p.done)
			k.yield <- p // return control to kernel one last time
		}()
		body(p)
	}()
	k.scheduleProc(k.now+Time(d), p)
	return p
}

// dispatch wakes p at time t and blocks until p parks or finishes.
func (k *Kernel) dispatch(p *Proc, t Time) {
	if p.finished {
		return
	}
	k.running = p
	p.wake <- t
	<-k.yield
	k.running = nil
	if p.finished {
		// The goroutine unwound during this dispatch; retire it so KillAll's
		// drain and Procs() never rescan dead entries.
		k.live--
		delete(k.procs, p.id)
	}
	if k.panicVal != nil {
		panic(k.panicVal)
	}
}

// Step executes the single earliest pending event. It reports false when
// the queue is empty or the time limit has been reached.
func (k *Kernel) Step() bool {
	for {
		if len(k.queue) == 0 {
			return false
		}
		if k.queue[0].at > k.limit {
			k.now = k.limit
			k.ended = true
			return false
		}
		e := k.queue.pop()
		k.now = e.at
		if e.proc != nil {
			if e.proc.finished {
				continue // stale wake-up for a dead process
			}
			// Cancelled processes are dispatched once more so their
			// goroutines observe the cancellation and unwind.
			k.dispatch(e.proc, e.at)
			return true
		}
		if e.fn != nil {
			e.fn(e.at)
			return true
		}
	}
}

// Run executes events until the queue drains, the limit is hit, or every
// process has finished. It returns the final virtual time.
//
// The loop is a fast-path duplicate of Step: timer callbacks (After/At) and
// same-time wake chains run back to back inside this single kernel frame —
// a callback that schedules another callback never leaves the loop, and the
// only goroutine round-trips taken are the dispatches that genuinely need a
// process context.
func (k *Kernel) Run() Time {
	for len(k.queue) > 0 {
		if k.queue[0].at > k.limit {
			k.now = k.limit
			k.ended = true
			return k.now
		}
		e := k.queue.pop()
		k.now = e.at
		if e.fn != nil {
			e.fn(e.at)
			continue
		}
		if e.proc != nil && !e.proc.finished {
			k.dispatch(e.proc, e.at)
		}
	}
	return k.now
}

// PeekTime returns the timestamp of the earliest pending event, when one
// exists. Head times are nondecreasing, so the returned time is a lower
// bound on every event this kernel will still execute — stale wake-ups for
// finished processes sit in the queue until popped, which can only make
// the bound conservative (too low), never optimistic.
func (k *Kernel) PeekTime() (Time, bool) {
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// RunGated executes events like Run, but announces the head-event time via
// publish *before* each event executes and consults keepGoing after each
// one. It is the conservative parallel-simulation entry point: publish(t)
// promises the caller's synchronization layer that this kernel will never
// again execute an event earlier than t, so peer kernels may safely run up
// to t. Either hook may be nil. Returns the final virtual time; a limit
// stop is reported through Ended, exactly as with Run.
func (k *Kernel) RunGated(publish func(Time), keepGoing func() bool) Time {
	for len(k.queue) > 0 {
		if publish != nil {
			publish(k.queue[0].at)
		}
		if !k.Step() {
			break
		}
		if keepGoing != nil && !keepGoing() {
			break
		}
	}
	return k.now
}

// RunUntil executes events until virtual time t (inclusive of events at t)
// and advances the clock to t even when the queue drains early. The hard
// limit wins: past it the clock clamps to the limit and Ended reports true,
// exactly as Run behaves.
func (k *Kernel) RunUntil(t Time) Time {
	for len(k.queue) > 0 && k.queue[0].at <= t && k.Step() {
	}
	if t > k.limit {
		t = k.limit
		k.ended = true
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

// Ended reports whether the simulation stopped because of the time limit.
func (k *Kernel) Ended() bool { return k.ended }

// Pending returns the number of queued events (for tests/diagnostics).
func (k *Kernel) Pending() int { return len(k.queue) }

// Procs returns the names of all live (unfinished) processes, sorted, for
// diagnostics.
func (k *Kernel) Procs() []string {
	var names []string
	for _, p := range k.procs {
		if !p.finished {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// KillAll cancels every live process. Each parked process is woken once to
// unwind via panic(errProcKilled); processes must not recover() that value.
func (k *Kernel) KillAll() {
	ids := make([]int, 0, len(k.procs))
	for id := range k.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if p := k.procs[id]; p != nil && !p.finished {
			p.Kill()
		}
	}
	// Drain the unwind dispatches so goroutines exit before we return. The
	// kernel maintains a live counter decremented as each process finishes,
	// so the drain is linear in the number of events rather than rescanning
	// every process after every Step.
	for k.live > 0 && k.Step() {
	}
}
