// Package sim implements a small deterministic discrete-event simulation
// kernel used as the execution substrate for the SmarTmem node model.
//
// The kernel follows the classic process-interaction style: each simulated
// activity (a virtual machine's vCPU, the memory-manager tick loop, a
// workload driver) runs as its own goroutine wrapped in a Proc. At any
// instant exactly one process is runnable; everything else is parked either
// on the event queue (waiting for virtual time to advance) or on a
// condition (waiting to be signalled). This makes runs fully deterministic
// for a given seed and program, which the experiment harness relies on to
// keep paper-figure reproductions stable.
//
// Virtual time is an int64 nanosecond count starting at zero. Ties in the
// event queue are broken by a monotonically increasing sequence number so
// that scheduling order never depends on heap internals.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the usual constants (time.Millisecond, ...) convert
// directly.
type Duration int64

// Common durations, re-exported so callers do not need both packages.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. Used as a sentinel for
// "never".
const MaxTime = Time(math.MaxInt64)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts a virtual duration to a time.Duration for printing.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds converts a virtual duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled wake-up of a process or a fire-once callback.
type event struct {
	at   Time
	seq  uint64
	proc *Proc      // non-nil: wake this parked process
	fn   func(Time) // non-nil: run this callback inline in the kernel loop
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation instance. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	procs   map[int]*Proc
	nextPID int
	running *Proc // process currently executing, nil while in kernel loop
	ended   bool
	limit   Time // hard stop; MaxTime when unset
	rng     *RNG

	// yield channel: a running process sends itself back to the kernel
	// when it parks. The kernel blocks on this after waking a process.
	yield chan *Proc

	panicVal any // re-raised on Run if a process panicked
}

// NewKernel creates a simulation kernel with the given RNG seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{
		procs: make(map[int]*Proc),
		limit: MaxTime,
		rng:   NewRNG(seed),
		yield: make(chan *Proc),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random number generator.
// Processes must derive their own streams via RNG.Split for independence.
func (k *Kernel) RNG() *RNG { return k.rng }

// SetLimit sets a hard virtual-time stop. When the clock would pass limit,
// Run returns. A zero or negative limit is ignored.
func (k *Kernel) SetLimit(limit Time) {
	if limit > 0 {
		k.limit = limit
	}
}

// schedule inserts an event at absolute virtual time at.
func (k *Kernel) schedule(e *event) {
	if e.at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%d now=%d", e.at, k.now))
	}
	k.seq++
	e.seq = k.seq
	heap.Push(&k.queue, e)
}

// After schedules fn to run at now+d inside the kernel loop (no process
// context). fn receives the firing time.
func (k *Kernel) After(d Duration, fn func(Time)) {
	if d < 0 {
		d = 0
	}
	k.schedule(&event{at: k.now + Time(d), fn: fn})
}

// At schedules fn at an absolute virtual time (clamped to now).
func (k *Kernel) At(t Time, fn func(Time)) {
	if t < k.now {
		t = k.now
	}
	k.schedule(&event{at: t, fn: fn})
}

// Spawn creates a new process running body and schedules it to start at the
// current virtual time (after d if given via SpawnAt). The body runs on its
// own goroutine but in strict alternation with the kernel.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	return k.SpawnAt(name, 0, body)
}

// SpawnAt creates a process whose body begins executing after delay d.
func (k *Kernel) SpawnAt(name string, d Duration, body func(p *Proc)) *Proc {
	k.nextPID++
	p := &Proc{
		k:    k,
		id:   k.nextPID,
		name: name,
		wake: make(chan Time),
		done: make(chan struct{}),
	}
	k.procs[p.id] = p
	go func() {
		t, ok := <-p.wake // wait for first dispatch
		if !ok {
			close(p.done)
			return
		}
		_ = t
		defer func() {
			if r := recover(); r != nil {
				if r != errProcKilled {
					p.k.panicVal = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.finished = true
			close(p.done)
			k.yield <- p // return control to kernel one last time
		}()
		body(p)
	}()
	k.schedule(&event{at: k.now + Time(d), proc: p})
	return p
}

// dispatch wakes p at time t and blocks until p parks or finishes.
func (k *Kernel) dispatch(p *Proc, t Time) {
	if p.finished {
		return
	}
	k.running = p
	p.wake <- t
	<-k.yield
	k.running = nil
	if k.panicVal != nil {
		panic(k.panicVal)
	}
}

// Step executes the single earliest pending event. It reports false when
// the queue is empty or the time limit has been reached.
func (k *Kernel) Step() bool {
	for {
		if len(k.queue) == 0 {
			return false
		}
		e := heap.Pop(&k.queue).(*event)
		if e.at > k.limit {
			k.now = k.limit
			k.ended = true
			return false
		}
		k.now = e.at
		if e.proc != nil {
			if e.proc.finished {
				continue // stale wake-up for a dead process
			}
			// Cancelled processes are dispatched once more so their
			// goroutines observe the cancellation and unwind.
			k.dispatch(e.proc, e.at)
			return true
		}
		if e.fn != nil {
			e.fn(e.at)
			return true
		}
	}
}

// Run executes events until the queue drains, the limit is hit, or every
// process has finished. It returns the final virtual time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil executes events until virtual time t (inclusive of events at t).
func (k *Kernel) RunUntil(t Time) Time {
	for len(k.queue) > 0 && k.queue[0].at <= t && k.Step() {
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

// Ended reports whether the simulation stopped because of the time limit.
func (k *Kernel) Ended() bool { return k.ended }

// Pending returns the number of queued events (for tests/diagnostics).
func (k *Kernel) Pending() int { return len(k.queue) }

// Procs returns the names of all live (unfinished) processes, sorted, for
// diagnostics.
func (k *Kernel) Procs() []string {
	var names []string
	for _, p := range k.procs {
		if !p.finished {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// KillAll cancels every live process. Each parked process is woken once to
// unwind via panic(errProcKilled); processes must not recover() that value.
func (k *Kernel) KillAll() {
	ids := make([]int, 0, len(k.procs))
	for id := range k.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	live := 0
	for _, id := range ids {
		p := k.procs[id]
		if !p.finished {
			p.Kill()
			live++
		}
	}
	// Drain the unwind dispatches so goroutines exit before we return.
	for live > 0 && k.Step() {
		live = 0
		for _, p := range k.procs {
			if !p.finished {
				live++
			}
		}
	}
}
