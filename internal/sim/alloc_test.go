package sim

import "testing"

// The kernel hot paths carry an explicit allocation budget (DESIGN.md §9):
// once the event heap and waiter queues have grown to their steady-state
// capacity, scheduling points must not allocate. These tests pin that
// budget with testing.AllocsPerRun so a regression (a pointer-based event,
// an interface boxing, a queue reslice that leaks capacity) fails loudly.

// TestProcSleepZeroAlloc pins 0 allocs/op for the Proc.Sleep steady state:
// schedule + dispatch + park, the scheduling point every simulated process
// pays at every quantum.
func TestProcSleepZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("sleeper", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
		}
	})
	// Warm up: first dispatches grow the event heap to capacity.
	for i := 0; i < 64; i++ {
		k.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !k.Step() {
			t.Fatal("queue drained")
		}
	})
	if allocs != 0 {
		t.Errorf("Proc.Sleep steady state = %v allocs/op, want 0", allocs)
	}
	k.KillAll()
}

// TestKernelTimerZeroAlloc pins 0 allocs/op for a self-rescheduling After
// callback: the event heap must hold events by value, so a timer firing and
// rescheduling costs no allocation once the closure exists.
func TestKernelTimerZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	var tick func(Time)
	tick = func(Time) { k.After(Microsecond, tick) }
	k.After(Microsecond, tick)
	for i := 0; i < 64; i++ {
		k.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !k.Step() {
			t.Fatal("queue drained")
		}
	})
	if allocs != 0 {
		t.Errorf("timer steady state = %v allocs/op, want 0", allocs)
	}
}

// TestCondPingPongZeroAlloc pins 0 allocs/op for a steady Wait/Signal
// cycle: the waiter queue must compact in place rather than reslice from
// the front, or every Wait re-grows the backing array.
func TestCondPingPongZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	c1, c2 := NewCond(k), NewCond(k)
	k.Spawn("b", func(p *Proc) {
		for {
			c2.Wait(p)
			c1.Signal()
		}
	})
	k.Spawn("a", func(p *Proc) {
		for {
			c2.Signal()
			c1.Wait(p)
		}
	})
	for i := 0; i < 64; i++ {
		k.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !k.Step() {
			t.Fatal("queue drained")
		}
	})
	if allocs != 0 {
		t.Errorf("cond ping-pong steady state = %v allocs/op, want 0", allocs)
	}
	k.KillAll()
}
