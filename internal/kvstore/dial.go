package kvstore

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"time"
)

// DialRetry dials addr with bounded retry and jittered linear backoff; see
// DialRetryContext. It never gives up early — use the context variant when
// the caller can be cancelled.
func DialRetry(network, addr string, attempts int, backoff time.Duration) (net.Conn, error) {
	return DialRetryContext(context.Background(), network, addr, attempts, backoff)
}

// DialRetryContext dials addr with bounded retry: attempt i (0-based)
// first waits i*backoff scaled by a uniform [0.5, 1.5) jitter factor, so
// the first try is immediate and a fleet of clients reconnecting to a
// restarted daemon does not arrive in synchronized waves. It exists for
// the restart window of a peer daemon — a remote tier whose kvd peer is
// mid-restart gets a listening socket a moment later instead of a refused
// connection that would flip the tier into sticky disk degradation.
//
// ctx cancels the whole sequence, including mid-sleep and mid-dial: the
// return is then ctx's error, not a dial error. attempts < 1 is treated
// as 1.
func DialRetryContext(ctx context.Context, network, addr string, attempts int, backoff time.Duration) (net.Conn, error) {
	if attempts < 1 {
		attempts = 1
	}
	var d net.Dialer
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 && backoff > 0 {
			wait := time.Duration((0.5 + rand.Float64()) * float64(time.Duration(i)*backoff))
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
		c, err := d.DialContext(ctx, network, addr)
		if err == nil {
			return c, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
	}
	return nil, fmt.Errorf("kvstore: dial %s %s failed after %d attempts: %w", network, addr, attempts, lastErr)
}
