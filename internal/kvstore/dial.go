package kvstore

import (
	"fmt"
	"net"
	"time"
)

// DialRetry dials addr with bounded retry and linear backoff: attempt i
// (0-based) sleeps i*backoff first, so the first try is immediate. It
// exists for the restart window of a peer daemon — a remote tier whose
// kvd peer is mid-restart gets a listening socket a moment later instead
// of a refused connection that would flip the tier into sticky disk
// degradation. attempts < 1 is treated as 1.
func DialRetry(network, addr string, attempts int, backoff time.Duration) (net.Conn, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 && backoff > 0 {
			time.Sleep(time.Duration(i) * backoff)
		}
		c, err := net.Dial(network, addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("kvstore: dial %s %s failed after %d attempts: %w", network, addr, attempts, lastErr)
}
