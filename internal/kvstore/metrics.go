package kvstore

import (
	"sync/atomic"
	"time"

	"smartmem/internal/hdr"
)

// opNames names every wire op for metrics labels; index is the op byte.
var opNames = [OpGetBatch + 1]string{
	OpPut:         "put",
	OpGet:         "get",
	OpFlushPage:   "flush_page",
	OpFlushObject: "flush_object",
	OpNewPool:     "new_pool",
	OpDestroyPool: "destroy_pool",
	OpPutBatch:    "put_batch",
	OpGetBatch:    "get_batch",
}

// OpName returns the metrics label of a wire op byte ("" for unknown).
func OpName(op byte) string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return ""
}

// Ops returns every wire op byte in protocol order, for metrics iteration.
func Ops() []byte {
	return []byte{OpPut, OpGet, OpFlushPage, OpFlushObject, OpNewPool,
		OpDestroyPool, OpPutBatch, OpGetBatch}
}

// Metrics is the serving-side instrumentation a Server records into when
// one is attached via SetMetrics: per-op latency histograms plus transport
// counters. Recording is lock-free (hdr atomic buckets, atomic counters)
// and allocation-free, so it stays off every lock path — connection
// handlers on different cores never serialize on it. All methods are safe
// for concurrent use; the read side (snapshots for /metrics) runs
// concurrently with recording.
type Metrics struct {
	hists [OpGetBatch + 1]hdr.Histogram

	bytesIn     atomic.Uint64
	bytesOut    atomic.Uint64
	connsTotal  atomic.Uint64
	connsActive atomic.Int64
	protoErrors atomic.Uint64
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics { return &Metrics{} }

// OpHistogram returns the latency histogram (nanoseconds) of one wire op.
// The pointer is stable for the lifetime of the Metrics.
func (m *Metrics) OpHistogram(op byte) *hdr.Histogram {
	return &m.hists[op]
}

// observe records one served request: latency by op, frame sizes in and
// out. Unknown ops are dropped (the conn dies right after anyway).
func (m *Metrics) observe(op byte, dur time.Duration, inBytes, outBytes int) {
	if int(op) >= len(m.hists) || opNames[op] == "" {
		return
	}
	m.hists[op].Record(dur.Nanoseconds())
	m.bytesIn.Add(uint64(inBytes))
	m.bytesOut.Add(uint64(outBytes))
}

// BytesIn returns the total request bytes read off served connections.
func (m *Metrics) BytesIn() uint64 { return m.bytesIn.Load() }

// BytesOut returns the total response bytes written to served connections.
func (m *Metrics) BytesOut() uint64 { return m.bytesOut.Load() }

// ConnsTotal returns the number of connections ever served.
func (m *Metrics) ConnsTotal() uint64 { return m.connsTotal.Load() }

// ConnsActive returns the number of connections being served right now.
func (m *Metrics) ConnsActive() int64 { return m.connsActive.Load() }

// ProtoErrors returns the number of connections dropped on a protocol
// violation (malformed frame, oversized payload, unknown op).
func (m *Metrics) ProtoErrors() uint64 { return m.protoErrors.Load() }
