package kvstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

func shardedBackend(pages mem.Pages, shards int) *tmem.Backend {
	return tmem.NewBackendOpts(pages, tmem.Options{
		Shards:   shards,
		NewStore: func() tmem.PageStore { return tmem.NewDataStore(pageSize) },
	})
}

// The wire semantics must be independent of the backend's shard count.
func TestShardedBackendOverWire(t *testing.T) {
	srv := NewServer(shardedBackend(256, 8))
	a, b := net.Pipe()
	go func() { _ = srv.ServeConn(b) }()
	cl := NewClient(a, pageSize)
	defer cl.Close()

	pool, err := cl.NewPool(1, tmem.Persistent)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := tmem.Key{Pool: pool, Object: tmem.ObjectID(i % 3), Index: tmem.PageIndex(i)}
		if st, err := cl.Put(key, page(byte(i))); err != nil || st != tmem.STmem {
			t.Fatalf("Put %d = %v, %v", i, st, err)
		}
		st, got, err := cl.Get(key)
		if err != nil || st != tmem.STmem || got[0] != byte(i) {
			t.Fatalf("Get %d = %v, %v", i, st, err)
		}
	}
	if err := srv.Backend().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// A client may stream many requests before reading any response; the
// server must answer all of them, in order.
func TestPipelinedRequests(t *testing.T) {
	srv := NewServer(shardedBackend(256, 4))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer l.Close()
	go func() { _ = srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := NewClient(conn, pageSize)
	pool, err := cl.NewPool(1, tmem.Persistent)
	if err != nil {
		t.Fatal(err)
	}

	// Write a burst of puts followed by one get, without reading a single
	// response in between.
	const burst = 32
	var reqs []byte
	for i := 0; i < burst; i++ {
		key := tmem.Key{Pool: pool, Object: 7, Index: tmem.PageIndex(i)}
		reqs = append(reqs, OpPut)
		reqs = key.AppendWire(reqs)
		reqs = binary.BigEndian.AppendUint32(reqs, 1)
		reqs = append(reqs, byte(i))
	}
	last := tmem.Key{Pool: pool, Object: 7, Index: 5}
	reqs = append(reqs, OpGet)
	reqs = last.AppendWire(reqs)
	reqs = binary.BigEndian.AppendUint32(reqs, 0)
	if _, err := conn.Write(reqs); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < burst+1; i++ {
		var hdr [5]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		st := tmem.Status(int8(hdr[0]))
		if st != tmem.STmem {
			t.Fatalf("response %d status = %v", i, st)
		}
		n := binary.BigEndian.Uint32(hdr[1:5])
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			t.Fatal(err)
		}
		if i == burst && payload[0] != 5 {
			t.Errorf("pipelined get returned wrong page: %#x", payload[0])
		}
	}
}

// Shutdown stops accepting, lets idle-free connections drain, and forces
// the stragglers closed once the context expires.
func TestShutdownDrainsAndForces(t *testing.T) {
	srv := NewServer(shardedBackend(128, 2))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := NewClient(conn, pageSize)
	pool, err := cl.NewPool(1, tmem.Persistent)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cl.Put(tmem.Key{Pool: pool, Object: 1, Index: 1}, page(0xEE)); err != nil || st != tmem.STmem {
		t.Fatalf("Put = %v, %v", st, err)
	}

	// The client stays connected, so the drain must time out and force
	// the connection closed.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("Shutdown = %v, want DeadlineExceeded (held connection)", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("Serve after Shutdown = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}

	// New connections must be rejected.
	if c2, err := net.Dial("tcp", l.Addr().String()); err == nil {
		c2.Close()
		t.Error("listener still accepting after Shutdown")
	}
	// The store survives with its state intact.
	if used := srv.Backend().UsedBy(1); used != 1 {
		t.Errorf("backend used = %d after shutdown, want 1", used)
	}
}

func TestShutdownWithNoConnections(t *testing.T) {
	srv := NewServer(shardedBackend(16, 1))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("Shutdown = %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve = %v, want nil after graceful stop", err)
	}
	// Serve on a shut-down server fails fast.
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err == nil {
		defer l2.Close()
		if err := srv.Serve(l2); err == nil {
			t.Error("Serve on shut-down server did not fail")
		}
	}
}

// benchServer measures end-to-end KV throughput over TCP loopback with one
// connection per benchmark goroutine.
func benchServer(b *testing.B, shards int) {
	srv := NewServer(shardedBackend(1<<18, shards))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Skipf("loopback unavailable: %v", err)
	}
	defer l.Close()
	go func() { _ = srv.Serve(l) }()

	var mu sync.Mutex
	var worker uint64
	payload := page(0xAB)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			b.Error(err)
			return
		}
		cl := NewClient(conn, pageSize)
		defer cl.Close()
		mu.Lock()
		worker++
		vm := tmem.VMID(worker)
		mu.Unlock()
		pool, err := cl.NewPool(vm, tmem.Persistent)
		if err != nil {
			b.Error(err)
			return
		}
		i := uint64(0)
		for pb.Next() {
			i++
			key := tmem.Key{Pool: pool, Object: tmem.ObjectID(i >> 12), Index: tmem.PageIndex(i)}
			if st, err := cl.Put(key, payload); err != nil || st != tmem.STmem {
				b.Errorf("Put = %v, %v", st, err)
				return
			}
			if st, _, err := cl.Get(key); err != nil || st != tmem.STmem {
				b.Errorf("Get = %v, %v", st, err)
				return
			}
			if st, err := cl.FlushPage(key); err != nil || st != tmem.STmem {
				b.Errorf("Flush = %v, %v", st, err)
				return
			}
		}
	})
}

// BenchmarkKVServerPipelined measures the serve loop the way the open-loop
// load generator drives it: requests streamed without waiting for
// responses, so the per-op cost is the server's read-dispatch-write work
// rather than a loopback round trip. The get case pins the single-copy
// response path (page -> socket buffer, no response arena); the
// get-batch case pins the streamed batch response (one copy per page
// instead of three).
func BenchmarkKVServerPipelined(b *testing.B) {
	newServed := func(b *testing.B) (*tmem.Backend, net.Addr) {
		backend := shardedBackend(1<<18, 1)
		srv := NewServer(backend)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Skipf("loopback unavailable: %v", err)
		}
		b.Cleanup(func() { l.Close() })
		go func() { _ = srv.Serve(l) }()
		return backend, l.Addr()
	}
	const seeded = 1024
	seed := func(backend *tmem.Backend) tmem.PoolID {
		pool := backend.NewPool(1, tmem.Persistent)
		pl := page(0xCD)
		for i := 0; i < seeded; i++ {
			key := tmem.Key{Pool: pool, Object: tmem.ObjectID(i >> 6), Index: tmem.PageIndex(i)}
			if st := backend.Put(key, pl); st != tmem.STmem {
				b.Fatalf("seed put = %v", st)
			}
		}
		return pool
	}

	b.Run("get", func(b *testing.B) {
		backend, addr := newServed(b)
		pool := seed(backend)
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		b.SetBytes(pageSize)
		b.ResetTimer()
		go func() {
			bw := bufio.NewWriterSize(conn, 64<<10)
			var req [reqHeaderSize]byte
			req[0] = OpGet
			for i := 0; i < b.N; i++ {
				key := tmem.Key{Pool: pool, Object: tmem.ObjectID(i % seeded >> 6), Index: tmem.PageIndex(i % seeded)}
				key.AppendWire(req[1:1])
				if _, err := bw.Write(req[:]); err != nil {
					return
				}
			}
			_ = bw.Flush()
		}()
		br := bufio.NewReaderSize(conn, 64<<10)
		resp := make([]byte, 5+pageSize)
		for i := 0; i < b.N; i++ {
			if _, err := io.ReadFull(br, resp); err != nil {
				b.Fatalf("response %d: %v", i, err)
			}
			if st := tmem.Status(int8(resp[0])); st != tmem.STmem {
				b.Fatalf("get %d = %v", i, st)
			}
		}
	})

	b.Run("get-batch-256", func(b *testing.B) {
		backend, addr := newServed(b)
		pool := seed(backend)
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			b.Fatal(err)
		}
		cl := NewClient(conn, pageSize)
		defer cl.Close()
		keys := make([]tmem.Key, MaxBatch)
		sts := make([]tmem.Status, MaxBatch)
		for i := range keys {
			keys[i] = tmem.Key{Pool: pool, Object: tmem.ObjectID(i % seeded >> 6), Index: tmem.PageIndex(i % seeded)}
		}
		b.SetBytes(pageSize)
		b.ResetTimer()
		for done := 0; done < b.N; done += len(keys) {
			n := min(len(keys), b.N-done)
			if err := cl.GetBatch(keys[:n], nil, sts[:n]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKVServer compares the daemon's end-to-end throughput on a
// single-stripe store (the old global mutex) against a striped one. Run
// with -cpu matching the serving cores to see the scaling.
func BenchmarkKVServer(b *testing.B) {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	} else {
		counts = append(counts, 8)
	}
	for _, n := range counts {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) { benchServer(b, n) })
	}
}
