// Package kvstore exposes the tmem backend as a network key–value service:
// the page-copy put/get/flush interface of the paper served over any
// net.Conn with a compact binary protocol. It demonstrates that the tmem
// store is a genuine key–value system (paper §II-B: "a key–value store
// with synchronous put, get and flush operations") and provides the
// transport used by cmd/smartmem-kvd.
//
// Wire protocol (big-endian). Request:
//
//	[1 byte op][16 byte key][4 byte len][len bytes data]
//
// Response:
//
//	[1 byte status][4 byte len][len bytes data]
//
// Ops: 1=put, 2=get, 3=flush-page, 4=flush-object, 5=new-pool (key.Pool
// carries the VM id and key.Object the pool kind; the response status
// carries the new pool id, which is non-negative and therefore disjoint
// from the negative error statuses), 6=destroy-pool (key.Pool carries the
// pool id), 7=put-batch, 8=get-batch.
//
// Batch frames (7, 8) ship a whole run of page operations in one request —
// the store-level amortization RAMster-style remote tmem relies on: a
// remote tier with a run of overflow pages pays one network round trip
// instead of one per page. The 16-byte key field of the request header is
// ignored; the payload carries the run:
//
//	put-batch request payload:  [4 count] count × ([16 key][4 len][len data])
//	put-batch response payload: count × [1 status]
//	get-batch request payload:  [4 count] count × [16 key]
//	get-batch response payload: count × ([1 status][4 len][len data])
//
// Batch payloads may exceed the page size (up to MaxBatch items); all other
// ops stay capped at one page.
//
// Requests are processed in order per connection but may be pipelined: the
// server keeps reading while responses accumulate in a buffered writer
// that is flushed when the inbound stream drains. Combined with a sharded
// backend (tmem.NewBackendOpts) the goroutine-per-connection server scales
// across cores instead of serializing on one store mutex.
package kvstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// Op codes.
const (
	OpPut         byte = 1
	OpGet         byte = 2
	OpFlushPage   byte = 3
	OpFlushObject byte = 4
	OpNewPool     byte = 5
	OpDestroyPool byte = 6
	OpPutBatch    byte = 7
	OpGetBatch    byte = 8
)

// MaxBatch is the largest number of items one batch frame may carry.
// Clients split longer runs transparently.
const MaxBatch = 256

const reqHeaderSize = 1 + 16 + 4
const keyWireSize = 16

// maxBatchPayload bounds an inbound batch frame: count word plus MaxBatch
// maximal items.
func maxBatchPayload(pageSize int) int {
	return 4 + MaxBatch*(keyWireSize+4+pageSize)
}

// connBufSize sizes the per-connection buffered reader and writer; large
// enough to hold several pipelined 4 KiB-page requests per syscall.
const connBufSize = 32 * 1024

// Store is the operation surface a Server dispatches requests to: exactly
// the backend methods the wire protocol exposes. *tmem.Backend satisfies
// it directly; durable.Store wraps a backend with write-through journaling
// so every acknowledged persistent put survives a crash.
type Store interface {
	PageSize() mem.Bytes
	NewPool(vm tmem.VMID, kind tmem.PoolKind) tmem.PoolID
	DestroyPool(id tmem.PoolID) error
	Put(key tmem.Key, data []byte) tmem.Status
	Get(key tmem.Key, dst []byte) tmem.Status
	FlushPage(key tmem.Key) tmem.Status
	FlushObject(pool tmem.PoolID, object tmem.ObjectID) (mem.Pages, tmem.Status)
	PutBatch(keys []tmem.Key, datas [][]byte, sts []tmem.Status)
	GetBatch(keys []tmem.Key, dsts [][]byte, sts []tmem.Status)
}

var _ Store = (*tmem.Backend)(nil)

// Server serves the KV protocol over a listener backed by one store
// shared by all connections. Request handling is pipelined: a client may
// stream many requests without waiting for responses, and the server
// batches responses until the inbound buffer drains.
type Server struct {
	store   Store
	backend *tmem.Backend // non-nil when the store is (or wraps) a backend
	metrics *Metrics      // nil when uninstrumented

	// connPool recycles per-connection serving state (bufio reader/writer,
	// page and frame buffers, batch scratch) across connections, so a churn
	// of short-lived clients — exactly what an open-loop load generator
	// ramping connections produces — does not re-allocate ~70 KiB of
	// arenas per accept.
	connPool sync.Pool

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	draining  bool
	wg        sync.WaitGroup
}

// NewServer wraps a bare backend.
func NewServer(b *tmem.Backend) *Server {
	if b == nil {
		panic("kvstore: nil backend")
	}
	s := NewServerStore(b)
	s.backend = b
	return s
}

// NewServerStore wraps any Store (e.g. a durable write-through store).
// When the store exposes the backend it wraps via a Backend() method,
// Server.Backend reports it.
func NewServerStore(store Store) *Server {
	if store == nil {
		panic("kvstore: nil store")
	}
	s := &Server{
		store:     store,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	if bp, ok := store.(interface{ Backend() *tmem.Backend }); ok {
		s.backend = bp.Backend()
	}
	return s
}

// Backend returns the underlying tmem backend, or nil when the server was
// built over a store that does not wrap one.
func (s *Server) Backend() *tmem.Backend { return s.backend }

// SetMetrics attaches serving instrumentation: per-op latency histograms
// and transport counters recorded lock-free on the serve loop. Call before
// serving; a nil m disables recording (the default).
func (s *Server) SetMetrics(m *Metrics) { s.metrics = m }

// Metrics returns the attached instrumentation, or nil.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Serve accepts and serves connections until the listener closes. After a
// Shutdown-initiated stop it returns nil instead of the accept error.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("kvstore: server is shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				s.wg.Done()
			}()
			_ = s.ServeConn(c)
		}()
	}
}

// Shutdown gracefully stops the server: it closes every listener so no new
// connection is accepted, then waits for in-flight connections served via
// Serve to drain. When ctx expires first, the remaining connections are
// closed forcibly and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// connState is the per-connection serving arena: buffered reader/writer,
// request header/payload/page buffers, and the batch scratch. A Server
// recycles these through connPool, so accepting a connection costs a pool
// get instead of fresh buffer allocations.
type connState struct {
	br       *bufio.Reader
	bw       *bufio.Writer
	hdr      [reqHeaderSize]byte
	respHdr  [5]byte
	countBuf [8]byte
	buf      []byte // single-op request payload
	page     []byte // get destination
	scr      batchScratch
}

// getConn takes a recycled connection state from the pool (rebinding its
// bufio pair to c) or builds a fresh one.
func (s *Server) getConn(c net.Conn, pageSize int) *connState {
	if v := s.connPool.Get(); v != nil {
		cs := v.(*connState)
		cs.br.Reset(c)
		cs.bw.Reset(c)
		return cs
	}
	return &connState{
		br:   bufio.NewReaderSize(c, connBufSize),
		bw:   bufio.NewWriterSize(c, connBufSize),
		buf:  make([]byte, pageSize),
		page: make([]byte, pageSize),
	}
}

// putConn returns a connection state to the pool, dropping the conn
// references so a pooled state never pins a closed connection.
func (s *Server) putConn(cs *connState) {
	cs.br.Reset(nil)
	cs.bw.Reset(nil)
	s.connPool.Put(cs)
}

// protoErr counts a connection dropped on a malformed or truncated frame
// when metrics are attached, and passes the error through.
func (s *Server) protoErr(err error) error {
	if s.metrics != nil {
		s.metrics.protoErrors.Add(1)
	}
	return err
}

// ServeConn serves one connection until EOF or protocol error. The serving
// arena (header, payload, page and batch buffers) comes from the server's
// connection pool and is reused across requests and across connections.
// Responses are written header-then-payload straight into the buffered
// writer — no intermediate response buffer is assembled, so a get never
// copies its page twice — and flushed only once the inbound buffer is
// empty, so a pipelining client pays one write syscall per batch of
// requests rather than per request.
func (s *Server) ServeConn(c net.Conn) error {
	defer c.Close()
	pageSize := int(s.store.PageSize())
	m := s.metrics
	if m != nil {
		m.connsTotal.Add(1)
		m.connsActive.Add(1)
		defer m.connsActive.Add(-1)
	}
	cs := s.getConn(c, pageSize)
	defer s.putConn(cs)
	br, bw := cs.br, cs.bw
	scr := &cs.scr
	// On an error return, responses to already-executed pipelined requests
	// may still sit in bw; deliver them before the deferred Close (defers
	// run last-in-first-out). Flush errors are moot — the conn is dying.
	defer func() { _ = bw.Flush() }()
	for {
		if _, err := io.ReadFull(br, cs.hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return s.protoErr(err)
		}
		op := cs.hdr[0]
		key, err := tmem.KeyFromWire(cs.hdr[1:17])
		if err != nil {
			return s.protoErr(err)
		}
		n := binary.BigEndian.Uint32(cs.hdr[17:21])
		isBatch := op == OpPutBatch || op == OpGetBatch
		limit := pageSize
		if isBatch {
			limit = maxBatchPayload(pageSize)
		}
		if int(n) > limit {
			return s.protoErr(fmt.Errorf("kvstore: payload %d exceeds limit %d", n, limit))
		}
		var data []byte
		if isBatch {
			if cap(scr.buf) < int(n) {
				scr.buf = make([]byte, n)
			}
			data = scr.buf[:n]
		} else {
			data = cs.buf[:n]
		}
		if _, err := io.ReadFull(br, data); err != nil {
			return s.protoErr(err)
		}

		// Latency is measured from frame-complete to response-enqueued and
		// recorded into lock-free hdr buckets, so instrumentation never
		// serializes connection handlers.
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		var status tmem.Status
		var payload []byte
		switch op {
		case OpPut:
			status = s.store.Put(key, data)
		case OpGet:
			status = s.store.Get(key, cs.page)
			if status == tmem.STmem {
				payload = cs.page
			}
		case OpFlushPage:
			status = s.store.FlushPage(key)
		case OpFlushObject:
			// The pages-freed count rides the response payload so a remote
			// tier's owner can account exactly (see Client.FlushObjectCount).
			var freed mem.Pages
			freed, status = s.store.FlushObject(key.Pool, key.Object)
			if status == tmem.STmem {
				payload = binary.BigEndian.AppendUint64(cs.countBuf[:0], uint64(freed))
			}
		case OpNewPool:
			pool := s.store.NewPool(tmem.VMID(key.Pool), tmem.PoolKind(key.Object))
			status = tmem.Status(pool)
		case OpDestroyPool:
			if err := s.store.DestroyPool(key.Pool); err != nil {
				status = tmem.EInval
			} else {
				status = tmem.STmem
			}
		case OpPutBatch:
			if err := scr.parsePutBatch(data, pageSize); err != nil {
				return s.protoErr(err)
			}
			s.store.PutBatch(scr.keys, scr.datas, scr.sts)
			status = tmem.STmem
			scr.resp = scr.resp[:0]
			for _, st := range scr.sts {
				scr.resp = append(scr.resp, byte(int8(st)))
			}
			payload = scr.resp
		case OpGetBatch:
			if err := scr.parseGetBatch(data, pageSize); err != nil {
				return s.protoErr(err)
			}
			s.store.GetBatch(scr.keys, scr.dsts, scr.sts)
			// The batch response streams item by item straight into the
			// buffered writer — each hit page goes from its slab slot to
			// the socket buffer once, instead of being assembled into a
			// response arena (up to MaxBatch pages) and copied again.
			respLen := 0
			for _, st := range scr.sts {
				respLen += 5
				if st == tmem.STmem {
					respLen += pageSize
				}
			}
			cs.respHdr[0] = byte(int8(tmem.STmem))
			binary.BigEndian.PutUint32(cs.respHdr[1:], uint32(respLen))
			if _, err := bw.Write(cs.respHdr[:]); err != nil {
				return err
			}
			var item [5]byte
			for i, st := range scr.sts {
				item[0] = byte(int8(st))
				if st == tmem.STmem {
					binary.BigEndian.PutUint32(item[1:], uint32(pageSize))
				} else {
					binary.BigEndian.PutUint32(item[1:], 0)
				}
				if _, err := bw.Write(item[:]); err != nil {
					return err
				}
				if st == tmem.STmem {
					if _, err := bw.Write(scr.dsts[i]); err != nil {
						return err
					}
				}
			}
			if m != nil {
				m.observe(op, time.Since(start), reqHeaderSize+int(n), 5+respLen)
			}
			if br.Buffered() == 0 {
				if err := bw.Flush(); err != nil {
					return err
				}
			}
			continue
		default:
			return s.protoErr(fmt.Errorf("kvstore: unknown op %d", op))
		}
		cs.respHdr[0] = byte(int8(status))
		binary.BigEndian.PutUint32(cs.respHdr[1:], uint32(len(payload)))
		if _, err := bw.Write(cs.respHdr[:]); err != nil {
			return err
		}
		if len(payload) > 0 {
			if _, err := bw.Write(payload); err != nil {
				return err
			}
		}
		if m != nil {
			m.observe(op, time.Since(start), reqHeaderSize+int(n), 5+len(payload))
		}
		// Pipelining: flush only when no further request is already
		// buffered — the next ReadFull would otherwise block with
		// responses stranded in the write buffer.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}

// batchScratch is the per-connection working state of the batch frames:
// the inbound frame buffer, the decoded key/payload views into it, the
// per-item status slice, one slab backing all get destinations, and the
// response under assembly. Everything is reused across requests.
type batchScratch struct {
	buf   []byte
	keys  []tmem.Key
	datas [][]byte
	dsts  [][]byte
	sts   []tmem.Status
	slab  []byte
	resp  []byte
}

// reset sizes the per-item slices for a run of n items.
func (sc *batchScratch) reset(n int) {
	if cap(sc.keys) < n {
		sc.keys = make([]tmem.Key, n)
		sc.datas = make([][]byte, n)
		sc.dsts = make([][]byte, n)
		sc.sts = make([]tmem.Status, n)
	}
	sc.keys = sc.keys[:n]
	sc.datas = sc.datas[:n]
	sc.dsts = sc.dsts[:n]
	sc.sts = sc.sts[:n]
}

// parsePutBatch decodes a put-batch payload; datas alias the frame buffer
// (the backend copies page contents before returning).
func (sc *batchScratch) parsePutBatch(data []byte, pageSize int) error {
	if len(data) < 4 {
		return fmt.Errorf("kvstore: put-batch frame too short")
	}
	n := int(binary.BigEndian.Uint32(data[:4]))
	if n > MaxBatch {
		return fmt.Errorf("kvstore: put-batch count %d exceeds %d", n, MaxBatch)
	}
	sc.reset(n)
	off := 4
	for i := 0; i < n; i++ {
		if len(data) < off+keyWireSize+4 {
			return fmt.Errorf("kvstore: put-batch frame truncated at item %d", i)
		}
		k, err := tmem.KeyFromWire(data[off : off+keyWireSize])
		if err != nil {
			return err
		}
		off += keyWireSize
		dlen := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
		if dlen > pageSize {
			return fmt.Errorf("kvstore: put-batch item %d payload %d exceeds page size", i, dlen)
		}
		if len(data) < off+dlen {
			return fmt.Errorf("kvstore: put-batch frame truncated at item %d data", i)
		}
		sc.keys[i] = k
		sc.datas[i] = data[off : off+dlen]
		off += dlen
	}
	return nil
}

// parseGetBatch decodes a get-batch payload and carves per-item
// destination buffers out of the shared slab.
func (sc *batchScratch) parseGetBatch(data []byte, pageSize int) error {
	if len(data) < 4 {
		return fmt.Errorf("kvstore: get-batch frame too short")
	}
	n := int(binary.BigEndian.Uint32(data[:4]))
	if n > MaxBatch {
		return fmt.Errorf("kvstore: get-batch count %d exceeds %d", n, MaxBatch)
	}
	if len(data) != 4+n*keyWireSize {
		return fmt.Errorf("kvstore: get-batch frame length %d, want %d", len(data), 4+n*keyWireSize)
	}
	sc.reset(n)
	if cap(sc.slab) < n*pageSize {
		sc.slab = make([]byte, n*pageSize)
	}
	for i := 0; i < n; i++ {
		k, err := tmem.KeyFromWire(data[4+i*keyWireSize : 4+(i+1)*keyWireSize])
		if err != nil {
			return err
		}
		sc.keys[i] = k
		sc.dsts[i] = sc.slab[i*pageSize : (i+1)*pageSize]
	}
	return nil
}

// Client speaks the KV protocol over an established connection. Not safe
// for concurrent use (the protocol is strict request/response).
type Client struct {
	c        net.Conn
	pageSize int
	bbuf     []byte // reusable batch frame buffer
}

// NewClient wraps a connection; pageSize must match the server's backend.
func NewClient(c net.Conn, pageSize int) *Client {
	if c == nil {
		panic("kvstore: nil conn")
	}
	if pageSize <= 0 {
		panic("kvstore: non-positive page size")
	}
	return &Client{c: c, pageSize: pageSize}
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

func (cl *Client) do(op byte, key tmem.Key, data []byte) (tmem.Status, []byte, error) {
	if len(data) > cl.pageSize {
		return tmem.EInval, nil, fmt.Errorf("kvstore: payload %d exceeds page size %d", len(data), cl.pageSize)
	}
	req := make([]byte, 0, reqHeaderSize+len(data))
	req = append(req, op)
	req = key.AppendWire(req)
	req = binary.BigEndian.AppendUint32(req, uint32(len(data)))
	req = append(req, data...)
	if _, err := cl.c.Write(req); err != nil {
		return tmem.EInval, nil, err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(cl.c, hdr[:]); err != nil {
		return tmem.EInval, nil, err
	}
	status := tmem.Status(int8(hdr[0]))
	n := binary.BigEndian.Uint32(hdr[1:5])
	if int(n) > cl.pageSize {
		return tmem.EInval, nil, fmt.Errorf("kvstore: response payload %d exceeds page size", n)
	}
	var payload []byte
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(cl.c, payload); err != nil {
			return tmem.EInval, nil, err
		}
	}
	return status, payload, nil
}

// NewPool creates a pool for vm of the given kind and returns its id.
func (cl *Client) NewPool(vm tmem.VMID, kind tmem.PoolKind) (tmem.PoolID, error) {
	st, _, err := cl.do(OpNewPool, tmem.Key{Pool: tmem.PoolID(vm), Object: tmem.ObjectID(kind)}, nil)
	if err != nil {
		return tmem.InvalidPool, err
	}
	if st < 0 {
		return tmem.InvalidPool, fmt.Errorf("kvstore: new-pool failed: %v", st)
	}
	return tmem.PoolID(st), nil
}

// Put stores a page (copied; nil means a zero page).
func (cl *Client) Put(key tmem.Key, data []byte) (tmem.Status, error) {
	st, _, err := cl.do(OpPut, key, data)
	return st, err
}

// Get retrieves a page; on S_TMEM the returned slice holds the page.
func (cl *Client) Get(key tmem.Key) (tmem.Status, []byte, error) {
	return cl.do(OpGet, key, nil)
}

// FlushPage invalidates one page.
func (cl *Client) FlushPage(key tmem.Key) (tmem.Status, error) {
	st, _, err := cl.do(OpFlushPage, key, nil)
	return st, err
}

// FlushObject invalidates every page of an object.
func (cl *Client) FlushObject(pool tmem.PoolID, object tmem.ObjectID) (tmem.Status, error) {
	_, st, err := cl.FlushObjectCount(pool, object)
	return st, err
}

// FlushObjectCount is FlushObject plus the pages-freed count the server
// reports in the response payload (tmem's objectFlushCounter refinement).
func (cl *Client) FlushObjectCount(pool tmem.PoolID, object tmem.ObjectID) (mem.Pages, tmem.Status, error) {
	st, payload, err := cl.do(OpFlushObject, tmem.Key{Pool: pool, Object: object}, nil)
	var n mem.Pages
	if err == nil && st == tmem.STmem && len(payload) >= 8 {
		n = mem.Pages(binary.BigEndian.Uint64(payload))
	}
	return n, st, err
}

// DestroyPool flushes and removes a pool.
func (cl *Client) DestroyPool(pool tmem.PoolID) (tmem.Status, error) {
	st, _, err := cl.do(OpDestroyPool, tmem.Key{Pool: pool}, nil)
	return st, err
}

// PutBatch stores a run of pages in one wire round trip per MaxBatch
// chunk: one request frame carries every key and payload, one response
// frame carries every status. datas may be nil (all zero pages) or hold
// one payload per key; sts receives one status per key.
func (cl *Client) PutBatch(keys []tmem.Key, datas [][]byte, sts []tmem.Status) error {
	if len(sts) != len(keys) || (datas != nil && len(datas) != len(keys)) {
		return fmt.Errorf("kvstore: batch slice length mismatch")
	}
	for start := 0; start < len(keys); start += MaxBatch {
		end := min(start+MaxBatch, len(keys))
		var chunk [][]byte
		if datas != nil {
			chunk = datas[start:end]
		}
		if err := cl.putBatchChunk(keys[start:end], chunk, sts[start:end]); err != nil {
			return err
		}
	}
	return nil
}

func (cl *Client) putBatchChunk(keys []tmem.Key, datas [][]byte, sts []tmem.Status) error {
	req := cl.bbuf[:0]
	req = append(req, OpPutBatch)
	req = append(req, make([]byte, keyWireSize)...) // header key unused
	lenAt := len(req)
	req = append(req, 0, 0, 0, 0)
	req = binary.BigEndian.AppendUint32(req, uint32(len(keys)))
	for i, k := range keys {
		var d []byte
		if datas != nil {
			d = datas[i]
		}
		if len(d) > cl.pageSize {
			return fmt.Errorf("kvstore: batch payload %d exceeds page size %d", len(d), cl.pageSize)
		}
		req = k.AppendWire(req)
		req = binary.BigEndian.AppendUint32(req, uint32(len(d)))
		req = append(req, d...)
	}
	binary.BigEndian.PutUint32(req[lenAt:], uint32(len(req)-reqHeaderSize))
	cl.bbuf = req
	if _, err := cl.c.Write(req); err != nil {
		return err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(cl.c, hdr[:]); err != nil {
		return err
	}
	if st := tmem.Status(int8(hdr[0])); st != tmem.STmem {
		return fmt.Errorf("kvstore: put-batch rejected: %v", st)
	}
	n := int(binary.BigEndian.Uint32(hdr[1:5]))
	if n != len(keys) {
		return fmt.Errorf("kvstore: put-batch response carries %d statuses, want %d", n, len(keys))
	}
	resp := cl.bbuf[:0]
	if cap(resp) < n {
		resp = make([]byte, n)
	}
	resp = resp[:n]
	if _, err := io.ReadFull(cl.c, resp); err != nil {
		return err
	}
	for i, b := range resp {
		sts[i] = tmem.Status(int8(b))
	}
	return nil
}

// GetBatch retrieves a run of pages in one wire round trip per MaxBatch
// chunk. dsts may be nil (presence only) or hold per-key buffers; nil
// entries skip the copy. sts receives one status per key.
func (cl *Client) GetBatch(keys []tmem.Key, dsts [][]byte, sts []tmem.Status) error {
	if len(sts) != len(keys) || (dsts != nil && len(dsts) != len(keys)) {
		return fmt.Errorf("kvstore: batch slice length mismatch")
	}
	for start := 0; start < len(keys); start += MaxBatch {
		end := min(start+MaxBatch, len(keys))
		var chunk [][]byte
		if dsts != nil {
			chunk = dsts[start:end]
		}
		if err := cl.getBatchChunk(keys[start:end], chunk, sts[start:end]); err != nil {
			return err
		}
	}
	return nil
}

func (cl *Client) getBatchChunk(keys []tmem.Key, dsts [][]byte, sts []tmem.Status) error {
	req := cl.bbuf[:0]
	req = append(req, OpGetBatch)
	req = append(req, make([]byte, keyWireSize)...)
	req = binary.BigEndian.AppendUint32(req, uint32(4+len(keys)*keyWireSize))
	req = binary.BigEndian.AppendUint32(req, uint32(len(keys)))
	for _, k := range keys {
		req = k.AppendWire(req)
	}
	cl.bbuf = req
	if _, err := cl.c.Write(req); err != nil {
		return err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(cl.c, hdr[:]); err != nil {
		return err
	}
	if st := tmem.Status(int8(hdr[0])); st != tmem.STmem {
		return fmt.Errorf("kvstore: get-batch rejected: %v", st)
	}
	n := int(binary.BigEndian.Uint32(hdr[1:5]))
	if maxResp := len(keys) * (5 + cl.pageSize); n > maxResp {
		return fmt.Errorf("kvstore: get-batch response %d exceeds maximum %d", n, maxResp)
	}
	if cap(cl.bbuf) < n {
		cl.bbuf = make([]byte, n)
	}
	resp := cl.bbuf[:n]
	if _, err := io.ReadFull(cl.c, resp); err != nil {
		return err
	}
	off := 0
	for i := range keys {
		if len(resp) < off+5 {
			return fmt.Errorf("kvstore: get-batch response truncated at item %d", i)
		}
		sts[i] = tmem.Status(int8(resp[off]))
		dlen := int(binary.BigEndian.Uint32(resp[off+1 : off+5]))
		off += 5
		if dlen > cl.pageSize || len(resp) < off+dlen {
			return fmt.Errorf("kvstore: get-batch response malformed at item %d", i)
		}
		if sts[i] == tmem.STmem && dsts != nil && dsts[i] != nil {
			copy(dsts[i], resp[off:off+dlen])
		}
		off += dlen
	}
	return nil
}

// Client implements tmem.PageService: a RemoteTier pointed at a Client
// ships its overflow pages to a smartmem-kvd daemon over the wire —
// RAMster-style remote tmem between real processes. A bare Client is not
// safe for concurrent use; a tier serving a concurrent backend must wrap
// it in SyncClient.
var _ tmem.PageService = (*Client)(nil)

// SyncClient wraps a Client with a mutex so one wire connection can serve
// a concurrent caller (e.g. a RemoteTier attached to a backend handling
// many connections): each request/response exchange runs under the lock,
// keeping frames from interleaving on the shared conn.
type SyncClient struct {
	mu sync.Mutex
	cl *Client
}

// NewSyncClient wraps cl.
func NewSyncClient(cl *Client) *SyncClient {
	if cl == nil {
		panic("kvstore: nil client")
	}
	return &SyncClient{cl: cl}
}

// Close closes the underlying connection.
func (s *SyncClient) Close() error { return s.cl.Close() }

// NewPool implements tmem.PageService.
func (s *SyncClient) NewPool(vm tmem.VMID, kind tmem.PoolKind) (tmem.PoolID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.NewPool(vm, kind)
}

// Put implements tmem.PageService.
func (s *SyncClient) Put(key tmem.Key, data []byte) (tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Put(key, data)
}

// Get implements tmem.PageService.
func (s *SyncClient) Get(key tmem.Key) (tmem.Status, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Get(key)
}

// FlushPage implements tmem.PageService.
func (s *SyncClient) FlushPage(key tmem.Key) (tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.FlushPage(key)
}

// FlushObject implements tmem.PageService.
func (s *SyncClient) FlushObject(pool tmem.PoolID, object tmem.ObjectID) (tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.FlushObject(pool, object)
}

// FlushObjectCount mirrors Client.FlushObjectCount under the lock.
func (s *SyncClient) FlushObjectCount(pool tmem.PoolID, object tmem.ObjectID) (mem.Pages, tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.FlushObjectCount(pool, object)
}

// DestroyPool implements tmem.PageService.
func (s *SyncClient) DestroyPool(pool tmem.PoolID) (tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.DestroyPool(pool)
}

// PutBatch implements tmem.BatchPageService: the whole run crosses the
// wire in one round trip (per MaxBatch chunk) under one lock acquisition.
func (s *SyncClient) PutBatch(keys []tmem.Key, datas [][]byte, sts []tmem.Status) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.PutBatch(keys, datas, sts)
}

// GetBatch implements tmem.BatchPageService.
func (s *SyncClient) GetBatch(keys []tmem.Key, dsts [][]byte, sts []tmem.Status) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.GetBatch(keys, dsts, sts)
}

var (
	_ tmem.PageService      = (*SyncClient)(nil)
	_ tmem.BatchPageService = (*Client)(nil)
	_ tmem.BatchPageService = (*SyncClient)(nil)
)
