// Package kvstore exposes the tmem backend as a network key–value service:
// the page-copy put/get/flush interface of the paper served over any
// net.Conn with a compact binary protocol. It demonstrates that the tmem
// store is a genuine key–value system (paper §II-B: "a key–value store
// with synchronous put, get and flush operations") and provides the
// transport used by cmd/smartmem-kvd.
//
// Wire protocol (big-endian). Request:
//
//	[1 byte op][16 byte key][4 byte len][len bytes data]
//
// Response:
//
//	[1 byte status][4 byte len][len bytes data]
//
// Ops: 1=put, 2=get, 3=flush-page, 4=flush-object, 5=new-pool (key.Pool
// carries the VM id and key.Object the pool kind; the response status
// carries the new pool id, which is non-negative and therefore disjoint
// from the negative error statuses), 6=destroy-pool (key.Pool carries the
// pool id).
//
// Requests are processed in order per connection but may be pipelined: the
// server keeps reading while responses accumulate in a buffered writer
// that is flushed when the inbound stream drains. Combined with a sharded
// backend (tmem.NewBackendOpts) the goroutine-per-connection server scales
// across cores instead of serializing on one store mutex.
package kvstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// Op codes.
const (
	OpPut         byte = 1
	OpGet         byte = 2
	OpFlushPage   byte = 3
	OpFlushObject byte = 4
	OpNewPool     byte = 5
	OpDestroyPool byte = 6
)

const reqHeaderSize = 1 + 16 + 4

// connBufSize sizes the per-connection buffered reader and writer; large
// enough to hold several pipelined 4 KiB-page requests per syscall.
const connBufSize = 32 * 1024

// Server serves the KV protocol over a listener backed by one tmem
// backend shared by all connections. Request handling is pipelined: a
// client may stream many requests without waiting for responses, and the
// server batches responses until the inbound buffer drains.
type Server struct {
	backend *tmem.Backend

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	draining  bool
	wg        sync.WaitGroup
}

// NewServer wraps a backend.
func NewServer(b *tmem.Backend) *Server {
	if b == nil {
		panic("kvstore: nil backend")
	}
	return &Server{
		backend:   b,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Backend returns the underlying tmem backend.
func (s *Server) Backend() *tmem.Backend { return s.backend }

// Serve accepts and serves connections until the listener closes. After a
// Shutdown-initiated stop it returns nil instead of the accept error.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("kvstore: server is shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				s.wg.Done()
			}()
			_ = s.ServeConn(c)
		}()
	}
}

// Shutdown gracefully stops the server: it closes every listener so no new
// connection is accepted, then waits for in-flight connections served via
// Serve to drain. When ctx expires first, the remaining connections are
// closed forcibly and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// ServeConn serves one connection until EOF or protocol error. All buffers
// (header, payload, page, response) are allocated once per connection and
// reused across requests. Responses are flushed only once the inbound
// buffer is empty, so a pipelining client pays one write syscall per batch
// rather than per request.
func (s *Server) ServeConn(c net.Conn) error {
	defer c.Close()
	pageSize := int(s.backend.PageSize())
	br := bufio.NewReaderSize(c, connBufSize)
	bw := bufio.NewWriterSize(c, connBufSize)
	// On an error return, responses to already-executed pipelined requests
	// may still sit in bw; deliver them before the deferred Close (defers
	// run last-in-first-out). Flush errors are moot — the conn is dying.
	defer func() { _ = bw.Flush() }()
	hdr := make([]byte, reqHeaderSize)
	buf := make([]byte, pageSize)
	page := make([]byte, pageSize)
	resp := make([]byte, 0, 5+pageSize)
	var countBuf [8]byte
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		key, err := tmem.KeyFromWire(hdr[1:17])
		if err != nil {
			return err
		}
		n := binary.BigEndian.Uint32(hdr[17:21])
		if int(n) > pageSize {
			return fmt.Errorf("kvstore: payload %d exceeds page size %d", n, pageSize)
		}
		data := buf[:n]
		if _, err := io.ReadFull(br, data); err != nil {
			return err
		}

		var status tmem.Status
		var payload []byte
		switch hdr[0] {
		case OpPut:
			status = s.backend.Put(key, data)
		case OpGet:
			status = s.backend.Get(key, page)
			if status == tmem.STmem {
				payload = page
			}
		case OpFlushPage:
			status = s.backend.FlushPage(key)
		case OpFlushObject:
			// The pages-freed count rides the response payload so a remote
			// tier's owner can account exactly (see Client.FlushObjectCount).
			var freed mem.Pages
			freed, status = s.backend.FlushObject(key.Pool, key.Object)
			if status == tmem.STmem {
				payload = binary.BigEndian.AppendUint64(countBuf[:0], uint64(freed))
			}
		case OpNewPool:
			pool := s.backend.NewPool(tmem.VMID(key.Pool), tmem.PoolKind(key.Object))
			status = tmem.Status(pool)
		case OpDestroyPool:
			if err := s.backend.DestroyPool(key.Pool); err != nil {
				status = tmem.EInval
			} else {
				status = tmem.STmem
			}
		default:
			return fmt.Errorf("kvstore: unknown op %d", hdr[0])
		}
		resp = resp[:0]
		resp = append(resp, byte(int8(status)))
		resp = binary.BigEndian.AppendUint32(resp, uint32(len(payload)))
		resp = append(resp, payload...)
		if _, err := bw.Write(resp); err != nil {
			return err
		}
		// Pipelining: flush only when no further request is already
		// buffered — the next ReadFull would otherwise block with
		// responses stranded in the write buffer.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}

// Client speaks the KV protocol over an established connection. Not safe
// for concurrent use (the protocol is strict request/response).
type Client struct {
	c        net.Conn
	pageSize int
}

// NewClient wraps a connection; pageSize must match the server's backend.
func NewClient(c net.Conn, pageSize int) *Client {
	if c == nil {
		panic("kvstore: nil conn")
	}
	if pageSize <= 0 {
		panic("kvstore: non-positive page size")
	}
	return &Client{c: c, pageSize: pageSize}
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

func (cl *Client) do(op byte, key tmem.Key, data []byte) (tmem.Status, []byte, error) {
	if len(data) > cl.pageSize {
		return tmem.EInval, nil, fmt.Errorf("kvstore: payload %d exceeds page size %d", len(data), cl.pageSize)
	}
	req := make([]byte, 0, reqHeaderSize+len(data))
	req = append(req, op)
	req = key.AppendWire(req)
	req = binary.BigEndian.AppendUint32(req, uint32(len(data)))
	req = append(req, data...)
	if _, err := cl.c.Write(req); err != nil {
		return tmem.EInval, nil, err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(cl.c, hdr[:]); err != nil {
		return tmem.EInval, nil, err
	}
	status := tmem.Status(int8(hdr[0]))
	n := binary.BigEndian.Uint32(hdr[1:5])
	if int(n) > cl.pageSize {
		return tmem.EInval, nil, fmt.Errorf("kvstore: response payload %d exceeds page size", n)
	}
	var payload []byte
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(cl.c, payload); err != nil {
			return tmem.EInval, nil, err
		}
	}
	return status, payload, nil
}

// NewPool creates a pool for vm of the given kind and returns its id.
func (cl *Client) NewPool(vm tmem.VMID, kind tmem.PoolKind) (tmem.PoolID, error) {
	st, _, err := cl.do(OpNewPool, tmem.Key{Pool: tmem.PoolID(vm), Object: tmem.ObjectID(kind)}, nil)
	if err != nil {
		return tmem.InvalidPool, err
	}
	if st < 0 {
		return tmem.InvalidPool, fmt.Errorf("kvstore: new-pool failed: %v", st)
	}
	return tmem.PoolID(st), nil
}

// Put stores a page (copied; nil means a zero page).
func (cl *Client) Put(key tmem.Key, data []byte) (tmem.Status, error) {
	st, _, err := cl.do(OpPut, key, data)
	return st, err
}

// Get retrieves a page; on S_TMEM the returned slice holds the page.
func (cl *Client) Get(key tmem.Key) (tmem.Status, []byte, error) {
	return cl.do(OpGet, key, nil)
}

// FlushPage invalidates one page.
func (cl *Client) FlushPage(key tmem.Key) (tmem.Status, error) {
	st, _, err := cl.do(OpFlushPage, key, nil)
	return st, err
}

// FlushObject invalidates every page of an object.
func (cl *Client) FlushObject(pool tmem.PoolID, object tmem.ObjectID) (tmem.Status, error) {
	_, st, err := cl.FlushObjectCount(pool, object)
	return st, err
}

// FlushObjectCount is FlushObject plus the pages-freed count the server
// reports in the response payload (tmem's objectFlushCounter refinement).
func (cl *Client) FlushObjectCount(pool tmem.PoolID, object tmem.ObjectID) (mem.Pages, tmem.Status, error) {
	st, payload, err := cl.do(OpFlushObject, tmem.Key{Pool: pool, Object: object}, nil)
	var n mem.Pages
	if err == nil && st == tmem.STmem && len(payload) >= 8 {
		n = mem.Pages(binary.BigEndian.Uint64(payload))
	}
	return n, st, err
}

// DestroyPool flushes and removes a pool.
func (cl *Client) DestroyPool(pool tmem.PoolID) (tmem.Status, error) {
	st, _, err := cl.do(OpDestroyPool, tmem.Key{Pool: pool}, nil)
	return st, err
}

// Client implements tmem.PageService: a RemoteTier pointed at a Client
// ships its overflow pages to a smartmem-kvd daemon over the wire —
// RAMster-style remote tmem between real processes. A bare Client is not
// safe for concurrent use; a tier serving a concurrent backend must wrap
// it in SyncClient.
var _ tmem.PageService = (*Client)(nil)

// SyncClient wraps a Client with a mutex so one wire connection can serve
// a concurrent caller (e.g. a RemoteTier attached to a backend handling
// many connections): each request/response exchange runs under the lock,
// keeping frames from interleaving on the shared conn.
type SyncClient struct {
	mu sync.Mutex
	cl *Client
}

// NewSyncClient wraps cl.
func NewSyncClient(cl *Client) *SyncClient {
	if cl == nil {
		panic("kvstore: nil client")
	}
	return &SyncClient{cl: cl}
}

// Close closes the underlying connection.
func (s *SyncClient) Close() error { return s.cl.Close() }

// NewPool implements tmem.PageService.
func (s *SyncClient) NewPool(vm tmem.VMID, kind tmem.PoolKind) (tmem.PoolID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.NewPool(vm, kind)
}

// Put implements tmem.PageService.
func (s *SyncClient) Put(key tmem.Key, data []byte) (tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Put(key, data)
}

// Get implements tmem.PageService.
func (s *SyncClient) Get(key tmem.Key) (tmem.Status, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Get(key)
}

// FlushPage implements tmem.PageService.
func (s *SyncClient) FlushPage(key tmem.Key) (tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.FlushPage(key)
}

// FlushObject implements tmem.PageService.
func (s *SyncClient) FlushObject(pool tmem.PoolID, object tmem.ObjectID) (tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.FlushObject(pool, object)
}

// FlushObjectCount mirrors Client.FlushObjectCount under the lock.
func (s *SyncClient) FlushObjectCount(pool tmem.PoolID, object tmem.ObjectID) (mem.Pages, tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.FlushObjectCount(pool, object)
}

// DestroyPool implements tmem.PageService.
func (s *SyncClient) DestroyPool(pool tmem.PoolID) (tmem.Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.DestroyPool(pool)
}

var _ tmem.PageService = (*SyncClient)(nil)
