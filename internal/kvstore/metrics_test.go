package kvstore

import (
	"net"
	"testing"
	"time"

	"smartmem/internal/tmem"
)

// startMetricsServer brings up a served listener with metrics attached and
// returns a connected client plus the metrics set.
func startMetricsServer(t *testing.T) (*Client, *Metrics) {
	t.Helper()
	backend := tmem.NewBackend(1024, tmem.NewDataStore(4096))
	srv := NewServer(backend)
	m := NewMetrics()
	srv.SetMetrics(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cl := NewClient(conn, int(backend.PageSize()))
	t.Cleanup(func() { cl.Close() })
	return cl, m
}

// waitFor polls until cond holds or the deadline passes; the serve loop
// records metrics after enqueueing the response, so a client that has the
// response may race the counter by a scheduling beat.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerMetricsCountOps(t *testing.T) {
	cl, m := startMetricsServer(t)
	pool, err := cl.NewPool(1, tmem.Persistent)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	page := make([]byte, 4096)
	key := tmem.Key{Pool: pool, Object: 1, Index: 2}
	const puts = 10
	for i := 0; i < puts; i++ {
		if st, err := cl.Put(key, page); err != nil || st != tmem.STmem {
			t.Fatalf("Put = %v, %v", st, err)
		}
	}
	if st, _, err := cl.Get(key); err != nil || st != tmem.STmem {
		t.Fatalf("Get = %v, %v", st, err)
	}
	if st, err := cl.FlushPage(key); err != nil || st != tmem.STmem {
		t.Fatalf("Flush = %v, %v", st, err)
	}
	keys := []tmem.Key{{Pool: pool, Object: 2, Index: 0}, {Pool: pool, Object: 2, Index: 1}}
	sts := make([]tmem.Status, len(keys))
	if err := cl.PutBatch(keys, [][]byte{page, page}, sts); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if err := cl.GetBatch(keys, nil, sts); err != nil {
		t.Fatalf("GetBatch: %v", err)
	}

	waitFor(t, func() bool { return m.OpHistogram(OpGetBatch).Count() == 1 })
	checks := map[byte]uint64{
		OpNewPool: 1, OpPut: puts, OpGet: 1, OpFlushPage: 1,
		OpPutBatch: 1, OpGetBatch: 1,
	}
	for op, want := range checks {
		h := m.OpHistogram(op)
		if got := h.Count(); got != want {
			t.Errorf("op %s: count = %d, want %d", OpName(op), got, want)
		}
		if h.Count() > 0 && h.Quantile(1) < 0 {
			t.Errorf("op %s: negative latency", OpName(op))
		}
	}
	if m.BytesIn() == 0 || m.BytesOut() == 0 {
		t.Errorf("byte counters not recorded: in=%d out=%d", m.BytesIn(), m.BytesOut())
	}
	// A get response carries the page; bytes out must reflect it.
	if m.BytesOut() < 4096 {
		t.Errorf("BytesOut = %d, want >= one page", m.BytesOut())
	}
	if m.ConnsTotal() != 1 || m.ConnsActive() != 1 {
		t.Errorf("conns = %d total / %d active, want 1/1", m.ConnsTotal(), m.ConnsActive())
	}
	cl.Close()
	waitFor(t, func() bool { return m.ConnsActive() == 0 })
}

func TestServerMetricsProtoError(t *testing.T) {
	cl, m := startMetricsServer(t)
	// An unknown op kills the connection and counts a protocol error.
	bad := make([]byte, reqHeaderSize)
	bad[0] = 99
	if _, err := cl.c.Write(bad); err != nil {
		t.Fatalf("write: %v", err)
	}
	waitFor(t, func() bool { return m.ProtoErrors() == 1 })
}

func TestOpNames(t *testing.T) {
	for _, op := range Ops() {
		if OpName(op) == "" {
			t.Errorf("op %d has no name", op)
		}
	}
	if OpName(0) != "" || OpName(200) != "" {
		t.Error("invalid ops must have empty names")
	}
}
