package kvstore

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// reserveAddr grabs a loopback port and releases it, returning an address
// that is (momentarily) guaranteed unused.
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestDialRetryConnectsToLateListener(t *testing.T) {
	addr := reserveAddr(t)

	// Bring the listener up only after the first attempts have failed —
	// the restarting-kvd window DialRetry exists for.
	ready := make(chan net.Listener, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		l, err := net.Listen("tcp", addr)
		if err == nil {
			ready <- l
		} else {
			close(ready)
		}
	}()

	c, err := DialRetry("tcp", addr, 20, 20*time.Millisecond)
	l, ok := <-ready
	if ok {
		defer l.Close()
	}
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	c.Close()
}

func TestDialRetryBoundedFailure(t *testing.T) {
	addr := reserveAddr(t)
	start := time.Now()
	_, err := DialRetry("tcp", addr, 3, 5*time.Millisecond)
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error does not report attempts: %v", err)
	}
	// 3 attempts with backoffs 0+5+10ms must not take unbounded time.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry not bounded: %v", elapsed)
	}
}

func TestDialRetryContextCancelMidSleep(t *testing.T) {
	addr := reserveAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// Without cancellation this sequence would sleep for many seconds
	// (jittered 1s, 2s, 3s, ... backoffs); the cancel must cut the current
	// sleep short, not just stop further attempts.
	_, err := DialRetryContext(ctx, "tcp", addr, 100, time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel did not interrupt the backoff sleep: took %v", elapsed)
	}
}

func TestDialRetryContextAlreadyCancelled(t *testing.T) {
	addr := reserveAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialRetryContext(ctx, "tcp", addr, 5, time.Millisecond); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDialRetryBackoffJittered(t *testing.T) {
	addr := reserveAddr(t)
	// 4 attempts with base 20ms: deterministic linear backoff would wait
	// exactly 20+40+60 = 120ms. The jittered sequence must stay inside
	// [0.5x, 1.5x] of that, and the total must include real waiting (i.e.
	// the backoff was not skipped entirely).
	start := time.Now()
	_, err := DialRetry("tcp", addr, 4, 20*time.Millisecond)
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond {
		t.Fatalf("backoff too short for jitter floor: %v", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("backoff unbounded: %v", elapsed)
	}
}

func TestDialRetryImmediateSuccess(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	c, err := DialRetry("tcp", l.Addr().String(), 1, time.Second)
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	c.Close()
}
