package kvstore

import (
	"net"
	"strings"
	"testing"
	"time"
)

// reserveAddr grabs a loopback port and releases it, returning an address
// that is (momentarily) guaranteed unused.
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestDialRetryConnectsToLateListener(t *testing.T) {
	addr := reserveAddr(t)

	// Bring the listener up only after the first attempts have failed —
	// the restarting-kvd window DialRetry exists for.
	ready := make(chan net.Listener, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		l, err := net.Listen("tcp", addr)
		if err == nil {
			ready <- l
		} else {
			close(ready)
		}
	}()

	c, err := DialRetry("tcp", addr, 20, 20*time.Millisecond)
	l, ok := <-ready
	if ok {
		defer l.Close()
	}
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	c.Close()
}

func TestDialRetryBoundedFailure(t *testing.T) {
	addr := reserveAddr(t)
	start := time.Now()
	_, err := DialRetry("tcp", addr, 3, 5*time.Millisecond)
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error does not report attempts: %v", err)
	}
	// 3 attempts with backoffs 0+5+10ms must not take unbounded time.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry not bounded: %v", elapsed)
	}
}

func TestDialRetryImmediateSuccess(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	c, err := DialRetry("tcp", l.Addr().String(), 1, time.Second)
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	c.Close()
}
