package kvstore

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

const pageSize = 4096

func pipeRig(t *testing.T, pages mem.Pages) (*Client, *Server) {
	t.Helper()
	srv := NewServer(tmem.NewBackend(pages, tmem.NewDataStore(pageSize)))
	a, b := net.Pipe()
	go func() { _ = srv.ServeConn(b) }()
	cl := NewClient(a, pageSize)
	t.Cleanup(func() { cl.Close() })
	return cl, srv
}

func page(b byte) []byte {
	p := make([]byte, pageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestPutGetFlushOverWire(t *testing.T) {
	cl, _ := pipeRig(t, 64)
	pool, err := cl.NewPool(1, tmem.Persistent)
	if err != nil {
		t.Fatal(err)
	}
	key := tmem.Key{Pool: pool, Object: 9, Index: 4}

	st, err := cl.Put(key, page(0xCD))
	if err != nil || st != tmem.STmem {
		t.Fatalf("Put = %v, %v", st, err)
	}
	st, got, err := cl.Get(key)
	if err != nil || st != tmem.STmem {
		t.Fatalf("Get = %v, %v", st, err)
	}
	if !bytes.Equal(got, page(0xCD)) {
		t.Error("wire round trip corrupted page")
	}
	st, err = cl.FlushPage(key)
	if err != nil || st != tmem.STmem {
		t.Fatalf("Flush = %v, %v", st, err)
	}
	st, _, err = cl.Get(key)
	if err != nil || st != tmem.ETmem {
		t.Errorf("Get after flush = %v, %v (want E_TMEM)", st, err)
	}
}

func TestFlushObjectOverWire(t *testing.T) {
	cl, srv := pipeRig(t, 64)
	pool, _ := cl.NewPool(1, tmem.Persistent)
	for i := 0; i < 5; i++ {
		if st, _ := cl.Put(tmem.Key{Pool: pool, Object: 3, Index: tmem.PageIndex(i)}, nil); st != tmem.STmem {
			t.Fatalf("put %d failed", i)
		}
	}
	if st, err := cl.FlushObject(pool, 3); err != nil || st != tmem.STmem {
		t.Fatalf("FlushObject = %v, %v", st, err)
	}
	if used := srv.Backend().UsedBy(1); used != 0 {
		t.Errorf("backend used = %d after object flush", used)
	}
}

func TestCapacityErrorsCrossTheWire(t *testing.T) {
	cl, _ := pipeRig(t, 2)
	pool, _ := cl.NewPool(1, tmem.Persistent)
	ok := 0
	for i := 0; i < 4; i++ {
		st, err := cl.Put(tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == tmem.STmem {
			ok++
		} else if st != tmem.ETmem {
			t.Fatalf("unexpected status %v", st)
		}
	}
	if ok != 2 {
		t.Errorf("puts succeeded = %d, want 2 (capacity)", ok)
	}
	// Unknown pool surfaces E_INVAL.
	if st, _ := cl.Put(tmem.Key{Pool: 99, Object: 1, Index: 1}, nil); st != tmem.EInval {
		t.Errorf("unknown pool put = %v, want E_INVAL", st)
	}
}

func TestOversizedPayloadRejectedClientSide(t *testing.T) {
	cl, _ := pipeRig(t, 8)
	pool, _ := cl.NewPool(1, tmem.Persistent)
	if _, err := cl.Put(tmem.Key{Pool: pool}, make([]byte, pageSize+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestTargetsEnforcedOverWire(t *testing.T) {
	cl, srv := pipeRig(t, 100)
	pool, _ := cl.NewPool(1, tmem.Persistent)
	srv.Backend().SetTarget(1, 3)
	ok := 0
	for i := 0; i < 10; i++ {
		if st, _ := cl.Put(tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(i)}, nil); st == tmem.STmem {
			ok++
		}
	}
	if ok != 3 {
		t.Errorf("puts within target = %d, want 3", ok)
	}
}

func TestConcurrentClientsOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer l.Close()
	srv := NewServer(tmem.NewBackend(1024, tmem.NewDataStore(pageSize)))
	go func() { _ = srv.Serve(l) }()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(vm tmem.VMID) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			cl := NewClient(conn, pageSize)
			defer cl.Close()
			pool, err := cl.NewPool(vm, tmem.Persistent)
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < 50; j++ {
				key := tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(j)}
				if st, err := cl.Put(key, page(byte(vm))); err != nil || st != tmem.STmem {
					errs <- err
					return
				}
				st, got, err := cl.Get(key)
				if err != nil || st != tmem.STmem || got[0] != byte(vm) {
					errs <- err
					return
				}
			}
		}(tmem.VMID(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Backend().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil backend":   func() { NewServer(nil) },
		"nil conn":      func() { NewClient(nil, pageSize) },
		"bad page size": func() { a, _ := net.Pipe(); NewClient(a, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDestroyPoolOverWire(t *testing.T) {
	cl, srv := pipeRig(t, 64)
	pool, err := cl.NewPool(1, tmem.Persistent)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if st, err := cl.Put(tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(i)}, page(byte(i))); err != nil || st != tmem.STmem {
			t.Fatalf("Put %d = %v, %v", i, st, err)
		}
	}
	st, err := cl.DestroyPool(pool)
	if err != nil || st != tmem.STmem {
		t.Fatalf("DestroyPool = %v, %v", st, err)
	}
	if used := srv.Backend().TotalPages() - srv.Backend().FreePages(); used != 0 {
		t.Errorf("store still holds %d pages after pool destruction", used)
	}
	// Destroying an unknown pool reports E_INVAL, not a dead connection.
	st, err = cl.DestroyPool(pool)
	if err != nil || st != tmem.EInval {
		t.Errorf("double destroy = %v, %v (want E_INVAL)", st, err)
	}
}

// TestRemoteTierOverWire drives a tmem.RemoteTier through a real Client —
// the RAMster-style topology smartmem-kvd's -remote flag assembles: a small
// front store whose overflow lands on a kvd peer across the wire.
func TestRemoteTierOverWire(t *testing.T) {
	peerClient, peerSrv := pipeRig(t, 256)
	front := tmem.NewBackend(2, tmem.NewDataStore(pageSize))
	front.AttachTier(tmem.NewRemoteTier("kvd-peer", peerClient, 1000))

	pool := front.NewPool(1, tmem.Persistent)
	for i := 0; i < 8; i++ {
		if st := front.Put(tmem.Key{Pool: pool, Object: 3, Index: tmem.PageIndex(i)}, page(byte(i))); st != tmem.STmem {
			t.Fatalf("Put %d = %v", i, st)
		}
	}
	if got := peerSrv.Backend().UsedBy(1000); got != 6 {
		t.Fatalf("peer absorbed %d pages, want 6", got)
	}
	dst := make([]byte, pageSize)
	for i := 7; i >= 0; i-- {
		key := tmem.Key{Pool: pool, Object: 3, Index: tmem.PageIndex(i)}
		if st := front.Get(key, dst); st != tmem.STmem || dst[0] != byte(i) {
			t.Fatalf("Get %d = %v (dst[0]=%#x)", i, st, dst[0])
		}
	}
	front.UnregisterVM(1)
	if got := peerSrv.Backend().UsedBy(1000); got != 0 {
		t.Errorf("peer still holds %d pages after front VM shutdown", got)
	}
}

func TestBatchOpsOverWire(t *testing.T) {
	cl, _ := pipeRig(t, 1024)
	pool, err := cl.NewPool(1, tmem.Persistent)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	keys := make([]tmem.Key, n)
	datas := make([][]byte, n)
	sts := make([]tmem.Status, n)
	for i := range keys {
		keys[i] = tmem.Key{Pool: pool, Object: tmem.ObjectID(i >> 3), Index: tmem.PageIndex(i)}
		datas[i] = page(byte(i + 1))
	}
	if err := cl.PutBatch(keys, datas, sts); err != nil {
		t.Fatal(err)
	}
	for i, st := range sts {
		if st != tmem.STmem {
			t.Fatalf("batch put %d = %v", i, st)
		}
	}
	dsts := make([][]byte, n)
	for i := range dsts {
		dsts[i] = make([]byte, pageSize)
	}
	if err := cl.GetBatch(keys, dsts, sts); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if sts[i] != tmem.STmem {
			t.Fatalf("batch get %d = %v", i, sts[i])
		}
		if !bytes.Equal(dsts[i], datas[i]) {
			t.Fatalf("batch page %d corrupted over the wire", i)
		}
	}
	// Mixed hits and misses: flush half, get everything.
	for i := 0; i < n; i += 2 {
		if st, err := cl.FlushPage(keys[i]); err != nil || st != tmem.STmem {
			t.Fatalf("flush %d = %v, %v", i, st, err)
		}
	}
	if err := cl.GetBatch(keys, dsts, sts); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		want := tmem.STmem
		if i%2 == 0 {
			want = tmem.ETmem
		}
		if sts[i] != want {
			t.Fatalf("after flush, batch get %d = %v, want %v", i, sts[i], want)
		}
	}
}

// Batch frames longer than MaxBatch must be split transparently.
func TestBatchSplitsLongRuns(t *testing.T) {
	cl, _ := pipeRig(t, 2*MaxBatch+64)
	pool, err := cl.NewPool(1, tmem.Persistent)
	if err != nil {
		t.Fatal(err)
	}
	n := 2*MaxBatch + 17
	keys := make([]tmem.Key, n)
	sts := make([]tmem.Status, n)
	for i := range keys {
		keys[i] = tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(i)}
	}
	if err := cl.PutBatch(keys, nil, sts); err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, st := range sts {
		if st == tmem.STmem {
			ok++
		}
	}
	if ok != n {
		t.Errorf("batch landed %d pages, want all %d (backend has capacity for them)", ok, n)
	}
	if err := cl.GetBatch(keys, nil, sts); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, st := range sts {
		if st == tmem.STmem {
			hits++
		}
	}
	if hits != ok {
		t.Errorf("batch get hit %d pages, want %d", hits, ok)
	}
}

// A RemoteTier driving a SyncClient over the wire must ship overflow runs
// as batch frames end to end (node -> wire -> kvd backend).
func TestRemoteTierBatchOverWire(t *testing.T) {
	peer := tmem.NewBackend(1<<16, tmem.NewDataStore(pageSize))
	srv := NewServer(peer)
	a, b := net.Pipe()
	go func() { _ = srv.ServeConn(b) }()
	cl := NewClient(a, pageSize)
	defer cl.Close()

	local := tmem.NewBackend(8, tmem.NewDataStore(pageSize))
	local.AttachTier(tmem.NewRemoteTier("kvd", NewSyncClient(cl), 77))
	pool := local.NewPool(1, tmem.Persistent)

	const n = 32
	keys := make([]tmem.Key, n)
	datas := make([][]byte, n)
	sts := make([]tmem.Status, n)
	for i := range keys {
		keys[i] = tmem.Key{Pool: pool, Object: 5, Index: tmem.PageIndex(i)}
		datas[i] = page(byte(i + 1))
	}
	local.PutBatch(keys, datas, sts)
	for i, st := range sts {
		if st != tmem.STmem {
			t.Fatalf("put %d = %v", i, st)
		}
	}
	if got := peer.UsedBy(77); got != n-8 {
		t.Fatalf("kvd absorbed %d pages, want %d", got, n-8)
	}
	// Overflowed pages read back correctly through the batched get path.
	dsts := make([][]byte, n)
	for i := range dsts {
		dsts[i] = make([]byte, pageSize)
	}
	local.GetBatch(keys, dsts, sts)
	for i := range keys {
		if sts[i] != tmem.STmem {
			t.Fatalf("get %d = %v", i, sts[i])
		}
		if !bytes.Equal(dsts[i], datas[i]) {
			t.Fatalf("page %d corrupted through the remote tier", i)
		}
	}
}
