package tkm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"smartmem/internal/tmem"
)

// Wire protocol: each message is framed as
//
//	[1 byte type][4 byte big-endian payload length][payload]
//
// with two message types: statistics flowing TKM→MM and target batches
// flowing MM→TKM. The exchange is strictly request/response at a 1 Hz
// cadence, mirroring the paper's VIRQ-driven netlink traffic. An MM with
// nothing to send answers with an empty target batch.
const (
	// MsgStats carries a tmem.MemStats sample (TKM → MM).
	MsgStats byte = 1
	// MsgTargets carries a []tmem.TargetUpdate batch (MM → TKM).
	MsgTargets byte = 2
)

// MaxFrameSize bounds a frame payload; larger announcements indicate a
// corrupt or hostile peer.
const MaxFrameSize = 1 << 20

// Conn wraps a net.Conn with the framing protocol. It is safe for one
// reader and one writer; the request/response discipline means callers
// never need more.
type Conn struct {
	c   net.Conn
	buf []byte
}

// NewConn wraps an established connection.
func NewConn(c net.Conn) *Conn {
	if c == nil {
		panic("tkm: nil conn")
	}
	return &Conn{c: c}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

func (c *Conn) writeFrame(typ byte, payload []byte) error {
	hdr := [5]byte{typ}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.c.Write(hdr[:]); err != nil {
		return fmt.Errorf("tkm: write frame header: %w", err)
	}
	if _, err := c.c.Write(payload); err != nil {
		return fmt.Errorf("tkm: write frame payload: %w", err)
	}
	return nil
}

func (c *Conn) readFrame() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("tkm: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("tkm: frame of %d bytes exceeds limit %d", n, MaxFrameSize)
	}
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	buf := c.buf[:n]
	if _, err := io.ReadFull(c.c, buf); err != nil {
		return 0, nil, fmt.Errorf("tkm: read frame payload: %w", err)
	}
	return hdr[0], buf, nil
}

// WriteStats sends a statistics sample (TKM side).
func (c *Conn) WriteStats(ms tmem.MemStats) error {
	return c.writeFrame(MsgStats, ms.AppendWire(nil))
}

// ReadStats receives a statistics sample (MM side).
func (c *Conn) ReadStats() (tmem.MemStats, error) {
	typ, payload, err := c.readFrame()
	if err != nil {
		return tmem.MemStats{}, err
	}
	if typ != MsgStats {
		return tmem.MemStats{}, fmt.Errorf("tkm: expected stats frame, got type %d", typ)
	}
	ms, _, err := tmem.MemStatsFromWire(payload)
	return ms, err
}

// WriteTargets sends a target batch (MM side). An empty batch means "no
// change".
func (c *Conn) WriteTargets(ts []tmem.TargetUpdate) error {
	return c.writeFrame(MsgTargets, tmem.AppendTargetsWire(nil, ts))
}

// ReadTargets receives a target batch (TKM side).
func (c *Conn) ReadTargets() ([]tmem.TargetUpdate, error) {
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if typ != MsgTargets {
		return nil, fmt.Errorf("tkm: expected targets frame, got type %d", typ)
	}
	ts, _, err := tmem.TargetsFromWire(payload)
	return ts, err
}

// RemoteMM reaches a Memory Manager process over a framed connection.
type RemoteMM struct {
	conn *Conn
}

// NewRemoteMM wraps an established connection to an MM daemon.
func NewRemoteMM(c net.Conn) *RemoteMM {
	return &RemoteMM{conn: NewConn(c)}
}

// Handle implements MM: one synchronous stats→targets round trip.
func (r *RemoteMM) Handle(ms tmem.MemStats) ([]tmem.TargetUpdate, error) {
	if err := r.conn.WriteStats(ms); err != nil {
		return nil, err
	}
	return r.conn.ReadTargets()
}

// Close closes the underlying connection.
func (r *RemoteMM) Close() error { return r.conn.Close() }

// ServeMM runs the MM side of the protocol on an established connection:
// for every statistics sample it invokes the policy and answers with the
// (possibly empty) target batch. It returns when the peer disconnects or
// a protocol error occurs; io.EOF is reported as nil (clean shutdown).
func ServeMM(c net.Conn, p PolicyFunc) error {
	conn := NewConn(c)
	defer conn.Close()
	for {
		ms, err := conn.ReadStats()
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		if err := conn.WriteTargets(p.Targets(ms)); err != nil {
			return err
		}
	}
}

// ListenAndServeMM accepts connections on l, serving each with its own
// policy instance produced by newPolicy (policies can be stateful, so each
// TKM connection gets a fresh one). It returns on listener errors.
func ListenAndServeMM(l net.Listener, newPolicy func() PolicyFunc) error {
	for {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		go func() { _ = ServeMM(c, newPolicy()) }()
	}
}

func isClosed(err error) bool {
	if err == nil {
		return false
	}
	for e := err; e != nil; e = unwrap(e) {
		if e == io.EOF || e == io.ErrUnexpectedEOF || e == net.ErrClosed {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}
