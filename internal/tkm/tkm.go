// Package tkm implements the Tmem Kernel Module of the SmarTmem
// architecture (paper §III-C): the bridge between the hypervisor's tmem
// statistics and the user-space Memory Manager (MM).
//
// In the paper the hypervisor raises a VIRQ once per second; the TKM reads
// the statistics, forwards them to the MM over a netlink socket, and
// relays the MM's computed targets back to the hypervisor through custom
// hypercalls. Here the same three-step exchange is factored behind the MM
// interface, with two implementations:
//
//   - LocalMM: the policy runs in-process (the simulator's deterministic
//     path — the "wire" is a function call).
//   - RemoteMM: the policy runs in another process reached over a real
//     net.Conn with a length-prefixed binary protocol (see wire.go), the
//     moral equivalent of the paper's netlink socket.
package tkm

import (
	"fmt"

	"smartmem/internal/tmem"
)

// TKM is the kernel-module bridge. One TKM exists per node, in the
// privileged domain (paper Figure 2).
type TKM struct {
	backend *tmem.Backend
	mm      MM
	seq     uint64

	// TicksRun counts VIRQ cycles processed.
	TicksRun uint64
	// BatchesApplied counts target batches actually installed.
	BatchesApplied uint64
	// Errors counts failed MM exchanges.
	Errors uint64
}

// MM is the user-space Memory Manager as seen from the TKM: it consumes
// one statistics sample and returns the policy's target batch (nil when
// the policy has nothing to send — the paper's send_to_hypervisor
// suppression).
type MM interface {
	Handle(ms tmem.MemStats) ([]tmem.TargetUpdate, error)
}

// New creates a TKM bound to a hypervisor backend and an MM.
func New(backend *tmem.Backend, mm MM) *TKM {
	if backend == nil {
		panic("tkm: nil backend")
	}
	if mm == nil {
		panic("tkm: nil MM")
	}
	return &TKM{backend: backend, mm: mm}
}

// Tick performs one full VIRQ cycle: sample statistics, deliver them to
// the MM, apply any returned targets. It returns the sample and targets
// for observability (the node's monitor records both).
//
// The sample is aggregated from the backend's striped atomic counters
// without taking any store lock, so a Tick never stalls the put/get/flush
// data path — the sharded store keeps serving while the MM deliberates.
func (t *TKM) Tick() (tmem.MemStats, []tmem.TargetUpdate, error) {
	t.seq++
	t.TicksRun++
	ms := t.backend.Sample(t.seq)
	targets, err := t.mm.Handle(ms)
	if err != nil {
		t.Errors++
		return ms, nil, fmt.Errorf("tkm: MM exchange failed: %w", err)
	}
	if len(targets) > 0 {
		t.backend.ApplyTargets(targets)
		t.BatchesApplied++
	}
	return ms, targets, nil
}

// PolicyFunc is the subset of policy.Policy the TKM needs; declared here
// to avoid a dependency cycle with the policy package's tests.
type PolicyFunc interface {
	Targets(tmem.MemStats) []tmem.TargetUpdate
}

// LocalMM adapts an in-process policy to the MM interface.
type LocalMM struct {
	policy PolicyFunc
}

// NewLocalMM wraps a policy value (e.g. *policy.Dedup).
func NewLocalMM(p PolicyFunc) *LocalMM {
	if p == nil {
		panic("tkm: nil policy")
	}
	return &LocalMM{policy: p}
}

// Handle implements MM.
func (l *LocalMM) Handle(ms tmem.MemStats) ([]tmem.TargetUpdate, error) {
	return l.policy.Targets(ms), nil
}
