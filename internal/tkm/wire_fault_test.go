package tkm

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"smartmem/internal/policy"
)

// Wire fault injection for the TKM↔MM exchange: every torn-transport shape
// must surface as a TKM.Errors increment and a prompt Tick error — the tick
// loop then degrades to greedy (targets stop changing) instead of wedging.

// tickWithFaultyPeer runs one TKM tick against a peer driven by fault, and
// fails the test if the tick wedges instead of returning.
func tickWithFaultyPeer(t *testing.T, name string, fault func(peer net.Conn)) {
	t.Helper()
	tkmEnd, mmEnd := net.Pipe()
	defer tkmEnd.Close()
	go fault(mmEnd)

	b := newBackend(900, 1, 2)
	tk := New(b, NewRemoteMM(tkmEnd))

	done := make(chan error, 1)
	go func() {
		_, _, err := tk.Tick()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("%s: fault swallowed, Tick returned nil", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: Tick wedged on the torn exchange", name)
	}
	if tk.Errors != 1 {
		t.Errorf("%s: TKM.Errors = %d, want 1", name, tk.Errors)
	}

	// The loop is not wedged: the next tick also fails promptly (the
	// connection is dead) rather than blocking the caller.
	done2 := make(chan error, 1)
	go func() {
		_, _, err := tk.Tick()
		done2 <- err
	}()
	select {
	case err := <-done2:
		if err == nil {
			t.Errorf("%s: second Tick on dead conn returned nil", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: second Tick wedged", name)
	}
	if tk.Errors != 2 {
		t.Errorf("%s: TKM.Errors after second tick = %d, want 2", name, tk.Errors)
	}
}

// drainStats consumes the TKM's stats frame so the fault can strike the
// response phase.
func drainStats(t *testing.T, peer net.Conn) bool {
	var hdr [5]byte
	if _, err := io.ReadFull(peer, hdr[:]); err != nil {
		return false
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if _, err := io.CopyN(io.Discard, peer, int64(n)); err != nil {
		return false
	}
	return true
}

func TestTickSurvivesTruncatedTargetsFrame(t *testing.T) {
	tickWithFaultyPeer(t, "truncated frame", func(peer net.Conn) {
		if !drainStats(t, peer) {
			return
		}
		// A targets header announcing 64 payload bytes, then the wire dies
		// after 3: the TKM's ReadFull must fail with unexpected EOF.
		hdr := [5]byte{MsgTargets}
		binary.BigEndian.PutUint32(hdr[1:], 64)
		peer.Write(hdr[:])
		peer.Write([]byte{1, 2, 3})
		peer.Close()
	})
}

func TestTickSurvivesOversizedLengthPrefix(t *testing.T) {
	tickWithFaultyPeer(t, "oversized prefix", func(peer net.Conn) {
		if !drainStats(t, peer) {
			return
		}
		// A hostile/corrupt peer announces a payload far over MaxFrameSize;
		// the TKM must reject the frame instead of trying to allocate and
		// read 4 GiB.
		hdr := [5]byte{MsgTargets, 0xFF, 0xFF, 0xFF, 0xFF}
		peer.Write(hdr[:])
		// Keep the conn open: the error must come from the length check,
		// not from a close.
		time.Sleep(50 * time.Millisecond)
		peer.Close()
	})
}

func TestTickSurvivesConnClosedMidExchange(t *testing.T) {
	tickWithFaultyPeer(t, "closed mid-exchange", func(peer net.Conn) {
		// Read the stats frame, then vanish without answering.
		drainStats(t, peer)
		peer.Close()
	})
}

func TestTickSurvivesConnClosedBeforeSend(t *testing.T) {
	tickWithFaultyPeer(t, "closed before send", func(peer net.Conn) {
		// The MM died before the exchange: the stats write itself fails.
		peer.Close()
	})
}

// The node-level behaviour the tick loop relies on: after a torn exchange
// the backend's targets are untouched (greedy degradation), not corrupted.
func TestTornExchangeLeavesTargetsUntouched(t *testing.T) {
	tkmEnd, mmEnd := net.Pipe()
	defer tkmEnd.Close()

	b := newBackend(1000, 1, 2)
	tk := New(b, NewRemoteMM(tkmEnd))

	// First tick completes normally against a live MM.
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		conn := NewConn(mmEnd)
		ms, err := conn.ReadStats()
		if err != nil {
			return
		}
		_ = conn.WriteTargets(policy.StaticAlloc{}.Targets(ms))
		mmEnd.Close()
	}()
	if _, _, err := tk.Tick(); err != nil {
		t.Fatal(err)
	}
	<-serveDone
	if b.Target(1) != 500 || b.Target(2) != 500 {
		t.Fatalf("targets after live tick = %d/%d", b.Target(1), b.Target(2))
	}

	// Second tick hits the closed conn: error surfaces, targets keep their
	// last values.
	if _, _, err := tk.Tick(); err == nil {
		t.Fatal("tick on closed conn returned nil")
	}
	if tk.Errors != 1 {
		t.Errorf("Errors = %d", tk.Errors)
	}
	if b.Target(1) != 500 || b.Target(2) != 500 {
		t.Errorf("targets corrupted by torn exchange: %d/%d", b.Target(1), b.Target(2))
	}
}
