package tkm

import (
	"errors"
	"net"
	"strings"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/tmem"
)

func newBackend(pages mem.Pages, vms ...tmem.VMID) *tmem.Backend {
	b := tmem.NewBackend(pages, tmem.NewMetaStore(4096))
	for _, vm := range vms {
		b.RegisterVM(vm)
	}
	return b
}

func TestTickAppliesPolicyTargets(t *testing.T) {
	b := newBackend(3000, 1, 2, 3)
	tk := New(b, NewLocalMM(policy.StaticAlloc{}))

	ms, targets, err := tk.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if ms.VMCount() != 3 || ms.IntervalSeq != 1 {
		t.Errorf("sample = %+v", ms)
	}
	if len(targets) != 3 {
		t.Fatalf("targets = %v", targets)
	}
	for _, vm := range []tmem.VMID{1, 2, 3} {
		if got := b.Target(vm); got != 1000 {
			t.Errorf("VM %d target = %d, want 1000", vm, got)
		}
	}
	if tk.TicksRun != 1 || tk.BatchesApplied != 1 {
		t.Errorf("tkm counters: %+v", tk)
	}
}

func TestTickWithGreedyLeavesDefaults(t *testing.T) {
	b := newBackend(1000, 1)
	tk := New(b, NewLocalMM(policy.Greedy{}))
	if _, targets, err := tk.Tick(); err != nil || targets != nil {
		t.Errorf("greedy tick: targets=%v err=%v", targets, err)
	}
	if b.Target(1) != tmem.Unlimited {
		t.Errorf("target = %d, want Unlimited", b.Target(1))
	}
	if tk.BatchesApplied != 0 {
		t.Error("greedy applied a batch")
	}
}

func TestTickSequencesSamples(t *testing.T) {
	b := newBackend(100, 1)
	tk := New(b, NewLocalMM(policy.Greedy{}))
	for want := uint64(1); want <= 5; want++ {
		ms, _, _ := tk.Tick()
		if ms.IntervalSeq != want {
			t.Errorf("seq = %d, want %d", ms.IntervalSeq, want)
		}
	}
}

type failingMM struct{}

func (failingMM) Handle(tmem.MemStats) ([]tmem.TargetUpdate, error) {
	return nil, errors.New("socket torn")
}

func TestTickSurfacesMMErrors(t *testing.T) {
	b := newBackend(100, 1)
	tk := New(b, failingMM{})
	if _, _, err := tk.Tick(); err == nil {
		t.Fatal("MM error swallowed")
	}
	if tk.Errors != 1 {
		t.Errorf("error count = %d", tk.Errors)
	}
}

func TestConstructorValidation(t *testing.T) {
	b := newBackend(1)
	for name, fn := range map[string]func(){
		"nil backend": func() { New(nil, NewLocalMM(policy.Greedy{})) },
		"nil mm":      func() { New(b, nil) },
		"nil policy":  func() { NewLocalMM(nil) },
		"nil conn":    func() { NewConn(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWireStatsRoundTrip(t *testing.T) {
	a, bEnd := net.Pipe()
	defer a.Close()
	defer bEnd.Close()
	ca, cb := NewConn(a), NewConn(bEnd)

	want := tmem.MemStats{
		IntervalSeq: 9,
		TotalTmem:   500,
		FreeTmem:    100,
		VMs:         []tmem.VMStat{{ID: 1, PutsTotal: 4, PutsSucc: 2, TmemUsed: 44, MMTarget: 250}},
	}
	errc := make(chan error, 1)
	go func() { errc <- ca.WriteStats(want) }()
	got, err := cb.ReadStats()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got.IntervalSeq != 9 || got.VMs[0] != want.VMs[0] {
		t.Errorf("got %+v", got)
	}
}

func TestWireTargetsRoundTrip(t *testing.T) {
	a, bEnd := net.Pipe()
	defer a.Close()
	defer bEnd.Close()
	ca, cb := NewConn(a), NewConn(bEnd)

	want := []tmem.TargetUpdate{{ID: 3, MMTarget: 777}}
	go func() { _ = ca.WriteTargets(want) }()
	got, err := cb.ReadTargets()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("got %v", got)
	}
	// Empty batch is legal ("no change").
	go func() { _ = ca.WriteTargets(nil) }()
	got, err = cb.ReadTargets()
	if err != nil || len(got) != 0 {
		t.Errorf("empty batch: %v, %v", got, err)
	}
}

func TestWireRejectsWrongFrameType(t *testing.T) {
	a, bEnd := net.Pipe()
	defer a.Close()
	defer bEnd.Close()
	ca, cb := NewConn(a), NewConn(bEnd)

	go func() { _ = ca.WriteTargets(nil) }()
	if _, err := cb.ReadStats(); err == nil || !strings.Contains(err.Error(), "expected stats") {
		t.Errorf("wrong-type read: %v", err)
	}
}

func TestWireRejectsOversizedFrame(t *testing.T) {
	a, bEnd := net.Pipe()
	defer a.Close()
	defer bEnd.Close()
	go func() {
		// Hand-craft a header announcing a huge payload.
		hdr := []byte{MsgStats, 0xFF, 0xFF, 0xFF, 0xFF}
		_, _ = a.Write(hdr)
	}()
	if _, err := NewConn(bEnd).ReadStats(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame: %v", err)
	}
}

// Full remote exchange: TKM on one end, ServeMM (the MM daemon loop) on
// the other, over an in-memory pipe.
func TestRemoteMMEndToEnd(t *testing.T) {
	tkmEnd, mmEnd := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeMM(mmEnd, policy.NewDedup(policy.StaticAlloc{})) }()

	b := newBackend(900, 1, 2, 3)
	tk := New(b, NewRemoteMM(tkmEnd))

	if _, targets, err := tk.Tick(); err != nil {
		t.Fatal(err)
	} else if len(targets) != 3 {
		t.Fatalf("targets = %v", targets)
	}
	for _, vm := range []tmem.VMID{1, 2, 3} {
		if got := b.Target(vm); got != 300 {
			t.Errorf("VM %d target = %d, want 300", vm, got)
		}
	}
	// Second tick: dedup suppresses, empty batch, nothing applied.
	if _, targets, err := tk.Tick(); err != nil {
		t.Fatal(err)
	} else if len(targets) != 0 {
		t.Errorf("second tick targets = %v, want empty (dedup)", targets)
	}
	tkmEnd.Close()
	if err := <-done; err != nil {
		t.Errorf("ServeMM exit: %v", err)
	}
}

func TestListenAndServeMMOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go func() {
		_ = ListenAndServeMM(l, func() PolicyFunc {
			return policy.NewDedup(policy.SmartAlloc{P: 2})
		})
	}()

	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	b := newBackend(1000, 1, 2)
	// Give both VMs failing puts so smart-alloc produces targets.
	pool1 := b.NewPool(1, tmem.Persistent)
	b.SetTarget(1, 0)
	b.Put(tmem.Key{Pool: pool1, Object: 1, Index: 1}, nil) // fails: target 0
	b.SetTarget(1, tmem.Unlimited)

	tk := New(b, NewRemoteMM(c))
	if _, targets, err := tk.Tick(); err != nil {
		t.Fatal(err)
	} else if len(targets) != 2 {
		t.Fatalf("targets = %v", targets)
	}
	sum := b.Target(1) + b.Target(2)
	if sum > 1000 {
		t.Errorf("targets over-allocate: %d", sum)
	}
	c.Close()
}
