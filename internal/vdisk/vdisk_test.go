package vdisk

import (
	"testing"

	"smartmem/internal/sim"
)

func TestDiskBasicLatency(t *testing.T) {
	h := NewHost(3*sim.Millisecond, 2*sim.Millisecond, 0, nil)
	d := NewDisk("vm1", h)
	if got := d.Read(0); got != 3*sim.Millisecond {
		t.Errorf("idle read = %v, want 3ms", got)
	}
	if got := d.Write(sim.Time(10 * sim.Millisecond)); got != 2*sim.Millisecond {
		t.Errorf("idle write = %v, want 2ms", got)
	}
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Errorf("counts = %d reads, %d writes", d.Reads(), d.Writes())
	}
	if d.ReadTime() != 3*sim.Millisecond || d.WriteTime() != 2*sim.Millisecond {
		t.Errorf("times = %v read, %v write", d.ReadTime(), d.WriteTime())
	}
	if d.MaxSojourn() != 3*sim.Millisecond {
		t.Errorf("max sojourn = %v", d.MaxSojourn())
	}
	if d.Name() != "vm1" {
		t.Errorf("name = %q", d.Name())
	}
}

func TestSharedSpindleContention(t *testing.T) {
	h := NewHost(3*sim.Millisecond, 3*sim.Millisecond, 0, nil)
	d1 := NewDisk("vm1", h)
	d2 := NewDisk("vm2", h)
	// Both VMs issue at t=0: the second queues behind the first.
	if got := d1.Read(0); got != 3*sim.Millisecond {
		t.Errorf("first read = %v", got)
	}
	if got := d2.Read(0); got != 6*sim.Millisecond {
		t.Errorf("contended read = %v, want 6ms (3ms queue + 3ms service)", got)
	}
	if h.Ops() != 2 {
		t.Errorf("host ops = %d", h.Ops())
	}
	if h.WaitTime() != 3*sim.Millisecond {
		t.Errorf("host wait = %v, want 3ms", h.WaitTime())
	}
	h.Reset()
	if got := d2.Read(0); got != 3*sim.Millisecond {
		t.Errorf("read after reset = %v", got)
	}
}

func TestJitterBoundsServiceTime(t *testing.T) {
	rng := sim.NewRNG(1)
	h := NewHost(3*sim.Millisecond, 3*sim.Millisecond, 0.25, rng)
	d := NewDisk("vm", h)
	now := sim.Time(0)
	for i := 0; i < 500; i++ {
		// Issue when idle so sojourn == service.
		dur := d.Read(now)
		lo, hi := sim.Duration(2250*sim.Microsecond), sim.Duration(3750*sim.Microsecond)
		if dur < lo || dur > hi {
			t.Fatalf("jittered service %v outside [%v, %v]", dur, lo, hi)
		}
		now += sim.Time(dur) + sim.Time(sim.Second)
	}
}

func TestHostRejectsBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHost(0, sim.Millisecond, 0, nil) },
		func() { NewHost(sim.Millisecond, -1, 0, nil) },
		func() { NewDisk("x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad config did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	h := NewHost(sim.Millisecond, sim.Millisecond, 0, nil)
	d := NewDisk("v", h)
	for i := 0; i < 10; i++ {
		d.Write(sim.Time(i) * sim.Time(sim.Second))
	}
	if h.BusyTime() != 10*sim.Millisecond {
		t.Errorf("busy = %v, want 10ms", h.BusyTime())
	}
}
