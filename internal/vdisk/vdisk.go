// Package vdisk models the virtual disk devices that back guest swap. In
// the paper's testbed every VM's virtual disk image lives on the single
// host hard drive, so swap traffic from one VM delays every other VM —
// that contention is a large part of why tmem starvation hurts so much.
//
// The model: each VM has a Disk front-end; all front-ends share one host
// spindle (a FIFO sim.Server). An I/O costs a per-operation service time
// (optionally jittered) plus whatever backlog the spindle has accumulated.
package vdisk

import (
	"smartmem/internal/sim"
)

// Host is the physical disk shared by all virtual disks on a node.
type Host struct {
	spindle  *sim.Server
	readSvc  sim.Duration
	writeSvc sim.Duration
	jitter   float64
	rng      *sim.RNG
}

// NewHost creates the host disk. readSvc/writeSvc are per-page service
// times; jitterFrac (0..1) adds uniform service-time variation using rng
// (nil rng disables jitter).
func NewHost(readSvc, writeSvc sim.Duration, jitterFrac float64, rng *sim.RNG) *Host {
	if readSvc <= 0 {
		panic("vdisk: non-positive read service time")
	}
	if writeSvc <= 0 {
		panic("vdisk: non-positive write service time")
	}
	if rng == nil {
		jitterFrac = 0
	}
	return &Host{
		spindle:  sim.NewServer("host-disk"),
		readSvc:  readSvc,
		writeSvc: writeSvc,
		jitter:   jitterFrac,
		rng:      rng,
	}
}

func (h *Host) service(base sim.Duration) sim.Duration {
	if h.jitter > 0 {
		return h.rng.Jitter(base, h.jitter)
	}
	return base
}

// Ops returns the total number of I/Os served by the spindle.
func (h *Host) Ops() uint64 { return h.spindle.Ops() }

// BusyTime returns the cumulative host-disk service time.
func (h *Host) BusyTime() sim.Duration { return h.spindle.BusyTime() }

// WaitTime returns the cumulative queueing delay at the spindle.
func (h *Host) WaitTime() sim.Duration { return h.spindle.WaitTime() }

// Reset clears the spindle state between runs.
func (h *Host) Reset() { h.spindle.Reset() }

// Disk is one VM's virtual disk front-end.
type Disk struct {
	name string
	host *Host

	reads      uint64
	writes     uint64
	readTime   sim.Duration
	writeTime  sim.Duration
	maxSojourn sim.Duration
}

// NewDisk attaches a new virtual disk to host.
func NewDisk(name string, host *Host) *Disk {
	if host == nil {
		panic("vdisk: nil host")
	}
	return &Disk{name: name, host: host}
}

// Read performs one page-sized read starting at virtual time now and
// returns its duration (queueing + service).
func (d *Disk) Read(now sim.Time) sim.Duration {
	dur := d.host.spindle.Serve(now, d.host.service(d.host.readSvc))
	d.reads++
	d.readTime += dur
	if dur > d.maxSojourn {
		d.maxSojourn = dur
	}
	return dur
}

// Write performs one page-sized write starting at now and returns its
// duration.
func (d *Disk) Write(now sim.Time) sim.Duration {
	dur := d.host.spindle.Serve(now, d.host.service(d.host.writeSvc))
	d.writes++
	d.writeTime += dur
	if dur > d.maxSojourn {
		d.maxSojourn = dur
	}
	return dur
}

// Name returns the disk's diagnostic name.
func (d *Disk) Name() string { return d.name }

// Reads returns the number of reads issued by this front-end.
func (d *Disk) Reads() uint64 { return d.reads }

// Writes returns the number of writes issued by this front-end.
func (d *Disk) Writes() uint64 { return d.writes }

// ReadTime returns the cumulative read sojourn time.
func (d *Disk) ReadTime() sim.Duration { return d.readTime }

// WriteTime returns the cumulative write sojourn time.
func (d *Disk) WriteTime() sim.Duration { return d.writeTime }

// MaxSojourn returns the worst single I/O latency seen.
func (d *Disk) MaxSojourn() sim.Duration { return d.maxSojourn }
