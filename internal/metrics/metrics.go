// Package metrics provides the small time-series and summary-statistics
// toolkit used to record and report experiment results: per-VM tmem usage
// over time (the paper's Figures 4, 6, 8, 10) and running-time aggregates
// across repetitions (Figures 3, 5, 7, 9 report means and standard
// deviations over five runs).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Point is one time-series sample.
type Point struct {
	T float64 // seconds of virtual time
	V float64
}

// Series is an append-only named time series.
type Series struct {
	name   string
	points []Point
}

// NewSeries creates an empty series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Add appends a sample. Timestamps should be non-decreasing; Add panics on
// regression because that always indicates a harness bug.
func (s *Series) Add(t, v float64) {
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		panic(fmt.Sprintf("metrics: series %q time regression: %v after %v", s.name, t, s.points[n-1].T))
	}
	s.points = append(s.points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return s.points[i] }

// Points returns the backing samples (callers must not mutate).
func (s *Series) Points() []Point { return s.points }

// Last returns the most recent sample (zero Point when empty).
func (s *Series) Last() Point {
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// Max returns the maximum value (0 when empty).
func (s *Series) Max() float64 {
	max := 0.0
	for i, p := range s.points {
		if i == 0 || p.V > max {
			max = p.V
		}
	}
	return max
}

// Mean returns the arithmetic mean of values (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.V
	}
	return sum / float64(len(s.points))
}

// ValueAt returns the value of the latest sample at or before time t
// (step interpolation), or 0 before the first sample.
func (s *Series) ValueAt(t float64) float64 {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.points[i-1].V
}

// Set is an ordered collection of named series.
type Set struct {
	order []string
	byKey map[string]*Series
}

// NewSet creates an empty set.
func NewSet() *Set { return &Set{byKey: make(map[string]*Series)} }

// Get returns the series with the given name, creating it if absent.
func (st *Set) Get(name string) *Series {
	if s, ok := st.byKey[name]; ok {
		return s
	}
	s := NewSeries(name)
	st.byKey[name] = s
	st.order = append(st.order, name)
	return s
}

// Names returns the series names in insertion order.
func (st *Set) Names() []string { return append([]string(nil), st.order...) }

// Has reports whether a series exists.
func (st *Set) Has(name string) bool { _, ok := st.byKey[name]; return ok }

// WriteCSV emits the set in long format: name,t,value — one row per
// sample, series in insertion order.
func (st *Set) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,t_seconds,value"); err != nil {
		return err
	}
	for _, name := range st.order {
		for _, p := range st.byKey[name].points {
			if _, err := fmt.Fprintf(w, "%s,%.3f,%g\n", name, p.T, p.V); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary aggregates repeated scalar measurements (e.g. five repetitions
// of a VM's running time).
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	valuesRecorded []float64
}

// Summarize computes a Summary over values. Std is the sample standard
// deviation (n−1 denominator), matching how the paper reports error bars;
// with fewer than two values Std is 0.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = values[0], values[0]
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range values {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.valuesRecorded = append([]float64(nil), values...)
	return s
}

// Values returns the raw measurements behind the summary.
func (s Summary) Values() []float64 { return s.valuesRecorded }

func (s Summary) String() string {
	return fmt.Sprintf("%.2f±%.2f (n=%d, min %.2f, max %.2f)", s.Mean, s.Std, s.N, s.Min, s.Max)
}

// Speedup returns how much faster "this" summary is than base, as a
// fraction of base (paper convention: "X runs faster than Y by P%" means
// (Y−X)/Y). Positive values mean s is faster (smaller) than base.
func Speedup(s, base Summary) float64 {
	if base.Mean == 0 {
		return 0
	}
	return (base.Mean - s.Mean) / base.Mean
}
