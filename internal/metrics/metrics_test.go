package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("vm1")
	if s.Name() != "vm1" || s.Len() != 0 {
		t.Fatalf("fresh series: %q len %d", s.Name(), s.Len())
	}
	if (s.Last() != Point{}) {
		t.Error("empty Last not zero")
	}
	s.Add(0, 10)
	s.Add(1, 30)
	s.Add(2, 20)
	if s.Len() != 3 || s.At(1).V != 30 {
		t.Errorf("series contents wrong: %+v", s.Points())
	}
	if s.Last() != (Point{T: 2, V: 20}) {
		t.Errorf("Last = %+v", s.Last())
	}
	if s.Max() != 30 {
		t.Errorf("Max = %v", s.Max())
	}
	if s.Mean() != 20 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestSeriesTimeRegressionPanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("time regression did not panic")
		}
	}()
	s.Add(4, 1)
}

func TestSeriesValueAtStepInterpolation(t *testing.T) {
	s := NewSeries("x")
	s.Add(1, 10)
	s.Add(3, 30)
	cases := []struct{ t, want float64 }{
		{0.5, 0}, {1, 10}, {2.9, 10}, {3, 30}, {100, 30},
	}
	for _, c := range cases {
		if got := s.ValueAt(c.t); got != c.want {
			t.Errorf("ValueAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSetOrderAndCSV(t *testing.T) {
	st := NewSet()
	st.Get("b").Add(0, 1)
	st.Get("a").Add(0, 2)
	st.Get("b").Add(1, 3)
	names := st.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("names = %v, want insertion order [b a]", names)
	}
	if !st.Has("a") || st.Has("zz") {
		t.Error("Has misbehaves")
	}
	var sb strings.Builder
	if err := st.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "series,t_seconds,value\nb,0.000,1\nb,1.000,3\na,0.000,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 12, 14})
	if s.N != 3 || s.Mean != 12 || s.Min != 10 || s.Max != 14 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Errorf("std = %v, want 2 (sample std)", s.Std)
	}
	if len(s.Values()) != 3 {
		t.Error("raw values lost")
	}
	if !strings.Contains(s.String(), "12.00±2.00") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{5}); s.Std != 0 || s.Mean != 5 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestSpeedup(t *testing.T) {
	fast := Summarize([]float64{65})
	slow := Summarize([]float64{100})
	if got := Speedup(fast, slow); math.Abs(got-0.35) > 1e-9 {
		t.Errorf("speedup = %v, want 0.35", got)
	}
	if got := Speedup(slow, fast); got >= 0 {
		t.Errorf("inverse speedup = %v, want negative", got)
	}
	if Speedup(fast, Summary{}) != 0 {
		t.Error("zero-base speedup not 0")
	}
}

// Property: mean is within [min, max] and std is non-negative.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		s := Summarize(vals)
		if s.N == 0 {
			return true
		}
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
