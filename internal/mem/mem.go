// Package mem provides the page- and frame-level building blocks shared by
// the tmem store, the guest kernel model and the hypervisor node: byte/page
// conversions, a bitmap physical frame allocator, and page counters.
//
// Sizes are expressed in Pages wherever policy logic is involved, because
// the paper's algorithms (and Xen's tmem) account purely in pages; bytes
// appear only at configuration boundaries.
package mem

import (
	"fmt"
	"math/bits"
)

// Pages is a count of memory pages.
type Pages int64

// Bytes is a byte count.
type Bytes int64

// Common byte sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// DefaultPageSize is the x86 base page size used by Xen tmem.
const DefaultPageSize = 4 * KiB

// PagesIn converts a byte size to whole pages of the given page size,
// rounding up. Panics if pageSize is not a positive power of two.
func PagesIn(size Bytes, pageSize Bytes) Pages {
	checkPageSize(pageSize)
	if size <= 0 {
		return 0
	}
	return Pages((size + pageSize - 1) / pageSize)
}

// BytesIn converts a page count back to bytes.
func BytesIn(p Pages, pageSize Bytes) Bytes {
	checkPageSize(pageSize)
	return Bytes(p) * pageSize
}

func checkPageSize(ps Bytes) {
	if ps <= 0 || ps&(ps-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d is not a positive power of two", ps))
	}
}

// String renders a byte count in a human-friendly unit.
func (b Bytes) String() string {
	switch {
	case b >= GiB && b%GiB == 0:
		return fmt.Sprintf("%dGiB", b/GiB)
	case b >= MiB && b%MiB == 0:
		return fmt.Sprintf("%dMiB", b/MiB)
	case b >= KiB && b%KiB == 0:
		return fmt.Sprintf("%dKiB", b/KiB)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// FrameNo identifies a physical page frame within a FrameAllocator.
type FrameNo int64

// NoFrame is the invalid frame sentinel.
const NoFrame FrameNo = -1

// FrameAllocator hands out physical page frames from a fixed pool using a
// two-level bitmap. It is the fine-grained allocator the hypervisor uses
// for tmem pages ("SmarTmem only requires one single allocator" — §III-B).
//
// The zero value is unusable; construct with NewFrameAllocator. Not
// goroutine-safe: the simulator serializes hypervisor work, and the real
// store wraps it in its own lock.
type FrameAllocator struct {
	total Pages
	free  Pages
	words []uint64 // bit set => frame free
	hint  int      // next word index to scan from
}

// NewFrameAllocator creates an allocator managing total frames, all free.
func NewFrameAllocator(total Pages) *FrameAllocator {
	if total < 0 {
		panic("mem: negative frame count")
	}
	nw := (int(total) + 63) / 64
	a := &FrameAllocator{total: total, free: total, words: make([]uint64, nw)}
	for i := range a.words {
		a.words[i] = ^uint64(0)
	}
	// Mask out the bits past the end so countFree stays exact.
	if rem := int(total) % 64; rem != 0 && nw > 0 {
		a.words[nw-1] = (uint64(1) << uint(rem)) - 1
	}
	if total == 0 {
		a.words = nil
	}
	return a
}

// Total returns the number of frames managed.
func (a *FrameAllocator) Total() Pages { return a.total }

// Free returns the number of unallocated frames.
func (a *FrameAllocator) Free() Pages { return a.free }

// Used returns the number of allocated frames.
func (a *FrameAllocator) Used() Pages { return a.total - a.free }

// Alloc grabs a free frame, or returns NoFrame when the pool is exhausted.
func (a *FrameAllocator) Alloc() FrameNo {
	if a.free == 0 {
		return NoFrame
	}
	n := len(a.words)
	for off := 0; off < n; off++ {
		i := a.hint + off
		if i >= n {
			i -= n
		}
		w := a.words[i]
		if w == 0 {
			continue
		}
		bit := bits.TrailingZeros64(w)
		a.words[i] &^= uint64(1) << uint(bit)
		a.hint = i
		a.free--
		return FrameNo(i*64 + bit)
	}
	// free count said there was a frame; the bitmap disagrees.
	panic("mem: frame allocator bitmap corrupted")
}

// MustAlloc is Alloc but panics on exhaustion (for tests and setup code).
func (a *FrameAllocator) MustAlloc() FrameNo {
	f := a.Alloc()
	if f == NoFrame {
		panic("mem: out of frames")
	}
	return f
}

// IsFree reports whether frame f is currently free.
func (a *FrameAllocator) IsFree(f FrameNo) bool {
	if f < 0 || f >= FrameNo(a.total) {
		return false
	}
	return a.words[f/64]&(uint64(1)<<uint(f%64)) != 0
}

// Release returns frame f to the pool. Double-free and out-of-range frames
// are reported as errors because they indicate accounting bugs upstream.
func (a *FrameAllocator) Release(f FrameNo) error {
	if f < 0 || f >= FrameNo(a.total) {
		return fmt.Errorf("mem: release of out-of-range frame %d (total %d)", f, a.total)
	}
	w, b := f/64, uint(f%64)
	if a.words[w]&(uint64(1)<<b) != 0 {
		return fmt.Errorf("mem: double free of frame %d", f)
	}
	a.words[w] |= uint64(1) << b
	a.free++
	return nil
}

// countFree recomputes the free count from the bitmap (test hook).
func (a *FrameAllocator) countFree() Pages {
	var n int
	for _, w := range a.words {
		n += bits.OnesCount64(w)
	}
	return Pages(n)
}

// CheckInvariants verifies internal consistency; returns an error if the
// cached free count disagrees with the bitmap.
func (a *FrameAllocator) CheckInvariants() error {
	if got := a.countFree(); got != a.free {
		return fmt.Errorf("mem: free count %d != bitmap population %d", a.free, got)
	}
	if a.free < 0 || a.free > a.total {
		return fmt.Errorf("mem: free count %d out of range [0,%d]", a.free, a.total)
	}
	return nil
}
