package mem

import (
	"testing"
	"testing/quick"
)

func TestPagesInRoundsUp(t *testing.T) {
	cases := []struct {
		size Bytes
		ps   Bytes
		want Pages
	}{
		{0, 4 * KiB, 0},
		{-5, 4 * KiB, 0},
		{1, 4 * KiB, 1},
		{4 * KiB, 4 * KiB, 1},
		{4*KiB + 1, 4 * KiB, 2},
		{1 * GiB, 4 * KiB, 262144},
		{384 * MiB, 64 * KiB, 6144},
		{1 * GiB, 64 * KiB, 16384},
	}
	for _, c := range cases {
		if got := PagesIn(c.size, c.ps); got != c.want {
			t.Errorf("PagesIn(%d,%d) = %d, want %d", c.size, c.ps, got, c.want)
		}
	}
}

func TestBytesInRoundTrip(t *testing.T) {
	f := func(pRaw uint16, shift uint8) bool {
		p := Pages(pRaw)
		ps := Bytes(1) << (10 + shift%7) // 1KiB..64KiB
		return PagesIn(BytesIn(p, ps), ps) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagesInRejectsBadPageSize(t *testing.T) {
	for _, ps := range []Bytes{0, -4096, 3000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PagesIn with page size %d did not panic", ps)
				}
			}()
			PagesIn(MiB, ps)
		}()
	}
}

func TestBytesString(t *testing.T) {
	cases := map[Bytes]string{
		2 * GiB:     "2GiB",
		384 * MiB:   "384MiB",
		64 * KiB:    "64KiB",
		1000:        "1000B",
		GiB + 5*MiB: "1029MiB",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(b), got, want)
		}
	}
}

func TestFrameAllocatorBasic(t *testing.T) {
	a := NewFrameAllocator(10)
	if a.Total() != 10 || a.Free() != 10 || a.Used() != 0 {
		t.Fatalf("fresh allocator: total=%d free=%d used=%d", a.Total(), a.Free(), a.Used())
	}
	seen := map[FrameNo]bool{}
	for i := 0; i < 10; i++ {
		f := a.Alloc()
		if f == NoFrame {
			t.Fatalf("Alloc %d returned NoFrame with free=%d", i, a.Free())
		}
		if seen[f] {
			t.Fatalf("Alloc returned duplicate frame %d", f)
		}
		seen[f] = true
	}
	if a.Free() != 0 || a.Used() != 10 {
		t.Errorf("after exhaustion: free=%d used=%d", a.Free(), a.Used())
	}
	if f := a.Alloc(); f != NoFrame {
		t.Errorf("Alloc on exhausted pool = %d, want NoFrame", f)
	}
}

func TestFrameAllocatorReleaseRecycles(t *testing.T) {
	a := NewFrameAllocator(4)
	frames := make([]FrameNo, 4)
	for i := range frames {
		frames[i] = a.MustAlloc()
	}
	if err := a.Release(frames[2]); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if a.Free() != 1 {
		t.Errorf("free = %d, want 1", a.Free())
	}
	if !a.IsFree(frames[2]) {
		t.Error("released frame not marked free")
	}
	got := a.Alloc()
	if got != frames[2] {
		t.Errorf("recycled frame = %d, want %d", got, frames[2])
	}
}

func TestFrameAllocatorErrors(t *testing.T) {
	a := NewFrameAllocator(4)
	f := a.MustAlloc()
	if err := a.Release(f); err != nil {
		t.Fatalf("first release: %v", err)
	}
	if err := a.Release(f); err == nil {
		t.Error("double free not detected")
	}
	if err := a.Release(FrameNo(99)); err == nil {
		t.Error("out-of-range release not detected")
	}
	if err := a.Release(NoFrame); err == nil {
		t.Error("NoFrame release not detected")
	}
	if a.IsFree(FrameNo(99)) {
		t.Error("IsFree(out of range) = true")
	}
}

func TestFrameAllocatorZeroAndUnaligned(t *testing.T) {
	z := NewFrameAllocator(0)
	if z.Alloc() != NoFrame {
		t.Error("zero-size allocator allocated a frame")
	}
	// 70 frames does not fill whole 64-bit words; ensure the tail mask works.
	a := NewFrameAllocator(70)
	n := 0
	for a.Alloc() != NoFrame {
		n++
		if n > 70 {
			t.Fatal("allocator produced more frames than it manages")
		}
	}
	if n != 70 {
		t.Errorf("allocated %d frames, want 70", n)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFrameAllocatorMustAllocPanics(t *testing.T) {
	a := NewFrameAllocator(1)
	a.MustAlloc()
	defer func() {
		if recover() == nil {
			t.Error("MustAlloc on empty pool did not panic")
		}
	}()
	a.MustAlloc()
}

// Property: after any sequence of allocs and releases, free count matches
// the bitmap, never exceeds total, and alloc-after-release succeeds.
func TestFrameAllocatorInvariantProperty(t *testing.T) {
	f := func(seedLow uint32, opsRaw []byte) bool {
		a := NewFrameAllocator(257) // odd size to stress the tail word
		var held []FrameNo
		for _, op := range opsRaw {
			if op%2 == 0 || len(held) == 0 {
				if fr := a.Alloc(); fr != NoFrame {
					held = append(held, fr)
				}
			} else {
				i := int(op) % len(held)
				if err := a.Release(held[i]); err != nil {
					return false
				}
				held = append(held[:i], held[i+1:]...)
			}
			if a.CheckInvariants() != nil {
				return false
			}
		}
		return a.Used() == Pages(len(held))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFrameAllocAlloc(b *testing.B) {
	a := NewFrameAllocator(Pages(b.N) + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Alloc()
	}
}

func BenchmarkFrameAllocCycle(b *testing.B) {
	a := NewFrameAllocator(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := a.MustAlloc()
		if err := a.Release(f); err != nil {
			b.Fatal(err)
		}
	}
}
