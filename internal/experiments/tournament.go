// Tournament mode: sweep policies × scenarios × seeds on the parallel
// engine and rank the policies in a deterministic league table — the
// ROADMAP's "policy-tournament" evaluation harness. The paper's claim is
// that smart tmem allocation beats greedy across workload mixes; a
// tournament is that claim run at scale, with disk I/O avoided as the
// score (the paper's figures all reduce to "how often did a refault reach
// the disk").
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"smartmem/internal/report"
)

// LeagueEntry is one policy's row of a league table: its disk-traffic
// spread and pooled tmem hit rate over every aggregated (scenario, seed)
// cell, ranked best-first.
type LeagueEntry struct {
	// Rank is the 1-based position after sorting (1 = best). Ranking is by
	// ascending mean disk ops, then descending hit rate, then policy
	// submission order — fully deterministic.
	Rank int `json:"rank"`
	// Policy is the policy spec ("smart-alloc:P=2").
	Policy string `json:"policy"`
	// Cells counts the (scenario, seed) runs aggregated into this row.
	Cells int `json:"cells"`
	// MeanDiskOps / MinDiskOps / MaxDiskOps summarize total host-disk
	// operations per cell — the paper's figure of merit, lower is better.
	MeanDiskOps float64 `json:"mean_disk_ops"`
	MinDiskOps  uint64  `json:"min_disk_ops"`
	MaxDiskOps  uint64  `json:"max_disk_ops"`
	// HitRate is the pooled tmem hit rate over all cells' VMs:
	// Σ hits / Σ (hits + misses) of every guest's refault traffic.
	// 0 for the no-tmem baseline.
	HitRate float64 `json:"hit_rate"`
	// MeanVirtSeconds is the mean virtual completion time per cell.
	MeanVirtSeconds float64 `json:"mean_virt_seconds"`
}

// ScenarioLeague is the league restricted to one scenario's cells.
type ScenarioLeague struct {
	Scenario string        `json:"scenario"`
	Entries  []LeagueEntry `json:"entries"`
}

// LeagueTable is a tournament's full outcome. Identical inputs produce a
// byte-identical table (under WriteLeagueJSON/WriteLeagueCSV) regardless of
// parallelism, scheduler mode, or cache state — the engine merges by index
// and every aggregation below walks slices in deterministic order.
type LeagueTable struct {
	Scenarios []string `json:"scenarios"`
	Policies  []string `json:"policies"`
	Seeds     []uint64 `json:"seeds"`
	// Overall ranks each policy over every scenario × seed cell.
	Overall []LeagueEntry `json:"overall"`
	// PerScenario breaks the ranking down per scenario, in scenario order.
	PerScenario []ScenarioLeague `json:"per_scenario"`
}

// Winner returns the top-ranked policy spec ("" for an empty table).
func (t *LeagueTable) Winner() string {
	if len(t.Overall) == 0 {
		return ""
	}
	return t.Overall[0].Policy
}

// RunTournament sweeps every scenario × policy × seed cell on the engine
// and aggregates the league table. A nil policies slice selects the union
// of the scenarios' own policy lists (first-seen order); nil seeds selects
// DefaultSeeds. Use Options.Cache to memoize cells across tournaments and
// Options.Parallelism/Scheduler to control the pool.
func RunTournament(scenarios []*Scenario, policies []string, seeds []uint64, opt Options) (*LeagueTable, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("experiments: tournament with no scenarios")
	}
	if policies == nil {
		policies = unionPolicies(scenarios)
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("experiments: tournament with no policies")
	}
	if seeds == nil {
		seeds = DefaultSeeds
	}

	results, err := RunMatrix(scenarios, policies, seeds, opt)
	if err != nil {
		return nil, err
	}

	t := &LeagueTable{
		Policies: append([]string(nil), policies...),
		Seeds:    append([]uint64(nil), seeds...),
	}
	for _, s := range scenarios {
		t.Scenarios = append(t.Scenarios, s.Slug)
	}
	t.Overall = rankEntries(results, policies, func(JobResult) bool { return true })
	for _, s := range scenarios {
		slug := s.Slug
		t.PerScenario = append(t.PerScenario, ScenarioLeague{
			Scenario: slug,
			Entries:  rankEntries(results, policies, func(jr JobResult) bool { return jr.Job.Scenario.Slug == slug }),
		})
	}
	return t, nil
}

// unionPolicies merges the scenarios' policy lists in first-seen order.
func unionPolicies(scenarios []*Scenario) []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range scenarios {
		for _, pol := range s.Policies {
			if !seen[pol] {
				seen[pol] = true
				out = append(out, pol)
			}
		}
	}
	return out
}

// rankEntries aggregates the kept cells per policy and ranks them.
func rankEntries(results []JobResult, policies []string, keep func(JobResult) bool) []LeagueEntry {
	entries := make([]LeagueEntry, 0, len(policies))
	for _, pol := range policies {
		var (
			cells        int
			sumOps       float64
			minOps       uint64
			maxOps       uint64
			hits, misses uint64
			sumVirt      float64
		)
		for _, jr := range results {
			if jr.Job.PolicySpec != pol || jr.Result == nil || jr.Err != nil || !keep(jr) {
				continue
			}
			r := jr.Result
			if cells == 0 || r.DiskOps < minOps {
				minOps = r.DiskOps
			}
			if cells == 0 || r.DiskOps > maxOps {
				maxOps = r.DiskOps
			}
			sumOps += float64(r.DiskOps)
			sumVirt += r.EndTime.Seconds()
			for _, vm := range r.VMs {
				hits += vm.Kernel.TmemHits
				misses += vm.Kernel.TmemMisses
			}
			cells++
		}
		if cells == 0 {
			continue
		}
		e := LeagueEntry{
			Policy:          pol,
			Cells:           cells,
			MeanDiskOps:     sumOps / float64(cells),
			MinDiskOps:      minOps,
			MaxDiskOps:      maxOps,
			MeanVirtSeconds: sumVirt / float64(cells),
		}
		if hits+misses > 0 {
			e.HitRate = float64(hits) / float64(hits+misses)
		}
		entries = append(entries, e)
	}
	// Stable sort: ties (identical mean AND hit rate) keep policy
	// submission order, so the ranking is deterministic.
	sortLeague(entries)
	for i := range entries {
		entries[i].Rank = i + 1
	}
	return entries
}

func sortLeague(entries []LeagueEntry) {
	// Insertion sort keeps this dependency-free and stable; league tables
	// have a handful of rows.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && leagueLess(entries[j], entries[j-1]); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

func leagueLess(a, b LeagueEntry) bool {
	if a.MeanDiskOps != b.MeanDiskOps {
		return a.MeanDiskOps < b.MeanDiskOps
	}
	return a.HitRate > b.HitRate
}

// LeagueReport renders the overall standings as a text table.
func LeagueReport(t *LeagueTable) *report.Table {
	tbl := &report.Table{
		Title: fmt.Sprintf("Policy league — %d scenarios × %d policies × %d seeds",
			len(t.Scenarios), len(t.Policies), len(t.Seeds)),
		Headers: []string{"rank", "policy", "cells", "disk ops (mean)", "min", "max", "hit rate", "virt s (mean)"},
	}
	for _, e := range t.Overall {
		tbl.AddRow(leagueCells(e)...)
	}
	return tbl
}

// ScenarioLeagueReport renders one scenario's standings.
func ScenarioLeagueReport(sl ScenarioLeague) *report.Table {
	tbl := &report.Table{
		Title:   fmt.Sprintf("Scenario %s", sl.Scenario),
		Headers: []string{"rank", "policy", "cells", "disk ops (mean)", "min", "max", "hit rate", "virt s (mean)"},
	}
	for _, e := range sl.Entries {
		tbl.AddRow(leagueCells(e)...)
	}
	return tbl
}

func leagueCells(e LeagueEntry) []string {
	return []string{
		fmt.Sprintf("%d", e.Rank),
		e.Policy,
		fmt.Sprintf("%d", e.Cells),
		fmt.Sprintf("%.1f", e.MeanDiskOps),
		fmt.Sprintf("%d", e.MinDiskOps),
		fmt.Sprintf("%d", e.MaxDiskOps),
		fmt.Sprintf("%.3f", e.HitRate),
		fmt.Sprintf("%.1f", e.MeanVirtSeconds),
	}
}

// WriteLeagueJSON writes the league table as one indented JSON document.
// The encoding is deterministic (struct field order, no maps), so equal
// tables serialize byte-identically — the property the warm-cache tests
// and `make sweep-smoke` compare on.
func WriteLeagueJSON(w io.Writer, t *LeagueTable) error {
	doc := struct {
		Schema string       `json:"schema"`
		League *LeagueTable `json:"league"`
	}{Schema: "smartmem/league@1", League: t}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteLeagueCSV writes the league as CSV: the overall block first
// (scenario column "overall"), then each per-scenario block.
func WriteLeagueCSV(w io.Writer, t *LeagueTable) error {
	if _, err := fmt.Fprintln(w, "scenario,rank,policy,cells,mean_disk_ops,min_disk_ops,max_disk_ops,hit_rate,mean_virt_seconds"); err != nil {
		return err
	}
	block := func(scope string, entries []LeagueEntry) error {
		for _, e := range entries {
			row := []string{
				scope,
				fmt.Sprintf("%d", e.Rank),
				e.Policy,
				fmt.Sprintf("%d", e.Cells),
				fmt.Sprintf("%.1f", e.MeanDiskOps),
				fmt.Sprintf("%d", e.MinDiskOps),
				fmt.Sprintf("%d", e.MaxDiskOps),
				fmt.Sprintf("%.4f", e.HitRate),
				fmt.Sprintf("%.1f", e.MeanVirtSeconds),
			}
			if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
				return err
			}
		}
		return nil
	}
	if err := block("overall", t.Overall); err != nil {
		return err
	}
	for _, sl := range t.PerScenario {
		if err := block(sl.Scenario, sl.Entries); err != nil {
			return err
		}
	}
	return nil
}
