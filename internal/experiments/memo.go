// Run memoization: a content-addressed cache of completed sweep cells.
// The simulator is deterministic — a core.Result is a pure function of the
// job's Fingerprint — so re-runs, figure regeneration, CI smokes and
// widened sweeps can return cached cells instantly and byte-identically
// instead of re-simulating them. The cache reuses the durable.BlobStore
// shape: durable.NewDirStore for an on-disk cache shared across processes,
// durable.NewMemStore for tests.
package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync/atomic"

	"smartmem/internal/core"
	"smartmem/internal/durable"
	"smartmem/internal/guest"
	"smartmem/internal/mem"
	"smartmem/internal/metrics"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
)

// memoMagic heads every cache entry.
const memoMagic = "SMMO"

// memoPrefix namespaces cache entries inside the blob store, so a memo
// cache can share a store with other blobs (List("memo/") finds them all).
const memoPrefix = "memo/"

var memoCRC = crc32.MakeTable(crc32.Castagnoli)

// Memo is a content-addressed result cache over a BlobStore. Entries are
// keyed "memo/<fingerprint-hex>" and carry a checksummed self-describing
// envelope; any validation failure (torn write, bit rot, stale format
// version, key collision) reads as a miss and the cell is silently
// recomputed — a corrupt cache can cost time, never correctness.
//
// Memo is safe for concurrent use by all engine workers.
type Memo struct {
	store durable.BlobStore

	hits      atomic.Uint64
	misses    atomic.Uint64
	writes    atomic.Uint64
	corrupt   atomic.Uint64
	writeErrs atomic.Uint64
}

// MemoStats snapshots cache effectiveness counters.
type MemoStats struct {
	Hits      uint64 `json:"hits"`       // lookups served from cache
	Misses    uint64 `json:"misses"`     // lookups that had to simulate
	Writes    uint64 `json:"writes"`     // entries stored
	Corrupt   uint64 `json:"corrupt"`    // entries present but invalid (recomputed)
	WriteErrs uint64 `json:"write_errs"` // failed best-effort stores
}

// NewMemo wraps a blob store as a run cache.
func NewMemo(store durable.BlobStore) *Memo {
	return &Memo{store: store}
}

// OpenDirMemo opens (creating if needed) an on-disk run cache rooted at
// dir. Concurrent processes may share it: entry writes are atomic
// (temp file + rename) and entries are immutable once written.
func OpenDirMemo(dir string) (*Memo, error) {
	st, err := durable.NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	return NewMemo(st), nil
}

// Stats returns a snapshot of the cache counters.
func (m *Memo) Stats() MemoStats {
	return MemoStats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Writes:    m.writes.Load(),
		Corrupt:   m.corrupt.Load(),
		WriteErrs: m.writeErrs.Load(),
	}
}

// Len returns the number of entries currently stored.
func (m *Memo) Len() (int, error) {
	keys, err := m.store.List(memoPrefix)
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

func memoKey(fp Fingerprint) string { return memoPrefix + fp.String() }

// Get returns the cached result for a fingerprint, or (nil, false) on any
// miss — absent, wrong version, or corrupt. The returned Result is freshly
// decoded on every call; callers own it and may mutate it.
func (m *Memo) Get(fp Fingerprint) (*core.Result, bool) {
	blob, err := m.store.Get(memoKey(fp))
	if err != nil {
		m.misses.Add(1)
		return nil, false
	}
	res, err := decodeMemoEntry(fp, blob)
	if err != nil {
		// Present but unusable: count it as corruption (checksum, torn
		// write, stale version ...) and fall through to a recompute that
		// will overwrite the entry.
		m.corrupt.Add(1)
		m.misses.Add(1)
		return nil, false
	}
	m.hits.Add(1)
	return res, true
}

// Put stores a result under its fingerprint, replacing any existing entry.
func (m *Memo) Put(fp Fingerprint, res *core.Result) error {
	var scratch []byte
	return m.put(fp, res, &scratch)
}

// put is Put with a caller-recycled encode buffer (the engine passes its
// per-worker scratch so steady-state sweeps hold allocations flat).
func (m *Memo) put(fp Fingerprint, res *core.Result, scratch *[]byte) error {
	blob := encodeMemoEntry(fp, res, (*scratch)[:0])
	*scratch = blob
	if err := m.store.Put(memoKey(fp), blob); err != nil {
		m.writeErrs.Add(1)
		return fmt.Errorf("experiments: memo store %s: %w", fp, err)
	}
	m.writes.Add(1)
	return nil
}

// --- entry envelope ---
//
//	"SMMO" | u32 version | fingerprint[32] | u32 crc32c(payload) |
//	u64 len(payload) | payload (encoded core.Result)
//
// The embedded fingerprint guards against blobs filed under the wrong key;
// the CRC guards payload integrity; the version gates format evolution.

func encodeMemoEntry(fp Fingerprint, res *core.Result, dst []byte) []byte {
	payloadAt := len(dst) + len(memoMagic) + 4 + len(fp) + 4 + 8
	dst = append(dst, memoMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, memoFormatVersion)
	dst = append(dst, fp[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc backfilled below
	dst = binary.LittleEndian.AppendUint64(dst, 0) // len backfilled below
	dst = encodeResult(dst, res)
	payload := dst[payloadAt:]
	binary.LittleEndian.PutUint32(dst[payloadAt-12:], crc32.Checksum(payload, memoCRC))
	binary.LittleEndian.PutUint64(dst[payloadAt-8:], uint64(len(payload)))
	return dst
}

func decodeMemoEntry(fp Fingerprint, blob []byte) (*core.Result, error) {
	head := len(memoMagic) + 4 + len(fp) + 4 + 8
	if len(blob) < head {
		return nil, fmt.Errorf("experiments: memo entry truncated (%d bytes)", len(blob))
	}
	if string(blob[:len(memoMagic)]) != memoMagic {
		return nil, fmt.Errorf("experiments: memo entry bad magic")
	}
	off := len(memoMagic)
	if v := binary.LittleEndian.Uint32(blob[off:]); v != memoFormatVersion {
		return nil, fmt.Errorf("experiments: memo entry format v%d, want v%d", v, memoFormatVersion)
	}
	off += 4
	var stored Fingerprint
	copy(stored[:], blob[off:])
	if stored != fp {
		return nil, fmt.Errorf("experiments: memo entry fingerprint mismatch")
	}
	off += len(fp)
	crc := binary.LittleEndian.Uint32(blob[off:])
	off += 4
	plen := binary.LittleEndian.Uint64(blob[off:])
	off += 8
	payload := blob[off:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("experiments: memo entry payload length %d, want %d", len(payload), plen)
	}
	if crc32.Checksum(payload, memoCRC) != crc {
		return nil, fmt.Errorf("experiments: memo entry checksum mismatch")
	}
	d := &memoDec{b: payload}
	res := decodeResult(d)
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("experiments: memo entry has %d trailing bytes", len(d.b))
	}
	return res, nil
}

// --- core.Result codec ---
//
// Hand-rolled little-endian encoding: encoding/gob cannot see the
// unexported fields of metrics.Set/Series, and a hand encoding is both
// deterministic (stable byte output for identical results) and allocation-
// friendly on the hot sweep path. The field walks below must cover every
// field of core.Result and its component structs; TestMemoCodecCoversResult
// pins the struct shapes with reflection so adding a field to core.Result
// (or guest.Stats, tmem.OpCounts, ...) fails tests until the codec and
// memoFormatVersion are updated together.

func encU64(b []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(b, v) }
func encI64(b []byte, v int64) []byte   { return encU64(b, uint64(v)) }
func encF64(b []byte, v float64) []byte { return encU64(b, math.Float64bits(v)) }
func encBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func encStr(b []byte, s string) []byte {
	b = encU64(b, uint64(len(s)))
	return append(b, s...)
}

func encodeResult(b []byte, r *core.Result) []byte {
	b = encStr(b, r.PolicyName)
	b = encU64(b, r.Seed)
	b = encI64(b, int64(r.EndTime))
	b = encBool(b, r.HitLimit)
	b = encBool(b, r.Cancelled)

	b = encU64(b, uint64(len(r.Runs)))
	for _, run := range r.Runs {
		b = encStr(b, run.VM)
		b = encStr(b, run.Label)
		b = encI64(b, int64(run.Start))
		b = encI64(b, int64(run.End))
	}

	b = encBool(b, r.Series != nil)
	if r.Series != nil {
		names := r.Series.Names()
		b = encU64(b, uint64(len(names)))
		for _, name := range names {
			s := r.Series.Get(name)
			b = encStr(b, name)
			pts := s.Points()
			b = encU64(b, uint64(len(pts)))
			for _, p := range pts {
				b = encF64(b, p.T)
				b = encF64(b, p.V)
			}
		}
	}

	b = encU64(b, uint64(len(r.VMs)))
	for _, vm := range r.VMs {
		b = encStr(b, vm.Name)
		b = encI64(b, int64(vm.ID))
		b = encGuestStats(b, vm.Kernel)
		b = encOpCounts(b, vm.Tmem)
	}

	b = encU64(b, uint64(len(r.Nodes)))
	for _, n := range r.Nodes {
		b = encStr(b, n.Name)
		b = encStr(b, n.PolicyName)
		b = encU64(b, n.SampleTicks)
		b = encU64(b, n.MMBatchesSent)
		b = encU64(b, n.DiskOps)
		b = encI64(b, int64(n.DiskBusy))
		b = encBool(b, n.Remote != nil)
		if n.Remote != nil {
			b = encTierStats(b, *n.Remote)
		}
		b = encBool(b, n.Compressed != nil)
		if n.Compressed != nil {
			b = encCompressedStats(b, *n.Compressed)
		}
		b = encBool(b, n.Durable != nil)
		if n.Durable != nil {
			b = encDurableSummary(b, *n.Durable)
		}
	}

	b = encU64(b, r.MMBatchesSent)
	b = encU64(b, r.SampleTicks)
	b = encU64(b, r.DiskOps)
	b = encI64(b, int64(r.DiskBusy))
	b = encBool(b, r.Compressed != nil)
	if r.Compressed != nil {
		b = encCompressedStats(b, *r.Compressed)
	}
	b = encBool(b, r.Durable != nil)
	if r.Durable != nil {
		b = encDurableSummary(b, *r.Durable)
	}
	return b
}

func encGuestStats(b []byte, s guest.Stats) []byte {
	b = encU64(b, s.Touches)
	b = encU64(b, s.MinorFaults)
	b = encU64(b, s.TmemHits)
	b = encU64(b, s.TmemMisses)
	b = encU64(b, s.DiskReads)
	b = encU64(b, s.DiskWrites)
	b = encU64(b, s.Evictions)
	b = encU64(b, s.CleanEvicts)
	b = encU64(b, s.PutsOK)
	b = encU64(b, s.PutsFailed)
	b = encU64(b, s.TmemFlushes)
	b = encU64(b, s.FreedPages)
	return encI64(b, int64(s.WaitedOnDisk))
}

func encOpCounts(b []byte, c tmem.OpCounts) []byte {
	b = encI64(b, int64(c.ID))
	b = encU64(b, c.PutsTotal)
	b = encU64(b, c.PutsSucc)
	b = encU64(b, c.GetsTotal)
	b = encU64(b, c.GetsHit)
	b = encU64(b, c.Flushes)
	return encU64(b, c.EphEvicted)
}

func encTierStats(b []byte, s tmem.TierStats) []byte {
	b = encU64(b, s.Puts)
	b = encU64(b, s.PutsOK)
	b = encU64(b, s.Gets)
	b = encU64(b, s.GetsHit)
	b = encU64(b, s.PageFlushes)
	b = encU64(b, s.ObjectFlushes)
	return encU64(b, s.Errors)
}

func encCompressedStats(b []byte, s tmem.CompressedTierStats) []byte {
	b = encTierStats(b, s.TierStats)
	b = encI64(b, int64(s.PagesStored))
	b = encI64(b, s.UniqueBlobs)
	b = encI64(b, int64(s.RawBytes))
	b = encI64(b, int64(s.StoredBytes))
	b = encU64(b, s.DedupHits)
	b = encU64(b, s.RejectedFull)
	b = encU64(b, s.DecodeErrors)
	b = encU64(b, s.CompressNs)
	return encU64(b, s.DecompressNs)
}

func encDurableSummary(b []byte, s durable.Summary) []byte {
	b = encTierStats(b, s.Tier)
	b = encU64(b, s.Log.Appends)
	b = encU64(b, s.Log.AppendedBytes)
	b = encU64(b, s.Log.Fsyncs)
	b = encU64(b, s.Log.Segments)
	b = encU64(b, s.Log.Compactions)
	b = encU64(b, s.Log.SnapshotPages)
	b = encU64(b, s.Log.Pools)
	b = encU64(b, s.Log.PagesLive)
	b = encU64(b, s.Log.BytesLive)
	return encU64(b, s.Log.Errors)
}

// memoDec is a sticky-error little-endian reader over a payload slice.
type memoDec struct {
	b   []byte
	err error
}

func (d *memoDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("experiments: memo entry truncated in %s", what)
	}
}

func (d *memoDec) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *memoDec) i64(what string) int64   { return int64(d.u64(what)) }
func (d *memoDec) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *memoDec) bool(what string) bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail(what)
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

func (d *memoDec) str(what string) string {
	n := d.u64(what)
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail(what)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads a length prefix and sanity-bounds it against the remaining
// payload (each element costs at least min bytes), so corrupt lengths fail
// cleanly instead of attempting huge allocations.
func (d *memoDec) count(what string, min int) int {
	n := d.u64(what)
	if d.err != nil {
		return 0
	}
	if min > 0 && n > uint64(len(d.b)/min) {
		if d.err == nil {
			d.err = fmt.Errorf("experiments: memo entry implausible %s count %d", what, n)
		}
		return 0
	}
	return int(n)
}

func decodeResult(d *memoDec) *core.Result {
	r := &core.Result{}
	r.PolicyName = d.str("policy")
	r.Seed = d.u64("seed")
	r.EndTime = sim.Time(d.i64("end-time"))
	r.HitLimit = d.bool("hit-limit")
	r.Cancelled = d.bool("cancelled")

	if n := d.count("runs", 4*8); n > 0 {
		r.Runs = make([]core.RunRecord, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			r.Runs = append(r.Runs, core.RunRecord{
				VM:    d.str("run.vm"),
				Label: d.str("run.label"),
				Start: sim.Time(d.i64("run.start")),
				End:   sim.Time(d.i64("run.end")),
			})
		}
	}

	if d.bool("series?") {
		// Rebuild through the Set/Series API; points were recorded with
		// non-decreasing timestamps, so re-adding in stored order is safe.
		r.Series = metrics.NewSet()
		n := d.count("series", 16)
		for i := 0; i < n && d.err == nil; i++ {
			name := d.str("series.name")
			s := r.Series.Get(name)
			pts := d.count("series.points", 16)
			for p := 0; p < pts && d.err == nil; p++ {
				t := d.f64("series.t")
				v := d.f64("series.v")
				if d.err == nil {
					s.Add(t, v)
				}
			}
		}
	}

	if n := d.count("vms", 8); n > 0 {
		r.VMs = make([]core.VMResult, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			vm := core.VMResult{Name: d.str("vm.name"), ID: tmem.VMID(d.i64("vm.id"))}
			vm.Kernel = decGuestStats(d)
			vm.Tmem = decOpCounts(d)
			r.VMs = append(r.VMs, vm)
		}
	}

	if n := d.count("nodes", 8); n > 0 {
		r.Nodes = make([]core.NodeResult, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			node := core.NodeResult{
				Name:          d.str("node.name"),
				PolicyName:    d.str("node.policy"),
				SampleTicks:   d.u64("node.ticks"),
				MMBatchesSent: d.u64("node.batches"),
				DiskOps:       d.u64("node.disk-ops"),
				DiskBusy:      sim.Duration(d.i64("node.disk-busy")),
			}
			if d.bool("node.remote?") {
				ts := decTierStats(d)
				node.Remote = &ts
			}
			if d.bool("node.compressed?") {
				cs := decCompressedStats(d)
				node.Compressed = &cs
			}
			if d.bool("node.durable?") {
				ds := decDurableSummary(d)
				node.Durable = &ds
			}
			r.Nodes = append(r.Nodes, node)
		}
	}

	r.MMBatchesSent = d.u64("batches")
	r.SampleTicks = d.u64("ticks")
	r.DiskOps = d.u64("disk-ops")
	r.DiskBusy = sim.Duration(d.i64("disk-busy"))
	if d.bool("compressed?") {
		cs := decCompressedStats(d)
		r.Compressed = &cs
	}
	if d.bool("durable?") {
		ds := decDurableSummary(d)
		r.Durable = &ds
	}
	return r
}

func decGuestStats(d *memoDec) guest.Stats {
	return guest.Stats{
		Touches:      d.u64("k.touches"),
		MinorFaults:  d.u64("k.minor"),
		TmemHits:     d.u64("k.hits"),
		TmemMisses:   d.u64("k.misses"),
		DiskReads:    d.u64("k.reads"),
		DiskWrites:   d.u64("k.writes"),
		Evictions:    d.u64("k.evictions"),
		CleanEvicts:  d.u64("k.clean"),
		PutsOK:       d.u64("k.puts-ok"),
		PutsFailed:   d.u64("k.puts-failed"),
		TmemFlushes:  d.u64("k.flushes"),
		FreedPages:   d.u64("k.freed"),
		WaitedOnDisk: sim.Duration(d.i64("k.waited")),
	}
}

func decOpCounts(d *memoDec) tmem.OpCounts {
	return tmem.OpCounts{
		ID:         tmem.VMID(d.i64("t.id")),
		PutsTotal:  d.u64("t.puts"),
		PutsSucc:   d.u64("t.puts-succ"),
		GetsTotal:  d.u64("t.gets"),
		GetsHit:    d.u64("t.gets-hit"),
		Flushes:    d.u64("t.flushes"),
		EphEvicted: d.u64("t.eph-evicted"),
	}
}

func decTierStats(d *memoDec) tmem.TierStats {
	return tmem.TierStats{
		Puts:          d.u64("tier.puts"),
		PutsOK:        d.u64("tier.puts-ok"),
		Gets:          d.u64("tier.gets"),
		GetsHit:       d.u64("tier.gets-hit"),
		PageFlushes:   d.u64("tier.page-flushes"),
		ObjectFlushes: d.u64("tier.object-flushes"),
		Errors:        d.u64("tier.errors"),
	}
}

func decCompressedStats(d *memoDec) tmem.CompressedTierStats {
	return tmem.CompressedTierStats{
		TierStats:    decTierStats(d),
		PagesStored:  mem.Pages(d.i64("c.pages")),
		UniqueBlobs:  d.i64("c.blobs"),
		RawBytes:     mem.Bytes(d.i64("c.raw")),
		StoredBytes:  mem.Bytes(d.i64("c.stored")),
		DedupHits:    d.u64("c.dedup"),
		RejectedFull: d.u64("c.rejected"),
		DecodeErrors: d.u64("c.decode-errs"),
		CompressNs:   d.u64("c.compress-ns"),
		DecompressNs: d.u64("c.decompress-ns"),
	}
}

func decDurableSummary(d *memoDec) durable.Summary {
	return durable.Summary{
		Tier: decTierStats(d),
		Log: durable.Stats{
			Appends:       d.u64("d.appends"),
			AppendedBytes: d.u64("d.appended-bytes"),
			Fsyncs:        d.u64("d.fsyncs"),
			Segments:      d.u64("d.segments"),
			Compactions:   d.u64("d.compactions"),
			SnapshotPages: d.u64("d.snapshot-pages"),
			Pools:         d.u64("d.pools"),
			PagesLive:     d.u64("d.pages-live"),
			BytesLive:     d.u64("d.bytes-live"),
			Errors:        d.u64("d.errors"),
		},
	}
}
