package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"smartmem/internal/core"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/workload"
)

// This file adds the non-paper scenarios that push the harness beyond
// Table II: the parameterized scale-<n> family (n usemem VMs contending for
// a deliberately undersized tmem pool) and the churn scenario (analytics
// and usemem churners mixed on one node). Both register in registry.go and
// run through the same engine, figures and commands as the paper
// scenarios.

// scaleVMRAM and friends parameterize the scale-<n> family: every VM is a
// 512 MiB usemem guest (the paper's usemem-scenario sizing) and the pool
// provides 128 MiB of tmem per VM — a quarter of each VM's demand, so the
// pool is always contended no matter how many VMs register.
const (
	scaleVMRAM      = 512 * mem.MiB
	scaleVMReserve  = 140 * mem.MiB
	scaleTmemPerVM  = 128 * mem.MiB
	scaleUsememMax  = 512 * mem.MiB
	scaleMinVMs     = 2
	scaleMaxVMs     = 64
	scaleFinalLoops = 2 // full max-size traversals each VM completes
)

// scalePrefix is the slug prefix of the parameterized scale family.
const scalePrefix = "scale-"

// scaleConstructor builds scale-<n> scenarios on demand ("scale-12" → 12
// VMs). Registered in registry.go; "scale-6" is additionally registered as
// a concrete instance so it shows up in listings.
var scaleConstructor = Constructor{
	Prefix:      scalePrefix,
	Usage:       "scale-<n>",
	Description: "n usemem VMs (512MiB each) contending for n×128MiB of tmem",
	Build:       buildScale,
}

func buildScale(slug string) (*Scenario, error) {
	n, err := strconv.Atoi(strings.TrimPrefix(slug, scalePrefix))
	if err != nil || n < scaleMinVMs || n > scaleMaxVMs {
		return nil, fmt.Errorf("experiments: scale scenario %q: want scale-<n> with %d <= n <= %d",
			slug, scaleMinVMs, scaleMaxVMs)
	}
	return newScaleScenario(n), nil
}

// mustScale resolves a scale slug for init-time registration.
func mustScale(slug string) *Scenario {
	s, err := buildScale(slug)
	if err != nil {
		panic(err)
	}
	return s
}

// newScaleScenario assembles the scale-<n> scenario: n identical usemem
// VMs launched together. Each VM allocates 128 MiB steps up to 512 MiB and
// keeps traversing; the run stops once every VM has completed
// scaleFinalLoops full-size traversals, so runtime is finite while the
// tail of the run still exercises steady-state contention.
func newScaleScenario(n int) *Scenario {
	return &Scenario{
		Name: fmt.Sprintf("Scale %d", n),
		Slug: fmt.Sprintf("scale-%d", n),
		Description: fmt.Sprintf("VM1–VM%d: 512MB RAM running usemem to 512MB "+
			"simultaneously against %s of tmem (1/4 of aggregate demand); "+
			"stops after every VM finishes %d full traversals.",
			n, mem.Bytes(n)*scaleTmemPerVM, scaleFinalLoops),
		TmemBytes: mem.Bytes(n) * scaleTmemPerVM,
		Policies: []string{
			"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=2",
		},
		TimesFigure:  fmt.Sprintf("Scale-%d", n),
		SeriesFigure: fmt.Sprintf("Scale-%d series", n),
		RunLabels: []string{
			workload.RunLabel(128 * mem.MiB), workload.RunLabel(256 * mem.MiB),
			workload.RunLabel(384 * mem.MiB), workload.RunLabel(512 * mem.MiB),
		},
		build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
			// One scale node is exactly one cluster node's worth of the
			// shared usemem-contention recipe (cluster.go): stop when
			// every VM has begun its scaleFinalLoops+1'th max-size
			// traversal, i.e. completed scaleFinalLoops of them.
			return usememClusterNode(seed, pol, tmemOn, n, mem.Bytes(n)*scaleTmemPerVM, scaleFinalLoops)
		},
	}
}

// notifyWorkload runs its inner workload and then invokes done — the hook
// the churn scenario uses to stop the open-ended usemem churners once the
// finite analytics workloads complete.
type notifyWorkload struct {
	inner workload.Workload
	done  func()
}

// Name implements workload.Workload.
func (n notifyWorkload) Name() string { return n.inner.Name() }

// Run implements workload.Workload.
func (n notifyWorkload) Run(ctx *workload.Ctx) {
	n.inner.Run(ctx)
	n.done()
}

// ChurnScenario mixes the paper's two analytics applications with a pair
// of usemem churners on one node: VM1 (1 GiB) runs in-memory-analytics,
// VM2 (512 MiB) runs graph-analytics, and VM3/VM4 (512 MiB each) run
// usemem loops that continuously dirty pages, stressing policy adaptation
// under competing steady pressure. The run stops when both analytics
// workloads finish. Not a paper scenario — it probes how each policy
// shields latency-sensitive work from background churn.
var ChurnScenario = &Scenario{
	Name: "Churn",
	Slug: "churn",
	Description: "VM1: 1GB RAM running in-memory-analytics; VM2: 512MB RAM " +
		"running graph-analytics; VM3, VM4: 512MB RAM running usemem churn " +
		"loops until both analytics workloads complete.",
	TmemBytes: 768 * mem.MiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=2",
	},
	TimesFigure:  "Churn",
	SeriesFigure: "Churn series",
	RunLabels:    []string{"analytics", "graph"},
	build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
		cfg := baseConfig(seed, pol, tmemOn, 768*mem.MiB)
		stop := &workload.Flag{}
		cfg.Stop = stop

		// Both notifyWorkload callbacks run inside one simulation kernel;
		// a plain counter is safe.
		finished := 0
		analyticsDone := func() {
			finished++
			if finished == 2 {
				stop.Set()
			}
		}

		cfg.VMs = append(cfg.VMs,
			core.VMSpec{
				ID: 1, Name: "VM1", RAMBytes: 1 * mem.GiB,
				Workload: notifyWorkload{inner: inMemoryAnalytics("analytics"), done: analyticsDone},
			},
			core.VMSpec{
				ID: 2, Name: "VM2", RAMBytes: 512 * mem.MiB,
				Workload: notifyWorkload{inner: graphAnalytics("graph"), done: analyticsDone},
			},
		)
		churner := workload.Usemem{
			StartBytes: 128 * mem.MiB,
			StepBytes:  128 * mem.MiB,
			MaxBytes:   384 * mem.MiB,
			CPUPerPage: 100 * sim.Microsecond,
		}
		for i := 3; i <= 4; i++ {
			cfg.VMs = append(cfg.VMs, core.VMSpec{
				ID:                 tmem.VMID(i),
				Name:               fmt.Sprintf("VM%d", i),
				RAMBytes:           512 * mem.MiB,
				KernelReserveBytes: 140 * mem.MiB,
				Workload:           churner,
			})
		}
		return cfg
	},
}
