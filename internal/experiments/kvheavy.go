package experiments

import (
	"fmt"

	"smartmem/internal/core"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/workload"
)

// KVHeavyScenario drives the tmem store as a pure key–value engine under a
// heavy mixed operation load: four 512 MiB graph-analytics readers whose
// refault streams hammer cleancache (ephemeral puts, destructive gets,
// LRU evictions) share the node with two usemem churners issuing steady
// frontswap put/flush cycles, all against a pool sized at a fraction of
// aggregate demand. Where the Table II scenarios probe policy quality,
// kv-heavy probes store mechanics — it generates the densest op mix per
// unit of virtual time of any registered scenario, the simulation-side
// counterpart of load-testing smartmem-kvd. Not a paper scenario.
var KVHeavyScenario = &Scenario{
	Name: "KV Heavy",
	Slug: "kv-heavy",
	Description: "VM1–VM4: 512MB RAM running graph-analytics with cleancache " +
		"enabled (ephemeral put/get/evict pressure); VM5, VM6: 512MB RAM " +
		"running usemem churn loops (frontswap put/flush) until all four " +
		"analytics runs complete. Stresses the full key–value op mix.",
	TmemBytes: 512 * mem.MiB,
	Policies: []string{
		"no-tmem", "greedy", "reconf-static", "smart-alloc:P=2",
	},
	TimesFigure:  "KV-heavy",
	SeriesFigure: "KV-heavy series",
	RunLabels:    []string{"graph"},
	build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
		cfg := baseConfig(seed, pol, tmemOn, 512*mem.MiB)
		cfg.Cleancache = true
		stop := &workload.Flag{}
		cfg.Stop = stop

		// All notifyWorkload callbacks run inside one simulation kernel;
		// a plain counter is safe.
		const readers = 4
		finished := 0
		readerDone := func() {
			finished++
			if finished == readers {
				stop.Set()
			}
		}

		reader := workload.GraphAnalytics{
			Label:                 "graph",
			GraphBytes:            640 * mem.MiB,
			Iterations:            6,
			TouchesPerPagePerIter: 1.6,
			CPUPerTouch:           400 * sim.Microsecond,
			CPUPerPageLoad:        2500 * sim.Microsecond,
			WriteFraction:         0.04,
			HotFraction:           0.40,
			HotProb:               0.975,
		}
		for i := 1; i <= readers; i++ {
			cfg.VMs = append(cfg.VMs, core.VMSpec{
				ID:       tmem.VMID(i),
				Name:     fmt.Sprintf("VM%d", i),
				RAMBytes: 512 * mem.MiB,
				Workload: notifyWorkload{inner: reader, done: readerDone},
			})
		}
		churner := workload.Usemem{
			StartBytes: 128 * mem.MiB,
			StepBytes:  128 * mem.MiB,
			MaxBytes:   384 * mem.MiB,
			CPUPerPage: 100 * sim.Microsecond,
		}
		for i := readers + 1; i <= readers+2; i++ {
			cfg.VMs = append(cfg.VMs, core.VMSpec{
				ID:                 tmem.VMID(i),
				Name:               fmt.Sprintf("VM%d", i),
				RAMBytes:           512 * mem.MiB,
				KernelReserveBytes: 140 * mem.MiB,
				Workload:           churner,
			})
		}
		return cfg
	},
}
