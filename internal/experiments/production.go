package experiments

import (
	"fmt"

	"smartmem/internal/core"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/workload"
)

// Production-shaped scenarios (ROADMAP item 4): the traffic patterns a
// cloud operator schedules around, built on the workloads in
// internal/workload/production.go. They are the tournament's backbone —
// none of them resembles the hand-tuned Table II mixes, which is exactly
// why a policy that wins here has earned its ranking.

// stdPolicies is the policy slate the production scenarios compare.
var stdPolicies = []string{
	"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=2",
}

// DiurnalScenario: three serving VMs whose working sets swell and shrink on
// phase-shifted sinusoidal waves, like services peaking across time zones.
// At any instant roughly one VM is cresting past its RAM while another is
// in its trough — the canonical case for reallocating tmem instead of
// statically splitting it.
var DiurnalScenario = &Scenario{
	Name: "Diurnal",
	Slug: "diurnal",
	Description: "VM1–VM3: 512MB RAM serving phase-shifted sinusoidal " +
		"traffic waves (96MB trough, 640MB crest, 2 cycles each); pool sized " +
		"for one crest, so policies must follow the wave around the VMs.",
	TmemBytes:    512 * mem.MiB,
	Policies:     stdPolicies,
	TimesFigure:  "Diurnal",
	SeriesFigure: "Diurnal series",
	RunLabels:    []string{"wave-cycle1", "wave-cycle2"},
	build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
		cfg := baseConfig(seed, pol, tmemOn, 512*mem.MiB)
		wave := workload.DiurnalWave{
			Label:         "wave",
			BaseBytes:     96 * mem.MiB,
			PeakBytes:     640 * mem.MiB,
			Cycles:        2,
			DwellPerStep:  2 * sim.Second,
			CPUPerPage:    150 * sim.Microsecond,
			WriteFraction: 0.3,
		}
		for i := 1; i <= 3; i++ {
			cfg.VMs = append(cfg.VMs, core.VMSpec{
				ID:       tmem.VMID(i),
				Name:     fmt.Sprintf("VM%d", i),
				RAMBytes: 512 * mem.MiB,
				// Phase shift: each VM starts a third of a wave later, so
				// the crests rotate around the node.
				StartDelay: sim.Duration(i-1) * 40 * sim.Second,
				Workload:   wave,
			})
		}
		return cfg
	},
}

// NoisyNeighborScenario: two well-behaved graph-analytics tenants share the
// node with one adversarial VM cyclically scanning a file three times its
// RAM — a backup/scan job whose clean-page evictions flood the ephemeral
// (cleancache) pool with pages it will drop again next pass. The question
// the scenario asks of each policy: does the thrasher's useless churn steal
// the tmem the analytics VMs are productively hitting?
var NoisyNeighborScenario = &Scenario{
	Name: "Noisy Neighbor",
	Slug: "noisy-neighbor",
	Description: "VM1, VM2: 512MB RAM running graph-analytics (cleancache " +
		"enabled); VM3: 512MB RAM cyclically scanning a 1.5GB file, " +
		"thrashing the ephemeral pool until both analytics runs complete.",
	TmemBytes:    512 * mem.MiB,
	Policies:     stdPolicies,
	TimesFigure:  "Noisy-neighbor",
	SeriesFigure: "Noisy-neighbor series",
	RunLabels:    []string{"graph"},
	build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
		cfg := baseConfig(seed, pol, tmemOn, 512*mem.MiB)
		cfg.Cleancache = true
		stop := &workload.Flag{}
		cfg.Stop = stop

		// Both notifyWorkload callbacks run inside one simulation kernel;
		// a plain counter is safe.
		finished := 0
		victimDone := func() {
			finished++
			if finished == 2 {
				stop.Set() // the thrasher only stops when told to
			}
		}
		victim := workload.GraphAnalytics{
			Label:                 "graph",
			GraphBytes:            640 * mem.MiB,
			Iterations:            6,
			TouchesPerPagePerIter: 1.6,
			CPUPerTouch:           400 * sim.Microsecond,
			CPUPerPageLoad:        2500 * sim.Microsecond,
			WriteFraction:         0.04,
			HotFraction:           0.40,
			HotProb:               0.975,
		}
		for i := 1; i <= 2; i++ {
			cfg.VMs = append(cfg.VMs, core.VMSpec{
				ID:       tmem.VMID(i),
				Name:     fmt.Sprintf("VM%d", i),
				RAMBytes: 512 * mem.MiB,
				Workload: notifyWorkload{inner: victim, done: victimDone},
			})
		}
		cfg.VMs = append(cfg.VMs, core.VMSpec{
			ID:       3,
			Name:     "VM3",
			RAMBytes: 512 * mem.MiB,
			Workload: workload.FileThrash{
				Label:      "thrash",
				FileBytes:  1536 * mem.MiB,
				Passes:     0, // until stopped
				CPUPerPage: 20 * sim.Microsecond,
			},
		})
		return cfg
	},
}

// LeakyScenario: one VM leaks memory monotonically to 1.5× its RAM while
// two analytics tenants do real work. The leaked pages overflow into tmem
// and are never referenced again — a policy that keeps feeding the leaker
// (greedy does: it rewards whoever faults hardest) starves the tenants
// whose overflow would actually hit.
var LeakyScenario = &Scenario{
	Name: "Leaky",
	Slug: "leaky",
	Description: "VM1: 512MB RAM leaking monotonically to 768MB (only a " +
		"128MB hot window is ever reused); VM2, VM3: 512MB RAM running " +
		"in-memory-analytics rounds alongside the leak.",
	TmemBytes:    512 * mem.MiB,
	Policies:     stdPolicies,
	TimesFigure:  "Leaky",
	SeriesFigure: "Leaky series",
	RunLabels:    []string{"leak", "serve"},
	build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
		cfg := baseConfig(seed, pol, tmemOn, 512*mem.MiB)
		cfg.VMs = append(cfg.VMs, core.VMSpec{
			ID:       1,
			Name:     "VM1",
			RAMBytes: 512 * mem.MiB,
			Workload: workload.Leak{
				Label:         "leak",
				StartBytes:    128 * mem.MiB,
				GrowBytes:     64 * mem.MiB,
				MaxBytes:      768 * mem.MiB,
				HotBytes:      128 * mem.MiB,
				RoundsAtMax:   3,
				CPUPerPage:    150 * sim.Microsecond,
				DwellPerRound: 1 * sim.Second,
			},
		})
		serve := workload.InMemoryAnalytics{
			Label:          "serve",
			DatasetBytes:   704 * mem.MiB,
			Passes:         2,
			CPUPerPageLoad: 400 * sim.Microsecond,
			CPUPerPagePass: 4500 * sim.Microsecond,
			WriteFraction:  0.10,
		}
		for i := 2; i <= 3; i++ {
			cfg.VMs = append(cfg.VMs, core.VMSpec{
				ID:       tmem.VMID(i),
				Name:     fmt.Sprintf("VM%d", i),
				RAMBytes: 512 * mem.MiB,
				Workload: serve,
			})
		}
		return cfg
	},
}
