package experiments

import (
	"bytes"
	"context"
	"encoding/hex"
	"reflect"
	"testing"
	"time"

	"smartmem/internal/core"
	"smartmem/internal/durable"
	"smartmem/internal/guest"
	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// Fingerprints must be stable across calls and sensitive to every job
// coordinate: scenario, policy and seed each produce a distinct run, so
// each must produce a distinct key.
func TestFingerprintStability(t *testing.T) {
	job := Job{Scenario: UsememScenario, PolicySpec: "greedy", Seed: 11}
	a, err := JobFingerprint(job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobFingerprint(job)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same job fingerprints differ: %s vs %s", a, b)
	}

	variants := []Job{
		{Scenario: UsememScenario, PolicySpec: "greedy", Seed: 23},
		{Scenario: UsememScenario, PolicySpec: "static-alloc", Seed: 11},
		{Scenario: Scenario1, PolicySpec: "greedy", Seed: 11},
		{Scenario: UsememScenario, PolicySpec: "no-tmem", Seed: 11},
	}
	seen := map[Fingerprint]string{a: job.String()}
	for _, v := range variants {
		fp, err := JobFingerprint(v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %s and %s", prev, v)
		}
		seen[fp] = v.String()
	}
}

// Cluster fingerprints must not depend on ClusterConfig.Parallel: the
// parallel cluster runtime is byte-identical to the sequential one, so both
// must share cache entries.
func TestFingerprintIgnoresClusterParallel(t *testing.T) {
	s, err := BySlug("cluster-2")
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Scenario: s, PolicySpec: "greedy", Seed: 11}
	a, err := JobFingerprint(job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobFingerprint(job)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cluster job fingerprints differ across calls: %s vs %s", a, b)
	}
}

// The codec must reproduce a real Result exactly: single-node, cluster
// (per-node summaries, remote tiers) and compressed-tier runs all
// round-trip through the cache to a deeply equal value.
func TestMemoRoundTrip(t *testing.T) {
	cases := []struct{ slug, policy string }{
		{"scale-2", "greedy"},
		{"cluster-2", "smart-alloc:P=2"},
		{"memory-pressure", "smart-alloc:P=2"},
	}
	m := NewMemo(durable.NewMemStore())
	for _, tc := range cases {
		s, err := BySlug(tc.slug)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunOne(s, tc.policy, 11)
		if err != nil {
			t.Fatalf("%s: %v", tc.slug, err)
		}
		fp, err := JobFingerprint(Job{Scenario: s, PolicySpec: tc.policy, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Put(fp, want); err != nil {
			t.Fatalf("%s: put: %v", tc.slug, err)
		}
		got, ok := m.Get(fp)
		if !ok {
			t.Fatalf("%s: fresh entry missed", tc.slug)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: decoded result differs from original", tc.slug)
		}
	}
	if st := m.Stats(); st.Corrupt != 0 || st.Hits != uint64(len(cases)) {
		t.Errorf("stats = %+v", m.Stats())
	}
}

// The codec walks every field of core.Result and its component structs by
// hand. Pin the struct shapes so adding a field anywhere in the result
// tree fails here until the codec — and memoFormatVersion — are updated
// with it.
func TestMemoCodecCoversResult(t *testing.T) {
	shapes := []struct {
		v    any
		want int
	}{
		{core.Result{}, 15},
		{core.RunRecord{}, 4},
		{core.VMResult{}, 4},
		{core.NodeResult{}, 9},
		{guest.Stats{}, 13},
		{tmem.OpCounts{}, 7},
		{tmem.TierStats{}, 7},
		{tmem.CompressedTierStats{}, 10},
		{durable.Summary{}, 2},
		{durable.Stats{}, 10},
	}
	for _, s := range shapes {
		typ := reflect.TypeOf(s.v)
		if got := typ.NumField(); got != s.want {
			t.Errorf("%s has %d fields, codec expects %d — update the memo codec and bump memoFormatVersion",
				typ, got, s.want)
		}
	}
}

// A present-but-corrupt entry must read as a miss, bump the corrupt
// counter, and be silently recomputed (and overwritten) with the correct
// result.
func TestMemoCorruptEntryRecomputed(t *testing.T) {
	store := durable.NewMemStore()
	cache := NewMemo(store)
	s, err := BySlug("scale-2")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{Scenario: s, PolicySpec: "greedy", Seed: 11}}
	eng := &Engine{Parallelism: 1, Cache: cache}

	first, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	fp, err := JobFingerprint(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Corrupt(memoKey(fp), func(b []byte) []byte {
		b[len(b)/2] ^= 0xff // flip a payload byte under the checksum
		return b
	}); err != nil {
		t.Fatal(err)
	}

	second, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first[0].Result, second[0].Result) {
		t.Error("recomputed result differs from original")
	}
	st := cache.Stats()
	if st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
	if st.Writes != 2 {
		t.Errorf("writes = %d, want 2 (initial + recompute overwrite)", st.Writes)
	}

	// The overwrite healed the entry: a third pass is a pure hit.
	if _, ok := cache.Get(fp); !ok {
		t.Error("entry still unreadable after recompute")
	}
}

// The headline guarantee: a warm-cache tournament serves every cell from
// the cache and emits a league document byte-identical to the cold pass.
func TestTournamentColdWarmIdentical(t *testing.T) {
	s, err := BySlug("scale-2")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMemo(durable.NewMemStore())
	opt := Options{Parallelism: 4, Cache: cache}
	policies := []string{"greedy", "static-alloc"}
	seeds := []uint64{11, 23}

	render := func() []byte {
		league, err := RunTournament([]*Scenario{s}, policies, seeds, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteLeagueJSON(&buf, league); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cold := render()
	st := cache.Stats()
	if st.Misses != 4 || st.Writes != 4 {
		t.Fatalf("cold pass stats = %+v, want 4 misses / 4 writes", st)
	}

	warm := render()
	st = cache.Stats()
	if st.Hits != 4 || st.Misses != 4 {
		t.Errorf("warm pass stats = %+v, want 4 hits on top of the cold misses", st)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm league differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}

// Cancelling a sweep mid-flight may cut it short, but it must never leave
// a partial or undecodable cache entry behind — and finishing the sweep
// later against the same cache must produce exactly the uncached outcome.
func TestCancellationNeverPoisonsCache(t *testing.T) {
	s, err := BySlug("scale-2")
	if err != nil {
		t.Fatal(err)
	}
	store := durable.NewMemStore()
	cache := NewMemo(store)
	policies := []string{"greedy", "static-alloc"}
	seeds := []uint64{11, 23, 37}

	ctx, cancel := context.WithCancel(context.Background())
	opt := Options{
		Parallelism: 2,
		Cache:       cache,
		Context:     ctx,
		OnProgress: func(done, total int, j Job) {
			if done == 1 {
				cancel() // stop the sweep after the first completed cell
			}
		},
	}
	if _, err := RunMatrix([]*Scenario{s}, policies, seeds, opt); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}

	// Every entry the truncated sweep wrote must decode cleanly.
	keys, err := store.List("memo/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("sweep wrote no entries before cancellation")
	}
	for _, key := range keys {
		raw, err := hex.DecodeString(key[len("memo/"):])
		if err != nil || len(raw) != len(Fingerprint{}) {
			t.Fatalf("malformed memo key %q", key)
		}
		var fp Fingerprint
		copy(fp[:], raw)
		blob, err := store.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeMemoEntry(fp, blob); err != nil {
			t.Errorf("entry %s poisoned by cancellation: %v", key, err)
		}
	}

	// Resuming against the same cache must match a cache-less sweep.
	want, err := RunMatrix([]*Scenario{s}, policies, seeds, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMatrix([]*Scenario{s}, policies, seeds, Options{Parallelism: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i].Result, got[i].Result) {
			t.Errorf("cell %d (%s): cached resume differs from fresh sweep", i, want[i].Job)
		}
	}
}

// The work-stealing scheduler may only change wall-clock dispatch order:
// its merged results must be deeply identical to the static scheduler's.
func TestStealSchedulerMatchesStatic(t *testing.T) {
	s, err := BySlug("scale-2")
	if err != nil {
		t.Fatal(err)
	}
	jobs := Matrix([]*Scenario{s}, []string{"greedy", "static-alloc"}, []uint64{11, 23})

	static, err := (&Engine{Parallelism: 4, Scheduler: SchedulerStatic}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	steal, err := (&Engine{Parallelism: 4, Scheduler: SchedulerSteal}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range static {
		if steal[i].Index != static[i].Index {
			t.Fatalf("result %d out of order under stealing", i)
		}
		if !reflect.DeepEqual(steal[i].Result, static[i].Result) {
			t.Errorf("cell %d (%s): steal result differs from static", i, static[i].Job)
		}
	}
}

// scheduleOrder must sort longest-expected-first, preferring observed EWMA
// durations over the static prior, with ties keeping submission order.
func TestScheduleOrderLongestFirst(t *testing.T) {
	// Unique slugs so the process-global cost model isn't polluted by (or
	// polluting) other tests.
	mk := func(slug string, tmemMiB int) *Scenario {
		return &Scenario{Slug: slug, TmemBytes: mem.Bytes(tmemMiB) * mem.MiB}
	}
	small := mk("order-test-small", 64)
	big := mk("order-test-big", 1024)

	jobs := []Job{
		{Scenario: small, PolicySpec: "greedy", Seed: 11},
		{Scenario: big, PolicySpec: "greedy", Seed: 11},
		{Scenario: small, PolicySpec: "no-tmem", Seed: 11},
	}
	// Static priors: big (1024) > small no-tmem (64×2) > small greedy (64).
	if got := scheduleOrder(jobs); got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("static-prior order = %v, want [1 2 0]", got)
	}

	// An observation overrides the prior: make the small greedy cell the
	// known-longest.
	observeCost(jobs[0], 10*time.Second)
	observeCost(jobs[1], time.Millisecond)
	observeCost(jobs[2], time.Second)
	if got := scheduleOrder(jobs); got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Errorf("observed order = %v, want [0 2 1]", got)
	}

	// EWMA: a second, faster observation halves toward the new value.
	observeCost(jobs[0], 0)
	if c := estimateCost(jobs[0]); c != float64(5*time.Second) {
		t.Errorf("EWMA after 10s,0s = %v ns, want 5s", c)
	}
}

// Memo hits replay no lifecycle events, so the engine must bypass the
// cache — serving real runs — whenever an event callback is attached.
func TestCacheBypassedWithEventObserver(t *testing.T) {
	s, err := BySlug("scale-2")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMemo(durable.NewMemStore())
	jobs := []Job{{Scenario: s, PolicySpec: "greedy", Seed: 11}}

	// Prime the cache.
	if _, err := (&Engine{Parallelism: 1, Cache: cache}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}

	events := 0
	eng := &Engine{Parallelism: 1, Cache: cache, OnEvent: func(j Job, e RunEvent) { events++ }}
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("no events observed: cache served a run despite OnEvent")
	}
	if st := cache.Stats(); st.Hits != 0 {
		t.Errorf("cache hits = %d with OnEvent attached, want 0", st.Hits)
	}
}
