package experiments

import (
	"fmt"

	"smartmem/internal/core"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/workload"
)

// The multi-node scenarios: clusters of SmarTmem nodes wired peer-to-peer
// with remote tmem tiers (RAMster-style overflow; see core.ClusterConfig).
// They extend the paper's single-node evaluation along its own lineage —
// Magenheimer's tmem work explicitly proposes a remote tier — and probe
// three shapes the single-node scenarios cannot: symmetric mutual overflow
// (cluster-2), a donor/receiver pair where nearly all pressure is absorbed
// remotely (remote-heavy), and an asymmetric population where a busy
// analytics node also serves a swarm's overflow (node-imbalance).

// usememClusterNode builds one node of usemem VMs contending for an
// undersized tmem pool, stopping after each VM completes `loops` full
// traversals. It is the single implementation of this recipe: the
// single-node scale-<n> scenario (scale.go) and the cluster scenarios all
// build their nodes through it. Fresh flags and counters are allocated per
// call — builds run concurrently under the engine.
func usememClusterNode(seed uint64, pol policy.Policy, tmemOn bool, nVMs int, tmemBytes mem.Bytes, loops int) core.Config {
	cfg := baseConfig(seed, pol, tmemOn, tmemBytes)
	stop := &workload.Flag{}
	cfg.Stop = stop

	attempts := make(map[string]int, nVMs)
	doneVMs := 0
	cfg.OnMilestone = func(vm, label string) {
		if label != workload.MilestoneLabel(scaleUsememMax) {
			return
		}
		attempts[vm]++
		if attempts[vm] == loops+1 {
			doneVMs++
			if doneVMs == nVMs {
				stop.Set()
			}
		}
	}

	u := workload.Usemem{
		StartBytes: 128 * mem.MiB,
		StepBytes:  128 * mem.MiB,
		MaxBytes:   scaleUsememMax,
		CPUPerPage: 100 * sim.Microsecond,
	}
	for i := 1; i <= nVMs; i++ {
		cfg.VMs = append(cfg.VMs, core.VMSpec{
			ID:                 tmem.VMID(i),
			Name:               fmt.Sprintf("VM%d", i),
			RAMBytes:           scaleVMRAM,
			KernelReserveBytes: scaleVMReserve,
			Workload:           u,
		})
	}
	return cfg
}

// Cluster2Scenario is the symmetric 2-node cluster: each node runs two
// usemem VMs against an undersized pool, and each node's overflow lands in
// the other's store. The deterministic reference run for the cluster
// runtime (golden-tested in cmd/smartmem-sim).
var Cluster2Scenario = NewClusterScenario(Scenario{
	Name: "Cluster 2",
	Slug: "cluster-2",
	Description: "2 nodes × 2 usemem VMs (512MB RAM each) against 192MiB of " +
		"tmem per node; the nodes mutually absorb each other's overflow " +
		"through remote tmem tiers. Stops after 2 full traversals per VM.",
	TmemBytes: 2 * 192 * mem.MiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=2",
	},
	TimesFigure:  "Cluster-2",
	SeriesFigure: "Cluster-2 series",
	RunLabels: []string{
		workload.RunLabel(128 * mem.MiB), workload.RunLabel(256 * mem.MiB),
		workload.RunLabel(384 * mem.MiB), workload.RunLabel(512 * mem.MiB),
	},
}, func(seed uint64, pol policy.Policy, tmemOn bool) core.ClusterConfig {
	return core.ClusterConfig{
		Nodes: []core.Config{
			usememClusterNode(seed, pol, tmemOn, 2, 192*mem.MiB, 2),
			usememClusterNode(seed, pol, tmemOn, 2, 192*mem.MiB, 2),
		},
		RemoteTmem: tmemOn,
	}
})

// RemoteHeavyScenario is the donor/receiver pair: node 0 is heavily
// oversubscribed (three usemem VMs against 96 MiB), node 1 runs one light
// analytics VM in front of a large mostly-idle pool. Nearly every page
// node 0 cannot hold locally ships to node 1's RAM — the RAMster story in
// its purest form.
var RemoteHeavyScenario = NewClusterScenario(Scenario{
	Name: "Remote Heavy",
	Slug: "remote-heavy",
	Description: "node 0: 3 usemem VMs vs 96MiB of tmem (heavily " +
		"oversubscribed); node 1: one light in-memory-analytics VM vs 768MiB. " +
		"Node 0's overflow is almost entirely absorbed by node 1's spare RAM.",
	TmemBytes: 96*mem.MiB + 768*mem.MiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=2",
	},
	TimesFigure:  "Remote-heavy",
	SeriesFigure: "Remote-heavy series",
	RunLabels: []string{
		workload.RunLabel(128 * mem.MiB), workload.RunLabel(256 * mem.MiB),
		workload.RunLabel(384 * mem.MiB), workload.RunLabel(512 * mem.MiB),
		"warm",
	},
}, func(seed uint64, pol policy.Policy, tmemOn bool) core.ClusterConfig {
	donor := usememClusterNode(seed, pol, tmemOn, 3, 96*mem.MiB, 2)

	receiver := baseConfig(seed, pol, tmemOn, 768*mem.MiB)
	receiver.VMs = append(receiver.VMs, core.VMSpec{
		ID: 1, Name: "VM1", RAMBytes: 1 * mem.GiB,
		Workload: workload.InMemoryAnalytics{
			Label:          "warm",
			DatasetBytes:   512 * mem.MiB,
			Passes:         2,
			CPUPerPageLoad: 400 * sim.Microsecond,
			CPUPerPagePass: 4500 * sim.Microsecond,
			WriteFraction:  0.10,
		},
	})
	return core.ClusterConfig{
		Nodes:      []core.Config{donor, receiver},
		RemoteTmem: tmemOn,
	}
})

// NodeImbalanceScenario is the asymmetric population: a swarm node (four
// usemem VMs against a quarter-sized pool) next to an analytics node whose
// own working set already pressures its pool. The analytics node must serve
// the swarm's overflow while its policy defends its local VM — the
// scheduling tension a RAMster deployment actually faces.
var NodeImbalanceScenario = NewClusterScenario(Scenario{
	Name: "Node Imbalance",
	Slug: "node-imbalance",
	Description: "node 0: 4 usemem VMs vs 256MiB of tmem; node 1: one " +
		"in-memory-analytics VM (1GB RAM, dataset larger than RAM) vs 512MiB. " +
		"The busy analytics node also receives the swarm's overflow.",
	TmemBytes: 256*mem.MiB + 512*mem.MiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=2",
	},
	TimesFigure:  "Node-imbalance",
	SeriesFigure: "Node-imbalance series",
	RunLabels: []string{
		workload.RunLabel(128 * mem.MiB), workload.RunLabel(256 * mem.MiB),
		workload.RunLabel(384 * mem.MiB), workload.RunLabel(512 * mem.MiB),
		"run1",
	},
}, func(seed uint64, pol policy.Policy, tmemOn bool) core.ClusterConfig {
	swarm := usememClusterNode(seed, pol, tmemOn, 4, 256*mem.MiB, 2)

	analytics := baseConfig(seed, pol, tmemOn, 512*mem.MiB)
	analytics.VMs = append(analytics.VMs, core.VMSpec{
		ID: 1, Name: "VM1", RAMBytes: 1 * mem.GiB,
		Workload: inMemoryAnalytics("run1"),
	})
	return core.ClusterConfig{
		Nodes:      []core.Config{swarm, analytics},
		RemoteTmem: tmemOn,
	}
})
