// Package experiments encodes the paper's evaluation (§IV–§V) and extends
// it: scenarios live in an extensible registry (Register / BySlug / All)
// seeded with the four Table II rows, a parameterized scale-<n> family and
// a mixed-workload churn scenario; a concurrent job engine (Engine,
// RunMatrix) executes (scenario, policy, seed) sweeps on a worker pool
// with deterministic, sequential-identical aggregation; and runners
// regenerate every figure's data (running times and tmem-usage series) on
// top of it.
//
// Scenario registry:
//
//   - the paper scenarios: "s1", "s2", "usemem", "s3" (Table II order);
//   - "scale-<n>": n usemem VMs contending for n×128 MiB of tmem — any n
//     in [2, 64] resolves via a registered Constructor ("scale-6" is
//     pre-registered);
//   - "churn": in-memory-analytics and graph-analytics VMs sharing the
//     node with two usemem churn loops;
//   - user scenarios: build a Scenario with NewScenario and Register it.
//
// Absolute times are simulation-model units, not the paper's wall-clock
// seconds (their testbed is nested VirtualBox on a 2009-era laptop); what
// the harness reproduces is the paper's comparative structure — which
// policy wins for which VM, and by roughly what factor. The README's
// results section records paper-vs-measured values for each figure.
package experiments

import (
	"fmt"

	"smartmem/internal/core"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/tmem"
	"smartmem/internal/workload"
)

// Tuning constants shared by all scenarios. Page size 64 KiB keeps runs
// fast while leaving thousands of pages of tmem resolution; the virtual
// disk service time reflects a nested-virtualization disk whose image is
// partially host-cached (the paper's VirtualBox setup), not a bare
// spindle.
const (
	PageSize      = 64 * mem.KiB
	DiskRead      = 2000 * sim.Microsecond
	DiskWrite     = 1600 * sim.Microsecond
	DiskJitter    = 0.15
	defaultLimitS = 7200
)

// inMemoryAnalytics builds the Scenario 1/3 application model: dataset
// sized against a 1 GiB VM, three scoring passes, ALS-style write share.
func inMemoryAnalytics(label string) workload.Workload {
	return workload.InMemoryAnalytics{
		Label:          label,
		DatasetBytes:   1408 * mem.MiB,
		Passes:         3,
		CPUPerPageLoad: 400 * sim.Microsecond,
		CPUPerPagePass: 4500 * sim.Microsecond,
		WriteFraction:  0.10,
	}
}

// graphAnalytics builds the Scenario 2/3 application model: a graph whose
// footprint is roughly twice the VM's RAM, iterated with random gather.
func graphAnalytics(label string) workload.Workload {
	return workload.GraphAnalytics{
		Label:                 label,
		GraphBytes:            1008 * mem.MiB,
		Iterations:            10,
		TouchesPerPagePerIter: 1.6,
		CPUPerTouch:           400 * sim.Microsecond,
		CPUPerPageLoad:        2500 * sim.Microsecond,
		WriteFraction:         0.04,
		HotFraction:           0.40,
		HotProb:               0.975,
	}
}

// Scenario describes one benchmark scenario plus everything needed to
// rerun it: a Table II row, a registered extension (scale-<n>, churn) or a
// user scenario built with NewScenario.
type Scenario struct {
	// Name is the scenario's display name ("Scenario 1", "Scale 6", ...).
	Name string
	// Slug is the short command-line identifier ("s1", "s2", "usemem",
	// "s3", "scale-6", "churn").
	Slug string
	// Paper marks the four Table II scenarios the paper evaluates;
	// extensions and user scenarios leave it false.
	Paper bool
	// Description paraphrases the Table II comments column.
	Description string
	// TmemBytes is the tmem capacity enabled for the scenario (§IV).
	TmemBytes mem.Bytes
	// Policies lists the policy specs evaluated in the scenario's
	// running-time figure, in presentation order.
	Policies []string
	// TimesFigure / SeriesFigure name the paper figures this scenario
	// regenerates.
	TimesFigure  string
	SeriesFigure string
	// RunLabels enumerates the per-VM measurements the times figure
	// reports (label → present for which VMs).
	RunLabels []string
	// build assembles the core.Config for one run (single-node scenarios).
	build BuildFunc
	// buildCluster assembles the core.ClusterConfig for one run (cluster
	// scenarios); exactly one of build/buildCluster is set.
	buildCluster ClusterBuildFunc
}

// BuildFunc assembles the runnable configuration for one (seed, policy)
// combination of a scenario. pol is nil and tmemOn false for the no-tmem
// baseline. Implementations must return a fresh Config on every call —
// builds run concurrently under the engine, so any cross-VM coordination
// state (flags, milestone counters) must be allocated inside the call.
type BuildFunc func(seed uint64, pol policy.Policy, tmemOn bool) core.Config

// ClusterBuildFunc assembles the runnable multi-node configuration for one
// (seed, policy) combination of a cluster scenario, under the same
// concurrency contract as BuildFunc: a fresh ClusterConfig (fresh stop
// flags, milestone counters, per-node Configs) on every call.
type ClusterBuildFunc func(seed uint64, pol policy.Policy, tmemOn bool) core.ClusterConfig

// NewScenario returns a registrable scenario combining the descriptive
// fields of s with the given build function (the build field itself is
// unexported so that the concurrency contract above is documented in one
// place). Register the result to make it resolvable by slug.
func NewScenario(s Scenario, build BuildFunc) *Scenario {
	s.build = build
	return &s
}

// NewClusterScenario is NewScenario for multi-node scenarios: the build
// function produces a core.ClusterConfig and runs execute through
// core.RunCluster.
func NewClusterScenario(s Scenario, build ClusterBuildFunc) *Scenario {
	s.buildCluster = build
	return &s
}

// IsCluster reports whether the scenario describes a multi-node run.
func (s *Scenario) IsCluster() bool { return s.buildCluster != nil }

// BuildCluster returns the runnable multi-node configuration for one
// (seed, policy) combination of a cluster scenario.
func (s *Scenario) BuildCluster(seed uint64, policySpec string) (core.ClusterConfig, error) {
	if !s.IsCluster() {
		return core.ClusterConfig{}, fmt.Errorf("experiments: %s is a single-node scenario; use Build", s.Slug)
	}
	pol, err := policy.Parse(policySpec)
	if err != nil {
		return core.ClusterConfig{}, err
	}
	if policy.IsNoTmem(pol) {
		return s.buildCluster(seed, nil, false), nil
	}
	return s.buildCluster(seed, pol, true), nil
}

// Build returns the runnable configuration for one (seed, policy)
// combination. policySpec follows policy.Parse syntax; "no-tmem" resolves
// through the registry like any other name (the sentinel selects the
// baseline). Cluster scenarios have no single-node configuration — use
// BuildCluster for them.
func (s *Scenario) Build(seed uint64, policySpec string) (core.Config, error) {
	if s.IsCluster() {
		return core.Config{}, fmt.Errorf("experiments: %s is a cluster scenario; use BuildCluster", s.Slug)
	}
	pol, err := policy.Parse(policySpec)
	if err != nil {
		return core.Config{}, err
	}
	if policy.IsNoTmem(pol) {
		return s.build(seed, nil, false), nil
	}
	return s.build(seed, pol, true), nil
}

func baseConfig(seed uint64, pol policy.Policy, tmemOn bool, tmemBytes mem.Bytes) core.Config {
	return core.Config{
		PageSize:         PageSize,
		TmemBytes:        tmemBytes,
		TmemEnabled:      tmemOn,
		Policy:           pol,
		Seed:             seed,
		DiskReadService:  DiskRead,
		DiskWriteService: DiskWrite,
		DiskJitter:       DiskJitter,
		// "Simultaneous" launches in the testbed are scripted over ssh
		// and skew by a second or two; that skew is what lets greedy's
		// first mover grab a disproportionate share (Figure 4a).
		StartJitter: 1500 * sim.Millisecond,
		Limit:       defaultLimitS * sim.Second,
	}
}

// Scenario1 is Table II row 1: three 1 GiB VMs all running
// in-memory-analytics twice (5 s apart), 1 GiB of tmem. Reproduces
// Figures 3 (times) and 4 (series).
var Scenario1 = &Scenario{
	Name:  "Scenario 1",
	Slug:  "s1",
	Paper: true,
	Description: "VM1–VM3: 1GB RAM, 1 CPU. All VMs execute " +
		"in-memory-analytics once simultaneously, sleep for 5 seconds, and " +
		"execute it again (MovieLens-shaped dataset).",
	TmemBytes: 1 * mem.GiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static",
		"smart-alloc:P=0.25", "smart-alloc:P=0.75", "smart-alloc:P=2",
	},
	TimesFigure:  "Figure 3",
	SeriesFigure: "Figure 4",
	RunLabels:    []string{"run1", "run2"},
	build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
		cfg := baseConfig(seed, pol, tmemOn, 1*mem.GiB)
		for i := 1; i <= 3; i++ {
			cfg.VMs = append(cfg.VMs, core.VMSpec{
				ID:       tmem.VMID(i),
				Name:     fmt.Sprintf("VM%d", i),
				RAMBytes: 1 * mem.GiB,
				Workload: workload.Sequence{Steps: []workload.SequenceStep{
					{W: inMemoryAnalytics("run1"), IdleAfter: 5 * sim.Second},
					{W: inMemoryAnalytics("run2")},
				}},
			})
		}
		return cfg
	},
}

// Scenario2 is Table II row 2: three 512 MiB VMs running graph-analytics;
// VM1 and VM2 launch together, VM3 30 s later; 1 GiB of tmem. Reproduces
// Figures 5 (times) and 6 (series).
var Scenario2 = &Scenario{
	Name:  "Scenario 2",
	Slug:  "s2",
	Paper: true,
	Description: "VM1–VM3: 512MB RAM, 1 CPU. All execute graph-analytics " +
		"once (soc-twitter-follows-shaped graph); the first two launch " +
		"simultaneously, the third 30 seconds later.",
	TmemBytes: 1 * mem.GiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static",
		"smart-alloc:P=2", "smart-alloc:P=6",
	},
	TimesFigure:  "Figure 5",
	SeriesFigure: "Figure 6",
	RunLabels:    []string{"graph"},
	build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
		cfg := baseConfig(seed, pol, tmemOn, 1*mem.GiB)
		for i := 1; i <= 3; i++ {
			var delay sim.Duration
			if i == 3 {
				delay = 30 * sim.Second
			}
			cfg.VMs = append(cfg.VMs, core.VMSpec{
				ID:         tmem.VMID(i),
				Name:       fmt.Sprintf("VM%d", i),
				RAMBytes:   512 * mem.MiB,
				StartDelay: delay,
				Workload:   graphAnalytics("graph"),
			})
		}
		return cfg
	},
}

// UsememScenario is Table II row 3: three 512 MiB VMs running the usemem
// micro-benchmark with 384 MiB of tmem. VM1 and VM2 start together; VM3
// starts when VM1 and VM2 attempt to allocate 640 MiB; all three stop when
// VM3 attempts to allocate 768 MiB. Reproduces Figures 7 (times) and 8
// (series).
var UsememScenario = &Scenario{
	Name:  "Usemem Scenario",
	Slug:  "usemem",
	Paper: true,
	Description: "VM1–VM3: 512MB RAM, 1 CPU, running usemem. VM3 starts " +
		"when VM1 and VM2 attempt to allocate 640MB; all VMs stop when VM3 " +
		"attempts to allocate 768MB.",
	TmemBytes: 384 * mem.MiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=2",
	},
	TimesFigure:  "Figure 7",
	SeriesFigure: "Figure 8",
	RunLabels: []string{
		workload.RunLabel(128 * mem.MiB), workload.RunLabel(256 * mem.MiB),
		workload.RunLabel(384 * mem.MiB), workload.RunLabel(512 * mem.MiB),
		workload.RunLabel(640 * mem.MiB), workload.RunLabel(768 * mem.MiB),
	},
	build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
		cfg := baseConfig(seed, pol, tmemOn, 384*mem.MiB)
		stop := &workload.Flag{}
		cfg.Stop = stop

		// Cross-VM staging per Table II. VM3 is gated on a flag raised
		// when both VM1 and VM2 reach their 640 MiB allocation attempt;
		// everything stops when VM3 attempts 768 MiB.
		vm3Gate := &workload.Flag{}
		reached640 := map[string]bool{}
		cfg.OnMilestone = func(vm, label string) {
			switch label {
			case workload.MilestoneLabel(640 * mem.MiB):
				if vm == "VM1" || vm == "VM2" {
					reached640[vm] = true
					if reached640["VM1"] && reached640["VM2"] {
						vm3Gate.Set()
					}
				}
			case workload.MilestoneLabel(768 * mem.MiB):
				if vm == "VM3" {
					stop.Set()
				}
			}
		}

		u := workload.DefaultUsemem()
		u.CPUPerPage = 100 * sim.Microsecond
		for i := 1; i <= 3; i++ {
			spec := core.VMSpec{
				ID:   tmem.VMID(i),
				Name: fmt.Sprintf("VM%d", i),
				// A 512 MB Ubuntu guest leaves usemem ~370 MB of head
				// room, so the 384 MiB step already touches swap.
				RAMBytes:           512 * mem.MiB,
				KernelReserveBytes: 140 * mem.MiB,
				Workload:           u,
			}
			if i == 3 {
				spec.Workload = gatedWorkload{gate: vm3Gate, inner: u}
			}
			cfg.VMs = append(cfg.VMs, spec)
		}
		return cfg
	},
}

// gatedWorkload delays its inner workload until gate is raised, polling at
// a fine interval (stands in for the scenario driver watching VM1/VM2).
type gatedWorkload struct {
	gate  *workload.Flag
	inner workload.Workload
}

// Name implements workload.Workload.
func (g gatedWorkload) Name() string { return g.inner.Name() + "-gated" }

// Run implements workload.Workload.
func (g gatedWorkload) Run(ctx *workload.Ctx) {
	for !g.gate.Stopped() {
		if ctx.Stopped() {
			return
		}
		ctx.Guest.Idle(ctx.Proc, 100*sim.Millisecond)
	}
	g.inner.Run(ctx)
}

// Scenario3 is Table II row 4: VM1/VM2 (512 MiB) run graph-analytics
// launched together; VM3 (1 GiB) runs in-memory-analytics 30 s later;
// 1 GiB of tmem. Reproduces Figures 9 (times) and 10 (series).
var Scenario3 = &Scenario{
	Name:  "Scenario 3",
	Slug:  "s3",
	Paper: true,
	Description: "VM1, VM2: 512MB RAM running graph-analytics " +
		"simultaneously; VM3: 1GB RAM running in-memory-analytics, launched " +
		"30 seconds later.",
	TmemBytes: 1 * mem.GiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=4",
	},
	TimesFigure:  "Figure 9",
	SeriesFigure: "Figure 10",
	RunLabels:    []string{"graph", "run1"},
	build: func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
		cfg := baseConfig(seed, pol, tmemOn, 1*mem.GiB)
		for i := 1; i <= 2; i++ {
			cfg.VMs = append(cfg.VMs, core.VMSpec{
				ID:       tmem.VMID(i),
				Name:     fmt.Sprintf("VM%d", i),
				RAMBytes: 512 * mem.MiB,
				Workload: graphAnalytics("graph"),
			})
		}
		cfg.VMs = append(cfg.VMs, core.VMSpec{
			ID:         3,
			Name:       "VM3",
			RAMBytes:   1 * mem.GiB,
			StartDelay: 30 * sim.Second,
			Workload:   inMemoryAnalytics("run1"),
		})
		return cfg
	},
}
