package experiments

import (
	"fmt"
	"sort"

	"smartmem/internal/core"
	"smartmem/internal/metrics"
)

// DefaultSeeds are the run repetitions ("every scenario is executed five
// times with every policy", §IV).
var DefaultSeeds = []uint64{11, 23, 37, 51, 68}

// RunOne executes one (scenario, policy, seed) combination.
func RunOne(s *Scenario, policySpec string, seed uint64) (*core.Result, error) {
	return RunOneWith(s, policySpec, seed, nil)
}

// RunOneWith is RunOne with a lifecycle-event observer (may be nil)
// subscribed to the run. Cluster scenarios execute through the cluster
// runtime; single-node scenarios through the node runtime. Both produce
// one merged core.Result, so everything downstream (times tables, series,
// sinks) treats them uniformly.
func RunOneWith(s *Scenario, policySpec string, seed uint64, obs core.Observer) (*core.Result, error) {
	return runOneWith(s, policySpec, seed, obs, false)
}

// runOneWith additionally selects the parallel cluster runtime for cluster
// scenarios (results are byte-identical either way; the engine picks by
// core budget).
func runOneWith(s *Scenario, policySpec string, seed uint64, obs core.Observer, clusterParallel bool) (*core.Result, error) {
	var res *core.Result
	var err error
	if s.IsCluster() {
		var cc core.ClusterConfig
		cc, err = s.BuildCluster(seed, policySpec)
		if err == nil {
			cc.Parallel = clusterParallel
			res, err = core.RunClusterWith(nil, cc, obs)
		}
	} else {
		var cfg core.Config
		cfg, err = s.Build(seed, policySpec)
		if err == nil {
			res, err = core.RunWith(nil, cfg, obs)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s seed %d: %w", s.Slug, policySpec, seed, err)
	}
	if res.HitLimit {
		return nil, fmt.Errorf("experiments: %s/%s seed %d hit the virtual-time limit", s.Slug, policySpec, seed)
	}
	return res, nil
}

// TimesRow aggregates one measurement (a VM × run label) across policies.
type TimesRow struct {
	VM       string
	Label    string
	ByPolicy map[string]metrics.Summary // policy spec → runtime summary (seconds)
}

// TimesTable is the data behind a running-times figure (Figures 3/5/7/9):
// per-VM, per-run mean±std running times for every policy.
type TimesTable struct {
	Scenario *Scenario
	Policies []string
	Seeds    []uint64
	Rows     []TimesRow
}

// Row returns the row for a VM and label, if present.
func (t *TimesTable) Row(vm, label string) (TimesRow, bool) {
	for _, r := range t.Rows {
		if r.VM == vm && r.Label == label {
			return r, true
		}
	}
	return TimesRow{}, false
}

// Speedup returns how much faster policy a is than policy b for a given
// row, as a fraction of b's mean (paper convention).
func (t *TimesTable) Speedup(vm, label, a, b string) (float64, error) {
	row, ok := t.Row(vm, label)
	if !ok {
		return 0, fmt.Errorf("experiments: no measurements for %s/%s", vm, label)
	}
	sa, oka := row.ByPolicy[a]
	sb, okb := row.ByPolicy[b]
	if !oka || !okb {
		return 0, fmt.Errorf("experiments: missing policy %q or %q in row %s/%s", a, b, vm, label)
	}
	return metrics.Speedup(sa, sb), nil
}

// Times runs the scenario for every (policy, seed) combination on the
// worker-pool engine and aggregates running times. policies defaults to
// the scenario's own list; seeds defaults to DefaultSeeds. Execution is
// parallel (runtime.NumCPU() workers) but results merge in job order, so
// the table is identical to a sequential sweep; use TimesOpts to control
// parallelism, cancellation and progress reporting.
func Times(s *Scenario, policies []string, seeds []uint64) (*TimesTable, error) {
	return TimesOpts(s, policies, seeds, Options{})
}

// TimesOpts is Times with explicit execution options.
func TimesOpts(s *Scenario, policies []string, seeds []uint64, opt Options) (*TimesTable, error) {
	if policies == nil {
		policies = s.Policies
	}
	if seeds == nil {
		seeds = DefaultSeeds
	}
	results, err := RunMatrix([]*Scenario{s}, policies, seeds, opt)
	if err != nil {
		return nil, err
	}

	// Aggregate strictly in job (policy-major, seed-minor) order — the
	// same order the historical sequential loop used — so parallel and
	// sequential sweeps produce byte-identical tables.
	type key struct{ vm, label string }
	acc := make(map[key]map[string][]float64)
	var order []key
	for _, jr := range results {
		for _, run := range jr.Result.Runs {
			k := key{run.VM, run.Label}
			m, ok := acc[k]
			if !ok {
				m = make(map[string][]float64)
				acc[k] = m
				order = append(order, k)
			}
			m[jr.Job.PolicySpec] = append(m[jr.Job.PolicySpec], run.Duration().Seconds())
		}
	}

	sort.Slice(order, func(i, j int) bool {
		if order[i].vm != order[j].vm {
			return order[i].vm < order[j].vm
		}
		return order[i].label < order[j].label
	})

	table := &TimesTable{Scenario: s, Policies: policies, Seeds: seeds}
	for _, k := range order {
		row := TimesRow{VM: k.vm, Label: k.label, ByPolicy: make(map[string]metrics.Summary)}
		for pol, vals := range acc[k] {
			row.ByPolicy[pol] = metrics.Summarize(vals)
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// SeriesRun holds the tmem-usage time series of one (policy, seed) run —
// the data behind Figures 4, 6, 8 and 10.
type SeriesRun struct {
	Scenario   *Scenario
	PolicySpec string
	Seed       uint64
	Result     *core.Result
}

// Series executes one run and returns its usage/target series.
func Series(s *Scenario, policySpec string, seed uint64) (*SeriesRun, error) {
	runs, err := SeriesSet(s, []string{policySpec}, seed, Options{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	return runs[0], nil
}

// SeriesSet runs one scenario under several policies with the same seed on
// the worker pool and returns the series runs in policy order — the panels
// of one series figure (e.g. Figure 6's greedy vs smart-alloc pair).
func SeriesSet(s *Scenario, policies []string, seed uint64, opt Options) ([]*SeriesRun, error) {
	jobs := make([]Job, len(policies))
	for i, pol := range policies {
		jobs[i] = Job{Scenario: s, PolicySpec: pol, Seed: seed}
	}
	results, err := opt.engine().Run(opt.Context, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*SeriesRun, len(results))
	for i, jr := range results {
		out[i] = &SeriesRun{Scenario: s, PolicySpec: jr.Job.PolicySpec, Seed: seed, Result: jr.Result}
	}
	return out, nil
}
