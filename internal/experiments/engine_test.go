package experiments

import (
	"context"
	"strings"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/workload"
)

// The tentpole determinism guarantee: a parallel Times sweep must produce
// a table byte-identical to the sequential (parallelism 1) sweep for the
// same seeds.
func TestParallelTimesIdenticalToSequential(t *testing.T) {
	policies := []string{"greedy", "static-alloc"}
	seeds := []uint64{11, 23}

	render := func(parallelism int) string {
		tab, err := TimesOpts(UsememScenario, policies, seeds, Options{Parallelism: parallelism})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		var sb strings.Builder
		if err := TimesReport(tab).Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// Race coverage: at least four core.Run simulations in flight at once
// (each with its own kernel, backend and RNG streams). Run with
// go test -race to prove concurrent runs share no mutable state.
func TestEngineConcurrentRunsRaceFree(t *testing.T) {
	s, err := BySlug("scale-4")
	if err != nil {
		t.Fatal(err)
	}
	jobs := Matrix([]*Scenario{s}, []string{"greedy", "static-alloc"}, []uint64{11, 23, 37})
	if len(jobs) < 4 {
		t.Fatalf("want >= 4 jobs, got %d", len(jobs))
	}
	results, err := (&Engine{Parallelism: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range results {
		if jr.Index != i || jr.Err != nil || jr.Result == nil {
			t.Fatalf("result %d: index=%d err=%v result=%v", i, jr.Index, jr.Err, jr.Result != nil)
		}
	}
}

// Results must come back merged by job index with every job reported to
// the progress callback exactly once.
func TestEngineOrderingAndProgress(t *testing.T) {
	jobs := Matrix([]*Scenario{UsememScenario}, []string{"greedy"}, []uint64{11, 23, 37, 51})
	var calls int
	var lastDone int
	eng := &Engine{Parallelism: 4, OnProgress: func(done, total int, j Job) {
		calls++
		if total != len(jobs) {
			t.Errorf("progress total = %d, want %d", total, len(jobs))
		}
		if done != lastDone+1 {
			t.Errorf("progress done = %d after %d (not serialized)", done, lastDone)
		}
		lastDone = done
	}}
	results, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) {
		t.Errorf("progress calls = %d, want %d", calls, len(jobs))
	}
	for i, jr := range results {
		if jr.Job.Seed != jobs[i].Seed || jr.Index != i {
			t.Errorf("result %d out of order: job seed %d index %d", i, jr.Job.Seed, jr.Index)
		}
	}
}

// A failing job must surface its error and stop dispatching later jobs.
func TestEngineFailFast(t *testing.T) {
	jobs := []Job{
		{Scenario: UsememScenario, PolicySpec: "bogus-policy", Seed: 11},
		{Scenario: UsememScenario, PolicySpec: "greedy", Seed: 11},
		{Scenario: UsememScenario, PolicySpec: "greedy", Seed: 23},
	}
	results, err := (&Engine{Parallelism: 1}).Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("bad policy did not fail the sweep")
	}
	if results[0].Err == nil {
		t.Error("failing job has no error")
	}
	for _, jr := range results[1:] {
		if jr.Err == nil && jr.Result == nil {
			t.Errorf("job %d neither ran nor was marked skipped", jr.Index)
		}
	}
}

// A pre-cancelled context must stop the sweep before running anything.
func TestEngineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := Matrix([]*Scenario{UsememScenario}, []string{"greedy"}, nil)
	results, err := (&Engine{Parallelism: 2}).Run(ctx, jobs)
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	ran := 0
	for _, jr := range results {
		if jr.Result != nil {
			ran++
		}
	}
	if ran == len(jobs) {
		t.Error("cancellation did not skip any job")
	}
}

func TestRegistryScaleFamily(t *testing.T) {
	a, err := BySlug("scale-8")
	if err != nil {
		t.Fatal(err)
	}
	b, err := BySlug("scale-8")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("scale-8 not memoized: repeated lookups return different scenarios")
	}
	cfg, err := a.Build(11, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.VMs) != 8 {
		t.Errorf("scale-8 VMs = %d, want 8", len(cfg.VMs))
	}
	if a.TmemBytes != 8*128*mem.MiB {
		t.Errorf("scale-8 tmem = %v, want 1GiB", a.TmemBytes)
	}
	for _, bad := range []string{"scale-", "scale-0", "scale-1", "scale-abc", "scale-9999"} {
		if _, err := BySlug(bad); err == nil {
			t.Errorf("BySlug(%q) did not fail", bad)
		}
	}
}

func TestRegistryOrderAndRegistration(t *testing.T) {
	all := All()
	if len(all) < 6 {
		t.Fatalf("registry holds %d scenarios, want >= 6", len(all))
	}
	wantFirst := []string{"s1", "s2", "usemem", "s3"}
	for i, slug := range wantFirst {
		if all[i].Slug != slug {
			t.Errorf("All()[%d] = %q, want %q (paper scenarios first)", i, all[i].Slug, slug)
		}
	}
	// A user scenario registered through NewScenario resolves by slug.
	custom := NewScenario(Scenario{
		Name:        "Custom",
		Slug:        "custom-test-scenario",
		Description: "registry test",
		TmemBytes:   64 * mem.MiB,
		Policies:    []string{"greedy"},
	}, UsememScenario.build)
	Register(custom)
	got, err := BySlug("custom-test-scenario")
	if err != nil || got != custom {
		t.Errorf("custom scenario lookup: %v, %v", got, err)
	}
	for _, s := range PaperScenarios() {
		if !s.Paper {
			t.Errorf("PaperScenarios returned non-paper %q", s.Slug)
		}
	}
}

// The scale scenario must terminate on its own stop condition with every
// VM completing the full 512 MiB traversal.
func TestScaleScenarioRuns(t *testing.T) {
	s, err := BySlug("scale-6")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOne(s, "smart-alloc:P=2", 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		vm := "VM" + string(rune('0'+i))
		if len(res.RunsFor(vm, workload.RunLabel(512*mem.MiB))) == 0 {
			t.Errorf("%s never completed a 512MiB traversal", vm)
		}
	}
	if len(res.VMs) != 6 {
		t.Errorf("VM results = %d, want 6", len(res.VMs))
	}
}

// The churn scenario must finish both analytics workloads and stop the
// usemem churners afterwards.
func TestChurnScenarioRuns(t *testing.T) {
	res, err := RunOne(ChurnScenario, "greedy", 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RunsFor("VM1", "analytics")) == 0 {
		t.Error("VM1 in-memory-analytics never completed")
	}
	if len(res.RunsFor("VM2", "graph")) == 0 {
		t.Error("VM2 graph-analytics never completed")
	}
	churnRuns := len(res.RunsFor("VM3", "")) + len(res.RunsFor("VM4", ""))
	if churnRuns == 0 {
		t.Error("usemem churners produced no traversals")
	}
}

func TestRegistryTableRender(t *testing.T) {
	var sb strings.Builder
	if err := RegistryTable().Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scale-6", "churn", "scale-<n>", "s1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("registry table missing %q:\n%s", want, sb.String())
		}
	}
}
