package experiments

import (
	"fmt"
	"sort"
	"sync"
)

// The scenario registry. Scenarios register once (package init for the
// built-ins, Register for user scenarios) and are resolved by slug; a
// Constructor additionally matches whole slug families ("scale-<n>") and
// builds parameterized instances on demand. The registry is safe for
// concurrent use so engine sweeps and user code can resolve scenarios from
// any goroutine.
var registry = struct {
	sync.RWMutex
	order  []string             // registration order, for All
	bySlug map[string]*Scenario // registered + memoized constructed scenarios
	ctors  []Constructor
}{bySlug: make(map[string]*Scenario)}

// Constructor builds scenarios for a parameterized slug family, e.g.
// "scale-<n>" → a scale scenario with n VMs. BySlug consults constructors
// after exact-slug lookup fails.
type Constructor struct {
	// Prefix is the slug prefix the constructor claims ("scale-").
	Prefix string
	// Usage documents the slug syntax ("scale-<n>").
	Usage string
	// Description is a one-line summary for listings.
	Description string
	// Build parses the full slug and returns the scenario (or an error for
	// malformed parameters).
	Build func(slug string) (*Scenario, error)
}

// Register adds a scenario to the registry. It panics on an empty slug or a
// duplicate registration — both are programming errors in an init path.
func Register(s *Scenario) {
	if s == nil || s.Slug == "" {
		panic("experiments: Register with nil scenario or empty slug")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.bySlug[s.Slug]; dup {
		panic(fmt.Sprintf("experiments: duplicate scenario slug %q", s.Slug))
	}
	registry.bySlug[s.Slug] = s
	registry.order = append(registry.order, s.Slug)
}

// RegisterConstructor adds a parameterized slug-family constructor.
func RegisterConstructor(c Constructor) {
	if c.Prefix == "" || c.Build == nil {
		panic("experiments: RegisterConstructor with empty prefix or nil Build")
	}
	registry.Lock()
	defer registry.Unlock()
	registry.ctors = append(registry.ctors, c)
}

// All returns every registered scenario in registration order (paper
// scenarios first, then the scale/churn extensions, then user
// registrations). Constructed-on-demand scenarios are not listed.
func All() []*Scenario {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Scenario, 0, len(registry.order))
	for _, slug := range registry.order {
		out = append(out, registry.bySlug[slug])
	}
	return out
}

// PaperScenarios returns the paper's four Table II scenarios in paper
// order.
func PaperScenarios() []*Scenario {
	var out []*Scenario
	for _, s := range All() {
		if s.Paper {
			out = append(out, s)
		}
	}
	return out
}

// Constructors returns the registered slug-family constructors, sorted by
// prefix, for listings.
func Constructors() []Constructor {
	registry.RLock()
	defer registry.RUnlock()
	out := append([]Constructor(nil), registry.ctors...)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// BySlug resolves a scenario by slug. Exact registrations win; otherwise
// the first constructor whose prefix matches builds the scenario, which is
// then memoized so repeated lookups return the same *Scenario.
func BySlug(slug string) (*Scenario, error) {
	registry.RLock()
	s, ok := registry.bySlug[slug]
	ctors := registry.ctors
	registry.RUnlock()
	if ok {
		return s, nil
	}
	for _, c := range ctors {
		if len(slug) > len(c.Prefix) && slug[:len(c.Prefix)] == c.Prefix {
			built, err := c.Build(slug)
			if err != nil {
				return nil, err
			}
			registry.Lock()
			// Another goroutine may have built it concurrently; keep the
			// first instance so pointer identity is stable.
			if prev, ok := registry.bySlug[slug]; ok {
				built = prev
			} else {
				registry.bySlug[slug] = built
			}
			registry.Unlock()
			return built, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown scenario %q", slug)
}

func init() {
	// Paper scenarios first (Table II order), then the scale extensions.
	Register(Scenario1)
	Register(Scenario2)
	Register(UsememScenario)
	Register(Scenario3)
	RegisterConstructor(scaleConstructor)
	Register(mustScale("scale-6"))
	Register(ChurnScenario)
	Register(KVHeavyScenario)
	// Multi-node cluster scenarios (remote tmem tiers).
	Register(Cluster2Scenario)
	Register(RemoteHeavyScenario)
	Register(NodeImbalanceScenario)
	// Compressed-tier scenario (in-RAM compression + dedup).
	Register(MemoryPressureScenario)
	// Durable-tier scenario (WAL + snapshots as the last-resort tier).
	Register(RestartSurvivorScenario)
	// Production-shaped scenarios (diurnal waves, noisy neighbors, leaks).
	Register(DiurnalScenario)
	Register(NoisyNeighborScenario)
	Register(LeakyScenario)
}
