package experiments

import (
	"strings"
	"testing"

	"smartmem/internal/mem"
	"smartmem/internal/tmem"
	"smartmem/internal/workload"
)

// TestTableII_ScenarioRegistry checks the scenario registry against the
// paper's Table II.
func TestTableII_ScenarioRegistry(t *testing.T) {
	if got := len(PaperScenarios()); got != 4 {
		t.Fatalf("paper scenario count = %d, want 4", got)
	}
	for _, s := range PaperScenarios() {
		cfg, err := s.Build(1, "greedy")
		if err != nil {
			t.Fatalf("%s: %v", s.Slug, err)
		}
		if len(cfg.VMs) != 3 {
			t.Errorf("%s: %d VMs, want 3 (Table II: 'In all cases, we deploy 3 VMs')", s.Slug, len(cfg.VMs))
		}
	}
	// Scenario 1: three 1 GB VMs, 1 GB tmem.
	cfg, _ := Scenario1.Build(1, "greedy")
	for _, vm := range cfg.VMs {
		if vm.RAMBytes != mem.GiB {
			t.Errorf("Scenario 1 %s RAM = %v, want 1GiB", vm.Name, vm.RAMBytes)
		}
	}
	if Scenario1.TmemBytes != mem.GiB {
		t.Errorf("Scenario 1 tmem = %v", Scenario1.TmemBytes)
	}
	// Scenario 2: 512 MB VMs, VM3 +30 s.
	cfg, _ = Scenario2.Build(1, "greedy")
	if cfg.VMs[2].StartDelay.Seconds() != 30 {
		t.Errorf("Scenario 2 VM3 delay = %v, want 30s", cfg.VMs[2].StartDelay)
	}
	for _, vm := range cfg.VMs {
		if vm.RAMBytes != 512*mem.MiB {
			t.Errorf("Scenario 2 %s RAM = %v", vm.Name, vm.RAMBytes)
		}
	}
	// Usemem: 384 MiB tmem (the only scenario with less than 1 GiB, §IV).
	if UsememScenario.TmemBytes != 384*mem.MiB {
		t.Errorf("usemem tmem = %v, want 384MiB", UsememScenario.TmemBytes)
	}
	// Scenario 3: VM3 has 1 GB and starts 30 s late.
	cfg, _ = Scenario3.Build(1, "greedy")
	if cfg.VMs[2].RAMBytes != mem.GiB || cfg.VMs[2].StartDelay.Seconds() != 30 {
		t.Errorf("Scenario 3 VM3 = %+v", cfg.VMs[2])
	}
	// Slug lookup.
	for _, s := range All() {
		got, err := BySlug(s.Slug)
		if err != nil || got != s {
			t.Errorf("BySlug(%q) = %v, %v", s.Slug, got, err)
		}
	}
	if _, err := BySlug("nope"); err == nil {
		t.Error("BySlug(nope) did not fail")
	}
}

// TestTableI_StatisticsInventory verifies that every statistic of the
// paper's Table I is observable through the implemented interfaces.
func TestTableI_StatisticsInventory(t *testing.T) {
	b := tmem.NewBackend(100, tmem.NewMetaStore(4096))
	pool := b.NewPool(1, tmem.Persistent)
	b.SetTarget(1, 1) // force one failure below

	// E_TMEM / S_TMEM.
	if st := b.Put(tmem.Key{Pool: pool, Object: 1, Index: 1}, nil); st != tmem.STmem {
		t.Fatalf("put = %v", st)
	}
	if st := b.Put(tmem.Key{Pool: pool, Object: 1, Index: 2}, nil); st != tmem.ETmem {
		t.Fatalf("put over target = %v", st)
	}
	ms := b.Sample(1)

	// node_info.free_tmem, node_info.vm_count.
	if ms.FreeTmem != 99 || ms.VMCount() != 1 {
		t.Errorf("free=%d vmcount=%d", ms.FreeTmem, ms.VMCount())
	}
	v, ok := ms.Find(1)
	if !ok {
		t.Fatal("vm 1 missing")
	}
	// vm_data_hyp[id].vm_id / tmem_used / mm_target / puts_total /
	// puts_succ.
	if v.ID != 1 || v.TmemUsed != 1 || v.MMTarget != 1 || v.PutsTotal != 2 || v.PutsSucc != 1 {
		t.Errorf("vm stat = %+v", v)
	}
	// mm_out[i].vm_id / mm_target.
	b.ApplyTargets([]tmem.TargetUpdate{{ID: 1, MMTarget: 42}})
	if b.Target(1) != 42 {
		t.Errorf("target = %d", b.Target(1))
	}
}

func TestBuildRejectsBadPolicy(t *testing.T) {
	if _, err := Scenario1.Build(1, "bogus"); err == nil {
		t.Error("bad policy accepted")
	}
	cfg, err := Scenario1.Build(1, "no-tmem")
	if err != nil || cfg.TmemEnabled {
		t.Errorf("no-tmem build: %v, enabled=%v", err, cfg.TmemEnabled)
	}
}

// The usemem scenario's cross-VM staging: VM3 starts only after VM1 and
// VM2 both attempt 640 MiB, and everything stops at VM3's 768 MiB attempt.
func TestUsememStaging(t *testing.T) {
	res, err := RunOne(UsememScenario, "greedy", 11)
	if err != nil {
		t.Fatal(err)
	}
	vm12End := func(vm string) float64 {
		runs := res.RunsFor(vm, workload.RunLabel(512*mem.MiB))
		if len(runs) == 0 {
			t.Fatalf("%s has no 512MiB run", vm)
		}
		return runs[0].End.Seconds()
	}
	vm3Runs := res.RunsFor("VM3", "")
	if len(vm3Runs) == 0 {
		t.Fatal("VM3 never ran")
	}
	vm3Start := vm3Runs[0].Start.Seconds()
	// VM3's first traversal must not start before both VM1 and VM2
	// completed their 512 MiB traversal (i.e. attempted 640 MiB).
	if vm3Start < vm12End("VM1") || vm3Start < vm12End("VM2") {
		t.Errorf("VM3 started at %.2fs, before VM1 (%.2fs) / VM2 (%.2fs) attempted 640MiB",
			vm3Start, vm12End("VM1"), vm12End("VM2"))
	}
	// VM3 must not complete a 768 MiB traversal (the scenario stops when
	// VM3 *attempts* it).
	if got := res.RunsFor("VM3", workload.RunLabel(768*mem.MiB)); len(got) != 0 {
		t.Errorf("VM3 completed a 768MiB traversal: %+v", got)
	}
}

// TestFig1_PutGetDataPath exercises the put/get data path of the paper's
// Figure 1 end to end through a scenario run: pages put by a pressured VM
// are retrievable, and both cleancache and frontswap observe traffic.
func TestFig1_PutGetDataPath(t *testing.T) {
	res, err := RunOne(UsememScenario, "greedy", 11)
	if err != nil {
		t.Fatal(err)
	}
	var sawPuts, sawHits bool
	for _, vm := range res.VMs {
		if vm.Kernel.PutsOK > 0 {
			sawPuts = true
		}
		if vm.Kernel.TmemHits > 0 {
			sawHits = true
		}
	}
	if !sawPuts || !sawHits {
		t.Errorf("put/get path unexercised: puts=%v hits=%v", sawPuts, sawHits)
	}
}

// TestFig2_ArchitectureWiring verifies the three-component architecture of
// Figure 2 is live in a run: hypervisor statistics flow through the TKM to
// the MM, and MM targets flow back and are enforced.
func TestFig2_ArchitectureWiring(t *testing.T) {
	res, err := RunOne(UsememScenario, "static-alloc", 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleTicks == 0 {
		t.Error("no statistics samples flowed (hypervisor→TKM→MM path dead)")
	}
	if res.MMBatchesSent == 0 {
		t.Error("no target batches sent (MM→TKM→hypervisor path dead)")
	}
	// static-alloc's equal split must be visible as the installed target:
	// 384 MiB / 3 VMs = 128 MiB = 2048 pages of 64 KiB.
	if got := res.Series.Get("target-VM2").Last().V; got != 2048 {
		t.Errorf("installed target = %v pages, want 2048", got)
	}
	// Enforcement: no VM may hold more than target + pre-tick grabs.
	for _, vm := range []string{"VM1", "VM2", "VM3"} {
		if peak := res.Series.Get("tmem-" + vm).Max(); peak > 0.8*float64(mem.PagesIn(384*mem.MiB, PageSize)) {
			t.Errorf("%s peaked at %v pages despite static split", vm, peak)
		}
	}
}

func TestTimesAggregatesAcrossSeeds(t *testing.T) {
	tab, err := Times(UsememScenario, []string{"greedy", "static-alloc"}, []uint64{11, 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	row, ok := tab.Row("VM1", workload.RunLabel(512*mem.MiB))
	if !ok {
		t.Fatalf("VM1 512MiB row missing; rows: %+v", tab.Rows)
	}
	for _, pol := range []string{"greedy", "static-alloc"} {
		s := row.ByPolicy[pol]
		if s.N != 2 {
			t.Errorf("%s summary N = %d, want 2 seeds", pol, s.N)
		}
	}
	if _, err := tab.Speedup("VM1", workload.RunLabel(512*mem.MiB), "static-alloc", "greedy"); err != nil {
		t.Errorf("Speedup: %v", err)
	}
	if _, err := tab.Speedup("VM9", "x", "a", "b"); err == nil {
		t.Error("missing-row speedup did not fail")
	}
	// Rendering shouldn't crash and should carry the figure name.
	var sb strings.Builder
	if err := TimesReport(tab).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Errorf("times report missing figure name:\n%s", sb.String())
	}
}

// The headline qualitative claims of the paper's Scenario 2 (Figure 5/6):
// greedy starves the late VM3; smart-alloc(P=6%) gives VM3 a fair share
// and beats greedy's mean; no-tmem is worst.
func TestScenario2PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run scenario comparison")
	}
	mean := func(policySpec string) (all, vm3 float64) {
		res, err := RunOne(Scenario2, policySpec, 11)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		n := 0
		for _, r := range res.Runs {
			d := r.Duration().Seconds()
			sum += d
			n++
			if r.VM == "VM3" {
				vm3 = d
			}
		}
		return sum / float64(n), vm3
	}
	greedyMean, greedyVM3 := mean("greedy")
	smartMean, smartVM3 := mean("smart-alloc:P=6")
	noTmemMean, _ := mean("no-tmem")

	if !(smartMean < greedyMean) {
		t.Errorf("smart-alloc mean %.1f not below greedy %.1f", smartMean, greedyMean)
	}
	if !(greedyMean < noTmemMean) {
		t.Errorf("greedy mean %.1f not below no-tmem %.1f", greedyMean, noTmemMean)
	}
	if !(smartVM3 < greedyVM3*0.95) {
		t.Errorf("smart VM3 %.1f not clearly below greedy VM3 %.1f (starvation not relieved)", smartVM3, greedyVM3)
	}
}

// Figure 6's series shape: under greedy VM3 cannot approach a fair share
// while VM1/VM2 run; under smart-alloc(P=6%) it can.
func TestFig6SeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run scenario comparison")
	}
	peakDuring := func(policySpec string) float64 {
		sr, err := Series(Scenario2, policySpec, 11)
		if err != nil {
			t.Fatal(err)
		}
		// Peak of VM3's usage before VM1 finishes.
		vm1 := sr.Result.RunsFor("VM1", "")
		end := vm1[0].End.Seconds()
		s := sr.Result.Series.Get("tmem-VM3")
		peak := 0.0
		for _, p := range s.Points() {
			if p.T <= end && p.V > peak {
				peak = p.V
			}
		}
		return peak
	}
	fair := float64(mem.PagesIn(Scenario2.TmemBytes, PageSize)) / 3
	greedyPeak := peakDuring("greedy")
	smartPeak := peakDuring("smart-alloc:P=6")
	if greedyPeak > 0.5*fair {
		t.Errorf("greedy VM3 peak %.0f pages while VM1 active; expected starvation (fair=%.0f)", greedyPeak, fair)
	}
	if smartPeak < 0.6*fair {
		t.Errorf("smart VM3 peak %.0f pages; expected a fair-ish share (fair=%.0f)", smartPeak, fair)
	}
}

func TestScenarioTableRender(t *testing.T) {
	var sb strings.Builder
	if err := ScenarioTable().Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table II", "Scenario 1", "Usemem", "384MiB"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

func TestRenderSeriesOutput(t *testing.T) {
	sr, err := Series(UsememScenario, "greedy", 11)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderSeries(&sb, sr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 8", "tmem-VM1", "legend"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("series render missing %q:\n%s", want, sb.String())
		}
	}
	// no-tmem renders a placeholder.
	sr2, err := Series(UsememScenario, "no-tmem", 11)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := RenderSeries(&sb, sr2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no-tmem run") {
		t.Errorf("no-tmem placeholder missing: %q", sb.String())
	}
}
