package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"smartmem/internal/core"
)

// memoFormatVersion versions the whole memoization contract: the
// fingerprint input layout below AND the cached-result binary encoding in
// memo.go. Bump it whenever either changes (new Config field that affects
// runs, new Result field, reordered encoding) — old cache entries then miss
// on key and are recomputed; nothing is ever migrated in place.
const memoFormatVersion = 1

// Fingerprint identifies a deterministic run: the SHA-256 of (format
// version, scenario slug, policy spec, seed, normalized core.Config). Two
// jobs with equal fingerprints produce byte-identical core.Results, because
// the simulator is a pure function of its normalized config.
type Fingerprint [sha256.Size]byte

// String returns the lowercase hex form (the cache key suffix).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// JobFingerprint computes the memoization key of one sweep cell. It builds
// the scenario's config (Build/BuildCluster are required to be cheap and
// side-effect free) and hashes every plain field that shapes the run.
//
// Two deliberate exclusions, both justified by byte-identity proofs
// elsewhere in the repo:
//   - ClusterConfig.Parallel: the parallel cluster runtime is
//     byte-identical to the sequential one (PR 9's differential matrix), so
//     a cached result is valid under either mode.
//   - Workload internals: workloads are identified by Workload.Name() plus
//     the scenario slug. Scenario constructors own their workload
//     parameters, so (slug, VM shape, workload name) pins them; anyone
//     editing a workload's constants inside an existing scenario must bump
//     memoFormatVersion (or use a fresh slug) to invalidate cached runs.
func JobFingerprint(j Job) (Fingerprint, error) {
	if j.Scenario == nil {
		return Fingerprint{}, fmt.Errorf("experiments: cannot fingerprint a job with no scenario")
	}
	hw := fpWriter{h: sha256.New()}
	hw.str("smartmem-memo")
	hw.u64(memoFormatVersion)
	hw.str(j.Scenario.Slug)
	hw.str(j.PolicySpec)
	hw.u64(j.Seed)

	if j.Scenario.IsCluster() {
		cc, err := j.Scenario.BuildCluster(j.Seed, j.PolicySpec)
		if err != nil {
			return Fingerprint{}, err
		}
		nodes, err := cc.NormalizedNodes()
		if err != nil {
			return Fingerprint{}, err
		}
		hw.str("cluster")
		hw.bool(cc.RemoteTmem)
		hw.u64(uint64(len(nodes)))
		for _, n := range nodes {
			hw.config(n)
		}
	} else {
		cfg, err := j.Scenario.Build(j.Seed, j.PolicySpec)
		if err != nil {
			return Fingerprint{}, err
		}
		cfg, err = cfg.Normalized()
		if err != nil {
			return Fingerprint{}, err
		}
		hw.str("node")
		hw.config(cfg)
	}

	var f Fingerprint
	hw.h.Sum(f[:0])
	return f, nil
}

// fpWriter feeds length-prefixed primitives into a hash. Every value is
// written with an unambiguous framing (fixed-width integers, u64
// length-prefixed strings) so distinct field sequences can never collide by
// concatenation.
type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *fpWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *fpWriter) i64(v int64) { w.u64(uint64(v)) }

func (w *fpWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *fpWriter) bool(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *fpWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

// config hashes every plain (hashable) field of a normalized Config.
// Function- and pointer-valued fields (Policy, Workload, Stop, OnMilestone,
// TransportMM, DurableBlob) cannot be hashed by value; they are represented
// by their names / presence, which the scenario slug pins (see
// JobFingerprint).
func (w *fpWriter) config(c core.Config) {
	w.i64(int64(c.PageSize))
	w.i64(int64(c.TmemBytes))
	w.bool(c.TmemEnabled)
	w.str(c.PolicyName())
	w.i64(int64(c.SampleInterval))
	w.i64(int64(c.DiskReadService))
	w.i64(int64(c.DiskWriteService))
	w.f64(c.DiskJitter)
	w.u64(c.Seed)
	w.i64(int64(c.Limit))
	w.i64(int64(c.StartJitter))
	w.str(string(c.Store))
	w.i64(int64(c.CompressBytes))
	w.str(c.CompressCodec)
	w.bool(c.DurableBlob != nil)
	w.bool(c.Cleancache)
	w.bool(c.NonExclusiveFrontswap)
	w.u64(uint64(len(c.VMs)))
	for _, vm := range c.VMs {
		w.i64(int64(vm.ID))
		w.str(vm.Name)
		w.i64(int64(vm.RAMBytes))
		w.i64(int64(vm.KernelReserveBytes))
		w.i64(int64(vm.StartDelay))
		if vm.Workload != nil {
			w.str(vm.Workload.Name())
		} else {
			w.str("")
		}
	}
}
