package experiments

import (
	"fmt"
	"io"
	"strings"

	"smartmem/internal/policy"
	"smartmem/internal/report"
)

// TimesReport renders a TimesTable in the layout of the paper's
// running-time figures: one row per VM×run, one column per policy.
func TimesReport(t *TimesTable) *report.Table {
	tb := &report.Table{
		Title:   fmt.Sprintf("%s — %s running times (virtual seconds, mean±std over %d seeds)", t.Scenario.TimesFigure, t.Scenario.Name, len(t.Seeds)),
		Headers: append([]string{"vm", "run"}, t.Policies...),
	}
	for _, row := range t.Rows {
		cells := []string{row.VM, row.Label}
		for _, pol := range t.Policies {
			cells = append(cells, report.FormatSummary(row.ByPolicy[pol]))
		}
		tb.AddRow(cells...)
	}
	return tb
}

// RenderSeries draws the per-VM tmem usage chart of one run (the paper's
// Figures 4/6/8/10 panels), plus the target series for the VM the paper
// annotates (VM3).
func RenderSeries(w io.Writer, sr *SeriesRun) error {
	set := sr.Result.Series
	var names []string
	for _, vm := range []string{"VM1", "VM2", "VM3"} {
		if set.Has("tmem-" + vm) {
			names = append(names, "tmem-"+vm)
		}
	}
	if set.Has("target-VM3") {
		names = append(names, "target-VM3")
	}
	if len(names) == 0 {
		_, err := fmt.Fprintln(w, "(no tmem series: no-tmem run)")
		return err
	}
	c := report.Chart{
		Title: fmt.Sprintf("%s — %s tmem usage, policy %s (seed %d)",
			sr.Scenario.SeriesFigure, sr.Scenario.Name, sr.PolicySpec, sr.Seed),
		YLabel: "pages",
	}
	return c.Render(w, set, names)
}

// ScenarioTable renders Table II: the paper's benchmarking scenarios.
func ScenarioTable() *report.Table {
	tb := &report.Table{
		Title:   "Table II — List of scenarios used for benchmarking (3 VMs each)",
		Headers: []string{"scenario", "tmem", "policies", "description"},
	}
	for _, s := range PaperScenarios() {
		tb.AddRow(s.Name, s.TmemBytes.String(), fmt.Sprintf("%d", len(s.Policies)), s.Description)
	}
	return tb
}

// RegistryTable renders the full scenario registry — paper scenarios,
// extensions (including the multi-node cluster scenarios), and any user
// registrations — plus the parameterized slug families (constructors).
func RegistryTable() *report.Table {
	tb := &report.Table{
		Title:   "Scenario registry",
		Headers: []string{"slug", "name", "tmem", "kind", "description"},
	}
	for _, s := range All() {
		kind := "extension"
		switch {
		case s.Paper:
			kind = "paper"
		case s.IsCluster():
			kind = "cluster"
		}
		tb.AddRow(s.Slug, s.Name, s.TmemBytes.String(), kind, s.Description)
	}
	for _, c := range Constructors() {
		tb.AddRow(c.Usage, "(parameterized)", "", "", c.Description)
	}
	return tb
}

// PolicyTable renders the policy registry for the commands' -list-policies
// flags.
func PolicyTable() *report.Table {
	tb := &report.Table{
		Title:   "Policy registry",
		Headers: []string{"spec", "aliases", "description"},
	}
	for _, e := range policy.All() {
		tb.AddRow(e.Usage, strings.Join(e.Aliases, ", "), e.Description)
	}
	return tb
}
