package experiments

import (
	"smartmem/internal/core"
	"smartmem/internal/durable"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/workload"
)

// RestartSurvivorScenario exercises the durable tier under real demotion
// pressure: three usemem VMs contend for a deliberately undersized pool,
// so the PFRA pushes persistent pages down the tier chain and the WAL
// absorbs everything the RAM tiers cannot hold. Each build gets a fresh
// in-memory blob store (builds run concurrently under the engine); callers
// wanting the crash-survival half of the story reopen the run's
// Config.DurableBlob with durable.Open afterwards — the journal is left in
// its crash-consistent state on purpose (core closes it without the
// graceful compaction).
var RestartSurvivorScenario = NewScenario(Scenario{
	Name: "Restart Survivor",
	Slug: "restart-survivor",
	Description: "3 usemem VMs (512MB RAM each) vs 96MiB of tmem with a " +
		"durable WAL tier as the last resort: overflow pages are journaled " +
		"instead of failing, and the journal reopens crash-consistent after " +
		"the run. Stops after 2 full traversals per VM.",
	TmemBytes: 96 * mem.MiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=2",
	},
	TimesFigure:  "Restart-survivor",
	SeriesFigure: "Restart-survivor series",
	RunLabels: []string{
		workload.RunLabel(128 * mem.MiB), workload.RunLabel(256 * mem.MiB),
		workload.RunLabel(384 * mem.MiB), workload.RunLabel(512 * mem.MiB),
	},
}, func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
	cfg := usememClusterNode(seed, pol, tmemOn, 3, 96*mem.MiB, 2)
	if tmemOn {
		cfg.DurableBlob = durable.NewMemStore()
	}
	return cfg
})
