package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"smartmem/internal/metrics"
)

// Machine-readable exports of the figure data, shared by the CLIs: the
// same tables the text reports render, serialized for re-checking and
// downstream tooling (the run-level event/result serializers live in the
// public sinks package).

// WriteTimesCSV writes a times table as CSV: one row per VM×run, one
// mean-seconds column per policy.
func WriteTimesCSV(w io.Writer, t *TimesTable) error {
	if _, err := fmt.Fprintf(w, "vm,run,%s\n", strings.Join(t.Policies, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := []string{row.VM, row.Label}
		for _, pol := range t.Policies {
			cells = append(cells, fmt.Sprintf("%.2f", row.ByPolicy[pol].Mean))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimesJSON writes a times table as one indented JSON document,
// including the full summary (mean, std, n, min, max) per cell rather than
// the CSV's means only.
func WriteTimesJSON(w io.Writer, t *TimesTable) error {
	doc := map[string]any{
		"schema":   "smartmem/times@1",
		"scenario": t.Scenario.Slug,
		"figure":   t.Scenario.TimesFigure,
		"policies": t.Policies,
		"seeds":    t.Seeds,
	}
	rows := make([]map[string]any, 0, len(t.Rows))
	for _, row := range t.Rows {
		byPolicy := make(map[string]any, len(row.ByPolicy))
		for pol, s := range row.ByPolicy {
			byPolicy[pol] = summaryDoc(s)
		}
		rows = append(rows, map[string]any{
			"vm": row.VM, "run": row.Label, "by_policy": byPolicy,
		})
	}
	doc["rows"] = rows
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func summaryDoc(s metrics.Summary) map[string]any {
	return map[string]any{
		"n": s.N, "mean": s.Mean, "std": s.Std, "min": s.Min, "max": s.Max,
	}
}
