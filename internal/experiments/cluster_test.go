package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestClusterScenariosRegistered(t *testing.T) {
	for _, slug := range []string{"cluster-2", "remote-heavy", "node-imbalance"} {
		s, err := BySlug(slug)
		if err != nil {
			t.Fatalf("BySlug(%q): %v", slug, err)
		}
		if !s.IsCluster() {
			t.Errorf("%s not marked as cluster scenario", slug)
		}
		if _, err := s.Build(11, "greedy"); err == nil {
			t.Errorf("%s.Build did not reject the single-node path", slug)
		}
		if _, err := s.BuildCluster(11, "greedy"); err != nil {
			t.Errorf("%s.BuildCluster: %v", slug, err)
		}
	}
	// Single-node scenarios reject the cluster path symmetrically.
	s1, err := BySlug("s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.BuildCluster(11, "greedy"); err == nil {
		t.Error("s1.BuildCluster did not reject the cluster path")
	}
}

// The acceptance gate for the cluster runtime: a cluster scenario executed
// through the experiments engine is exactly reproducible run over run.
func TestClusterScenarioDeterministicUnderEngine(t *testing.T) {
	s, err := BySlug("cluster-2")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []JobResult {
		results, err := RunMatrix([]*Scenario{s}, []string{"smart-alloc:P=2"}, []uint64{11}, Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(), run()
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("result counts: %d, %d", len(a), len(b))
	}
	ra, rb := a[0].Result, b[0].Result
	if ra.EndTime != rb.EndTime {
		t.Errorf("end times differ: %v vs %v", ra.EndTime, rb.EndTime)
	}
	if !reflect.DeepEqual(ra.Runs, rb.Runs) {
		t.Errorf("runs differ:\n%v\n%v", ra.Runs, rb.Runs)
	}
	if !reflect.DeepEqual(ra.Nodes, rb.Nodes) {
		t.Errorf("node summaries differ:\n%+v\n%+v", ra.Nodes, rb.Nodes)
	}
	// Sanity: remote tmem actually flowed between the nodes.
	if len(ra.Nodes) != 2 || ra.Nodes[0].Remote == nil || ra.Nodes[0].Remote.PutsOK == 0 {
		t.Errorf("cluster-2 saw no remote traffic: %+v", ra.Nodes)
	}
	for _, rec := range ra.Runs {
		if !strings.HasPrefix(rec.VM, "n0/") && !strings.HasPrefix(rec.VM, "n1/") {
			t.Errorf("run record %q lacks node prefix", rec.VM)
		}
	}
}

// remote-heavy's reason to exist: with remote tmem the donor node's
// overflow is absorbed by the peer instead of hitting the swap disk.
func TestRemoteHeavyAvoidsDisk(t *testing.T) {
	s, err := BySlug("remote-heavy")
	if err != nil {
		t.Fatal(err)
	}
	withRemote, err := RunOne(s, "greedy", 11)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := RunOne(s, "no-tmem", 11)
	if err != nil {
		t.Fatal(err)
	}
	donor := withRemote.Nodes[0]
	if donor.Remote == nil || donor.Remote.PutsOK == 0 {
		t.Fatalf("donor shipped nothing: %+v", donor)
	}
	if donor.DiskOps >= baseline.Nodes[0].DiskOps {
		t.Errorf("remote tmem did not reduce donor disk traffic: %d vs %d",
			donor.DiskOps, baseline.Nodes[0].DiskOps)
	}
}

func TestRegistryTableListsClusterScenarios(t *testing.T) {
	var sb strings.Builder
	if err := RegistryTable().Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cluster-2", "remote-heavy", "node-imbalance", "cluster"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("registry table missing %q:\n%s", want, sb.String())
		}
	}
}

func TestPolicyTableListsBuiltins(t *testing.T) {
	var sb strings.Builder
	if err := PolicyTable().Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("policy table missing %q", want)
		}
	}
}
