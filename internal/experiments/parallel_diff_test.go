package experiments

import (
	"fmt"
	"strings"
	"testing"

	"smartmem/internal/core"
)

// buildClusterN tiles a stock 2-node cluster scenario into an N-node ring
// by building it N/2 times and concatenating the node configs. Each tile
// comes from its own BuildCluster call, so every node keeps its own stop
// flag and milestone counters (the scenarios allocate them per build —
// required for parallel execution and for correct per-tile stop behavior).
func buildClusterN(t *testing.T, slug string, seed uint64, pol string, nodes int) core.ClusterConfig {
	t.Helper()
	s, err := BySlug(slug)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := s.BuildCluster(seed, pol)
	if err != nil {
		t.Fatal(err)
	}
	per := len(cc.Nodes)
	if nodes%per != 0 {
		t.Fatalf("cannot tile %d-node scenario %s to %d nodes", per, slug, nodes)
	}
	for len(cc.Nodes) < nodes {
		next, err := s.BuildCluster(seed, pol)
		if err != nil {
			t.Fatal(err)
		}
		cc.Nodes = append(cc.Nodes, next.Nodes...)
	}
	return cc
}

// resultFingerprint renders every deterministic field of a cluster Result
// to one canonical byte string: the structured fields as a printf dump and
// the series set in its CSV form.
func resultFingerprint(t *testing.T, res *core.Result) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "policy=%s seed=%d end=%d hitlimit=%v ticks=%d batches=%d diskops=%d diskbusy=%d\n",
		res.PolicyName, res.Seed, res.EndTime, res.HitLimit,
		res.SampleTicks, res.MMBatchesSent, res.DiskOps, res.DiskBusy)
	for _, r := range res.Runs {
		fmt.Fprintf(&sb, "run %s %s %d %d\n", r.VM, r.Label, r.Start, r.End)
	}
	for _, v := range res.VMs {
		fmt.Fprintf(&sb, "vm %s %d kernel=%+v tmem=%+v\n", v.Name, v.ID, v.Kernel, v.Tmem)
	}
	for _, n := range res.Nodes {
		fmt.Fprintf(&sb, "node %s %s ticks=%d batches=%d diskops=%d diskbusy=%d",
			n.Name, n.PolicyName, n.SampleTicks, n.MMBatchesSent, n.DiskOps, n.DiskBusy)
		if n.Remote != nil {
			fmt.Fprintf(&sb, " remote=%+v", *n.Remote)
		}
		if n.Compressed != nil {
			fmt.Fprintf(&sb, " compressed=%+v", *n.Compressed)
		}
		fmt.Fprintln(&sb)
	}
	if err := res.Series.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestParallelMatchesSequentialAcrossScenarios is the acceptance matrix for
// the parallel cluster runtime: seeds {7, 11, 42} × nodes {2, 4, 8} × the
// three stock cluster scenarios, each compared byte-for-byte against the
// sequential oracle.
func TestParallelMatchesSequentialAcrossScenarios(t *testing.T) {
	seeds := []uint64{7, 11, 42}
	nodeCounts := []int{2, 4, 8}
	slugs := []string{"cluster-2", "remote-heavy", "node-imbalance"}
	if testing.Short() {
		seeds = []uint64{7}
		nodeCounts = []int{2, 4}
		slugs = []string{"cluster-2"}
	}
	for _, slug := range slugs {
		for _, nodes := range nodeCounts {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/nodes-%d/seed-%d", slug, nodes, seed), func(t *testing.T) {
					run := func(parallel bool) string {
						cc := buildClusterN(t, slug, seed, "smart-alloc:P=2", nodes)
						cc.Parallel = parallel
						res, err := core.RunCluster(cc)
						if err != nil {
							t.Fatalf("parallel=%v: %v", parallel, err)
						}
						return resultFingerprint(t, res)
					}
					seq := run(false)
					par := run(true)
					if seq != par {
						t.Errorf("parallel result diverged from sequential oracle\nseq:\n%s\npar:\n%s",
							head(seq, 40), head(par, 40))
					}
				})
			}
		}
	}
}

// head returns the first n lines of s (fingerprints run to thousands of
// series rows; the leading diff is what matters).
func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
