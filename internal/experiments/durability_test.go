package experiments

import (
	"testing"

	"smartmem/internal/core"
	"smartmem/internal/durable"
	"smartmem/internal/tmem"
)

// The restart-survivor scenario must actually overflow into the durable
// tier, account that traffic in the result, and leave a journal that
// reopens crash-consistent with the same live state the run reported.
func TestRestartSurvivorDurableTier(t *testing.T) {
	cfg, err := RestartSurvivorScenario.Build(11, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DurableBlob == nil {
		t.Fatal("build did not attach a durable blob store")
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Durable == nil {
		t.Fatal("result has no durable summary")
	}
	d := res.Durable
	if d.Tier.Puts == 0 || d.Tier.PutsOK == 0 {
		t.Fatalf("no demotion traffic reached the durable tier: %+v", d.Tier)
	}
	if d.Log.Appends == 0 {
		t.Fatalf("no WAL appends recorded: %+v", d.Log)
	}
	if d.Tier.Errors != 0 {
		t.Fatalf("durable tier degraded mid-run: %+v", d.Tier)
	}

	// Reopen the blob store the run wrote: the recovered mirror must agree
	// with the end-of-run gauges (core closes the log crash-style, so this
	// is a true WAL replay, not a warm start).
	l, err := durable.Open(durable.Options{
		Blob:          cfg.DurableBlob,
		PageSize:      int(cfg.PageSize),
		Fsync:         durable.FsyncOff,
		InlineCompact: true,
	})
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer l.Close()
	if ri := l.Recovery(); ri.CleanShutdown {
		t.Error("run end should look like a crash to the journal, not a clean shutdown")
	}
	st := l.Stats()
	if st.PagesLive != d.Log.PagesLive || st.BytesLive != d.Log.BytesLive {
		t.Fatalf("recovered state %d pages / %d bytes, run reported %d / %d",
			st.PagesLive, st.BytesLive, d.Log.PagesLive, d.Log.BytesLive)
	}
	// Guest puts carry no materialized contents in the simulation (the
	// store synthesizes them), so the journal is a key-accurate, zero-byte
	// mirror here; the kvd daemon path covers real page bytes.
	var counted uint64
	l.RangePages(func(_ tmem.Key, data []byte) bool {
		counted++
		return true
	})
	if counted != st.PagesLive {
		t.Fatalf("mirror holds %d pages, gauge says %d", counted, st.PagesLive)
	}
}

// Two same-seed runs of the durable scenario must agree on every durable
// counter: the tier may not perturb the deterministic schedule.
func TestRestartSurvivorDeterminism(t *testing.T) {
	run := func() *core.Result {
		cfg, err := RestartSurvivorScenario.Build(7, "smart-alloc:P=2")
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *a.Durable != *b.Durable {
		t.Fatalf("durable summaries diverge across same-seed runs:\n%+v\n%+v", *a.Durable, *b.Durable)
	}
	if a.EndTime != b.EndTime || len(a.Runs) != len(b.Runs) {
		t.Fatalf("schedule diverged: end %v vs %v, %d vs %d runs",
			a.EndTime, b.EndTime, len(a.Runs), len(b.Runs))
	}
}
