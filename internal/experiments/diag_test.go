package experiments

import (
	"fmt"
	"os"
	"testing"
)

// Diagnostic: print per-VM runtimes for each scenario and policy. Run with
// SMARTMEM_DIAG=1 (optionally SMARTMEM_DIAG_SCN=<slug>).
func TestDiagScenarioShapes(t *testing.T) {
	if os.Getenv("SMARTMEM_DIAG") == "" {
		t.Skip("diagnostic; set SMARTMEM_DIAG=1 to run")
	}
	only := os.Getenv("SMARTMEM_DIAG_SCN")
	for _, s := range All() {
		if only != "" && s.Slug != only {
			continue
		}
		fmt.Printf("==== %s (tmem %s) ====\n", s.Name, s.TmemBytes)
		for _, pol := range s.Policies {
			res, err := RunOne(s, pol, 11)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Slug, pol, err)
			}
			fmt.Printf("  %-22s end=%7.1fs ", pol, res.EndTime.Seconds())
			for _, r := range res.Runs {
				fmt.Printf(" %s/%s=%.1fs", r.VM, r.Label, r.Duration().Seconds())
			}
			fmt.Println()
		}
	}
}
