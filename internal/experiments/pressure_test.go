package experiments

import (
	"testing"

	"smartmem/internal/core"
)

// TestMemoryPressureDefersDiskSwap pins the compressed tier's headline
// effect (ISSUE 6 acceptance): on the memory-pressure workload, attaching
// the tier measurably cuts host-disk traffic versus the identical run
// without it, and the dedup-friendly usemem pages compress at >= 2x.
func TestMemoryPressureDefersDiskSwap(t *testing.T) {
	build := func(compress bool) *core.Result {
		cfg, err := MemoryPressureScenario.Build(11, "smart-alloc:P=2")
		if err != nil {
			t.Fatal(err)
		}
		if !compress {
			cfg.CompressBytes = 0
		}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	with := build(true)
	without := build(false)

	if without.DiskOps == 0 {
		t.Fatal("baseline run did no disk ops; the scenario is not contended")
	}
	if with.Compressed == nil {
		t.Fatal("compressed run reported no compressed-tier stats")
	}
	if with.Compressed.PutsOK == 0 {
		t.Fatal("compressed tier absorbed no overflow")
	}
	// "Drop measurably": require at least a 20% cut; the actual margin is
	// far larger (the tier absorbs demotions that otherwise swap to the
	// guests' virtual disks).
	if with.DiskOps*10 >= without.DiskOps*8 {
		t.Errorf("disk ops with tier = %d, without = %d; want >= 20%% reduction",
			with.DiskOps, without.DiskOps)
	}
	if ratio := with.Compressed.Ratio(); ratio < 2 {
		t.Errorf("compression ratio = %.2f, want >= 2 on the dedup-friendly workload", ratio)
	}
	t.Logf("disk ops: %d -> %d; ratio %.1fx; tier puts ok %d, dedup hits %d",
		without.DiskOps, with.DiskOps, with.Compressed.Ratio(),
		with.Compressed.PutsOK, with.Compressed.DedupHits)
}

// TestMemoryPressureDeterministic guards the golden: two identical builds
// must produce identical end states (the tier and the effective-capacity
// plumbing add no nondeterminism to the simulation).
func TestMemoryPressureDeterministic(t *testing.T) {
	run := func() *core.Result {
		cfg, err := MemoryPressureScenario.Build(11, "smart-alloc:P=2")
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.EndTime != b.EndTime || a.DiskOps != b.DiskOps || a.SampleTicks != b.SampleTicks {
		t.Fatalf("nondeterministic run: end %v/%v disk %d/%d ticks %d/%d",
			a.EndTime, b.EndTime, a.DiskOps, b.DiskOps, a.SampleTicks, b.SampleTicks)
	}
	if *a.Compressed != *b.Compressed {
		// Codec timing counters are zero in the simulator (nil page data
		// short-circuits to the zero blob), so the whole struct compares.
		t.Fatalf("nondeterministic tier stats:\n%+v\n%+v", *a.Compressed, *b.Compressed)
	}
}
