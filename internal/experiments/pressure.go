package experiments

import (
	"smartmem/internal/core"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/workload"
)

// MemoryPressureScenario is the compressed-tier showcase: the remote-heavy
// donor node — three usemem VMs heavily oversubscribing 96 MiB of tmem —
// run single-node with a 64 MiB compressed tier attached instead of a peer.
// Demotions that the plain scale recipe sends to the guests' virtual disks
// compress and dedup in RAM (usemem's pages are highly repetitive, so the
// tier's effective capacity multiplies), and the policies allocate against
// the amplified capacity through MemStats.EffectiveTmem. Comparing its disk
// ops against the same build with CompressBytes zeroed isolates the
// compression win; TestMemoryPressureDefersDiskSwap pins it.
var MemoryPressureScenario = NewScenario(Scenario{
	Name: "Memory Pressure",
	Slug: "memory-pressure",
	Description: "3 usemem VMs (512MB RAM each) vs 96MiB of tmem plus a " +
		"64MiB compressed+deduped in-RAM tier: demotions compress instead of " +
		"hitting the virtual disk. Stops after 2 full traversals per VM.",
	TmemBytes: 96 * mem.MiB,
	Policies: []string{
		"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc:P=2",
	},
	TimesFigure:  "Memory-pressure",
	SeriesFigure: "Memory-pressure series",
	RunLabels: []string{
		workload.RunLabel(128 * mem.MiB), workload.RunLabel(256 * mem.MiB),
		workload.RunLabel(384 * mem.MiB), workload.RunLabel(512 * mem.MiB),
	},
}, func(seed uint64, pol policy.Policy, tmemOn bool) core.Config {
	cfg := usememClusterNode(seed, pol, tmemOn, 3, 96*mem.MiB, 2)
	if tmemOn {
		cfg.CompressBytes = 64 * mem.MiB
	}
	return cfg
})
