package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"smartmem/internal/core"
)

// RunEvent is one lifecycle event of a node run (see core.Event),
// re-exported so sweep callers can receive event streams without importing
// core directly.
type RunEvent = core.Event

// Job is one (scenario, policy, seed) cell of an experiment sweep — the
// unit of work the engine schedules. Every figure and table of the paper's
// evaluation decomposes into a list of Jobs.
type Job struct {
	Scenario   *Scenario
	PolicySpec string
	Seed       uint64
}

func (j Job) String() string {
	slug := "?"
	if j.Scenario != nil {
		slug = j.Scenario.Slug
	}
	return fmt.Sprintf("%s/%s seed %d", slug, j.PolicySpec, j.Seed)
}

// JobResult pairs a job with its outcome. Index is the job's position in
// the submitted slice; the engine returns results merged by index, never by
// completion order, so parallel sweeps aggregate identically to sequential
// ones.
type JobResult struct {
	Job    Job
	Index  int
	Result *core.Result
	Err    error
}

// ErrSkipped marks jobs that were never dispatched because an earlier job
// failed (fail-fast) or the caller's context was cancelled. Test with
// errors.Is on JobResult.Err to distinguish skipped jobs from failed ones
// in a partial result set.
var ErrSkipped = errors.New("experiments: job skipped after earlier failure or cancellation")

// SchedulerMode selects how the engine hands jobs to its workers.
type SchedulerMode int

const (
	// SchedulerSteal (the zero value) distributes jobs longest-expected-
	// first over per-worker deques; an idle worker steals from its peers.
	// Long cells (no-tmem baselines, cluster scenarios) start early instead
	// of straggling at the tail, so a mixed sweep finishes when the longest
	// single cell does, not when an unlucky worker's static share does.
	// Results are byte-identical to any other mode: scheduling changes only
	// wall-clock order, and results merge by index.
	SchedulerSteal SchedulerMode = iota
	// SchedulerStatic is the historical fixed channel feed (jobs dispatched
	// in submission order to whichever worker asks next). Kept as the
	// baseline leg of BenchmarkSweep and as a fallback knob.
	SchedulerStatic
)

// Engine executes experiment jobs on a worker pool. The zero value is
// usable: it runs with runtime.NumCPU() workers, the work-stealing
// scheduler, no cache and no progress reporting. Each job is an independent
// core.Run with its own simulation kernel and RNG streams, so jobs are
// race-free by construction (verified by go test -race).
type Engine struct {
	// Parallelism is the number of concurrent workers; values <= 0 select
	// runtime.NumCPU(). Parallelism 1 reproduces the historical sequential
	// behaviour exactly (jobs run in submission order, whatever the
	// Scheduler setting).
	Parallelism int
	// Scheduler selects the dispatch strategy; see SchedulerMode.
	Scheduler SchedulerMode
	// Cache, when non-nil, memoizes completed runs by fingerprint: a cell
	// whose fingerprint is cached returns the stored result without
	// simulating, byte-identically (the simulator is deterministic).
	// Successful runs are stored back best-effort. The cache is bypassed
	// while OnEvent is set — a memo hit replays no lifecycle events, so
	// event-stream consumers always watch real runs.
	Cache *Memo
	// OnProgress, when non-nil, is invoked after every job completes with
	// the number of finished jobs, the total, and the job that just
	// finished. Calls are serialized by the engine; the callback does not
	// need to be concurrency-safe.
	OnProgress func(done, total int, j Job)
	// OnEvent, when non-nil, receives every lifecycle event of every
	// job's run (see core.Event), tagged with the job that produced it.
	// Calls are serialized across workers; the callback does not need to
	// be concurrency-safe. Event order is deterministic within a job but
	// jobs interleave by completion timing.
	OnEvent func(j Job, e core.Event)
	// ClusterParallel selects whether cluster-scenario jobs run on the
	// parallel cluster runtime (core.ClusterConfig.Parallel — one kernel
	// per node, results byte-identical to sequential). Auto spends spare
	// cores on per-run parallelism only when the job-level pool cannot
	// fill the machine by itself.
	ClusterParallel ClusterParallelMode
}

// ClusterParallelMode is the Engine/Options knob for per-run cluster
// parallelism.
type ClusterParallelMode int

const (
	// ClusterParallelAuto (the zero value) enables the parallel cluster
	// runtime when the worker pool is smaller than the core count — few
	// jobs on a wide machine — and stays sequential otherwise, where
	// job-level parallelism already saturates the CPUs.
	ClusterParallelAuto ClusterParallelMode = iota
	// ClusterParallelOn always runs cluster jobs on the parallel runtime.
	ClusterParallelOn
	// ClusterParallelOff always uses the sequential single-kernel runtime.
	ClusterParallelOff
)

// clusterParallel resolves the mode against the pool size for n jobs.
func (e *Engine) clusterParallel(n int) bool {
	switch e.ClusterParallel {
	case ClusterParallelOn:
		return true
	case ClusterParallelOff:
		return false
	}
	return e.workers(n) < runtime.NumCPU()
}

// workers returns the effective pool size for n jobs.
func (e *Engine) workers(n int) int {
	w := e.Parallelism
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes jobs concurrently and returns one JobResult per job, in job
// order. The first job error cancels all not-yet-started jobs (fail-fast)
// and is returned; results for skipped jobs carry ErrSkipped. A nil ctx
// means context.Background(); cancelling ctx stops dispatch after in-flight
// jobs finish.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]JobResult, len(jobs))
	for i := range results {
		results[i] = JobResult{Job: jobs[i], Index: i, Err: ErrSkipped}
	}

	st := &sweepState{
		engine:     e,
		ctx:        ctx,
		cancel:     cancel,
		jobs:       jobs,
		results:    results,
		clusterPar: e.clusterParallel(len(jobs)),
		jobIdx:     len(jobs),
	}

	// A single worker keeps the historical strictly-sequential submission
	// order (tests and callers rely on Parallelism 1 meaning "the old
	// sequential loop"); deques would add nothing there.
	if workers := e.workers(len(jobs)); workers == 1 || e.Scheduler == SchedulerStatic {
		st.runStatic(workers)
	} else {
		st.runStealing(workers)
	}

	if st.jobErr != nil {
		return results, st.jobErr
	}
	if err := ctx.Err(); err != nil && st.done < len(jobs) {
		return results, err
	}
	return results, nil
}

// sweepState is the shared state of one Engine.Run call.
type sweepState struct {
	engine     *Engine
	ctx        context.Context
	cancel     context.CancelFunc
	jobs       []Job
	results    []JobResult
	clusterPar bool

	mu      sync.Mutex
	eventMu sync.Mutex
	done    int
	jobErr  error // first real failure, lowest job index wins
	jobIdx  int
}

// scratch is one worker's recycled state. The memo encode buffer survives
// across jobs, so a warm sweep's steady-state cache writes allocate nothing
// beyond the blob handed to the store.
type scratch struct {
	enc []byte
}

// execute runs (or recalls from cache) the job at idx and records its
// outcome. It is the one place results, progress, and fail-fast state are
// updated, shared by both scheduler modes.
func (st *sweepState) execute(idx int, sc *scratch) {
	e := st.engine
	job := st.jobs[idx]
	jr := JobResult{Job: job, Index: idx}

	var fp Fingerprint
	cached := false
	useCache := e.Cache != nil && e.OnEvent == nil
	if useCache {
		var err error
		if fp, err = JobFingerprint(job); err != nil {
			// Unfingerprintable jobs (a Build error) fail identically on
			// the real run below; just skip the cache.
			useCache = false
		} else if res, ok := e.Cache.Get(fp); ok {
			jr.Result, cached = res, true
		}
	}
	if !cached {
		var obs core.Observer
		if e.OnEvent != nil {
			obs = core.ObserverFunc(func(ev core.Event) {
				st.eventMu.Lock()
				e.OnEvent(job, ev)
				st.eventMu.Unlock()
			})
		}
		start := time.Now()
		jr.Result, jr.Err = runOneWith(job.Scenario, job.PolicySpec, job.Seed, obs, st.clusterPar)
		if jr.Err == nil {
			observeCost(job, time.Since(start))
			// Only complete, successful runs are cached: errors and
			// HitLimit runs never produce an entry, and the store's Put is
			// atomic (temp file + rename), so a cancelled sweep can cut the
			// job list short but never leaves a partial entry behind. Cache
			// writes are best-effort — a full disk must not fail the sweep
			// (the Memo counts the failure).
			if useCache && !jr.Result.Cancelled {
				_ = e.Cache.put(fp, jr.Result, &sc.enc)
			}
		}
	}
	st.results[idx] = jr

	st.mu.Lock()
	st.done++
	if jr.Err != nil {
		if idx < st.jobIdx {
			st.jobErr, st.jobIdx = jr.Err, idx
		}
		st.cancel() // fail fast: stop dispatching further jobs
	}
	if e.OnProgress != nil {
		e.OnProgress(st.done, len(st.jobs), job)
	}
	st.mu.Unlock()
}

// runStatic is the historical dispatch: a feeder goroutine hands out job
// indexes in submission order to whichever worker asks next.
func (st *sweepState) runStatic(workers int) {
	indexes := make(chan int)
	go func() {
		defer close(indexes)
		for i := range st.jobs {
			select {
			case indexes <- i:
			case <-st.ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc scratch
			for idx := range indexes {
				st.execute(idx, &sc)
			}
		}()
	}
	wg.Wait()
}

// runStealing distributes jobs longest-expected-first over per-worker
// deques; a worker that drains its own deque steals from its peers. No new
// work is ever produced mid-sweep, so a worker that finds every deque empty
// can simply exit — work conservation holds because an index leaves a deque
// exactly once, into execute.
func (st *sweepState) runStealing(workers int) {
	order := scheduleOrder(st.jobs)
	deques := make([]jobDeque, workers)
	for i, idx := range order {
		deques[i%workers].push(idx)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			var sc scratch
			for {
				if st.ctx.Err() != nil {
					return // fail-fast / cancellation: stop dispatching
				}
				idx, ok := deques[self].pop()
				for off := 1; !ok && off < workers; off++ {
					idx, ok = deques[(self+off)%workers].pop()
				}
				if !ok {
					return
				}
				st.execute(idx, &sc)
			}
		}(w)
	}
	wg.Wait()
}

// jobDeque is one worker's queue of job indexes, longest-expected job
// first. A plain mutex suffices: cells run for milliseconds to seconds, so
// queue operations are nowhere near contended enough to justify a lock-free
// Chase–Lev deque.
type jobDeque struct {
	mu   sync.Mutex
	jobs []int
}

func (d *jobDeque) push(idx int) { d.jobs = append(d.jobs, idx) }

// pop removes the front (longest-expected) job. Owner and thieves pop the
// same end: with every deque sorted longest-first, whichever worker goes
// idle always picks up the longest pending cell — the LPT greedy rule.
func (d *jobDeque) pop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	idx := d.jobs[0]
	d.jobs = d.jobs[1:]
	return idx, true
}

// scheduleOrder returns job indexes sorted longest-expected-first
// (deterministically: ties keep submission order).
func scheduleOrder(jobs []Job) []int {
	order := make([]int, len(jobs))
	costs := make([]float64, len(jobs))
	for i := range jobs {
		order[i] = i
		costs[i] = estimateCost(jobs[i])
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })
	return order
}

// costModel learns wall-clock durations per (scenario, policy) across
// sweeps in this process: an EWMA (α = 1/2) of observed run times,
// consulted by scheduleOrder. Before any observation a static heuristic
// stands in. Estimates shape only dispatch order — never results, which
// merge by index.
var costModel sync.Map // "slug\x00policy" → *atomic.Uint64 (EWMA nanoseconds)

func costKey(j Job) string { return j.Scenario.Slug + "\x00" + j.PolicySpec }

func observeCost(j Job, d time.Duration) {
	if j.Scenario == nil {
		return
	}
	v, _ := costModel.LoadOrStore(costKey(j), new(atomic.Uint64))
	c := v.(*atomic.Uint64)
	for {
		old := c.Load()
		next := uint64(d)
		if old != 0 {
			next = old/2 + next/2
		}
		if c.CompareAndSwap(old, next) {
			return
		}
	}
}

func estimateCost(j Job) float64 {
	if j.Scenario == nil {
		return 0
	}
	if v, ok := costModel.Load(costKey(j)); ok {
		if ns := v.(*atomic.Uint64).Load(); ns > 0 {
			return float64(ns)
		}
	}
	// Static prior: a scenario's tmem capacity tracks its scale (bigger
	// pools mean bigger working sets mean more simulated ops); cluster
	// scenarios simulate several nodes, and no-tmem baselines pay the disk
	// for every refault. The units don't match observed nanoseconds — only
	// relative order matters, and both land in comparable magnitudes.
	c := float64(j.Scenario.TmemBytes)
	if c <= 0 {
		c = 1 << 30
	}
	if j.Scenario.IsCluster() {
		c *= 1.5
	}
	if j.PolicySpec == "no-tmem" {
		c *= 2
	}
	return c
}

// Matrix expands scenarios × policies × seeds into a job list in
// deterministic order: scenario-major, then policy, then seed. A nil
// policies slice selects each scenario's own policy list; a nil seeds
// slice selects DefaultSeeds. This ordering matches the historical
// sequential sweep loops, which keeps parallel aggregation byte-identical.
func Matrix(scenarios []*Scenario, policies []string, seeds []uint64) []Job {
	if seeds == nil {
		seeds = DefaultSeeds
	}
	var jobs []Job
	for _, s := range scenarios {
		pols := policies
		if pols == nil {
			pols = s.Policies
		}
		for _, pol := range pols {
			for _, seed := range seeds {
				jobs = append(jobs, Job{Scenario: s, PolicySpec: pol, Seed: seed})
			}
		}
	}
	return jobs
}

// Options configure a parallel experiment sweep (Times, SeriesSet,
// RunMatrix, RunTournament). The zero value runs with runtime.NumCPU()
// workers, the work-stealing scheduler, no cache, no cancellation and no
// progress output.
type Options struct {
	// Parallelism is the worker-pool size; <= 0 selects runtime.NumCPU().
	Parallelism int
	// Scheduler selects the dispatch strategy; see SchedulerMode.
	Scheduler SchedulerMode
	// Cache memoizes completed runs; see Engine.Cache.
	Cache *Memo
	// Context, when non-nil, cancels the sweep early.
	Context context.Context
	// OnProgress receives per-job completion callbacks (serialized).
	OnProgress func(done, total int, j Job)
	// OnEvent receives every lifecycle event of every run, tagged with
	// its job (serialized). See Engine.OnEvent.
	OnEvent func(j Job, e core.Event)
	// ClusterParallel selects per-run cluster parallelism; see
	// Engine.ClusterParallel.
	ClusterParallel ClusterParallelMode
}

func (o Options) engine() *Engine {
	return &Engine{
		Parallelism:     o.Parallelism,
		Scheduler:       o.Scheduler,
		Cache:           o.Cache,
		OnProgress:      o.OnProgress,
		OnEvent:         o.OnEvent,
		ClusterParallel: o.ClusterParallel,
	}
}

// RunMatrix executes every (scenario, policy, seed) combination on the
// worker pool and returns results in matrix order.
func RunMatrix(scenarios []*Scenario, policies []string, seeds []uint64, opt Options) ([]JobResult, error) {
	return opt.engine().Run(opt.Context, Matrix(scenarios, policies, seeds))
}
