package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"smartmem/internal/core"
)

// RunEvent is one lifecycle event of a node run (see core.Event),
// re-exported so sweep callers can receive event streams without importing
// core directly.
type RunEvent = core.Event

// Job is one (scenario, policy, seed) cell of an experiment sweep — the
// unit of work the engine schedules. Every figure and table of the paper's
// evaluation decomposes into a list of Jobs.
type Job struct {
	Scenario   *Scenario
	PolicySpec string
	Seed       uint64
}

func (j Job) String() string {
	slug := "?"
	if j.Scenario != nil {
		slug = j.Scenario.Slug
	}
	return fmt.Sprintf("%s/%s seed %d", slug, j.PolicySpec, j.Seed)
}

// JobResult pairs a job with its outcome. Index is the job's position in
// the submitted slice; the engine returns results merged by index, never by
// completion order, so parallel sweeps aggregate identically to sequential
// ones.
type JobResult struct {
	Job    Job
	Index  int
	Result *core.Result
	Err    error
}

// ErrSkipped marks jobs that were never dispatched because an earlier job
// failed (fail-fast) or the caller's context was cancelled. Test with
// errors.Is on JobResult.Err to distinguish skipped jobs from failed ones
// in a partial result set.
var ErrSkipped = errors.New("experiments: job skipped after earlier failure or cancellation")

// Engine executes experiment jobs on a fixed-size worker pool. The zero
// value is usable: it runs with runtime.NumCPU() workers and no progress
// reporting. Each job is an independent core.Run with its own simulation
// kernel and RNG streams, so jobs are race-free by construction (verified
// by go test -race).
type Engine struct {
	// Parallelism is the number of concurrent workers; values <= 0 select
	// runtime.NumCPU(). Parallelism 1 reproduces the historical sequential
	// behaviour exactly.
	Parallelism int
	// OnProgress, when non-nil, is invoked after every job completes with
	// the number of finished jobs, the total, and the job that just
	// finished. Calls are serialized by the engine; the callback does not
	// need to be concurrency-safe.
	OnProgress func(done, total int, j Job)
	// OnEvent, when non-nil, receives every lifecycle event of every
	// job's run (see core.Event), tagged with the job that produced it.
	// Calls are serialized across workers; the callback does not need to
	// be concurrency-safe. Event order is deterministic within a job but
	// jobs interleave by completion timing.
	OnEvent func(j Job, e core.Event)
	// ClusterParallel selects whether cluster-scenario jobs run on the
	// parallel cluster runtime (core.ClusterConfig.Parallel — one kernel
	// per node, results byte-identical to sequential). Auto spends spare
	// cores on per-run parallelism only when the job-level pool cannot
	// fill the machine by itself.
	ClusterParallel ClusterParallelMode
}

// ClusterParallelMode is the Engine/Options knob for per-run cluster
// parallelism.
type ClusterParallelMode int

const (
	// ClusterParallelAuto (the zero value) enables the parallel cluster
	// runtime when the worker pool is smaller than the core count — few
	// jobs on a wide machine — and stays sequential otherwise, where
	// job-level parallelism already saturates the CPUs.
	ClusterParallelAuto ClusterParallelMode = iota
	// ClusterParallelOn always runs cluster jobs on the parallel runtime.
	ClusterParallelOn
	// ClusterParallelOff always uses the sequential single-kernel runtime.
	ClusterParallelOff
)

// clusterParallel resolves the mode against the pool size for n jobs.
func (e *Engine) clusterParallel(n int) bool {
	switch e.ClusterParallel {
	case ClusterParallelOn:
		return true
	case ClusterParallelOff:
		return false
	}
	return e.workers(n) < runtime.NumCPU()
}

// workers returns the effective pool size for n jobs.
func (e *Engine) workers(n int) int {
	w := e.Parallelism
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes jobs concurrently and returns one JobResult per job, in job
// order. The first job error cancels all not-yet-started jobs (fail-fast)
// and is returned; results for skipped jobs carry errSkipped. A nil ctx
// means context.Background(); cancelling ctx stops dispatch after in-flight
// jobs finish.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]JobResult, len(jobs))
	for i := range results {
		results[i] = JobResult{Job: jobs[i], Index: i, Err: ErrSkipped}
	}
	clusterPar := e.clusterParallel(len(jobs))

	var (
		mu      sync.Mutex
		eventMu sync.Mutex
		done    int
		jobErr  error // first real failure, lowest job index wins
		jobIdx  = len(jobs)
		wg      sync.WaitGroup
		indexes = make(chan int)
	)

	// Feeder: hands out job indexes until done or cancelled.
	go func() {
		defer close(indexes)
		for i := range jobs {
			select {
			case indexes <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	for w := 0; w < e.workers(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indexes {
				jr := JobResult{Job: jobs[idx], Index: idx}
				var obs core.Observer
				if e.OnEvent != nil {
					job := jobs[idx]
					obs = core.ObserverFunc(func(ev core.Event) {
						eventMu.Lock()
						e.OnEvent(job, ev)
						eventMu.Unlock()
					})
				}
				jr.Result, jr.Err = runOneWith(jobs[idx].Scenario, jobs[idx].PolicySpec, jobs[idx].Seed, obs, clusterPar)
				results[idx] = jr

				mu.Lock()
				done++
				if jr.Err != nil {
					if idx < jobIdx {
						jobErr, jobIdx = jr.Err, idx
					}
					cancel() // fail fast: stop dispatching further jobs
				}
				if e.OnProgress != nil {
					e.OnProgress(done, len(jobs), jobs[idx])
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if jobErr != nil {
		return results, jobErr
	}
	if err := ctx.Err(); err != nil && done < len(jobs) {
		return results, err
	}
	return results, nil
}

// Matrix expands scenarios × policies × seeds into a job list in
// deterministic order: scenario-major, then policy, then seed. A nil
// policies slice selects each scenario's own policy list; a nil seeds
// slice selects DefaultSeeds. This ordering matches the historical
// sequential sweep loops, which keeps parallel aggregation byte-identical.
func Matrix(scenarios []*Scenario, policies []string, seeds []uint64) []Job {
	if seeds == nil {
		seeds = DefaultSeeds
	}
	var jobs []Job
	for _, s := range scenarios {
		pols := policies
		if pols == nil {
			pols = s.Policies
		}
		for _, pol := range pols {
			for _, seed := range seeds {
				jobs = append(jobs, Job{Scenario: s, PolicySpec: pol, Seed: seed})
			}
		}
	}
	return jobs
}

// Options configure a parallel experiment sweep (Times, SeriesSet,
// RunMatrix). The zero value runs with runtime.NumCPU() workers, no
// cancellation and no progress output.
type Options struct {
	// Parallelism is the worker-pool size; <= 0 selects runtime.NumCPU().
	Parallelism int
	// Context, when non-nil, cancels the sweep early.
	Context context.Context
	// OnProgress receives per-job completion callbacks (serialized).
	OnProgress func(done, total int, j Job)
	// OnEvent receives every lifecycle event of every run, tagged with
	// its job (serialized). See Engine.OnEvent.
	OnEvent func(j Job, e core.Event)
	// ClusterParallel selects per-run cluster parallelism; see
	// Engine.ClusterParallel.
	ClusterParallel ClusterParallelMode
}

func (o Options) engine() *Engine {
	return &Engine{
		Parallelism:     o.Parallelism,
		OnProgress:      o.OnProgress,
		OnEvent:         o.OnEvent,
		ClusterParallel: o.ClusterParallel,
	}
}

// RunMatrix executes every (scenario, policy, seed) combination on the
// worker pool and returns results in matrix order.
func RunMatrix(scenarios []*Scenario, policies []string, seeds []uint64, opt Options) ([]JobResult, error) {
	return opt.engine().Run(opt.Context, Matrix(scenarios, policies, seeds))
}
