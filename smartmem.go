// Package smartmem is a reproduction of "SmarTmem: Intelligent Management
// of Transcendent Memory in a Virtualized Server" (Garrido Platero,
// Nishtala, Carpenter — IPPS/IPDPS Workshops 2019) as a self-contained Go
// library.
//
// It provides, from the bottom up:
//
//   - a Transcendent Memory (tmem) key–value backend with per-VM capacity
//     accounting and target enforcement (paper Algorithm 1),
//   - a guest-kernel model with frontswap/cleancache hooks, an LRU PFRA
//     and a queued virtual-disk model, driven by a deterministic
//     discrete-event simulator,
//   - the TKM statistics relay with in-process and real socket transports,
//   - the four management policies: greedy, static-alloc (Algorithm 2),
//     reconf-static (Algorithm 3) and smart-alloc (Algorithm 4), and
//   - the paper's complete evaluation: the Table II scenarios and runners
//     regenerating every figure (3–10) and table (I–II).
//
// # Quick start
//
// A run is a Session: construct it (the configuration is validated
// immediately), optionally subscribe observers and sinks to its typed
// event stream, then Run it:
//
//	sess, err := smartmem.NewSession(smartmem.Config{
//		TmemBytes:   smartmem.GiB,
//		TmemEnabled: true,
//		Policy:      smartmem.SmartAlloc{P: 2},
//		Seed:        1,
//		VMs: []smartmem.VMSpec{{
//			ID: 1, Name: "VM1", RAMBytes: 512 * smartmem.MiB,
//			Workload: smartmem.Usemem(),
//		}},
//	},
//		smartmem.WithContext(ctx), // cancel mid-run for a partial Result
//		smartmem.WithObserver(smartmem.ObserverFunc(func(e smartmem.Event) {
//			if m, ok := e.(smartmem.Milestone); ok {
//				log.Printf("%s reached %s", m.VM, m.Label)
//			}
//		})),
//		smartmem.WithSink(sinks.NDJSON(os.Stdout)),
//	)
//	if err != nil { ... }
//	res, err := sess.Run()
//
// The one-shot form Run(Config) remains as a thin wrapper for callers that
// only need the final Result, and a paper scenario reruns with:
//
//	table, err := smartmem.ScenarioTimes("s2", nil, nil)
//
// See DESIGN.md for the system inventory and the event-flow architecture,
// and README.md for measured-vs-paper results and command usage.
package smartmem

import (
	"io"

	"smartmem/internal/core"
	"smartmem/internal/durable"
	"smartmem/internal/experiments"
	"smartmem/internal/mem"
	"smartmem/internal/metrics"
	"smartmem/internal/policy"
	"smartmem/internal/sim"
	"smartmem/internal/workload"
)

// Size units for configuration.
const (
	KiB = mem.KiB
	MiB = mem.MiB
	GiB = mem.GiB
)

// Bytes is a byte count (capacities, footprints).
type Bytes = mem.Bytes

// Pages is a page count (targets, tmem accounting).
type Pages = mem.Pages

// Duration is virtual time; time.Millisecond-style constants from package
// time convert directly.
type Duration = sim.Duration

// Common virtual durations.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Config describes a full virtualized-node run. See core.Config for field
// documentation.
type Config = core.Config

// ClusterConfig describes a multi-node run: one Config per node, all nodes
// sharing one simulated clock, optionally wired peer-to-peer so each
// node's remote tmem tier lands in the next node's store (RAMster-style
// overflow). Run one with NewClusterSession, or replicate a single Config
// across homogeneous nodes with NewSession(cfg, WithCluster(n)).
type ClusterConfig = core.ClusterConfig

// NodeResult summarizes one node of a cluster run, including its outbound
// remote-tier traffic.
type NodeResult = core.NodeResult

// VMSpec describes one virtual machine of a run.
type VMSpec = core.VMSpec

// Result is the outcome of a node run: per-VM run records, statistics and
// tmem time series. Cluster runs merge all nodes into one Result (VM names
// node-prefixed, counters summed) and break totals down in Result.Nodes.
type Result = core.Result

// RunRecord is one completed workload run measurement.
type RunRecord = core.RunRecord

// BlobStore is the pluggable durable-tier backend (see internal/durable):
// set Config.DurableBlob to one and persistent pages demoted past the RAM
// tiers are journaled to a write-ahead log with periodic slab snapshots.
type BlobStore = durable.BlobStore

// DurableSummary reports a durable tier's end-of-run counters
// (Result.Durable / NodeResult.Durable).
type DurableSummary = durable.Summary

// NewMemBlobStore returns an in-memory blob store: self-contained durable
// runs and tests (state survives reopening the same store value, not the
// process).
func NewMemBlobStore() BlobStore { return durable.NewMemStore() }

// NewDirBlobStore returns a blob store rooted at an on-disk directory, so
// a run's durable state survives the process.
func NewDirBlobStore(dir string) (BlobStore, error) { return durable.NewDirStore(dir) }

// Policy computes per-VM tmem capacity targets each sampling interval.
type Policy = policy.Policy

// The paper's management policies (§III-E).
type (
	// Greedy is the hypervisor default: first come, first served.
	Greedy = policy.Greedy
	// StaticAlloc divides tmem equally across registered VMs
	// (Algorithm 2).
	StaticAlloc = policy.StaticAlloc
	// ReconfStatic divides tmem equally across VMs that have used it
	// (Algorithm 3).
	ReconfStatic = policy.ReconfStatic
	// SmartAlloc adapts per-VM targets to demand (Algorithm 4).
	SmartAlloc = policy.SmartAlloc
)

// Workload is an application model runnable inside a VM.
type Workload = workload.Workload

// Run executes one simulated node run to completion: a thin wrapper over
// NewSession(cfg) + Session.Run for callers that only need the final
// Result. Use NewSession directly to observe or cancel the run while it
// executes.
func Run(cfg Config) (*Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// ParsePolicy builds a policy from its command-line spec, e.g. "no-tmem",
// "greedy", "static-alloc", "reconf-static", "smart-alloc:P=0.75". Every
// name in the policy registry resolves, including user registrations.
func ParsePolicy(spec string) (Policy, error) { return policy.Parse(spec) }

// PolicyInfo describes one registered policy family for listings.
type PolicyInfo = policy.Entry

// Policies lists every registered policy family: the paper's built-ins
// first, then user registrations.
func Policies() []PolicyInfo { return policy.All() }

// RegisterPolicy adds a policy family to the registry, making its name
// resolvable from ParsePolicy and the commands' -policy flags.
func RegisterPolicy(e PolicyInfo) { policy.Register(e) }

// Usemem returns the paper's usemem micro-benchmark with default
// parameters (128 MiB steps up to 1 GiB, §IV).
func Usemem() Workload { return workload.DefaultUsemem() }

// InMemoryAnalytics is the CloudSuite in-memory-analytics model.
type InMemoryAnalytics = workload.InMemoryAnalytics

// GraphAnalytics is the CloudSuite graph-analytics model.
type GraphAnalytics = workload.GraphAnalytics

// UsememWorkload is the usemem micro-benchmark with explicit parameters.
type UsememWorkload = workload.Usemem

// WorkloadSequence runs several workloads back to back with idle gaps.
type WorkloadSequence = workload.Sequence

// SequenceStep is one element of a WorkloadSequence.
type SequenceStep = workload.SequenceStep

// Summary aggregates repeated measurements (mean, sample std, min, max).
type Summary = metrics.Summary

// RNG is the deterministic random number generator used throughout the
// simulator; derive independent streams with Split.
type RNG = sim.RNG

// NewRNG seeds a deterministic generator.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// Graph is a directed graph in compressed adjacency form, as produced by
// RMAT.
type Graph = workload.Graph

// Ratings is a sparse MovieLens-shaped rating matrix.
type Ratings = workload.Ratings

// RMAT generates a scale-free directed graph (2^scale vertices,
// ~edgeFactor·2^scale edges) shaped like the paper's soc-twitter-follows
// dataset.
func RMAT(rng *RNG, scale, edgeFactor int) *Graph { return workload.RMAT(rng, scale, edgeFactor) }

// PageRank runs power iterations over g — the computation the
// GraphAnalytics model stands in for.
func PageRank(g *Graph, iters int, damping float64) []float64 {
	return workload.PageRank(g, iters, damping)
}

// MovieLensShaped synthesizes a ratings matrix with MovieLens-like
// popularity skew.
func MovieLensShaped(rng *RNG, users, items, nRatings int) *Ratings {
	return workload.MovieLensShaped(rng, users, items, nRatings)
}

// MiniALS runs simplified alternating-least-squares rounds over r and
// returns the final RMSE — the computation the InMemoryAnalytics model
// stands in for.
func MiniALS(r *Ratings, k, iters int, rng *RNG) float64 {
	return workload.MiniALS(r, k, iters, rng)
}

// Scenario is one registered benchmark scenario: a paper Table II row, an
// extension (scale-<n>, churn) or a user registration.
type Scenario = experiments.Scenario

// Scenarios lists every registered scenario: the paper's four Table II
// rows first, then the scale/churn extensions and user registrations.
func Scenarios() []*Scenario { return experiments.All() }

// PaperScenarios lists only the paper's four scenarios in Table II order.
func PaperScenarios() []*Scenario { return experiments.PaperScenarios() }

// RegisterScenario adds a custom scenario to the registry, making it
// resolvable by slug from RunScenario, ScenarioTimes and the commands.
// Build scenarios with experiments.NewScenario.
func RegisterScenario(s *Scenario) { experiments.Register(s) }

// ScenarioBySlug resolves a registered slug ("s1", "s2", "usemem", "s3",
// "churn") or a parameterized one ("scale-<n>").
func ScenarioBySlug(slug string) (*Scenario, error) { return experiments.BySlug(slug) }

// RunScenario executes one (scenario, policy, seed) combination. The
// policy spec additionally accepts "no-tmem".
func RunScenario(slug, policySpec string, seed uint64) (*Result, error) {
	s, err := experiments.BySlug(slug)
	if err != nil {
		return nil, err
	}
	return experiments.RunOne(s, policySpec, seed)
}

// ExperimentJob is one (scenario, policy, seed) cell of a sweep.
type ExperimentJob = experiments.Job

// ExperimentResult pairs a job with its outcome; results always arrive in
// job order regardless of parallel completion order.
type ExperimentResult = experiments.JobResult

// ExperimentOptions configure parallel sweeps: worker-pool size (default
// runtime.NumCPU()), cancellation context and a progress callback.
type ExperimentOptions = experiments.Options

// ErrSkipped marks sweep jobs that never ran because an earlier job failed
// (fail-fast) or the sweep was cancelled; test ExperimentResult.Err with
// errors.Is to tell skipped jobs from failed ones in partial results.
var ErrSkipped = experiments.ErrSkipped

// SchedulerMode selects how sweeps dispatch jobs to workers; see
// ExperimentOptions.Scheduler.
type SchedulerMode = experiments.SchedulerMode

// Scheduler modes for ExperimentOptions.
const (
	// SchedulerSteal (the default) distributes jobs longest-expected-first
	// over per-worker deques with work stealing.
	SchedulerSteal = experiments.SchedulerSteal
	// SchedulerStatic is the historical fixed channel feed.
	SchedulerStatic = experiments.SchedulerStatic
)

// RunCache memoizes completed runs by fingerprint so repeated sweep cells
// return instantly and byte-identically. Set ExperimentOptions.Cache to
// one; it is safe for concurrent use and survives across sweeps (and, with
// OpenDirRunCache, across processes).
type RunCache = experiments.Memo

// RunCacheStats reports a cache's hit/miss/write counters.
type RunCacheStats = experiments.MemoStats

// NewRunCache returns a run cache over any BlobStore (an in-memory store
// for tests, a DirStore for persistence).
func NewRunCache(store BlobStore) *RunCache { return experiments.NewMemo(store) }

// OpenDirRunCache opens (creating if needed) an on-disk run cache rooted
// at dir.
func OpenDirRunCache(dir string) (*RunCache, error) { return experiments.OpenDirMemo(dir) }

// LeagueTable is a tournament's outcome: policies ranked by mean disk
// traffic, overall and per scenario.
type LeagueTable = experiments.LeagueTable

// RunTournament sweeps every scenario × policy × seed cell and ranks the
// policies in a deterministic league table. Nil policies selects the union
// of the scenarios' own policy lists; nil seeds the default five.
func RunTournament(slugs []string, policies []string, seeds []uint64, opt ExperimentOptions) (*LeagueTable, error) {
	scns := make([]*Scenario, len(slugs))
	for i, slug := range slugs {
		s, err := experiments.BySlug(slug)
		if err != nil {
			return nil, err
		}
		scns[i] = s
	}
	return experiments.RunTournament(scns, policies, seeds, opt)
}

// WriteLeagueTable renders a league's overall standings and per-scenario
// breakdowns as fixed-width text.
func WriteLeagueTable(w io.Writer, t *LeagueTable) error {
	if err := experiments.LeagueReport(t).Render(w); err != nil {
		return err
	}
	for _, sl := range t.PerScenario {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if err := experiments.ScenarioLeagueReport(sl).Render(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteLeagueJSON writes a league table as one deterministic JSON document.
func WriteLeagueJSON(w io.Writer, t *LeagueTable) error { return experiments.WriteLeagueJSON(w, t) }

// WriteLeagueCSV writes a league table as CSV (overall block, then one
// block per scenario).
func WriteLeagueCSV(w io.Writer, t *LeagueTable) error { return experiments.WriteLeagueCSV(w, t) }

// RunMatrix executes every (scenario, policy, seed) combination on a
// worker pool and returns the results in deterministic matrix order
// (scenario-major, then policy, then seed). Nil policies selects each
// scenario's own policy list; nil seeds the default five.
func RunMatrix(slugs []string, policies []string, seeds []uint64, opt ExperimentOptions) ([]ExperimentResult, error) {
	scns := make([]*Scenario, len(slugs))
	for i, slug := range slugs {
		s, err := experiments.BySlug(slug)
		if err != nil {
			return nil, err
		}
		scns[i] = s
	}
	return experiments.RunMatrix(scns, policies, seeds, opt)
}

// ScenarioTimes reruns a scenario across policies and seeds and aggregates
// the per-VM running times (the data behind the paper's Figures 3, 5, 7
// and 9). Nil policies/seeds select the scenario's paper configuration and
// the default five seeds. Runs execute concurrently (one worker per CPU)
// with results identical to a sequential sweep; use ScenarioTimesOpts to
// control parallelism.
func ScenarioTimes(slug string, policies []string, seeds []uint64) (*experiments.TimesTable, error) {
	return ScenarioTimesOpts(slug, policies, seeds, ExperimentOptions{})
}

// ScenarioTimesOpts is ScenarioTimes with explicit execution options.
func ScenarioTimesOpts(slug string, policies []string, seeds []uint64, opt ExperimentOptions) (*experiments.TimesTable, error) {
	s, err := experiments.BySlug(slug)
	if err != nil {
		return nil, err
	}
	return experiments.TimesOpts(s, policies, seeds, opt)
}

// WriteScenarioTimes renders a times table as fixed-width text.
func WriteScenarioTimes(w io.Writer, t *experiments.TimesTable) error {
	return experiments.TimesReport(t).Render(w)
}

// WriteScenarioSeries runs one (scenario, policy, seed) combination and
// renders its tmem-usage-over-time chart (the paper's Figures 4, 6, 8, 10).
func WriteScenarioSeries(w io.Writer, slug, policySpec string, seed uint64) error {
	s, err := experiments.BySlug(slug)
	if err != nil {
		return err
	}
	sr, err := experiments.Series(s, policySpec, seed)
	if err != nil {
		return err
	}
	return experiments.RenderSeries(w, sr)
}
