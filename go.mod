module smartmem

go 1.24
