// Package sinks provides the built-in result sinks of the Session API:
// pluggable serializers that consume a run's typed event stream and final
// result and write machine-readable artifacts for the figures pipeline and
// the CLIs.
//
//   - NDJSON streams one JSON object per event as it happens (live
//     observation, log shipping), ending with a result object;
//   - JSON buffers the whole run and writes a single indented document
//     (the golden-file / archival format);
//   - CSV writes a flat event table (spreadsheet-friendly).
//
// All three are deterministic for a deterministic run: wall-clock
// timestamps are only added when a clock is installed (see
// smartmem.WithClock).
package sinks

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"smartmem"
	"smartmem/internal/durable"
	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// Encode flattens one event into the JSON-ready form shared by the NDJSON
// and JSON sinks: an "event" kind, the virtual time "t" in seconds, and the
// event's own fields. Exported so custom sinks and the CLIs can reuse the
// wire shape.
func Encode(e smartmem.Event) map[string]any {
	m := map[string]any{
		"event": e.Kind(),
		"t":     round(e.When().Seconds()),
	}
	switch ev := e.(type) {
	case smartmem.VMStarted:
		addNode(m, ev.Node)
		m["vm"] = ev.VM
		m["id"] = int64(ev.ID)
		m["workload"] = ev.Workload
	case smartmem.Milestone:
		addNode(m, ev.Node)
		m["vm"] = ev.VM
		m["label"] = ev.Label
	case smartmem.RunCompleted:
		addNode(m, ev.Node)
		m["vm"] = ev.Record.VM
		m["label"] = ev.Record.Label
		m["start"] = round(ev.Record.Start.Seconds())
		m["duration"] = round(ev.Record.Duration().Seconds())
	case smartmem.SampleTick:
		addNode(m, ev.Node)
		m["seq"] = ev.Seq
		m["free_tmem"] = int64(ev.Stats.FreeTmem)
		m["total_tmem"] = int64(ev.Stats.TotalTmem)
		// Emitted only when a capacity-amplifying tier reported one, keeping
		// compression-off encodings (and the historical goldens) unchanged.
		if ev.Stats.EffectiveTmem != 0 {
			m["effective_tmem"] = int64(ev.Stats.EffectiveTmem)
		}
		vms := make([]map[string]any, 0, len(ev.Stats.VMs))
		for _, v := range ev.Stats.VMs {
			vms = append(vms, map[string]any{
				"vm":     vmName(ev.VMNames, v.ID),
				"id":     int64(v.ID),
				"used":   int64(v.TmemUsed),
				"target": encodeTarget(v.MMTarget),
			})
		}
		m["vms"] = vms
	case smartmem.TargetUpdate:
		addNode(m, ev.Node)
		m["vm"] = ev.VM
		m["id"] = int64(ev.ID)
		m["target"] = encodeTarget(ev.Target)
	case smartmem.RunFinished:
		m["cancelled"] = ev.Cancelled
	}
	return m
}

// addNode tags cluster events with their node; single-node events carry no
// tag, which keeps their encoding (and the historical goldens) unchanged.
func addNode(m map[string]any, node string) {
	if node != "" {
		m["node"] = node
	}
}

// vmName resolves a VM's display name from a SampleTick's name table,
// matching the labels the other events carry.
func vmName(names map[tmem.VMID]string, id tmem.VMID) string {
	if n, ok := names[id]; ok {
		return n
	}
	return fmt.Sprintf("vm%d", id)
}

// encodeTarget maps the "no limit" sentinel to -1 so consumers need not
// know the in-memory representation.
func encodeTarget(p mem.Pages) int64 {
	if p == tmem.Unlimited {
		return -1
	}
	return int64(p)
}

// round keeps serialized times at millisecond resolution: stable across
// formatting changes and precise enough for 1 Hz sampling.
func round(s float64) float64 { return float64(int64(s*1e3+0.5)) / 1e3 }

// encodeCompressed flattens a compressed-tier snapshot. Codec timing
// counters are deliberately omitted: they are wall-clock measurements, and
// the result document must stay deterministic for golden comparison.
func encodeCompressed(s *tmem.CompressedTierStats) map[string]any {
	return map[string]any{
		"puts":           s.Puts,
		"puts_ok":        s.PutsOK,
		"gets":           s.Gets,
		"gets_hit":       s.GetsHit,
		"page_flushes":   s.PageFlushes,
		"object_flushes": s.ObjectFlushes,
		"errors":         s.Errors,
		"pages_stored":   int64(s.PagesStored),
		"unique_blobs":   s.UniqueBlobs,
		"raw_bytes":      int64(s.RawBytes),
		"stored_bytes":   int64(s.StoredBytes),
		"dedup_hits":     s.DedupHits,
		"rejected_full":  s.RejectedFull,
		"decode_errors":  s.DecodeErrors,
		"ratio":          round(s.Ratio()),
	}
}

// encodeDurable flattens a durable-tier summary: the tier's demotion
// traffic plus the journal's WAL/snapshot counters and live-state gauges.
// Every field is deterministic under the sim's durable options (no fsync
// goroutine, inline compaction), so golden runs may include it.
func encodeDurable(s *durable.Summary) map[string]any {
	return map[string]any{
		"puts":           s.Tier.Puts,
		"puts_ok":        s.Tier.PutsOK,
		"gets":           s.Tier.Gets,
		"gets_hit":       s.Tier.GetsHit,
		"page_flushes":   s.Tier.PageFlushes,
		"object_flushes": s.Tier.ObjectFlushes,
		"errors":         s.Tier.Errors,
		"wal_appends":    s.Log.Appends,
		"wal_bytes":      s.Log.AppendedBytes,
		"fsyncs":         s.Log.Fsyncs,
		"segments":       s.Log.Segments,
		"compactions":    s.Log.Compactions,
		"snapshot_pages": s.Log.SnapshotPages,
		"pools":          s.Log.Pools,
		"pages_live":     s.Log.PagesLive,
		"bytes_live":     s.Log.BytesLive,
	}
}

// EncodeResult flattens a run result into its JSON document form. A nil
// result encodes as nil (a run that failed before producing anything).
func EncodeResult(r *smartmem.Result) map[string]any {
	if r == nil {
		return nil
	}
	doc := map[string]any{
		"policy":            r.PolicyName,
		"seed":              r.Seed,
		"end_seconds":       round(r.EndTime.Seconds()),
		"hit_limit":         r.HitLimit,
		"cancelled":         r.Cancelled,
		"sample_ticks":      r.SampleTicks,
		"mm_batches_sent":   r.MMBatchesSent,
		"disk_ops":          r.DiskOps,
		"disk_busy_seconds": round(r.DiskBusy.Seconds()),
	}
	if r.Compressed != nil {
		doc["compressed_tier"] = encodeCompressed(r.Compressed)
	}
	if r.Durable != nil {
		doc["durable_tier"] = encodeDurable(r.Durable)
	}
	runs := make([]map[string]any, 0, len(r.Runs))
	for _, rec := range r.Runs {
		runs = append(runs, map[string]any{
			"vm":       rec.VM,
			"label":    rec.Label,
			"start":    round(rec.Start.Seconds()),
			"end":      round(rec.End.Seconds()),
			"duration": round(rec.Duration().Seconds()),
		})
	}
	doc["runs"] = runs
	vms := make([]map[string]any, 0, len(r.VMs))
	for _, vm := range r.VMs {
		k := vm.Kernel
		vms = append(vms, map[string]any{
			"name": vm.Name,
			"id":   int64(vm.ID),
			"kernel": map[string]any{
				"touches":           k.Touches,
				"minor_faults":      k.MinorFaults,
				"tmem_hits":         k.TmemHits,
				"tmem_misses":       k.TmemMisses,
				"disk_reads":        k.DiskReads,
				"disk_writes":       k.DiskWrites,
				"evictions":         k.Evictions,
				"clean_evicts":      k.CleanEvicts,
				"puts_ok":           k.PutsOK,
				"puts_failed":       k.PutsFailed,
				"tmem_flushes":      k.TmemFlushes,
				"freed_pages":       k.FreedPages,
				"disk_wait_seconds": round(k.WaitedOnDisk.Seconds()),
			},
			"tmem": map[string]any{
				"puts_total":  vm.Tmem.PutsTotal,
				"puts_succ":   vm.Tmem.PutsSucc,
				"gets_total":  vm.Tmem.GetsTotal,
				"gets_hit":    vm.Tmem.GetsHit,
				"flushes":     vm.Tmem.Flushes,
				"eph_evicted": vm.Tmem.EphEvicted,
			},
		})
	}
	doc["vms"] = vms
	if len(r.Nodes) > 0 {
		nodes := make([]map[string]any, 0, len(r.Nodes))
		for _, n := range r.Nodes {
			nd := map[string]any{
				"name":              n.Name,
				"policy":            n.PolicyName,
				"sample_ticks":      n.SampleTicks,
				"mm_batches_sent":   n.MMBatchesSent,
				"disk_ops":          n.DiskOps,
				"disk_busy_seconds": round(n.DiskBusy.Seconds()),
			}
			if n.Remote != nil {
				nd["remote_tier"] = map[string]any{
					"puts":           n.Remote.Puts,
					"puts_ok":        n.Remote.PutsOK,
					"gets":           n.Remote.Gets,
					"gets_hit":       n.Remote.GetsHit,
					"page_flushes":   n.Remote.PageFlushes,
					"object_flushes": n.Remote.ObjectFlushes,
					"errors":         n.Remote.Errors,
				}
			}
			if n.Compressed != nil {
				nd["compressed_tier"] = encodeCompressed(n.Compressed)
			}
			if n.Durable != nil {
				nd["durable_tier"] = encodeDurable(n.Durable)
			}
			nodes = append(nodes, nd)
		}
		doc["nodes"] = nodes
	}
	if r.Series != nil {
		series := make([]map[string]any, 0)
		for _, name := range r.Series.Names() {
			s := r.Series.Get(name)
			points := make([][2]float64, 0, s.Len())
			for _, p := range s.Points() {
				points = append(points, [2]float64{round(p.T), p.V})
			}
			series = append(series, map[string]any{"name": name, "points": points})
		}
		doc["series"] = series
	}
	return doc
}

// --- NDJSON ---

// NDJSONSink streams events as newline-delimited JSON; see NDJSON.
type NDJSONSink struct {
	w     io.Writer
	clock func() time.Time
}

// NDJSON returns a sink that writes one JSON object per event to w as the
// run progresses, followed by a final {"record":"result", ...} object on
// Close. Suited to live observation and log shipping.
func NDJSON(w io.Writer) *NDJSONSink { return &NDJSONSink{w: w} }

// SetClock installs a wall clock; each line then carries a "wall"
// timestamp (RFC 3339). Wired automatically by smartmem.WithClock.
func (s *NDJSONSink) SetClock(now func() time.Time) { s.clock = now }

// Event implements smartmem.Sink.
func (s *NDJSONSink) Event(e smartmem.Event) error {
	m := Encode(e)
	if s.clock != nil {
		m["wall"] = s.clock().UTC().Format(time.RFC3339Nano)
	}
	return writeJSONLine(s.w, m)
}

// Close implements smartmem.Sink.
func (s *NDJSONSink) Close(r *smartmem.Result) error {
	return writeJSONLine(s.w, map[string]any{"record": "result", "result": EncodeResult(r)})
}

func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// --- JSON ---

// JSONSink buffers the run and writes one document on Close; see JSON.
type JSONSink struct {
	w      io.Writer
	clock  func() time.Time
	events []map[string]any
}

// JSON returns a sink that buffers every event and writes a single
// indented JSON document {"schema", "events", "result"} when the run ends —
// the archival/golden-file format.
func JSON(w io.Writer) *JSONSink { return &JSONSink{w: w} }

// SetClock installs a wall clock; events then carry "wall" timestamps.
func (s *JSONSink) SetClock(now func() time.Time) { s.clock = now }

// Event implements smartmem.Sink.
func (s *JSONSink) Event(e smartmem.Event) error {
	m := Encode(e)
	if s.clock != nil {
		m["wall"] = s.clock().UTC().Format(time.RFC3339Nano)
	}
	s.events = append(s.events, m)
	return nil
}

// Close implements smartmem.Sink.
func (s *JSONSink) Close(r *smartmem.Result) error {
	doc := map[string]any{
		"schema": "smartmem/run@1",
		"events": s.events,
		"result": EncodeResult(r),
	}
	enc := json.NewEncoder(s.w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// --- CSV ---

// CSVSink writes a flat event table; see CSV.
type CSVSink struct {
	w      io.Writer
	wroteH bool
	err    error
}

// CSV returns a sink that writes events as flat CSV rows
// (event,t_seconds,vm,label,value): lifecycle rows for starts, milestones
// and completed runs, and per-VM tmem-used/target plus free-tmem rows for
// every sampling tick — a long-format table ready for spreadsheet or
// dataframe tooling.
func CSV(w io.Writer) *CSVSink { return &CSVSink{w: w} }

func (s *CSVSink) row(event string, t float64, vm, label string, value any) {
	if s.err != nil {
		return
	}
	if !s.wroteH {
		s.wroteH = true
		if _, err := fmt.Fprintln(s.w, "event,t_seconds,vm,label,value"); err != nil {
			s.err = err
			return
		}
	}
	val := ""
	switch v := value.(type) {
	case nil:
	case float64:
		val = fmt.Sprintf("%g", v)
	default:
		val = fmt.Sprint(v)
	}
	if _, err := fmt.Fprintf(s.w, "%s,%.3f,%s,%s,%s\n", event, t, vm, label, val); err != nil {
		s.err = err
	}
}

// Event implements smartmem.Sink.
func (s *CSVSink) Event(e smartmem.Event) error {
	t := e.When().Seconds()
	switch ev := e.(type) {
	case smartmem.VMStarted:
		s.row("vm-started", t, ev.VM, ev.Workload, nil)
	case smartmem.Milestone:
		s.row("milestone", t, ev.VM, ev.Label, nil)
	case smartmem.RunCompleted:
		s.row("run-completed", t, ev.Record.VM, ev.Record.Label, round(ev.Record.Duration().Seconds()))
	case smartmem.SampleTick:
		for _, v := range ev.Stats.VMs {
			name := vmName(ev.VMNames, v.ID)
			s.row("tmem-used", t, name, "", int64(v.TmemUsed))
			s.row("tmem-target", t, name, "", encodeTarget(v.MMTarget))
		}
		s.row("free-tmem", t, "", "", int64(ev.Stats.FreeTmem))
	case smartmem.TargetUpdate:
		s.row("target-update", t, ev.VM, "", encodeTarget(ev.Target))
	case smartmem.RunFinished:
		s.row("run-finished", t, "", "", boolInt(ev.Cancelled))
	}
	return s.err
}

// Close implements smartmem.Sink.
func (s *CSVSink) Close(*smartmem.Result) error { return s.err }

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
