package sinks

import (
	"smartmem/internal/hdr"
)

// EncodeHistogram flattens an hdr latency snapshot into the JSON-ready map
// shape shared by the loadgen report (cmd/smartmem-loadgen -json) and any
// custom sink that wants to ship latency summaries next to run events.
// Units are nanoseconds, matching the recording convention everywhere in
// this repo.
func EncodeHistogram(s hdr.Snapshot) map[string]any {
	return map[string]any{
		"count":   s.Count,
		"mean_ns": round(s.Mean),
		"p50_ns":  s.P50,
		"p90_ns":  s.P90,
		"p99_ns":  s.P99,
		"p999_ns": s.P999,
		"max_ns":  s.Max,
	}
}
