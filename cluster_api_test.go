package smartmem_test

import (
	"strings"
	"testing"
	"time"

	"smartmem"
	"smartmem/sinks"
)

// clusterBaseConfig is a small oversubscribed node: one analytics VM whose
// dataset exceeds RAM, against a sliver of tmem, so a cluster of them
// generates remote overflow.
func clusterBaseConfig(seed uint64) smartmem.Config {
	return smartmem.Config{
		TmemBytes:   16 * smartmem.MiB,
		TmemEnabled: true,
		Policy:      smartmem.SmartAlloc{P: 2},
		Seed:        seed,
		VMs: []smartmem.VMSpec{{
			ID: 1, Name: "VM1", RAMBytes: 32 * smartmem.MiB,
			Workload: smartmem.InMemoryAnalytics{
				Label: "run", DatasetBytes: 48 * smartmem.MiB, Passes: 2,
				CPUPerPageLoad: 400 * smartmem.Duration(time.Microsecond),
				CPUPerPagePass: 2500 * smartmem.Duration(time.Microsecond),
			},
		}},
	}
}

func TestSessionWithCluster(t *testing.T) {
	var nodesSeen = map[string]bool{}
	sess, err := smartmem.NewSession(clusterBaseConfig(1),
		smartmem.WithCluster(2),
		smartmem.WithObserver(smartmem.ObserverFunc(func(e smartmem.Event) {
			if v, ok := e.(smartmem.VMStarted); ok {
				nodesSeen[v.Node] = true
			}
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("node summaries = %+v, want 2", res.Nodes)
	}
	if !nodesSeen["n0"] || !nodesSeen["n1"] {
		t.Errorf("VMStarted node tags = %v", nodesSeen)
	}
	if len(res.RunsFor("n0/VM1", "run")) != 1 || len(res.RunsFor("n1/VM1", "run")) != 1 {
		t.Errorf("runs = %+v", res.Runs)
	}
	// The replicated nodes are symmetric and mutually overflowing.
	if res.Nodes[0].Remote == nil || res.Nodes[0].Remote.PutsOK == 0 {
		t.Errorf("node 0 remote tier idle: %+v", res.Nodes[0].Remote)
	}
}

func TestNewClusterSessionHeterogeneous(t *testing.T) {
	donor := clusterBaseConfig(1)
	spare := donor
	spare.TmemBytes = 128 * smartmem.MiB
	spare.VMs = []smartmem.VMSpec{{
		ID: 1, Name: "idle", RAMBytes: 64 * smartmem.MiB,
		Workload: smartmem.InMemoryAnalytics{Label: "warm", DatasetBytes: 16 * smartmem.MiB, Passes: 1},
	}}

	var sb strings.Builder
	sess, err := smartmem.NewClusterSession(
		smartmem.ClusterConfig{Nodes: []smartmem.Config{donor, spare}, RemoteTmem: true},
		smartmem.WithSink(sinks.NDJSON(&sb)),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The oversubscribed donor ships overflow into the spare node's store.
	if res.Nodes[0].Remote == nil || res.Nodes[0].Remote.PutsOK == 0 {
		t.Errorf("donor never overflowed: %+v", res.Nodes[0].Remote)
	}
	if !strings.Contains(sb.String(), `"node":"n0"`) {
		t.Error("NDJSON stream lacks node tags")
	}
	if !strings.Contains(sb.String(), `"record":"result"`) {
		t.Error("NDJSON stream lacks the result record")
	}
}

func TestWithClusterBelowTwoIsSingleNode(t *testing.T) {
	sess, err := smartmem.NewSession(clusterBaseConfig(1), smartmem.WithCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 0 {
		t.Errorf("WithCluster(1) produced a cluster: %+v", res.Nodes)
	}
	if len(res.RunsFor("VM1", "run")) != 1 {
		t.Errorf("runs = %+v", res.Runs)
	}
}

func TestPublicPolicyRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, e := range smartmem.Policies() {
		names[e.Name] = true
	}
	for _, want := range []string{"no-tmem", "greedy", "static-alloc", "reconf-static", "smart-alloc"} {
		if !names[want] {
			t.Errorf("policy registry missing %q", want)
		}
	}
	p, err := smartmem.ParsePolicy("no-tmem")
	if err != nil {
		t.Fatalf("ParsePolicy(no-tmem): %v", err)
	}
	if p.Name() != "no-tmem" {
		t.Errorf("sentinel name = %q", p.Name())
	}
	// The sentinel runs the baseline end to end through the public API.
	cfg := clusterBaseConfig(1)
	cfg.Policy = p
	res, err := smartmem.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "no-tmem" {
		t.Errorf("baseline policy name = %q", res.PolicyName)
	}
	if res.VMs[0].Tmem.PutsTotal != 0 {
		t.Error("no-tmem run still issued tmem puts")
	}
}

func TestWithClusterRejectsOnMilestone(t *testing.T) {
	cfg := clusterBaseConfig(1)
	cfg.OnMilestone = func(vm, label string) {}
	if _, err := smartmem.NewSession(cfg, smartmem.WithCluster(2)); err == nil ||
		!strings.Contains(err.Error(), "OnMilestone") {
		t.Errorf("WithCluster accepted a coordinated config: %v", err)
	}
	// Single-node sessions keep accepting it.
	if _, err := smartmem.NewSession(cfg); err != nil {
		t.Errorf("single-node session rejected OnMilestone config: %v", err)
	}
}
