GO ?= go

.PHONY: all build test race vet lint fmt bench report clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ./... covers every package of the module, examples/ and cmd/ included.
vet:
	$(GO) vet ./...

# lint fails on unformatted files (gofmt prints their names) and vets the
# whole module. CI runs this.
lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -l -w .

# Quick engine benchmarks (one iteration each); the full figure benches
# live in bench_test.go. The store/daemon concurrency benches compare the
# striped hot path against the shards-1 (single-mutex) baseline.
bench:
	$(GO) test -bench 'BenchmarkEngine' -benchtime 1x -run '^$$' .
	$(GO) test -bench 'BenchmarkBackendParallel' -benchtime 10000x -run '^$$' ./internal/tmem
	$(GO) test -bench 'BenchmarkKVServer' -benchtime 1000x -run '^$$' ./internal/kvstore

# Regenerate every paper figure and table with all CPUs.
report:
	$(GO) run ./cmd/smartmem-report

clean:
	$(GO) clean ./...
