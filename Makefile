GO ?= go

.PHONY: all build test race vet lint fmt bench bench-json bench-gate load-smoke load-smoke-durable sweep-smoke profile report clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ./... covers every package of the module, examples/ and cmd/ included.
vet:
	$(GO) vet ./...

# lint fails on unformatted files (gofmt prints their names) and vets the
# whole module. CI runs this.
lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -l -w .

# Quick engine benchmarks (one iteration each); the full figure benches
# live in bench_test.go. BenchmarkRunCluster (sequential vs parallel
# cluster runtime) and BenchmarkSweep (cold steal/static vs warm memo
# cache) run without -benchmem: their parallel workers' allocation counts
# wobble by a few dozen with goroutine scheduling, which would trip
# the gate's absolute allocs/op rule. The store/daemon concurrency benches compare the
# striped hot path against the shards-1 (single-mutex) baseline, the
# remote-tier bench shows overflow absorbed by a peer store instead of
# failing to the disk-swap path (its -batch variants report transport
# round-trips/op), and the sim kernel benches pin the zero-allocation
# scheduling hot path. All benches run with -benchmem so allocation
# regressions are visible in the output and in BENCH.json.
bench:
	$(GO) test -bench 'BenchmarkEngine' -benchtime 1x -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkSweep' -benchtime 1x -run '^$$' .
	$(GO) test -bench 'BenchmarkRunCluster' -benchtime 1x -run '^$$' .
	$(GO) test -bench 'BenchmarkKernel|BenchmarkProcSleep|BenchmarkCondPingPong' -benchtime 100000x -benchmem -run '^$$' ./internal/sim
	$(GO) test -bench 'BenchmarkBackendParallel' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem
	$(GO) test -bench 'BenchmarkRemoteTier' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem
	$(GO) test -bench 'BenchmarkCompressedTier' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem
	$(GO) test -bench 'BenchmarkKVServer' -benchtime 1000x -benchmem -run '^$$' ./internal/kvstore
	$(GO) test -bench 'BenchmarkWALAppend' -benchtime 1000x -benchmem -run '^$$' ./internal/durable
	$(GO) test -bench 'BenchmarkHDR' -benchtime 100000x -benchmem -run '^$$' ./internal/hdr
	$(GO) run ./cmd/smartmem-loadgen -inprocess -rate 2000 -duration 2s -conns 2 -quiet -bench

# Machine-readable benchmark snapshot: runs the same suite as `make bench`
# and writes BENCH.json (the perf trajectory record; CI uploads it next to
# the raw bench-out artifact). The loadgen line folds open-loop p50/p99/p999
# into the same document as the closed-loop benchmarks.
# No pipe into tee here: a failing bench must fail the target instead of
# being masked by the pipe's exit status (POSIX sh has no pipefail).
bench-json:
	@tmp=$$(mktemp); \
	{ $(GO) test -bench 'BenchmarkEngine' -benchtime 1x -benchmem -run '^$$' . && \
	  $(GO) test -bench 'BenchmarkSweep' -benchtime 1x -run '^$$' . && \
	  $(GO) test -bench 'BenchmarkRunCluster' -benchtime 1x -run '^$$' . && \
	  $(GO) test -bench 'BenchmarkKernel|BenchmarkProcSleep|BenchmarkCondPingPong' -benchtime 100000x -benchmem -run '^$$' ./internal/sim && \
	  $(GO) test -bench 'BenchmarkBackendParallel' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem && \
	  $(GO) test -bench 'BenchmarkRemoteTier' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem && \
	  $(GO) test -bench 'BenchmarkCompressedTier' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem && \
	  $(GO) test -bench 'BenchmarkKVServer' -benchtime 1000x -benchmem -run '^$$' ./internal/kvstore && \
	  $(GO) test -bench 'BenchmarkWALAppend' -benchtime 1000x -benchmem -run '^$$' ./internal/durable && \
	  $(GO) test -bench 'BenchmarkHDR' -benchtime 100000x -benchmem -run '^$$' ./internal/hdr && \
	  $(GO) run ./cmd/smartmem-loadgen -inprocess -rate 2000 -duration 2s -conns 2 -quiet -bench; } > "$$tmp" || { cat "$$tmp"; rm -f "$$tmp"; exit 1; }; \
	cat "$$tmp"; \
	$(GO) run ./cmd/smartmem-benchjson < "$$tmp" > BENCH.json && rm -f "$$tmp" && \
	echo "wrote BENCH.json"

# Perf gate: rebuild the benchmark snapshot into bench-out/ and hold it
# against the committed BENCH.json under the per-benchmark budgets. CI runs
# this (failing the build on a busted budget) before refreshing the
# committed baseline. Run `make bench-json` first if bench-out/BENCH.json
# is missing or stale.
bench-gate:
	@test -f bench-out/BENCH.json || { echo "bench-out/BENCH.json missing: run the bench suite into bench-out first (CI does) or 'make bench-json' and copy it"; exit 1; }
	$(GO) run ./cmd/smartmem-benchgate -current bench-out/BENCH.json -baseline BENCH.json -budgets bench-budgets.txt

# Loadgen SLO smoke: a short open-loop run against an in-process server,
# gated on zero transport errors, a minimum sustained rate and a p99
# ceiling. The ceiling is deliberately generous (~25x the quiet-machine
# p99) so it only trips on real serialization bugs, not runner jitter.
load-smoke:
	@mkdir -p bench-out
	$(GO) run ./cmd/smartmem-loadgen -inprocess -rate 2000 -duration 5s -conns 2 -keys 8192 -json bench-out/load-smoke.json
	$(GO) run ./cmd/smartmem-benchgate -load bench-out/load-smoke.json -min-rate 1800 -max-p99 50ms

# Same SLO gate with the kvd's durable journal write-through under the
# store (segmented WAL in a throwaway directory, interval fsync): every
# put/flush commits to the log before acking, so this catches commit-path
# latency regressions the memory-only smoke can't see. The p99 ceiling is
# doubled: fsync stalls ride the runner's filesystem.
load-smoke-durable:
	@mkdir -p bench-out
	@rm -rf bench-out/durable-smoke && mkdir -p bench-out/durable-smoke
	$(GO) run ./cmd/smartmem-loadgen -inprocess -durable bench-out/durable-smoke -fsync interval \
		-rate 2000 -duration 5s -conns 2 -keys 8192 -json bench-out/load-smoke-durable.json
	$(GO) run ./cmd/smartmem-benchgate -load bench-out/load-smoke-durable.json -min-rate 1800 -max-p99 100ms
	@rm -rf bench-out/durable-smoke

# Tournament warm-cache smoke: run one small tournament twice against the
# same memo directory under the race detector. The second pass must be
# served entirely from the cache and emit a byte-identical league document
# (cmp fails the target otherwise) — the end-to-end proof that memoization
# changes wall-clock only, never results.
sweep-smoke:
	@mkdir -p bench-out && rm -rf bench-out/sweep-memo
	$(GO) run -race ./cmd/smartmem-sim -tournament -scenario scale-2,leaky \
		-policies greedy,smart-alloc:P=2 -seeds 11,23 -memo bench-out/sweep-memo \
		-league-json bench-out/sweep-cold.json -quiet
	$(GO) run -race ./cmd/smartmem-sim -tournament -scenario scale-2,leaky \
		-policies greedy,smart-alloc:P=2 -seeds 11,23 -memo bench-out/sweep-memo \
		-league-json bench-out/sweep-warm.json -quiet
	cmp bench-out/sweep-cold.json bench-out/sweep-warm.json
	@rm -rf bench-out/sweep-memo
	@echo "sweep-smoke: warm league byte-identical to cold"

# Profile a tier-stack-heavy run (kv-heavy hammers the striped store; swap
# -scenario cluster-2 to profile the cluster runtime). Inspect with:
#   go tool pprof cpu.prof
#   go tool pprof mem.prof
profile:
	$(GO) run ./cmd/smartmem-sim -scenario kv-heavy -policy smart-alloc:P=2 -seed 11 \
		-cpuprofile cpu.prof -memprofile mem.prof -quiet > /dev/null
	@echo "wrote cpu.prof and mem.prof"

# Regenerate every paper figure and table with all CPUs.
report:
	$(GO) run ./cmd/smartmem-report

clean:
	$(GO) clean ./...
