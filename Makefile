GO ?= go

.PHONY: all build test race vet lint fmt bench bench-json profile report clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ./... covers every package of the module, examples/ and cmd/ included.
vet:
	$(GO) vet ./...

# lint fails on unformatted files (gofmt prints their names) and vets the
# whole module. CI runs this.
lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -l -w .

# Quick engine benchmarks (one iteration each); the full figure benches
# live in bench_test.go. The store/daemon concurrency benches compare the
# striped hot path against the shards-1 (single-mutex) baseline, the
# remote-tier bench shows overflow absorbed by a peer store instead of
# failing to the disk-swap path (its -batch variants report transport
# round-trips/op), and the sim kernel benches pin the zero-allocation
# scheduling hot path. All benches run with -benchmem so allocation
# regressions are visible in the output and in BENCH.json.
bench:
	$(GO) test -bench 'BenchmarkEngine' -benchtime 1x -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkKernel|BenchmarkProcSleep|BenchmarkCondPingPong' -benchtime 100000x -benchmem -run '^$$' ./internal/sim
	$(GO) test -bench 'BenchmarkBackendParallel' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem
	$(GO) test -bench 'BenchmarkRemoteTier' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem
	$(GO) test -bench 'BenchmarkCompressedTier' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem
	$(GO) test -bench 'BenchmarkKVServer' -benchtime 1000x -benchmem -run '^$$' ./internal/kvstore
	$(GO) test -bench 'BenchmarkWALAppend' -benchtime 1000x -benchmem -run '^$$' ./internal/durable

# Machine-readable benchmark snapshot: runs the same suite as `make bench`
# and writes BENCH.json (the perf trajectory record; CI uploads it next to
# the raw bench-out artifact).
# No pipe into tee here: a failing bench must fail the target instead of
# being masked by the pipe's exit status (POSIX sh has no pipefail).
bench-json:
	@tmp=$$(mktemp); \
	{ $(GO) test -bench 'BenchmarkEngine' -benchtime 1x -benchmem -run '^$$' . && \
	  $(GO) test -bench 'BenchmarkKernel|BenchmarkProcSleep|BenchmarkCondPingPong' -benchtime 100000x -benchmem -run '^$$' ./internal/sim && \
	  $(GO) test -bench 'BenchmarkBackendParallel' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem && \
	  $(GO) test -bench 'BenchmarkRemoteTier' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem && \
	  $(GO) test -bench 'BenchmarkCompressedTier' -benchtime 10000x -benchmem -run '^$$' ./internal/tmem && \
	  $(GO) test -bench 'BenchmarkKVServer' -benchtime 1000x -benchmem -run '^$$' ./internal/kvstore && \
	  $(GO) test -bench 'BenchmarkWALAppend' -benchtime 1000x -benchmem -run '^$$' ./internal/durable; } > "$$tmp" || { cat "$$tmp"; rm -f "$$tmp"; exit 1; }; \
	cat "$$tmp"; \
	$(GO) run ./cmd/smartmem-benchjson < "$$tmp" > BENCH.json && rm -f "$$tmp" && \
	echo "wrote BENCH.json"

# Profile a tier-stack-heavy run (kv-heavy hammers the striped store; swap
# -scenario cluster-2 to profile the cluster runtime). Inspect with:
#   go tool pprof cpu.prof
#   go tool pprof mem.prof
profile:
	$(GO) run ./cmd/smartmem-sim -scenario kv-heavy -policy smart-alloc:P=2 -seed 11 \
		-cpuprofile cpu.prof -memprofile mem.prof -quiet > /dev/null
	@echo "wrote cpu.prof and mem.prof"

# Regenerate every paper figure and table with all CPUs.
report:
	$(GO) run ./cmd/smartmem-report

clean:
	$(GO) clean ./...
