GO ?= go

.PHONY: all build test race vet fmt bench report clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Quick engine benchmarks (one iteration each); the full figure benches
# live in bench_test.go.
bench:
	$(GO) test -bench 'BenchmarkEngine' -benchtime 1x -run '^$$' .

# Regenerate every paper figure and table with all CPUs.
report:
	$(GO) run ./cmd/smartmem-report

clean:
	$(GO) clean ./...
