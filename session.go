package smartmem

import (
	"context"
	"errors"
	"sync"
	"time"

	"smartmem/internal/core"
)

// Event is one element of a run's typed lifecycle stream. The concrete
// members of the sum are VMStarted, Milestone, RunCompleted, SampleTick,
// TargetUpdate and RunFinished; switch on the concrete type (or on
// Event.Kind()) to handle them.
type Event = core.Event

// The event stream's concrete types, in rough emission order.
type (
	// VMStarted reports a VM's workload beginning execution.
	VMStarted = core.VMStarted
	// Milestone reports a workload passing a named internal milestone.
	Milestone = core.Milestone
	// RunCompleted reports one finished workload run measurement.
	RunCompleted = core.RunCompleted
	// SampleTick reports one MM sampling interval's statistics.
	SampleTick = core.SampleTick
	// TargetUpdate reports one per-VM tmem target sent by the MM.
	TargetUpdate = core.TargetUpdate
	// RunFinished is the final event, carrying the (possibly partial)
	// Result.
	RunFinished = core.RunFinished
)

// Observer receives a session's event stream. Calls are serialized and
// synchronous with the simulation; see core.Observer.
type Observer = core.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = core.ObserverFunc

// Sink consumes a session's event stream and final result in a serialized
// format — the machine-readable run artifacts the figures pipeline and the
// CLIs export. Implementations live in the sinks package (sinks.JSON,
// sinks.CSV, sinks.NDJSON); any type with these two methods plugs in.
type Sink interface {
	// Event consumes one lifecycle event. Returning an error stops
	// further delivery to this sink; the first error is reported by
	// Session.Run.
	Event(Event) error
	// Close flushes the sink with the run's final (possibly partial,
	// possibly nil on setup failure) result. Called exactly once.
	Close(*Result) error
}

// clockSetter is implemented by sinks that can stamp records with wall
// time; Session wires its WithClock clock into them.
type clockSetter interface{ SetClock(func() time.Time) }

// Session is one constructed, inspectable node run: the configuration is
// validated and frozen at construction, observers and sinks subscribe to
// the typed event stream, and the run itself executes at most once via
// Run. A Session replaces the fire-and-forget Run(Config) call when the
// caller wants to observe or steer the run while it executes.
type Session struct {
	cfg      Config
	cluster  *core.ClusterConfig // non-nil: the run is a multi-node cluster
	clusterN int                 // WithCluster request, resolved at construction
	ctx      context.Context
	obs      []Observer
	sinks    []Sink
	clock    func() time.Time

	mu      sync.Mutex
	started bool
	done    bool
	res     *Result
	err     error
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithContext attaches a cancellation context: cancelling it makes Run
// return promptly with the context's error and a partial Result.
func WithContext(ctx context.Context) SessionOption {
	return func(s *Session) {
		if ctx != nil {
			s.ctx = ctx
		}
	}
}

// WithObserver subscribes an observer to the session's event stream.
// Repeatable; observers run in registration order.
func WithObserver(obs Observer) SessionOption {
	return func(s *Session) {
		if obs != nil {
			s.obs = append(s.obs, obs)
		}
	}
}

// WithSink attaches a result sink: it receives every event and is closed
// with the final result when the run ends. Repeatable.
func WithSink(sink Sink) SessionOption {
	return func(s *Session) {
		if sink != nil {
			s.sinks = append(s.sinks, sink)
		}
	}
}

// WithCluster lifts the session into an n-node cluster: the configuration
// is replicated onto n nodes sharing one simulated clock, wired
// peer-to-peer so each node's remote tmem tier lands in the next node's
// store (RAMster-style overflow; see core.ClusterConfig). Events arrive
// tagged with a node id ("n0", "n1", ...) and VM names carry node prefixes.
// Values below 2 leave the session single-node. The replicated policy value
// is shared across nodes — the paper's policies are stateless values, so
// each node's MM still deliberates independently. Configs with OnMilestone
// set are rejected at construction (the callback's VM names are node-local
// and would conflate nodes); coordinated clusters build per-node configs
// and use NewClusterSession.
func WithCluster(n int) SessionOption {
	return func(s *Session) {
		if n > 1 {
			s.clusterN = n
		}
	}
}

// WithClock overrides the wall-clock used to timestamp exported records
// (sinks only stamp wall time when a clock is set — virtual time is always
// present). Tests inject a fixed clock for reproducible artifacts.
func WithClock(now func() time.Time) SessionOption {
	return func(s *Session) {
		if now != nil {
			s.clock = now
		}
	}
}

// NewSession validates cfg and constructs a runnable session. A validation
// error (duplicate VM ids, bad page size, ...) is reported here, before
// anything runs.
func NewSession(cfg Config, opts ...SessionOption) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Session{cfg: cfg, ctx: context.Background()}
	for _, opt := range opts {
		opt(s)
	}
	if s.clusterN > 1 {
		// OnMilestone coordination state cannot be replicated safely: the
		// callback receives node-local VM names, so one closure counting
		// "VM1" would conflate every node's VM1 and fire its stop logic
		// early. Coordinated clusters build per-node configs and go
		// through NewClusterSession instead. (A shared Stop flag is fine:
		// raising it is an explicit whole-cluster stop.)
		if cfg.OnMilestone != nil {
			return nil, errors.New("smartmem: WithCluster cannot replicate a config with OnMilestone set; build per-node configs and use NewClusterSession")
		}
		cc := core.ClusterConfig{RemoteTmem: true}
		for i := 0; i < s.clusterN; i++ {
			cc.Nodes = append(cc.Nodes, cfg)
		}
		if err := cc.Validate(); err != nil {
			return nil, err
		}
		s.cluster = &cc
	}
	s.wireClock()
	return s, nil
}

// NewClusterSession constructs a session over an explicit multi-node
// configuration — heterogeneous clusters (per-node VM populations, tmem
// capacities, policies) that WithCluster's replication cannot express. All
// SessionOptions except WithCluster apply.
func NewClusterSession(cc ClusterConfig, opts ...SessionOption) (*Session, error) {
	if err := cc.Validate(); err != nil {
		return nil, err // includes the no-nodes case
	}
	s := &Session{cfg: cc.Nodes[0], cluster: &cc, ctx: context.Background()}
	for _, opt := range opts {
		opt(s)
	}
	s.wireClock()
	return s, nil
}

func (s *Session) wireClock() {
	if s.clock == nil {
		return
	}
	for _, sink := range s.sinks {
		if cs, ok := sink.(clockSetter); ok {
			cs.SetClock(s.clock)
		}
	}
}

// Config returns the session's configuration as constructed. For a cluster
// session this is node 0's configuration; use Cluster for the full
// multi-node view.
func (s *Session) Config() Config { return s.cfg }

// Cluster returns the session's multi-node configuration and true when the
// session runs a cluster (NewClusterSession or WithCluster); a single-node
// session returns a zero ClusterConfig and false.
func (s *Session) Cluster() (ClusterConfig, bool) {
	if s.cluster == nil {
		return ClusterConfig{}, false
	}
	return *s.cluster, true
}

// Run executes the session to completion (or cancellation) and returns the
// result. It may be called once; further calls return the stored outcome.
// On context cancellation the returned error is the context's and the
// Result is non-nil but partial (Result.Cancelled set). Sink errors are
// joined into the returned error without discarding the Result.
func (s *Session) Run() (*Result, error) {
	s.mu.Lock()
	if s.started {
		res, err, done := s.res, s.err, s.done
		s.mu.Unlock()
		if !done {
			return nil, errors.New("smartmem: session already running")
		}
		return res, err
	}
	s.started = true
	s.mu.Unlock()

	var sinkErrs []error
	obs := s.obs
	for _, sink := range s.sinks {
		sink := sink
		failed := false
		obs = append(obs, ObserverFunc(func(e Event) {
			if failed {
				return
			}
			if err := sink.Event(e); err != nil {
				failed = true
				sinkErrs = append(sinkErrs, err)
			}
		}))
	}

	var res *Result
	var err error
	if s.cluster != nil {
		res, err = core.RunClusterWith(s.ctx, *s.cluster, core.MultiObserver(obs...))
	} else {
		res, err = core.RunWith(s.ctx, s.cfg, core.MultiObserver(obs...))
	}

	for _, sink := range s.sinks {
		if cerr := sink.Close(res); cerr != nil {
			sinkErrs = append(sinkErrs, cerr)
		}
	}
	if len(sinkErrs) > 0 {
		err = errors.Join(append([]error{err}, sinkErrs...)...)
	}

	s.mu.Lock()
	s.res, s.err, s.done = res, err, true
	s.mu.Unlock()
	return res, err
}

// Result returns the run's outcome once Run has finished: the Result
// (possibly partial after cancellation) and the run error. Before the run
// completes both are nil.
func (s *Session) Result() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return nil, nil
	}
	return s.res, s.err
}

// Done reports whether the run has finished.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}
