// usemem-trace reruns the paper's Usemem Scenario (Table II row 3) under
// greedy, reconf-static and smart-alloc(P=2%) and draws the tmem-usage
// charts of Figure 8, showing the fairness-vs-adaptiveness trade-off:
// greedy lets the early VMs starve VM3; reconf-static caps everyone
// equally; smart-alloc sits in between.
package main

import (
	"fmt"
	"log"
	"os"

	"smartmem"
)

func main() {
	for _, policy := range []string{"greedy", "reconf-static", "smart-alloc:P=2"} {
		if err := smartmem.WriteScenarioSeries(os.Stdout, "usemem", policy, 11); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("Compare: under greedy VM3's series stays near zero while VM1/VM2")
	fmt.Println("hold the pool; reconf-static splits it equally among active VMs;")
	fmt.Println("smart-alloc lets VM1/VM2 take more but converges toward fairness.")
}
