// graph-pagerank runs the real miniature computations behind the two
// CloudSuite workload models — R-MAT + PageRank (graph-analytics) and
// MovieLens-shaped ratings + MiniALS (in-memory-analytics) — and then
// simulates the corresponding VM under memory pressure, tying the concrete
// algorithms to the page-level models the policies are evaluated on.
package main

import (
	"fmt"
	"log"

	"smartmem"
)

func main() {
	rng := smartmem.NewRNG(7)

	// 1. The actual computations the models stand in for.
	g := smartmem.RMAT(rng, 14, 16) // 16k vertices, ~262k edges
	ranks := smartmem.PageRank(g, 20, 0.85)
	top, topRank := 0, 0.0
	for v, r := range ranks {
		if r > topRank {
			top, topRank = v, r
		}
	}
	fmt.Printf("R-MAT graph: %d vertices, %d edges; top vertex %d holds %.4f%% of rank\n",
		g.N, g.Edges(), top, topRank*100)

	ratings := smartmem.MovieLensShaped(rng, 2000, 500, 80000)
	rmse := smartmem.MiniALS(ratings, 8, 10, smartmem.NewRNG(3))
	fmt.Printf("MovieLens-shaped ratings: %d entries; ALS RMSE after 10 rounds: %.3f\n\n",
		len(ratings.Value), rmse)

	// 2. The same applications as memory workloads inside a pressured VM.
	res, err := smartmem.Run(smartmem.Config{
		TmemBytes:   512 * smartmem.MiB,
		TmemEnabled: true,
		Policy:      smartmem.SmartAlloc{P: 4},
		Seed:        7,
		VMs: []smartmem.VMSpec{
			{
				ID: 1, Name: "graph", RAMBytes: 512 * smartmem.MiB,
				Workload: smartmem.GraphAnalytics{
					Label:                 "pagerank",
					GraphBytes:            768 * smartmem.MiB,
					Iterations:            5,
					TouchesPerPagePerIter: 1.5,
					HotFraction:           0.4,
					HotProb:               0.9,
				},
			},
			{
				ID: 2, Name: "recsys", RAMBytes: 512 * smartmem.MiB,
				Workload: smartmem.InMemoryAnalytics{
					Label:        "als",
					DatasetBytes: 640 * smartmem.MiB,
					Passes:       3,
				},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Runs {
		fmt.Printf("VM %-7s %-9s finished in %.1f virtual seconds\n", r.VM, r.Label, r.Duration().Seconds())
	}
	for _, vm := range res.VMs {
		total := vm.Kernel.TmemHits + vm.Kernel.DiskReads
		if total == 0 {
			continue
		}
		fmt.Printf("VM %-7s refaults: %.1f%% served from tmem\n",
			vm.Name, 100*float64(vm.Kernel.TmemHits)/float64(total))
	}
}
