// policy-compare reruns the paper's Scenario 2 (graph-analytics, staggered
// VM3 — the scenario of Figures 5 and 6) under every policy and prints a
// compact comparison: who wins for which VM, as in the paper's §V-B.
//
// Run with -full for the five-seed version (slower, smaller error bars).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"smartmem"
)

func main() {
	full := flag.Bool("full", false, "use the paper's five repetitions instead of two")
	flag.Parse()

	seeds := []uint64{11, 23}
	if *full {
		seeds = nil // default five seeds
	}

	table, err := smartmem.ScenarioTimes("s2", nil, seeds)
	if err != nil {
		log.Fatal(err)
	}
	if err := smartmem.WriteScenarioTimes(os.Stdout, table); err != nil {
		log.Fatal(err)
	}

	// The paper's headline comparison: smart-alloc(P=6%) vs greedy and
	// no-tmem for the starved latecomer VM3.
	fmt.Println()
	for _, base := range []string{"greedy", "no-tmem"} {
		sp, err := table.Speedup("VM3", "graph", "smart-alloc:P=6", base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("smart-alloc(P=6%%) runs VM3 %.1f%% faster than %s\n", sp*100, base)
	}
}
