// Quickstart: simulate two memory-pressured VMs sharing a tmem pool under
// the smart-alloc policy and print what happened.
package main

import (
	"fmt"
	"log"

	"smartmem"
)

func main() {
	res, err := smartmem.Run(smartmem.Config{
		TmemBytes:   256 * smartmem.MiB,
		TmemEnabled: true,
		Policy:      smartmem.SmartAlloc{P: 2},
		Seed:        1,
		VMs: []smartmem.VMSpec{
			{
				ID: 1, Name: "VM1", RAMBytes: 256 * smartmem.MiB,
				// usemem allocates 128 MiB steps up to 1 GiB, traversing
				// each region — far more than the VM's RAM, so it swaps
				// through tmem.
				Workload: smartmem.UsememWorkload{
					StartBytes: 128 * smartmem.MiB,
					StepBytes:  128 * smartmem.MiB,
					MaxBytes:   384 * smartmem.MiB,
				},
			},
			{
				ID: 2, Name: "VM2", RAMBytes: 256 * smartmem.MiB,
				StartDelay: 5 * smartmem.Second,
				Workload: smartmem.InMemoryAnalytics{
					Label:        "analytics",
					DatasetBytes: 384 * smartmem.MiB,
					Passes:       2,
				},
			},
		},
		// Let the usemem VM stop once it has done a few full traversals.
		Limit: 120 * smartmem.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("finished at %.1f virtual seconds under policy %q\n\n", res.EndTime.Seconds(), res.PolicyName)
	for _, r := range res.Runs {
		fmt.Printf("%-4s %-18s took %6.2fs\n", r.VM, r.Label, r.Duration().Seconds())
	}
	fmt.Println()
	for _, vm := range res.VMs {
		fmt.Printf("%s: %d tmem puts ok, %d failed, %d tmem hits, %d disk reads\n",
			vm.Name, vm.Kernel.PutsOK, vm.Kernel.PutsFailed, vm.Kernel.TmemHits, vm.Kernel.DiskReads)
	}
	fmt.Printf("\npeak tmem use: VM1=%v pages, VM2=%v pages (pool %v pages)\n",
		res.Series.Get("tmem-VM1").Max(),
		res.Series.Get("tmem-VM2").Max(),
		res.Series.Get("free-tmem").At(0).V+res.Series.Get("tmem-VM1").At(0).V+res.Series.Get("tmem-VM2").At(0).V)
}
