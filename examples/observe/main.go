// observe demonstrates the Session API: the paper's Scenario 2 run is
// constructed as a session, a live observer prints milestones and target
// re-allocations as the MM reacts to the staggered third VM, an NDJSON
// sink exports the full event stream to a file, and a deadline context
// shows cancellation returning a partial result.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"smartmem"
	"smartmem/internal/experiments"
	"smartmem/sinks"
)

func main() {
	scn, err := experiments.BySlug("s2")
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := scn.Build(11, "smart-alloc:P=6")
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("s2-run.ndjson")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	sess, err := smartmem.NewSession(cfg,
		// Live view: every workload milestone and every target batch the
		// MM sends back to the hypervisor, as they happen.
		smartmem.WithObserver(smartmem.ObserverFunc(func(e smartmem.Event) {
			switch ev := e.(type) {
			case smartmem.VMStarted:
				fmt.Printf("%7.1fs  %s starts %s\n", ev.At.Seconds(), ev.VM, ev.Workload)
			case smartmem.Milestone:
				fmt.Printf("%7.1fs  %s reached %s\n", ev.At.Seconds(), ev.VM, ev.Label)
			case smartmem.TargetUpdate:
				fmt.Printf("%7.1fs  MM re-targets %s to %d pages\n", ev.At.Seconds(), ev.VM, ev.Target)
			case smartmem.RunCompleted:
				fmt.Printf("%7.1fs  %s finished %s in %.1fs\n", ev.At.Seconds(),
					ev.Record.VM, ev.Record.Label, ev.Record.Duration().Seconds())
			}
		})),
		// Machine-readable artifact: the same stream as NDJSON.
		smartmem.WithSink(sinks.NDJSON(f)),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinished at %.1f virtual seconds; event log in s2-run.ndjson\n\n", res.EndTime.Seconds())

	// Cancellation: the same scenario under a context that gives up
	// almost immediately still yields a partial result.
	ctx, cancel := context.WithCancel(context.Background())
	cfg2, err := scn.Build(11, "greedy")
	if err != nil {
		log.Fatal(err)
	}
	partialSess, err := smartmem.NewSession(cfg2,
		smartmem.WithContext(ctx),
		smartmem.WithObserver(smartmem.ObserverFunc(func(e smartmem.Event) {
			if st, ok := e.(smartmem.SampleTick); ok && st.Seq == 5 {
				cancel() // give up after five sampling intervals
			}
		})),
	)
	if err != nil {
		log.Fatal(err)
	}
	partial, err := partialSess.Run()
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("expected cancellation, got %v", err)
	}
	fmt.Printf("cancelled run stopped at %.1f virtual seconds with %d samples recorded\n",
		partial.EndTime.Seconds(), partial.SampleTicks)
}
