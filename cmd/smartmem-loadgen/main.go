// Command smartmem-loadgen is the open-loop load generator for
// smartmem-kvd: it drives the KV wire protocol over real sockets at a
// *target* op rate — the schedule of intended send times is fixed up
// front by the arrival process, and a slow server does not slow the
// generator down, it just accumulates latency. Every latency sample is
// measured from the op's intended send time, so queueing delay that a
// closed-loop benchmark would silently absorb (coordinated omission) is
// charged to the ops that suffered it. This is the harness every wire-rate
// claim in this repo is judged by.
//
// Requests are pipelined per connection (writer paced by the schedule,
// reader matching in-order responses) and latencies recorded into
// internal/hdr histograms: lock-free, 0 allocs per record, merged across
// connections at the end.
//
// Examples:
//
//	smartmem-loadgen -addr :7077 -conns 8 -rate 50000 -duration 30s
//	smartmem-loadgen -addr :7077 -mix put=10,get=90 -skew 1.2 -arrival poisson
//	smartmem-loadgen -inprocess -rate 20000 -duration 5s -bench
//
// -bench prints go-bench-style result lines (consumed by
// cmd/smartmem-benchjson into BENCH.json); -json writes the full report,
// which cmd/smartmem-benchgate can hold against a minimum throughput and
// a p99 ceiling (the CI loadgen smoke).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"smartmem/internal/durable"
	"smartmem/sinks"
)

func main() {
	var (
		addr        = flag.String("addr", "", "address of the smartmem-kvd to drive")
		conns       = flag.Int("conns", 4, "concurrent connections")
		rate        = flag.Float64("rate", 10000, "target op rate per second, total across connections")
		duration    = flag.Duration("duration", 10*time.Second, "run length")
		mixSpec     = flag.String("mix", "put=45,get=45,flush=10", "operation mix weights")
		keys        = flag.Int("keys", 1<<16, "key-space size in pages")
		skew        = flag.Float64("skew", 0, "zipf skew parameter s (> 1 enables zipf; otherwise uniform)")
		arrival     = flag.String("arrival", ArrivalFixed, "arrival process: fixed or poisson")
		pageSize    = flag.Int("pagesize", 4096, "page size; must match the daemon")
		seed        = flag.Int64("seed", 1, "rng seed for mix and key draws")
		outstanding = flag.Int("outstanding", 4096, "per-connection pipeline depth bound")
		benchOut    = flag.Bool("bench", false, "print go-bench-style result lines (for smartmem-benchjson)")
		jsonOut     = flag.String("json", "", "write the full JSON report to this file (- for stdout)")
		inprocess   = flag.Bool("inprocess", false, "serve an in-process loopback store instead of dialing -addr (self-contained smoke)")
		inprocPages = flag.Int64("inprocess-pages", 1<<17, "store capacity in pages for -inprocess")
		inprocShard = flag.Int("inprocess-shards", 0, "store shards for -inprocess; 0 means GOMAXPROCS")
		durDir      = flag.String("durable", "", "with -inprocess: journal the store through a WAL under this directory (smartmem-kvd -durable equivalent)")
		fsyncStr    = flag.String("fsync", "interval", "durable commit policy for -durable: always, interval or off")
		quiet       = flag.Bool("quiet", false, "suppress the human-readable summary")
	)
	flag.Parse()

	mix, err := ParseMix(*mixSpec)
	fatalIf(err)
	cfg := Config{
		Addr:        *addr,
		Conns:       *conns,
		Rate:        *rate,
		Duration:    *duration,
		Mix:         mix,
		Keys:        *keys,
		Skew:        *skew,
		Arrival:     *arrival,
		PageSize:    *pageSize,
		Seed:        *seed,
		Outstanding: *outstanding,
	}
	if *inprocess {
		shards := *inprocShard
		if shards <= 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		var inAddr string
		var stop func()
		if *durDir != "" {
			fp, ferr := durable.ParseFsync(*fsyncStr)
			fatalIf(ferr)
			inAddr, stop, err = StartInprocessDurable(*inprocPages, shards, *pageSize, *durDir, fp)
		} else {
			inAddr, stop, err = StartInprocess(*inprocPages, shards, *pageSize)
		}
		fatalIf(err)
		defer stop()
		cfg.Addr = inAddr
	} else if cfg.Addr == "" {
		fmt.Fprintln(os.Stderr, "smartmem-loadgen: -addr or -inprocess is required")
		os.Exit(2)
	} else if *durDir != "" {
		fmt.Fprintln(os.Stderr, "smartmem-loadgen: -durable requires -inprocess (the daemon owns durability when dialing -addr)")
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if !*quiet {
		fmt.Fprintf(os.Stderr, "smartmem-loadgen: %d conns -> %s, target %.0f op/s (%s arrivals), mix %s, keys %d skew %g, %v\n",
			cfg.Conns, cfg.Addr, cfg.Rate, cfg.Arrival, cfg.Mix, cfg.Keys, cfg.Skew, cfg.Duration)
	}
	res, err := Run(ctx, cfg)
	fatalIf(err)

	if !*quiet {
		printSummary(res)
	}
	if *benchOut {
		printBenchLines(res)
	}
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			fatalIf(err)
			defer f.Close()
			out = f
		}
		fatalIf(writeReport(out, res))
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}

// opOrder lists histogram keys in report order, "all" last.
func opOrder(res *Result) []string {
	ops := make([]string, 0, len(res.Ops))
	for name, h := range res.Ops {
		if name != "all" && h.Count() > 0 {
			ops = append(ops, name)
		}
	}
	sort.Strings(ops)
	return append(ops, "all")
}

func printSummary(res *Result) {
	fmt.Fprintf(os.Stderr, "smartmem-loadgen: sent %d completed %d errors %d rejects %d in %.2fs (achieved %.0f op/s of %.0f targeted)\n",
		res.Sent, res.Complete, res.Errors, res.Rejects, res.Elapsed.Seconds(), res.AchievedRate(), res.Config.Rate)
	fmt.Fprintf(os.Stderr, "  %-6s %10s %12s %12s %12s %12s\n", "op", "count", "p50", "p99", "p999", "max")
	for _, name := range opOrder(res) {
		s := res.Ops[name].Snapshot()
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-6s %10d %12v %12v %12v %12v\n",
			name, s.Count, time.Duration(s.P50), time.Duration(s.P99), time.Duration(s.P999), time.Duration(s.Max))
	}
}

// printBenchLines emits one go-bench-style line per op ("iterations" is
// the completed-op count) so smartmem-benchjson folds the loadgen
// quantiles into BENCH.json next to the closed-loop benchmarks.
func printBenchLines(res *Result) {
	for _, name := range opOrder(res) {
		s := res.Ops[name].Snapshot()
		if s.Count == 0 {
			continue
		}
		fmt.Printf("BenchmarkLoadgen/op=%s/conns=%d %d %d p50-ns %d p99-ns %d p999-ns %d max-ns %.1f ops/s\n",
			name, res.Config.Conns, s.Count, s.P50, s.P99, s.P999, s.Max, res.AchievedRate())
	}
}

// writeReport emits the full JSON report: config echo, transport totals
// and per-op latency summaries (sinks.EncodeHistogram shape).
func writeReport(w *os.File, res *Result) error {
	ops := make(map[string]any, len(res.Ops))
	for name, h := range res.Ops {
		if h.Count() > 0 {
			ops[name] = sinks.EncodeHistogram(h.Snapshot())
		}
	}
	doc := map[string]any{
		"loadgen": map[string]any{
			"addr":          res.Config.Addr,
			"conns":         res.Config.Conns,
			"target_rate":   res.Config.Rate,
			"achieved_rate": res.AchievedRate(),
			"duration_s":    res.Elapsed.Seconds(),
			"arrival":       res.Config.Arrival,
			"mix":           res.Config.Mix.String(),
			"keys":          res.Config.Keys,
			"skew":          res.Config.Skew,
			"sent":          res.Sent,
			"completed":     res.Complete,
			"errors":        res.Errors,
			"rejects":       res.Rejects,
			"ops":           ops,
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartmem-loadgen:", err)
		os.Exit(1)
	}
}
