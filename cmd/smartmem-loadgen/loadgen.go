package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartmem/internal/durable"
	"smartmem/internal/hdr"
	"smartmem/internal/kvstore"
	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// Mix is the operation mix as integer weights (interpreted relatively, so
// 45/45/10 and 9/9/2 are the same mix).
type Mix struct {
	Put   int
	Get   int
	Flush int
}

func (m Mix) total() int { return m.Put + m.Get + m.Flush }

func (m Mix) String() string {
	return fmt.Sprintf("put=%d,get=%d,flush=%d", m.Put, m.Get, m.Flush)
}

// ParseMix decodes "put=45,get=45,flush=10" (any subset; missing ops get
// weight 0).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: bad mix element %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad mix weight %q", part)
		}
		switch name {
		case "put":
			m.Put = w
		case "get":
			m.Get = w
		case "flush":
			m.Flush = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown mix op %q (put, get, flush)", name)
		}
	}
	if m.total() <= 0 {
		return Mix{}, fmt.Errorf("loadgen: empty mix")
	}
	return m, nil
}

// Arrival processes.
const (
	ArrivalFixed   = "fixed"
	ArrivalPoisson = "poisson"
)

// Config parameterizes one open-loop run.
type Config struct {
	Addr        string
	Conns       int
	Rate        float64 // target op rate, total across connections
	Duration    time.Duration
	Mix         Mix
	Keys        int     // keyspace size (pages)
	Skew        float64 // zipf s parameter; values <= 1 mean uniform
	Arrival     string  // ArrivalFixed or ArrivalPoisson
	PageSize    int
	Seed        int64
	Outstanding int // per-conn pipeline depth bound (backpressure)
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Rate <= 0 {
		return fmt.Errorf("loadgen: rate must be positive")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be positive")
	}
	if c.Mix.total() <= 0 {
		c.Mix = Mix{Put: 45, Get: 45, Flush: 10}
	}
	if c.Keys <= 0 {
		c.Keys = 1 << 16
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.Outstanding <= 0 {
		c.Outstanding = 4096
	}
	switch c.Arrival {
	case "":
		c.Arrival = ArrivalFixed
	case ArrivalFixed, ArrivalPoisson:
	default:
		return fmt.Errorf("loadgen: unknown arrival process %q (fixed, poisson)", c.Arrival)
	}
	return nil
}

// Op labels for histograms and reports.
var opLabels = []string{"put", "get", "flush"}

const (
	opPutIdx = iota
	opGetIdx
	opFlushIdx
	numOps
)

// Result is what one run measured. Latencies are recorded per-op into
// private per-worker histograms (contention-free) and merged here; every
// latency is measured from the op's *intended* send time under the target
// schedule, so queueing caused by a slow server is charged to the ops that
// suffered it (coordinated-omission-safe).
type Result struct {
	Config   Config
	Elapsed  time.Duration
	Sent     int64 // requests written to the wire
	Complete int64 // responses received
	Errors   int64 // transport/protocol failures
	Rejects  int64 // clean non-S_TMEM statuses (get misses, full-store puts)

	Ops map[string]*hdr.Histogram // per-op plus "all"
}

// AchievedRate returns completed ops per second.
func (r *Result) AchievedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Complete) / r.Elapsed.Seconds()
}

// pendingOp rides the writer->reader queue of one connection: which op was
// sent and when the schedule intended it to leave. Latency is measured
// from that intent.
type pendingOp struct {
	op       uint8
	intended time.Duration // offset from the run's t0
}

// worker drives one connection: an open-loop writer paced by the arrival
// schedule and a reader that matches in-order responses to sent ops.
type worker struct {
	cfg      Config
	pool     tmem.PoolID
	conn     net.Conn
	rng      *rand.Rand
	zipf     *rand.Zipf
	perConn  float64 // this connection's op rate
	hists    [numOps]*hdr.Histogram
	sent     int64
	complete int64
	errors   int64
	rejects  int64
}

// keyFor maps a key-space id to a wire key: 64-page objects, matching the
// guest's object granularity.
func (w *worker) keyFor(id uint64) tmem.Key {
	return tmem.Key{Pool: w.pool, Object: tmem.ObjectID(id >> 6), Index: tmem.PageIndex(id & 63)}
}

// nextKey draws from the configured key distribution.
func (w *worker) nextKey() uint64 {
	if w.zipf != nil {
		return w.zipf.Uint64()
	}
	return uint64(w.rng.Intn(w.cfg.Keys))
}

// nextOp draws from the mix.
func (w *worker) nextOp() uint8 {
	n := w.rng.Intn(w.cfg.Mix.total())
	if n < w.cfg.Mix.Put {
		return opPutIdx
	}
	if n < w.cfg.Mix.Put+w.cfg.Mix.Get {
		return opGetIdx
	}
	return opFlushIdx
}

// interarrival draws the gap to the next intended send.
func (w *worker) interarrival() time.Duration {
	mean := float64(time.Second) / w.perConn
	if w.cfg.Arrival == ArrivalPoisson {
		return time.Duration(w.rng.ExpFloat64() * mean)
	}
	return time.Duration(mean)
}

// run executes the worker until the deadline, then drains responses.
func (w *worker) run(ctx context.Context, t0 time.Time, wg *sync.WaitGroup) {
	defer wg.Done()
	defer w.conn.Close()
	pending := make(chan pendingOp, w.cfg.Outstanding)
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		w.read(t0, pending)
	}()
	w.write(ctx, t0, pending)
	close(pending)
	rd.Wait()
}

// write is the open-loop sender: ops leave at their intended schedule
// times (or as soon after as the writer can manage — the schedule never
// slips because the server is slow, which is the whole point), streamed
// through a buffered writer that is flushed whenever the writer is about
// to go idle.
func (w *worker) write(ctx context.Context, t0 time.Time, pending chan<- pendingOp) {
	bw := bufio.NewWriterSize(w.conn, 64<<10)
	page := make([]byte, w.cfg.PageSize)
	for i := range page {
		page[i] = byte(i * 31)
	}
	frame := make([]byte, 0, 1+16+4+w.cfg.PageSize)
	wireOps := [numOps]byte{kvstore.OpPut, kvstore.OpGet, kvstore.OpFlushPage}

	intended := w.interarrival() // first op arrives one gap after t0
	for intended < w.cfg.Duration {
		if ctx.Err() != nil {
			break
		}
		if now := time.Since(t0); intended > now {
			// Ahead of schedule: deliver what is buffered, then sleep
			// until the next intended departure. Timer wake-up slop lands
			// in the measured latencies — an open-loop generator charges
			// every delay to the ops that suffered it, its own included;
			// spinning the slop away instead would steal the CPU the
			// server needs on small machines.
			if err := bw.Flush(); err != nil {
				atomic.AddInt64(&w.errors, 1)
				return
			}
			time.Sleep(intended - now)
		}
		op := w.nextOp()
		key := w.keyFor(w.nextKey())
		frame = frame[:0]
		frame = append(frame, wireOps[op])
		frame = key.AppendWire(frame)
		if op == opPutIdx {
			binary.BigEndian.PutUint64(page, uint64(key.Object)<<6|uint64(key.Index))
			frame = binary.BigEndian.AppendUint32(frame, uint32(len(page)))
			frame = append(frame, page...)
		} else {
			frame = binary.BigEndian.AppendUint32(frame, 0)
		}
		if _, err := bw.Write(frame); err != nil {
			atomic.AddInt64(&w.errors, 1)
			return
		}
		// Blocking here (queue full) is backpressure from the reader; the
		// next intended timestamps keep marching, so the latency cost of
		// the stall lands in the histograms.
		select {
		case pending <- pendingOp{op: op, intended: intended}:
		case <-ctx.Done():
			return
		}
		atomic.AddInt64(&w.sent, 1)
		intended += w.interarrival()
	}
	if err := bw.Flush(); err != nil {
		atomic.AddInt64(&w.errors, 1)
	}
}

// read matches responses (in order — the protocol guarantees per-conn
// ordering) to pending ops and records intended-to-response latency.
func (w *worker) read(t0 time.Time, pending <-chan pendingOp) {
	br := bufio.NewReaderSize(w.conn, 64<<10)
	scratch := make([]byte, w.cfg.PageSize)
	var hdrBuf [5]byte
	// On an early error exit the writer may still be pushing ops; keep
	// draining the queue (counting each as a transport error) so the
	// writer never blocks on a dead reader. On a normal exit the channel
	// is already closed and drained, so this is a no-op.
	defer func() {
		var n int64
		for range pending {
			n++
		}
		atomic.AddInt64(&w.errors, n)
	}()
	for p := range pending {
		if _, err := io.ReadFull(br, hdrBuf[:]); err != nil {
			atomic.AddInt64(&w.errors, 1)
			return
		}
		n := binary.BigEndian.Uint32(hdrBuf[1:5])
		if int(n) > len(scratch) {
			atomic.AddInt64(&w.errors, 1)
			return
		}
		if _, err := io.ReadFull(br, scratch[:n]); err != nil {
			atomic.AddInt64(&w.errors, 1)
			return
		}
		w.hists[p.op].Record(int64(time.Since(t0) - p.intended))
		atomic.AddInt64(&w.complete, 1)
		if st := tmem.Status(int8(hdrBuf[0])); st != tmem.STmem {
			atomic.AddInt64(&w.rejects, 1)
		}
	}
}

// Run executes one open-loop load run against a serving kvd.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}

	// One setup round trip creates the shared pool every connection uses;
	// contention on shared keys is part of the workload being measured.
	setupConn, err := kvstore.DialRetryContext(ctx, "tcp", cfg.Addr, 10, 100*time.Millisecond)
	if err != nil {
		return nil, err
	}
	setup := kvstore.NewClient(setupConn, cfg.PageSize)
	pool, err := setup.NewPool(1, tmem.Persistent)
	if err != nil {
		setup.Close()
		return nil, fmt.Errorf("loadgen: pool setup: %w", err)
	}
	setup.Close()

	workers := make([]*worker, cfg.Conns)
	for i := range workers {
		conn, err := kvstore.DialRetryContext(ctx, "tcp", cfg.Addr, 5, 100*time.Millisecond)
		if err != nil {
			for _, w := range workers[:i] {
				w.conn.Close()
			}
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		w := &worker{
			cfg:     cfg,
			pool:    pool,
			conn:    conn,
			rng:     rng,
			perConn: cfg.Rate / float64(cfg.Conns),
		}
		if cfg.Skew > 1 && cfg.Keys > 1 {
			w.zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Keys-1))
		}
		for o := range w.hists {
			w.hists[o] = hdr.New()
		}
		workers[i] = w
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go w.run(ctx, t0, &wg)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	res := &Result{
		Config:  cfg,
		Elapsed: elapsed,
		Ops:     make(map[string]*hdr.Histogram, numOps+1),
	}
	all := hdr.New()
	for o, label := range opLabels {
		merged := hdr.New()
		for _, w := range workers {
			merged.Add(w.hists[o])
		}
		all.Add(merged)
		res.Ops[label] = merged
	}
	res.Ops["all"] = all
	for _, w := range workers {
		res.Sent += atomic.LoadInt64(&w.sent)
		res.Complete += atomic.LoadInt64(&w.complete)
		res.Errors += atomic.LoadInt64(&w.errors)
		res.Rejects += atomic.LoadInt64(&w.rejects)
	}
	// Cancellation is a requested stop, not a failure: report whatever
	// was measured up to the interrupt.
	return res, nil
}

// StartInprocess brings up a loopback kvd-equivalent server (sharded
// backend, same wire protocol) inside this process, for self-contained
// smokes and tests. The returned stop function shuts it down.
func StartInprocess(pages int64, shards, pageSize int) (addr string, stop func(), err error) {
	backend := tmem.NewBackendOpts(mem.Pages(pages), tmem.Options{
		Shards:   shards,
		NewStore: func() tmem.PageStore { return tmem.NewDataStore(pageSize) },
	})
	srv := kvstore.NewServer(backend)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go func() { _ = srv.Serve(l) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return l.Addr().String(), stop, nil
}

// StartInprocessDurable is StartInprocess with the kvd's -durable journal
// write-through underneath: puts, flushes and pool ops commit to a
// segmented WAL under dir before acking, through the same
// NewDirStore → Open → NewStore → Recover chain the daemon boots with.
// This is the store the durable SLO smoke drives — wire-rate latency with
// the commit path in the loop instead of memory-only acks.
func StartInprocessDurable(pages int64, shards, pageSize int, dir string, fp durable.FsyncPolicy) (addr string, stop func(), err error) {
	backend := tmem.NewBackendOpts(mem.Pages(pages), tmem.Options{
		Shards:   shards,
		NewStore: func() tmem.PageStore { return tmem.NewDataStore(pageSize) },
	})
	blob, err := durable.NewDirStore(dir)
	if err != nil {
		return "", nil, err
	}
	dlog, err := durable.Open(durable.Options{
		Blob:     blob,
		PageSize: pageSize,
		Fsync:    fp,
	})
	if err != nil {
		return "", nil, err
	}
	dstore := durable.NewStore(backend, dlog)
	if _, err := dstore.Recover(); err != nil {
		dlog.Close()
		return "", nil, err
	}
	srv := kvstore.NewServerStore(dstore)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		dlog.Close()
		return "", nil, err
	}
	go func() { _ = srv.Serve(l) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = dlog.Close()
	}
	return l.Addr().String(), stop, nil
}
