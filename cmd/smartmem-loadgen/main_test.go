package main

import (
	"context"
	"testing"
	"time"
)

// TestLoadgenEndToEnd is the ISSUE's loadgen smoke: an in-process server,
// a short open-loop run at a rate this container always sustains, then
// hard assertions — zero transport errors, the full schedule sent and
// answered, and ordered quantiles in every histogram. It runs under
// -race in CI, so it also exercises the concurrent record/merge path of
// internal/hdr through the real wire pipeline.
func TestLoadgenEndToEnd(t *testing.T) {
	addr, stop, err := StartInprocess(1<<12, 2, 4096)
	if err != nil {
		t.Fatalf("StartInprocess: %v", err)
	}
	defer stop()

	cfg := Config{
		Addr:     addr,
		Conns:    2,
		Rate:     500,
		Duration: 2 * time.Second,
		Mix:      Mix{Put: 60, Get: 30, Flush: 10},
		Keys:     512,
		Arrival:  ArrivalPoisson,
		PageSize: 4096,
		Seed:     42,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if res.Errors != 0 {
		t.Fatalf("transport errors: %d (want 0)", res.Errors)
	}
	if res.Sent == 0 || res.Complete != res.Sent {
		t.Fatalf("sent %d completed %d: every scheduled op must complete", res.Sent, res.Complete)
	}
	// Open-loop invariant: the schedule is fixed by the arrival process,
	// so the sent count tracks rate*duration regardless of server speed.
	want := cfg.Rate * cfg.Duration.Seconds()
	if f := float64(res.Sent); f < 0.5*want || f > 1.5*want {
		t.Errorf("sent %d ops, want about %.0f (open-loop schedule)", res.Sent, want)
	}
	if res.Elapsed <= 0 {
		t.Errorf("non-positive elapsed %v", res.Elapsed)
	}

	all, ok := res.Ops["all"]
	if !ok {
		t.Fatal(`missing "all" histogram`)
	}
	if all.Count() != uint64(res.Complete) {
		t.Errorf("all histogram count %d != completed %d", all.Count(), res.Complete)
	}
	var perOp uint64
	for name, h := range res.Ops {
		if name == "all" {
			continue
		}
		perOp += h.Count()
	}
	if perOp != all.Count() {
		t.Errorf("per-op counts sum to %d, all records %d", perOp, all.Count())
	}
	for name, h := range res.Ops {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if s.P50 <= 0 || s.P50 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
			t.Errorf("%s: quantiles out of order: p50=%d p99=%d p999=%d max=%d",
				name, s.P50, s.P99, s.P999, s.Max)
		}
	}
}

// TestLoadgenCancel: an interrupted run returns early with whatever it
// measured instead of hanging on the remaining schedule.
func TestLoadgenCancel(t *testing.T) {
	addr, stop, err := StartInprocess(1<<12, 1, 4096)
	if err != nil {
		t.Fatalf("StartInprocess: %v", err)
	}
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, Config{
		Addr:     addr,
		Conns:    1,
		Rate:     100,
		Duration: time.Minute,
		PageSize: 4096,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancel took %v, want prompt return", took)
	}
	if res.Errors != 0 {
		t.Errorf("transport errors after cancel: %d", res.Errors)
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("put=1,get=8,flush=1")
	if err != nil || m != (Mix{Put: 1, Get: 8, Flush: 1}) {
		t.Fatalf("ParseMix: %v %v", m, err)
	}
	if m, err := ParseMix("get=100"); err != nil || m.Get != 100 || m.Put != 0 {
		t.Fatalf("subset mix: %v %v", m, err)
	}
	for _, bad := range []string{"", "put=-1", "scan=5", "put"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q): want error", bad)
		}
	}
}
